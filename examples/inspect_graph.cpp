/**
 * @file
 * Compiler explainability: dump what the Echo pass sees and decides on
 * a small attention model — the feature maps, each candidate region
 * with its frontier and cost-model evaluation, and the final rewrite.
 *
 *   $ ./examples/inspect_graph
 */
#include <cstdio>
#include <fstream>

#include "core/logging.h"

#include "echo/candidate.h"
#include "echo/cost_model.h"
#include "pass/builtin_passes.h"
#include "graph/autodiff.h"
#include "graph/ops/oplib.h"
#include "models/attention.h"

using namespace echo;
using namespace echo::graph;
namespace ol = echo::graph::oplib;

int
main()
{
    setQuiet(true);
    Graph g;
    const int64_t b = 4, t = 8, h = 16;

    Val hs = g.placeholder(Shape({b, t, h}), "encoder_states");
    Val query = g.placeholder(Shape({b, h}), "query");
    Val labels = g.placeholder(Shape({b}), "labels");
    models::NamedWeights registry;
    const models::AttentionWeights w =
        models::makeAttentionWeights(g, h, registry, "attn");
    Val keys = models::projectKeys(g, hs, w);
    Val a = models::attentionStep(g, query, keys, hs, w);
    Val loss;
    {
        TagScope tag(g, "output");
        Val logits = g.apply1(
            ol::sliceOp(1, 0, std::min<int64_t>(h, b + 4)), {a});
        loss = g.apply1(ol::crossEntropyLoss(), {logits, labels});
    }
    std::vector<Val> wrt;
    for (const auto &[name, val] : registry)
        wrt.push_back(val);
    GradientResult grads = backward(g, loss, wrt);
    std::vector<Val> fetches = {loss};
    for (const Val &gv : grads.weight_grads)
        fetches.push_back(gv);

    std::printf("=== graph (%zu nodes) ===\n%s\n", g.numNodes(),
                g.toString().c_str());

    const auto fms = pass::findFeatureMaps(fetches);
    std::printf("=== %zu feature maps (forward values the backward "
                "pass stashes) ===\n",
                fms.size());
    for (const auto &fm : fms) {
        std::printf("  #%d:%d %-18s %-10s %6lld bytes, %zu bwd "
                    "consumer(s)\n",
                    fm.val.node->id, fm.val.index,
                    fm.val.node->op ? fm.val.node->op->name().c_str()
                                    : "input",
                    fm.val.node->layer_tag.c_str(),
                    static_cast<long long>(fm.bytes),
                    fm.bwd_consumers.size());
    }

    std::printf("\n=== candidate evaluation ===\n");
    pass::SelectionState state;
    for (const auto &fm : fms) {
        const pass::Candidate cand = pass::buildCandidate(fm);
        if (!cand.admissible) {
            std::printf("  #%d (%s): inadmissible (GEMM-rooted)\n",
                        fm.val.node->id,
                        fm.val.node->op->name().c_str());
            continue;
        }
        const pass::CandidateCost cost = pass::evaluateCandidate(
            cand, fms, state, gpusim::GpuSpec::titanXp());
        std::printf("  #%d (%s): region=%zu ops, frontier=%zu vals, "
                    "saves %lld B, adds %lld B, replay %.2f us\n",
                    fm.val.node->id,
                    fm.val.node->op->name().c_str(),
                    cand.subgraph.size(), cand.frontier.size(),
                    static_cast<long long>(cost.bytes_saved),
                    static_cast<long long>(cost.bytes_added),
                    cost.replay_time_us);
    }

    pass::PipelineContext pctx(g);
    pctx.fetches = fetches;
    pctx.weight_grads = grads.weight_grads;
    pctx.recompute_config.overhead_budget_fraction = -1.0;
    pass::buildPipeline("recompute")
        .runOrDie(pctx, "inspect_graph recompute");
    const pass::PassResult result = pctx.recompute;
    std::printf("\n=== pass result ===\n"
                "accepted %d region(s): dropped %lld B of stash, added "
                "%lld B, %.2f us replay (baseline %.2f us)\n",
                result.num_regions,
                static_cast<long long>(result.bytes_saved),
                static_cast<long long>(result.bytes_added),
                result.replay_time_us, result.baseline_gpu_time_us);

    {
        std::ofstream dot("echo_graph.dot");
        dot << g.toDot();
        std::printf("\n(wrote Graphviz rendering to echo_graph.dot — "
                    "recompute nodes in green)\n");
    }

    std::printf("\n=== rewritten backward region ===\n");
    for (const auto &n : g.nodes()) {
        if (n->phase == Phase::kRecompute) {
            std::printf("  [recompute] #%d %s (%s)\n", n->id,
                        n->name.c_str(), n->layer_tag.c_str());
        }
    }
    return 0;
}
