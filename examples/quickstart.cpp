/**
 * @file
 * Quickstart: build a small attention model, differentiate it, run the
 * Echo recomputation pass, and see the footprint drop — the library's
 * core loop in ~80 lines.
 *
 *   $ ./examples/quickstart
 */
#include <cstdio>

#include "core/logging.h"
#include "core/rng.h"
#include "graph/executor.h"
#include "graph/ops/oplib.h"
#include "memory/profiler.h"
#include "models/attention.h"
#include "pass/builtin_passes.h"

using namespace echo;
using namespace echo::graph;
namespace ol = echo::graph::oplib;

int
main()
{
    // 1. Build a toy attention decoder: each step runs the O-shape
    //    scoring pattern (small inputs, big interior) the paper
    //    targets.  The interiors of every step are stashed for the
    //    backward pass — the memory bottleneck.
    setQuiet(true);
    Graph g;
    const int64_t b = 8, t = 32, h = 64, steps = 6;
    Val hs = g.placeholder(Shape({b, t, h}), "encoder_states");
    Val query = g.placeholder(Shape({b, h}), "query");
    Val labels = g.placeholder(Shape({b}), "labels");

    models::NamedWeights registry;
    const models::AttentionWeights w =
        models::makeAttentionWeights(g, h, registry, "attn");
    Val keys = models::projectKeys(g, hs, w);
    Val cur = query;
    for (int64_t step = 0; step < steps; ++step) {
        g.setTimeStep(static_cast<int>(step));
        cur = models::attentionStep(g, cur, keys, hs, w);
    }
    g.setTimeStep(-1);
    Val logits = g.apply1(ol::sliceOp(1, 0, b + 8), {cur});
    Val loss = g.apply1(ol::crossEntropyLoss(), {logits, labels});

    // 2. Differentiate through the contract-checked pass pipeline:
    //    the "autodiff" stage appends the backward graph (stashing the
    //    big interiors) and its postconditions are machine-checked.
    pass::PipelineContext ctx(g);
    ctx.loss = loss;
    for (const auto &[name, val] : registry)
        ctx.wrt.push_back(val);
    pass::buildPipeline("autodiff").runOrDie(ctx, "quickstart autodiff");
    std::vector<Val> fetches = ctx.fetches;

    memory::ProfilerOptions popts;
    popts.cuda_context_bytes = 0;
    const auto before =
        memory::profileMemory(fetches, ctx.weight_grads, popts);

    // 3. Run the Echo pass as a second pipeline stage over the same
    //    context (the gradients invariant carries over): stash the
    //    small frontier, replay the interior during the backward pass.
    ctx.recompute_config.overhead_budget_fraction =
        -1.0; // recompute everything
    pass::buildPipeline("recompute").runOrDie(ctx, "quickstart recompute");
    const pass::PassResult &result = ctx.recompute;

    const auto after =
        memory::profileMemory(fetches, ctx.weight_grads, popts);

    std::printf("Echo pass: %d region(s), %d recompute node(s)\n",
                result.num_regions, result.num_recompute_nodes);
    std::printf("  stash bytes dropped: %lld, newly stashed: %lld\n",
                static_cast<long long>(result.bytes_saved),
                static_cast<long long>(result.bytes_added));
    std::printf("  footprint: %lld -> %lld bytes (%.2fx)\n",
                static_cast<long long>(before.planned_bytes),
                static_cast<long long>(after.planned_bytes),
                static_cast<double>(before.planned_bytes) /
                    static_cast<double>(after.planned_bytes));

    // 4. Gradients are unchanged: execute the rewritten graph.
    Rng rng(1);
    FeedDict feed;
    feed[hs.node] = Tensor::uniform(Shape({b, t, h}), rng);
    feed[query.node] = Tensor::uniform(Shape({b, h}), rng);
    for (const auto &[name, val] : registry)
        feed[val.node] =
            Tensor::uniform(Graph::shapeOf(val), rng, -0.3f, 0.3f);
    Tensor lab(Shape({b}));
    for (int64_t i = 0; i < b; ++i)
        lab.at(i) = static_cast<float>(i % 8);
    feed[labels.node] = lab;

    Executor ex(fetches);
    const auto out = ex.run(feed);
    std::printf("  loss = %.6f (gradients fetched for %zu weights)\n",
                out[0].at(0), registry.size());
    return 0;
}
