/**
 * @file
 * Word-level language modeling (paper §2.1): train a small LSTM LM on
 * the synthetic PTB-like corpus, with the backend chosen automatically
 * by the autotuning microbenchmark (§5.4) — the user never switches
 * between Default/CuDNN/Eco by hand.
 *
 *   $ ./examples/train_word_lm
 */
#include <cstdio>
#include <filesystem>

#include "core/logging.h"

#include "data/batcher.h"
#include "layout/autotuner.h"
#include "models/serialize.h"
#include "models/word_lm.h"
#include "train/trainer.h"

using namespace echo;

int
main()
{
    setQuiet(true);

    // Model hyperparameters (small enough to train on the CPU here;
    // the bench binaries profile the paper-scale configurations).
    models::WordLmConfig cfg;
    cfg.vocab = 200;
    cfg.hidden = 32;
    cfg.layers = 2;
    cfg.batch = 16;
    cfg.seq_len = 12;

    // Transparent backend selection: run the microbenchmark on the
    // modelled GPU and take the fastest implementation.
    rnn::LstmSpec spec;
    spec.input_size = cfg.hidden;
    spec.hidden = cfg.hidden;
    spec.layers = cfg.layers;
    spec.batch = cfg.batch;
    spec.seq_len = cfg.seq_len;
    const layout::AutotuneResult tuned =
        layout::autotune(spec, gpusim::GpuSpec::titanXp());
    cfg.backend = tuned.best;
    std::printf("autotuner picked backend: %s\n",
                rnn::backendName(tuned.best));
    for (const auto &[backend, us] : tuned.iteration_time_us)
        std::printf("  %-8s %.1f us/iter (modelled)\n",
                    rnn::backendName(backend), us);

    // Data: synthetic corpus with PTB-like statistics.
    data::CorpusConfig corpus_cfg;
    corpus_cfg.vocab = data::Vocab{cfg.vocab};
    corpus_cfg.num_tokens = 60000;
    corpus_cfg.structure = 0.85;
    corpus_cfg.seed = 100;
    const data::Corpus corpus = data::Corpus::generate(corpus_cfg);
    data::LmBatcher batcher(corpus, cfg.batch, cfg.seq_len);

    // Train.
    models::WordLmModel model(cfg);
    Rng rng(7);
    models::ParamStore params = model.initialParams(rng);
    train::SgdOptimizer opt(0.4, 0.9);
    graph::Executor ex(model.fetches());

    train::TrainLoopConfig loop;
    loop.iterations = 150;
    loop.seconds_per_iteration = tuned.bestTime() * 1e-6;
    const auto curve = train::runTrainingLoop(
        ex, loop,
        [&](int64_t) { return model.makeFeed(params, batcher.next()); },
        [&](double, const std::vector<Tensor> &grads) {
            opt.step(params, model.weights(), grads);
        });

    std::printf("\nstep  modelled_s  loss    perplexity\n");
    for (size_t i = 0; i < curve.size(); i += 25) {
        const auto &p = curve[i];
        std::printf("%-5lld %-11.4f %-7.4f %.2f\n",
                    static_cast<long long>(p.step), p.wall_seconds,
                    p.loss, p.perplexity);
    }
    const auto &last = curve.back();
    std::printf("%-5lld %-11.4f %-7.4f %.2f\n",
                static_cast<long long>(last.step), last.wall_seconds,
                last.loss, last.perplexity);
    std::printf("\nfinal perplexity %.2f (started at %.2f)\n",
                last.perplexity, curve.front().perplexity);

    // Checkpoint the trained parameters and verify the round trip.
    // Checkpoints live under results/ next to the bench outputs, so a
    // repo checkout never collects stray .ckpt files at its root.
    std::filesystem::create_directories("results");
    models::saveParams(params, "results/word_lm.ckpt");
    const models::ParamStore restored =
        models::loadParams("results/word_lm.ckpt");
    const auto check = ex.run(
        model.makeFeed(restored, batcher.next()));
    std::printf("checkpoint round trip OK (loss %.4f from restored "
                "parameters)\n",
                check[0].at(0));
    return 0;
}
