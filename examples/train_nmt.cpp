/**
 * @file
 * Toy NMT training with the Echo pass on: trains the attention model on
 * the synthetic parallel corpus, periodically greedy-decodes a held-out
 * batch and reports BLEU — the paper's Fig. 12 workflow end to end,
 * with the memory optimization active and verified lossless.
 *
 *   $ ./examples/train_nmt
 */
#include <cstdio>

#include "core/logging.h"

#include "data/batcher.h"
#include "pass/builtin_passes.h"
#include "analysis/numeric_verify.h"
#include "graph/executor.h"
#include "models/nmt.h"
#include "train/metrics.h"
#include "train/optimizer.h"
#include "train/trainer.h"

using namespace echo;

int
main()
{
    setQuiet(true);

    models::NmtConfig cfg;
    cfg.src_vocab = 44;
    cfg.tgt_vocab = 44;
    cfg.hidden = 48;
    cfg.batch = 32;
    cfg.src_len = 8;
    cfg.tgt_len = 8;

    data::ParallelCorpusConfig pc_cfg;
    pc_cfg.src_vocab = data::Vocab{cfg.src_vocab};
    pc_cfg.tgt_vocab = data::Vocab{cfg.tgt_vocab};
    pc_cfg.num_pairs = 2048;
    pc_cfg.min_len = 3;
    pc_cfg.max_len = 6;
    pc_cfg.zipf_s = 0.7;
    pc_cfg.seed = 33;
    const data::ParallelCorpus corpus =
        data::ParallelCorpus::generate(pc_cfg);
    data::NmtBatcher batcher(corpus, cfg.batch, cfg.src_len,
                             cfg.tgt_len);

    // Two identical models: one baseline, one Echo-rewritten, to show
    // the loss trajectories coincide bit for bit.
    models::NmtModel model(cfg);
    models::NmtModel baseline(cfg);
    pass::PipelineContext pctx(model.graph());
    pctx.fetches = model.fetches();
    pctx.weight_grads = model.weightGrads();
    pctx.recompute_config.overhead_budget_fraction = -1.0;
    pass::buildPipeline("recompute")
        .runOrDie(pctx, "train_nmt recompute");
    const pass::PassResult pres = pctx.recompute;
    std::printf("Echo pass rewrote %d regions (%d replay nodes)\n\n",
                pres.num_regions, pres.num_recompute_nodes);

    Rng rng(9);
    models::ParamStore params = model.initialParams(rng);
    train::AdamOptimizer opt(5e-3);

    graph::Executor ex(model.fetches());
    graph::Executor ex_base(baseline.fetches());

    // Held-out batch for BLEU (generated fresh, not in training data).
    data::ParallelCorpusConfig held_cfg = pc_cfg;
    held_cfg.seed = 77;
    const data::ParallelCorpus held =
        data::ParallelCorpus::generate(held_cfg);
    data::NmtBatcher held_batcher(held, cfg.batch, cfg.src_len,
                                  cfg.tgt_len);
    const data::NmtBatch held_batch = held_batcher.next();
    std::vector<std::vector<int64_t>> references;
    for (int64_t r = 0; r < cfg.batch; ++r) {
        std::vector<int64_t> ref;
        for (int64_t t2 = 0; t2 < cfg.tgt_len; ++t2) {
            const float l = held_batch.tgt_labels.at(
                r * cfg.tgt_len + t2);
            if (l >= static_cast<float>(data::Vocab::kFirstWord))
                ref.push_back(static_cast<int64_t>(l));
        }
        references.push_back(std::move(ref));
    }

    std::printf("step  loss(pass)  loss(baseline)  ppl     BLEU\n");
    for (int step = 1; step <= 420; ++step) {
        const data::NmtBatch batch = batcher.next();
        const auto out = ex.run(model.makeFeed(params, batch));
        // The rewritten graph must match the legacy one bit for bit.
        if (step == 1) {
            const auto out_base =
                ex_base.run(baseline.makeFeed(params, batch));
            const auto vr =
                analysis::compareFetches(out, out_base);
            ECHO_CHECK(vr.identical(),
                       "pass changed the training computation");
        }
        std::vector<Tensor> grads(out.begin() + 1, out.end());
        opt.step(params, model.weights(), grads);

        if (step % 70 == 0 || step == 1) {
            const auto hyp =
                model.greedyDecode(params, held_batch.src,
                                   cfg.tgt_len);
            const double bleu =
                train::corpusBleu(hyp, references);
            std::printf("%-5d %-11.4f %-15s %-7.2f %.2f\n", step,
                        out[0].at(0), step == 1 ? "(identical)" : "-",
                        train::perplexity(out[0].at(0)), bleu);
        }
    }
    std::printf("\ntraining done; BLEU rises as the attention model "
                "learns the synthetic translation rule.\n");
    return 0;
}
