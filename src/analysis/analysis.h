/**
 * @file
 * Umbrella API of the static-analysis layer: one call that runs the
 * graph verifier, the schedule lifetime analyzer (against liveness and
 * the memory plan), and — for parallel execution — the ready-queue
 * hazard detector over everything a fetch set depends on.
 *
 * Consumed three ways:
 *  - the echo-lint CLI (tools/echo_lint.cc) for CI,
 *  - tests, as a mandatory post-pass check,
 *  - the training loop, behind the ECHO_VERIFY=1 environment flag
 *    (verifyEnvEnabled / verifyOrDie).
 */
#ifndef ECHO_ANALYSIS_ANALYSIS_H
#define ECHO_ANALYSIS_ANALYSIS_H

#include "analysis/fusion_audit.h"
#include "analysis/graph_verifier.h"
#include "analysis/hazards.h"
#include "analysis/lifetime.h"
#include "analysis/numeric_verify.h"
#include "analysis/pass_audit.h"
#include "analysis/report.h"
#include "analysis/tape_audit.h"

namespace echo::analysis {

/** What analyzeAll should run. */
struct AnalyzeOptions
{
    /** Replay the memory plan in the lifetime analyzer. */
    bool with_plan = true;
    /** Run the ready-queue hazard detector (parallel execution). */
    bool parallel_hazards = true;
};

/**
 * Run every applicable analyzer over the subgraph @p fetches reaches.
 * @p weight_grads (gradient values) justify persistent lifetimes.
 */
AnalysisReport analyzeAll(const std::vector<graph::Val> &fetches,
                          const std::vector<graph::Val> &weight_grads = {},
                          const AnalyzeOptions &opts = {});

/** True when the ECHO_VERIFY environment variable is set to 1. */
bool verifyEnvEnabled();

/**
 * analyzeAll, panicking with the full report when it finds errors.
 * @p what names the caller in the panic message.
 */
void verifyOrDie(const std::vector<graph::Val> &fetches,
                 const char *what);

} // namespace echo::analysis

#endif // ECHO_ANALYSIS_ANALYSIS_H
