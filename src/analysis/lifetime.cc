#include "analysis/lifetime.h"

#include <algorithm>
#include <map>
#include <unordered_map>
#include <unordered_set>

namespace echo::analysis {

namespace {

using graph::Node;
using graph::NodeKind;
using graph::Val;
using memory::LivenessResult;
using memory::MemoryPlan;
using memory::ValueInfo;

/** Schedule sanity: positions, duplicates, topological order. */
void
checkSchedule(const LivenessResult &live,
              std::unordered_map<const Node *, int> &pos,
              AnalysisReport &report)
{
    for (size_t p = 0; p < live.schedule.size(); ++p) {
        const Node *n = live.schedule[p];
        auto [it, inserted] = pos.emplace(n, static_cast<int>(p));
        if (!inserted) {
            report.add(Check::kDoubleFree, Severity::kError,
                       "node scheduled twice (slots " +
                           std::to_string(it->second) + " and " +
                           std::to_string(p) +
                           "); its buffers would be freed twice",
                       {NodeRef::of(n, static_cast<int>(p))});
        }
    }
    for (size_t p = 0; p < live.schedule.size(); ++p) {
        const Node *n = live.schedule[p];
        for (const Val &v : n->inputs) {
            auto it = pos.find(v.node);
            if (it == pos.end()) {
                report.add(Check::kUseBeforeDef, Severity::kError,
                           "consumer scheduled but its producer is "
                           "missing from the schedule",
                           {NodeRef::of(v.node),
                            NodeRef::of(n, static_cast<int>(p))});
            } else if (it->second >= static_cast<int>(p)) {
                report.add(Check::kUseBeforeDef, Severity::kError,
                           "consumer scheduled at slot " +
                               std::to_string(p) +
                               " before its producer at slot " +
                               std::to_string(it->second),
                           {NodeRef::of(v.node, it->second),
                            NodeRef::of(n, static_cast<int>(p))});
            }
        }
    }
}

/** Live intervals vs actual consumer positions. */
void
checkIntervals(const LivenessResult &live,
               const std::unordered_map<const Node *, int> &pos,
               AnalysisReport &report)
{
    for (const ValueInfo &info : live.values) {
        auto it = pos.find(info.val.node);
        if (it != pos.end() && info.def_pos != it->second) {
            report.add(Check::kUseBeforeDef, Severity::kError,
                       "recorded def position " +
                           std::to_string(info.def_pos) +
                           " disagrees with schedule slot " +
                           std::to_string(it->second),
                       {NodeRef::of(info.val.node, it->second)});
        }
        if (info.last_use_pos < info.def_pos) {
            report.add(Check::kUseAfterFree, Severity::kError,
                       "live interval ends at " +
                           std::to_string(info.last_use_pos) +
                           " before it begins at " +
                           std::to_string(info.def_pos),
                       {NodeRef::of(info.val.node, info.def_pos)});
        }
    }

    // Every consumer must read within the producer's live interval: the
    // buffer is released right after last_use_pos, so a later consumer
    // reads freed memory.
    for (size_t p = 0; p < live.schedule.size(); ++p) {
        const Node *n = live.schedule[p];
        for (const Val &v : n->inputs) {
            auto idx = live.index.find(v);
            if (idx == live.index.end()) {
                report.add(Check::kLeakedSlot, Severity::kError,
                           "consumed value has no liveness record "
                           "(untracked slot)",
                           {NodeRef::of(v.node),
                            NodeRef::of(n, static_cast<int>(p))});
                continue;
            }
            const ValueInfo &info = live.values[idx->second];
            if (info.persistent)
                continue;
            if (static_cast<int>(p) > info.last_use_pos) {
                report.add(
                    Check::kUseAfterFree, Severity::kError,
                    "consumer at slot " + std::to_string(p) +
                        " reads a buffer freed after slot " +
                        std::to_string(info.last_use_pos),
                    {NodeRef::of(v.node, info.def_pos),
                     NodeRef::of(live.schedule[static_cast<size_t>(
                                     info.last_use_pos)],
                                 info.last_use_pos),
                     NodeRef::of(n, static_cast<int>(p))});
            }
        }
    }
}

/** Persistence must be justified, or the slot leaks for the whole run. */
void
checkLeaks(const LivenessResult &live, const std::vector<Val> &fetches,
           const std::vector<Val> &weight_grads, AnalysisReport &report)
{
    std::unordered_set<Val, graph::ValHash> allowed(fetches.begin(),
                                                    fetches.end());
    allowed.insert(weight_grads.begin(), weight_grads.end());
    for (const ValueInfo &info : live.values) {
        if (!info.persistent)
            continue;
        const NodeKind kind = info.val.node->kind;
        if (kind == NodeKind::kPlaceholder || kind == NodeKind::kWeight)
            continue;
        if (allowed.count(info.val))
            continue;
        report.add(Check::kLeakedSlot, Severity::kError,
                   "transient marked persistent: " +
                       std::to_string(info.bytes) +
                       " bytes held for the whole run with no fetch, "
                       "weight, or gradient justifying it",
                   {NodeRef::of(info.val.node, info.def_pos)});
    }
}

/** Replay the plan's allocations in a shadow pool. */
void
checkPlan(const LivenessResult &live, const MemoryPlan &plan,
          AnalysisReport &report)
{
    const size_t steps = live.schedule.size();
    std::vector<std::vector<const ValueInfo *>> defs(steps);
    std::vector<std::vector<const ValueInfo *>> frees(steps);
    for (const ValueInfo &info : live.values) {
        if (info.persistent)
            continue;
        if (info.def_pos < 0 ||
            static_cast<size_t>(info.def_pos) >= steps ||
            info.last_use_pos < 0 ||
            static_cast<size_t>(info.last_use_pos) >= steps)
            continue; // interval errors reported by checkIntervals
        defs[static_cast<size_t>(info.def_pos)].push_back(&info);
        frees[static_cast<size_t>(info.last_use_pos)].push_back(&info);
    }

    // Active allocations keyed by offset; values are (end, holder).
    std::map<int64_t, std::pair<int64_t, const ValueInfo *>> active;
    for (size_t p = 0; p < steps; ++p) {
        for (const ValueInfo *info : defs[p]) {
            auto it = plan.offsets.find(info->val);
            if (it == plan.offsets.end()) {
                report.add(Check::kPlanMissing, Severity::kError,
                           "transient has no planned allocation",
                           {NodeRef::of(info->val.node, info->def_pos)});
                continue;
            }
            const memory::Allocation &a = it->second;
            if (a.bytes < info->bytes) {
                report.add(Check::kPlanOverlap, Severity::kError,
                           "allocation of " + std::to_string(a.bytes) +
                               " bytes is smaller than the value's " +
                               std::to_string(info->bytes) + " bytes",
                           {NodeRef::of(info->val.node, info->def_pos)});
            }
            // Overlap with any live allocation is a write into a buffer
            // somebody else still reads.
            const int64_t begin = a.offset;
            const int64_t end = a.offset + a.bytes;
            auto next = active.lower_bound(begin);
            if (next != active.begin()) {
                auto prev = std::prev(next);
                if (prev->second.first > begin) {
                    report.add(
                        Check::kPlanOverlap, Severity::kError,
                        "planned bytes [" + std::to_string(begin) + ", " +
                            std::to_string(end) +
                            ") overlap a live allocation",
                        {NodeRef::of(prev->second.second->val.node,
                                     prev->second.second->def_pos),
                         NodeRef::of(info->val.node, info->def_pos)});
                    continue;
                }
            }
            if (next != active.end() && next->first < end) {
                report.add(
                    Check::kPlanOverlap, Severity::kError,
                    "planned bytes [" + std::to_string(begin) + ", " +
                        std::to_string(end) +
                        ") overlap a live allocation",
                    {NodeRef::of(next->second.second->val.node,
                                 next->second.second->def_pos),
                     NodeRef::of(info->val.node, info->def_pos)});
                continue;
            }
            active[begin] = {end, info};
        }
        for (const ValueInfo *info : frees[p]) {
            auto it = plan.offsets.find(info->val);
            if (it == plan.offsets.end())
                continue;
            auto a = active.find(it->second.offset);
            if (a != active.end() && a->second.second == info)
                active.erase(a);
        }
    }
}

} // namespace

AnalysisReport
analyzeLifetimes(const LivenessResult &live, const std::vector<Val> &fetches,
                 const std::vector<Val> &weight_grads,
                 const MemoryPlan *plan)
{
    AnalysisReport report;
    std::unordered_map<const Node *, int> pos;
    pos.reserve(live.schedule.size());
    checkSchedule(live, pos, report);
    checkIntervals(live, pos, report);
    checkLeaks(live, fetches, weight_grads, report);
    if (plan != nullptr)
        checkPlan(live, *plan, report);
    return report;
}

AnalysisReport
checkPoolBudget(const LivenessResult &live, const MemoryPlan &plan,
                int64_t budget_bytes)
{
    AnalysisReport report;
    if (plan.pool_peak_bytes <= budget_bytes)
        return report;

    // The binding buffers: transients live at the plan's peak position,
    // largest first.  Their producers are what has to shrink (or be
    // recomputed) for the budget to become reachable.
    std::vector<const ValueInfo *> at_peak;
    for (const ValueInfo &vi : live.values) {
        if (vi.persistent)
            continue;
        if (vi.def_pos <= plan.peak_pos && vi.last_use_pos >= plan.peak_pos)
            at_peak.push_back(&vi);
    }
    std::sort(at_peak.begin(), at_peak.end(),
              [](const ValueInfo *a, const ValueInfo *b) {
                  if (a->bytes != b->bytes)
                      return a->bytes > b->bytes;
                  return a->val.node->id < b->val.node->id;
              });
    constexpr size_t kMaxChain = 8;
    if (at_peak.size() > kMaxChain)
        at_peak.resize(kMaxChain);

    std::vector<NodeRef> chain;
    chain.reserve(at_peak.size());
    int64_t chain_bytes = 0;
    for (const ValueInfo *vi : at_peak) {
        chain.push_back(NodeRef::of(vi->val.node, vi->def_pos));
        chain_bytes += vi->bytes;
    }
    const std::string message =
        "transient pool peak " + std::to_string(plan.pool_peak_bytes) +
        " bytes exceeds budget " + std::to_string(budget_bytes) +
        " bytes by " +
        std::to_string(plan.pool_peak_bytes - budget_bytes) + "; the " +
        std::to_string(chain.size()) +
        " largest buffers live at peak position " +
        std::to_string(plan.peak_pos) + " hold " +
        std::to_string(chain_bytes) + " bytes";
    report.add(Check::kBudgetExceeded, Severity::kError, message,
               std::move(chain));
    return report;
}

} // namespace echo::analysis
