#include "analysis/fusion_audit.h"

#include <cstring>
#include <unordered_map>
#include <unordered_set>

#include "core/rng.h"
#include "graph/ops/op_fused_elementwise.h"

namespace echo::analysis {

using graph::Node;
using graph::Val;
using graph::ValHash;
using graph::oplib::FusedElementwiseOp;

namespace {

/**
 * Independently re-derive the fused program's signature from the
 * original members' lowerings, using the documented register
 * convention (frontier first by first use, then one fresh register per
 * instruction).  Returns "" when a member has no lowering — which is
 * itself a legality violation.
 */
std::string
rederiveSignature(const fusion::FusedGroup &group)
{
    // The rewrite replaced the sink's inputs with the frontier; the
    // original chain is the orphan members' intact edges plus the
    // journaled pre-fusion sink inputs.
    const auto inputs_of = [&](const Node *m) -> const std::vector<Val> & {
        return m == group.sink ? group.original_sink_inputs : m->inputs;
    };
    std::unordered_set<const Node *> in_group(group.members.begin(),
                                              group.members.end());
    std::unordered_map<Val, int, ValHash> reg_of;
    int num_inputs = 0;
    for (const Node *m : group.members)
        for (const Val &v : inputs_of(m))
            if (in_group.count(v.node) == 0 && reg_of.count(v) == 0)
                reg_of[v] = num_inputs++;

    std::vector<graph::EwInstr> program;
    int next_reg = num_inputs;
    for (const Node *m : group.members) {
        const graph::OpPtr &op =
            m == group.sink ? group.original_op : m->op;
        const std::vector<graph::EwInstr> lower =
            op->elementwiseLowering();
        if (lower.empty())
            return "";
        std::unordered_map<int, int> local;
        const std::vector<Val> &m_inputs = inputs_of(m);
        for (size_t i = 0; i < m_inputs.size(); ++i)
            local[static_cast<int>(i)] = reg_of.at(m_inputs[i]);
        for (const graph::EwInstr &instr : lower) {
            graph::EwInstr out = instr;
            out.a = local.at(instr.a);
            if (graph::ewOpcodeIsBinary(instr.opcode))
                out.b = local.at(instr.b);
            local[instr.dst] = next_reg;
            out.dst = next_reg++;
            program.push_back(out);
        }
        reg_of[Val{const_cast<Node *>(m), 0}] = program.back().dst;
    }
    return graph::ewProgramSignature(num_inputs, program.back().dst,
                                     program);
}

/** Byte-compare two tensors (NaN-safe: raw memory, not float ==). */
bool
bytesEqual(const Tensor &a, const Tensor &b)
{
    return a.shape() == b.shape() &&
           std::memcmp(a.data(), b.data(),
                       static_cast<size_t>(a.numel()) *
                           sizeof(float)) == 0;
}

void
auditGroup(const fusion::FusedGroup &group,
           const std::unordered_set<const Node *> &reachable,
           size_t group_index, AnalysisReport &report)
{
    Node *sink = group.sink;
    const std::string where =
        "fused group #" + std::to_string(group_index);

    const auto *fused =
        dynamic_cast<const FusedElementwiseOp *>(sink->op.get());
    if (fused == nullptr) {
        report.add(Check::kFusionIllegalGroup, Severity::kError,
                   where + ": sink does not carry a FusedElementwiseOp",
                   {NodeRef::of(sink)});
        return;
    }
    if (sink->inputs != group.frontier) {
        report.add(Check::kFusionIllegalGroup, Severity::kError,
                   where + ": sink inputs diverged from the journaled "
                           "frontier",
                   {NodeRef::of(sink)});
        return;
    }

    // Legality: interior members must be invisible to the fetches and
    // share the sink's phase.
    for (const Node *m : group.members) {
        if (m == sink)
            continue;
        if (reachable.count(m) != 0)
            report.add(Check::kFusionIllegalGroup, Severity::kError,
                       where + ": interior member is still reachable "
                               "(its value escapes the group)",
                       {NodeRef::of(m), NodeRef::of(sink)});
        if (m->phase != sink->phase)
            report.add(Check::kFusionIllegalGroup, Severity::kError,
                       where + ": member phase differs from the sink's",
                       {NodeRef::of(m), NodeRef::of(sink)});
    }

    // Metadata: the signature recorded on the fused op must re-derive
    // from the original ops' lowerings.
    const std::string expected = rederiveSignature(group);
    if (expected.empty()) {
        report.add(Check::kFusionIllegalGroup, Severity::kError,
                   where + ": a member op has no element-wise lowering",
                   {NodeRef::of(sink)});
        return;
    }
    if (expected != fused->signature()) {
        report.add(Check::kFusionValueMismatch, Severity::kError,
                   where + ": program signature mismatch (recorded \"" +
                       fused->signature() + "\", re-derived \"" +
                       expected + "\")",
                   {NodeRef::of(sink)});
        return;
    }

    // Values: replay the original chain over the intact orphan members
    // and byte-compare against one fused forward() call.
    Rng rng(0xEC40F5ED ^ static_cast<uint64_t>(sink->id));
    std::unordered_map<Val, Tensor, ValHash> env;
    std::vector<Tensor> fused_in;
    for (const Val &v : group.frontier) {
        Tensor t(graph::Graph::shapeOf(v));
        for (int64_t i = 0; i < t.numel(); ++i)
            t.data()[i] = static_cast<float>(rng.uniform(-2.0, 2.0));
        env.emplace(v, t);
        fused_in.push_back(t);
    }
    for (Node *m : group.members) {
        const std::vector<Val> &m_inputs =
            m == sink ? group.original_sink_inputs : m->inputs;
        std::vector<Tensor> in;
        in.reserve(m_inputs.size());
        for (const Val &v : m_inputs)
            in.push_back(env.at(v));
        std::vector<Tensor> out(1);
        const graph::OpPtr &op =
            m == sink ? group.original_op : m->op;
        op->forward(in, out);
        env.emplace(Val{m, 0}, std::move(out[0]));
    }
    std::vector<Tensor> fused_out(1);
    fused->forward(fused_in, fused_out);
    if (!bytesEqual(env.at(Val{sink, 0}), fused_out[0]))
        report.add(Check::kFusionValueMismatch, Severity::kError,
                   where + " (" + fused->spec().fused_ops +
                       "): fused program output differs from the "
                       "original op chain",
                   {NodeRef::of(sink)});
}

} // namespace

AnalysisReport
auditFusion(const std::vector<Val> &fetches,
            const fusion::FusionResult &result)
{
    AnalysisReport report;
    const std::vector<Node *> alive = graph::reachableNodes(fetches);
    const std::unordered_set<const Node *> reachable(alive.begin(),
                                                     alive.end());
    for (size_t i = 0; i < result.groups.size(); ++i)
        auditGroup(result.groups[i], reachable, i, report);
    return report;
}

} // namespace echo::analysis
