#include "analysis/tape_audit.h"

#include <algorithm>
#include <map>
#include <string>
#include <unordered_map>
#include <utility>

#include "graph/tape.h"
#include "memory/planner.h"
#include "obs/memory_timeline.h"

namespace echo::analysis {

namespace {

/** One currently-live arena interval during the record replay. */
struct LiveSlot
{
    int64_t end = 0;
    const graph::Node *node = nullptr;
    int sched_pos = -1;
};

} // namespace

AnalysisReport
auditTape(const graph::Tape &tape)
{
    AnalysisReport report;
    const memory::MemoryPlan &plan = tape.plan();

    // (a) The arena must BE the plan: sized to its peak exactly.  A
    // mismatch means Tape::compile lost the plan-becomes-allocator
    // property the whole design rests on.
    if (tape.arenaBytes() != plan.pool_peak_bytes) {
        report.add(Check::kPlanStale, Severity::kError,
                   "tape arena is " + std::to_string(tape.arenaBytes()) +
                       " bytes but the plan's pool peak is " +
                       std::to_string(plan.pool_peak_bytes) + " bytes");
    }

    // (b) Re-plan the tape's own liveness analysis with the footprint
    // timeline recorded, and integrate the timeline's address trace —
    // two independent derivations of the same peak.
    obs::MemoryTimeline timeline;
    memory::PlannerOptions popts;
    popts.timeline = &timeline;
    const memory::MemoryPlan fresh =
        memory::planMemory(tape.liveness(), popts);
    if (fresh.pool_peak_bytes != plan.pool_peak_bytes) {
        report.add(Check::kPlanStale, Severity::kError,
                   "re-planning the tape's liveness gives pool peak " +
                       std::to_string(fresh.pool_peak_bytes) +
                       " bytes, but the tape was compiled against " +
                       std::to_string(plan.pool_peak_bytes) + " bytes");
    }
    const obs::TimelineReplay replay = obs::replayTimeline(timeline);
    if (!replay.ok() ||
        replay.address_peak_bytes != tape.arenaBytes()) {
        report.add(Check::kPlanStale, Severity::kError,
                   "timeline replay disagrees with the tape arena: "
                   "address peak " +
                       std::to_string(replay.address_peak_bytes) +
                       " bytes vs arena " +
                       std::to_string(tape.arenaBytes()) + " bytes (" +
                       std::to_string(replay.violations.size()) +
                       " violation(s))");
    }

    // Planned allocation per dense value id, for the slot checks.
    std::unordered_map<int, memory::Allocation> expect;
    expect.reserve(plan.offsets.size());
    for (const auto &[val, alloc] : plan.offsets) {
        const int id = tape.valueId(val);
        if (id >= 0)
            expect.emplace(id, alloc);
    }

    // Total ref-count decrements per value: a value dies on its last
    // one.  Mirrors the tape's own run-time release discipline.
    std::unordered_map<int, int> total_dec, seen_dec;
    for (int id : tape.releaseValues())
        ++total_dec[id];

    // (c) + (d): walk the records in schedule order.  Outputs go live
    // before the record's releases retire inputs — the same
    // alloc-before-free convention the planner uses at a shared
    // schedule position (see analysis/lifetime.cc checkPlan).
    std::map<int64_t, LiveSlot> active;          // keyed by begin offset
    std::unordered_map<int, int64_t> live_begin; // value id -> begin
    int64_t high_water = 0;

    const std::vector<graph::Tape::OutSlot> &slots = tape.outSlots();
    const std::vector<int> &releases = tape.releaseValues();
    for (const graph::Tape::Record &r : tape.records()) {
        for (int j = 0; j < r.out_count; ++j) {
            const graph::Tape::OutSlot &os = slots[size_t(r.out_begin + j)];
            if (os.persistent)
                continue;
            const auto it = expect.find(os.value);
            if (it == expect.end()) {
                report.add(Check::kPlanMissing, Severity::kError,
                           "transient tape output has no planned "
                           "allocation",
                           {NodeRef::of(r.node, r.sched_pos)});
                continue;
            }
            if (it->second.offset != os.offset ||
                it->second.bytes < os.bytes) {
                report.add(Check::kTapeSlotMismatch, Severity::kError,
                           "tape slot [" + std::to_string(os.offset) +
                               ", +" + std::to_string(os.bytes) +
                               ") disagrees with the plan's [" +
                               std::to_string(it->second.offset) + ", +" +
                               std::to_string(it->second.bytes) + ")",
                           {NodeRef::of(r.node, r.sched_pos)});
                continue;
            }
            if (os.offset < 0 ||
                os.offset + os.bytes > tape.arenaBytes()) {
                report.add(Check::kTapeSlotMismatch, Severity::kError,
                           "tape slot [" + std::to_string(os.offset) +
                               ", +" + std::to_string(os.bytes) +
                               ") falls outside the " +
                               std::to_string(tape.arenaBytes()) +
                               "-byte arena",
                           {NodeRef::of(r.node, r.sched_pos)});
                continue;
            }
            // Replay with the PLANNED extent (alignment padding
            // included) — that is what the planner guarantees
            // disjoint, and what its peak is measured over.
            const int64_t begin = it->second.offset;
            const int64_t end = it->second.offset + it->second.bytes;
            const auto overlap = [&](const LiveSlot &holder) {
                report.add(Check::kPlanOverlap, Severity::kError,
                           "tape bytes [" + std::to_string(begin) + ", " +
                               std::to_string(end) +
                               ") overlap a live slot",
                           {NodeRef::of(holder.node, holder.sched_pos),
                            NodeRef::of(r.node, r.sched_pos)});
            };
            auto next = active.lower_bound(begin);
            bool clashed = false;
            if (next != active.begin()) {
                const auto prev = std::prev(next);
                if (prev->second.end > begin) {
                    overlap(prev->second);
                    clashed = true;
                }
            }
            if (!clashed && next != active.end() && next->first < end) {
                overlap(next->second);
                clashed = true;
            }
            if (clashed)
                continue;
            active[begin] = LiveSlot{end, r.node, r.sched_pos};
            live_begin[os.value] = begin;
            high_water = std::max(high_water, end);
        }
        for (int j = 0; j < r.release_count; ++j) {
            const int id = releases[size_t(r.release_begin + j)];
            const int seen = ++seen_dec[id];
            const int total = total_dec[id];
            if (seen > total) {
                report.add(Check::kDoubleFree, Severity::kError,
                           "tape value released more times than its "
                           "use count",
                           {NodeRef::of(r.node, r.sched_pos)});
                continue;
            }
            if (seen == total) {
                const auto lb = live_begin.find(id);
                if (lb != live_begin.end()) {
                    active.erase(lb->second);
                    live_begin.erase(lb);
                }
            }
        }
    }

    // Everything transient must have died by the end of the replay;
    // survivors would pin arena bytes across runs.
    for (const auto &[id, begin] : live_begin) {
        const auto it = active.find(begin);
        report.add(Check::kLeakedSlot, Severity::kError,
                   "transient tape slot at offset " +
                       std::to_string(begin) +
                       " is never released by any record",
                   it != active.end()
                       ? std::vector<NodeRef>{NodeRef::of(
                             it->second.node, it->second.sched_pos)}
                       : std::vector<NodeRef>{});
    }

    // The replay's high-water mark must reach the plan's peak: the
    // planner's peak IS the pool's address high-water mark, so falling
    // short means slots and plan have drifted apart.
    if (report.ok() && high_water != plan.pool_peak_bytes) {
        report.add(Check::kPlanStale, Severity::kError,
                   "record replay reaches a high-water mark of " +
                       std::to_string(high_water) +
                       " bytes, but the plan's pool peak is " +
                       std::to_string(plan.pool_peak_bytes) + " bytes");
    }
    return report;
}

} // namespace echo::analysis
