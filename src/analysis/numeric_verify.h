/**
 * @file
 * Gradient-equivalence verification (folded in from the old
 * echo/verify.*): the Echo rewrite replays the exact same ops on the
 * exact same inputs, so gradients must match bit-for-bit on identical
 * input data.  compareFetches reports the maximum absolute difference
 * across two equally long fetch lists, typically one from a rewritten
 * graph and one from its baseline.
 */
#ifndef ECHO_ANALYSIS_NUMERIC_VERIFY_H
#define ECHO_ANALYSIS_NUMERIC_VERIFY_H

#include <vector>

#include "tensor/tensor.h"

namespace echo::analysis {

/** Outcome of comparing two fetch sets. */
struct VerifyResult
{
    double max_abs_diff = 0.0;
    bool shapes_match = true;

    bool identical() const { return shapes_match && max_abs_diff == 0.0; }
    bool withinTolerance(double tol) const
    {
        return shapes_match && max_abs_diff <= tol;
    }
};

/** Element-wise comparison of two equally long fetch lists. */
VerifyResult compareFetches(const std::vector<Tensor> &a,
                            const std::vector<Tensor> &b);

} // namespace echo::analysis

#endif // ECHO_ANALYSIS_NUMERIC_VERIFY_H
