/**
 * @file
 * Structural verifier for the dataflow graph IR.
 *
 * The Echo pass and autodiff both mutate graphs (autodiff appends a
 * backward subgraph; the pass splices in recompute clones and redirects
 * backward edges), so a silently corrupted graph — a dangling def-use
 * edge, a cycle, a stale shape — produces wrong gradients with no
 * crash.  verifyGraph re-derives every invariant from scratch:
 *
 *  - every input edge resolves to a node of the same graph with a valid
 *    output index,
 *  - the def-use relation is acyclic (node ids stop being a topological
 *    order once the pass redirects backward edges into later-id
 *    recompute clones, so this is a real DFS, not an id comparison),
 *  - out_shapes agree with the op's own inferShapes applied to the
 *    producers' shapes (the op signature re-derived from oplib),
 *  - Phase tags are coherent: forward nodes never consume backward or
 *    recompute values, recompute nodes never consume backward values.
 */
#ifndef ECHO_ANALYSIS_GRAPH_VERIFIER_H
#define ECHO_ANALYSIS_GRAPH_VERIFIER_H

#include "analysis/report.h"

namespace echo::analysis {

/** Verify every node the graph owns. */
AnalysisReport verifyGraph(const graph::Graph &g);

/** Verify the subgraph reachable from @p fetches. */
AnalysisReport verifyFetches(const std::vector<graph::Val> &fetches);

/**
 * Verify an explicit node universe.  Edges leaving the universe are
 * dangling unless @p allow_external_producers (verifyFetches closes the
 * universe over producers, verifyGraph passes the whole graph).
 */
AnalysisReport verifyNodes(const std::vector<graph::Node *> &nodes,
                           bool allow_external_producers = false);

} // namespace echo::analysis

#endif // ECHO_ANALYSIS_GRAPH_VERIFIER_H
