/**
 * @file
 * Echo pass auditor: diffs a graph against its pre-pass snapshot and
 * checks the rewrite's invariants without executing anything.
 *
 *  - the pass only appends recompute-phase nodes and only edits
 *    backward-node inputs, and every edited edge points at a
 *    recompute value of the same shape as the original,
 *  - the recompute set contains no GEMM-class op (Echo's central rule;
 *    checked through the kernels a fused region lowers to),
 *  - recompute subgraphs are pure: they read forward, weight,
 *    placeholder, or recompute values, never backward ones,
 *  - workspace sharing holds: recompute buffers of at most a couple of
 *    adjacent time steps are live at once (paper §4.1.2 — one shared
 *    arena, not one arena per step),
 *  - the cost model's claimed savings agree with the memory/liveness
 *    ground truth within tolerance.
 */
#ifndef ECHO_ANALYSIS_PASS_AUDIT_H
#define ECHO_ANALYSIS_PASS_AUDIT_H

#include "analysis/report.h"
#include "echo/recompute_pass.h"

namespace echo::analysis {

/** Pre-pass state needed to audit the rewrite afterwards. */
struct GraphSnapshot
{
    struct NodeRecord
    {
        const graph::Node *node = nullptr;
        graph::NodeKind kind = graph::NodeKind::kOp;
        graph::Phase phase = graph::Phase::kForward;
        const graph::Op *op = nullptr;
        std::string name;
        std::vector<graph::Val> inputs;
    };

    std::vector<NodeRecord> records;
    /** Stashed feature-map bytes (liveness ground truth, pre-pass). */
    int64_t stashed_bytes = 0;
    /** Planned transient-pool peak, pre-pass. */
    int64_t planned_peak_bytes = 0;
};

/** Capture @p g before running the recompute pass. */
GraphSnapshot snapshotGraph(const graph::Graph &g,
                            const std::vector<graph::Val> &fetches,
                            const std::vector<graph::Val> &weight_grads);

/** Auditor knobs. */
struct AuditOptions
{
    /** False for the respect_gemm_boundary=false ablation. */
    bool expect_gemm_free = true;
    /** Max distinct time steps with live recompute buffers at once. */
    int max_concurrent_recompute_steps = 3;
    /** Modeled-vs-measured stash savings tolerance (warning above). */
    double footprint_rel_tol = 0.5;
    int64_t footprint_abs_slack = 4096;
};

/** Audit the pass's rewrite of @p g against @p snapshot. */
AnalysisReport
auditRecomputePass(const GraphSnapshot &snapshot, const graph::Graph &g,
                   const std::vector<graph::Val> &fetches,
                   const std::vector<graph::Val> &weight_grads,
                   const pass::PassResult &result,
                   const AuditOptions &opts = {});

} // namespace echo::analysis

#endif // ECHO_ANALYSIS_PASS_AUDIT_H
