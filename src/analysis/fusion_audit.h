/**
 * @file
 * Fusion auditor: verifies that the element-wise fusion pass
 * (graph/fusion.h) preserved value equality.
 *
 * For every journaled group it checks, independently of the pass's own
 * bookkeeping:
 *  - structure: the sink really carries a FusedElementwiseOp, its
 *    inputs match the journaled frontier, and the recorded program
 *    signature re-derives from the original members' lowerings
 *    (the "fusion preserved value-equality metadata" check);
 *  - legality: interior members are unreachable from the fetches
 *    (no escaping interior value) and share the sink's phase;
 *  - values: on deterministic pseudo-random inputs, replaying the
 *    ORIGINAL ops node-by-node over the intact orphaned members is
 *    byte-identical to one fused forward() call.
 */
#ifndef ECHO_ANALYSIS_FUSION_AUDIT_H
#define ECHO_ANALYSIS_FUSION_AUDIT_H

#include "analysis/report.h"
#include "graph/fusion.h"

namespace echo::analysis {

/**
 * Audit every group of @p result against the post-fusion @p fetches.
 * Diagnostics use kFusionIllegalGroup / kFusionValueMismatch.
 */
AnalysisReport
auditFusion(const std::vector<graph::Val> &fetches,
            const fusion::FusionResult &result);

} // namespace echo::analysis

#endif // ECHO_ANALYSIS_FUSION_AUDIT_H
