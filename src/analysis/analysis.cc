#include "analysis/analysis.h"

#include <cstdlib>
#include <cstring>

#include "core/logging.h"

namespace echo::analysis {

AnalysisReport
analyzeAll(const std::vector<graph::Val> &fetches,
           const std::vector<graph::Val> &weight_grads,
           const AnalyzeOptions &opts)
{
    AnalysisReport report = verifyFetches(fetches);
    // A structurally broken graph makes schedule construction panic, so
    // the schedule-level analyzers only run on verified graphs.
    if (!report.ok())
        return report;

    const memory::LivenessResult live =
        memory::analyzeLiveness(fetches, weight_grads);
    if (opts.with_plan) {
        const memory::MemoryPlan plan = memory::planMemory(live);
        report.merge(analyzeLifetimes(live, fetches, weight_grads, &plan));
    } else {
        report.merge(analyzeLifetimes(live, fetches, weight_grads));
    }
    if (opts.parallel_hazards)
        report.merge(detectParallelHazards(buildTopology(fetches)));
    return report;
}

bool
verifyEnvEnabled()
{
    const char *env = std::getenv("ECHO_VERIFY");
    return env != nullptr && std::strcmp(env, "1") == 0;
}

void
verifyOrDie(const std::vector<graph::Val> &fetches, const char *what)
{
    const AnalysisReport report = analyzeAll(fetches);
    if (!report.ok()) {
        ECHO_PANIC("static analysis of ", what, " found ",
                   report.errorCount(), " error(s):\n",
                   report.toString());
    }
    if (report.warningCount() > 0)
        ECHO_WARN("static analysis of ", what, ":\n", report.toString());
}

} // namespace echo::analysis
