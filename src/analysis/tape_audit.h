/**
 * @file
 * Independent audit of a compiled execution tape (graph/tape.h).
 *
 * The tape's whole claim is that the memory plan IS the allocator: an
 * arena of exactly pool_peak_bytes, every transient output placed at
 * its planner offset, buffers released by ref count as the records
 * retire.  auditTape re-checks that claim without trusting the tape's
 * own compile-time bookkeeping:
 *
 *  - the arena must be plan().pool_peak_bytes, byte for byte, and
 *    re-planning the tape's own liveness analysis must reproduce that
 *    peak (a mismatch means the tape was compiled against a stale
 *    plan);
 *  - the re-plan records an obs::MemoryTimeline whose address replay
 *    must agree with the arena size (the planner's footprint curve,
 *    independently integrated);
 *  - every transient output slot must sit at its planned offset with
 *    its planned size, inside the arena;
 *  - replaying the records in schedule order with the tape's own
 *    release lists must never place two simultaneously-live transients
 *    in overlapping bytes, must free every transient exactly once, and
 *    must reach a high-water mark equal to pool_peak_bytes.
 *
 * Wired into the pass manager as the `tape-ready` postcondition
 * checker of the tape_compile pass, and into `echo-lint --tape`.
 */
#ifndef ECHO_ANALYSIS_TAPE_AUDIT_H
#define ECHO_ANALYSIS_TAPE_AUDIT_H

#include "analysis/report.h"

namespace echo::graph {
class Tape;
} // namespace echo::graph

namespace echo::analysis {

/** Replay @p tape's records against its liveness/plan (see file
 *  comment).  Pure analysis: never runs the tape. */
AnalysisReport auditTape(const graph::Tape &tape);

} // namespace echo::analysis

#endif // ECHO_ANALYSIS_TAPE_AUDIT_H
