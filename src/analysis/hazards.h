/**
 * @file
 * Static race detector for the ready-queue (kParallel) executor.
 *
 * The parallel executor dispatches every node whose producers have
 * completed, frees each buffer when its use count hits zero, and keys
 * all bookkeeping off a dense slot topology (one slot per schedule
 * position).  Its safety argument is structural, so it can be checked
 * without running anything:
 *
 *  - every output slot is written by exactly one node — two nodes that
 *    are incomparable in the dependency partial order (and hence can be
 *    simultaneously ready) must never share a slot,
 *  - a node's in-degree equals its input edge count, so it cannot enter
 *    the ready queue while a producer is still running,
 *  - every value's use count equals its consumer edges plus fetch
 *    references — a count that is too low is a free/use pair race (the
 *    last counted consumer frees the buffer while an uncounted one may
 *    still be reading it).
 *
 * detectParallelHazards() verifies a ParallelTopology against the graph
 * it claims to execute; buildTopology() derives the topology the same
 * way the executor does, so real executors are checked by construction
 * and tests can tamper with the arrays to seed races.
 */
#ifndef ECHO_ANALYSIS_HAZARDS_H
#define ECHO_ANALYSIS_HAZARDS_H

#include "analysis/report.h"

namespace echo::analysis {

/** The dense slot topology the parallel executor runs on. */
struct ParallelTopology
{
    std::vector<graph::Node *> schedule;
    /** Producer slot of each input edge, aligned with node->inputs. */
    std::vector<std::vector<int>> input_slots;
    /** Input-edge count per slot (the ready condition). */
    std::vector<int> in_degree;
    /** Remaining-use counts per slot (consumers + fetch references). */
    std::vector<int> use_counts;
    /** Slot of each fetch. */
    std::vector<int> fetch_slots;
};

/** Derive the topology for @p fetches exactly like the executor does. */
ParallelTopology buildTopology(const std::vector<graph::Val> &fetches);

/** Check @p topo for ready-queue races. */
AnalysisReport detectParallelHazards(const ParallelTopology &topo);

/**
 * One workspace-slot occupancy recorded by the serving batcher:
 * request @p request_id held row @p slot of pool @p pool (one pool per
 * length bucket) from batch sequence number @p acquired inclusive to
 * @p released exclusive.  The serving layer's padded-slot determinism
 * argument requires each live request to own its row exclusively, so
 * two requests whose intervals overlap on one (pool, slot) is a
 * correctness bug, not a performance bug.
 */
struct SlotInterval
{
    int64_t request_id = -1;
    int64_t pool = 0;
    int slot = -1;
    int64_t acquired = 0;
    int64_t released = 0;
};

/**
 * Check a serving workspace journal: every interval's slot must lie in
 * [0, num_slots), and no two requests may overlap on one (pool, slot).
 */
AnalysisReport
detectWorkspaceAliasing(const std::vector<SlotInterval> &journal,
                        int num_slots);

/** Terminal outcome of one slot lease (how the occupancy ended). */
enum class LeaseStatus {
    kServed = 0,   ///< ran to EOS / length cap; payload delivered
    kCancelled,    ///< evicted by an explicit client cancellation
    kExpired,      ///< evicted because its deadline budget ran out
};

/**
 * One slot occupancy recorded by the continuous scheduler.  Compared to
 * the run-to-completion SlotInterval, a lease carries the lifecycle
 * facts the recycling scheduler must get right: whether the state rows
 * were re-initialized when the request was spliced in (@p reinit), and
 * how the occupancy terminated (@p status).  Interval bounds are in
 * scheduler-iteration units, half-open [acquired, released).
 */
struct SlotLease
{
    int64_t request_id = -1;
    int64_t pool = 0;
    int slot = -1;
    int64_t acquired = 0;
    int64_t released = 0;
    /** 1 iff the state rows were zeroed/reset at splice time. */
    int reinit = 1;
    LeaseStatus status = LeaseStatus::kServed;
};

/**
 * Audit a continuous-batching slot-recycling journal:
 *  - exclusivity: no two leases overlap on one (pool, slot), and every
 *    slot lies in range (delegates to detectWorkspaceAliasing),
 *  - no state leakage: every lease must have re-initialized its state
 *    rows at splice time (reinit == 1), else the new occupant inherited
 *    the previous request's hidden state,
 *  - lifecycle: every lease is a well-formed half-open interval
 *    (acquired < released), and every request id appears exactly once —
 *    a request that terminates twice (or holds two slots) violates the
 *    admitted-requests-terminate-exactly-once contract.
 */
AnalysisReport auditSlotRecycling(const std::vector<SlotLease> &journal,
                                  int num_slots);

} // namespace echo::analysis

#endif // ECHO_ANALYSIS_HAZARDS_H
