/**
 * @file
 * Diagnostic types shared by every static analyzer in src/analysis.
 *
 * Analyzers never abort on a violation — they collect Diagnostics into
 * an AnalysisReport so callers (echo-lint, tests, the ECHO_VERIFY hook)
 * can print the whole story: which invariant broke, and the chain of
 * offending nodes (name, op, phase, schedule slot) that breaks it.
 */
#ifndef ECHO_ANALYSIS_REPORT_H
#define ECHO_ANALYSIS_REPORT_H

#include <string>
#include <vector>

#include "graph/graph.h"

namespace echo::analysis {

/** How bad a diagnostic is.  ok() fails only on kError. */
enum class Severity { kWarning, kError };

/** Which invariant a diagnostic is about. */
enum class Check {
    // Graph verifier.
    kMalformedNode,  ///< null op, missing outputs, inputs on an input node
    kDanglingEdge,   ///< input Val undefined / foreign / bad output index
    kCycle,          ///< def-use cycle (graph is not a DAG)
    kShapeMismatch,  ///< out_shapes disagree with the op's inferShapes
    kPhaseViolation, ///< e.g. a forward node consuming a backward value
    // Schedule lifetime analyzer.
    kUseBeforeDef,  ///< consumer scheduled before (or without) its producer
    kUseAfterFree,  ///< consumer scheduled after the value's last_use free
    kDoubleFree,    ///< a buffer would be released twice
    kLeakedSlot,    ///< a transient held for the whole run for no reason
    kPlanMissing,   ///< transient value without a planned allocation
    kPlanOverlap,   ///< planned bytes overlap another live allocation
    // Parallel hazard detector.
    kSharedOutputSlot, ///< two simultaneously-ready nodes write one slot
    kReadyRace,        ///< a node can become ready before its producers
    kPrematureFree,    ///< use count below the consumer count (free/use race)
    // Echo pass auditor.
    kRecomputedGemm,     ///< a GEMM-class op in the recompute set
    kImpureRecompute,    ///< a recompute node reading a backward value
    kMutatedForward,     ///< the pass edited a pre-existing non-backward node
    kStaleEdge,          ///< a redirected edge points at a non-equivalent value
    kWorkspaceOverlap,   ///< too many recompute steps live simultaneously
    kFootprintMismatch,  ///< cost-model savings disagree with liveness truth
    // Serving workspace checker.
    kSlotAliasing,   ///< two live requests mapped to one workspace slot
    kSlotOutOfRange, ///< a request mapped outside the slot range
    kSlotStateLeak,  ///< a slot occupant inherited the previous state rows
    kLifecycleViolation, ///< a request with zero or multiple terminal leases
    // Fusion auditor.
    kFusionIllegalGroup,  ///< fused group breaks a legality rule
    kFusionValueMismatch, ///< fused program != original chain (bytes)
    // Budget planner (checkPoolBudget / plan-feasible checker).
    kBudgetExceeded, ///< transient pool peak above the byte budget
    kPlanStale,      ///< recorded memory plan disagrees with the graph
    // Execution-tape auditor.
    kTapeSlotMismatch, ///< a tape slot disagrees with the memory plan
};

/** Stable kebab-case name of a check (diagnostic codes in output). */
const char *checkName(Check check);

/** A node as it appears in a diagnostic chain. */
struct NodeRef
{
    const graph::Node *node = nullptr;
    /** Schedule position, or -1 when the diagnostic is not schedule-based. */
    int slot = -1;

    static NodeRef of(const graph::Node *n, int slot = -1)
    {
        return NodeRef{n, slot};
    }

    /** "#12 attn.tanh (tanh, forward, slot 7)". */
    std::string toString() const;
};

/** One violation (or suspicious condition) found by an analyzer. */
struct Diagnostic
{
    Check check = Check::kMalformedNode;
    Severity severity = Severity::kError;
    std::string message;
    /** Offending nodes, producer-to-consumer order where meaningful. */
    std::vector<NodeRef> chain;

    std::string toString() const;
};

/** Everything one analysis run found. */
struct AnalysisReport
{
    std::vector<Diagnostic> diagnostics;

    bool ok() const { return errorCount() == 0; }
    size_t errorCount() const;
    size_t warningCount() const;

    /** Append a diagnostic (builder style used by the analyzers). */
    void add(Check check, Severity severity, std::string message,
             std::vector<NodeRef> chain = {});

    /** Append everything from @p other. */
    void merge(const AnalysisReport &other);

    /** One line per diagnostic; "" when empty. */
    std::string toString() const;
};

/**
 * Graphviz rendering of the violating subgraph: every node named in a
 * diagnostic chain (drawn red-bordered) plus its direct producers and
 * consumers within @p universe, with the usual phase coloring.  Used by
 * echo-lint --dot.
 */
std::string violatingSubgraphDot(const AnalysisReport &report,
                                 const std::vector<graph::Node *> &universe);

} // namespace echo::analysis

#endif // ECHO_ANALYSIS_REPORT_H
