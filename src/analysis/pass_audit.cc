#include "analysis/pass_audit.h"

#include <algorithm>
#include <cstdlib>
#include <set>

#include "memory/liveness.h"
#include "memory/planner.h"

namespace echo::analysis {

namespace {

using graph::Node;
using graph::NodeKind;
using graph::Phase;
using graph::Val;

/** Stashed feature-map bytes per the liveness ground truth. */
int64_t
stashedBytes(const memory::LivenessResult &live)
{
    int64_t bytes = 0;
    for (const memory::ValueInfo &info : live.values)
        if (!info.persistent &&
            info.category == memory::DataStructure::kFeatureMaps)
            bytes += info.bytes;
    return bytes;
}

/** The pass may only append recompute nodes and redirect backward edges. */
void
checkDiff(const GraphSnapshot &snap, const graph::Graph &g,
          AnalysisReport &report)
{
    const auto &nodes = g.nodes();
    if (nodes.size() < snap.records.size()) {
        report.add(Check::kMutatedForward, Severity::kError,
                   "the pass removed nodes (" +
                       std::to_string(snap.records.size()) + " -> " +
                       std::to_string(nodes.size()) + ")");
        return;
    }
    for (size_t i = 0; i < snap.records.size(); ++i) {
        const GraphSnapshot::NodeRecord &rec = snap.records[i];
        const Node *n = nodes[i].get();
        if (n != rec.node || n->kind != rec.kind ||
            n->phase != rec.phase || n->op.get() != rec.op ||
            n->name != rec.name) {
            report.add(Check::kMutatedForward, Severity::kError,
                       "pre-existing node was replaced or retyped",
                       {NodeRef::of(n)});
            continue;
        }
        if (n->inputs.size() != rec.inputs.size()) {
            report.add(Check::kMutatedForward, Severity::kError,
                       "pre-existing node gained or lost input edges",
                       {NodeRef::of(n)});
            continue;
        }
        for (size_t e = 0; e < n->inputs.size(); ++e) {
            const Val &now = n->inputs[e];
            const Val &then = rec.inputs[e];
            if (now == then)
                continue;
            if (n->phase != Phase::kBackward) {
                report.add(Check::kMutatedForward, Severity::kError,
                           "the pass redirected an input of a "
                           "non-backward node",
                           {NodeRef::of(now.node), NodeRef::of(n)});
                continue;
            }
            // A backward redirect must land on a recompute value of the
            // original's shape; anything else is a stale edge.
            if (!now.defined() ||
                now.node->phase != Phase::kRecompute) {
                report.add(Check::kStaleEdge, Severity::kError,
                           "backward input was redirected to a "
                           "non-recompute value",
                           {NodeRef::of(now.node), NodeRef::of(n)});
            } else if (!(graph::Graph::shapeOf(now) ==
                         graph::Graph::shapeOf(then))) {
                report.add(Check::kStaleEdge, Severity::kError,
                           "backward input was redirected to a value "
                           "of shape " +
                               graph::Graph::shapeOf(now).toString() +
                               ", original was " +
                               graph::Graph::shapeOf(then).toString(),
                           {NodeRef::of(now.node), NodeRef::of(n)});
            }
        }
    }
    for (size_t i = snap.records.size(); i < nodes.size(); ++i) {
        if (nodes[i]->phase != Phase::kRecompute) {
            report.add(Check::kMutatedForward, Severity::kError,
                       "the pass appended a non-recompute node",
                       {NodeRef::of(nodes[i].get())});
        }
    }
}

/** GEMM-free and pure recompute subgraphs. */
void
checkRecomputeNodes(const graph::Graph &g, const AuditOptions &opts,
                    AnalysisReport &report)
{
    for (const auto &node_ptr : g.nodes()) {
        const Node *n = node_ptr.get();
        if (n->phase != Phase::kRecompute || n->kind != NodeKind::kOp)
            continue;
        for (const Val &v : n->inputs) {
            if (v.defined() && v.node->phase == Phase::kBackward) {
                report.add(Check::kImpureRecompute, Severity::kError,
                           "recompute node reads a backward value; the "
                           "replay is not a pure forward replay",
                           {NodeRef::of(v.node), NodeRef::of(n)});
            }
        }
        if (!opts.expect_gemm_free || n->op == nullptr)
            continue;
        // A fused region hides its interior ops, but the kernels it
        // lowers to tell the truth about what it replays (is_gemm is
        // set by the GEMM-class ops themselves).  cheapToRecompute()
        // alone is not evidence: fusion composites return false there
        // to stop the pass from recomputing them twice, not because
        // they contain a GEMM — so it only counts for ops that lower
        // to no kernels at all and hence can't be judged by them.
        std::vector<Shape> in_shapes;
        for (const Val &v : n->inputs)
            in_shapes.push_back(graph::Graph::shapeOf(v));
        const std::vector<graph::KernelDesc> descs =
            n->op->kernels(in_shapes, n->out_shapes);
        bool has_gemm = descs.empty() && !n->op->cheapToRecompute();
        for (const graph::KernelDesc &d : descs)
            has_gemm = has_gemm || d.is_gemm;
        if (has_gemm) {
            report.add(Check::kRecomputedGemm, Severity::kError,
                       "compute-heavy GEMM-class work in the recompute "
                       "set (op " +
                           n->op->name() + ")",
                       {NodeRef::of(n)});
        }
    }
}

/**
 * Workspace sharing: at any schedule position, recompute buffers of at
 * most a few adjacent time steps may be live.  If many steps' replay
 * buffers coexist, the scheduler or the fusion welded steps together
 * and the O(B·T·H) arena of paper §4.1.2 silently became O(B·T²·H).
 */
void
checkWorkspaceSharing(const memory::LivenessResult &live,
                      const AuditOptions &opts, AnalysisReport &report)
{
    struct Interval
    {
        int def, last;
        int step;
        const Node *node;
    };
    std::vector<Interval> intervals;
    for (const memory::ValueInfo &info : live.values) {
        const Node *n = info.val.node;
        if (n->phase != Phase::kRecompute || n->time_step < 0 ||
            info.persistent)
            continue;
        intervals.push_back(
            {info.def_pos, info.last_use_pos, n->time_step, n});
    }
    if (intervals.empty())
        return;

    // Sweep: at each def, count distinct steps among live intervals.
    std::sort(intervals.begin(), intervals.end(),
              [](const Interval &a, const Interval &b) {
                  return a.def < b.def;
              });
    int worst = 0;
    const Interval *worst_interval = nullptr;
    for (size_t i = 0; i < intervals.size(); ++i) {
        std::set<int> steps;
        for (size_t j = 0; j <= i; ++j)
            if (intervals[j].last >= intervals[i].def)
                steps.insert(intervals[j].step);
        if (static_cast<int>(steps.size()) > worst) {
            worst = static_cast<int>(steps.size());
            worst_interval = &intervals[i];
        }
    }
    if (worst > opts.max_concurrent_recompute_steps) {
        report.add(Check::kWorkspaceOverlap, Severity::kError,
                   "recompute buffers of " + std::to_string(worst) +
                       " time steps are live simultaneously (max " +
                       std::to_string(
                           opts.max_concurrent_recompute_steps) +
                       "); the shared workspace arena is broken",
                   {NodeRef::of(worst_interval->node,
                                worst_interval->def)});
    }
}

/** Cost-model savings vs liveness ground truth. */
void
checkFootprint(const GraphSnapshot &snap,
               const memory::LivenessResult &live_after,
               const memory::MemoryPlan &plan_after,
               const pass::PassResult &result, const AuditOptions &opts,
               AnalysisReport &report)
{
    const int64_t modeled = result.bytes_saved - result.bytes_added;
    if (result.num_regions == 0)
        return;
    const int64_t actual = snap.stashed_bytes - stashedBytes(live_after);
    if (modeled > 0 && actual <= 0) {
        report.add(Check::kFootprintMismatch, Severity::kError,
                   "cost model claims " + std::to_string(modeled) +
                       " stash bytes saved but liveness measures " +
                       std::to_string(actual));
        return;
    }
    const int64_t gap = std::abs(actual - modeled);
    const int64_t scale = std::max(std::abs(actual), std::abs(modeled));
    if (gap > static_cast<int64_t>(opts.footprint_rel_tol *
                                   static_cast<double>(scale)) +
                  opts.footprint_abs_slack) {
        report.add(Check::kFootprintMismatch, Severity::kWarning,
                   "cost model claims " + std::to_string(modeled) +
                       " stash bytes saved, liveness measures " +
                       std::to_string(actual));
    }
    if (modeled > 0 &&
        plan_after.pool_peak_bytes > snap.planned_peak_bytes) {
        report.add(Check::kFootprintMismatch, Severity::kWarning,
                   "pool peak grew from " +
                       std::to_string(snap.planned_peak_bytes) + " to " +
                       std::to_string(plan_after.pool_peak_bytes) +
                       " despite modeled savings");
    }
}

} // namespace

GraphSnapshot
snapshotGraph(const graph::Graph &g, const std::vector<Val> &fetches,
              const std::vector<Val> &weight_grads)
{
    GraphSnapshot snap;
    snap.records.reserve(g.numNodes());
    for (const auto &node_ptr : g.nodes()) {
        const Node *n = node_ptr.get();
        GraphSnapshot::NodeRecord rec;
        rec.node = n;
        rec.kind = n->kind;
        rec.phase = n->phase;
        rec.op = n->op.get();
        rec.name = n->name;
        rec.inputs = n->inputs;
        snap.records.push_back(std::move(rec));
    }
    const memory::LivenessResult live =
        memory::analyzeLiveness(fetches, weight_grads);
    snap.stashed_bytes = stashedBytes(live);
    snap.planned_peak_bytes = memory::planMemory(live).pool_peak_bytes;
    return snap;
}

AnalysisReport
auditRecomputePass(const GraphSnapshot &snapshot, const graph::Graph &g,
                   const std::vector<Val> &fetches,
                   const std::vector<Val> &weight_grads,
                   const pass::PassResult &result,
                   const AuditOptions &opts)
{
    AnalysisReport report;
    checkDiff(snapshot, g, report);
    checkRecomputeNodes(g, opts, report);

    const memory::LivenessResult live_after =
        memory::analyzeLiveness(fetches, weight_grads);
    checkWorkspaceSharing(live_after, opts, report);
    checkFootprint(snapshot, live_after, memory::planMemory(live_after),
                   result, opts, report);
    return report;
}

} // namespace echo::analysis
