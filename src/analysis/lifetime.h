/**
 * @file
 * Schedule lifetime analyzer: replays a schedule symbolically against
 * the liveness analysis and (optionally) the memory plan, without
 * executing a single op.
 *
 * The executor frees each buffer when its last consumer has run and the
 * pool planner hands the freed bytes to later values, so a wrong
 * live interval is a use-after-free and an overlapping allocation is a
 * write into somebody else's live buffer.  The analyzer re-walks the
 * schedule with its own use counting and a shadow pool and reports:
 *
 *  - use-before-def: a consumer scheduled at or before its producer,
 *  - use-after-free: a consumer scheduled after the position where the
 *    recorded live interval releases the buffer,
 *  - double-free: a node scheduled twice (the last-consumer protocol
 *    would release its buffers twice),
 *  - leaked slots: transients held for the whole run although nothing
 *    (weights, placeholders, fetches, weight grads) justifies it,
 *  - plan violations: a transient with no allocation, an undersized
 *    allocation, or planned bytes that overlap a live allocation.
 */
#ifndef ECHO_ANALYSIS_LIFETIME_H
#define ECHO_ANALYSIS_LIFETIME_H

#include "analysis/report.h"
#include "memory/planner.h"

namespace echo::analysis {

/**
 * Analyze @p live (schedule + intervals) for lifetime violations.
 *
 * @param fetches      the run's outputs; fetched values may legally stay
 *                     alive to the end.
 * @param weight_grads gradient values (legally persistent).
 * @param plan         when given, its allocations are replayed against
 *                     the live intervals in a shadow pool.
 */
AnalysisReport
analyzeLifetimes(const memory::LivenessResult &live,
                 const std::vector<graph::Val> &fetches,
                 const std::vector<graph::Val> &weight_grads = {},
                 const memory::MemoryPlan *plan = nullptr);

/**
 * Check @p plan's transient pool peak against a byte budget.  Clean
 * when pool_peak_bytes <= @p budget_bytes; otherwise one
 * budget-exceeded error whose chain names the producing nodes of the
 * largest transients live at the plan's peak position (the binding
 * buffers — what must shrink or be recomputed for the budget to become
 * reachable), largest first.
 */
AnalysisReport checkPoolBudget(const memory::LivenessResult &live,
                               const memory::MemoryPlan &plan,
                               int64_t budget_bytes);

} // namespace echo::analysis

#endif // ECHO_ANALYSIS_LIFETIME_H
