#include "analysis/report.h"

#include <sstream>
#include <unordered_set>

namespace echo::analysis {

namespace {

const char *
phaseName(graph::Phase phase)
{
    switch (phase) {
      case graph::Phase::kForward:
        return "forward";
      case graph::Phase::kBackward:
        return "backward";
      case graph::Phase::kRecompute:
        return "recompute";
    }
    return "?";
}

std::string
opName(const graph::Node *n)
{
    switch (n->kind) {
      case graph::NodeKind::kPlaceholder:
        return "placeholder";
      case graph::NodeKind::kWeight:
        return "weight";
      case graph::NodeKind::kOp:
        return n->op ? n->op->name() : "<null-op>";
    }
    return "?";
}

} // namespace

const char *
checkName(Check check)
{
    switch (check) {
      case Check::kMalformedNode:
        return "malformed-node";
      case Check::kDanglingEdge:
        return "dangling-edge";
      case Check::kCycle:
        return "cycle";
      case Check::kShapeMismatch:
        return "shape-mismatch";
      case Check::kPhaseViolation:
        return "phase-violation";
      case Check::kUseBeforeDef:
        return "use-before-def";
      case Check::kUseAfterFree:
        return "use-after-free";
      case Check::kDoubleFree:
        return "double-free";
      case Check::kLeakedSlot:
        return "leaked-slot";
      case Check::kPlanMissing:
        return "plan-missing";
      case Check::kPlanOverlap:
        return "plan-overlap";
      case Check::kSharedOutputSlot:
        return "shared-output-slot";
      case Check::kReadyRace:
        return "ready-race";
      case Check::kPrematureFree:
        return "premature-free";
      case Check::kRecomputedGemm:
        return "recomputed-gemm";
      case Check::kImpureRecompute:
        return "impure-recompute";
      case Check::kMutatedForward:
        return "mutated-forward";
      case Check::kStaleEdge:
        return "stale-edge";
      case Check::kWorkspaceOverlap:
        return "workspace-overlap";
      case Check::kFootprintMismatch:
        return "footprint-mismatch";
      case Check::kSlotAliasing:
        return "slot-aliasing";
      case Check::kSlotOutOfRange:
        return "slot-out-of-range";
      case Check::kSlotStateLeak:
        return "slot-state-leak";
      case Check::kLifecycleViolation:
        return "lifecycle-violation";
      case Check::kFusionIllegalGroup:
        return "fusion-illegal-group";
      case Check::kFusionValueMismatch:
        return "fusion-value-mismatch";
      case Check::kBudgetExceeded:
        return "budget-exceeded";
      case Check::kPlanStale:
        return "plan-stale";
      case Check::kTapeSlotMismatch:
        return "tape-slot-mismatch";
    }
    return "?";
}

std::string
NodeRef::toString() const
{
    if (node == nullptr)
        return "<null node>";
    std::ostringstream oss;
    oss << "#" << node->id << " "
        << (node->name.empty() ? opName(node) : node->name) << " ("
        << opName(node) << ", " << phaseName(node->phase);
    if (slot >= 0)
        oss << ", slot " << slot;
    oss << ")";
    return oss.str();
}

std::string
Diagnostic::toString() const
{
    std::ostringstream oss;
    oss << (severity == Severity::kError ? "error" : "warning") << " ["
        << checkName(check) << "] " << message;
    for (const NodeRef &ref : chain)
        oss << "\n    " << ref.toString();
    return oss.str();
}

size_t
AnalysisReport::errorCount() const
{
    size_t n = 0;
    for (const Diagnostic &d : diagnostics)
        if (d.severity == Severity::kError)
            ++n;
    return n;
}

size_t
AnalysisReport::warningCount() const
{
    return diagnostics.size() - errorCount();
}

void
AnalysisReport::add(Check check, Severity severity, std::string message,
                    std::vector<NodeRef> chain)
{
    Diagnostic d;
    d.check = check;
    d.severity = severity;
    d.message = std::move(message);
    d.chain = std::move(chain);
    diagnostics.push_back(std::move(d));
}

void
AnalysisReport::merge(const AnalysisReport &other)
{
    diagnostics.insert(diagnostics.end(), other.diagnostics.begin(),
                       other.diagnostics.end());
}

std::string
AnalysisReport::toString() const
{
    std::ostringstream oss;
    for (const Diagnostic &d : diagnostics)
        oss << d.toString() << "\n";
    return oss.str();
}

std::string
violatingSubgraphDot(const AnalysisReport &report,
                     const std::vector<graph::Node *> &universe)
{
    std::unordered_set<const graph::Node *> violating;
    for (const Diagnostic &d : report.diagnostics)
        for (const NodeRef &ref : d.chain)
            if (ref.node != nullptr)
                violating.insert(ref.node);

    // The dump shows each violating node plus its one-hop neighborhood.
    std::unordered_set<const graph::Node *> shown = violating;
    for (const graph::Node *n : universe) {
        for (const graph::Val &v : n->inputs) {
            if (violating.count(n) && v.node != nullptr)
                shown.insert(v.node);
            if (v.node != nullptr && violating.count(v.node))
                shown.insert(n);
        }
    }

    std::ostringstream oss;
    oss << "digraph echo_lint {\n  rankdir=TB;\n"
        << "  node [shape=box, fontsize=10];\n";
    for (const graph::Node *n : universe) {
        if (!shown.count(n))
            continue;
        const char *fill = "white";
        switch (n->phase) {
          case graph::Phase::kForward:
            fill = n->kind == graph::NodeKind::kWeight
                       ? "lightgoldenrod"
                       : "lightblue";
            break;
          case graph::Phase::kBackward:
            fill = "lightsalmon";
            break;
          case graph::Phase::kRecompute:
            fill = "palegreen";
            break;
        }
        std::string label =
            n->name.empty() ? std::string(opName(n)) : n->name;
        for (char &ch : label)
            if (ch == '"')
                ch = '\'';
        oss << "  n" << n->id << " [label=\"#" << n->id << " " << label
            << "\", style=filled, fillcolor=" << fill;
        if (violating.count(n))
            oss << ", color=red, penwidth=3";
        oss << "];\n";
    }
    for (const graph::Node *n : universe) {
        if (!shown.count(n))
            continue;
        for (const graph::Val &v : n->inputs)
            if (v.node != nullptr && shown.count(v.node))
                oss << "  n" << v.node->id << " -> n" << n->id << ";\n";
    }
    oss << "}\n";
    return oss.str();
}

} // namespace echo::analysis
