#include "analysis/numeric_verify.h"

#include <cmath>

namespace echo::analysis {

VerifyResult
compareFetches(const std::vector<Tensor> &a, const std::vector<Tensor> &b)
{
    VerifyResult res;
    if (a.size() != b.size()) {
        res.shapes_match = false;
        return res;
    }
    for (size_t i = 0; i < a.size(); ++i) {
        if (a[i].shape() != b[i].shape()) {
            res.shapes_match = false;
            return res;
        }
        for (int64_t j = 0; j < a[i].numel(); ++j) {
            const double d = std::abs(static_cast<double>(a[i].at(j)) -
                                      static_cast<double>(b[i].at(j)));
            res.max_abs_diff = std::max(res.max_abs_diff, d);
        }
    }
    return res;
}

} // namespace echo::analysis
