#include "analysis/graph_verifier.h"

#include <sstream>
#include <unordered_map>
#include <unordered_set>

namespace echo::analysis {

namespace {

using graph::Node;
using graph::NodeKind;
using graph::Phase;
using graph::Val;

/**
 * Per-node edge validation.  Returns false when any edge is broken, in
 * which case shape/phase checks are skipped for the node (they would
 * dereference the broken edge).
 */
bool
checkEdges(const Node *n,
           const std::unordered_set<const Node *> &universe,
           bool allow_external, AnalysisReport &report)
{
    bool ok = true;
    for (size_t i = 0; i < n->inputs.size(); ++i) {
        const Val &v = n->inputs[i];
        if (v.node == nullptr) {
            report.add(Check::kDanglingEdge, Severity::kError,
                       "input " + std::to_string(i) +
                           " is an undefined value",
                       {NodeRef::of(n)});
            ok = false;
            continue;
        }
        if (!universe.count(v.node) && !allow_external) {
            report.add(Check::kDanglingEdge, Severity::kError,
                       "input " + std::to_string(i) +
                           " refers to a node outside the graph",
                       {NodeRef::of(v.node), NodeRef::of(n)});
            ok = false;
            continue;
        }
        if (v.index < 0 || v.index >= v.node->numOutputs()) {
            report.add(Check::kDanglingEdge, Severity::kError,
                       "input " + std::to_string(i) +
                           " uses output index " +
                           std::to_string(v.index) + " of a node with " +
                           std::to_string(v.node->numOutputs()) +
                           " outputs",
                       {NodeRef::of(v.node), NodeRef::of(n)});
            ok = false;
        }
    }
    return ok;
}

void
checkNodeWellFormed(const Node *n, AnalysisReport &report)
{
    switch (n->kind) {
      case NodeKind::kPlaceholder:
      case NodeKind::kWeight:
        if (!n->inputs.empty())
            report.add(Check::kMalformedNode, Severity::kError,
                       "input node has dataflow inputs",
                       {NodeRef::of(n)});
        if (n->numOutputs() != 1)
            report.add(Check::kMalformedNode, Severity::kError,
                       "input node must have exactly one output",
                       {NodeRef::of(n)});
        if (n->op != nullptr)
            report.add(Check::kMalformedNode, Severity::kError,
                       "input node carries an op", {NodeRef::of(n)});
        break;
      case NodeKind::kOp:
        if (n->op == nullptr)
            report.add(Check::kMalformedNode, Severity::kError,
                       "op node has a null op", {NodeRef::of(n)});
        if (n->numOutputs() < 1)
            report.add(Check::kMalformedNode, Severity::kError,
                       "op node declares no outputs", {NodeRef::of(n)});
        break;
    }
}

void
checkShapes(const Node *n, AnalysisReport &report)
{
    if (n->kind != NodeKind::kOp || n->op == nullptr)
        return;
    std::vector<Shape> in_shapes;
    in_shapes.reserve(n->inputs.size());
    for (const Val &v : n->inputs)
        in_shapes.push_back(
            v.node->out_shapes[static_cast<size_t>(v.index)]);
    const std::vector<Shape> expect = n->op->inferShapes(in_shapes);
    if (expect.size() != n->out_shapes.size()) {
        report.add(Check::kShapeMismatch, Severity::kError,
                   "op declares " +
                       std::to_string(n->out_shapes.size()) +
                       " outputs but its signature infers " +
                       std::to_string(expect.size()),
                   {NodeRef::of(n)});
        return;
    }
    for (size_t i = 0; i < expect.size(); ++i) {
        if (!(expect[i] == n->out_shapes[i])) {
            report.add(Check::kShapeMismatch, Severity::kError,
                       "output " + std::to_string(i) + " recorded as " +
                           n->out_shapes[i].toString() +
                           " but the op signature infers " +
                           expect[i].toString(),
                       {NodeRef::of(n)});
        }
    }
}

void
checkPhases(const Node *n, AnalysisReport &report)
{
    for (const Val &v : n->inputs) {
        const Phase producer = v.node->phase;
        const bool bad =
            (n->phase == Phase::kForward && producer != Phase::kForward) ||
            (n->phase == Phase::kRecompute &&
             producer == Phase::kBackward);
        if (bad) {
            report.add(
                Check::kPhaseViolation, Severity::kError,
                std::string(n->phase == Phase::kForward ? "forward"
                                                        : "recompute") +
                    " node consumes a " +
                    (producer == Phase::kBackward ? "backward"
                                                  : "recompute") +
                    " value",
                {NodeRef::of(v.node), NodeRef::of(n)});
        }
    }
}

/**
 * Cycle detection by iterative DFS over def-use edges (producer ->
 * consumer direction is irrelevant for cycle existence; we walk
 * consumer -> producer).  On a cycle, reports the closed path.
 */
void
checkAcyclic(const std::vector<Node *> &nodes,
             const std::unordered_set<const Node *> &universe,
             AnalysisReport &report)
{
    enum class Color { kWhite, kGrey, kBlack };
    std::unordered_map<const Node *, Color> color;
    color.reserve(nodes.size());
    for (const Node *n : nodes)
        color[n] = Color::kWhite;

    struct Frame
    {
        const Node *node;
        size_t next_input;
    };

    for (const Node *root : nodes) {
        if (color[root] != Color::kWhite)
            continue;
        std::vector<Frame> stack{{root, 0}};
        color[root] = Color::kGrey;
        while (!stack.empty()) {
            Frame &f = stack.back();
            if (f.next_input >= f.node->inputs.size()) {
                color[f.node] = Color::kBlack;
                stack.pop_back();
                continue;
            }
            const Val &v = f.node->inputs[f.next_input++];
            if (v.node == nullptr || !universe.count(v.node))
                continue; // reported as a dangling edge already
            Color &c = color[v.node];
            if (c == Color::kWhite) {
                c = Color::kGrey;
                stack.push_back({v.node, 0});
            } else if (c == Color::kGrey) {
                // Found a back edge; the grey suffix of the stack from
                // v.node onward is the cycle.
                std::vector<NodeRef> chain;
                bool in_cycle = false;
                for (const Frame &fr : stack) {
                    if (fr.node == v.node)
                        in_cycle = true;
                    if (in_cycle)
                        chain.push_back(NodeRef::of(fr.node));
                }
                chain.push_back(NodeRef::of(v.node));
                report.add(Check::kCycle, Severity::kError,
                           "def-use cycle of " +
                               std::to_string(chain.size() - 1) +
                               " nodes",
                           std::move(chain));
                return; // one cycle is enough to make the point
            }
        }
    }
}

} // namespace

AnalysisReport
verifyNodes(const std::vector<Node *> &nodes, bool allow_external_producers)
{
    AnalysisReport report;
    std::unordered_set<const Node *> universe(nodes.begin(), nodes.end());

    std::unordered_set<int> seen_ids;
    for (const Node *n : nodes) {
        if (!seen_ids.insert(n->id).second)
            report.add(Check::kMalformedNode, Severity::kError,
                       "duplicate node id", {NodeRef::of(n)});
        checkNodeWellFormed(n, report);
        const bool edges_ok =
            checkEdges(n, universe, allow_external_producers, report);
        if (edges_ok) {
            checkShapes(n, report);
            checkPhases(n, report);
        }
    }
    checkAcyclic(nodes, universe, report);
    return report;
}

AnalysisReport
verifyGraph(const graph::Graph &g)
{
    std::vector<Node *> nodes;
    nodes.reserve(g.numNodes());
    for (const auto &n : g.nodes())
        nodes.push_back(n.get());
    return verifyNodes(nodes, /*allow_external_producers=*/false);
}

AnalysisReport
verifyFetches(const std::vector<Val> &fetches)
{
    for (const Val &v : fetches) {
        if (!v.defined()) {
            AnalysisReport report;
            report.add(Check::kDanglingEdge, Severity::kError,
                       "fetch is an undefined value");
            return report;
        }
    }
    // reachableNodes closes over producers, so the universe is
    // self-contained and external edges are genuine corruption.
    return verifyNodes(graph::reachableNodes(fetches),
                       /*allow_external_producers=*/false);
}

} // namespace echo::analysis
