#include "analysis/hazards.h"

#include <algorithm>
#include <cstdint>
#include <unordered_map>

#include "graph/schedule.h"

namespace echo::analysis {

namespace {

using graph::Node;
using graph::Val;

/**
 * Comparability in the dependency partial order, computed lazily: the
 * bitset work is O(n^2/64) and only classifying an already-found
 * violation needs it, so clean graphs never pay for it.
 */
class PartialOrder
{
  public:
    explicit PartialOrder(const ParallelTopology &topo) : topo_(topo) {}

    /** True when one of the slots transitively depends on the other. */
    bool
    comparable(int a, int b)
    {
        if (ancestors_.empty())
            build();
        const size_t words = (topo_.schedule.size() + 63) / 64;
        const auto bit = [&](int anc, int of) {
            return (ancestors_[static_cast<size_t>(of) * words +
                               static_cast<size_t>(anc) / 64] >>
                    (static_cast<size_t>(anc) % 64)) &
                   1u;
        };
        return bit(a, b) != 0 || bit(b, a) != 0;
    }

  private:
    void
    build()
    {
        const size_t n = topo_.schedule.size();
        const size_t words = (n + 63) / 64;
        ancestors_.assign(n * words, 0);
        // Slots are in schedule order and edges point backward in it,
        // so one forward sweep closes the ancestor sets transitively.
        for (size_t s = 0; s < n; ++s) {
            uint64_t *row = &ancestors_[s * words];
            for (int producer : topo_.input_slots[s]) {
                if (producer < 0 || static_cast<size_t>(producer) >= n ||
                    static_cast<size_t>(producer) >= s)
                    continue; // broken edges reported elsewhere
                row[static_cast<size_t>(producer) / 64] |=
                    uint64_t{1} << (static_cast<size_t>(producer) % 64);
                const uint64_t *prow =
                    &ancestors_[static_cast<size_t>(producer) * words];
                for (size_t w = 0; w < words; ++w)
                    row[w] |= prow[w];
            }
        }
    }

    const ParallelTopology &topo_;
    std::vector<uint64_t> ancestors_;
};

} // namespace

ParallelTopology
buildTopology(const std::vector<Val> &fetches)
{
    ParallelTopology topo;
    topo.schedule = graph::buildSchedule(fetches);
    const size_t n = topo.schedule.size();
    std::unordered_map<const Node *, int> slot_of;
    slot_of.reserve(n);
    for (size_t s = 0; s < n; ++s)
        slot_of[topo.schedule[s]] = static_cast<int>(s);

    topo.input_slots.assign(n, {});
    topo.in_degree.assign(n, 0);
    topo.use_counts.assign(n, 0);
    for (size_t s = 0; s < n; ++s) {
        const Node *node = topo.schedule[s];
        for (const Val &v : node->inputs) {
            auto it = slot_of.find(v.node);
            const int producer = it == slot_of.end() ? -1 : it->second;
            topo.input_slots[s].push_back(producer);
            if (producer >= 0)
                ++topo.use_counts[static_cast<size_t>(producer)];
            ++topo.in_degree[s];
        }
    }
    for (const Val &v : fetches) {
        auto it = slot_of.find(v.node);
        topo.fetch_slots.push_back(it == slot_of.end() ? -1 : it->second);
        if (it != slot_of.end())
            ++topo.use_counts[static_cast<size_t>(it->second)];
    }
    return topo;
}

AnalysisReport
detectParallelHazards(const ParallelTopology &topo)
{
    AnalysisReport report;
    const size_t n = topo.schedule.size();
    if (topo.input_slots.size() != n || topo.in_degree.size() != n ||
        topo.use_counts.size() != n) {
        report.add(Check::kSharedOutputSlot, Severity::kError,
                   "topology arrays disagree with the schedule length");
        return report;
    }

    PartialOrder order(topo);

    // One slot per node: a node appearing twice means two dispatches
    // write the same output buffers.
    std::unordered_map<const Node *, int> first_slot;
    for (size_t s = 0; s < n; ++s) {
        const Node *node = topo.schedule[s];
        auto [it, inserted] = first_slot.emplace(node, static_cast<int>(s));
        if (!inserted) {
            const bool racy =
                !order.comparable(it->second, static_cast<int>(s));
            report.add(Check::kSharedOutputSlot, Severity::kError,
                       std::string("node occupies slots ") +
                           std::to_string(it->second) + " and " +
                           std::to_string(s) +
                           (racy ? "; the dispatches are incomparable "
                                   "and can write the slot concurrently"
                                 : "; the slot is written twice"),
                       {NodeRef::of(node, it->second),
                        NodeRef::of(node, static_cast<int>(s))});
        }
    }

    // Edge integrity + per-slot consumer counting.
    std::vector<int> consumer_edges(n, 0);
    for (size_t s = 0; s < n; ++s) {
        const Node *node = topo.schedule[s];
        if (topo.input_slots[s].size() != node->inputs.size()) {
            report.add(Check::kReadyRace, Severity::kError,
                       "slot lists " +
                           std::to_string(topo.input_slots[s].size()) +
                           " input edges but the node has " +
                           std::to_string(node->inputs.size()),
                       {NodeRef::of(node, static_cast<int>(s))});
            continue;
        }
        for (size_t i = 0; i < node->inputs.size(); ++i) {
            const int producer = topo.input_slots[s][i];
            const Val &v = node->inputs[i];
            if (producer < 0 || static_cast<size_t>(producer) >= n ||
                topo.schedule[static_cast<size_t>(producer)] != v.node) {
                report.add(Check::kReadyRace, Severity::kError,
                           "input edge " + std::to_string(i) +
                               " resolves to the wrong producer slot; "
                               "the real producer is not awaited",
                           {NodeRef::of(v.node),
                            NodeRef::of(node, static_cast<int>(s))});
                continue;
            }
            ++consumer_edges[static_cast<size_t>(producer)];
        }
        // A node whose in-degree undercounts its edges can enter the
        // ready queue while a producer is still running: a read/write
        // race on the producer's slot.
        if (topo.in_degree[s] !=
            static_cast<int>(topo.input_slots[s].size())) {
            report.add(Check::kReadyRace, Severity::kError,
                       "in-degree " + std::to_string(topo.in_degree[s]) +
                           " disagrees with the node's " +
                           std::to_string(topo.input_slots[s].size()) +
                           " input edges; the node can be dispatched "
                           "before its producers complete",
                       {NodeRef::of(node, static_cast<int>(s))});
        }
    }

    // Fetch references pin values to the end of the run.
    std::vector<int> fetch_refs(n, 0);
    for (int slot : topo.fetch_slots) {
        if (slot < 0 || static_cast<size_t>(slot) >= n) {
            report.add(Check::kReadyRace, Severity::kError,
                       "fetch does not resolve to a schedule slot");
            continue;
        }
        ++fetch_refs[static_cast<size_t>(slot)];
    }

    // Use-count audit: the free/use pair check.  A count below the true
    // consumer count frees the buffer while some consumer — one that
    // can run concurrently with the freeing one — has not yet read it.
    for (size_t s = 0; s < n; ++s) {
        const int expect = consumer_edges[s] + fetch_refs[s];
        if (topo.use_counts[s] < expect) {
            std::vector<NodeRef> chain{
                NodeRef::of(topo.schedule[s], static_cast<int>(s))};
            // Name the consumers racing over the free.
            for (size_t c = 0; c < n && chain.size() < 4; ++c)
                for (int producer : topo.input_slots[c])
                    if (producer == static_cast<int>(s)) {
                        chain.push_back(NodeRef::of(
                            topo.schedule[c], static_cast<int>(c)));
                        break;
                    }
            report.add(Check::kPrematureFree, Severity::kError,
                       "use count " +
                           std::to_string(topo.use_counts[s]) +
                           " is below the " + std::to_string(expect) +
                           " consumer/fetch references; the buffer is "
                           "freed while a consumer can still read it",
                       std::move(chain));
        } else if (topo.use_counts[s] > expect) {
            report.add(Check::kLeakedSlot, Severity::kWarning,
                       "use count " +
                           std::to_string(topo.use_counts[s]) +
                           " exceeds the " + std::to_string(expect) +
                           " consumer/fetch references; the buffer is "
                           "never freed",
                       {NodeRef::of(topo.schedule[s],
                                    static_cast<int>(s))});
        }
    }
    return report;
}

AnalysisReport
detectWorkspaceAliasing(const std::vector<SlotInterval> &journal,
                        int num_slots)
{
    AnalysisReport report;
    // Group intervals by (pool, slot); overlap within one group means
    // two requests shared a workspace row while both were live.
    std::unordered_map<int64_t, std::vector<const SlotInterval *>>
        by_slot;
    for (const SlotInterval &iv : journal) {
        if (iv.slot < 0 || iv.slot >= num_slots) {
            report.add(Check::kSlotOutOfRange, Severity::kError,
                       "request " + std::to_string(iv.request_id) +
                           " mapped to slot " +
                           std::to_string(iv.slot) +
                           " outside [0, " +
                           std::to_string(num_slots) + ")");
            continue;
        }
        const int64_t key =
            iv.pool * static_cast<int64_t>(num_slots) + iv.slot;
        by_slot[key].push_back(&iv);
    }
    for (auto &[key, ivs] : by_slot) {
        std::sort(ivs.begin(), ivs.end(),
                  [](const SlotInterval *a, const SlotInterval *b) {
                      return a->acquired != b->acquired
                                 ? a->acquired < b->acquired
                                 : a->request_id < b->request_id;
                  });
        for (size_t i = 1; i < ivs.size(); ++i) {
            const SlotInterval &prev = *ivs[i - 1];
            const SlotInterval &cur = *ivs[i];
            if (cur.acquired < prev.released) {
                report.add(
                    Check::kSlotAliasing, Severity::kError,
                    "requests " + std::to_string(prev.request_id) +
                        " and " + std::to_string(cur.request_id) +
                        " both live on pool " +
                        std::to_string(cur.pool) + " slot " +
                        std::to_string(cur.slot) + " over batches [" +
                        std::to_string(cur.acquired) + ", " +
                        std::to_string(
                            std::min(prev.released, cur.released)) +
                        ")");
            }
        }
    }
    return report;
}

AnalysisReport auditSlotRecycling(const std::vector<SlotLease> &journal,
                                  int num_slots)
{
    // Exclusivity and range reuse the interval checker verbatim: a
    // lease is a SlotInterval plus lifecycle facts.
    std::vector<SlotInterval> intervals;
    intervals.reserve(journal.size());
    for (const SlotLease &lease : journal) {
        intervals.push_back(SlotInterval{lease.request_id, lease.pool,
                                         lease.slot, lease.acquired,
                                         lease.released});
    }
    AnalysisReport report = detectWorkspaceAliasing(intervals, num_slots);

    std::unordered_map<int64_t, int> leases_per_request;
    for (const SlotLease &lease : journal) {
        if (lease.reinit != 1) {
            report.add(Check::kSlotStateLeak, Severity::kError,
                       "request " + std::to_string(lease.request_id) +
                           " spliced into pool " +
                           std::to_string(lease.pool) + " slot " +
                           std::to_string(lease.slot) +
                           " without re-initializing the state rows");
        }
        if (lease.acquired >= lease.released) {
            report.add(Check::kLifecycleViolation, Severity::kError,
                       "request " + std::to_string(lease.request_id) +
                           " has an empty or inverted lease [" +
                           std::to_string(lease.acquired) + ", " +
                           std::to_string(lease.released) + ")");
        }
        ++leases_per_request[lease.request_id];
    }
    for (const auto &[id, count] : leases_per_request) {
        if (count > 1) {
            report.add(Check::kLifecycleViolation, Severity::kError,
                       "request " + std::to_string(id) +
                           " terminated " + std::to_string(count) +
                           " times (must be exactly once)");
        }
    }
    return report;
}

} // namespace echo::analysis
