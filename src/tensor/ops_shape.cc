#include <cstring>

#include "core/logging.h"
#include "tensor/ops.h"

namespace echo::ops {

Tensor
transpose2d(const Tensor &a)
{
    ECHO_REQUIRE(a.shape().ndim() == 2, "transpose2d needs a matrix");
    const int64_t m = a.shape()[0];
    const int64_t n = a.shape()[1];
    Tensor c(Shape({n, m}));
    for (int64_t i = 0; i < m; ++i)
        for (int64_t j = 0; j < n; ++j)
            c.data()[j * m + i] = a.data()[i * n + j];
    return c;
}

Tensor
permute3d(const Tensor &a, const std::vector<int> &perm)
{
    ECHO_REQUIRE(a.shape().ndim() == 3 && perm.size() == 3,
                 "permute3d needs a 3-D tensor and a 3-long permutation");
    bool seen[3] = {false, false, false};
    for (int p : perm) {
        ECHO_REQUIRE(p >= 0 && p < 3 && !seen[p], "bad permutation");
        seen[p] = true;
    }
    const int64_t d[3] = {a.shape()[0], a.shape()[1], a.shape()[2]};
    Tensor c(Shape({d[perm[0]], d[perm[1]], d[perm[2]]}));
    int64_t idx[3];
    for (idx[0] = 0; idx[0] < d[0]; ++idx[0])
        for (idx[1] = 0; idx[1] < d[1]; ++idx[1])
            for (idx[2] = 0; idx[2] < d[2]; ++idx[2]) {
                const int64_t src =
                    (idx[0] * d[1] + idx[1]) * d[2] + idx[2];
                const int64_t dst = (idx[perm[0]] * d[perm[1]] +
                                     idx[perm[1]]) * d[perm[2]] +
                                    idx[perm[2]];
                c.data()[dst] = a.data()[src];
            }
    return c;
}

Tensor
concat(const std::vector<Tensor> &parts, int axis)
{
    ECHO_REQUIRE(!parts.empty(), "concat of nothing");
    const Shape &first = parts[0].shape();
    const int nd = first.ndim();
    if (axis < 0)
        axis += nd;
    ECHO_REQUIRE(axis >= 0 && axis < nd, "concat axis out of range");

    int64_t cat_dim = 0;
    for (const Tensor &p : parts) {
        ECHO_REQUIRE(p.shape().ndim() == nd, "concat rank mismatch");
        for (int d = 0; d < nd; ++d) {
            if (d != axis) {
                ECHO_REQUIRE(p.shape()[d] == first[d],
                             "concat extent mismatch on axis ", d);
            }
        }
        cat_dim += p.shape()[axis];
    }

    Tensor c{first.withDim(axis, cat_dim)};

    // Copy part by part: outer = product of dims before axis,
    // inner = product of dims after axis.
    int64_t outer = 1;
    for (int d = 0; d < axis; ++d)
        outer *= first[d];
    int64_t inner = 1;
    for (int d = axis + 1; d < nd; ++d)
        inner *= first[d];

    int64_t dst_axis_off = 0;
    for (const Tensor &p : parts) {
        const int64_t p_axis = p.shape()[axis];
        for (int64_t o = 0; o < outer; ++o) {
            const float *src = p.data() + o * p_axis * inner;
            float *dst = c.data() +
                         (o * cat_dim + dst_axis_off) * inner;
            std::memcpy(dst, src,
                        static_cast<size_t>(p_axis * inner) *
                            sizeof(float));
        }
        dst_axis_off += p_axis;
    }
    return c;
}

Tensor
slice(const Tensor &a, int axis, int64_t begin, int64_t end)
{
    const int nd = a.shape().ndim();
    if (axis < 0)
        axis += nd;
    ECHO_REQUIRE(axis >= 0 && axis < nd, "slice axis out of range");
    const int64_t extent = a.shape()[axis];
    ECHO_REQUIRE(0 <= begin && begin < end && end <= extent,
                 "slice range [", begin, ", ", end, ") out of [0, ",
                 extent, ")");

    Tensor c{a.shape().withDim(axis, end - begin)};

    int64_t outer = 1;
    for (int d = 0; d < axis; ++d)
        outer *= a.shape()[d];
    int64_t inner = 1;
    for (int d = axis + 1; d < nd; ++d)
        inner *= a.shape()[d];

    const int64_t span = end - begin;
    for (int64_t o = 0; o < outer; ++o) {
        const float *src = a.data() + (o * extent + begin) * inner;
        float *dst = c.data() + o * span * inner;
        std::memcpy(dst, src,
                    static_cast<size_t>(span * inner) * sizeof(float));
    }
    return c;
}

Tensor
reverseAxis(const Tensor &a, int axis)
{
    const int nd = a.shape().ndim();
    if (axis < 0)
        axis += nd;
    ECHO_REQUIRE(axis >= 0 && axis < nd, "reverse axis out of range");
    const int64_t extent = a.shape()[axis];

    int64_t outer = 1;
    for (int d = 0; d < axis; ++d)
        outer *= a.shape()[d];
    int64_t inner = 1;
    for (int d = axis + 1; d < nd; ++d)
        inner *= a.shape()[d];

    Tensor c(a.shape());
    for (int64_t o = 0; o < outer; ++o)
        for (int64_t i = 0; i < extent; ++i) {
            const float *src = a.data() + (o * extent + i) * inner;
            float *dst =
                c.data() + (o * extent + (extent - 1 - i)) * inner;
            std::memcpy(dst, src,
                        static_cast<size_t>(inner) * sizeof(float));
        }
    return c;
}

} // namespace echo::ops
