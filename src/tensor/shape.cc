#include "tensor/shape.h"

#include <sstream>

#include "core/logging.h"

namespace echo {

void
Shape::assign(const int64_t *d, size_t n)
{
    ECHO_REQUIRE(n <= static_cast<size_t>(kMaxDims), "shape rank ", n,
                 " exceeds kMaxDims=", kMaxDims);
    ndim_ = static_cast<int>(n);
    for (size_t i = 0; i < n; ++i) {
        ECHO_REQUIRE(d[i] >= 0, "negative dimension in shape");
        dims_[i] = d[i];
    }
}

Shape::Shape(std::initializer_list<int64_t> dims)
{
    assign(dims.begin(), dims.size());
}

Shape::Shape(const std::vector<int64_t> &dims)
{
    assign(dims.data(), dims.size());
}

int
Shape::normalizeAxis(int axis) const
{
    const int n = ndim();
    if (axis < 0)
        axis += n;
    ECHO_CHECK(axis >= 0 && axis < n, "axis ", axis, " out of range for ",
               toString());
    return axis;
}

int64_t
Shape::dim(int axis) const
{
    return dims_[static_cast<size_t>(normalizeAxis(axis))];
}

int64_t
Shape::numel() const
{
    int64_t n = 1;
    for (int i = 0; i < ndim_; ++i)
        n *= dims_[static_cast<size_t>(i)];
    return n;
}

Shape
Shape::withDim(int axis, int64_t extent) const
{
    const int a = normalizeAxis(axis);
    ECHO_REQUIRE(extent >= 0, "negative dimension in shape");
    Shape out = *this;
    out.dims_[static_cast<size_t>(a)] = extent;
    return out;
}

Shape
Shape::dropAxis(int axis) const
{
    const int a = normalizeAxis(axis);
    Shape out;
    out.ndim_ = ndim_ - 1;
    for (int i = 0, j = 0; i < ndim_; ++i)
        if (i != a)
            out.dims_[static_cast<size_t>(j++)] =
                dims_[static_cast<size_t>(i)];
    return out;
}

Shape
Shape::insertAxis(int axis, int64_t n) const
{
    ECHO_CHECK(axis >= 0 && axis <= ndim(), "bad insert axis");
    ECHO_REQUIRE(ndim_ + 1 <= kMaxDims, "shape rank ", ndim_ + 1,
                 " exceeds kMaxDims=", kMaxDims);
    ECHO_REQUIRE(n >= 0, "negative dimension in shape");
    Shape out;
    out.ndim_ = ndim_ + 1;
    for (int i = 0, j = 0; j < out.ndim_; ++j) {
        if (j == axis)
            out.dims_[static_cast<size_t>(j)] = n;
        else
            out.dims_[static_cast<size_t>(j)] =
                dims_[static_cast<size_t>(i++)];
    }
    return out;
}

std::string
Shape::toString() const
{
    std::ostringstream oss;
    oss << "[";
    for (int i = 0; i < ndim_; ++i)
        oss << dims_[static_cast<size_t>(i)]
            << (i + 1 == ndim_ ? "" : "x");
    oss << "]";
    return oss.str();
}

} // namespace echo
