#include "tensor/shape.h"

#include <sstream>

#include "core/logging.h"

namespace echo {

Shape::Shape(std::initializer_list<int64_t> dims) : dims_(dims)
{
    for (int64_t d : dims_)
        ECHO_REQUIRE(d >= 0, "negative dimension in shape");
}

Shape::Shape(std::vector<int64_t> dims) : dims_(std::move(dims))
{
    for (int64_t d : dims_)
        ECHO_REQUIRE(d >= 0, "negative dimension in shape");
}

int
Shape::normalizeAxis(int axis) const
{
    const int n = ndim();
    if (axis < 0)
        axis += n;
    ECHO_CHECK(axis >= 0 && axis < n, "axis ", axis, " out of range for ",
               toString());
    return axis;
}

int64_t
Shape::dim(int axis) const
{
    return dims_[static_cast<size_t>(normalizeAxis(axis))];
}

int64_t
Shape::numel() const
{
    int64_t n = 1;
    for (int64_t d : dims_)
        n *= d;
    return n;
}

Shape
Shape::dropAxis(int axis) const
{
    const int a = normalizeAxis(axis);
    std::vector<int64_t> out = dims_;
    out.erase(out.begin() + a);
    return Shape(std::move(out));
}

Shape
Shape::insertAxis(int axis, int64_t n) const
{
    ECHO_CHECK(axis >= 0 && axis <= ndim(), "bad insert axis");
    std::vector<int64_t> out = dims_;
    out.insert(out.begin() + axis, n);
    return Shape(std::move(out));
}

std::string
Shape::toString() const
{
    std::ostringstream oss;
    oss << "[";
    for (size_t i = 0; i < dims_.size(); ++i)
        oss << dims_[i] << (i + 1 == dims_.size() ? "" : "x");
    oss << "]";
    return oss.str();
}

} // namespace echo
