/**
 * @file
 * Persistent packed-weight cache for the blocked GEMM.
 *
 * Training and serving run the same schedule thousands of times, and
 * every GEMM re-packs the SAME weight panels on every call of every
 * time step.  This cache packs a weight operand's A/B panels once per
 * (storage version, blocking, transpose) and serves the packed bytes
 * on every later call.
 *
 * Contract:
 *
 *  - Only REGISTERED tensors are cached.  Call registerPackableTensor
 *    on weights (models::feedParams and serve checkpoint load do);
 *    activations never register, so they never pollute the cache.
 *  - Registration is keyed by the tensor's data pointer and validated
 *    against its storage owner (weak_ptr), so a heap address reused by
 *    an unrelated tensor can never serve stale panels.
 *  - In-place updates MUST bump the version (train's optimizers do
 *    after every step); packs of older versions are dropped.
 *  - Cached panels are built by the same packing routines the kernel
 *    uses (tensor/gemm_pack.h), so results stay byte-identical to the
 *    uncached path for every schedule and thread count.
 *  - Resident bytes are capped (ECHO_PACK_CACHE_CAP_MB, default 512);
 *    entries that would exceed the cap are rejected, not evicted —
 *    steady-state workloads have a fixed working set, so an entry that
 *    fits once fits forever and hit rate reaches 100% after the first
 *    iteration.
 *
 * ECHO_PACK_CACHE=off disables the cache entirely (honest baselines
 * for the steady-state bench).  Counters: pack_cache.hit / .miss /
 * .bytes (bytes ever packed; kScheduling — schedules, and therefore
 * panel layouts, depend on the thread count).
 */
#ifndef ECHO_TENSOR_PACK_CACHE_H
#define ECHO_TENSOR_PACK_CACHE_H

#include <cstdint>
#include <memory>

#include "tensor/gemm_schedule.h"
#include "tensor/tensor.h"

namespace echo::ops {

/** Whether the cache is active (ECHO_PACK_CACHE, default on). */
bool packCacheEnabled();

/**
 * Mark @p t's storage as a cacheable GEMM operand.  Idempotent: a
 * re-registration of the same storage keeps its version; a new tensor
 * at a reused address resets it.
 */
void registerPackableTensor(const Tensor &t);

/**
 * Record an in-place update of @p t: bumps the storage version and
 * drops every cached pack built from the old contents.  A no-op for
 * unregistered tensors.
 */
void bumpTensorVersion(const Tensor &t);

/** A borrowed view of one cached pack (null data when absent). */
struct CachedPack
{
    const float *data = nullptr;
    /** Panel start offsets, indexed [outer_block * k_blocks + k_block]
     *  (outer = jc block for B, ic block for A; independent of the
     *  schedule's macro loop order). */
    const int64_t *offsets = nullptr;
    int64_t k_blocks = 0;

    explicit operator bool() const { return data != nullptr; }
};

/** Keep-alive for a CachedPack across one GEMM call. */
using CachedPackHold = std::shared_ptr<const void>;

/**
 * The packed-B panels for registered operand @p b under @p sch
 * (building them on first use), or a null pack when @p b is not
 * registered / the entry was rejected by the byte cap.  @p hold keeps
 * the pack alive for the duration of the call.
 */
CachedPack lookupPackedB(const Tensor &b, bool trans_b, int64_t k,
                         int64_t n, const GemmSchedule &sch,
                         CachedPackHold &hold);

/** Packed-A counterpart (alpha is folded into the panels, so it keys
 *  the entry). */
CachedPack lookupPackedA(const Tensor &a, bool trans_a, int64_t m,
                         int64_t k, float alpha,
                         const GemmSchedule &sch, CachedPackHold &hold);

/** Cache observability (tests, bench, echo-lint). */
struct PackCacheStats
{
    int64_t entries = 0;
    int64_t resident_bytes = 0;
    int64_t hits = 0;
    int64_t misses = 0;
    int64_t rejects = 0;
    int64_t invalidations = 0;
};
PackCacheStats packCacheStats();

/** Drop every entry and registration (tests). */
void clearPackCacheForTest();

/** Override the resident-byte cap (tests; <0 restores the default). */
void setPackCacheCapForTest(int64_t bytes);

} // namespace echo::ops

#endif // ECHO_TENSOR_PACK_CACHE_H
