/**
 * @file
 * A dense FP32 tensor with shared, contiguous, row-major storage.
 *
 * Tensor is a cheap value type: copies share the underlying buffer
 * (copy-on-nothing semantics — ops always produce fresh tensors, so
 * aliasing is safe).  All numeric work in the library goes through these
 * tensors; the GPU is modelled analytically, so CPU numerics here only
 * need to be correct, not fast, and are kept deliberately simple.
 *
 * Storage is an opaque owner (shared_ptr<void>) plus a raw data
 * pointer, so a tensor can wrap memory it does not manage — an
 * execution-tape arena slot, a caller's buffer — as long as the owner
 * keeps it alive.  The allocating constructors consult the thread's
 * AllocSlot hook (tensor/alloc_hook.h) first, which is how the tape
 * places op outputs at planner-assigned arena offsets without the ops
 * knowing.
 */
#ifndef ECHO_TENSOR_TENSOR_H
#define ECHO_TENSOR_TENSOR_H

#include <memory>
#include <vector>

#include "tensor/shape.h"

namespace echo {

class Rng;

/** Dense FP32 tensor with row-major contiguous storage. */
class Tensor
{
  public:
    /** An empty (shapeless, storage-less) tensor. */
    Tensor() = default;

    /** Allocate an uninitialized tensor of the given shape. */
    explicit Tensor(Shape shape);

    /** Allocate and fill with @p value. */
    Tensor(Shape shape, float value);

    /** Wrap an explicit buffer (must have shape.numel() elements). */
    Tensor(Shape shape, std::vector<float> values);

    /** All-zero tensor. */
    static Tensor zeros(Shape shape);

    /** All-@p value tensor. */
    static Tensor full(Shape shape, float value);

    /** I.i.d. uniform values in [lo, hi). */
    static Tensor uniform(Shape shape, Rng &rng, float lo = -0.1f,
                          float hi = 0.1f);

    /** I.i.d. Gaussian values. */
    static Tensor gaussian(Shape shape, Rng &rng, float mean = 0.0f,
                           float stddev = 1.0f);

    /**
     * Wrap external memory: @p data must hold shape.numel() floats and
     * stay valid for as long as @p owner does.  No copy, no allocation
     * beyond the shared_ptr bookkeeping.
     */
    static Tensor fromExternal(Shape shape, float *data,
                               std::shared_ptr<void> owner);

    const Shape &shape() const { return shape_; }
    int64_t numel() const { return shape_.numel(); }
    bool defined() const { return data_ != nullptr; }

    float *data() { return checkedData(); }
    const float *data() const { return checkedData(); }

    /**
     * Identity of the underlying storage: two tensors share memory iff
     * their owners share a control block.  Used by caches keyed on the
     * buffer (tensor/pack_cache.h) to detect address reuse.
     */
    const std::shared_ptr<void> &storageOwner() const { return storage_; }

    /** Element access by flat index. */
    float &at(int64_t i);
    float at(int64_t i) const;

    /** Element access for 2-D tensors. */
    float &at(int64_t i, int64_t j);
    float at(int64_t i, int64_t j) const;

    /** Element access for 3-D tensors. */
    float &at(int64_t i, int64_t j, int64_t k);
    float at(int64_t i, int64_t j, int64_t k) const;

    /**
     * Same storage viewed under a different shape.
     * @pre new_shape.numel() == numel()
     */
    Tensor reshape(Shape new_shape) const;

    /** Deep copy. */
    Tensor clone() const;

    /** Set every element to @p value. */
    void fill(float value);

    /** Sum of all elements (used by tests and loss reduction). */
    double sum() const;

    /** True when all finite (no NaN/Inf) — used as a training invariant. */
    bool allFinite() const;

  private:
    float *checkedData() const;

    /** Heap- or hook-allocate numel floats for shape_ (uninitialized). */
    void allocate();

    std::shared_ptr<void> storage_;
    float *data_ = nullptr;
    Shape shape_;
};

} // namespace echo

#endif // ECHO_TENSOR_TENSOR_H
