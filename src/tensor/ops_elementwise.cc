#include <cmath>

#include "core/logging.h"
#include "tensor/kernel_par.h"
#include "tensor/ops.h"

namespace echo::ops {

namespace {

using detail::parallelUnits;

/**
 * Apply a binary functor element-wise; shapes must match exactly.
 * Element-parallel: every output element depends only on the matching
 * input elements, so chunking cannot change any value.
 */
template <typename F>
Tensor
zipWith(const Tensor &a, const Tensor &b, F f, const char *what)
{
    ECHO_REQUIRE(a.shape() == b.shape(), what, ": shape mismatch ",
                 a.shape().toString(), " vs ", b.shape().toString());
    Tensor c(a.shape());
    const float *pa = a.data();
    const float *pb = b.data();
    float *pc = c.data();
    parallelUnits(a.numel(), 1, [=](int64_t i0, int64_t i1) {
        for (int64_t i = i0; i < i1; ++i)
            pc[i] = f(pa[i], pb[i]);
    });
    return c;
}

/** Apply a unary functor element-wise (element-parallel). */
template <typename F>
Tensor
mapWith(const Tensor &a, F f)
{
    Tensor c(a.shape());
    const float *pa = a.data();
    float *pc = c.data();
    parallelUnits(a.numel(), 1, [=](int64_t i0, int64_t i1) {
        for (int64_t i = i0; i < i1; ++i)
            pc[i] = f(pa[i]);
    });
    return c;
}

} // namespace

Tensor
add(const Tensor &a, const Tensor &b)
{
    return zipWith(a, b, [](float x, float y) { return x + y; }, "add");
}

Tensor
sub(const Tensor &a, const Tensor &b)
{
    return zipWith(a, b, [](float x, float y) { return x - y; }, "sub");
}

Tensor
mul(const Tensor &a, const Tensor &b)
{
    return zipWith(a, b, [](float x, float y) { return x * y; }, "mul");
}

Tensor
axpy(const Tensor &a, const Tensor &b, float alpha)
{
    return zipWith(a, b,
                   [alpha](float x, float y) { return x + alpha * y; },
                   "axpy");
}

Tensor
addScalar(const Tensor &a, float s)
{
    return mapWith(a, [s](float x) { return x + s; });
}

Tensor
mulScalar(const Tensor &a, float s)
{
    return mapWith(a, [s](float x) { return x * s; });
}

Tensor
tanh(const Tensor &a)
{
    return mapWith(a, [](float x) { return std::tanh(x); });
}

Tensor
sigmoid(const Tensor &a)
{
    return mapWith(a, [](float x) {
        return 1.0f / (1.0f + std::exp(-x));
    });
}

Tensor
relu(const Tensor &a)
{
    return mapWith(a, [](float x) { return x > 0.0f ? x : 0.0f; });
}

Tensor
square(const Tensor &a)
{
    return mapWith(a, [](float x) { return x * x; });
}

Tensor
negate(const Tensor &a)
{
    return mapWith(a, [](float x) { return -x; });
}

void
accumulateInto(Tensor &dst, const Tensor &src)
{
    ECHO_REQUIRE(dst.shape() == src.shape(),
                 "accumulateInto shape mismatch");
    float *pd = dst.data();
    const float *ps = src.data();
    parallelUnits(dst.numel(), 1, [=](int64_t i0, int64_t i1) {
        for (int64_t i = i0; i < i1; ++i)
            pd[i] += ps[i];
    });
}

Tensor
addBias(const Tensor &a, const Tensor &bias)
{
    ECHO_REQUIRE(bias.shape().ndim() == 1, "bias must be 1-D");
    const int64_t n = bias.shape()[0];
    ECHO_REQUIRE(a.shape().dim(-1) == n, "bias length mismatch");
    Tensor c(a.shape());
    const float *pa = a.data();
    const float *pb = bias.data();
    float *pc = c.data();
    const int64_t rows = a.numel() / n;
    parallelUnits(rows, n, [=](int64_t r0, int64_t r1) {
        for (int64_t r = r0; r < r1; ++r)
            for (int64_t j = 0; j < n; ++j)
                pc[r * n + j] = pa[r * n + j] + pb[j];
    });
    return c;
}

Tensor
sumToBias(const Tensor &a, int64_t n)
{
    ECHO_REQUIRE(a.shape().dim(-1) == n, "sumToBias length mismatch");
    Tensor c = Tensor::zeros(Shape({n}));
    const float *pa = a.data();
    float *pc = c.data();
    const int64_t rows = a.numel() / n;
    // Column-parallel: each chunk owns a j-range of the output and walks
    // the rows in increasing order, so per-column accumulation order is
    // the serial order regardless of the chunking.
    parallelUnits(n, rows, [=](int64_t j0, int64_t j1) {
        for (int64_t r = 0; r < rows; ++r)
            for (int64_t j = j0; j < j1; ++j)
                pc[j] += pa[r * n + j];
    });
    return c;
}

Tensor
broadcastAddBT(const Tensor &x, const Tensor &q)
{
    ECHO_REQUIRE(x.shape().ndim() == 3 && q.shape().ndim() == 2,
                 "broadcastAddBT expects [BxTxH] and [BxH]");
    const int64_t b = x.shape()[0];
    const int64_t t = x.shape()[1];
    const int64_t h = x.shape()[2];
    ECHO_REQUIRE(q.shape()[0] == b && q.shape()[1] == h,
                 "broadcastAddBT operand mismatch");
    Tensor c(x.shape());
    const float *px_base = x.data();
    const float *pq_base = q.data();
    float *pc_base = c.data();
    parallelUnits(b * t, h, [=](int64_t r0, int64_t r1) {
        for (int64_t r = r0; r < r1; ++r) {
            const float *pq = pq_base + (r / t) * h;
            const float *px = px_base + r * h;
            float *pc = pc_base + r * h;
            for (int64_t j = 0; j < h; ++j)
                pc[j] = px[j] + pq[j];
        }
    });
    return c;
}

Tensor
sumAxis1(const Tensor &x)
{
    ECHO_REQUIRE(x.shape().ndim() == 3, "sumAxis1 expects 3-D");
    const int64_t b = x.shape()[0];
    const int64_t t = x.shape()[1];
    const int64_t h = x.shape()[2];
    Tensor c = Tensor::zeros(Shape({b, h}));
    const float *px = x.data();
    float *pc = c.data();
    // Batch-parallel: each output row [i, :] is owned by one chunk and
    // accumulated over s in serial order.
    parallelUnits(b, t * h, [=](int64_t i0, int64_t i1) {
        for (int64_t i = i0; i < i1; ++i)
            for (int64_t s = 0; s < t; ++s)
                for (int64_t j = 0; j < h; ++j)
                    pc[i * h + j] += px[(i * t + s) * h + j];
    });
    return c;
}

Tensor
sumLastAxis(const Tensor &x)
{
    ECHO_REQUIRE(x.shape().ndim() >= 1, "sumLastAxis needs >= 1-D");
    const int64_t n = x.shape().dim(-1);
    const int64_t rows = x.numel() / n;
    Shape out_shape = x.shape().dropAxis(x.shape().ndim() - 1);
    if (out_shape.ndim() == 0)
        out_shape = Shape({1});
    Tensor c = Tensor::zeros(out_shape);
    const float *px = x.data();
    float *pc = c.data();
    parallelUnits(rows, n, [=](int64_t r0, int64_t r1) {
        for (int64_t r = r0; r < r1; ++r) {
            double acc = 0.0;
            for (int64_t j = 0; j < n; ++j)
                acc += px[r * n + j];
            pc[r] = static_cast<float>(acc);
        }
    });
    return c;
}

Tensor
dotLastAxis(const Tensor &x, const Tensor &v)
{
    ECHO_REQUIRE(v.shape().ndim() == 1, "dotLastAxis: v must be 1-D");
    const int64_t h = v.shape()[0];
    ECHO_REQUIRE(x.shape().dim(-1) == h, "dotLastAxis length mismatch");
    const int64_t rows = x.numel() / h;
    Shape out_shape = x.shape().dropAxis(x.shape().ndim() - 1);
    Tensor c(out_shape);
    const float *px = x.data();
    const float *pv = v.data();
    float *pc = c.data();
    parallelUnits(rows, h, [=](int64_t r0, int64_t r1) {
        for (int64_t r = r0; r < r1; ++r) {
            double acc = 0.0;
            for (int64_t j = 0; j < h; ++j)
                acc += px[r * h + j] * pv[j];
            pc[r] = static_cast<float>(acc);
        }
    });
    return c;
}

Tensor
outerLastAxis(const Tensor &s, const Tensor &v)
{
    ECHO_REQUIRE(v.shape().ndim() == 1, "outerLastAxis: v must be 1-D");
    const int64_t h = v.shape()[0];
    const int64_t rows = s.numel();
    Shape out_shape = s.shape().insertAxis(s.shape().ndim(), h);
    Tensor c(out_shape);
    const float *ps = s.data();
    const float *pv = v.data();
    float *pc = c.data();
    parallelUnits(rows, h, [=](int64_t r0, int64_t r1) {
        for (int64_t r = r0; r < r1; ++r)
            for (int64_t j = 0; j < h; ++j)
                pc[r * h + j] = ps[r] * pv[j];
    });
    return c;
}

Tensor
scaleRowsBT(const Tensor &x, const Tensor &w)
{
    ECHO_REQUIRE(x.shape().ndim() == 3 && w.shape().ndim() == 2,
                 "scaleRowsBT expects [BxTxH] and [BxT]");
    const int64_t b = x.shape()[0];
    const int64_t t = x.shape()[1];
    const int64_t h = x.shape()[2];
    ECHO_REQUIRE(w.shape()[0] == b && w.shape()[1] == t,
                 "scaleRowsBT weight mismatch");
    Tensor c(x.shape());
    const float *px = x.data();
    const float *pw = w.data();
    float *pc = c.data();
    parallelUnits(b * t, h, [=](int64_t r0, int64_t r1) {
        for (int64_t r = r0; r < r1; ++r) {
            const float ws = pw[r];
            for (int64_t j = 0; j < h; ++j)
                pc[r * h + j] = ws * px[r * h + j];
        }
    });
    return c;
}

Tensor
rowDotBT(const Tensor &a, const Tensor &b)
{
    ECHO_REQUIRE(a.shape().ndim() == 3 && a.shape() == b.shape(),
                 "rowDotBT expects matching [BxTxH]");
    const int64_t bsz = a.shape()[0];
    const int64_t t = a.shape()[1];
    const int64_t h = a.shape()[2];
    Tensor c(Shape({bsz, t}));
    const float *pa = a.data();
    const float *pb = b.data();
    float *pc = c.data();
    parallelUnits(bsz * t, h, [=](int64_t r0, int64_t r1) {
        for (int64_t r = r0; r < r1; ++r) {
            double acc = 0.0;
            const int64_t base = r * h;
            for (int64_t j = 0; j < h; ++j)
                acc += pa[base + j] * pb[base + j];
            pc[r] = static_cast<float>(acc);
        }
    });
    return c;
}

} // namespace echo::ops
