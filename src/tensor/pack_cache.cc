#include "tensor/pack_cache.h"

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "core/logging.h"
#include "obs/counters.h"
#include "tensor/gemm_pack.h"

namespace echo::ops {

namespace {

/** Everything that determines a pack's bytes and layout. */
struct PackKey
{
    const float *data = nullptr;
    int64_t version = 0;
    bool is_a = false;
    bool trans = false;
    /** Operand extents: (m, k) for A, (k, n) for B. */
    int64_t d0 = 0, d1 = 0;
    /** Blocking: (mc, kc, mr) for A, (nc, kc, nr) for B. */
    int32_t outer_block = 0;
    int32_t kc = 0;
    int32_t tile = 0;
    /** Bit pattern of alpha (folded into A panels; 0 for B). */
    uint32_t alpha_bits = 0;

    bool operator==(const PackKey &o) const = default;
};

struct PackKeyHash
{
    size_t
    operator()(const PackKey &k) const
    {
        size_t h = std::hash<const void *>()(k.data);
        auto mix = [&h](uint64_t v) {
            h ^= std::hash<uint64_t>()(v) + 0x9e3779b97f4a7c15ull +
                 (h << 6) + (h >> 2);
        };
        mix(static_cast<uint64_t>(k.version));
        mix(static_cast<uint64_t>(k.is_a) << 1 |
            static_cast<uint64_t>(k.trans));
        mix(static_cast<uint64_t>(k.d0));
        mix(static_cast<uint64_t>(k.d1));
        mix(static_cast<uint64_t>(k.outer_block));
        mix(static_cast<uint64_t>(k.kc));
        mix(static_cast<uint64_t>(k.tile));
        mix(k.alpha_bits);
        return h;
    }
};

/** One built pack: the panel bytes plus the panel offset table. */
struct PackEntry
{
    std::vector<float> panels;
    std::vector<int64_t> offsets;
    int64_t k_blocks = 0;
};

/** A registered weight storage. */
struct Registration
{
    std::weak_ptr<void> owner;
    int64_t version = 0;
};

struct CacheState
{
    std::mutex mu;
    std::unordered_map<const float *, Registration> registry;
    std::unordered_map<PackKey, std::shared_ptr<const PackEntry>,
                       PackKeyHash>
        entries;
    int64_t resident_bytes = 0;
    int64_t cap_bytes = -1; // resolved lazily from env
    int64_t hits = 0, misses = 0, rejects = 0, invalidations = 0;
};

CacheState &
state()
{
    static CacheState *s = new CacheState();
    return *s;
}

int64_t
defaultCapBytes()
{
    if (const char *env = std::getenv("ECHO_PACK_CACHE_CAP_MB"))
        return std::strtoll(env, nullptr, 10) * (int64_t(1) << 20);
    return int64_t(512) << 20;
}

/** Same-control-block test for shared_ptr/weak_ptr pairs. */
bool
sameOwner(const std::weak_ptr<void> &w, const std::shared_ptr<void> &s)
{
    return !w.owner_before(s) && !s.owner_before(w);
}

/**
 * The registered version of @p t, or -1 when unregistered / stale.
 * Caller holds the lock.  A stale registration (storage freed, address
 * reused by an unrelated tensor) is erased on sight.
 */
/** Erase every pack built from @p data.  Caller holds the lock. */
void
dropEntriesFor(CacheState &st, const float *data)
{
    for (auto e = st.entries.begin(); e != st.entries.end();) {
        if (e->first.data == data) {
            st.resident_bytes -= static_cast<int64_t>(
                e->second->panels.size() * sizeof(float) +
                e->second->offsets.size() * sizeof(int64_t));
            e = st.entries.erase(e);
            ++st.invalidations;
        } else {
            ++e;
        }
    }
}

int64_t
registeredVersion(CacheState &st, const Tensor &t)
{
    auto it = st.registry.find(t.data());
    if (it == st.registry.end())
        return -1;
    if (!sameOwner(it->second.owner, t.storageOwner())) {
        // The registered storage died and the allocator reused its
        // address for an unrelated tensor.  Its packs must go too:
        // a later re-registration restarts at version 0, which would
        // otherwise alias the dead tensor's (address, version) keys.
        st.registry.erase(it);
        dropEntriesFor(st, t.data());
        return -1;
    }
    return it->second.version;
}

void
countHit()
{
    static obs::Counter &c =
        obs::counter("pack_cache.hit", obs::CounterKind::kScheduling);
    c.add(1);
}

void
countMiss(int64_t bytes)
{
    static obs::Counter &c_miss =
        obs::counter("pack_cache.miss", obs::CounterKind::kScheduling);
    static obs::Counter &c_bytes =
        obs::counter("pack_cache.bytes", obs::CounterKind::kScheduling);
    c_miss.add(1);
    c_bytes.add(bytes);
}

/** Build the packed-B panels for the full operand (canonical order:
 *  jc-major, pc-minor, matching CachedPack::offsets indexing). */
std::shared_ptr<const PackEntry>
buildPackedB(const float *b, bool trans_b, int64_t k, int64_t n,
             int64_t kcb, int64_t ncb, int64_t nr)
{
    auto entry = std::make_shared<PackEntry>();
    const int64_t col_blocks = (n + ncb - 1) / ncb;
    const int64_t k_blocks = (k + kcb - 1) / kcb;
    entry->k_blocks = k_blocks;
    entry->offsets.reserve(
        static_cast<size_t>(col_blocks * k_blocks));
    int64_t total = 0;
    for (int64_t cb = 0; cb < col_blocks; ++cb) {
        const int64_t nc_cur = std::min(ncb, n - cb * ncb);
        const int64_t panels = (nc_cur + nr - 1) / nr;
        for (int64_t pb = 0; pb < k_blocks; ++pb) {
            const int64_t kc_cur = std::min(kcb, k - pb * kcb);
            entry->offsets.push_back(total);
            total += panels * nr * kc_cur;
        }
    }
    entry->panels.resize(static_cast<size_t>(total));
    for (int64_t cb = 0; cb < col_blocks; ++cb) {
        const int64_t jc = cb * ncb;
        const int64_t nc_cur = std::min(ncb, n - jc);
        for (int64_t pb = 0; pb < k_blocks; ++pb) {
            const int64_t pc = pb * kcb;
            const int64_t kc_cur = std::min(kcb, k - pc);
            detail::packBPanel(
                b, trans_b, k, n, pc, kc_cur, jc, nc_cur,
                entry->panels.data() +
                    entry->offsets[static_cast<size_t>(
                        cb * k_blocks + pb)],
                nr);
        }
    }
    return entry;
}

/** Packed-A counterpart (ic-major, pc-minor; alpha folded). */
std::shared_ptr<const PackEntry>
buildPackedA(const float *a, bool trans_a, int64_t m, int64_t k,
             float alpha, int64_t mcb, int64_t kcb, int64_t mr)
{
    auto entry = std::make_shared<PackEntry>();
    const int64_t row_blocks = (m + mcb - 1) / mcb;
    const int64_t k_blocks = (k + kcb - 1) / kcb;
    entry->k_blocks = k_blocks;
    entry->offsets.reserve(
        static_cast<size_t>(row_blocks * k_blocks));
    int64_t total = 0;
    for (int64_t rb = 0; rb < row_blocks; ++rb) {
        const int64_t mc_cur = std::min(mcb, m - rb * mcb);
        const int64_t panels = (mc_cur + mr - 1) / mr;
        for (int64_t pb = 0; pb < k_blocks; ++pb) {
            const int64_t kc_cur = std::min(kcb, k - pb * kcb);
            entry->offsets.push_back(total);
            total += panels * mr * kc_cur;
        }
    }
    entry->panels.resize(static_cast<size_t>(total));
    for (int64_t rb = 0; rb < row_blocks; ++rb) {
        const int64_t ic = rb * mcb;
        const int64_t mc_cur = std::min(mcb, m - ic);
        for (int64_t pb = 0; pb < k_blocks; ++pb) {
            const int64_t pc = pb * kcb;
            const int64_t kc_cur = std::min(kcb, k - pc);
            detail::packAPanel(
                a, trans_a, m, k, ic, mc_cur, pc, kc_cur, alpha,
                entry->panels.data() +
                    entry->offsets[static_cast<size_t>(
                        rb * k_blocks + pb)],
                mr);
        }
    }
    return entry;
}

CachedPack
lookupOrBuild(const Tensor &t, const PackKey &key_proto,
              const GemmSchedule &sch, float alpha, CachedPackHold &hold)
{
    CacheState &st = state();
    PackKey key = key_proto;
    std::shared_ptr<const PackEntry> entry;
    {
        std::lock_guard<std::mutex> lk(st.mu);
        const int64_t version = registeredVersion(st, t);
        if (version < 0)
            return {};
        key.version = version;
        auto it = st.entries.find(key);
        if (it != st.entries.end()) {
            entry = it->second;
            ++st.hits;
        }
    }
    if (entry) {
        countHit();
        hold = entry;
        return {entry->panels.data(), entry->offsets.data(),
                entry->k_blocks};
    }

    // Build outside the lock (packing can be slow); a concurrent
    // builder of the same key just wins the insert race — the loser's
    // copy is dropped, both are byte-identical.
    entry = key.is_a ? buildPackedA(t.data(), key.trans, key.d0, key.d1,
                                    alpha, sch.mc, sch.kc, sch.mr)
                     : buildPackedB(t.data(), key.trans, key.d0, key.d1,
                                    sch.kc, sch.nc, sch.nr);
    const int64_t bytes = static_cast<int64_t>(
        entry->panels.size() * sizeof(float) +
        entry->offsets.size() * sizeof(int64_t));
    {
        std::lock_guard<std::mutex> lk(st.mu);
        // Re-validate: the version may have been bumped mid-build.
        const int64_t version = registeredVersion(st, t);
        if (version != key.version)
            return {};
        if (st.cap_bytes < 0)
            st.cap_bytes = defaultCapBytes();
        auto it = st.entries.find(key);
        if (it != st.entries.end()) {
            entry = it->second;
        } else if (st.resident_bytes + bytes > st.cap_bytes) {
            ++st.rejects;
            return {};
        } else {
            st.entries.emplace(key, entry);
            st.resident_bytes += bytes;
            ++st.misses;
        }
    }
    countMiss(bytes);
    hold = entry;
    return {entry->panels.data(), entry->offsets.data(),
            entry->k_blocks};
}

} // namespace

bool
packCacheEnabled()
{
    static const bool enabled = [] {
        const char *env = std::getenv("ECHO_PACK_CACHE");
        if (!env)
            return true;
        return !(std::strcmp(env, "off") == 0 ||
                 std::strcmp(env, "0") == 0);
    }();
    return enabled;
}

void
registerPackableTensor(const Tensor &t)
{
    if (!t.defined())
        return;
    CacheState &st = state();
    std::lock_guard<std::mutex> lk(st.mu);
    auto [it, fresh] = st.registry.try_emplace(t.data());
    if (!fresh && sameOwner(it->second.owner, t.storageOwner()))
        return; // same storage: keep its version (idempotent)
    // New storage at this address (fresh, or the old registrant died
    // and the address was reused): any surviving packs describe the
    // DEAD tensor's bytes and would be served for version 0 again.
    dropEntriesFor(st, t.data());
    it->second.owner = t.storageOwner();
    it->second.version = 0;
}

void
bumpTensorVersion(const Tensor &t)
{
    if (!t.defined())
        return;
    CacheState &st = state();
    std::lock_guard<std::mutex> lk(st.mu);
    auto it = st.registry.find(t.data());
    if (it == st.registry.end() ||
        !sameOwner(it->second.owner, t.storageOwner()))
        return;
    ++it->second.version;
    // Drop packs of the old contents; the map stays small (a handful
    // of weights x schedules), so a linear sweep is fine.
    dropEntriesFor(st, t.data());
}

CachedPack
lookupPackedB(const Tensor &b, bool trans_b, int64_t k, int64_t n,
              const GemmSchedule &sch, CachedPackHold &hold)
{
    PackKey key;
    key.data = b.data();
    key.is_a = false;
    key.trans = trans_b;
    key.d0 = k;
    key.d1 = n;
    key.outer_block = sch.nc;
    key.kc = sch.kc;
    key.tile = sch.nr;
    return lookupOrBuild(b, key, sch, 0.0f, hold);
}

CachedPack
lookupPackedA(const Tensor &a, bool trans_a, int64_t m, int64_t k,
              float alpha, const GemmSchedule &sch, CachedPackHold &hold)
{
    PackKey key;
    key.data = a.data();
    key.is_a = true;
    key.trans = trans_a;
    key.d0 = m;
    key.d1 = k;
    key.outer_block = sch.mc;
    key.kc = sch.kc;
    key.tile = sch.mr;
    std::memcpy(&key.alpha_bits, &alpha, sizeof(key.alpha_bits));
    return lookupOrBuild(a, key, sch, alpha, hold);
}

PackCacheStats
packCacheStats()
{
    CacheState &st = state();
    std::lock_guard<std::mutex> lk(st.mu);
    PackCacheStats out;
    out.entries = static_cast<int64_t>(st.entries.size());
    out.resident_bytes = st.resident_bytes;
    out.hits = st.hits;
    out.misses = st.misses;
    out.rejects = st.rejects;
    out.invalidations = st.invalidations;
    return out;
}

void
clearPackCacheForTest()
{
    CacheState &st = state();
    std::lock_guard<std::mutex> lk(st.mu);
    st.registry.clear();
    st.entries.clear();
    st.resident_bytes = 0;
    st.hits = st.misses = st.rejects = st.invalidations = 0;
}

void
setPackCacheCapForTest(int64_t bytes)
{
    CacheState &st = state();
    std::lock_guard<std::mutex> lk(st.mu);
    st.cap_bytes = bytes < 0 ? defaultCapBytes() : bytes;
}

} // namespace echo::ops
