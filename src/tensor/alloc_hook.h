/**
 * @file
 * Thread-local tensor-allocation hook: lets a compiled execution tape
 * place op outputs at pre-planned arena addresses.
 *
 * Ops allocate their own output tensors inside forward() (see
 * graph/op.h), so a steady-state runtime that wants planner-addressed
 * buffers cannot pass placements in by argument.  Instead, the tape
 * arms this hook around each op dispatch with the planned output slots;
 * Tensor's allocating constructors serve a matching-size allocation
 * from the first unclaimed slot (via the shared_ptr aliasing
 * constructor — no heap traffic), and fall back to the heap when no
 * slot matches (counted as `tape.arena_miss`, never incorrect).
 *
 * The hook is strictly thread-local: arming it on one thread never
 * affects allocations on another, which is what makes the parallel
 * tape safe — each worker arms its own hook around its own record.
 */
#ifndef ECHO_TENSOR_ALLOC_HOOK_H
#define ECHO_TENSOR_ALLOC_HOOK_H

#include <cstdint>
#include <memory>

namespace echo {

/** One pre-placed allocation the hook may serve.  @p owner is the
 *  keep-alive for the region @p ptr points into (slots of one record
 *  can live in different regions — transient arena vs the
 *  double-buffered persistent region). */
struct AllocSlot
{
    float *ptr = nullptr;
    int64_t bytes = 0;
    const std::shared_ptr<void> *owner = nullptr;
    bool claimed = false;
};

/** The thread's hook state (armed while slots != nullptr). */
struct AllocHook
{
    AllocSlot *slots = nullptr;
    int count = 0;

    bool armed() const { return slots != nullptr; }
};

/** This thread's hook (mutable; normally managed via AllocHookScope). */
AllocHook &threadAllocHook();

/** RAII arm/disarm around one op dispatch. */
class AllocHookScope
{
  public:
    AllocHookScope(AllocSlot *slots, int count)
    {
        AllocHook &h = threadAllocHook();
        h.slots = slots;
        h.count = count;
    }
    ~AllocHookScope()
    {
        AllocHook &h = threadAllocHook();
        h.slots = nullptr;
        h.count = 0;
    }
    AllocHookScope(const AllocHookScope &) = delete;
    AllocHookScope &operator=(const AllocHookScope &) = delete;
};

} // namespace echo

#endif // ECHO_TENSOR_ALLOC_HOOK_H
