#include <cstring>

#include "core/logging.h"
#include "tensor/ops.h"

namespace echo::ops {

namespace {

/**
 * Inner GEMM kernel over raw pointers: C[M x N] += A' * B' where A' is
 * A optionally transposed ([M x K] logical) and likewise B' ([K x N]).
 * Plain ikj loop — correctness over speed; the GPU model provides timing.
 */
void
gemmKernel(const float *a, bool trans_a, const float *b, bool trans_b,
           float *c, int64_t m, int64_t n, int64_t k, float alpha)
{
    for (int64_t i = 0; i < m; ++i) {
        for (int64_t p = 0; p < k; ++p) {
            const float av =
                alpha * (trans_a ? a[p * m + i] : a[i * k + p]);
            if (av == 0.0f)
                continue;
            const float *brow = trans_b ? b + p : b + p * n;
            float *crow = c + i * n;
            if (trans_b) {
                for (int64_t j = 0; j < n; ++j)
                    crow[j] += av * brow[j * k];
            } else {
                for (int64_t j = 0; j < n; ++j)
                    crow[j] += av * brow[j];
            }
        }
    }
}

} // namespace

Tensor
gemm(const Tensor &a, bool trans_a, const Tensor &b, bool trans_b,
     float alpha)
{
    ECHO_REQUIRE(a.shape().ndim() == 2 && b.shape().ndim() == 2,
                 "gemm needs 2-D operands, got ", a.shape().toString(),
                 " and ", b.shape().toString());
    const int64_t m = trans_a ? a.shape()[1] : a.shape()[0];
    const int64_t k = trans_a ? a.shape()[0] : a.shape()[1];
    const int64_t kb = trans_b ? b.shape()[1] : b.shape()[0];
    const int64_t n = trans_b ? b.shape()[0] : b.shape()[1];
    ECHO_REQUIRE(k == kb, "gemm inner dimensions mismatch: ",
                 a.shape().toString(), (trans_a ? "^T" : ""), " * ",
                 b.shape().toString(), (trans_b ? "^T" : ""));

    Tensor c = Tensor::zeros(Shape({m, n}));
    gemmKernel(a.data(), trans_a, b.data(), trans_b, c.data(), m, n, k,
               alpha);
    return c;
}

Tensor
bmm(const Tensor &a, bool trans_a, const Tensor &b, bool trans_b)
{
    ECHO_REQUIRE(a.shape().ndim() == 3 && b.shape().ndim() == 3,
                 "bmm needs 3-D operands");
    const int64_t batch = a.shape()[0];
    ECHO_REQUIRE(batch == b.shape()[0], "bmm batch mismatch");
    const int64_t m = trans_a ? a.shape()[2] : a.shape()[1];
    const int64_t k = trans_a ? a.shape()[1] : a.shape()[2];
    const int64_t kb = trans_b ? b.shape()[2] : b.shape()[1];
    const int64_t n = trans_b ? b.shape()[1] : b.shape()[2];
    ECHO_REQUIRE(k == kb, "bmm inner dimensions mismatch");

    Tensor c = Tensor::zeros(Shape({batch, m, n}));
    const int64_t a_stride = a.shape()[1] * a.shape()[2];
    const int64_t b_stride = b.shape()[1] * b.shape()[2];
    const int64_t c_stride = m * n;
    for (int64_t i = 0; i < batch; ++i) {
        gemmKernel(a.data() + i * a_stride, trans_a,
                   b.data() + i * b_stride, trans_b,
                   c.data() + i * c_stride, m, n, k, 1.0f);
    }
    return c;
}

Tensor
outer(const Tensor &u, const Tensor &v)
{
    ECHO_REQUIRE(u.shape().ndim() == 1 && v.shape().ndim() == 1,
                 "outer needs vectors");
    const int64_t m = u.shape()[0];
    const int64_t n = v.shape()[0];
    Tensor c(Shape({m, n}));
    for (int64_t i = 0; i < m; ++i)
        for (int64_t j = 0; j < n; ++j)
            c.data()[i * n + j] = u.data()[i] * v.data()[j];
    return c;
}

} // namespace echo::ops
