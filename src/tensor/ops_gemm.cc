/**
 * @file
 * Cache-blocked, panel-packed, register-tiled GEMM, parameterized by a
 * GemmSchedule (see tensor/gemm_schedule.h).
 *
 * The kernel follows the classic GotoBLAS/BLIS decomposition; with the
 * default N-outer order and packed B:
 *
 *   for jc over N in nc columns:           (B panel fits L2/L3)
 *     for pc over K in kc depth:           (packed panels fit cache)
 *       pack B[pc:pc+kc, jc:jc+nc] into nr-wide column micro-panels
 *       for ic over M in mc rows:          (optionally parallel)
 *         pack alpha*A[ic:ic+mc, pc:pc+kc] into mr-tall row panels
 *         for each mr x nr tile: micro-kernel over the panels
 *
 * What the schedule varies: the blocking (mc/kc/nc), the micro-tile
 * (mr x nr from the compiled legal set), the macro loop order (N-outer
 * vs K-outer), whether B is packed or read in place (kDirect — a big
 * win for tiny-M shapes where packing all of B dwarfs the madds), the
 * parallel dimension (row blocks, column blocks for skewed N, or
 * none), and the serial/parallel madds threshold.  All four transpose
 * combinations still route through the same micro-kernels — the
 * transposes are absorbed by the packing loops (which is why kDirect
 * requires a non-transposed B).
 *
 * Determinism and bitwise contract: the micro-kernel LOADS the current
 * C tile into its accumulator before the depth loop and stores it back
 * after, so each C element is one serial sum over K in ascending
 * order — the exact chain of float operations gemmReference() performs.
 * Results are therefore byte-identical to the reference for EVERY
 * legal schedule, every thread count, and every parallelFor chunking
 * (each C element is still produced by exactly one task).  There is
 * deliberately no data-dependent skipping (the seed kernel's
 * `if (av == 0) continue;` made GEMM cost input-dependent).
 *
 * gemmReference() keeps the plain ikj loop as the golden model: tests
 * byte-compare every schedule against it, and the tuner refuses to
 * cache a schedule that does not match it bitwise.
 */
#include <algorithm>
#include <cmath>
#include <cstring>
#include <utility>
#include <vector>

#include "core/logging.h"
#include "core/thread_pool.h"
#include "tensor/gemm_pack.h"
#include "tensor/gemm_schedule.h"
#include "tensor/ops.h"
#include "tensor/pack_cache.h"
#include "tensor/pack_scratch.h"

#if defined(__GNUC__) || defined(__clang__)
#define ECHO_GEMM_RESTRICT __restrict__
#else
#define ECHO_GEMM_RESTRICT
#endif

namespace echo::ops {

namespace {

/** Logical element A'[i, p] of the [M x K] operand (A' = a or aᵀ). */
inline float
elemA(const float *a, bool trans_a, int64_t m, int64_t k, int64_t i,
      int64_t p)
{
    return trans_a ? a[p * m + i] : a[i * k + p];
}

/** Logical element B'[p, j] of the [K x N] operand (B' = b or bᵀ). */
inline float
elemB(const float *b, bool trans_b, int64_t k, int64_t n, int64_t p,
      int64_t j)
{
    return trans_b ? b[j * k + p] : b[p * n + j];
}

} // namespace

namespace detail {

/**
 * Pack alpha * A'[ic:ic+mc, pc:pc+kc] into mr-tall row micro-panels:
 * panel r holds rows [r*mr, r*mr+mr) depth-major, short tail rows
 * zero-padded so the micro-kernel never branches on the row count.
 */
void
packAPanel(const float *a, bool trans_a, int64_t m, int64_t k,
           int64_t ic, int64_t mc, int64_t pc, int64_t kc, float alpha,
           float *dst, int64_t mr)
{
    for (int64_t ir = 0; ir < mc; ir += mr) {
        const int64_t h = std::min(mr, mc - ir);
        for (int64_t p = 0; p < kc; ++p) {
            for (int64_t i = 0; i < mr; ++i) {
                *dst++ = i < h ? alpha * elemA(a, trans_a, m, k,
                                               ic + ir + i, pc + p)
                               : 0.0f;
            }
        }
    }
}

/**
 * Pack B'[pc:pc+kc, jc:jc+nc] into nr-wide column micro-panels with
 * zero-padded tail columns.
 */
void
packBPanel(const float *b, bool trans_b, int64_t k, int64_t n,
           int64_t pc, int64_t kc, int64_t jc, int64_t nc, float *dst,
           int64_t nr)
{
    for (int64_t jr = 0; jr < nc; jr += nr) {
        const int64_t w = std::min(nr, nc - jr);
        for (int64_t p = 0; p < kc; ++p) {
            for (int64_t j = 0; j < nr; ++j) {
                *dst++ = j < w ? elemB(b, trans_b, k, n, pc + p,
                                       jc + jr + j)
                               : 0.0f;
            }
        }
    }
}

} // namespace detail

namespace {

using detail::packAPanel;
using detail::packBPanel;

/**
 * One j-iteration's worth of FMAs, the micro-tile row dimension
 * unrolled via a fold over constant indices.  The constant acc[Is][j]
 * indexing is what lets the compiler keep the whole accumulator tile
 * in vector registers: an i-LOOP over acc[i][j] (even with constant
 * bounds) spills the tile and runs ~17x slower on GCC (measured; the
 * pre-tuner kernel used eight named arrays for the same reason).
 *
 * The accumulate is an EXPLICIT std::fma, not `acc += a * b`: under
 * the default -ffp-contract=fast the compiler contracts mul+add into
 * an FMA in some codegen shapes and not others (observed: 1x16 and
 * 2x16 SLP-vectorized tiles came out uncontracted while 8x16 and the
 * reference fused), which silently breaks bitwise identity between
 * schedules.  fma() is a single correctly-rounded IEEE operation, so
 * spelling it out pins every step's rounding no matter how the loop
 * is vectorized or unrolled.  gemmReference() uses the same spelling.
 */
template <int MR, int NR, size_t... Is>
inline void
fmaRows(float (&acc)[MR][NR], const float *ECHO_GEMM_RESTRICT arow,
        float bv, int j, std::index_sequence<Is...>)
{
    ((acc[Is][j] = std::fma(arow[Is], bv, acc[Is][j])), ...);
}

/**
 * C[0:h, 0:w] (+)= Apanel * Bpanel over @p kc depth, packed-B variant.
 * The accumulator tile is INITIALIZED FROM C (zero in the padded
 * lanes) and stored back, so the per-element K-chain continues in
 * source order across kc panels — the bitwise contract.  The j-loop is
 * the single innermost loop — unit-stride, no cross-iteration
 * dependence — which the auto-vectorizer turns into MR independent
 * streams of vector FMAs.
 */
template <int MR, int NR>
void
microKernelPacked(const float *ECHO_GEMM_RESTRICT ap,
                  const float *ECHO_GEMM_RESTRICT bp, int64_t kc,
                  float *ECHO_GEMM_RESTRICT c, int64_t ldc, int64_t h,
                  int64_t w)
{
    float acc[MR][NR];
    for (int i = 0; i < MR; ++i)
        for (int j = 0; j < NR; ++j)
            acc[i][j] = (i < h && j < w) ? c[i * ldc + j] : 0.0f;
    for (int64_t p = 0; p < kc; ++p) {
        const float *ECHO_GEMM_RESTRICT arow = ap + p * MR;
        const float *ECHO_GEMM_RESTRICT brow = bp + p * NR;
        for (int j = 0; j < NR; ++j)
            fmaRows<MR, NR>(acc, arow, brow[j], j,
                            std::make_index_sequence<MR>{});
    }
    for (int64_t i = 0; i < h; ++i) {
        float *crow = c + i * ldc;
        for (int64_t j = 0; j < w; ++j)
            crow[j] = acc[i][j];
    }
}

/**
 * Direct-B variant: reads B rows in place (@p bdir points at
 * B[pc, jc+jr], rows @p ldb apart).  Only legal for a non-transposed
 * B, where rows are unit-stride.  Same load/accumulate/store chain as
 * the packed variant, so bitwise-identical results.
 */
template <int MR, int NR>
void
microKernelDirectB(const float *ECHO_GEMM_RESTRICT ap,
                   const float *ECHO_GEMM_RESTRICT bdir, int64_t ldb,
                   int64_t kc, float *ECHO_GEMM_RESTRICT c, int64_t ldc,
                   int64_t h, int64_t w)
{
    float acc[MR][NR];
    for (int i = 0; i < MR; ++i)
        for (int j = 0; j < NR; ++j)
            acc[i][j] = (i < h && j < w) ? c[i * ldc + j] : 0.0f;
    if (w == NR) {
        for (int64_t p = 0; p < kc; ++p) {
            const float *ECHO_GEMM_RESTRICT arow = ap + p * MR;
            const float *ECHO_GEMM_RESTRICT brow = bdir + p * ldb;
            for (int j = 0; j < NR; ++j)
                fmaRows<MR, NR>(acc, arow, brow[j], j,
                                std::make_index_sequence<MR>{});
        }
    } else {
        // Tail columns: bound the j-loop so no out-of-row reads.
        for (int64_t p = 0; p < kc; ++p) {
            const float *ECHO_GEMM_RESTRICT arow = ap + p * MR;
            const float *ECHO_GEMM_RESTRICT brow = bdir + p * ldb;
            for (int j = 0; j < static_cast<int>(w); ++j)
                fmaRows<MR, NR>(acc, arow, brow[j], j,
                                std::make_index_sequence<MR>{});
        }
    }
    for (int64_t i = 0; i < h; ++i) {
        float *crow = c + i * ldc;
        for (int64_t j = 0; j < w; ++j)
            crow[j] = acc[i][j];
    }
}

using PackedMicroFn = void (*)(const float *, const float *, int64_t,
                               float *, int64_t, int64_t, int64_t);
using DirectMicroFn = void (*)(const float *, const float *, int64_t,
                               int64_t, float *, int64_t, int64_t,
                               int64_t);

/** The compiled micro-tile set; keep in sync with kGemmLegalMr/Nr. */
#define ECHO_GEMM_FOR_EACH_TILE(X)                                     \
    X(1, 8) X(1, 16) X(1, 32) X(2, 8) X(2, 16) X(2, 32) X(4, 8)        \
    X(4, 16) X(4, 32) X(8, 8) X(8, 16) X(8, 32)

PackedMicroFn
packedMicro(int32_t mr, int32_t nr)
{
    switch (mr * 100 + nr) {
#define ECHO_GEMM_CASE(MR, NR)                                         \
    case MR * 100 + NR:                                                \
        return microKernelPacked<MR, NR>;
        ECHO_GEMM_FOR_EACH_TILE(ECHO_GEMM_CASE)
#undef ECHO_GEMM_CASE
    default:
        ECHO_PANIC("no compiled micro-kernel for ", mr, "x", nr);
    }
}

DirectMicroFn
directMicro(int32_t mr, int32_t nr)
{
    switch (mr * 100 + nr) {
#define ECHO_GEMM_CASE(MR, NR)                                         \
    case MR * 100 + NR:                                                \
        return microKernelDirectB<MR, NR>;
        ECHO_GEMM_FOR_EACH_TILE(ECHO_GEMM_CASE)
#undef ECHO_GEMM_CASE
    default:
        ECHO_PANIC("no compiled micro-kernel for ", mr, "x", nr);
    }
}

#undef ECHO_GEMM_FOR_EACH_TILE

/**
 * Blocked GEMM body: C[M x N] += alpha * A' * B' over raw pointers,
 * driven by @p sch.  @p allow_parallel lets bmm() force per-item
 * serial execution when it already parallelizes over the batch.
 * @p a_pack / @p b_pack are optional pre-packed panels from the
 * weight cache (byte-identical to what the packing loops here would
 * produce); when present the corresponding packing pass is skipped.
 */
void
gemmBlocked(const float *a, bool trans_a, const float *b, bool trans_b,
            float *c, int64_t m, int64_t n, int64_t k, float alpha,
            const GemmSchedule &sch, bool allow_parallel,
            const CachedPack &a_pack = {}, const CachedPack &b_pack = {})
{
    if (m <= 0 || n <= 0 || k <= 0)
        return;

    const int64_t mc = sch.mc;
    const int64_t kcb = sch.kc;
    const int64_t ncb = sch.nc;
    const int64_t mr = sch.mr;
    const int64_t nr = sch.nr;
    // Defensive: a transposed B has stride-K rows, which the direct
    // kernel cannot read; legality checks should have caught this.
    const bool direct_b =
        sch.pack_b == GemmPackB::kDirect && !trans_b;
    const PackedMicroFn packed_fn =
        direct_b ? nullptr : packedMicro(sch.mr, sch.nr);
    const DirectMicroFn direct_fn =
        direct_b ? directMicro(sch.mr, sch.nr) : nullptr;

    const int64_t row_blocks = (m + mc - 1) / mc;
    const int64_t col_blocks = (n + ncb - 1) / ncb;

    GemmParallel par = allow_parallel ? sch.parallel : GemmParallel::kNone;
    if (m * n * k < sch.parallel_min_madds)
        par = GemmParallel::kNone;
    if (par == GemmParallel::kRows && row_blocks <= 1)
        par = GemmParallel::kNone;
    if (par == GemmParallel::kCols && col_blocks <= 1)
        par = GemmParallel::kNone;

    const size_t apack_elems =
        a_pack ? 0
               : static_cast<size_t>((mc + mr - 1) / mr * mr * kcb);
    const size_t bpack_elems =
        (direct_b || b_pack)
            ? 0
            : static_cast<size_t>(
                  (std::min(ncb, n) + nr - 1) / nr * nr * kcb);

    // Run row blocks [blk0, blk1) against the (jc, pc) panel.  @p bp
    // is the packed B panel (null for direct-B).
    auto row_range = [&](int64_t jc, int64_t nc_cur, int64_t pc,
                         int64_t kc_cur, const float *bp,
                         int64_t blk0, int64_t blk1, float *apack) {
        const int64_t pb = pc / kcb;
        for (int64_t blk = blk0; blk < blk1; ++blk) {
            const int64_t ic = blk * mc;
            const int64_t mc_cur = std::min(mc, m - ic);
            const float *apanel;
            if (a_pack) {
                apanel = a_pack.data +
                         a_pack.offsets[blk * a_pack.k_blocks + pb];
            } else {
                packAPanel(a, trans_a, m, k, ic, mc_cur, pc, kc_cur,
                           alpha, apack, mr);
                apanel = apack;
            }
            for (int64_t jr = 0; jr < nc_cur; jr += nr) {
                const int64_t w = std::min(nr, nc_cur - jr);
                for (int64_t ir = 0; ir < mc_cur; ir += mr) {
                    const int64_t h = std::min(mr, mc_cur - ir);
                    const float *ap = apanel + (ir / mr) * mr * kc_cur;
                    float *cptr = c + (ic + ir) * n + jc + jr;
                    if (direct_b)
                        direct_fn(ap, b + pc * n + jc + jr, n, kc_cur,
                                  cptr, n, h, w);
                    else
                        packed_fn(ap, bp + (jr / nr) * nr * kc_cur,
                                  kc_cur, cptr, n, h, w);
                }
            }
        }
    };

    // The B panel for (jc block cb, pc block pb): cached bytes when
    // the weight cache served them, freshly packed into @p bpack
    // otherwise (and B itself for direct-B, where row_range reads it
    // in place).
    auto b_panel = [&](int64_t cb, int64_t pb, int64_t jc, int64_t pc,
                       int64_t nc_cur, int64_t kc_cur,
                       float *bpack) -> const float * {
        if (direct_b)
            return nullptr;
        if (b_pack)
            return b_pack.data +
                   b_pack.offsets[cb * b_pack.k_blocks + pb];
        packBPanel(b, trans_b, k, n, pc, kc_cur, jc, nc_cur, bpack,
                   nr);
        return bpack;
    };

    if (par == GemmParallel::kCols) {
        // Disjoint column blocks per task: every C element is still
        // written by exactly one task, and its K-chain order does not
        // depend on the chunking — byte-identical for every thread
        // count.  Each task packs its own panels.
        ThreadPool::global().parallelFor(
            0, col_blocks, 1, [&](int64_t cb0, int64_t cb1) {
                thread_local PackScratch apack_scratch;
                thread_local PackScratch bpack_scratch;
                float *apack = apack_scratch.acquire(apack_elems);
                float *bpack = bpack_scratch.acquire(bpack_elems);
                for (int64_t cb = cb0; cb < cb1; ++cb) {
                    const int64_t jc = cb * ncb;
                    const int64_t nc_cur = std::min(ncb, n - jc);
                    for (int64_t pc = 0; pc < k; pc += kcb) {
                        const int64_t kc_cur = std::min(kcb, k - pc);
                        const float *bp =
                            b_panel(cb, pc / kcb, jc, pc, nc_cur,
                                    kc_cur, bpack);
                        row_range(jc, nc_cur, pc, kc_cur, bp, 0,
                                  row_blocks, apack);
                    }
                }
            });
        return;
    }

    // Serial / row-parallel path: the B pack buffer is per-thread and
    // reused across calls, exactly like the kCols path (it used to be
    // a fresh heap vector every call).
    thread_local PackScratch serial_bpack_scratch;
    float *bpack = serial_bpack_scratch.acquire(bpack_elems);
    auto panel = [&](int64_t jc, int64_t pc) {
        const int64_t nc_cur = std::min(ncb, n - jc);
        const int64_t kc_cur = std::min(kcb, k - pc);
        const float *bp = b_panel(jc / ncb, pc / kcb, jc, pc, nc_cur,
                                  kc_cur, bpack);
        if (par == GemmParallel::kRows) {
            ThreadPool::global().parallelFor(
                0, row_blocks, 1, [&](int64_t blk0, int64_t blk1) {
                    // Per-thread so concurrent row blocks never share
                    // a pack buffer; reused across calls on a thread.
                    thread_local PackScratch apack_scratch;
                    float *apack = apack_scratch.acquire(apack_elems);
                    row_range(jc, nc_cur, pc, kc_cur, bp, blk0, blk1,
                              apack);
                });
        } else {
            thread_local PackScratch apack_scratch;
            float *apack = apack_scratch.acquire(apack_elems);
            row_range(jc, nc_cur, pc, kc_cur, bp, 0, row_blocks,
                      apack);
        }
    };

    if (sch.loop_order == GemmLoopOrder::kNOuter) {
        for (int64_t jc = 0; jc < n; jc += ncb)
            for (int64_t pc = 0; pc < k; pc += kcb)
                panel(jc, pc);
    } else {
        for (int64_t pc = 0; pc < k; pc += kcb)
            for (int64_t jc = 0; jc < n; jc += ncb)
                panel(jc, pc);
    }
}

/**
 * Consult the packed-weight cache for both operands (registered
 * weights only; see tensor/pack_cache.h).  kDirect schedules read B
 * in place, so there is nothing to cache for B there.
 */
void
lookupCachedPacks(const Tensor &a, bool trans_a, const Tensor &b,
                  bool trans_b, int64_t m, int64_t n, int64_t k,
                  float alpha, const GemmSchedule &sch,
                  CachedPack &a_pack, CachedPack &b_pack,
                  CachedPackHold &a_hold, CachedPackHold &b_hold)
{
    if (!packCacheEnabled())
        return;
    (void)n;
    const bool direct_b = sch.pack_b == GemmPackB::kDirect && !trans_b;
    if (!direct_b)
        b_pack = lookupPackedB(b, trans_b, k, n, sch, b_hold);
    a_pack = lookupPackedA(a, trans_a, m, k, alpha, sch, a_hold);
}

/** Shape/consistency checks shared by gemm() and gemmReference(). */
void
checkGemmOperands(const Tensor &a, bool trans_a, const Tensor &b,
                  bool trans_b, int64_t &m, int64_t &n, int64_t &k)
{
    ECHO_REQUIRE(a.shape().ndim() == 2 && b.shape().ndim() == 2,
                 "gemm needs 2-D operands, got ", a.shape().toString(),
                 " and ", b.shape().toString());
    m = trans_a ? a.shape()[1] : a.shape()[0];
    k = trans_a ? a.shape()[0] : a.shape()[1];
    const int64_t kb = trans_b ? b.shape()[1] : b.shape()[0];
    n = trans_b ? b.shape()[0] : b.shape()[1];
    ECHO_REQUIRE(k == kb, "gemm inner dimensions mismatch: ",
                 a.shape().toString(), (trans_a ? "^T" : ""), " * ",
                 b.shape().toString(), (trans_b ? "^T" : ""));
}

} // namespace

const char *
gemmIsaName()
{
#if defined(__AVX512F__)
    return "avx512";
#elif defined(__AVX2__)
    return "avx2";
#elif defined(__SSE2__) || defined(_M_X64)
    return "sse2";
#elif defined(__ARM_NEON)
    return "neon";
#else
    return "scalar";
#endif
}

int
gemmVectorWidthBytes()
{
#if defined(__AVX512F__)
    return 64;
#elif defined(__AVX2__)
    return 32;
#elif defined(__SSE2__) || defined(_M_X64) || defined(__ARM_NEON)
    return 16;
#else
    return 4;
#endif
}

Tensor
gemm(const Tensor &a, bool trans_a, const Tensor &b, bool trans_b,
     float alpha)
{
    int64_t m, n, k;
    checkGemmOperands(a, trans_a, b, trans_b, m, n, k);
    const GemmSchedule sch = scheduleForCall(
        m, n, k, trans_a, trans_b, ThreadPool::global().numThreads());
    CachedPack a_pack, b_pack;
    CachedPackHold a_hold, b_hold;
    lookupCachedPacks(a, trans_a, b, trans_b, m, n, k, alpha, sch,
                      a_pack, b_pack, a_hold, b_hold);
    Tensor c = Tensor::zeros(Shape({m, n}));
    gemmBlocked(a.data(), trans_a, b.data(), trans_b, c.data(), m, n, k,
                alpha, sch, /*allow_parallel=*/true, a_pack, b_pack);
    return c;
}

Tensor
gemmWithSchedule(const Tensor &a, bool trans_a, const Tensor &b,
                 bool trans_b, float alpha, const GemmSchedule &sch)
{
    int64_t m, n, k;
    checkGemmOperands(a, trans_a, b, trans_b, m, n, k);
    std::string why;
    ECHO_REQUIRE(scheduleLegal(sch, trans_b, &why),
                 "illegal GEMM schedule [", sch.toString(), "]: ", why);
    CachedPack a_pack, b_pack;
    CachedPackHold a_hold, b_hold;
    lookupCachedPacks(a, trans_a, b, trans_b, m, n, k, alpha, sch,
                      a_pack, b_pack, a_hold, b_hold);
    Tensor c = Tensor::zeros(Shape({m, n}));
    gemmBlocked(a.data(), trans_a, b.data(), trans_b, c.data(), m, n, k,
                alpha, sch, /*allow_parallel=*/true, a_pack, b_pack);
    return c;
}

Tensor
gemmReference(const Tensor &a, bool trans_a, const Tensor &b,
              bool trans_b, float alpha)
{
    int64_t m, n, k;
    checkGemmOperands(a, trans_a, b, trans_b, m, n, k);
    Tensor c = Tensor::zeros(Shape({m, n}));
    const float *pa = a.data();
    const float *pb = b.data();
    for (int64_t i = 0; i < m; ++i) {
        for (int64_t p = 0; p < k; ++p) {
            const float av = alpha * elemA(pa, trans_a, m, k, i, p);
            float *crow = c.data() + i * n;
            // Explicit fma to match the blocked kernel's rounding
            // exactly (see fmaRows).
            for (int64_t j = 0; j < n; ++j)
                crow[j] = std::fma(av, elemB(pb, trans_b, k, n, p, j),
                                   crow[j]);
        }
    }
    return c;
}

Tensor
bmm(const Tensor &a, bool trans_a, const Tensor &b, bool trans_b)
{
    ECHO_REQUIRE(a.shape().ndim() == 3 && b.shape().ndim() == 3,
                 "bmm needs 3-D operands");
    const int64_t m = trans_a ? a.shape()[2] : a.shape()[1];
    const int64_t k = trans_a ? a.shape()[1] : a.shape()[2];
    const int64_t n = trans_b ? b.shape()[1] : b.shape()[2];
    const GemmSchedule sch = scheduleForCall(
        m, n, k, trans_a, trans_b, ThreadPool::global().numThreads());
    return bmmWithSchedule(a, trans_a, b, trans_b, sch);
}

Tensor
bmmWithSchedule(const Tensor &a, bool trans_a, const Tensor &b,
                bool trans_b, const GemmSchedule &sch)
{
    ECHO_REQUIRE(a.shape().ndim() == 3 && b.shape().ndim() == 3,
                 "bmm needs 3-D operands");
    const int64_t batch = a.shape()[0];
    ECHO_REQUIRE(batch == b.shape()[0], "bmm batch mismatch");
    const int64_t m = trans_a ? a.shape()[2] : a.shape()[1];
    const int64_t k = trans_a ? a.shape()[1] : a.shape()[2];
    const int64_t kb = trans_b ? b.shape()[2] : b.shape()[1];
    const int64_t n = trans_b ? b.shape()[1] : b.shape()[2];
    ECHO_REQUIRE(k == kb, "bmm inner dimensions mismatch");
    std::string why;
    ECHO_REQUIRE(scheduleLegal(sch, trans_b, &why),
                 "illegal GEMM schedule [", sch.toString(), "]: ", why);

    Tensor c = Tensor::zeros(Shape({batch, m, n}));
    const int64_t a_stride = a.shape()[1] * a.shape()[2];
    const int64_t b_stride = b.shape()[1] * b.shape()[2];
    const int64_t c_stride = m * n;

    // Parallelize over the batch when the schedule says so and there
    // are enough items to keep the pool busy; each per-item GEMM then
    // stays single-threaded (nested parallelFor would serialize
    // anyway).  For small batches of large matrices the per-item
    // kernel parallelizes instead.
    const bool batch_parallel =
        sch.batch_parallel != 0 && batch > 1 &&
        batch * m * n * k >= sch.parallel_min_madds;
    auto run_items = [&](int64_t i0, int64_t i1) {
        for (int64_t i = i0; i < i1; ++i) {
            gemmBlocked(a.data() + i * a_stride, trans_a,
                        b.data() + i * b_stride, trans_b,
                        c.data() + i * c_stride, m, n, k, 1.0f, sch,
                        /*allow_parallel=*/!batch_parallel);
        }
    };
    if (batch_parallel)
        ThreadPool::global().parallelFor(0, batch, 1, run_items);
    else
        run_items(0, batch);
    return c;
}

Tensor
outer(const Tensor &u, const Tensor &v)
{
    ECHO_REQUIRE(u.shape().ndim() == 1 && v.shape().ndim() == 1,
                 "outer needs vectors");
    const int64_t m = u.shape()[0];
    const int64_t n = v.shape()[0];
    Tensor c(Shape({m, n}));
    ThreadPool::global().parallelFor(
        0, m, std::max<int64_t>(1, 8192 / std::max<int64_t>(1, n)),
        [&](int64_t i0, int64_t i1) {
            for (int64_t i = i0; i < i1; ++i)
                for (int64_t j = 0; j < n; ++j)
                    c.data()[i * n + j] = u.data()[i] * v.data()[j];
        });
    return c;
}

} // namespace echo::ops
