/**
 * @file
 * Cache-blocked, panel-packed, register-tiled GEMM.
 *
 * The kernel follows the classic GotoBLAS/BLIS decomposition:
 *
 *   for jc over N in kNc columns:          (B panel fits L2/L3)
 *     for pc over K in kKc depth:          (packed panels fit cache)
 *       pack B[pc:pc+kc, jc:jc+nc] into kNr-wide column micro-panels
 *       parallel for ic over M in kMc rows:  (one row block per task)
 *         pack alpha*A[ic:ic+mc, pc:pc+kc] into kMr-tall row panels
 *         for each kMr x kNr tile: micro-kernel over the packed panels
 *
 * All four transpose combinations route through the same micro-kernel —
 * the transposes are absorbed by the packing loops, so the hot loop is
 * always unit-stride regardless of operand layout.  bmm() reuses the
 * same kernel per batch item (parallel over the batch instead of over
 * row blocks when the batch is large enough).
 *
 * Determinism contract: C is accumulated over pc panels in a fixed
 * serial order and each C element is produced by exactly one row-block
 * task, so results are byte-identical for every thread count and
 * parallelFor chunking.  There is deliberately no data-dependent
 * skipping (the seed kernel's `if (av == 0) continue;` made GEMM cost
 * input-dependent and mispredicted in the hot loop).
 *
 * gemmReference() keeps the plain ikj loop as the golden model for
 * tests and the threaded-vs-seed benchmark comparison.
 */
#include <algorithm>
#include <cstring>
#include <vector>

#include "core/logging.h"
#include "core/thread_pool.h"
#include "tensor/ops.h"

#if defined(__GNUC__) || defined(__clang__)
#define ECHO_GEMM_RESTRICT __restrict__
#else
#define ECHO_GEMM_RESTRICT
#endif

namespace echo::ops {

namespace {

// Blocking parameters (floats): kMc*kKc = 64 KiB A block, kKc*kNc =
// 512 KiB B panel — sized for a ~1 MiB-per-core L2.  The micro-tile is
// kMr x kNr = 8 x 16 accumulators, which the compiler keeps in vector
// registers (eight 512-bit rows; needs -mprefer-vector-width=512 on
// AVX-512 hosts so the tile does not spill).
constexpr int64_t kMc = 64;
constexpr int64_t kKc = 256;
constexpr int64_t kNc = 512;
constexpr int64_t kMr = 8;
constexpr int64_t kNr = 16;

/** Only products with at least this many madds go multi-threaded. */
constexpr int64_t kParallelMinMadds = int64_t(1) << 17;

/** Logical element A'[i, p] of the [M x K] operand (A' = a or aᵀ). */
inline float
elemA(const float *a, bool trans_a, int64_t m, int64_t k, int64_t i,
      int64_t p)
{
    return trans_a ? a[p * m + i] : a[i * k + p];
}

/** Logical element B'[p, j] of the [K x N] operand (B' = b or bᵀ). */
inline float
elemB(const float *b, bool trans_b, int64_t k, int64_t n, int64_t p,
      int64_t j)
{
    return trans_b ? b[j * k + p] : b[p * n + j];
}

/**
 * Pack alpha * A'[ic:ic+mc, pc:pc+kc] into kMr-tall row micro-panels:
 * panel r holds rows [r*kMr, r*kMr+kMr) depth-major, short tail rows
 * zero-padded so the micro-kernel never branches on the row count.
 */
void
packA(const float *a, bool trans_a, int64_t m, int64_t k, int64_t ic,
      int64_t mc, int64_t pc, int64_t kc, float alpha, float *dst)
{
    for (int64_t ir = 0; ir < mc; ir += kMr) {
        const int64_t h = std::min(kMr, mc - ir);
        for (int64_t p = 0; p < kc; ++p) {
            for (int64_t i = 0; i < kMr; ++i) {
                *dst++ = i < h ? alpha * elemA(a, trans_a, m, k,
                                               ic + ir + i, pc + p)
                               : 0.0f;
            }
        }
    }
}

/**
 * Pack B'[pc:pc+kc, jc:jc+nc] into kNr-wide column micro-panels with
 * zero-padded tail columns.
 */
void
packB(const float *b, bool trans_b, int64_t k, int64_t n, int64_t pc,
      int64_t kc, int64_t jc, int64_t nc, float *dst)
{
    for (int64_t jr = 0; jr < nc; jr += kNr) {
        const int64_t w = std::min(kNr, nc - jr);
        for (int64_t p = 0; p < kc; ++p) {
            for (int64_t j = 0; j < kNr; ++j) {
                *dst++ = j < w ? elemB(b, trans_b, k, n, pc + p,
                                       jc + jr + j)
                               : 0.0f;
            }
        }
    }
}

/**
 * C[0:h, 0:w] += Apanel * Bpanel over @p kc depth.  The accumulator
 * tile lives in registers; the panels are read unit-stride.
 */
void
microKernel(const float *ECHO_GEMM_RESTRICT ap,
            const float *ECHO_GEMM_RESTRICT bp, int64_t kc,
            float *ECHO_GEMM_RESTRICT c, int64_t ldc, int64_t h,
            int64_t w)
{
    // One named accumulator row per A row: the j-loop is the single
    // innermost loop — unit-stride, no cross-iteration dependence —
    // which the auto-vectorizer turns into plain vector FMAs.  (A
    // 2-D acc[i][j] tile with an inner i-loop trips GCC into an SLP
    // shuffle storm across rows instead.)
    static_assert(kMr == 8, "micro-kernel is unrolled for kMr == 8");
    float acc0[kNr] = {}, acc1[kNr] = {}, acc2[kNr] = {},
          acc3[kNr] = {}, acc4[kNr] = {}, acc5[kNr] = {},
          acc6[kNr] = {}, acc7[kNr] = {};
    for (int64_t p = 0; p < kc; ++p) {
        const float *ECHO_GEMM_RESTRICT brow = bp + p * kNr;
        const float *ECHO_GEMM_RESTRICT arow = ap + p * kMr;
        for (int64_t j = 0; j < kNr; ++j) {
            const float bv = brow[j];
            acc0[j] += arow[0] * bv;
            acc1[j] += arow[1] * bv;
            acc2[j] += arow[2] * bv;
            acc3[j] += arow[3] * bv;
            acc4[j] += arow[4] * bv;
            acc5[j] += arow[5] * bv;
            acc6[j] += arow[6] * bv;
            acc7[j] += arow[7] * bv;
        }
    }
    const float *acc[kMr] = {acc0, acc1, acc2, acc3,
                             acc4, acc5, acc6, acc7};
    for (int64_t i = 0; i < h; ++i) {
        float *crow = c + i * ldc;
        for (int64_t j = 0; j < w; ++j)
            crow[j] += acc[i][j];
    }
}

/**
 * Blocked GEMM body: C[M x N] += alpha * A' * B' over raw pointers.
 * @p parallel allows splitting row blocks across the thread pool
 * (bmm passes false when it already parallelizes over the batch).
 */
void
gemmBlocked(const float *a, bool trans_a, const float *b, bool trans_b,
            float *c, int64_t m, int64_t n, int64_t k, float alpha,
            bool parallel)
{
    if (m <= 0 || n <= 0 || k <= 0)
        return;

    const int64_t row_blocks = (m + kMc - 1) / kMc;
    const bool go_parallel =
        parallel && row_blocks > 1 && m * n * k >= kParallelMinMadds;

    std::vector<float> bpack(static_cast<size_t>(
        kKc * ((std::min(kNc, n) + kNr - 1) / kNr * kNr)));

    for (int64_t jc = 0; jc < n; jc += kNc) {
        const int64_t nc = std::min(kNc, n - jc);
        for (int64_t pc = 0; pc < k; pc += kKc) {
            const int64_t kc = std::min(kKc, k - pc);
            packB(b, trans_b, k, n, pc, kc, jc, nc, bpack.data());

            auto row_block = [&](int64_t blk_begin, int64_t blk_end) {
                // Reused across calls on the same thread; per-thread so
                // concurrent row blocks never share a pack buffer.
                thread_local std::vector<float> apack;
                apack.resize(static_cast<size_t>(kMc * kKc));
                for (int64_t blk = blk_begin; blk < blk_end; ++blk) {
                    const int64_t ic = blk * kMc;
                    const int64_t mc = std::min(kMc, m - ic);
                    packA(a, trans_a, m, k, ic, mc, pc, kc, alpha,
                          apack.data());
                    for (int64_t jr = 0; jr < nc; jr += kNr) {
                        const int64_t w = std::min(kNr, nc - jr);
                        const float *bp =
                            bpack.data() + (jr / kNr) * kNr * kc;
                        for (int64_t ir = 0; ir < mc; ir += kMr) {
                            const int64_t h = std::min(kMr, mc - ir);
                            const float *ap =
                                apack.data() + (ir / kMr) * kMr * kc;
                            microKernel(ap, bp, kc,
                                        c + (ic + ir) * n + jc + jr, n,
                                        h, w);
                        }
                    }
                }
            };

            if (go_parallel) {
                ThreadPool::global().parallelFor(0, row_blocks, 1,
                                                 row_block);
            } else {
                row_block(0, row_blocks);
            }
        }
    }
}

/** Shape/consistency checks shared by gemm() and gemmReference(). */
void
checkGemmOperands(const Tensor &a, bool trans_a, const Tensor &b,
                  bool trans_b, int64_t &m, int64_t &n, int64_t &k)
{
    ECHO_REQUIRE(a.shape().ndim() == 2 && b.shape().ndim() == 2,
                 "gemm needs 2-D operands, got ", a.shape().toString(),
                 " and ", b.shape().toString());
    m = trans_a ? a.shape()[1] : a.shape()[0];
    k = trans_a ? a.shape()[0] : a.shape()[1];
    const int64_t kb = trans_b ? b.shape()[1] : b.shape()[0];
    n = trans_b ? b.shape()[0] : b.shape()[1];
    ECHO_REQUIRE(k == kb, "gemm inner dimensions mismatch: ",
                 a.shape().toString(), (trans_a ? "^T" : ""), " * ",
                 b.shape().toString(), (trans_b ? "^T" : ""));
}

} // namespace

Tensor
gemm(const Tensor &a, bool trans_a, const Tensor &b, bool trans_b,
     float alpha)
{
    int64_t m, n, k;
    checkGemmOperands(a, trans_a, b, trans_b, m, n, k);
    Tensor c = Tensor::zeros(Shape({m, n}));
    gemmBlocked(a.data(), trans_a, b.data(), trans_b, c.data(), m, n, k,
                alpha, /*parallel=*/true);
    return c;
}

Tensor
gemmReference(const Tensor &a, bool trans_a, const Tensor &b,
              bool trans_b, float alpha)
{
    int64_t m, n, k;
    checkGemmOperands(a, trans_a, b, trans_b, m, n, k);
    Tensor c = Tensor::zeros(Shape({m, n}));
    const float *pa = a.data();
    const float *pb = b.data();
    for (int64_t i = 0; i < m; ++i) {
        for (int64_t p = 0; p < k; ++p) {
            const float av = alpha * elemA(pa, trans_a, m, k, i, p);
            float *crow = c.data() + i * n;
            for (int64_t j = 0; j < n; ++j)
                crow[j] += av * elemB(pb, trans_b, k, n, p, j);
        }
    }
    return c;
}

Tensor
bmm(const Tensor &a, bool trans_a, const Tensor &b, bool trans_b)
{
    ECHO_REQUIRE(a.shape().ndim() == 3 && b.shape().ndim() == 3,
                 "bmm needs 3-D operands");
    const int64_t batch = a.shape()[0];
    ECHO_REQUIRE(batch == b.shape()[0], "bmm batch mismatch");
    const int64_t m = trans_a ? a.shape()[2] : a.shape()[1];
    const int64_t k = trans_a ? a.shape()[1] : a.shape()[2];
    const int64_t kb = trans_b ? b.shape()[2] : b.shape()[1];
    const int64_t n = trans_b ? b.shape()[1] : b.shape()[2];
    ECHO_REQUIRE(k == kb, "bmm inner dimensions mismatch");

    Tensor c = Tensor::zeros(Shape({batch, m, n}));
    const int64_t a_stride = a.shape()[1] * a.shape()[2];
    const int64_t b_stride = b.shape()[1] * b.shape()[2];
    const int64_t c_stride = m * n;

    // Parallelize over the batch when there are enough items to keep
    // the pool busy; each per-item GEMM then stays single-threaded
    // (nested parallelFor would serialize anyway).  For small batches
    // of large matrices the per-item kernel parallelizes instead.
    const bool batch_parallel =
        batch > 1 && batch * m * n * k >= kParallelMinMadds;
    auto run_items = [&](int64_t i0, int64_t i1) {
        for (int64_t i = i0; i < i1; ++i) {
            gemmBlocked(a.data() + i * a_stride, trans_a,
                        b.data() + i * b_stride, trans_b,
                        c.data() + i * c_stride, m, n, k, 1.0f,
                        /*parallel=*/!batch_parallel);
        }
    };
    if (batch_parallel)
        ThreadPool::global().parallelFor(0, batch, 1, run_items);
    else
        run_items(0, batch);
    return c;
}

Tensor
outer(const Tensor &u, const Tensor &v)
{
    ECHO_REQUIRE(u.shape().ndim() == 1 && v.shape().ndim() == 1,
                 "outer needs vectors");
    const int64_t m = u.shape()[0];
    const int64_t n = v.shape()[0];
    Tensor c(Shape({m, n}));
    ThreadPool::global().parallelFor(
        0, m, std::max<int64_t>(1, 8192 / std::max<int64_t>(1, n)),
        [&](int64_t i0, int64_t i1) {
            for (int64_t i = i0; i < i1; ++i)
                for (int64_t j = 0; j < n; ++j)
                    c.data()[i * n + j] = u.data()[i] * v.data()[j];
        });
    return c;
}

} // namespace echo::ops
