/**
 * @file
 * The GEMM panel-packing routines, exposed for the pack cache.
 *
 * ops_gemm.cc owns the definitions (they are part of the kernel's
 * bitwise contract); tensor/pack_cache.cc calls them to build cached
 * panels with EXACTLY the layout the micro-kernels consume, so a
 * cached panel is byte-identical to a freshly packed one and caching
 * can never change results.
 */
#ifndef ECHO_TENSOR_GEMM_PACK_H
#define ECHO_TENSOR_GEMM_PACK_H

#include <cstdint>

namespace echo::ops::detail {

/**
 * Pack alpha * A'[ic:ic+mc, pc:pc+kc] into mr-tall row micro-panels
 * (depth-major, zero-padded tail rows).  A' is the logical [M x K]
 * operand (trans_a reads a as its transpose).
 */
void packAPanel(const float *a, bool trans_a, int64_t m, int64_t k,
                int64_t ic, int64_t mc, int64_t pc, int64_t kc,
                float alpha, float *dst, int64_t mr);

/**
 * Pack B'[pc:pc+kc, jc:jc+nc] into nr-wide column micro-panels with
 * zero-padded tail columns.  B' is the logical [K x N] operand.
 */
void packBPanel(const float *b, bool trans_b, int64_t k, int64_t n,
                int64_t pc, int64_t kc, int64_t jc, int64_t nc,
                float *dst, int64_t nr);

} // namespace echo::ops::detail

#endif // ECHO_TENSOR_GEMM_PACK_H
