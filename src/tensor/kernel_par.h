/**
 * @file
 * Internal helpers for parallelizing tensor kernels (not part of the
 * public ops.h surface).
 *
 * Every helper preserves the determinism contract: chunking only
 * decides which thread computes an output range, never the order of
 * floating-point operations that produce a given element, so results
 * are byte-identical for every ECHO_NUM_THREADS.  Kernels below the
 * element threshold run serially — the pool hand-off (~a few µs) would
 * dominate tiny tensors, and the serial path keeps single-step
 * debugging trivial.
 */
#ifndef ECHO_TENSOR_KERNEL_PAR_H
#define ECHO_TENSOR_KERNEL_PAR_H

#include <cstdint>

#include "core/thread_pool.h"

namespace echo::ops::detail {

/** Minimum elements per parallelFor chunk (also the serial threshold). */
constexpr int64_t kParGrainElems = int64_t(1) << 13;

/**
 * Split [0, count) units of @p unit_elems elements each across the
 * pool, keeping at least kParGrainElems elements per chunk.  Units are
 * flat element ranges (unit_elems == 1) or rows of a row-wise kernel.
 */
template <typename Fn>
inline void
parallelUnits(int64_t count, int64_t unit_elems, Fn &&fn)
{
    const int64_t per_unit = unit_elems < 1 ? 1 : unit_elems;
    const int64_t grain = kParGrainElems / per_unit < 1
                              ? 1
                              : kParGrainElems / per_unit;
    ThreadPool::global().parallelFor(0, count, grain,
                                     static_cast<Fn &&>(fn));
}

} // namespace echo::ops::detail

#endif // ECHO_TENSOR_KERNEL_PAR_H
