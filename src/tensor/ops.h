/**
 * @file
 * The CPU tensor-op library.
 *
 * These free functions implement the numeric kernels that the graph ops
 * (src/graph/ops) call from their forward implementations and that the
 * gradient graphs are composed from.  All functions are pure: they return
 * freshly allocated tensors and never mutate inputs (except the explicit
 * *Into accumulation helpers).
 *
 * Implementations live in ops_gemm.cc, ops_elementwise.cc, ops_shape.cc,
 * and ops_nn.cc.
 */
#ifndef ECHO_TENSOR_OPS_H
#define ECHO_TENSOR_OPS_H

#include <cstdint>
#include <vector>

#include "tensor/gemm_schedule.h"
#include "tensor/tensor.h"

namespace echo::ops {

// ----------------------------------------------------------------------
// GEMM family (ops_gemm.cc)
// ----------------------------------------------------------------------

/**
 * General matrix multiply: C = alpha * op(A) * op(B), where op() is an
 * optional transpose.  A is [M x K] after op, B is [K x N] after op.
 * Runs under the schedule the tuner registered for this geometry (see
 * tensor/gemm_schedule.h), falling back to the fixed default.
 */
Tensor gemm(const Tensor &a, bool trans_a, const Tensor &b, bool trans_b,
            float alpha = 1.0f);

/**
 * gemm() under an explicit schedule, bypassing the tuned registry —
 * the tuner's measurement harness and the schedule tests use this.
 * Dies if @p schedule is illegal for the operand layout.  Results are
 * byte-identical to gemmReference() for every legal schedule.
 */
Tensor gemmWithSchedule(const Tensor &a, bool trans_a, const Tensor &b,
                        bool trans_b, float alpha,
                        const GemmSchedule &schedule);

/**
 * Naive triple-loop GEMM kept as the golden reference for the blocked
 * kernel: tests compare every transpose combination against it, and
 * bench/cpu_kernels times it as the "seed" baseline.  Do not use on a
 * hot path.
 */
Tensor gemmReference(const Tensor &a, bool trans_a, const Tensor &b,
                     bool trans_b, float alpha = 1.0f);

/**
 * Batched matrix multiply over the leading axis:
 * C[b] = op(A[b]) * op(B[b]) for 3-D A, B.
 */
Tensor bmm(const Tensor &a, bool trans_a, const Tensor &b, bool trans_b);

/** bmm() under an explicit schedule (batch_parallel picks the axis). */
Tensor bmmWithSchedule(const Tensor &a, bool trans_a, const Tensor &b,
                       bool trans_b, const GemmSchedule &schedule);

/** Outer product of two vectors: [M] x [N] -> [M x N]. */
Tensor outer(const Tensor &u, const Tensor &v);

// ----------------------------------------------------------------------
// Element-wise family (ops_elementwise.cc)
// ----------------------------------------------------------------------

Tensor add(const Tensor &a, const Tensor &b);
Tensor sub(const Tensor &a, const Tensor &b);
Tensor mul(const Tensor &a, const Tensor &b);

/** a + alpha * b, shapes must match. */
Tensor axpy(const Tensor &a, const Tensor &b, float alpha);

Tensor addScalar(const Tensor &a, float s);
Tensor mulScalar(const Tensor &a, float s);

Tensor tanh(const Tensor &a);
Tensor sigmoid(const Tensor &a);
Tensor relu(const Tensor &a);
Tensor square(const Tensor &a);
Tensor negate(const Tensor &a);

/** dst += src (in place); shapes must match. */
void accumulateInto(Tensor &dst, const Tensor &src);

// ----------------------------------------------------------------------
// Broadcast / reduction family (ops_elementwise.cc)
// ----------------------------------------------------------------------

/** Add a length-[N] bias row to each row of a [..., N] tensor. */
Tensor addBias(const Tensor &a, const Tensor &bias);

/** Sum a [..., N] tensor over all leading axes, producing [N]. */
Tensor sumToBias(const Tensor &a, int64_t n);

/**
 * Broadcast-add a per-batch row: X [B x T x H] + q [B x H] -> [B x T x H]
 * (q is added to every time step).  This is the attention "compare"
 * broadcast of the paper's O-shape region.
 */
Tensor broadcastAddBT(const Tensor &x, const Tensor &q);

/** Sum over the middle axis: [B x T x H] -> [B x H]. */
Tensor sumAxis1(const Tensor &x);

/** Sum over the last axis: [... x N] -> [...]. */
Tensor sumLastAxis(const Tensor &x);

/**
 * Contract the last axis with a vector: [B x T x H] . [H] -> [B x T].
 * Used by the attention scoring head (v-dot).
 */
Tensor dotLastAxis(const Tensor &x, const Tensor &v);

/** Broadcast-multiply along the last axis: [B x T] x [H] -> [B x T x H]. */
Tensor outerLastAxis(const Tensor &s, const Tensor &v);

/** Scale each [H]-row of X [B x T x H] by the scalar w[b, t]. */
Tensor scaleRowsBT(const Tensor &x, const Tensor &w);

/** Per-(b,t) dot product of two [B x T x H] tensors -> [B x T]. */
Tensor rowDotBT(const Tensor &a, const Tensor &b);

// ----------------------------------------------------------------------
// Shape family (ops_shape.cc)
// ----------------------------------------------------------------------

Tensor transpose2d(const Tensor &a);

/** Permute the axes of a 3-D tensor, e.g.\ perm = {1, 0, 2}. */
Tensor permute3d(const Tensor &a, const std::vector<int> &perm);

/** Concatenate along @p axis; all other extents must match. */
Tensor concat(const std::vector<Tensor> &parts, int axis);

/** Slice [begin, end) along @p axis. */
Tensor slice(const Tensor &a, int axis, int64_t begin, int64_t end);

/** Reverse a tensor along @p axis (paper's SequenceReverse semantics). */
Tensor reverseAxis(const Tensor &a, int axis);

// ----------------------------------------------------------------------
// Neural-network family (ops_nn.cc)
// ----------------------------------------------------------------------

/** Numerically stable softmax along the last axis (2-D or 3-D). */
Tensor softmaxLastAxis(const Tensor &a);

/** log(softmax) along the last axis. */
Tensor logSoftmaxLastAxis(const Tensor &a);

/**
 * Mean cross-entropy of logits [N x V] against integer labels [N]
 * (labels carried as floats).  Positions with label < 0 are ignored
 * (padding).  Returns a scalar [1].
 */
Tensor crossEntropy(const Tensor &logits, const Tensor &labels);

/** Gradient of crossEntropy with respect to the logits, scaled by the
 *  upstream loss gradient (folded into the masking pass so callers
 *  need no second output-sized multiply). */
Tensor crossEntropyGrad(const Tensor &logits, const Tensor &labels,
                        float loss_grad = 1.0f);

/**
 * Layer normalization along the last axis with learnable gain/bias
 * omitted (the paper's attention composite uses the plain normalization).
 * @param eps variance floor.
 */
Tensor layerNormLastAxis(const Tensor &a, float eps = 1e-5f);

/** Embedding lookup: table [V x H], ids [...], result [... x H]. */
Tensor embeddingLookup(const Tensor &table, const Tensor &ids);

/** Scatter-add gradient of embeddingLookup into a [V x H] tensor. */
Tensor embeddingGrad(const Tensor &table, const Tensor &ids,
                     const Tensor &out_grad);

/** Same, from the table's shape alone — no dummy table allocation
 *  (the tape-friendly form: exactly one output-sized allocation). */
Tensor embeddingGrad(const Shape &table_shape, const Tensor &ids,
                     const Tensor &out_grad);

} // namespace echo::ops

#endif // ECHO_TENSOR_OPS_H
