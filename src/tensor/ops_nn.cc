#include <cmath>

#include "core/logging.h"
#include "tensor/kernel_par.h"
#include "tensor/ops.h"

namespace echo::ops {

namespace {

using detail::parallelUnits;

} // namespace

Tensor
softmaxLastAxis(const Tensor &a)
{
    const int64_t n = a.shape().dim(-1);
    const int64_t rows = a.numel() / n;
    Tensor c(a.shape());
    const float *pa = a.data();
    float *pc = c.data();
    // Row-parallel: each row's max/denominator reduction stays within
    // one chunk, in serial order.
    parallelUnits(rows, n, [=](int64_t r0, int64_t r1) {
        for (int64_t r = r0; r < r1; ++r) {
            const float *src = pa + r * n;
            float *dst = pc + r * n;
            float mx = src[0];
            for (int64_t j = 1; j < n; ++j)
                mx = std::max(mx, src[j]);
            double denom = 0.0;
            for (int64_t j = 0; j < n; ++j) {
                dst[j] = std::exp(src[j] - mx);
                denom += dst[j];
            }
            const float inv = static_cast<float>(1.0 / denom);
            for (int64_t j = 0; j < n; ++j)
                dst[j] *= inv;
        }
    });
    return c;
}

Tensor
logSoftmaxLastAxis(const Tensor &a)
{
    const int64_t n = a.shape().dim(-1);
    const int64_t rows = a.numel() / n;
    Tensor c(a.shape());
    const float *pa = a.data();
    float *pc = c.data();
    parallelUnits(rows, n, [=](int64_t r0, int64_t r1) {
        for (int64_t r = r0; r < r1; ++r) {
            const float *src = pa + r * n;
            float *dst = pc + r * n;
            float mx = src[0];
            for (int64_t j = 1; j < n; ++j)
                mx = std::max(mx, src[j]);
            double denom = 0.0;
            for (int64_t j = 0; j < n; ++j)
                denom += std::exp(src[j] - mx);
            const float log_denom =
                static_cast<float>(std::log(denom)) + mx;
            for (int64_t j = 0; j < n; ++j)
                dst[j] = src[j] - log_denom;
        }
    });
    return c;
}

namespace {

/** Count the non-padding labels (label >= 0). */
int64_t
countValidLabels(const Tensor &labels)
{
    int64_t valid = 0;
    for (int64_t i = 0; i < labels.numel(); ++i)
        if (labels.data()[i] >= 0.0f)
            ++valid;
    return valid;
}

} // namespace

Tensor
crossEntropy(const Tensor &logits, const Tensor &labels)
{
    ECHO_REQUIRE(logits.shape().ndim() == 2, "crossEntropy wants [N x V]");
    const int64_t n = logits.shape()[0];
    const int64_t v = logits.shape()[1];
    ECHO_REQUIRE(labels.numel() == n, "label count mismatch");

    // Per-row log-softmax computed inline, in exactly the float-op
    // order logSoftmaxLastAxis uses — bit-identical loss without
    // materializing the [N x V] temporary (which would defeat the
    // execution tape's zero-allocation steady state).  The serial loop
    // keeps the summation order fixed.
    double loss = 0.0;
    const int64_t valid = countValidLabels(labels);
    for (int64_t i = 0; i < n; ++i) {
        const float lf = labels.data()[i];
        if (lf < 0.0f)
            continue;
        const int64_t label = static_cast<int64_t>(lf);
        ECHO_REQUIRE(label < v, "label ", label, " out of vocab ", v);
        const float *src = logits.data() + i * v;
        float mx = src[0];
        for (int64_t j = 1; j < v; ++j)
            mx = std::max(mx, src[j]);
        double denom = 0.0;
        for (int64_t j = 0; j < v; ++j)
            denom += std::exp(src[j] - mx);
        const float log_denom =
            static_cast<float>(std::log(denom)) + mx;
        loss -= src[label] - log_denom;
    }
    Tensor out(Shape({1}));
    out.data()[0] =
        static_cast<float>(valid > 0 ? loss / static_cast<double>(valid)
                                     : 0.0);
    return out;
}

Tensor
crossEntropyGrad(const Tensor &logits, const Tensor &labels,
                 float loss_grad)
{
    const int64_t n = logits.shape()[0];
    const int64_t v = logits.shape()[1];
    Tensor grad = softmaxLastAxis(logits);
    const int64_t valid = countValidLabels(labels);
    const float scale =
        (valid > 0 ? 1.0f / static_cast<float>(valid) : 0.0f) *
        loss_grad;
    const float *pl = labels.data();
    float *pg = grad.data();
    parallelUnits(n, v, [=](int64_t i0, int64_t i1) {
        for (int64_t i = i0; i < i1; ++i) {
            const float lf = pl[i];
            if (lf < 0.0f) {
                for (int64_t j = 0; j < v; ++j)
                    pg[i * v + j] = 0.0f;
                continue;
            }
            const int64_t label = static_cast<int64_t>(lf);
            pg[i * v + label] -= 1.0f;
            for (int64_t j = 0; j < v; ++j)
                pg[i * v + j] *= scale;
        }
    });
    return grad;
}

Tensor
layerNormLastAxis(const Tensor &a, float eps)
{
    const int64_t n = a.shape().dim(-1);
    const int64_t rows = a.numel() / n;
    Tensor c(a.shape());
    const float *pa = a.data();
    float *pc = c.data();
    parallelUnits(rows, n, [=](int64_t r0, int64_t r1) {
        for (int64_t r = r0; r < r1; ++r) {
            const float *src = pa + r * n;
            float *dst = pc + r * n;
            double mean = 0.0;
            for (int64_t j = 0; j < n; ++j)
                mean += src[j];
            mean /= static_cast<double>(n);
            double var = 0.0;
            for (int64_t j = 0; j < n; ++j) {
                const double d = src[j] - mean;
                var += d * d;
            }
            var /= static_cast<double>(n);
            const float rstd =
                static_cast<float>(1.0 / std::sqrt(var + eps));
            for (int64_t j = 0; j < n; ++j)
                dst[j] = (src[j] - static_cast<float>(mean)) * rstd;
        }
    });
    return c;
}

Tensor
embeddingLookup(const Tensor &table, const Tensor &ids)
{
    ECHO_REQUIRE(table.shape().ndim() == 2, "embedding table is [V x H]");
    const int64_t v = table.shape()[0];
    const int64_t h = table.shape()[1];
    Shape out_shape = ids.shape().insertAxis(ids.shape().ndim(), h);
    Tensor c(out_shape);
    const float *pt = table.data();
    const float *pi = ids.data();
    float *pc = c.data();
    parallelUnits(ids.numel(), h, [=](int64_t i0, int64_t i1) {
        for (int64_t i = i0; i < i1; ++i) {
            const float idf = pi[i];
            const int64_t id =
                idf < 0.0f ? 0 : static_cast<int64_t>(idf);
            ECHO_REQUIRE(id < v, "token id ", id, " out of vocab ", v);
            const float *src = pt + id * h;
            float *dst = pc + i * h;
            for (int64_t j = 0; j < h; ++j)
                dst[j] = idf < 0.0f ? 0.0f : src[j];
        }
    });
    return c;
}

Tensor
embeddingGrad(const Tensor &table, const Tensor &ids,
              const Tensor &out_grad)
{
    return embeddingGrad(table.shape(), ids, out_grad);
}

Tensor
embeddingGrad(const Shape &table_shape, const Tensor &ids,
              const Tensor &out_grad)
{
    const int64_t h = table_shape[1];
    const int64_t count = ids.numel();
    ECHO_REQUIRE(out_grad.numel() == count * h,
                 "embeddingGrad size mismatch");
    Tensor grad = Tensor::zeros(table_shape);
    const float *pi = ids.data();
    const float *pg = out_grad.data();
    float *pd = grad.data();
    // Column-parallel scatter-add: duplicate ids make row-parallelism a
    // data race, so each chunk owns a j-range of the embedding width
    // and walks the ids in serial order.  Accumulation order per
    // element matches the serial kernel exactly.
    parallelUnits(h, count, [=](int64_t j0, int64_t j1) {
        for (int64_t i = 0; i < count; ++i) {
            const float idf = pi[i];
            if (idf < 0.0f)
                continue;
            const int64_t id = static_cast<int64_t>(idf);
            float *dst = pd + id * h;
            const float *src = pg + i * h;
            for (int64_t j = j0; j < j1; ++j)
                dst[j] += src[j];
        }
    });
    return grad;
}

} // namespace echo::ops
