#include <cmath>

#include "core/logging.h"
#include "tensor/ops.h"

namespace echo::ops {

Tensor
softmaxLastAxis(const Tensor &a)
{
    const int64_t n = a.shape().dim(-1);
    const int64_t rows = a.numel() / n;
    Tensor c(a.shape());
    for (int64_t r = 0; r < rows; ++r) {
        const float *src = a.data() + r * n;
        float *dst = c.data() + r * n;
        float mx = src[0];
        for (int64_t j = 1; j < n; ++j)
            mx = std::max(mx, src[j]);
        double denom = 0.0;
        for (int64_t j = 0; j < n; ++j) {
            dst[j] = std::exp(src[j] - mx);
            denom += dst[j];
        }
        const float inv = static_cast<float>(1.0 / denom);
        for (int64_t j = 0; j < n; ++j)
            dst[j] *= inv;
    }
    return c;
}

Tensor
logSoftmaxLastAxis(const Tensor &a)
{
    const int64_t n = a.shape().dim(-1);
    const int64_t rows = a.numel() / n;
    Tensor c(a.shape());
    for (int64_t r = 0; r < rows; ++r) {
        const float *src = a.data() + r * n;
        float *dst = c.data() + r * n;
        float mx = src[0];
        for (int64_t j = 1; j < n; ++j)
            mx = std::max(mx, src[j]);
        double denom = 0.0;
        for (int64_t j = 0; j < n; ++j)
            denom += std::exp(src[j] - mx);
        const float log_denom = static_cast<float>(std::log(denom)) + mx;
        for (int64_t j = 0; j < n; ++j)
            dst[j] = src[j] - log_denom;
    }
    return c;
}

namespace {

/** Count the non-padding labels (label >= 0). */
int64_t
countValidLabels(const Tensor &labels)
{
    int64_t valid = 0;
    for (int64_t i = 0; i < labels.numel(); ++i)
        if (labels.data()[i] >= 0.0f)
            ++valid;
    return valid;
}

} // namespace

Tensor
crossEntropy(const Tensor &logits, const Tensor &labels)
{
    ECHO_REQUIRE(logits.shape().ndim() == 2, "crossEntropy wants [N x V]");
    const int64_t n = logits.shape()[0];
    const int64_t v = logits.shape()[1];
    ECHO_REQUIRE(labels.numel() == n, "label count mismatch");

    const Tensor logp = logSoftmaxLastAxis(logits);
    double loss = 0.0;
    const int64_t valid = countValidLabels(labels);
    for (int64_t i = 0; i < n; ++i) {
        const float lf = labels.data()[i];
        if (lf < 0.0f)
            continue;
        const int64_t label = static_cast<int64_t>(lf);
        ECHO_REQUIRE(label < v, "label ", label, " out of vocab ", v);
        loss -= logp.data()[i * v + label];
    }
    Tensor out(Shape({1}));
    out.data()[0] =
        static_cast<float>(valid > 0 ? loss / static_cast<double>(valid)
                                     : 0.0);
    return out;
}

Tensor
crossEntropyGrad(const Tensor &logits, const Tensor &labels)
{
    const int64_t n = logits.shape()[0];
    const int64_t v = logits.shape()[1];
    Tensor grad = softmaxLastAxis(logits);
    const int64_t valid = countValidLabels(labels);
    const float scale =
        valid > 0 ? 1.0f / static_cast<float>(valid) : 0.0f;
    for (int64_t i = 0; i < n; ++i) {
        const float lf = labels.data()[i];
        if (lf < 0.0f) {
            for (int64_t j = 0; j < v; ++j)
                grad.data()[i * v + j] = 0.0f;
            continue;
        }
        const int64_t label = static_cast<int64_t>(lf);
        grad.data()[i * v + label] -= 1.0f;
        for (int64_t j = 0; j < v; ++j)
            grad.data()[i * v + j] *= scale;
    }
    return grad;
}

Tensor
layerNormLastAxis(const Tensor &a, float eps)
{
    const int64_t n = a.shape().dim(-1);
    const int64_t rows = a.numel() / n;
    Tensor c(a.shape());
    for (int64_t r = 0; r < rows; ++r) {
        const float *src = a.data() + r * n;
        float *dst = c.data() + r * n;
        double mean = 0.0;
        for (int64_t j = 0; j < n; ++j)
            mean += src[j];
        mean /= static_cast<double>(n);
        double var = 0.0;
        for (int64_t j = 0; j < n; ++j) {
            const double d = src[j] - mean;
            var += d * d;
        }
        var /= static_cast<double>(n);
        const float rstd =
            static_cast<float>(1.0 / std::sqrt(var + eps));
        for (int64_t j = 0; j < n; ++j)
            dst[j] = (src[j] - static_cast<float>(mean)) * rstd;
    }
    return c;
}

Tensor
embeddingLookup(const Tensor &table, const Tensor &ids)
{
    ECHO_REQUIRE(table.shape().ndim() == 2, "embedding table is [V x H]");
    const int64_t v = table.shape()[0];
    const int64_t h = table.shape()[1];
    Shape out_shape = ids.shape().insertAxis(ids.shape().ndim(), h);
    Tensor c(out_shape);
    for (int64_t i = 0; i < ids.numel(); ++i) {
        float idf = ids.data()[i];
        int64_t id = idf < 0.0f ? 0 : static_cast<int64_t>(idf);
        ECHO_REQUIRE(id < v, "token id ", id, " out of vocab ", v);
        const float *src = table.data() + id * h;
        float *dst = c.data() + i * h;
        for (int64_t j = 0; j < h; ++j)
            dst[j] = idf < 0.0f ? 0.0f : src[j];
    }
    return c;
}

Tensor
embeddingGrad(const Tensor &table, const Tensor &ids,
              const Tensor &out_grad)
{
    const int64_t h = table.shape()[1];
    ECHO_REQUIRE(out_grad.numel() == ids.numel() * h,
                 "embeddingGrad size mismatch");
    Tensor grad = Tensor::zeros(table.shape());
    for (int64_t i = 0; i < ids.numel(); ++i) {
        const float idf = ids.data()[i];
        if (idf < 0.0f)
            continue;
        const int64_t id = static_cast<int64_t>(idf);
        float *dst = grad.data() + id * h;
        const float *src = out_grad.data() + i * h;
        for (int64_t j = 0; j < h; ++j)
            dst[j] += src[j];
    }
    return grad;
}

} // namespace echo::ops
