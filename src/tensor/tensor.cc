#include "tensor/tensor.h"

#include <cmath>
#include <cstring>

#include "core/logging.h"
#include "core/rng.h"
#include "obs/counters.h"
#include "tensor/alloc_hook.h"

namespace echo {

AllocHook &
threadAllocHook()
{
    thread_local AllocHook hook;
    return hook;
}

void
Tensor::allocate()
{
    AllocHook &hook = threadAllocHook();
    if (hook.armed()) {
        const int64_t bytes = shape_.bytes();
        for (int i = 0; i < hook.count; ++i) {
            AllocSlot &slot = hook.slots[i];
            if (!slot.claimed && slot.bytes == bytes) {
                slot.claimed = true;
                // Aliasing constructor: shares the region owner's
                // control block — no heap allocation on this path.
                storage_ = std::shared_ptr<void>(*slot.owner, slot.ptr);
                data_ = slot.ptr;
                return;
            }
        }
        // No slot fits: fall back to the heap.  Correct but visible —
        // the tape's zero-malloc claim is audited via this counter.
        // kScheduling: which allocations run under an armed hook can
        // depend on dispatch (thread count picks GEMM schedules etc.).
        static obs::Counter &c_miss =
            obs::counter("tape.arena_miss", obs::CounterKind::kScheduling);
        c_miss.add(1);
    }
    auto vec = std::make_shared<std::vector<float>>(
        static_cast<size_t>(shape_.numel()));
    data_ = vec->data();
    storage_ = std::move(vec);
}

Tensor::Tensor(Shape shape) : shape_(shape)
{
    allocate();
}

Tensor::Tensor(Shape shape, float value) : shape_(shape)
{
    allocate();
    fill(value);
}

Tensor::Tensor(Shape shape, std::vector<float> values) : shape_(shape)
{
    ECHO_REQUIRE(static_cast<int64_t>(values.size()) == shape_.numel(),
                 "value count ", values.size(), " != shape ",
                 shape_.toString());
    auto vec = std::make_shared<std::vector<float>>(std::move(values));
    data_ = vec->data();
    storage_ = std::move(vec);
}

Tensor
Tensor::zeros(Shape shape)
{
    return Tensor(shape, 0.0f);
}

Tensor
Tensor::full(Shape shape, float value)
{
    return Tensor(shape, value);
}

Tensor
Tensor::uniform(Shape shape, Rng &rng, float lo, float hi)
{
    Tensor t(shape);
    float *p = t.data();
    const int64_t n = t.numel();
    for (int64_t i = 0; i < n; ++i)
        p[i] = static_cast<float>(rng.uniform(lo, hi));
    return t;
}

Tensor
Tensor::gaussian(Shape shape, Rng &rng, float mean, float stddev)
{
    Tensor t(shape);
    float *p = t.data();
    const int64_t n = t.numel();
    for (int64_t i = 0; i < n; ++i)
        p[i] = static_cast<float>(rng.gaussian(mean, stddev));
    return t;
}

Tensor
Tensor::fromExternal(Shape shape, float *data, std::shared_ptr<void> owner)
{
    ECHO_REQUIRE(data != nullptr || shape.numel() == 0,
                 "fromExternal with null data");
    Tensor t;
    t.shape_ = shape;
    t.data_ = data;
    t.storage_ = std::move(owner);
    return t;
}

float *
Tensor::checkedData() const
{
    ECHO_CHECK(data_, "access to undefined tensor");
    return data_;
}

float &
Tensor::at(int64_t i)
{
    ECHO_CHECK(i >= 0 && i < numel(), "flat index out of range");
    return data()[i];
}

float
Tensor::at(int64_t i) const
{
    ECHO_CHECK(i >= 0 && i < numel(), "flat index out of range");
    return data()[i];
}

float &
Tensor::at(int64_t i, int64_t j)
{
    ECHO_CHECK(shape_.ndim() == 2, "2-D access on ", shape_.toString());
    return data()[i * shape_[1] + j];
}

float
Tensor::at(int64_t i, int64_t j) const
{
    ECHO_CHECK(shape_.ndim() == 2, "2-D access on ", shape_.toString());
    return data()[i * shape_[1] + j];
}

float &
Tensor::at(int64_t i, int64_t j, int64_t k)
{
    ECHO_CHECK(shape_.ndim() == 3, "3-D access on ", shape_.toString());
    return data()[(i * shape_[1] + j) * shape_[2] + k];
}

float
Tensor::at(int64_t i, int64_t j, int64_t k) const
{
    ECHO_CHECK(shape_.ndim() == 3, "3-D access on ", shape_.toString());
    return data()[(i * shape_[1] + j) * shape_[2] + k];
}

Tensor
Tensor::reshape(Shape new_shape) const
{
    ECHO_REQUIRE(new_shape.numel() == numel(), "reshape ",
                 shape_.toString(), " -> ", new_shape.toString(),
                 " changes element count");
    Tensor t;
    t.storage_ = storage_;
    t.data_ = data_;
    t.shape_ = new_shape;
    return t;
}

Tensor
Tensor::clone() const
{
    Tensor t;
    t.shape_ = shape_;
    if (data_) {
        t.allocate();
        std::memcpy(t.data_, data_,
                    static_cast<size_t>(numel()) * sizeof(float));
    }
    return t;
}

void
Tensor::fill(float value)
{
    float *p = data();
    const int64_t n = numel();
    for (int64_t i = 0; i < n; ++i)
        p[i] = value;
}

double
Tensor::sum() const
{
    const float *p = data();
    const int64_t n = numel();
    double acc = 0.0;
    for (int64_t i = 0; i < n; ++i)
        acc += p[i];
    return acc;
}

bool
Tensor::allFinite() const
{
    const float *p = data();
    const int64_t n = numel();
    for (int64_t i = 0; i < n; ++i)
        if (!std::isfinite(p[i]))
            return false;
    return true;
}

} // namespace echo
