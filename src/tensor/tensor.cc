#include "tensor/tensor.h"

#include <cmath>

#include "core/logging.h"
#include "core/rng.h"

namespace echo {

Tensor::Tensor(Shape shape)
    : storage_(std::make_shared<std::vector<float>>(
          static_cast<size_t>(shape.numel()))),
      shape_(std::move(shape))
{
}

Tensor::Tensor(Shape shape, float value)
    : storage_(std::make_shared<std::vector<float>>(
          static_cast<size_t>(shape.numel()), value)),
      shape_(std::move(shape))
{
}

Tensor::Tensor(Shape shape, std::vector<float> values)
    : storage_(std::make_shared<std::vector<float>>(std::move(values))),
      shape_(std::move(shape))
{
    ECHO_REQUIRE(static_cast<int64_t>(storage_->size()) == shape_.numel(),
                 "value count ", storage_->size(), " != shape ",
                 shape_.toString());
}

Tensor
Tensor::zeros(Shape shape)
{
    return Tensor(std::move(shape), 0.0f);
}

Tensor
Tensor::full(Shape shape, float value)
{
    return Tensor(std::move(shape), value);
}

Tensor
Tensor::uniform(Shape shape, Rng &rng, float lo, float hi)
{
    Tensor t(std::move(shape));
    float *p = t.data();
    const int64_t n = t.numel();
    for (int64_t i = 0; i < n; ++i)
        p[i] = static_cast<float>(rng.uniform(lo, hi));
    return t;
}

Tensor
Tensor::gaussian(Shape shape, Rng &rng, float mean, float stddev)
{
    Tensor t(std::move(shape));
    float *p = t.data();
    const int64_t n = t.numel();
    for (int64_t i = 0; i < n; ++i)
        p[i] = static_cast<float>(rng.gaussian(mean, stddev));
    return t;
}

float *
Tensor::data()
{
    ECHO_CHECK(storage_, "access to undefined tensor");
    return storage_->data();
}

const float *
Tensor::data() const
{
    ECHO_CHECK(storage_, "access to undefined tensor");
    return storage_->data();
}

float &
Tensor::at(int64_t i)
{
    ECHO_CHECK(i >= 0 && i < numel(), "flat index out of range");
    return data()[i];
}

float
Tensor::at(int64_t i) const
{
    ECHO_CHECK(i >= 0 && i < numel(), "flat index out of range");
    return data()[i];
}

float &
Tensor::at(int64_t i, int64_t j)
{
    ECHO_CHECK(shape_.ndim() == 2, "2-D access on ", shape_.toString());
    return data()[i * shape_[1] + j];
}

float
Tensor::at(int64_t i, int64_t j) const
{
    ECHO_CHECK(shape_.ndim() == 2, "2-D access on ", shape_.toString());
    return data()[i * shape_[1] + j];
}

float &
Tensor::at(int64_t i, int64_t j, int64_t k)
{
    ECHO_CHECK(shape_.ndim() == 3, "3-D access on ", shape_.toString());
    return data()[(i * shape_[1] + j) * shape_[2] + k];
}

float
Tensor::at(int64_t i, int64_t j, int64_t k) const
{
    ECHO_CHECK(shape_.ndim() == 3, "3-D access on ", shape_.toString());
    return data()[(i * shape_[1] + j) * shape_[2] + k];
}

Tensor
Tensor::reshape(Shape new_shape) const
{
    ECHO_REQUIRE(new_shape.numel() == numel(), "reshape ",
                 shape_.toString(), " -> ", new_shape.toString(),
                 " changes element count");
    Tensor t;
    t.storage_ = storage_;
    t.shape_ = std::move(new_shape);
    return t;
}

Tensor
Tensor::clone() const
{
    Tensor t;
    if (storage_)
        t.storage_ = std::make_shared<std::vector<float>>(*storage_);
    t.shape_ = shape_;
    return t;
}

void
Tensor::fill(float value)
{
    float *p = data();
    const int64_t n = numel();
    for (int64_t i = 0; i < n; ++i)
        p[i] = value;
}

double
Tensor::sum() const
{
    const float *p = data();
    const int64_t n = numel();
    double acc = 0.0;
    for (int64_t i = 0; i < n; ++i)
        acc += p[i];
    return acc;
}

bool
Tensor::allFinite() const
{
    const float *p = data();
    const int64_t n = numel();
    for (int64_t i = 0; i < n; ++i)
        if (!std::isfinite(p[i]))
            return false;
    return true;
}

} // namespace echo
