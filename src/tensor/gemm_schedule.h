/**
 * @file
 * GEMM schedules: the parameter space the autotuner searches, plus the
 * process-wide registry of tuned (shape -> schedule) decisions that
 * ops::gemm consults on every call.
 *
 * A GemmSchedule captures everything the blocked kernel used to hard
 * code: cache blocking (mc/kc/nc), the register micro-tile (mr x nr,
 * from a small legal set with a compiled kernel per pair), the packing
 * strategy for B (packed micro-panels vs reading B in place), the
 * macro loop order, which dimension to parallelize (row blocks, column
 * blocks, or the bmm batch), and the madds threshold below which the
 * kernel stays serial.
 *
 * Bitwise contract (the property the whole tuner rests on): every
 * legal schedule produces output BYTE-IDENTICAL to gemmReference().
 * The micro-kernel loads the current C tile into its accumulator
 * before the depth loop and stores it back after, so each C element is
 * one serial sum over K in ascending order — the same chain of float
 * operations as the reference ikj loop, regardless of where kc panel
 * boundaries fall, which micro-tile computes the element, or which
 * thread ran it.  Tuning can therefore never change results, only
 * speed, and results stay byte-identical across thread counts AND
 * across schedule choices.
 *
 * The registry maps GemmKey (M, N, K, transposes, thread count) to a
 * schedule.  The on-disk cache, the search, and the measurement
 * harness live in src/tune; this header stays dependency-free so the
 * tensor library does not link the tuner.  src/tune installs a
 * resolver callback that ops::gemm invokes on a registry miss when
 * ECHO_TUNE=search (tune-on-first-miss).
 */
#ifndef ECHO_TENSOR_GEMM_SCHEDULE_H
#define ECHO_TENSOR_GEMM_SCHEDULE_H

#include <cstdint>
#include <functional>
#include <optional>
#include <string>

namespace echo::ops {

/** Order of the two macro loops around the packed panel body. */
enum class GemmLoopOrder : uint8_t {
    kNOuter = 0, ///< jc over N outermost, pc over K inner (GotoBLAS)
    kKOuter = 1, ///< pc over K outermost, jc over N inner
};

/** How the B operand reaches the micro-kernel. */
enum class GemmPackB : uint8_t {
    kPacked = 0, ///< kNr-wide zero-padded micro-panels (the default)
    /** Read B in place (unit-stride rows).  Skips the O(K*N) packing
     *  pass — a large win for tiny-M shapes (per-step decode) where
     *  packing all of B dwarfs the useful madds.  Legal only when B is
     *  not transposed (a transposed B has stride-K rows). */
    kDirect = 1,
};

/** Which dimension the kernel splits across the thread pool. */
enum class GemmParallel : uint8_t {
    kNone = 0, ///< always serial
    kRows = 1, ///< split M row blocks (the pre-tuner behaviour)
    /** Split N column blocks — the only useful axis for skewed shapes
     *  like the vocab projection (M=32, N=10000) whose single row
     *  block used to run serial. */
    kCols = 2,
};

/**
 * One point in the GEMM schedule space.  Defaults reproduce the fixed
 * pre-tuner kernel exactly (64/256/512 blocking, 8x16 micro-tile,
 * packed B, N-outer, row-parallel above 2^17 madds).
 */
struct GemmSchedule
{
    /** Cache blocking: row block, depth panel, column panel. */
    int32_t mc = 64;
    int32_t kc = 256;
    int32_t nc = 512;
    /** Register micro-tile; (mr, nr) must be in the legal set. */
    int32_t mr = 8;
    int32_t nr = 16;
    GemmLoopOrder loop_order = GemmLoopOrder::kNOuter;
    GemmPackB pack_b = GemmPackB::kPacked;
    GemmParallel parallel = GemmParallel::kRows;
    /** bmm: parallelize over the batch (per-item GEMMs serial) when
     *  the whole product clears the threshold. */
    uint8_t batch_parallel = 1;
    /** Products below this many madds stay serial — searched, so tiny
     *  per-step decode GEMMs stop paying dispatch overhead. */
    int64_t parallel_min_madds = int64_t(1) << 17;

    /** The fixed pre-tuner schedule (also the search's seed point). */
    static GemmSchedule fixedDefault() { return GemmSchedule{}; }

    /** Compact "mc/kc/nc mr x nr ..." form for logs and cache files. */
    std::string toString() const;

    friend bool operator==(const GemmSchedule &,
                           const GemmSchedule &) = default;
};

/** Micro-tile rows the kernel is compiled for. */
constexpr int32_t kGemmLegalMr[] = {1, 2, 4, 8};
/** Micro-tile columns the kernel is compiled for. */
constexpr int32_t kGemmLegalNr[] = {8, 16, 32};

/** Upper bounds keeping pack buffers and blocks sane. */
constexpr int32_t kGemmMaxMc = 512;
constexpr int32_t kGemmMaxKc = 1024;
constexpr int32_t kGemmMaxNc = 4096;

/**
 * Is @p s executable for an operand with @p trans_b?  Checks the
 * micro-tile against the compiled legal set, divisibility (mc % mr,
 * nc % nr), positive bounded blocking, and that kDirect is not asked
 * to read a transposed B.  On failure @p why (if given) names the
 * violated rule.
 */
bool scheduleLegal(const GemmSchedule &s, bool trans_b,
                   std::string *why = nullptr);

/**
 * Identity of one tuned decision: the GEMM geometry plus the thread
 * count it was measured under (the best schedule at 1 thread and at 8
 * differ).  The ISA dimension of the on-disk key is handled by the
 * cache layer — within one process the ISA is fixed.
 */
struct GemmKey
{
    int64_t m = 0;
    int64_t n = 0;
    int64_t k = 0;
    bool trans_a = false;
    bool trans_b = false;
    int threads = 1;

    friend bool operator==(const GemmKey &, const GemmKey &) = default;

    std::string toString() const;
};

struct GemmKeyHash
{
    size_t operator()(const GemmKey &key) const;
};

/** ECHO_TUNE modes (see tuneMode()). */
enum class TuneMode {
    kOff,    ///< always the fixed default schedule; registry bypassed
    kCache,  ///< use tuned entries when present, never measure
    kSearch, ///< tune-on-first-miss via the installed resolver
};

/** Parsed once from ECHO_TUNE (off|cache|search; default cache). */
TuneMode tuneMode();

/** Registry lookup; nullopt when the key was never tuned. */
std::optional<GemmSchedule> findTunedSchedule(const GemmKey &key);

/** Insert/overwrite one tuned decision. @pre scheduleLegal(...) */
void setTunedSchedule(const GemmKey &key, const GemmSchedule &schedule);

/** Number of registered tuned decisions. */
size_t tunedScheduleCount();

/** Drop every tuned decision (tests). */
void clearTunedSchedulesForTest();

/**
 * Resolver invoked by ops::gemm on a registry miss in kSearch mode.
 * Installed by tune::ensureGlobalTuner(); returns the schedule to use
 * (and is expected to also setTunedSchedule() so the search runs
 * once).  Returning nullopt falls back to the fixed default.
 */
using ScheduleResolver =
    std::function<std::optional<GemmSchedule>(const GemmKey &)>;
void setScheduleResolver(ScheduleResolver resolver);

/**
 * The schedule ops::gemm/bmm will use for this geometry right now:
 * kOff -> fixed default; otherwise registry hit, else resolver (search
 * mode), else fixed default.  Ticks the tune.sched_hit/miss counters.
 * @p threads should be the global pool's thread count.
 */
GemmSchedule scheduleForCall(int64_t m, int64_t n, int64_t k,
                             bool trans_a, bool trans_b, int threads);

/**
 * Name of the SIMD ISA the GEMM kernel was compiled for ("avx512",
 * "avx2", "sse2", "neon", or "scalar") and its vector width in bytes.
 * Defined in ops_gemm.cc so the answer reflects the kernel's actual
 * compile flags (-march=native applies to that TU only).
 */
const char *gemmIsaName();
int gemmVectorWidthBytes();

} // namespace echo::ops

#endif // ECHO_TENSOR_GEMM_SCHEDULE_H
