/**
 * @file
 * Schedule legality, the tuned-schedule registry, and the per-call
 * resolution path (see gemm_schedule.h for the contract).
 */
#include "tensor/gemm_schedule.h"

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <shared_mutex>
#include <sstream>
#include <unordered_map>

#include "core/logging.h"
#include "obs/counters.h"

namespace echo::ops {

namespace {

/** Registry state behind a read-mostly lock: gemm calls take the
 *  shared side; only tuning inserts take the exclusive side. */
struct Registry
{
    std::shared_mutex mu;
    std::unordered_map<GemmKey, GemmSchedule, GemmKeyHash> entries;
    ScheduleResolver resolver;
};

Registry &
registry()
{
    static Registry r;
    return r;
}

bool
inSet(int32_t v, const int32_t *set, size_t n)
{
    return std::find(set, set + n, v) != set + n;
}

} // namespace

std::string
GemmSchedule::toString() const
{
    std::ostringstream os;
    os << mc << "/" << kc << "/" << nc << " " << mr << "x" << nr
       << (loop_order == GemmLoopOrder::kNOuter ? " Nouter" : " Kouter")
       << (pack_b == GemmPackB::kPacked ? " packB" : " directB")
       << (parallel == GemmParallel::kNone
               ? " serial"
               : parallel == GemmParallel::kRows ? " par-rows"
                                                 : " par-cols")
       << (batch_parallel ? " par-batch" : " seq-batch") << " minmadds="
       << parallel_min_madds;
    return os.str();
}

std::string
GemmKey::toString() const
{
    std::ostringstream os;
    os << m << "x" << n << "x" << k << " " << (trans_a ? "T" : "N")
       << (trans_b ? "T" : "N") << " t" << threads;
    return os.str();
}

size_t
GemmKeyHash::operator()(const GemmKey &key) const
{
    // FNV-1a over the packed fields; good enough for a few dozen keys.
    uint64_t h = 1469598103934665603ull;
    auto mix = [&h](uint64_t v) {
        for (int i = 0; i < 8; ++i) {
            h ^= (v >> (8 * i)) & 0xff;
            h *= 1099511628211ull;
        }
    };
    mix(static_cast<uint64_t>(key.m));
    mix(static_cast<uint64_t>(key.n));
    mix(static_cast<uint64_t>(key.k));
    mix((key.trans_a ? 1ull : 0ull) | (key.trans_b ? 2ull : 0ull) |
        (static_cast<uint64_t>(key.threads) << 2));
    return static_cast<size_t>(h);
}

bool
scheduleLegal(const GemmSchedule &s, bool trans_b, std::string *why)
{
    auto fail = [why](const char *reason) {
        if (why)
            *why = reason;
        return false;
    };
    if (!inSet(s.mr, kGemmLegalMr, std::size(kGemmLegalMr)))
        return fail("mr not in the compiled micro-tile set");
    if (!inSet(s.nr, kGemmLegalNr, std::size(kGemmLegalNr)))
        return fail("nr not in the compiled micro-tile set");
    if (s.mc < s.mr || s.mc > kGemmMaxMc || s.mc % s.mr != 0)
        return fail("mc must be a multiple of mr in [mr, 512]");
    if (s.nc < s.nr || s.nc > kGemmMaxNc || s.nc % s.nr != 0)
        return fail("nc must be a multiple of nr in [nr, 4096]");
    if (s.kc < 1 || s.kc > kGemmMaxKc)
        return fail("kc must be in [1, 1024]");
    if (s.pack_b == GemmPackB::kDirect && trans_b)
        return fail("directB is illegal for a transposed B "
                    "(stride-K rows)");
    if (s.parallel > GemmParallel::kCols)
        return fail("unknown parallel dimension");
    if (s.loop_order > GemmLoopOrder::kKOuter)
        return fail("unknown loop order");
    if (s.parallel_min_madds < 0)
        return fail("parallel_min_madds must be >= 0");
    return true;
}

TuneMode
tuneMode()
{
    static const TuneMode mode = [] {
        const char *env = std::getenv("ECHO_TUNE");
        if (env == nullptr || *env == '\0' ||
            std::strcmp(env, "cache") == 0)
            return TuneMode::kCache;
        if (std::strcmp(env, "off") == 0)
            return TuneMode::kOff;
        if (std::strcmp(env, "search") == 0)
            return TuneMode::kSearch;
        ECHO_WARN("ECHO_TUNE=", env,
                  " is not off|cache|search; using cache");
        return TuneMode::kCache;
    }();
    return mode;
}

std::optional<GemmSchedule>
findTunedSchedule(const GemmKey &key)
{
    Registry &r = registry();
    std::shared_lock lock(r.mu);
    auto it = r.entries.find(key);
    if (it == r.entries.end())
        return std::nullopt;
    return it->second;
}

void
setTunedSchedule(const GemmKey &key, const GemmSchedule &schedule)
{
    std::string why;
    ECHO_REQUIRE(scheduleLegal(schedule, key.trans_b, &why),
                 "illegal schedule for ", key.toString(), ": ", why);
    Registry &r = registry();
    std::unique_lock lock(r.mu);
    r.entries[key] = schedule;
}

size_t
tunedScheduleCount()
{
    Registry &r = registry();
    std::shared_lock lock(r.mu);
    return r.entries.size();
}

void
clearTunedSchedulesForTest()
{
    Registry &r = registry();
    std::unique_lock lock(r.mu);
    r.entries.clear();
}

void
setScheduleResolver(ScheduleResolver resolver)
{
    Registry &r = registry();
    std::unique_lock lock(r.mu);
    r.resolver = std::move(resolver);
}

GemmSchedule
scheduleForCall(int64_t m, int64_t n, int64_t k, bool trans_a,
                bool trans_b, int threads)
{
    if (tuneMode() == TuneMode::kOff)
        return GemmSchedule::fixedDefault();

    // Hit/miss totals vary with the thread count (it is part of the
    // key), so these are scheduling-class counters.
    static obs::Counter &hits =
        obs::counter("tune.sched_hit", obs::CounterKind::kScheduling);
    static obs::Counter &misses =
        obs::counter("tune.sched_miss", obs::CounterKind::kScheduling);

    const GemmKey key{m, n, k, trans_a, trans_b, threads};
    if (auto tuned = findTunedSchedule(key)) {
        hits.add(1);
        return *tuned;
    }
    misses.add(1);

    ScheduleResolver resolver;
    {
        Registry &r = registry();
        std::shared_lock lock(r.mu);
        resolver = r.resolver;
    }
    if (resolver) {
        if (auto resolved = resolver(key))
            return *resolved;
    }
    return GemmSchedule::fixedDefault();
}

} // namespace echo::ops
