/**
 * @file
 * Reusable pack-buffer scratch for the blocked GEMM.
 *
 * The GEMM packs A/B panels into per-thread buffers.  Naive
 * thread_local vectors have two failure modes this class fixes:
 *
 *  1. they used to be re-allocated per call on some paths (the serial
 *     bpack was a fresh std::vector every gemm), and
 *  2. they only ever grew: one huge call left every thread holding the
 *     high-water buffer forever.
 *
 * acquire() returns a buffer of at least the requested element count,
 * reusing the existing allocation when it fits.  When the buffer has
 * been oversized by more than kShrinkFactor for a streak of
 * consecutive acquires it shrinks to the LARGEST request of that
 * streak (the recent working set's high-water; shrinking to the
 * current request would re-grow for the next medium shape).
 *
 * The streak length is adaptive.  A periodic workload — many small
 * packs then one burst per training iteration — has NO stable
 * capacity under a fixed streak: a buffer big enough for the burst
 * looks oversized for a whole streak of small packs, shrinks, and the
 * next burst grows it right back, every iteration.  So a grow that
 * lands within one streak window of a shrink marks that shrink
 * premature and doubles the required streak (capped at
 * kShrinkStreakMax); after at most log2(cap) wasted cycles the window
 * outlasts the workload period and the buffer settles at its
 * high-water.  Shrinks that survive kShrinkValidateFactor windows
 * keep the current streak requirement.
 *
 * Every (re)allocation ticks `gemm.pack_scratch_bytes` so pack-buffer
 * churn is visible in counter snapshots, and setting ECHO_PACK_TRACE
 * prints each realloc to stderr.
 */
#ifndef ECHO_TENSOR_PACK_SCRATCH_H
#define ECHO_TENSOR_PACK_SCRATCH_H

#include <algorithm>
#include <cstddef>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "obs/counters.h"

namespace echo::ops {

/** One thread's reusable pack buffer (see file comment). */
class PackScratch
{
  public:
    /** Capacity ratio beyond which the buffer counts as oversized. */
    static constexpr size_t kShrinkFactor = 4;
    /** Initial consecutive-oversized-acquire count before shrinking. */
    static constexpr int kShrinkStreak = 16;
    /** Ceiling for the adaptive streak requirement (see file comment). */
    static constexpr int kShrinkStreakMax = 1024;
    /** A shrink is validated after this many streak windows pass
     *  without a regrow (the workload's burst can trail the shrink by
     *  more than one window). */
    static constexpr int kShrinkValidateFactor = 4;

    /** A buffer with room for @p elems floats (contents unspecified). */
    float *
    acquire(size_t elems)
    {
        if (elems == 0)
            return buf_.empty() ? nullptr : buf_.data();
        // A shrink that goes unchallenged for several streak windows
        // is validated; stop watching for a premature regrow.
        if (since_shrink_ >= 0 &&
            ++since_shrink_ > kShrinkValidateFactor * shrink_streak_)
            since_shrink_ = -1;
        if (elems > buf_.capacity()) {
            if (since_shrink_ >= 0) {
                // Regrew within one window of shrinking: the workload
                // still needs the capacity we just dropped (a periodic
                // burst).  Back off so the next shrink must outlast
                // the period.
                shrink_streak_ =
                    std::min(shrink_streak_ * 2, kShrinkStreakMax);
                since_shrink_ = -1;
            }
            reallocTo(elems);
        } else if (buf_.capacity() > elems * kShrinkFactor) {
            if (elems > streak_max_)
                streak_max_ = elems;
            if (++oversized_streak_ >= shrink_streak_) {
                reallocTo(streak_max_);
                since_shrink_ = 0;
            }
        } else {
            oversized_streak_ = 0;
            streak_max_ = 0;
        }
        if (buf_.size() < elems)
            buf_.resize(elems);
        return buf_.data();
    }

    /** Current capacity in floats (for tests / diagnostics). */
    size_t capacityElems() const { return buf_.capacity(); }

  private:
    void
    reallocTo(size_t elems)
    {
        static const bool trace = std::getenv("ECHO_PACK_TRACE") != nullptr;
        if (trace)
            fprintf(stderr, "[pack %p] realloc %zu -> %zu (streak %d)\n",
                    static_cast<void *>(this), buf_.capacity(), elems,
                    oversized_streak_);
        std::vector<float>(elems).swap(buf_);
        oversized_streak_ = 0;
        streak_max_ = 0;
        static obs::Counter &c_bytes = obs::counter(
            "gemm.pack_scratch_bytes", obs::CounterKind::kScheduling);
        c_bytes.add(static_cast<int64_t>(buf_.capacity() *
                                         sizeof(float)));
    }

    std::vector<float> buf_;
    int oversized_streak_ = 0;
    size_t streak_max_ = 0;
    int shrink_streak_ = kShrinkStreak;
    int since_shrink_ = -1; ///< acquires since last shrink; -1 = none pending

};

} // namespace echo::ops

#endif // ECHO_TENSOR_PACK_SCRATCH_H
