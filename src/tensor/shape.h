/**
 * @file
 * Tensor shape: an ordered list of dimension extents.
 *
 * Shapes are value types used pervasively by the tensor ops, the graph
 * IR's shape inference, and the memory planner (a value's footprint is
 * numel() * sizeof(float)).
 */
#ifndef ECHO_TENSOR_SHAPE_H
#define ECHO_TENSOR_SHAPE_H

#include <cstdint>
#include <initializer_list>
#include <string>
#include <vector>

namespace echo {

/** An N-dimensional tensor shape (extents only; layout is separate). */
class Shape
{
  public:
    Shape() = default;

    /** Construct from a braced list, e.g.\ Shape({B, T, H}). */
    Shape(std::initializer_list<int64_t> dims);

    /** Construct from a vector of extents. */
    explicit Shape(std::vector<int64_t> dims);

    /** Number of dimensions. */
    int ndim() const { return static_cast<int>(dims_.size()); }

    /** Extent of dimension @p axis; negative axes count from the back. */
    int64_t dim(int axis) const;

    /** Extent of dimension @p axis (no negative axes, unchecked style). */
    int64_t operator[](int axis) const { return dim(axis); }

    /** Total number of elements (1 for a scalar shape). */
    int64_t numel() const;

    /** Size in bytes assuming FP32 elements. */
    int64_t bytes() const { return numel() * 4; }

    /** All extents. */
    const std::vector<int64_t> &dims() const { return dims_; }

    /** Shape with @p axis removed. */
    Shape dropAxis(int axis) const;

    /** Shape with extent @p n inserted before @p axis. */
    Shape insertAxis(int axis, int64_t n) const;

    /** True when both shapes have identical extents. */
    bool operator==(const Shape &other) const { return dims_ == other.dims_; }
    bool operator!=(const Shape &other) const { return !(*this == other); }

    /** Render as "[2x3x4]". */
    std::string toString() const;

  private:
    std::vector<int64_t> dims_;

    /** Normalize a possibly negative axis and bounds-check it. */
    int normalizeAxis(int axis) const;
};

} // namespace echo

#endif // ECHO_TENSOR_SHAPE_H
