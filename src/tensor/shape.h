/**
 * @file
 * Tensor shape: an ordered list of dimension extents.
 *
 * Shapes are value types used pervasively by the tensor ops, the graph
 * IR's shape inference, and the memory planner (a value's footprint is
 * numel() * sizeof(float)).
 *
 * Extents live inline (no heap) so that copying a Shape — which every
 * Tensor construction and every op forward does — never allocates.
 * kMaxDims bounds the rank; nothing in the LSTM/NMT stack goes past 4,
 * so 6 leaves headroom without bloating the value type.
 */
#ifndef ECHO_TENSOR_SHAPE_H
#define ECHO_TENSOR_SHAPE_H

#include <array>
#include <cstdint>
#include <initializer_list>
#include <string>
#include <vector>

namespace echo {

/** An N-dimensional tensor shape (extents only; layout is separate). */
class Shape
{
  public:
    /** Maximum supported rank (extents are stored inline). */
    static constexpr int kMaxDims = 6;

    Shape() = default;

    /** Construct from a braced list, e.g.\ Shape({B, T, H}). */
    Shape(std::initializer_list<int64_t> dims);

    /** Construct from a vector of extents. */
    explicit Shape(const std::vector<int64_t> &dims);

    /** Number of dimensions. */
    int ndim() const { return ndim_; }

    /** Extent of dimension @p axis; negative axes count from the back. */
    int64_t dim(int axis) const;

    /** Extent of dimension @p axis (no negative axes, unchecked style). */
    int64_t operator[](int axis) const { return dim(axis); }

    /** Total number of elements (1 for a scalar shape). */
    int64_t numel() const;

    /** Size in bytes assuming FP32 elements. */
    int64_t bytes() const { return numel() * 4; }

    /** All extents, as a fresh vector (allocates; cold paths only). */
    std::vector<int64_t> dims() const
    {
        return std::vector<int64_t>(dims_.begin(), dims_.begin() + ndim_);
    }

    /** This shape with dimension @p axis replaced by @p extent
     *  (allocation-free; the hot-path alternative to dims()). */
    Shape withDim(int axis, int64_t extent) const;

    /** Shape with @p axis removed. */
    Shape dropAxis(int axis) const;

    /** Shape with extent @p n inserted before @p axis. */
    Shape insertAxis(int axis, int64_t n) const;

    /** True when both shapes have identical extents. */
    bool operator==(const Shape &other) const
    {
        if (ndim_ != other.ndim_)
            return false;
        for (int i = 0; i < ndim_; ++i)
            if (dims_[static_cast<size_t>(i)] !=
                other.dims_[static_cast<size_t>(i)])
                return false;
        return true;
    }
    bool operator!=(const Shape &other) const { return !(*this == other); }

    /** Render as "[2x3x4]". */
    std::string toString() const;

  private:
    std::array<int64_t, kMaxDims> dims_{};
    int ndim_ = 0;

    /** Normalize a possibly negative axis and bounds-check it. */
    int normalizeAxis(int axis) const;

    /** Shared ctor body: validate and store @p n extents from @p d. */
    void assign(const int64_t *d, size_t n);
};

} // namespace echo

#endif // ECHO_TENSOR_SHAPE_H
