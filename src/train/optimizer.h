/**
 * @file
 * Optimizers over a named ParamStore: SGD with momentum (the paper's
 * Sockeye/LM training setup) and Adam, both with global-norm gradient
 * clipping.  Optimizer state lives beside the parameters, which is why
 * the memory profiler counts it under Weights (§3.2).
 */
#ifndef ECHO_TRAIN_OPTIMIZER_H
#define ECHO_TRAIN_OPTIMIZER_H

#include <map>
#include <string>
#include <vector>

#include "models/params.h"

namespace echo::train {

using models::NamedWeights;
using models::ParamStore;

/** Optimizer interface: applies one step of named gradients. */
class Optimizer
{
  public:
    virtual ~Optimizer() = default;

    /**
     * Apply @p grads (aligned with @p weights' order) to @p params.
     * @return the global gradient norm before clipping.
     */
    virtual double step(ParamStore &params, const NamedWeights &weights,
                        const std::vector<Tensor> &grads) = 0;
};

/** SGD with momentum and global-norm clipping. */
class SgdOptimizer : public Optimizer
{
  public:
    SgdOptimizer(double lr, double momentum = 0.9,
                 double clip_norm = 5.0);

    double step(ParamStore &params, const NamedWeights &weights,
                const std::vector<Tensor> &grads) override;

    void setLearningRate(double lr) { lr_ = lr; }
    double learningRate() const { return lr_; }

  private:
    double lr_;
    double momentum_;
    double clip_norm_;
    std::map<std::string, Tensor> velocity_;
};

/** Adam with global-norm clipping. */
class AdamOptimizer : public Optimizer
{
  public:
    AdamOptimizer(double lr, double beta1 = 0.9, double beta2 = 0.999,
                  double eps = 1e-8, double clip_norm = 5.0);

    double step(ParamStore &params, const NamedWeights &weights,
                const std::vector<Tensor> &grads) override;

  private:
    double lr_, beta1_, beta2_, eps_, clip_norm_;
    int64_t t_ = 0;
    std::map<std::string, Tensor> m_;
    std::map<std::string, Tensor> v_;
};

/** Global L2 norm across a gradient list. */
double globalNorm(const std::vector<Tensor> &grads);

} // namespace echo::train

#endif // ECHO_TRAIN_OPTIMIZER_H
