/**
 * @file
 * Training-quality metrics: perplexity (language modeling / NMT
 * training curves) and corpus BLEU (NMT validation curves, Fig. 12b).
 */
#ifndef ECHO_TRAIN_METRICS_H
#define ECHO_TRAIN_METRICS_H

#include <cstdint>
#include <vector>

namespace echo::train {

/** Perplexity from a mean cross-entropy (natural log) loss. */
double perplexity(double mean_nll);

/**
 * Corpus-level BLEU-4 with brevity penalty (Papineni et al.), in
 * [0, 100].  Uses the standard smoothing of adding nothing: zero
 * n-gram overlap at any order gives BLEU 0.
 */
double corpusBleu(
    const std::vector<std::vector<int64_t>> &hypotheses,
    const std::vector<std::vector<int64_t>> &references,
    int max_order = 4);

} // namespace echo::train

#endif // ECHO_TRAIN_METRICS_H
