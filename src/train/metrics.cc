#include "train/metrics.h"

#include <algorithm>
#include <cmath>
#include <map>

#include "core/logging.h"

namespace echo::train {

double
perplexity(double mean_nll)
{
    return std::exp(std::min(mean_nll, 20.0));
}

namespace {

/** Count n-grams of @p order in @p seq. */
std::map<std::vector<int64_t>, int64_t>
ngramCounts(const std::vector<int64_t> &seq, int order)
{
    std::map<std::vector<int64_t>, int64_t> counts;
    if (static_cast<int>(seq.size()) < order)
        return counts;
    for (size_t i = 0; i + static_cast<size_t>(order) <= seq.size();
         ++i) {
        std::vector<int64_t> gram(
            seq.begin() + static_cast<long>(i),
            seq.begin() + static_cast<long>(i) + order);
        ++counts[gram];
    }
    return counts;
}

} // namespace

double
corpusBleu(const std::vector<std::vector<int64_t>> &hypotheses,
           const std::vector<std::vector<int64_t>> &references,
           int max_order)
{
    ECHO_REQUIRE(hypotheses.size() == references.size(),
                 "BLEU needs matching hypothesis/reference counts");
    if (hypotheses.empty())
        return 0.0;

    int64_t hyp_len = 0, ref_len = 0;
    std::vector<int64_t> matches(static_cast<size_t>(max_order), 0);
    std::vector<int64_t> totals(static_cast<size_t>(max_order), 0);

    for (size_t s = 0; s < hypotheses.size(); ++s) {
        const auto &hyp = hypotheses[s];
        const auto &ref = references[s];
        hyp_len += static_cast<int64_t>(hyp.size());
        ref_len += static_cast<int64_t>(ref.size());
        for (int order = 1; order <= max_order; ++order) {
            const auto hyp_counts = ngramCounts(hyp, order);
            const auto ref_counts = ngramCounts(ref, order);
            for (const auto &[gram, count] : hyp_counts) {
                auto it = ref_counts.find(gram);
                const int64_t clipped =
                    it == ref_counts.end()
                        ? 0
                        : std::min(count, it->second);
                matches[static_cast<size_t>(order - 1)] += clipped;
            }
            const int64_t n =
                static_cast<int64_t>(hyp.size()) - order + 1;
            totals[static_cast<size_t>(order - 1)] +=
                std::max<int64_t>(0, n);
        }
    }

    double log_precision_sum = 0.0;
    for (int order = 0; order < max_order; ++order) {
        const size_t o = static_cast<size_t>(order);
        if (totals[o] == 0 || matches[o] == 0)
            return 0.0;
        log_precision_sum +=
            std::log(static_cast<double>(matches[o]) /
                     static_cast<double>(totals[o]));
    }
    const double geo_mean =
        std::exp(log_precision_sum / max_order);
    const double bp =
        hyp_len >= ref_len
            ? 1.0
            : std::exp(1.0 - static_cast<double>(ref_len) /
                                 std::max<int64_t>(1, hyp_len));
    return 100.0 * bp * geo_mean;
}

} // namespace echo::train
