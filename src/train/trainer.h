/**
 * @file
 * Training loops and curve recording.
 *
 * Numerics run on the CPU executor at whatever scale the caller
 * configures; wall-clock time stamps come from the GPU model's
 * seconds-per-iteration of the *profiled* configuration, so the
 * training-curve benches can plot quality against modelled GPU time
 * exactly like the paper's TensorBoard-derived Fig. 12.
 */
#ifndef ECHO_TRAIN_TRAINER_H
#define ECHO_TRAIN_TRAINER_H

#include <functional>

#include "graph/executor.h"
#include "train/metrics.h"
#include "train/optimizer.h"

namespace echo::train {

/** One point of a training curve. */
struct CurvePoint
{
    int64_t step = 0;
    double wall_seconds = 0.0;
    double loss = 0.0;
    double perplexity = 0.0;
    /** Validation score at this point (BLEU for NMT; <0 = not run). */
    double validation = -1.0;
};

/** Configuration of a generic training run. */
struct TrainLoopConfig
{
    int64_t iterations = 100;
    /** Modelled seconds per iteration (time axis of the curves). */
    double seconds_per_iteration = 1.0;
    /** Run the validation hook every N iterations (0 = never). */
    int64_t validate_every = 0;
};

/**
 * Generic training loop.
 *
 * @param make_feed returns the feed for iteration i (weights included).
 * @param apply_grads consumes (loss, grads) and updates parameters.
 * @param validate optional; returns a validation score.
 */
std::vector<CurvePoint>
runTrainingLoop(const graph::Executor &executor,
                const TrainLoopConfig &config,
                const std::function<graph::FeedDict(int64_t)> &make_feed,
                const std::function<void(
                    double loss, const std::vector<Tensor> &grads)>
                    &apply_grads,
                const std::function<double()> &validate = {});

/**
 * Throughput meter in the style of MXNet's Speedometer: the average
 * samples/s over the run given modelled iteration time.
 */
double speedometer(int64_t batch, double seconds_per_iteration);

} // namespace echo::train

#endif // ECHO_TRAIN_TRAINER_H
