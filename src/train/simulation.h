/**
 * @file
 * One-call iteration profiling: combine the GPU timeline, the memory
 * profiler, the power model, and the capacity check for a training
 * graph — the bundle every bench queries (the analogue of running
 * nvprof + the MXNet memory profiler + nvidia-smi around one
 * iteration).
 */
#ifndef ECHO_TRAIN_SIMULATION_H
#define ECHO_TRAIN_SIMULATION_H

#include "gpusim/power.h"
#include "gpusim/timeline.h"
#include "memory/profiler.h"

namespace echo::train {

/** Everything measured about one training-iteration configuration. */
struct IterationProfile
{
    gpusim::ProfileReport runtime;
    memory::MemoryProfile memory;
    /** Average power while training (W). */
    double avg_power_w = 0.0;
    /** Whether the configuration fits in the GPU's memory. */
    bool fits = true;

    /** Samples/s at the given batch size. */
    double throughput(int64_t batch) const
    {
        return runtime.throughput(batch);
    }
    double iterationSeconds() const
    {
        return runtime.wall_time_us * 1e-6;
    }
};

/** Profiling options. */
struct SimulationOptions
{
    gpusim::GpuSpec gpu = gpusim::GpuSpec::titanXp();
    memory::ProfilerOptions profiler;
};

/** Profile one iteration of the graph reaching @p fetches. */
IterationProfile
profileIteration(const std::vector<graph::Val> &fetches,
                 const std::vector<graph::Val> &weight_grads,
                 const SimulationOptions &opts = {});

} // namespace echo::train

#endif // ECHO_TRAIN_SIMULATION_H
