#include "train/simulation.h"

namespace echo::train {

IterationProfile
profileIteration(const std::vector<graph::Val> &fetches,
                 const std::vector<graph::Val> &weight_grads,
                 const SimulationOptions &opts)
{
    IterationProfile prof;
    prof.runtime = gpusim::simulateRun(fetches, opts.gpu);
    prof.memory =
        memory::profileMemory(fetches, weight_grads, opts.profiler);
    prof.fits =
        prof.memory.device_bytes <= opts.gpu.mem_capacity_bytes;
    prof.avg_power_w =
        gpusim::estimatePower(prof.runtime, opts.gpu, 1.0).avg_power_w;
    return prof;
}

} // namespace echo::train
