#include "train/nmt_eval.h"

#include "core/logging.h"
#include "core/thread_pool.h"
#include "pass/builtin_passes.h"

namespace echo::train {

std::vector<LengthBucket>
iwsltBuckets()
{
    // IWSLT15 en-vi sentence lengths: mean ~20 tokens, capped at the
    // 100-token maximum bucket the hyperparameters allocate for.
    return {{10, 0.25}, {20, 0.40}, {40, 0.25}, {70, 0.08},
            {100, 0.02}};
}

BucketedNmtProfile
profileNmtBucketed(const models::NmtConfig &base_config,
                   const std::vector<LengthBucket> &buckets,
                   const NmtEvalOptions &opts)
{
    ECHO_REQUIRE(!buckets.empty(), "need at least one length bucket");
    double weight_sum = 0.0;
    for (const LengthBucket &b : buckets)
        weight_sum += b.weight;
    ECHO_REQUIRE(weight_sum > 0.0, "bucket weights must be positive");

    BucketedNmtProfile out;
    int64_t max_len = 0;
    double replay_weighted = 0.0;

    // Buckets are independent (each builds its own model graph, runs
    // its own pass, and profiles its own iteration), so they profile
    // in parallel.  The weighted aggregation below stays serial and in
    // bucket order so the floating-point sums are deterministic.
    const int64_t nbuckets = static_cast<int64_t>(buckets.size());
    std::vector<pass::PassResult> pass_results(
        static_cast<size_t>(nbuckets));
    std::vector<IterationProfile> profiles(
        static_cast<size_t>(nbuckets));
    ThreadPool::global().parallelFor(0, nbuckets, 1, [&](int64_t b0,
                                                         int64_t b1) {
        for (int64_t bi = b0; bi < b1; ++bi) {
            const LengthBucket &bucket =
                buckets[static_cast<size_t>(bi)];
            models::NmtConfig cfg = base_config;
            cfg.src_len = bucket.length;
            cfg.tgt_len = bucket.length;
            models::NmtModel model(cfg);

            if (opts.policy != pass::PassConfig::Policy::kOff) {
                // Run recompute as a contract-checked pipeline stage:
                // weight_grads marks the gradients invariant as
                // already established, and the pass's postcondition
                // audit runs before we trust the rewritten graph.
                pass::PipelineContext ctx(model.graph());
                ctx.fetches = model.fetches();
                ctx.weight_grads = model.weightGrads();
                ctx.recompute_config.policy = opts.policy;
                ctx.recompute_config.overhead_budget_fraction =
                    opts.overhead_budget_fraction;
                ctx.recompute_config.gpu = opts.gpu;
                pass::buildPipeline("recompute")
                    .runOrDie(ctx, "nmt_eval recompute");
                pass_results[static_cast<size_t>(bi)] = ctx.recompute;
            }

            SimulationOptions sim;
            sim.gpu = opts.gpu;
            sim.profiler = opts.profiler;
            profiles[static_cast<size_t>(bi)] = profileIteration(
                model.fetches(), model.weightGrads(), sim);
        }
    });

    for (int64_t bi = 0; bi < nbuckets; ++bi) {
        const LengthBucket &bucket = buckets[static_cast<size_t>(bi)];
        const pass::PassResult &pres =
            pass_results[static_cast<size_t>(bi)];
        IterationProfile &prof = profiles[static_cast<size_t>(bi)];

        const double w = bucket.weight / weight_sum;
        out.mean_iteration_seconds += w * prof.iterationSeconds();
        out.avg_power_w += w * prof.avg_power_w;
        out.dram_transactions +=
            w * static_cast<double>(prof.runtime.dram_transactions);
        if (pres.baseline_gpu_time_us > 0.0) {
            replay_weighted +=
                w * pres.replay_time_us / pres.baseline_gpu_time_us;
        }
        if (bucket.length > max_len) {
            max_len = bucket.length;
            out.device_bytes = prof.memory.device_bytes;
            out.max_bucket_memory = prof.memory;
            out.fits = prof.fits;
        }
        out.per_bucket.push_back(std::move(prof));
    }

    out.throughput = static_cast<double>(base_config.batch) /
                     out.mean_iteration_seconds;
    out.replay_fraction = replay_weighted;
    return out;
}

} // namespace echo::train
