/**
 * @file
 * Bucketed NMT evaluation — how a real training system's numbers arise.
 *
 * Sockeye (like every production NMT toolkit) buckets sentences by
 * length: memory is allocated for the largest bucket while the average
 * iteration runs a much shorter one (IWSLT15 en-vi sentences average
 * ~20 tokens against a 100-token maximum).  This is the key to
 * reconciling two of the paper's measurements: the attention feature
 * maps dominate MEMORY at the max-bucket size (Fig. 5: ~5 GB, 59 %),
 * while recomputation is a tiny fraction of RUNTIME (§6.2: ~1.5 %)
 * because the average executed length is short.
 *
 * profileNmtBucketed builds one NMT graph per bucket (optionally Echo-
 * rewritten), profiles each on the GPU model, and aggregates:
 * throughput over the length distribution, footprint over the max
 * bucket.
 */
#ifndef ECHO_TRAIN_NMT_EVAL_H
#define ECHO_TRAIN_NMT_EVAL_H

#include <vector>

#include "echo/recompute_pass.h"
#include "models/nmt.h"
#include "train/simulation.h"

namespace echo::train {

/** One sentence-length bucket and its share of the batches. */
struct LengthBucket
{
    int64_t length = 0;
    double weight = 0.0;
};

/** IWSLT15-like length distribution under a 100-token maximum. */
std::vector<LengthBucket> iwsltBuckets();

/** Aggregated bucketed profile of one NMT configuration. */
struct BucketedNmtProfile
{
    /** Per-bucket iteration profiles (aligned with the bucket list). */
    std::vector<IterationProfile> per_bucket;
    /** Weighted mean iteration time (seconds). */
    double mean_iteration_seconds = 0.0;
    /** Samples/s over the length distribution. */
    double throughput = 0.0;
    /** Device footprint of the largest bucket (what nvidia-smi shows). */
    int64_t device_bytes = 0;
    /** The largest bucket's memory profile (for breakdowns). */
    memory::MemoryProfile max_bucket_memory;
    /** Whether the largest bucket fits on the GPU. */
    bool fits = true;
    /** Weighted average power (W). */
    double avg_power_w = 0.0;
    /** Weighted DRAM transactions per iteration. */
    double dram_transactions = 0.0;
    /** Echo-pass replay time as a fraction of kernel time (weighted). */
    double replay_fraction = 0.0;
};

/** Echo-pass policy for the evaluation. */
struct NmtEvalOptions
{
    gpusim::GpuSpec gpu = gpusim::GpuSpec::titanXp();
    /** kOff reproduces the Default baseline. */
    pass::PassConfig::Policy policy = pass::PassConfig::Policy::kOff;
    /** Replay budget when the pass runs; negative = unlimited (the
     *  paper recomputes every attention region). */
    double overhead_budget_fraction = -1.0;
    memory::ProfilerOptions profiler;
};

/**
 * Profile @p base_config across @p buckets (the bucket length replaces
 * src_len/tgt_len per bucket).
 */
BucketedNmtProfile
profileNmtBucketed(const models::NmtConfig &base_config,
                   const std::vector<LengthBucket> &buckets,
                   const NmtEvalOptions &opts = {});

} // namespace echo::train

#endif // ECHO_TRAIN_NMT_EVAL_H
