#include "train/trainer.h"

#include <cmath>

#include "core/logging.h"
#include "obs/counters.h"
#include "obs/trace.h"

namespace echo::train {

std::vector<CurvePoint>
runTrainingLoop(const graph::Executor &executor,
                const TrainLoopConfig &config,
                const std::function<graph::FeedDict(int64_t)> &make_feed,
                const std::function<void(
                    double loss, const std::vector<Tensor> &grads)>
                    &apply_grads,
                const std::function<double()> &validate)
{
    // Verification now happens inside the pass pipeline that built the
    // training graph: ECHO_VERIFY=1 is a deprecated alias that appends
    // the "verify" pass to the default ECHO_PASSES spec, so the
    // checkers run between passes (not just once here, after the
    // fact).  See pass::resolveSpec.

    std::vector<CurvePoint> curve;
    curve.reserve(static_cast<size_t>(config.iterations));

    static obs::Counter &c_iters = obs::counter("train.iterations");
    for (int64_t it = 0; it < config.iterations; ++it) {
        obs::Span iter_span;
        if (obs::traceEnabled())
            iter_span.begin("train", "train.iteration", {{"step", it}});
        c_iters.add(1);
        const graph::FeedDict feed = make_feed(it);
        const std::vector<Tensor> out = executor.run(feed);
        ECHO_CHECK(!out.empty(), "training executor fetched nothing");
        const double loss = out[0].at(0);
        ECHO_CHECK(std::isfinite(loss), "loss diverged at step ", it);

        std::vector<Tensor> grads(out.begin() + 1, out.end());
        apply_grads(loss, grads);
        if (obs::traceEnabled())
            obs::emitEvent('i', "train", "train.loss",
                           {{"step", it}, {"loss", loss}});

        CurvePoint p;
        p.step = it + 1;
        p.wall_seconds =
            static_cast<double>(it + 1) * config.seconds_per_iteration;
        p.loss = loss;
        p.perplexity = perplexity(loss);
        if (validate && config.validate_every > 0 &&
            (it + 1) % config.validate_every == 0) {
            obs::Span val_span;
            if (obs::traceEnabled())
                val_span.begin("train", "train.validate",
                               {{"step", it}});
            p.validation = validate();
        }
        curve.push_back(p);
    }
    return curve;
}

double
speedometer(int64_t batch, double seconds_per_iteration)
{
    ECHO_REQUIRE(seconds_per_iteration > 0.0,
                 "speedometer needs positive iteration time");
    return static_cast<double>(batch) / seconds_per_iteration;
}

} // namespace echo::train
