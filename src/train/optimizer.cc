#include "train/optimizer.h"

#include <cmath>

#include "core/logging.h"
#include "tensor/pack_cache.h"

namespace echo::train {

double
globalNorm(const std::vector<Tensor> &grads)
{
    double sum_sq = 0.0;
    for (const Tensor &g : grads)
        for (int64_t i = 0; i < g.numel(); ++i)
            sum_sq += static_cast<double>(g.at(i)) * g.at(i);
    return std::sqrt(sum_sq);
}

SgdOptimizer::SgdOptimizer(double lr, double momentum, double clip_norm)
    : lr_(lr), momentum_(momentum), clip_norm_(clip_norm)
{
}

double
SgdOptimizer::step(ParamStore &params, const NamedWeights &weights,
                   const std::vector<Tensor> &grads)
{
    ECHO_REQUIRE(weights.size() == grads.size(),
                 "gradient count mismatch");
    const double norm = globalNorm(grads);
    const double scale =
        clip_norm_ > 0.0 && norm > clip_norm_ ? clip_norm_ / norm : 1.0;

    for (size_t i = 0; i < weights.size(); ++i) {
        const std::string &name = weights[i].first;
        Tensor &param = params.at(name);
        const Tensor &grad = grads[i];
        auto [it, fresh] = velocity_.try_emplace(
            name, Tensor::zeros(param.shape()));
        Tensor &vel = it->second;
        (void)fresh;
        for (int64_t j = 0; j < param.numel(); ++j) {
            const float g =
                static_cast<float>(scale) * grad.at(j);
            vel.at(j) = static_cast<float>(momentum_) * vel.at(j) + g;
            param.at(j) -= static_cast<float>(lr_) * vel.at(j);
        }
        // In-place update: invalidate any packed GEMM panels built
        // from this parameter's storage.
        ops::bumpTensorVersion(param);
    }
    return norm;
}

AdamOptimizer::AdamOptimizer(double lr, double beta1, double beta2,
                             double eps, double clip_norm)
    : lr_(lr), beta1_(beta1), beta2_(beta2), eps_(eps),
      clip_norm_(clip_norm)
{
}

double
AdamOptimizer::step(ParamStore &params, const NamedWeights &weights,
                    const std::vector<Tensor> &grads)
{
    ECHO_REQUIRE(weights.size() == grads.size(),
                 "gradient count mismatch");
    const double norm = globalNorm(grads);
    const double scale =
        clip_norm_ > 0.0 && norm > clip_norm_ ? clip_norm_ / norm : 1.0;
    ++t_;
    const double bc1 = 1.0 - std::pow(beta1_, static_cast<double>(t_));
    const double bc2 = 1.0 - std::pow(beta2_, static_cast<double>(t_));

    for (size_t i = 0; i < weights.size(); ++i) {
        const std::string &name = weights[i].first;
        Tensor &param = params.at(name);
        const Tensor &grad = grads[i];
        auto [mit, f1] =
            m_.try_emplace(name, Tensor::zeros(param.shape()));
        auto [vit, f2] =
            v_.try_emplace(name, Tensor::zeros(param.shape()));
        (void)f1;
        (void)f2;
        Tensor &m = mit->second;
        Tensor &v = vit->second;
        for (int64_t j = 0; j < param.numel(); ++j) {
            const double g =
                scale * static_cast<double>(grad.at(j));
            m.at(j) = static_cast<float>(beta1_ * m.at(j) +
                                         (1.0 - beta1_) * g);
            v.at(j) = static_cast<float>(beta2_ * v.at(j) +
                                         (1.0 - beta2_) * g * g);
            const double m_hat = m.at(j) / bc1;
            const double v_hat = v.at(j) / bc2;
            param.at(j) -= static_cast<float>(
                lr_ * m_hat / (std::sqrt(v_hat) + eps_));
        }
        ops::bumpTensorVersion(param);
    }
    return norm;
}

} // namespace echo::train
