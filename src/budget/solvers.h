/**
 * @file
 * The budget planner's solvers.  All three minimize the same objective
 * over the same items (see budget/items.h):
 *
 *     minimize    replay_time(chosen)            [joint, full charge]
 *     subject to  netSavings(chosen) >= R        [required reduction]
 *
 * - solveGreedy: the Echo pass's amortized best-ratio ranking, stopped
 *   at the reduction target instead of a time budget (the baseline).
 * - solveChainDp: exact dynamic program over the time-step chain
 *   (Gruslys-style).  Items are swept in chain order; partial
 *   selections are collapsed by a sufficient-statistic signature —
 *   which stashed / recomputed values and replayed nodes are still
 *   visible to future items — and Pareto-pruned per signature, which
 *   is lossless because the joint cost decomposes per value and per
 *   node.  Exact up to ~64 items; beyond that the item pool is
 *   filtered (solo-positive items, members of jointly-positive stash
 *   families, and the greedy solution as a seed) and `exact` is
 *   cleared — the greedy seed keeps DP <= greedy even when filtered.
 *   `max_states` bounds the per-sweep state set the same way.
 * - solveLagrange: knapsack relaxation (Kusumoto-style).  Binary
 *   search on the multiplier lambda (bytes per microsecond); for each
 *   lambda a marginal-gain greedy maximizes net - lambda*replay; the
 *   cheapest feasible selection across the search wins, then a trim
 *   pass drops members the constraint does not need.
 *
 * The marginal-gain greedy underneath solveLagrange / maxReductionSet
 * is family-aware: besides the best single item, each round also
 * weighs accepting a whole shared-stash family (every item stashing
 * a common frontier value) at its exact joint charge.  Families are
 * how attention regions pay off — each member is solo-net-negative
 * because of the shared keys-projection stash, but the family
 * together stashes it once and saves every step's interior.
 */
#ifndef ECHO_BUDGET_SOLVERS_H
#define ECHO_BUDGET_SOLVERS_H

#include <string>

#include "budget/items.h"

namespace echo::budget {

enum class Solver { kGreedy, kChainDp, kLagrange };

/** Stable names: "greedy", "dp", "lagrange". */
const char *solverName(Solver solver);

/** Parse a solver name (as printed by solverName); false = unknown. */
bool parseSolver(const std::string &name, Solver *out);

/** What a solver chose. */
struct SolveResult
{
    /** Chosen item indices, ascending. */
    std::vector<int> chosen;
    /** Joint full-charge cost of the chosen set. */
    pass::SetCost cost;
    /** cost.netSavings() >= the requested reduction.  When false, the
     *  chosen set is the largest reduction the solver could reach. */
    bool reached = false;
    /** DP only: false when max_states forced lossy coarsening. */
    bool exact = true;
    /** Work measure (DP states explored / relaxation selections). */
    int states = 0;
};

SolveResult solveGreedy(const ItemSet &set, int64_t required_reduction);

SolveResult solveChainDp(const ItemSet &set, int64_t required_reduction,
                         int max_states = 4096);

SolveResult solveLagrange(const ItemSet &set, int64_t required_reduction,
                          int max_bisect = 28);

/** Dispatch on @p solver with default solver parameters. */
SolveResult solve(const ItemSet &set, int64_t required_reduction,
                  Solver solver);

/**
 * The modelled maximum-reduction selection: marginal-gain greedy at
 * lambda = 0 (accept while joint net savings still grows).  The
 * planner probes this set against the real memory planner to learn
 * the tightest achievable pool peak.
 */
SolveResult maxReductionSet(const ItemSet &set);

} // namespace echo::budget

#endif // ECHO_BUDGET_SOLVERS_H
