/**
 * @file
 * Budget-targeted recomputation planning: "fit this training graph's
 * transient pool in X bytes" solved for minimum added replay time.
 *
 * The Echo pass answers "how much memory can I save within a replay
 * *time* budget"; production boxes pose the inverse question — the
 * memory budget is fixed ("2 GiB for transients") and replay time is
 * what should be minimized.  planWithBudget() answers it:
 *
 *  1. measure the baseline pool peak (memory::planMemory over the real
 *     liveness analysis — never the cost model alone);
 *  2. probe the maximum-reduction candidate set to learn the tightest
 *     achievable peak; a budget below it is infeasible and the plan
 *     reports the binding buffers (largest transients live at the
 *     tightest plan's peak) so the caller can see *why*;
 *  3. solve for the cheapest candidate subset whose modelled net
 *     savings covers (baseline - budget) with the selected solver
 *     (greedy baseline / exact chain DP / Lagrangian relaxation — see
 *     budget/solvers.h);
 *  4. trial-apply the chosen set, re-run the real memory planner, and
 *     roll the rewrite back if the measured peak still exceeds the
 *     budget (model-vs-planner slack); the required reduction is then
 *     raised by the observed overshoot and the solve repeats.  The
 *     probed set is a known-feasible fallback, so the loop always
 *     terminates with a plan whose *measured* peak fits.
 *
 * Every returned feasible plan carries the planner's pool peak and the
 * independent obs timeline replay of the final plan, so callers (the
 * `recompute_budget` pass's plan-feasible checker, echo-plan, tests)
 * can cross-check "peak <= budget" without trusting this code.
 */
#ifndef ECHO_BUDGET_PLANNER_H
#define ECHO_BUDGET_PLANNER_H

#include <string>
#include <vector>

#include "budget/solvers.h"
#include "memory/planner.h"
#include "obs/memory_timeline.h"

namespace echo::budget {

/** What planWithBudget is asked to do. */
struct BudgetConfig
{
    /** Transient-pool byte budget the plan must fit in
     *  (memory::MemoryPlan::pool_peak_bytes <= budget_bytes). */
    int64_t budget_bytes = 0;
    Solver solver = Solver::kChainDp;
    /** Candidate enumeration / pricing / rewrite configuration.  The
     *  time-budget fraction is ignored — bytes are the budget here. */
    pass::PassConfig recompute;
    /** Solve / trial-apply / measure rounds before falling back to the
     *  probed maximum-reduction set. */
    int max_rounds = 6;
};

/** A transient buffer live at the peak of an infeasible budget's
 *  tightest plan — why the budget cannot be met. */
struct BindingBuffer
{
    Val val;
    int64_t bytes = 0;
    int def_pos = 0;
    int last_use_pos = 0;
    std::string name;
    std::string category;
};

/** Everything one planning run decided and measured. */
struct BudgetPlan
{
    /** The budget is met: the graph was rewritten (or already fit) and
     *  the measured pool peak is <= budget_bytes. */
    bool feasible = false;
    /** The graph was actually rewritten (false when the baseline
     *  already fits, and always false when infeasible). */
    bool applied = false;
    int64_t budget_bytes = 0;
    /** Measured transient pool peaks: before planning, after the final
     *  rewrite (== baseline when nothing was applied), and the
     *  tightest achievable (maximum-reduction probe). */
    int64_t baseline_pool_peak = 0;
    int64_t planned_pool_peak = 0;
    int64_t tightest_pool_peak = 0;
    /** Solve/apply/measure rounds taken. */
    int rounds = 0;
    /** Candidate items the enumerator offered the solver. */
    int num_items = 0;
    /** The final solver verdict (modelled). */
    SolveResult solved;
    /** Rewrite report of the applied set (zeros when !applied). */
    pass::PassResult pass;
    /** Infeasible only: largest transients live at the tightest plan's
     *  peak, descending bytes. */
    std::vector<BindingBuffer> binding;
    /** Independent timeline replay of the final plan. */
    obs::TimelineReplay replay;
    bool replay_ok = false;
    /** Human-readable outcome ("fits without rewriting", "fell back to
     *  probe set", ...). */
    std::string note;
};

/**
 * Plan @p graph's recomputation so the transient pool fits
 * config.budget_bytes, rewriting the graph in place when a rewrite is
 * needed and feasible.  An infeasible budget leaves the graph
 * untouched (every trial is rolled back).
 */
BudgetPlan planWithBudget(graph::Graph &graph,
                          const std::vector<Val> &fetches,
                          const std::vector<Val> &weight_grads,
                          const BudgetConfig &config);

/** Parse "268435456", "256KiB" / "256KB" / "256K", "2MiB", "1.5GiB"
 *  (binary units) into bytes; false on malformed input. */
bool parseByteSize(const std::string &text, int64_t *bytes);

/** "1.50 GiB"-style rendering for diagnostics. */
std::string formatBytes(int64_t bytes);

} // namespace echo::budget

#endif // ECHO_BUDGET_PLANNER_H
