#include "budget/items.h"

#include <algorithm>

#include "core/logging.h"

namespace echo::budget {

ItemSet
enumerateItems(const std::vector<Val> &fetches,
               const pass::PassConfig &config)
{
    ItemSet set;
    set.config = config;
    set.feature_maps = pass::findFeatureMaps(fetches);

    std::vector<pass::Candidate> candidates =
        pass::enumerateCandidates(set.feature_maps, fetches, config);
    set.items.reserve(candidates.size());
    for (pass::Candidate &cand : candidates) {
        Item item;
        item.step = cand.target.val.node->time_step;
        const pass::SetCost solo = pass::evaluateAcceptedSet(
            {&cand}, set.feature_maps, config.gpu, config.fuse_replay);
        item.solo_saved = solo.bytes_saved;
        item.solo_added = solo.bytes_added;
        item.solo_replay_us = solo.replay_time_us;
        item.cand = std::move(cand);
        set.items.push_back(std::move(item));
    }

    // Chain order: ascending time step (step -1 values — outside the
    // recurrence, e.g. the once-per-sentence key projection — first),
    // then target node id for determinism.
    std::sort(set.items.begin(), set.items.end(),
              [](const Item &a, const Item &b) {
                  if (a.step != b.step)
                      return a.step < b.step;
                  return a.cand.target.val.node->id <
                         b.cand.target.val.node->id;
              });
    return set;
}

pass::SetCost
costOf(const ItemSet &set, const std::vector<int> &chosen)
{
    std::vector<const pass::Candidate *> accepted;
    accepted.reserve(chosen.size());
    for (int i : chosen) {
        ECHO_CHECK(i >= 0 && static_cast<size_t>(i) < set.items.size(),
                   "costOf: item index ", i, " out of range");
        accepted.push_back(&set.items[static_cast<size_t>(i)].cand);
    }
    return pass::evaluateAcceptedSet(accepted, set.feature_maps,
                                     set.config.gpu,
                                     set.config.fuse_replay);
}

} // namespace echo::budget
