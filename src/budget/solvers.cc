#include "budget/solvers.h"

#include <algorithm>
#include <map>
#include <memory>
#include <set>
#include <sstream>
#include <unordered_map>
#include <unordered_set>

#include "core/logging.h"
#include "gpusim/kernel_cost.h"

namespace echo::budget {

const char *
solverName(Solver solver)
{
    switch (solver) {
      case Solver::kGreedy:
        return "greedy";
      case Solver::kChainDp:
        return "dp";
      case Solver::kLagrange:
        return "lagrange";
    }
    return "?";
}

bool
parseSolver(const std::string &name, Solver *out)
{
    if (name == "greedy")
        *out = Solver::kGreedy;
    else if (name == "dp" || name == "chain_dp")
        *out = Solver::kChainDp;
    else if (name == "lagrange" || name == "relax")
        *out = Solver::kLagrange;
    else
        return false;
    return true;
}

namespace {

using pass::SetCost;

/**
 * Incremental evaluator of the joint full-charge objective.  Mirrors
 * pass::evaluateAcceptedSet element by element — the objective
 * decomposes as a sum over values (saved iff recomputed by some member
 * and stashed by none; charged iff stashed and not a feature map) and
 * over replayed nodes (each node's kernels once) — so a marginal can be
 * previewed in O(|item|) instead of re-evaluating the whole set.
 */
class JointCost
{
  public:
    using FmBytes = std::unordered_map<Val, int64_t, graph::ValHash>;

    explicit JointCost(const ItemSet &set)
        : set_(&set), fm_bytes_(std::make_shared<FmBytes>())
    {
        auto &fm_bytes = *std::const_pointer_cast<FmBytes>(fm_bytes_);
        for (const pass::FeatureMap &fm : set.feature_maps)
            fm_bytes[fm.val] = fm.bytes;
    }

    /** What item sets which bits (precomputed once per ItemSet). */
    struct ItemEffect
    {
        std::vector<Val> stash;   ///< values noteAccepted would stash
        std::vector<Val> recomp;  ///< subgraph outputs
        std::vector<Node *> nodes;
        std::vector<double> node_replay_us; ///< per nodes[] entry
    };

    static std::vector<ItemEffect>
    effectsOf(const ItemSet &set)
    {
        std::vector<ItemEffect> effects(set.items.size());
        for (size_t i = 0; i < set.items.size(); ++i) {
            const pass::Candidate &cand = set.items[i].cand;
            ItemEffect &e = effects[i];
            std::unordered_set<Val, graph::ValHash> seen;
            for (const Val &v : cand.frontier)
                if (v.node->kind == graph::NodeKind::kOp &&
                    seen.insert(v).second)
                    e.stash.push_back(v);
            if (set.config.fuse_replay)
                for (const Val &v : cand.pinned_interior)
                    if (seen.insert(v).second)
                        e.stash.push_back(v);
            for (Node *n : cand.subgraph) {
                for (int o = 0; o < n->numOutputs(); ++o)
                    e.recomp.push_back(n->out(o));
                e.nodes.push_back(n);
                std::vector<Shape> in_shapes;
                for (const Val &v : n->inputs)
                    in_shapes.push_back(graph::Graph::shapeOf(v));
                double us = 0.0;
                for (const graph::KernelDesc &d :
                     n->op->kernels(in_shapes, n->out_shapes))
                    us += gpusim::estimateKernel(d, set.config.gpu)
                              .time_us;
                e.node_replay_us.push_back(us);
            }
        }
        return effects;
    }

    const SetCost &cost() const { return cost_; }
    const std::vector<int> &chosen() const { return chosen_; }

    /** Cost after also choosing @p i, without mutating. */
    SetCost
    preview(const ItemEffect &e) const
    {
        SetCost c = cost_;
        applyEffect(e, c, nullptr, nullptr, nullptr);
        return c;
    }

    void
    add(int i, const ItemEffect &e)
    {
        applyEffect(e, cost_, &stashed_, &recomputed_, &replayed_);
        chosen_.push_back(i);
    }

    const std::unordered_set<Val, graph::ValHash> &stashed() const
    {
        return stashed_;
    }
    const std::unordered_set<Val, graph::ValHash> &recomputed() const
    {
        return recomputed_;
    }
    const std::unordered_set<const Node *> &replayed() const
    {
        return replayed_;
    }

  private:
    /** The per-value objective contribution given its two bits. */
    int64_t
    contribution(const Val &v, bool stashed, bool recomputed) const
    {
        auto fm = fm_bytes_->find(v);
        if (fm != fm_bytes_->end())
            return (recomputed && !stashed) ? fm->second : 0;
        return stashed ? -graph::Graph::shapeOf(v).bytes() : 0;
    }

    void
    applyEffect(const ItemEffect &e, SetCost &c,
                std::unordered_set<Val, graph::ValHash> *stashed,
                std::unordered_set<Val, graph::ValHash> *recomputed,
                std::unordered_set<const Node *> *replayed) const
    {
        // Per touched value: subtract the old contribution, flip the
        // bits, add the new one.  Splitting net into saved/added keeps
        // the reported components exact, not just their difference.
        // Within one effect application both of a value's bits may
        // flip (stashed by the frontier, recomputed by the subgraph);
        // pending_ overlays the committed sets so the update stays
        // idempotent and order-free.
        auto flip = [&](const Val &v, bool set_stash, bool set_recomp) {
            const bool was_stashed = stashed_.count(v) != 0;
            const bool was_recomp = recomputed_.count(v) != 0;
            auto it = pending_.find(v);
            const bool pend_stashed =
                it != pending_.end() ? it->second.first : was_stashed;
            const bool pend_recomp =
                it != pending_.end() ? it->second.second : was_recomp;
            const bool new_stashed = pend_stashed || set_stash;
            const bool new_recomp = pend_recomp || set_recomp;
            if (new_stashed == pend_stashed && new_recomp == pend_recomp)
                return;
            const int64_t before =
                contribution(v, pend_stashed, pend_recomp);
            const int64_t after = contribution(v, new_stashed, new_recomp);
            const int64_t delta = after - before;
            if (fm_bytes_->count(v)) {
                c.bytes_saved += delta;
            } else {
                c.bytes_added -= delta; // contribution is -bytes_added
            }
            pending_[v] = {new_stashed, new_recomp};
        };
        pending_.clear();
        for (const Val &v : e.stash)
            flip(v, true, false);
        for (const Val &v : e.recomp)
            flip(v, false, true);
        if (stashed != nullptr)
            for (const Val &v : e.stash)
                stashed->insert(v);
        if (recomputed != nullptr)
            for (const Val &v : e.recomp)
                recomputed->insert(v);
        for (size_t n = 0; n < e.nodes.size(); ++n) {
            if (replayed_.count(e.nodes[n]))
                continue;
            if (replayed != nullptr) {
                if (replayed->insert(e.nodes[n]).second)
                    c.replay_time_us += e.node_replay_us[n];
            } else {
                // Preview: charge once per distinct new node.
                if (preview_nodes_.insert(e.nodes[n]).second)
                    c.replay_time_us += e.node_replay_us[n];
            }
        }
        if (replayed == nullptr)
            preview_nodes_.clear();
        pending_.clear();
    }

    const ItemSet *set_;
    /** Shared, immutable across copies — DP entries copy JointCost
     *  per state, and duplicating the map dominated memory. */
    std::shared_ptr<const FmBytes> fm_bytes_;
    std::unordered_set<Val, graph::ValHash> stashed_;
    std::unordered_set<Val, graph::ValHash> recomputed_;
    std::unordered_set<const Node *> replayed_;
    std::vector<int> chosen_;
    SetCost cost_;
    /** Scratch for applyEffect (bit state mid-application). */
    mutable std::unordered_map<Val, std::pair<bool, bool>,
                               graph::ValHash>
        pending_;
    mutable std::unordered_set<const Node *> preview_nodes_;
};

/** Items coupled by a shared stash value, evaluated as one acceptance
 *  unit.  A family's first member alone is often net-negative (it pays
 *  the full shared stash — e.g. every decoder step's attention region
 *  stashes the same projected-keys tensor), while the family jointly
 *  is strongly positive; a one-item-at-a-time marginal greedy can
 *  never start such a family.  Jointly-negative families (the chained
 *  LSTM cell regions, whose union stashes every step's GEMM
 *  pre-activations) evaluate negative as a unit and stay rejected. */
std::vector<std::vector<int>>
stashFamilies(const ItemSet &set,
              const std::vector<JointCost::ItemEffect> &effects)
{
    std::map<std::pair<int64_t, int>, std::vector<int>> by_val;
    for (size_t i = 0; i < set.items.size(); ++i)
        for (const Val &v : effects[i].stash)
            by_val[{v.node->id, v.index}].push_back(
                static_cast<int>(i));
    std::vector<std::vector<int>> families;
    std::set<std::vector<int>> seen;
    for (auto &[key, members] : by_val) {
        if (members.size() < 2)
            continue;
        std::sort(members.begin(), members.end());
        members.erase(std::unique(members.begin(), members.end()),
                      members.end());
        if (members.size() < 2)
            continue;
        if (seen.insert(members).second)
            families.push_back(members);
    }
    return families;
}

/** Marginal-gain greedy at a fixed multiplier: repeatedly accept the
 *  unchosen item — or the whole remainder of a shared-stash family,
 *  evaluated at exact joint charge — maximizing
 *  marginal_net - lambda * marginal_replay while that gain is
 *  positive.  lambda = 0 maximizes net savings. */
JointCost
greedyAtLambda(const ItemSet &set,
               const std::vector<JointCost::ItemEffect> &effects,
               double lambda, int *selections)
{
    JointCost jc(set);
    const std::vector<std::vector<int>> families =
        stashFamilies(set, effects);
    std::vector<bool> taken(set.items.size(), false);
    std::vector<int> scratch;
    for (;;) {
        int best = -1;
        const std::vector<int> *best_family = nullptr;
        double best_gain = 0.0;
        for (size_t i = 0; i < set.items.size(); ++i) {
            if (taken[i])
                continue;
            const SetCost c = jc.preview(effects[i]);
            const double gain =
                static_cast<double>(c.netSavings() -
                                    jc.cost().netSavings()) -
                lambda * (c.replay_time_us - jc.cost().replay_time_us);
            if (gain > best_gain) {
                best = static_cast<int>(i);
                best_family = nullptr;
                best_gain = gain;
            }
        }
        for (const std::vector<int> &family : families) {
            scratch.clear();
            for (int i : family)
                if (!taken[static_cast<size_t>(i)])
                    scratch.push_back(i);
            if (scratch.size() < 2)
                continue;
            JointCost trial = jc;
            for (int i : scratch)
                trial.add(i, effects[static_cast<size_t>(i)]);
            const double gain =
                static_cast<double>(trial.cost().netSavings() -
                                    jc.cost().netSavings()) -
                lambda * (trial.cost().replay_time_us -
                          jc.cost().replay_time_us);
            if (gain > best_gain) {
                best = -1;
                best_family = &family;
                best_gain = gain;
            }
        }
        if (best >= 0) {
            jc.add(best, effects[static_cast<size_t>(best)]);
            taken[static_cast<size_t>(best)] = true;
            if (selections != nullptr)
                ++*selections;
        } else if (best_family != nullptr) {
            for (int i : *best_family) {
                if (taken[static_cast<size_t>(i)])
                    continue;
                jc.add(i, effects[static_cast<size_t>(i)]);
                taken[static_cast<size_t>(i)] = true;
                if (selections != nullptr)
                    ++*selections;
            }
        } else {
            break;
        }
    }
    return jc;
}

SolveResult
resultOf(const JointCost &jc, int64_t required_reduction, int states)
{
    SolveResult r;
    r.chosen = jc.chosen();
    std::sort(r.chosen.begin(), r.chosen.end());
    r.cost = jc.cost();
    r.reached = r.cost.netSavings() >= required_reduction;
    r.states = states;
    return r;
}

} // namespace

SolveResult
solveGreedy(const ItemSet &set, int64_t required_reduction)
{
    // The Echo pass's selection, re-targeted: amortized multiplicity
    // ranking, provisional acceptance against the evolving state, but
    // stopping at the reduction target instead of a replay-time budget.
    pass::SelectionState state;
    for (const Item &item : set.items) {
        for (const Val &v : item.cand.frontier)
            ++state.frontier_multiplicity[v];
        if (set.config.fuse_replay)
            for (const Val &v : item.cand.pinned_interior)
                ++state.frontier_multiplicity[v];
    }

    struct Ranked
    {
        int index;
        double ratio;
    };
    std::vector<Ranked> ranked;
    for (size_t i = 0; i < set.items.size(); ++i) {
        const pass::CandidateCost cost = pass::evaluateCandidate(
            set.items[i].cand, set.feature_maps, state,
            set.config.gpu, set.config.fuse_replay);
        if (cost.netSavings() <= 0)
            continue;
        ranked.push_back(
            {static_cast<int>(i),
             static_cast<double>(cost.netSavings()) /
                 std::max(0.5, cost.replay_time_us)});
    }
    std::sort(ranked.begin(), ranked.end(),
              [&](const Ranked &a, const Ranked &b) {
                  if (a.ratio != b.ratio)
                      return a.ratio > b.ratio;
                  return set.items[static_cast<size_t>(a.index)]
                             .cand.target.val.node->id <
                         set.items[static_cast<size_t>(b.index)]
                             .cand.target.val.node->id;
              });

    const std::vector<JointCost::ItemEffect> effects =
        JointCost::effectsOf(set);
    JointCost jc(set);
    int steps = 0;
    for (const Ranked &r : ranked) {
        if (jc.cost().netSavings() >= required_reduction)
            break;
        const pass::CandidateCost cost = pass::evaluateCandidate(
            set.items[static_cast<size_t>(r.index)].cand,
            set.feature_maps, state, set.config.gpu,
            set.config.fuse_replay);
        if (cost.netSavings() <= 0)
            continue;
        pass::noteAccepted(state,
                           set.items[static_cast<size_t>(r.index)].cand,
                           set.config.fuse_replay);
        jc.add(r.index, effects[static_cast<size_t>(r.index)]);
        ++steps;
    }
    return resultOf(jc, required_reduction, steps);
}

SolveResult
solveChainDp(const ItemSet &set, int64_t required_reduction,
             int max_states)
{
    const std::vector<JointCost::ItemEffect> effects =
        JointCost::effectsOf(set);

    // The take/skip sweep is exponential before pruning; above this
    // many items the sweep runs over a filtered pool instead of every
    // item, and the result is no longer certified optimal.
    constexpr size_t kExactLimit = 64;

    // Pool: the items the sweep branches over, in chain order.  Small
    // sets take everything (the brute-force-equivalence regime); large
    // sets keep the plausibly-useful items — solo-positive ones,
    // members of jointly-positive shared-stash families (see
    // stashFamilies), and whatever the greedy baseline picked, so the
    // DP result can never model worse than greedy's.
    std::vector<int> pool;
    bool filtered = false;
    SolveResult greedy_seed;
    bool have_seed = false;
    if (set.items.size() <= kExactLimit) {
        pool.resize(set.items.size());
        for (size_t i = 0; i < set.items.size(); ++i)
            pool[i] = static_cast<int>(i);
    } else {
        filtered = true;
        std::set<int> keep;
        for (size_t i = 0; i < set.items.size(); ++i)
            if (set.items[i].soloNet() > 0)
                keep.insert(static_cast<int>(i));
        for (const std::vector<int> &family :
             stashFamilies(set, effects)) {
            JointCost trial(set);
            for (int i : family)
                trial.add(i, effects[static_cast<size_t>(i)]);
            if (trial.cost().netSavings() > 0)
                keep.insert(family.begin(), family.end());
        }
        greedy_seed = solveGreedy(set, required_reduction);
        have_seed = true;
        keep.insert(greedy_seed.chosen.begin(),
                    greedy_seed.chosen.end());
        pool.assign(keep.begin(), keep.end());
        if (pool.size() == set.items.size())
            filtered = false;
    }
    const size_t n = pool.size();

    // Last pool position touching each value / node: a bit is part of
    // an entry's signature only while some not-yet-processed item can
    // still read or write it.  Once nothing ahead touches it, its
    // contribution is already final inside the entry's cost and two
    // entries differing only there are interchangeable.
    std::unordered_map<Val, size_t, graph::ValHash> val_last;
    std::unordered_map<const Node *, size_t> node_last;
    for (size_t i = 0; i < n; ++i) {
        const JointCost::ItemEffect &e =
            effects[static_cast<size_t>(pool[i])];
        for (const Val &v : e.stash)
            val_last[v] = i;
        for (const Val &v : e.recomp)
            val_last[v] = i;
        for (const Node *nd : e.nodes)
            node_last[nd] = i;
    }

    struct Entry
    {
        JointCost jc;
    };
    std::vector<Entry> entries;
    entries.push_back(Entry{JointCost(set)});

    SolveResult result;
    int explored = 1;

    auto signature = [&](const JointCost &jc, size_t next) {
        // (value, bits) pairs still visible to items >= next, plus the
        // still-shareable replayed nodes; sorted for canonical form.
        std::vector<std::string> parts;
        for (const Val &v : jc.stashed()) {
            auto it = val_last.find(v);
            if (it != val_last.end() && it->second >= next) {
                std::ostringstream p;
                p << "s" << v.node->id << "." << v.index;
                parts.push_back(p.str());
            }
        }
        for (const Val &v : jc.recomputed()) {
            auto it = val_last.find(v);
            if (it != val_last.end() && it->second >= next) {
                std::ostringstream p;
                p << "r" << v.node->id << "." << v.index;
                parts.push_back(p.str());
            }
        }
        for (const Node *nd : jc.replayed()) {
            auto it = node_last.find(nd);
            if (it != node_last.end() && it->second >= next) {
                std::ostringstream p;
                p << "n" << nd->id;
                parts.push_back(p.str());
            }
        }
        std::sort(parts.begin(), parts.end());
        std::string sig;
        for (const std::string &p : parts) {
            sig += p;
            sig += '|';
        }
        return sig;
    };

    for (size_t i = 0; i < n; ++i) {
        std::vector<Entry> next;
        next.reserve(entries.size() * 2);
        for (Entry &e : entries) {
            Entry take{e.jc}; // copy, then extend
            take.jc.add(pool[i],
                        effects[static_cast<size_t>(pool[i])]);
            next.push_back(std::move(take));
            next.push_back(std::move(e)); // skip branch, moved last
        }
        explored += static_cast<int>(next.size());

        // Lossless prune: bucket by sufficient-statistic signature,
        // keep only the (net, replay) Pareto frontier per bucket.
        std::map<std::string, std::vector<size_t>> buckets;
        for (size_t k = 0; k < next.size(); ++k)
            buckets[signature(next[k].jc, i + 1)].push_back(k);

        std::vector<Entry> pruned;
        for (auto &[sig, members] : buckets) {
            std::sort(members.begin(), members.end(),
                      [&](size_t a, size_t b) {
                          const SetCost &ca = next[a].jc.cost();
                          const SetCost &cb = next[b].jc.cost();
                          if (ca.netSavings() != cb.netSavings())
                              return ca.netSavings() > cb.netSavings();
                          if (ca.replay_time_us != cb.replay_time_us)
                              return ca.replay_time_us <
                                     cb.replay_time_us;
                          // Cost ties: prefer the smaller selection
                          // (zero-marginal members only add rewrite
                          // churn), then determinism.
                          if (next[a].jc.chosen().size() !=
                              next[b].jc.chosen().size())
                              return next[a].jc.chosen().size() <
                                     next[b].jc.chosen().size();
                          return next[a].jc.chosen() <
                                 next[b].jc.chosen();
                      });
            double best_replay = -1.0;
            for (size_t m : members) {
                const SetCost &c = next[m].jc.cost();
                if (best_replay >= 0.0 &&
                    c.replay_time_us >= best_replay)
                    continue; // dominated (net is non-increasing)
                best_replay = c.replay_time_us;
                pruned.push_back(std::move(next[m]));
            }
        }

        if (pruned.size() > static_cast<size_t>(max_states)) {
            // Lossy coarsening: bucket by net-savings quantile and keep
            // the cheapest entry per bucket.  The result may no longer
            // be optimal — flag it.
            result.exact = false;
            std::sort(pruned.begin(), pruned.end(),
                      [](const Entry &a, const Entry &b) {
                          return a.jc.cost().netSavings() <
                                 b.jc.cost().netSavings();
                      });
            std::vector<Entry> coarse;
            const size_t stride =
                (pruned.size() + static_cast<size_t>(max_states) - 1) /
                static_cast<size_t>(max_states);
            for (size_t k = 0; k < pruned.size(); k += stride) {
                size_t best = k;
                for (size_t j = k;
                     j < std::min(k + stride, pruned.size()); ++j)
                    if (pruned[j].jc.cost().replay_time_us <
                        pruned[best].jc.cost().replay_time_us)
                        best = j;
                coarse.push_back(std::move(pruned[best]));
            }
            pruned = std::move(coarse);
        }
        entries = std::move(pruned);
    }

    // Cheapest feasible entry; when the target is unreachable, the
    // largest reduction (cheapest among ties).
    const Entry *best = nullptr;
    const Entry *fallback = nullptr;
    for (const Entry &e : entries) {
        const SetCost &c = e.jc.cost();
        if (c.netSavings() >= required_reduction) {
            if (best == nullptr ||
                c.replay_time_us < best->jc.cost().replay_time_us ||
                (c.replay_time_us == best->jc.cost().replay_time_us &&
                 (c.netSavings() > best->jc.cost().netSavings() ||
                  (c.netSavings() == best->jc.cost().netSavings() &&
                   e.jc.chosen().size() <
                       best->jc.chosen().size()))))
                best = &e;
        }
        if (fallback == nullptr ||
            c.netSavings() > fallback->jc.cost().netSavings() ||
            (c.netSavings() == fallback->jc.cost().netSavings() &&
             c.replay_time_us < fallback->jc.cost().replay_time_us))
            fallback = &e;
    }
    const Entry *pick = best != nullptr ? best : fallback;
    ECHO_CHECK(pick != nullptr, "chain DP lost every entry");
    SolveResult r = resultOf(pick->jc, required_reduction, explored);
    r.exact = result.exact && !filtered;
    // Filtered or coarsened sweeps carry no optimality certificate, so
    // fall back to the greedy seed whenever it is strictly better
    // (feasible and cheaper, or further when both are infeasible).
    if (have_seed) {
        const bool seed_wins =
            greedy_seed.reached
                ? (!r.reached ||
                   greedy_seed.cost.replay_time_us <
                       r.cost.replay_time_us)
                : (!r.reached && greedy_seed.cost.netSavings() >
                                     r.cost.netSavings());
        if (seed_wins) {
            r.chosen = greedy_seed.chosen;
            r.cost = greedy_seed.cost;
            r.reached = greedy_seed.reached;
        }
    }
    return r;
}

SolveResult
solveLagrange(const ItemSet &set, int64_t required_reduction,
              int max_bisect)
{
    const std::vector<JointCost::ItemEffect> effects =
        JointCost::effectsOf(set);
    int selections = 0;

    // lambda = 0: maximum modelled reduction.  If even that misses the
    // target, the target is unreachable for this solver.
    JointCost max_red = greedyAtLambda(set, effects, 0.0, &selections);
    if (max_red.cost().netSavings() < required_reduction)
        return resultOf(max_red, required_reduction, selections);

    JointCost best = max_red; // feasible; bisection tries to cheapen it

    // Find a multiplier high enough to land infeasible.
    double lo = 0.0;
    double hi = 1.0;
    bool hi_infeasible = false;
    for (int d = 0; d < 48 && !hi_infeasible; ++d, hi *= 2.0) {
        JointCost jc = greedyAtLambda(set, effects, hi, &selections);
        if (jc.cost().netSavings() < required_reduction) {
            hi_infeasible = true;
            break;
        }
        if (jc.cost().replay_time_us < best.cost().replay_time_us)
            best = std::move(jc);
    }

    if (hi_infeasible) {
        for (int b = 0; b < max_bisect; ++b) {
            const double mid = 0.5 * (lo + hi);
            JointCost jc = greedyAtLambda(set, effects, mid, &selections);
            if (jc.cost().netSavings() >= required_reduction) {
                lo = mid;
                if (jc.cost().replay_time_us <
                    best.cost().replay_time_us)
                    best = std::move(jc);
            } else {
                hi = mid;
            }
        }
    }

    // Trim: the relaxation can keep members the constraint does not
    // need; drop any whose removal stays feasible and no costlier.
    std::vector<int> chosen = best.chosen();
    std::sort(chosen.begin(), chosen.end());
    for (bool changed = true; changed;) {
        changed = false;
        for (size_t k = 0; k < chosen.size(); ++k) {
            JointCost trial(set);
            for (size_t j = 0; j < chosen.size(); ++j)
                if (j != k)
                    trial.add(chosen[j],
                              effects[static_cast<size_t>(chosen[j])]);
            ++selections;
            if (trial.cost().netSavings() >= required_reduction &&
                trial.cost().replay_time_us <=
                    best.cost().replay_time_us) {
                chosen.erase(chosen.begin() +
                             static_cast<ptrdiff_t>(k));
                best = std::move(trial);
                changed = true;
                break;
            }
        }
    }
    return resultOf(best, required_reduction, selections);
}

SolveResult
solve(const ItemSet &set, int64_t required_reduction, Solver solver)
{
    switch (solver) {
      case Solver::kGreedy:
        return solveGreedy(set, required_reduction);
      case Solver::kChainDp:
        return solveChainDp(set, required_reduction);
      case Solver::kLagrange:
        return solveLagrange(set, required_reduction);
    }
    ECHO_FATAL("unknown solver");
}

SolveResult
maxReductionSet(const ItemSet &set)
{
    const std::vector<JointCost::ItemEffect> effects =
        JointCost::effectsOf(set);
    int selections = 0;
    JointCost jc = greedyAtLambda(set, effects, 0.0, &selections);
    // "Required reduction" of whatever it achieved: reached by
    // construction, so callers can treat it like any other solve.
    return resultOf(jc, jc.cost().netSavings(), selections);
}

} // namespace echo::budget
