/**
 * @file
 * Budget-planner candidate items: the Echo pass's recomputation
 * candidates, priced standalone and packaged for the solvers.
 *
 * The enumerator reuses echo::pass end to end — the same feature maps,
 * the same maximal GEMM-free regions (fused elementwise groups arrive
 * as single cheap nodes, making them near-free candidates), the same
 * footprint and runtime cost models.  What src/budget adds is the
 * *joint* objective: costOf() evaluates a chosen subset at full charge
 * (shared stash values paid once, shared replay nodes priced once), so
 * solvers can optimize "minimum replay time subject to at least R bytes
 * of net savings" instead of the pass's greedy ratio ranking.
 */
#ifndef ECHO_BUDGET_ITEMS_H
#define ECHO_BUDGET_ITEMS_H

#include <vector>

#include "echo/recompute_pass.h"

namespace echo::budget {

using graph::Node;
using graph::Val;

/** One admissible recomputation candidate, priced standalone. */
struct Item
{
    pass::Candidate cand;
    /** Full-charge cost of choosing this item alone. */
    int64_t solo_saved = 0;
    int64_t solo_added = 0;
    double solo_replay_us = 0.0;
    /** Time step of the target feature map (-1 outside steps) — the
     *  chain coordinate the DP sweeps along. */
    int step = -1;

    int64_t soloNet() const { return solo_saved - solo_added; }
};

/** Every admissible candidate of a graph, ready for the solvers. */
struct ItemSet
{
    std::vector<Item> items;
    std::vector<pass::FeatureMap> feature_maps;
    /** Pricing/rewrite configuration the items were built under. */
    pass::PassConfig config;
};

/**
 * Enumerate and price the admissible candidates reachable from
 * @p fetches.  Items are ordered along the time-step chain
 * (ascending target step, then target node id) — the order
 * solveChainDp() sweeps.
 */
ItemSet enumerateItems(const std::vector<Val> &fetches,
                       const pass::PassConfig &config);

/** Joint full-charge cost of choosing @p chosen (indices into
 *  set.items) — the solvers' objective, order-independent. */
pass::SetCost costOf(const ItemSet &set, const std::vector<int> &chosen);

} // namespace echo::budget

#endif // ECHO_BUDGET_ITEMS_H
