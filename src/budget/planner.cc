#include "budget/planner.h"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdio>
#include <sstream>

#include "core/logging.h"
#include "memory/liveness.h"
#include "obs/counters.h"
#include "obs/trace.h"

namespace echo::budget {

namespace {

/** Snapshot of everything applyRecomputation may mutate: the node
 *  count (the rewrite only appends) and every backward node's inputs
 *  (the only pre-existing state it rewrites).  rollback() restores
 *  both; node ids are append positions, so a later re-apply of the
 *  same set reproduces the identical graph. */
class TrialRewrite
{
  public:
    explicit TrialRewrite(graph::Graph &g) : g_(&g)
    {
        node_count_ = g.numNodes();
        for (const auto &node_ptr : g.nodes()) {
            Node *n = node_ptr.get();
            if (n->phase == graph::Phase::kBackward)
                saved_inputs_.emplace_back(n, n->inputs);
        }
    }

    void
    rollback()
    {
        for (auto &[node, inputs] : saved_inputs_)
            node->inputs = inputs;
        g_->truncate(node_count_);
    }

  private:
    graph::Graph *g_;
    size_t node_count_ = 0;
    std::vector<std::pair<Node *, std::vector<Val>>> saved_inputs_;
};

int64_t
measurePoolPeak(const std::vector<Val> &fetches,
                const std::vector<Val> &weight_grads)
{
    const memory::LivenessResult live =
        memory::analyzeLiveness(fetches, weight_grads);
    return memory::planMemory(live).pool_peak_bytes;
}

/** The largest transients live at @p plan's peak position. */
std::vector<BindingBuffer>
bindingBuffersAtPeak(const memory::LivenessResult &live,
                     const memory::MemoryPlan &plan, size_t max_buffers)
{
    std::vector<BindingBuffer> binding;
    for (const memory::ValueInfo &vi : live.values) {
        if (vi.persistent)
            continue;
        if (vi.def_pos > plan.peak_pos || vi.last_use_pos < plan.peak_pos)
            continue;
        BindingBuffer b;
        b.val = vi.val;
        b.bytes = vi.bytes;
        b.def_pos = vi.def_pos;
        b.last_use_pos = vi.last_use_pos;
        b.name = vi.val.node->name;
        b.category = memory::dataStructureName(vi.category);
        binding.push_back(std::move(b));
    }
    std::sort(binding.begin(), binding.end(),
              [](const BindingBuffer &a, const BindingBuffer &b) {
                  if (a.bytes != b.bytes)
                      return a.bytes > b.bytes;
                  return a.val.node->id < b.val.node->id;
              });
    if (binding.size() > max_buffers)
        binding.resize(max_buffers);
    return binding;
}

/** Apply @p chosen, measure the real pool peak, and either keep the
 *  rewrite (returns true, fills res/peak) or roll it back. */
bool
trialApply(graph::Graph &g, const std::vector<Val> &fetches,
           const std::vector<Val> &weight_grads, const ItemSet &items,
           const std::vector<int> &chosen, const BudgetConfig &config,
           bool keep_if_fits, pass::PassResult *res, int64_t *peak)
{
    std::vector<const pass::Candidate *> accepted;
    accepted.reserve(chosen.size());
    for (int i : chosen)
        accepted.push_back(&items.items[static_cast<size_t>(i)].cand);

    TrialRewrite trial(g);
    pass::PassResult r;
    pass::applyRecomputation(g, accepted, items.feature_maps,
                             config.recompute, r);
    const int64_t measured = measurePoolPeak(fetches, weight_grads);
    *peak = measured;
    const bool fits = measured <= config.budget_bytes;
    if (fits && keep_if_fits) {
        *res = r;
        return true;
    }
    trial.rollback();
    return false;
}

} // namespace

BudgetPlan
planWithBudget(graph::Graph &g, const std::vector<Val> &fetches,
               const std::vector<Val> &weight_grads,
               const BudgetConfig &config)
{
    obs::Span span;
    if (obs::traceEnabled())
        span.begin("budget", "plan_with_budget",
                   {{"budget_bytes", config.budget_bytes},
                    {"solver", solverName(config.solver)}});
    obs::counter("budget.plans").add(1);

    BudgetPlan plan;
    plan.budget_bytes = config.budget_bytes;
    ECHO_CHECK(config.budget_bytes > 0,
               "planWithBudget needs a positive byte budget, got ",
               config.budget_bytes);

    // Record the final (possibly rewritten) plan + its timeline replay.
    const auto finalize = [&](graph::Graph &graph) {
        (void)graph;
        obs::MemoryTimeline timeline;
        memory::PlannerOptions popts;
        popts.timeline = &timeline;
        const memory::LivenessResult live =
            memory::analyzeLiveness(fetches, weight_grads);
        const memory::MemoryPlan mem = memory::planMemory(live, popts);
        plan.planned_pool_peak = mem.pool_peak_bytes;
        plan.replay = obs::replayTimeline(timeline);
        plan.replay_ok = plan.replay.ok() &&
                         plan.replay.address_peak_bytes ==
                             mem.pool_peak_bytes;
    };

    plan.baseline_pool_peak = measurePoolPeak(fetches, weight_grads);
    if (plan.baseline_pool_peak <= config.budget_bytes) {
        plan.feasible = true;
        plan.tightest_pool_peak = plan.baseline_pool_peak;
        plan.note = "baseline fits without rewriting";
        finalize(g);
        return plan;
    }

    const ItemSet items = enumerateItems(fetches, config.recompute);
    plan.num_items = static_cast<int>(items.items.size());

    // Probe: how tight can recomputation squeeze this graph at all?
    const SolveResult probe = maxReductionSet(items);
    int64_t tightest = plan.baseline_pool_peak;
    if (!probe.chosen.empty()) {
        pass::PassResult probe_res;
        trialApply(g, fetches, weight_grads, items, probe.chosen, config,
                   /*keep_if_fits=*/false, &probe_res, &tightest);
    }
    plan.tightest_pool_peak = std::min(tightest, plan.baseline_pool_peak);

    if (plan.tightest_pool_peak > config.budget_bytes) {
        // Unreachable: report the tightest plan's binding buffers.
        // Re-apply the probe set just to analyze its peak, then undo.
        std::ostringstream note;
        note << "infeasible: tightest achievable pool peak "
             << formatBytes(plan.tightest_pool_peak) << " exceeds budget "
             << formatBytes(config.budget_bytes) << " by "
             << formatBytes(plan.tightest_pool_peak -
                            config.budget_bytes);
        plan.note = note.str();
        plan.solved = probe;
        {
            TrialRewrite trial(g);
            if (!probe.chosen.empty()) {
                std::vector<const pass::Candidate *> accepted;
                for (int i : probe.chosen)
                    accepted.push_back(
                        &items.items[static_cast<size_t>(i)].cand);
                pass::PassResult r;
                pass::applyRecomputation(g, accepted, items.feature_maps,
                                         config.recompute, r);
            }
            const memory::LivenessResult live =
                memory::analyzeLiveness(fetches, weight_grads);
            const memory::MemoryPlan mem = memory::planMemory(live);
            plan.binding = bindingBuffersAtPeak(live, mem, 8);
            trial.rollback();
        }
        finalize(g);
        obs::counter("budget.infeasible").add(1);
        return plan;
    }

    // Solve for the cheapest set covering the required reduction; the
    // model and the pool planner disagree by fragmentation/liveness
    // slack, so measure every proposal and raise the bar by the
    // overshoot until it fits.
    int64_t required = plan.baseline_pool_peak - config.budget_bytes;
    for (int round = 0; round < config.max_rounds; ++round) {
        plan.rounds = round + 1;
        plan.solved = solve(items, required, config.solver);
        int64_t measured = 0;
        if (trialApply(g, fetches, weight_grads, items,
                       plan.solved.chosen, config, /*keep_if_fits=*/true,
                       &plan.pass, &measured)) {
            plan.feasible = true;
            plan.applied = true;
            std::ostringstream note;
            note << "solved in " << plan.rounds << " round(s) with "
                 << solverName(config.solver);
            plan.note = note.str();
            finalize(g);
            if (obs::traceEnabled())
                obs::emitEvent('i', "budget", "plan.feasible",
                               {{"pool_peak", plan.planned_pool_peak},
                                {"budget", config.budget_bytes},
                                {"rounds", plan.rounds}});
            return plan;
        }
        const int64_t overshoot = measured - config.budget_bytes;
        // Raise by at least one alignment quantum so the loop always
        // makes progress even when the model refuses to budge.
        required += std::max<int64_t>(overshoot, 256);
        if (obs::traceEnabled())
            obs::emitEvent('i', "budget", "plan.retry",
                           {{"measured", measured},
                            {"budget", config.budget_bytes},
                            {"required", required}});
    }

    // The probed maximum-reduction set measured within budget; use it.
    pass::PassResult res;
    int64_t measured = 0;
    const bool ok =
        trialApply(g, fetches, weight_grads, items, probe.chosen, config,
                   /*keep_if_fits=*/true, &res, &measured);
    ECHO_CHECK(ok, "budget planner fallback set no longer fits: ",
               measured, " > ", config.budget_bytes,
               " (non-deterministic rewrite?)");
    plan.pass = res;
    plan.solved = probe;
    plan.feasible = true;
    plan.applied = true;
    ++plan.rounds;
    plan.note = "fell back to the maximum-reduction probe set";
    finalize(g);
    return plan;
}

bool
parseByteSize(const std::string &text, int64_t *bytes)
{
    if (text.empty() || bytes == nullptr)
        return false;
    size_t pos = 0;
    double value = 0.0;
    try {
        value = std::stod(text, &pos);
    } catch (...) {
        return false;
    }
    if (value < 0.0)
        return false;
    std::string unit = text.substr(pos);
    while (!unit.empty() && std::isspace(static_cast<unsigned char>(
                                unit.front())))
        unit.erase(unit.begin());
    for (char &c : unit)
        c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
    double scale = 1.0;
    if (unit.empty() || unit == "b")
        scale = 1.0;
    else if (unit == "k" || unit == "kb" || unit == "kib")
        scale = 1024.0;
    else if (unit == "m" || unit == "mb" || unit == "mib")
        scale = 1024.0 * 1024.0;
    else if (unit == "g" || unit == "gb" || unit == "gib")
        scale = 1024.0 * 1024.0 * 1024.0;
    else
        return false;
    *bytes = static_cast<int64_t>(std::llround(value * scale));
    return true;
}

std::string
formatBytes(int64_t bytes)
{
    const char *units[] = {"B", "KiB", "MiB", "GiB", "TiB"};
    double v = static_cast<double>(bytes);
    int u = 0;
    while (std::fabs(v) >= 1024.0 && u < 4) {
        v /= 1024.0;
        ++u;
    }
    char buf[32];
    if (u == 0)
        std::snprintf(buf, sizeof(buf), "%lld B",
                      static_cast<long long>(bytes));
    else
        std::snprintf(buf, sizeof(buf), "%.2f %s", v, units[u]);
    return buf;
}

} // namespace echo::budget
