/**
 * @file
 * Numeric executor: runs a graph's schedule on CPU tensors.
 *
 * Used by the training loops, the examples, and every numerical test.
 * Timing and memory are NOT measured here — they come from the
 * analytical GPU model (src/gpusim) and the memory planner (src/memory)
 * walking the same schedule.
 */
#ifndef ECHO_GRAPH_EXECUTOR_H
#define ECHO_GRAPH_EXECUTOR_H

#include <unordered_map>
#include <vector>

#include "graph/graph.h"
#include "graph/schedule.h"

namespace echo::graph {

/** Values fed into a run: one tensor per placeholder / weight node. */
using FeedDict = std::unordered_map<const Node *, Tensor>;

/** Executes a fixed set of fetches over a prebuilt schedule. */
class Executor
{
  public:
    /** Prepare to repeatedly fetch @p fetches. */
    explicit Executor(std::vector<Val> fetches);

    /**
     * Run the schedule.  @p feed must contain a tensor for every
     * placeholder and weight in the fetched subgraph.  Intermediate
     * tensors are freed as soon as their last consumer has run.
     */
    std::vector<Tensor> run(const FeedDict &feed) const;

    /** The schedule this executor runs (for inspection/tests). */
    const std::vector<Node *> &schedule() const { return schedule_; }

  private:
    std::vector<Val> fetches_;
    std::vector<Node *> schedule_;
    /** Remaining-use counts per node (consumers + fetch references). */
    std::unordered_map<const Node *, int> use_counts_;
};

} // namespace echo::graph

#endif // ECHO_GRAPH_EXECUTOR_H
