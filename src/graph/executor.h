/**
 * @file
 * Numeric executor: runs a graph's schedule on CPU tensors.
 *
 * Used by the training loops, the examples, and every numerical test.
 * Timing and memory are NOT measured here — they come from the
 * analytical GPU model (src/gpusim) and the memory planner (src/memory)
 * walking the same schedule.
 *
 * The executor has two execution strategies over the same schedule:
 *
 *  - serial: nodes run one after another in schedule order;
 *  - parallel: a ready queue dispatches every node whose producers have
 *    completed to the global ThreadPool, so independent nodes (e.g. the
 *    per-gate GEMMs of an LSTM cell, or forward nodes of different time
 *    steps that recomputation made independent) overlap.
 *
 * Both strategies free intermediate buffers as soon as the last
 * consumer of a node has run, and both produce byte-identical results:
 * ops are pure functions of their input tensors, every node's output is
 * written by exactly one task, and no op mutates shared state, so the
 * dispatch order cannot change any computed value.
 */
#ifndef ECHO_GRAPH_EXECUTOR_H
#define ECHO_GRAPH_EXECUTOR_H

#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "graph/graph.h"
#include "graph/schedule.h"

namespace echo::graph {

class Tape;

/** Values fed into a run: one tensor per placeholder / weight node. */
using FeedDict = std::unordered_map<const Node *, Tensor>;

/** How Executor::run walks the schedule. */
enum class ExecMode
{
    /** Strict schedule order on the calling thread. */
    kSerial,
    /** Ready-queue dispatch onto the global ThreadPool. */
    kParallel,
    /**
     * kParallel when it can help (pool has >1 thread, the schedule is
     * big enough to amortize dispatch, and the caller is not itself a
     * pool worker), kSerial otherwise.
     */
    kAuto,
};

/** Executes a fixed set of fetches over a prebuilt schedule. */
class Executor
{
  public:
    /** Prepare to repeatedly fetch @p fetches. */
    explicit Executor(std::vector<Val> fetches,
                      ExecMode mode = ExecMode::kAuto);

    ~Executor();

    /**
     * Run the schedule.  @p feed must contain a tensor for every
     * placeholder and weight in the fetched subgraph.  Intermediate
     * tensors are freed as soon as their last consumer has run.
     *
     * Thread-safe: all per-run state is local, so concurrent run()
     * calls on one Executor are fine.  Under ECHO_TAPE=on runs route
     * through the compiled tape (graph/tape.h), whose mutable arena
     * state is serialized by an internal mutex — still thread-safe,
     * but concurrent runs no longer overlap.
     */
    std::vector<Tensor> run(const FeedDict &feed) const;

    /**
     * The steady-state execution tape for this fetch set, compiled on
     * first use and cached (see graph/tape.h).  Callers that bind
     * feeds by index and call Tape::run directly must serialize their
     * own access; Executor::run's tape route does so internally.
     */
    Tape &compile() const;

    /** The schedule this executor runs (for inspection/tests). */
    const std::vector<Node *> &schedule() const { return schedule_; }

    /** The fetch set this executor was built for. */
    const std::vector<Val> &fetches() const { return fetches_; }

    /** The configured execution mode. */
    ExecMode mode() const { return mode_; }

  private:
    std::vector<Tensor> runSerial(const FeedDict &feed) const;
    std::vector<Tensor> runParallel(const FeedDict &feed) const;

    /** Resolve kAuto against the pool and calling context. */
    bool useParallel() const;

    /** Feed lookup + shape check for a placeholder/weight node. */
    const Tensor &feedValue(const FeedDict &feed, const Node *n) const;

    std::vector<Val> fetches_;
    std::vector<Node *> schedule_;
    ExecMode mode_;

    // Dense per-run topology, indexed by schedule position ("slot").
    // Built once here so run() touches only flat vectors — no hash
    // lookups or per-run map copies on the hot path.
    /** Remaining-use counts per slot (consumers + fetch references). */
    std::vector<int> use_counts_;
    /** Input-edge count per slot (parallel-mode ready condition). */
    std::vector<int> in_degree_;
    /** Consumer slots per slot, one entry per input edge. */
    std::vector<std::vector<int>> consumers_;
    /** Producer slot of each input, aligned with node->inputs. */
    std::vector<std::vector<int>> input_slots_;
    /** Slot of each fetch, aligned with fetches_. */
    std::vector<int> fetch_slots_;

    /** Lazily compiled steady-state tape (and its run serializer). */
    mutable std::unique_ptr<Tape> tape_;
    mutable std::mutex tape_mu_;
};

} // namespace echo::graph

#endif // ECHO_GRAPH_EXECUTOR_H
