/**
 * @file
 * Extraction of a graph's GEMM shape set.
 *
 * A scheduled graph names every matrix multiply it will launch, so the
 * autotuner can warm its cache for exactly those shapes before the
 * first run instead of tuning on first miss mid-iteration.  The keys
 * come from the ops' KernelDesc geometry (gemm_m/n/k plus the operand
 * transposes); a bmm contributes the geometry of its per-item slices,
 * which is the shape the kernel resolves schedules for.
 */
#ifndef ECHO_GRAPH_GEMM_KEYS_H
#define ECHO_GRAPH_GEMM_KEYS_H

#include <vector>

#include "graph/graph.h"
#include "tensor/gemm_schedule.h"

namespace echo::graph {

/**
 * The distinct GEMM keys the nodes of @p schedule will launch, with
 * @p threads recorded as the key's thread-count dimension (pass the
 * global pool's count).  Order follows first appearance.
 */
std::vector<ops::GemmKey>
collectGemmKeys(const std::vector<Node *> &schedule, int threads);

} // namespace echo::graph

#endif // ECHO_GRAPH_GEMM_KEYS_H
