/**
 * @file
 * The element-wise register program: the tiny IR the fusion pass
 * (graph/fusion.h) compiles single-consumer element-wise chains into,
 * and the FusedElementwiseOp interpreter executes in one parallel pass.
 *
 * A program is a straight-line, single-assignment instruction list over
 * virtual registers.  Registers 0..num_inputs-1 hold the fused node's
 * inputs; every instruction writes a fresh register; the last
 * instruction's destination is the node's output.  One instruction
 * performs exactly ONE primitive arithmetic step — the same granularity
 * as the unfused per-op tensor kernels — so no compiler can contract
 * a multiply and an add across what used to be two ops, and fused
 * results stay byte-identical to the unfused graph.
 */
#ifndef ECHO_GRAPH_EW_PROGRAM_H
#define ECHO_GRAPH_EW_PROGRAM_H

#include <string>
#include <vector>

namespace echo::graph {

/** One primitive element-wise operation. */
enum class EwOpcode {
    kAdd,        ///< dst = a + b
    kSub,        ///< dst = a - b
    kMul,        ///< dst = a * b
    kNeg,        ///< dst = -a
    kAddScalar,  ///< dst = a + scalar
    kMulScalar,  ///< dst = a * scalar
    kSquare,     ///< dst = a * a
    kTanh,       ///< dst = std::tanh(a)
    kSigmoid,    ///< dst = 1 / (1 + std::exp(-a))
    kRelu,       ///< dst = a > 0 ? a : 0
    kGtZeroMask, ///< dst = a > 0 ? 1 : 0
};

/** Mnemonic of an opcode ("add", "mul_scalar", ...). */
const char *ewOpcodeName(EwOpcode opcode);

/** True when the opcode reads two registers. */
bool ewOpcodeIsBinary(EwOpcode opcode);

/**
 * One instruction: dst = opcode(a[, b][, scalar]).  Register numbers
 * are local to the program; -1 marks an unused operand.
 */
struct EwInstr
{
    EwOpcode opcode = EwOpcode::kAdd;
    int dst = -1;
    int a = -1;
    int b = -1;
    float scalar = 0.0f;
};

/** "r4 = mul(r0, r2)" / "r3 = add_scalar(r2, 1)" rendering. */
std::string ewInstrToString(const EwInstr &instr);

/**
 * Canonical text of a whole program ("in=2 out=r4; r2 = ...; ...").
 * This is the value-equality metadata the fusion pass records on each
 * fused node and analysis::auditFusion re-derives and compares.
 */
std::string ewProgramSignature(int num_inputs, int out_reg,
                               const std::vector<EwInstr> &program);

} // namespace echo::graph

#endif // ECHO_GRAPH_EW_PROGRAM_H
