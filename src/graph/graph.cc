#include "graph/graph.h"

#include <algorithm>
#include <sstream>

#include "core/logging.h"

namespace echo::graph {

int64_t
totalElems(const std::vector<Shape> &shapes)
{
    int64_t n = 0;
    for (const Shape &s : shapes)
        n += s.numel();
    return n;
}

std::vector<KernelDesc>
Op::kernels(const std::vector<Shape> &in,
            const std::vector<Shape> &out) const
{
    // Default model: one bandwidth-bound element-wise kernel that reads
    // all inputs and writes all outputs.
    KernelDesc k;
    k.category = "elementwise";
    k.flops = totalElems(out);
    k.bytes_read = totalElems(in) * 4;
    k.bytes_written = totalElems(out) * 4;
    return {k};
}

Node *
Graph::newNode(NodeKind kind, const std::string &name)
{
    auto node = std::make_unique<Node>();
    node->id = static_cast<int>(nodes_.size());
    node->kind = kind;
    node->phase = phase_;
    node->time_step = time_step_;
    node->name = name;
    if (!tag_stack_.empty())
        node->layer_tag = tag_stack_.back();
    nodes_.push_back(std::move(node));
    return nodes_.back().get();
}

void
Graph::truncate(size_t num_nodes)
{
    ECHO_CHECK(num_nodes <= nodes_.size(), "Graph::truncate(", num_nodes,
               ") beyond current node count ", nodes_.size());
    nodes_.resize(num_nodes);
}

Val
Graph::placeholder(Shape shape, const std::string &name)
{
    Node *n = newNode(NodeKind::kPlaceholder, name);
    n->phase = Phase::kForward;
    n->out_shapes = {std::move(shape)};
    return n->out();
}

Val
Graph::weight(Shape shape, const std::string &name)
{
    Node *n = newNode(NodeKind::kWeight, name);
    n->phase = Phase::kForward;
    n->out_shapes = {std::move(shape)};
    return n->out();
}

std::vector<Val>
Graph::apply(OpPtr op, std::vector<Val> inputs, const std::string &name)
{
    ECHO_REQUIRE(op != nullptr, "apply with null op");
    std::vector<Shape> in_shapes;
    in_shapes.reserve(inputs.size());
    for (const Val &v : inputs) {
        ECHO_REQUIRE(v.defined(), "apply(", op->name(),
                     "): undefined input value");
        in_shapes.push_back(shapeOf(v));
    }
    Node *n = newNode(NodeKind::kOp, name.empty() ? op->name() : name);
    n->op = std::move(op);
    n->inputs = std::move(inputs);
    n->out_shapes = n->op->inferShapes(in_shapes);
    ECHO_CHECK(!n->out_shapes.empty(), "op ", n->op->name(),
               " inferred no outputs");
    std::vector<Val> outs;
    outs.reserve(n->out_shapes.size());
    for (int i = 0; i < n->numOutputs(); ++i)
        outs.push_back(n->out(i));
    return outs;
}

Val
Graph::apply1(OpPtr op, std::vector<Val> inputs, const std::string &name)
{
    std::vector<Val> outs = apply(std::move(op), std::move(inputs), name);
    ECHO_CHECK(outs.size() == 1, "apply1 on multi-output op");
    return outs[0];
}

void
Graph::pushTag(const std::string &tag)
{
    tag_stack_.push_back(tag);
}

void
Graph::popTag()
{
    ECHO_CHECK(!tag_stack_.empty(), "popTag on empty tag stack");
    tag_stack_.pop_back();
}

std::vector<Node *>
Graph::weights() const
{
    std::vector<Node *> out;
    for (const auto &n : nodes_)
        if (n->kind == NodeKind::kWeight)
            out.push_back(n.get());
    return out;
}

std::vector<Node *>
Graph::placeholders() const
{
    std::vector<Node *> out;
    for (const auto &n : nodes_)
        if (n->kind == NodeKind::kPlaceholder)
            out.push_back(n.get());
    return out;
}

const Shape &
Graph::shapeOf(const Val &v)
{
    ECHO_CHECK(v.defined(), "shapeOf undefined value");
    ECHO_CHECK(v.index >= 0 && v.index < v.node->numOutputs(),
               "output index out of range");
    return v.node->out_shapes[static_cast<size_t>(v.index)];
}

std::string
Graph::toString() const
{
    std::ostringstream oss;
    for (const auto &n : nodes_) {
        oss << "#" << n->id << " ";
        switch (n->kind) {
          case NodeKind::kPlaceholder:
            oss << "placeholder";
            break;
          case NodeKind::kWeight:
            oss << "weight";
            break;
          case NodeKind::kOp:
            oss << n->op->name();
            break;
        }
        oss << " " << n->name << " -> ";
        for (const Shape &s : n->out_shapes)
            oss << s.toString();
        if (!n->inputs.empty()) {
            oss << "  from";
            for (const Val &v : n->inputs)
                oss << " #" << v.node->id << ":" << v.index;
        }
        switch (n->phase) {
          case Phase::kForward:
            break;
          case Phase::kBackward:
            oss << "  [bwd]";
            break;
          case Phase::kRecompute:
            oss << "  [recompute]";
            break;
        }
        if (!n->layer_tag.empty())
            oss << "  tag=" << n->layer_tag;
        oss << "\n";
    }
    return oss.str();
}

std::string
Graph::toDot() const
{
    std::ostringstream oss;
    oss << "digraph echo {\n  rankdir=TB;\n"
        << "  node [shape=box, fontsize=10];\n";
    for (const auto &n : nodes_) {
        const char *fill = "white";
        switch (n->phase) {
          case Phase::kForward:
            fill = n->kind == NodeKind::kWeight ? "lightgoldenrod"
                                                : "lightblue";
            break;
          case Phase::kBackward:
            fill = "lightsalmon";
            break;
          case Phase::kRecompute:
            fill = "palegreen";
            break;
        }
        std::string label = n->name.empty()
                                ? (n->op ? n->op->name() : "input")
                                : n->name;
        for (char &ch : label)
            if (ch == '"')
                ch = '\'';
        oss << "  n" << n->id << " [label=\"" << label;
        for (const Shape &s : n->out_shapes)
            oss << "\\n" << s.toString();
        oss << "\", style=filled, fillcolor=" << fill << "];\n";
    }
    for (const auto &n : nodes_)
        for (const Val &v : n->inputs)
            oss << "  n" << v.node->id << " -> n" << n->id << ";\n";
    oss << "}\n";
    return oss.str();
}

std::vector<Node *>
reachableNodes(const std::vector<Val> &fetches)
{
    std::vector<Node *> stack;
    std::vector<Node *> found;
    std::unordered_map<const Node *, bool> seen;
    for (const Val &v : fetches)
        if (v.defined() && !seen[v.node]) {
            seen[v.node] = true;
            stack.push_back(v.node);
        }
    while (!stack.empty()) {
        Node *n = stack.back();
        stack.pop_back();
        found.push_back(n);
        for (const Val &v : n->inputs)
            if (!seen[v.node]) {
                seen[v.node] = true;
                stack.push_back(v.node);
            }
    }
    std::sort(found.begin(), found.end(),
              [](const Node *a, const Node *b) { return a->id < b->id; });
    return found;
}

} // namespace echo::graph
