/**
 * @file
 * Reverse-mode automatic differentiation that *extends the graph*.
 *
 * backward() walks the forward graph in reverse topological order from a
 * scalar loss, asking each op to append its gradient subgraph.  The
 * resulting backward nodes reference forward outputs directly; every such
 * cross-phase edge is a feature map in the paper's terminology ("reserved
 * space" kept alive from the forward into the backward pass), which is
 * exactly the structure the Echo recomputation pass rewrites.
 */
#ifndef ECHO_GRAPH_AUTODIFF_H
#define ECHO_GRAPH_AUTODIFF_H

#include <unordered_map>
#include <vector>

#include "graph/graph.h"

namespace echo::graph {

/** Result of differentiating a graph. */
struct GradientResult
{
    /** Gradient value for each requested weight (same order). */
    std::vector<Val> weight_grads;
    /** Gradient of every value that received one. */
    std::unordered_map<Val, Val, ValHash> all_grads;
};

/**
 * Differentiate @p loss (a scalar value) with respect to @p wrt.
 *
 * Appends backward-phase nodes to @p graph and returns the gradient
 * values.  Weights in @p wrt that the loss does not depend on receive an
 * explicit zero-constant gradient so optimizers can treat the result
 * uniformly.
 */
GradientResult backward(Graph &graph, const Val &loss,
                        const std::vector<Val> &wrt);

} // namespace echo::graph

#endif // ECHO_GRAPH_AUTODIFF_H
