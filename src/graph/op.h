/**
 * @file
 * The operator interface of the dataflow-graph IR.
 *
 * Every graph node holds an Op.  An Op provides:
 *  - shape inference (inferShapes),
 *  - a CPU forward implementation (forward) used by the numeric executor,
 *  - a gradient *graph builder* (buildGradient) used by autodiff — the
 *    backward pass is itself a graph of primitive ops, so edges from
 *    backward nodes to forward outputs (feature maps) are first-class and
 *    can be rewritten by the Echo recomputation pass,
 *  - GPU kernel descriptors (kernels) consumed by the analytical GPU
 *    performance model.
 */
#ifndef ECHO_GRAPH_OP_H
#define ECHO_GRAPH_OP_H

#include <memory>
#include <string>
#include <vector>

#include "graph/ew_program.h"
#include "tensor/shape.h"
#include "tensor/tensor.h"

namespace echo::graph {

class Graph;
struct Node;

/** A reference to one output of a node (an SSA value). */
struct Val
{
    Node *node = nullptr;
    int index = 0;

    bool defined() const { return node != nullptr; }
    bool operator==(const Val &o) const
    {
        return node == o.node && index == o.index;
    }
};

/** Hash functor so Val can key unordered containers. */
struct ValHash
{
    size_t operator()(const Val &v) const
    {
        return std::hash<const void *>()(v.node) * 31 +
               static_cast<size_t>(v.index);
    }
};

/**
 * Descriptor of one GPU kernel an op lowers to, consumed by
 * gpusim::KernelCostModel.  An op may lower to several kernels (e.g.\ the
 * fused LSTM layer op lowers to per-step GEMMs plus fused element-wise
 * kernels).
 */
struct KernelDesc
{
    /** Reporting category, e.g.\ "fully_connected", "elementwise". */
    std::string category = "elementwise";
    /** Floating-point operations PER LAUNCH. */
    int64_t flops = 0;
    /** Bytes read / written PER LAUNCH (before cache modelling). */
    int64_t bytes_read = 0;
    int64_t bytes_written = 0;
    /** Number of identical launches this descriptor stands for. */
    int launches = 1;
    /** True for matrix-multiply kernels (cost-modelled separately and
     *  never recomputed by the Echo pass). */
    bool is_gemm = false;
    /** GEMM geometry (valid when is_gemm). M is the output-row extent —
     *  the dimension whose skew drives the layout effect of Fig. 9. */
    int64_t gemm_m = 0;
    int64_t gemm_n = 0;
    int64_t gemm_k = 0;
    /** Operand transposes (valid when is_gemm) — together with the
     *  geometry these form the autotuner's shape key. */
    bool gemm_trans_a = false;
    bool gemm_trans_b = false;
    /** True when the kernel's global-memory access pattern is fully
     *  coalesced (the paper's parallel SequenceReverse vs the
     *  batch-sequential MXNet implementation). */
    bool coalesced = true;
    /** Multiplier on modelled execution time; used for effects outside
     *  the per-kernel model, e.g.\ cuDNN's cross-layer wavefront
     *  overlap on multi-layer LSTMs. */
    double time_scale = 1.0;
};

/** Inputs handed to Op::buildGradient. */
struct GradContext
{
    Graph *graph = nullptr;
    /** The forward node whose inputs we differentiate. */
    Node *node = nullptr;
    /** Gradients of each output; an undefined Val means "no gradient
     *  flows into this output" (treat as zero). */
    std::vector<Val> out_grads;
};

/** Abstract graph operator. */
class Op
{
  public:
    virtual ~Op() = default;

    /** Stable operator name, e.g.\ "gemm". */
    virtual std::string name() const = 0;

    /** Infer output shapes from input shapes. */
    virtual std::vector<Shape>
    inferShapes(const std::vector<Shape> &in) const = 0;

    /** Execute on CPU tensors. @p out is pre-sized to the output count. */
    virtual void forward(const std::vector<Tensor> &in,
                         std::vector<Tensor> &out) const = 0;

    /**
     * Append gradient nodes to ctx.graph and return the gradient of each
     * input (undefined Val for non-differentiable inputs such as token
     * ids).
     */
    virtual std::vector<Val> buildGradient(GradContext &ctx) const = 0;

    /** GPU kernels this op lowers to, for the performance model. */
    virtual std::vector<KernelDesc>
    kernels(const std::vector<Shape> &in,
            const std::vector<Shape> &out) const;

    /**
     * True when the Echo pass may include this op in a recomputation
     * subgraph.  The default follows the paper's rule: everything except
     * compute-heavy GEMM-class ops is cheap to recompute.
     */
    virtual bool cheapToRecompute() const { return true; }

    /**
     * Lowering of this op to the element-wise register program
     * (graph/ew_program.h), or empty when the op is not a pure
     * same-shape element-wise map — the fusion pass (graph/fusion.h)
     * only fuses ops that provide one.  Register convention: registers
     * 0..k-1 are the op's k inputs, every instruction writes a fresh
     * register starting at k, and the last instruction's destination is
     * the op's (single) output.  Each instruction must perform exactly
     * the primitive arithmetic steps of forward(), in the same order,
     * so fused execution is byte-identical to the unfused kernels.
     */
    virtual std::vector<EwInstr> elementwiseLowering() const
    {
        return {};
    }

    /**
     * Graph nodes this op reads THROUGH at execution time (e.g.\ the
     * fused recompute region replays its template nodes' `op` and
     * output arity live).  Any transform that retypes nodes in place —
     * element-wise fusion swaps a sink's op and inputs — must leave
     * pinned nodes untouched, or the aliasing op replays a rewired
     * template with stale input wiring.  Empty for ordinary ops.
     */
    virtual std::vector<const Node *> pinnedNodes() const
    {
        return {};
    }
};

using OpPtr = std::shared_ptr<Op>;

/** Sum of element counts across shapes, a convenience for cost math. */
int64_t totalElems(const std::vector<Shape> &shapes);

} // namespace echo::graph

#endif // ECHO_GRAPH_OP_H
