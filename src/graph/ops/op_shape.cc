/**
 * @file
 * Shape-plumbing operators: reshape, transpose/permute, concat/slice, and
 * the paper's SequenceReverse (with its parallel and batch-sequential
 * implementations differing only in the performance model).
 */
#include "graph/graph.h"
#include "graph/ops/oplib.h"
#include "tensor/ops.h"

#include "core/logging.h"

namespace echo::graph::oplib {

namespace {

class ReshapeOp : public Op
{
  public:
    explicit ReshapeOp(Shape new_shape) : new_shape_(std::move(new_shape))
    {
    }

    std::string name() const override { return "reshape"; }

    std::vector<Shape>
    inferShapes(const std::vector<Shape> &in) const override
    {
        ECHO_REQUIRE(in.size() == 1 &&
                         in[0].numel() == new_shape_.numel(),
                     "reshape ", in[0].toString(), " -> ",
                     new_shape_.toString(), " changes element count");
        return {new_shape_};
    }

    void
    forward(const std::vector<Tensor> &in,
            std::vector<Tensor> &out) const override
    {
        out[0] = in[0].reshape(new_shape_);
    }

    std::vector<Val>
    buildGradient(GradContext &ctx) const override
    {
        const Val dy = ctx.out_grads[0];
        if (!dy.defined())
            return {Val{}};
        const Shape &in_shape = Graph::shapeOf(ctx.node->inputs[0]);
        return {ctx.graph->apply1(reshape(in_shape), {dy})};
    }

    std::vector<KernelDesc>
    kernels(const std::vector<Shape> &,
            const std::vector<Shape> &) const override
    {
        // A view change: no GPU kernel at all.
        return {};
    }

  private:
    Shape new_shape_;
};

class Transpose2dOp : public Op
{
  public:
    std::string name() const override { return "transpose2d"; }

    std::vector<Shape>
    inferShapes(const std::vector<Shape> &in) const override
    {
        ECHO_REQUIRE(in.size() == 1 && in[0].ndim() == 2,
                     "transpose2d wants a matrix");
        return {Shape({in[0][1], in[0][0]})};
    }

    void
    forward(const std::vector<Tensor> &in,
            std::vector<Tensor> &out) const override
    {
        out[0] = ops::transpose2d(in[0]);
    }

    std::vector<Val>
    buildGradient(GradContext &ctx) const override
    {
        const Val dy = ctx.out_grads[0];
        if (!dy.defined())
            return {Val{}};
        return {ctx.graph->apply1(transpose2d(), {dy})};
    }

    std::vector<KernelDesc>
    kernels(const std::vector<Shape> &in,
            const std::vector<Shape> &out) const override
    {
        KernelDesc k;
        k.category = "transpose";
        k.bytes_read = in[0].numel() * 4;
        k.bytes_written = out[0].numel() * 4;
        return {k};
    }
};

class Permute3dOp : public Op
{
  public:
    explicit Permute3dOp(std::vector<int> perm) : perm_(std::move(perm))
    {
        ECHO_REQUIRE(perm_.size() == 3, "permute3d wants 3 axes");
    }

    std::string name() const override { return "permute3d"; }

    std::vector<Shape>
    inferShapes(const std::vector<Shape> &in) const override
    {
        ECHO_REQUIRE(in.size() == 1 && in[0].ndim() == 3,
                     "permute3d wants a 3-D tensor");
        return {Shape({in[0][perm_[0]], in[0][perm_[1]],
                       in[0][perm_[2]]})};
    }

    void
    forward(const std::vector<Tensor> &in,
            std::vector<Tensor> &out) const override
    {
        out[0] = ops::permute3d(in[0], perm_);
    }

    std::vector<Val>
    buildGradient(GradContext &ctx) const override
    {
        const Val dy = ctx.out_grads[0];
        if (!dy.defined())
            return {Val{}};
        std::vector<int> inv(3);
        for (int i = 0; i < 3; ++i)
            inv[static_cast<size_t>(perm_[static_cast<size_t>(i)])] = i;
        return {ctx.graph->apply1(permute3d(inv), {dy})};
    }

    std::vector<KernelDesc>
    kernels(const std::vector<Shape> &in,
            const std::vector<Shape> &out) const override
    {
        KernelDesc k;
        k.category = "transpose";
        k.bytes_read = in[0].numel() * 4;
        k.bytes_written = out[0].numel() * 4;
        return {k};
    }

  private:
    std::vector<int> perm_;
};

class ConcatOp : public Op
{
  public:
    explicit ConcatOp(int axis) : axis_(axis) {}

    std::string name() const override { return "concat"; }

    std::vector<Shape>
    inferShapes(const std::vector<Shape> &in) const override
    {
        ECHO_REQUIRE(!in.empty(), "concat of nothing");
        const int nd = in[0].ndim();
        int axis = axis_ < 0 ? axis_ + nd : axis_;
        ECHO_REQUIRE(axis >= 0 && axis < nd, "concat axis out of range");
        std::vector<int64_t> dims = in[0].dims();
        for (size_t p = 1; p < in.size(); ++p) {
            ECHO_REQUIRE(in[p].ndim() == nd, "concat rank mismatch");
            for (int d = 0; d < nd; ++d) {
                if (d == axis) {
                    dims[static_cast<size_t>(d)] += in[p][d];
                } else {
                    ECHO_REQUIRE(in[p][d] == in[0][d],
                                 "concat extent mismatch");
                }
            }
        }
        return {Shape(dims)};
    }

    void
    forward(const std::vector<Tensor> &in,
            std::vector<Tensor> &out) const override
    {
        out[0] = ops::concat(in, axis_);
    }

    std::vector<Val>
    buildGradient(GradContext &ctx) const override
    {
        const Val dy = ctx.out_grads[0];
        std::vector<Val> grads(ctx.node->inputs.size());
        if (!dy.defined())
            return grads;
        const int nd = Graph::shapeOf(ctx.node->inputs[0]).ndim();
        const int axis = axis_ < 0 ? axis_ + nd : axis_;
        int64_t off = 0;
        for (size_t i = 0; i < ctx.node->inputs.size(); ++i) {
            const int64_t extent =
                Graph::shapeOf(ctx.node->inputs[i])[axis];
            grads[i] = ctx.graph->apply1(
                sliceOp(axis, off, off + extent), {dy});
            off += extent;
        }
        return grads;
    }

  private:
    int axis_;
};

class SliceOp : public Op
{
  public:
    SliceOp(int axis, int64_t begin, int64_t end)
        : axis_(axis), begin_(begin), end_(end)
    {
    }

    std::string name() const override { return "slice"; }

    std::vector<Shape>
    inferShapes(const std::vector<Shape> &in) const override
    {
        ECHO_REQUIRE(in.size() == 1, "slice wants one input");
        const int nd = in[0].ndim();
        const int axis = axis_ < 0 ? axis_ + nd : axis_;
        ECHO_REQUIRE(axis >= 0 && axis < nd && begin_ < end_ &&
                         end_ <= in[0][axis],
                     "slice range invalid for ", in[0].toString());
        std::vector<int64_t> dims = in[0].dims();
        dims[static_cast<size_t>(axis)] = end_ - begin_;
        return {Shape(dims)};
    }

    void
    forward(const std::vector<Tensor> &in,
            std::vector<Tensor> &out) const override
    {
        out[0] = ops::slice(in[0], axis_, begin_, end_);
    }

    std::vector<Val>
    buildGradient(GradContext &ctx) const override
    {
        const Val dy = ctx.out_grads[0];
        if (!dy.defined())
            return {Val{}};
        const Shape &in_shape = Graph::shapeOf(ctx.node->inputs[0]);
        const int nd = in_shape.ndim();
        const int axis = axis_ < 0 ? axis_ + nd : axis_;
        return {ctx.graph->apply1(
            sliceGrad(axis, begin_, end_, in_shape[axis]), {dy})};
    }

  private:
    int axis_;
    int64_t begin_;
    int64_t end_;
};

class SliceGradOp : public Op
{
  public:
    SliceGradOp(int axis, int64_t begin, int64_t end, int64_t extent)
        : axis_(axis), begin_(begin), end_(end), extent_(extent)
    {
    }

    std::string name() const override { return "slice_grad"; }

    std::vector<Shape>
    inferShapes(const std::vector<Shape> &in) const override
    {
        ECHO_REQUIRE(in.size() == 1, "slice_grad wants one input");
        std::vector<int64_t> dims = in[0].dims();
        const int nd = in[0].ndim();
        const int axis = axis_ < 0 ? axis_ + nd : axis_;
        ECHO_REQUIRE(dims[static_cast<size_t>(axis)] == end_ - begin_,
                     "slice_grad extent mismatch");
        dims[static_cast<size_t>(axis)] = extent_;
        return {Shape(dims)};
    }

    void
    forward(const std::vector<Tensor> &in,
            std::vector<Tensor> &out) const override
    {
        const int nd = in[0].shape().ndim();
        const int axis = axis_ < 0 ? axis_ + nd : axis_;
        // withDim, not dims(): this runs once per slice per iteration
        // and must stay allocation-free for the tape's steady state.
        const Shape full_shape = in[0].shape().withDim(axis, extent_);
        Tensor full = Tensor::zeros(full_shape);

        // Scatter the slice back: iterate outer x span x inner.
        int64_t outer = 1;
        for (int d = 0; d < axis; ++d)
            outer *= full_shape[d];
        int64_t inner = 1;
        for (int d = axis + 1; d < nd; ++d)
            inner *= full_shape[d];
        const int64_t span = end_ - begin_;
        for (int64_t o = 0; o < outer; ++o)
            for (int64_t i = 0; i < span; ++i) {
                const float *src =
                    in[0].data() + (o * span + i) * inner;
                float *dst = full.data() +
                             (o * extent_ + begin_ + i) * inner;
                for (int64_t j = 0; j < inner; ++j)
                    dst[j] = src[j];
            }
        out[0] = std::move(full);
    }

    std::vector<Val>
    buildGradient(GradContext &ctx) const override
    {
        const Val dy = ctx.out_grads[0];
        if (!dy.defined())
            return {Val{}};
        return {ctx.graph->apply1(sliceOp(axis_, begin_, end_), {dy})};
    }

  private:
    int axis_;
    int64_t begin_;
    int64_t end_;
    int64_t extent_;
};

class ReverseAxisOp : public Op
{
  public:
    ReverseAxisOp(int axis, bool parallel)
        : axis_(axis), parallel_(parallel)
    {
    }

    std::string name() const override { return "sequence_reverse"; }

    std::vector<Shape>
    inferShapes(const std::vector<Shape> &in) const override
    {
        ECHO_REQUIRE(in.size() == 1, "sequence_reverse wants one input");
        return {in[0]};
    }

    void
    forward(const std::vector<Tensor> &in,
            std::vector<Tensor> &out) const override
    {
        out[0] = ops::reverseAxis(in[0], axis_);
    }

    std::vector<Val>
    buildGradient(GradContext &ctx) const override
    {
        const Val dy = ctx.out_grads[0];
        if (!dy.defined())
            return {Val{}};
        return {
            ctx.graph->apply1(reverseAxis(axis_, parallel_), {dy})};
    }

    std::vector<KernelDesc>
    kernels(const std::vector<Shape> &in,
            const std::vector<Shape> &out) const override
    {
        KernelDesc k;
        k.category = "sequence_reverse";
        k.bytes_read = in[0].numel() * 4;
        k.bytes_written = out[0].numel() * 4;
        // MXNet's original kernel walks the batch sequentially (one
        // thread per sequence position), so it cannot saturate the GPU
        // DRAM bandwidth; the paper's fix parallelizes over the batch.
        k.coalesced = parallel_;
        return {k};
    }

  private:
    int axis_;
    bool parallel_;
};

} // namespace

OpPtr
reshape(Shape new_shape)
{
    return std::make_shared<ReshapeOp>(std::move(new_shape));
}

OpPtr
transpose2d()
{
    return std::make_shared<Transpose2dOp>();
}

OpPtr
permute3d(std::vector<int> perm)
{
    return std::make_shared<Permute3dOp>(std::move(perm));
}

OpPtr
concat(int axis)
{
    return std::make_shared<ConcatOp>(axis);
}

OpPtr
sliceOp(int axis, int64_t begin, int64_t end)
{
    return std::make_shared<SliceOp>(axis, begin, end);
}

OpPtr
sliceGrad(int axis, int64_t begin, int64_t end, int64_t extent)
{
    return std::make_shared<SliceGradOp>(axis, begin, end, extent);
}

OpPtr
reverseAxis(int axis, bool parallel)
{
    return std::make_shared<ReverseAxisOp>(axis, parallel);
}

} // namespace echo::graph::oplib
