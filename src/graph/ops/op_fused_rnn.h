/**
 * @file
 * Fused single-layer LSTM operators, modelling cuDNN's RNN API.
 *
 * A FusedLstmLayer node runs all T time steps of one LSTM layer in a
 * single graph node, storing its internal per-step state in an opaque
 * "reserve" output (cuDNN's reserved space).  Two styles exist:
 *
 *  - kCudnn: the input projection is batched across time (one big GEMM,
 *    M = T*B) but the recurrent projection runs per step in the
 *    batch-major form (M = B), the skewed-slow case of the paper's
 *    Fig. 9.
 *  - kEco: the data layout is [T x H x B]; both projections run in the
 *    transposed form (M = 4H), the fast case — the paper's data-layout
 *    optimization.  Numerics are identical; only the kernel descriptors
 *    (and hence modelled runtime) differ, plus two boundary transpose
 *    kernels.
 *
 * The MXNet "Default" implementation is NOT an op here: it is an unfused
 * per-step subgraph of primitive ops built by rnn/default_backend.
 */
#ifndef ECHO_GRAPH_OPS_OP_FUSED_RNN_H
#define ECHO_GRAPH_OPS_OP_FUSED_RNN_H

#include "graph/op.h"

namespace echo::graph::oplib {

/** Kernel-lowering style of the fused LSTM layer. */
enum class FusedRnnStyle { kCudnn, kEco };

/**
 * Fused LSTM layer over T steps.
 *
 * Inputs:  X [TxBxI], Wx [4HxI], Wh [4HxH], bias [4H], h0 [BxH], c0 [BxH]
 * Outputs: HS [TxBxH], hT [BxH], cT [BxH], reserve [TxBx5H]
 *
 * @param multilayer_overlap models cuDNN's wavefront scheduling across
 *        stacked layers (steps of layer l+1 overlap layer l), which
 *        discounts the serialized per-step kernels; this is why cuDNN
 *        occasionally beats the layout optimization on deep stacks
 *        (paper §6.3, "below 20%").  Only meaningful for kCudnn.
 */
OpPtr fusedLstmLayer(FusedRnnStyle style, bool multilayer_overlap = false);

/**
 * Gradient of fusedLstmLayer.
 *
 * Inputs:  dHS, dhT, dcT, X, HS, reserve, Wx, Wh, h0, c0
 * Outputs: dX, dWx, dWh, dbias, dh0, dc0
 */
OpPtr fusedLstmLayerGrad(FusedRnnStyle style, bool multilayer_overlap = false);

} // namespace echo::graph::oplib

#endif // ECHO_GRAPH_OPS_OP_FUSED_RNN_H
