/**
 * @file
 * Block interpreter for fused element-wise programs, plus the
 * ew_program.h helpers.
 *
 * Hot path: compiled -O3 like the unfused element-wise kernels.  Each
 * opcode's inner loop performs exactly one primitive arithmetic step,
 * matching the per-op tensor kernels (tensor/ops_elementwise.cc), so
 * -ffp-contract can never merge operations across what used to be two
 * graph nodes — the byte-identity contract of the fusion pass.
 */
#include "graph/ops/op_fused_elementwise.h"

#include <cmath>
#include <sstream>

#include "core/logging.h"
#include "tensor/kernel_par.h"

namespace echo::graph {

const char *
ewOpcodeName(EwOpcode opcode)
{
    switch (opcode) {
    case EwOpcode::kAdd: return "add";
    case EwOpcode::kSub: return "sub";
    case EwOpcode::kMul: return "mul";
    case EwOpcode::kNeg: return "neg";
    case EwOpcode::kAddScalar: return "add_scalar";
    case EwOpcode::kMulScalar: return "mul_scalar";
    case EwOpcode::kSquare: return "square";
    case EwOpcode::kTanh: return "tanh";
    case EwOpcode::kSigmoid: return "sigmoid";
    case EwOpcode::kRelu: return "relu";
    case EwOpcode::kGtZeroMask: return "gt_zero_mask";
    }
    return "?";
}

bool
ewOpcodeIsBinary(EwOpcode opcode)
{
    switch (opcode) {
    case EwOpcode::kAdd:
    case EwOpcode::kSub:
    case EwOpcode::kMul:
        return true;
    default:
        return false;
    }
}

std::string
ewInstrToString(const EwInstr &instr)
{
    std::ostringstream os;
    os << "r" << instr.dst << " = " << ewOpcodeName(instr.opcode)
       << "(r" << instr.a;
    if (ewOpcodeIsBinary(instr.opcode))
        os << ", r" << instr.b;
    if (instr.opcode == EwOpcode::kAddScalar ||
        instr.opcode == EwOpcode::kMulScalar)
        os << ", " << instr.scalar;
    os << ")";
    return os.str();
}

std::string
ewProgramSignature(int num_inputs, int out_reg,
                   const std::vector<EwInstr> &program)
{
    std::ostringstream os;
    os << "in=" << num_inputs << " out=r" << out_reg;
    for (const EwInstr &instr : program)
        os << "; " << ewInstrToString(instr);
    return os.str();
}

} // namespace echo::graph

namespace echo::graph::oplib {

namespace {

/**
 * Elements interpreted per register buffer.  2 KiB per register keeps a
 * typical program's working set inside L1/L2 while amortizing the
 * per-instruction dispatch over the block.
 */
constexpr int64_t kEwBlockElems = 512;

void
validateSpec(const FusedElementwiseSpec &spec)
{
    ECHO_REQUIRE(spec.num_inputs >= 1 && !spec.program.empty(),
                 "fused_ew: empty spec");
    ECHO_REQUIRE(spec.num_regs ==
                     spec.num_inputs +
                         static_cast<int>(spec.program.size()),
                 "fused_ew: register count must be inputs + instrs");
    int next_dst = spec.num_inputs;
    for (const EwInstr &instr : spec.program) {
        ECHO_REQUIRE(instr.dst == next_dst,
                     "fused_ew: program must assign fresh registers "
                     "in order (single assignment)");
        ECHO_REQUIRE(instr.a >= 0 && instr.a < instr.dst,
                     "fused_ew: operand a out of range");
        if (ewOpcodeIsBinary(instr.opcode))
            ECHO_REQUIRE(instr.b >= 0 && instr.b < instr.dst,
                         "fused_ew: operand b out of range");
        ++next_dst;
    }
    ECHO_REQUIRE(spec.out_reg == spec.program.back().dst,
                 "fused_ew: output must be the last assignment");
}

/** dst[j] = op(a[j][, b[j]]) over one block; one primitive op per loop. */
void
runInstr(const EwInstr &instr, const float *a, const float *b,
         float *dst, int64_t len)
{
    const float s = instr.scalar;
    switch (instr.opcode) {
    case EwOpcode::kAdd:
        for (int64_t j = 0; j < len; ++j)
            dst[j] = a[j] + b[j];
        break;
    case EwOpcode::kSub:
        for (int64_t j = 0; j < len; ++j)
            dst[j] = a[j] - b[j];
        break;
    case EwOpcode::kMul:
        for (int64_t j = 0; j < len; ++j)
            dst[j] = a[j] * b[j];
        break;
    case EwOpcode::kNeg:
        for (int64_t j = 0; j < len; ++j)
            dst[j] = -a[j];
        break;
    case EwOpcode::kAddScalar:
        for (int64_t j = 0; j < len; ++j)
            dst[j] = a[j] + s;
        break;
    case EwOpcode::kMulScalar:
        for (int64_t j = 0; j < len; ++j)
            dst[j] = a[j] * s;
        break;
    case EwOpcode::kSquare:
        for (int64_t j = 0; j < len; ++j)
            dst[j] = a[j] * a[j];
        break;
    case EwOpcode::kTanh:
        for (int64_t j = 0; j < len; ++j)
            dst[j] = std::tanh(a[j]);
        break;
    case EwOpcode::kSigmoid:
        for (int64_t j = 0; j < len; ++j)
            dst[j] = 1.0f / (1.0f + std::exp(-a[j]));
        break;
    case EwOpcode::kRelu:
        for (int64_t j = 0; j < len; ++j)
            dst[j] = a[j] > 0.0f ? a[j] : 0.0f;
        break;
    case EwOpcode::kGtZeroMask:
        for (int64_t j = 0; j < len; ++j)
            dst[j] = a[j] > 0.0f ? 1.0f : 0.0f;
        break;
    }
}

} // namespace

FusedElementwiseOp::FusedElementwiseOp(FusedElementwiseSpec spec)
    : spec_(std::move(spec))
{
    validateSpec(spec_);
    signature_ = ewProgramSignature(spec_.num_inputs, spec_.out_reg,
                                    spec_.program);
    program_lowering_ = spec_.program;
}

std::vector<Shape>
FusedElementwiseOp::inferShapes(const std::vector<Shape> &in) const
{
    ECHO_REQUIRE(in.size() ==
                     static_cast<size_t>(spec_.num_inputs),
                 "fused_ew[", spec_.fused_ops, "]: wants ",
                 spec_.num_inputs, " inputs");
    for (const Shape &s : in)
        ECHO_REQUIRE(s == in[0],
                     "fused_ew: all inputs must share one shape");
    return {in[0]};
}

void
FusedElementwiseOp::forward(const std::vector<Tensor> &in,
                            std::vector<Tensor> &out) const
{
    const int64_t n = in[0].numel();
    Tensor result(in[0].shape());
    float *res = result.data();

    // Reused per-thread scratch: forward() is on the steady-state
    // (tape) hot path, where every per-dispatch heap allocation shows
    // up in the zero-malloc audit.  Grow-only resize — the register
    // file is bounded by the largest fused program seen.
    thread_local std::vector<const float *> src_scratch;
    src_scratch.resize(in.size());
    const float **src = src_scratch.data();
    for (size_t i = 0; i < in.size(); ++i)
        src[i] = in[i].data();
    const int num_inputs = spec_.num_inputs;
    const int num_temps = spec_.num_regs - num_inputs;
    const std::vector<EwInstr> &program = spec_.program;

    ops::detail::parallelUnits(n, 1, [&](int64_t i0, int64_t i1) {
        // Per-thread register file; interior values never touch a
        // planned allocation.  Register contents are never read before
        // the program writes them (validateSpec), so stale bytes from
        // the previous dispatch are harmless.
        thread_local std::vector<float> regs_scratch;
        thread_local std::vector<const float *> rd_scratch;
        regs_scratch.resize(static_cast<size_t>(num_temps) *
                            kEwBlockElems);
        rd_scratch.resize(static_cast<size_t>(spec_.num_regs));
        std::vector<float> &regs = regs_scratch;
        std::vector<const float *> &rd = rd_scratch;
        for (int64_t base = i0; base < i1; base += kEwBlockElems) {
            const int64_t len = std::min(kEwBlockElems, i1 - base);
            for (int i = 0; i < num_inputs; ++i)
                rd[static_cast<size_t>(i)] = src[static_cast<size_t>(i)] + base;
            for (const EwInstr &instr : program) {
                float *dst =
                    instr.dst == spec_.out_reg
                        ? res + base
                        : regs.data() +
                              static_cast<size_t>(instr.dst - num_inputs) *
                                  kEwBlockElems;
                runInstr(instr, rd[static_cast<size_t>(instr.a)],
                         instr.b >= 0 ? rd[static_cast<size_t>(instr.b)]
                                      : nullptr,
                         dst, len);
                rd[static_cast<size_t>(instr.dst)] = dst;
            }
        }
    });
    out[0] = std::move(result);
}

std::vector<Val>
FusedElementwiseOp::buildGradient(GradContext &) const
{
    ECHO_PANIC("fused_ew[", spec_.fused_ops,
               "]: differentiate before fusing (the fusion pass runs "
               "after autodiff)");
}

std::vector<KernelDesc>
FusedElementwiseOp::kernels(const std::vector<Shape> &in,
                            const std::vector<Shape> &out) const
{
    KernelDesc k;
    k.category = "elementwise";
    k.flops = totalElems(out) *
              static_cast<int64_t>(spec_.program.size());
    k.bytes_read = totalElems(in) * 4;
    k.bytes_written = totalElems(out) * 4;
    return {k};
}

OpPtr
fusedElementwise(FusedElementwiseSpec spec)
{
    return std::make_shared<FusedElementwiseOp>(std::move(spec));
}

} // namespace echo::graph::oplib
