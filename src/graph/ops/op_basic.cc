/**
 * @file
 * Element-wise, broadcast, and reduction operators.
 *
 * Gradients are themselves built from these primitives (or dedicated
 * *Grad ops mirroring the fused gradient kernels real frameworks ship),
 * so the backward pass is an ordinary subgraph that references forward
 * outputs — the feature maps the Echo pass optimizes.
 */
#include "graph/graph.h"
#include "graph/ops/oplib.h"
#include "tensor/kernel_par.h"
#include "tensor/ops.h"

#include "core/logging.h"

namespace echo::graph::oplib {

namespace {

/** Shared base for unary ops whose output shape equals the input's. */
class UnaryShapeOp : public Op
{
  public:
    std::vector<Shape>
    inferShapes(const std::vector<Shape> &in) const override
    {
        ECHO_REQUIRE(in.size() == 1, name(), ": wants one input");
        return {in[0]};
    }
};

/** Shared base for binary ops requiring identical input shapes. */
class BinarySameShapeOp : public Op
{
  public:
    std::vector<Shape>
    inferShapes(const std::vector<Shape> &in) const override
    {
        ECHO_REQUIRE(in.size() == 2 && in[0] == in[1], name(),
                     ": wants two inputs of equal shape");
        return {in[0]};
    }
};

// ----------------------------------------------------------------------
// Binary element-wise ops
// ----------------------------------------------------------------------

class AddOp : public BinarySameShapeOp
{
  public:
    std::string name() const override { return "add"; }

    void
    forward(const std::vector<Tensor> &in,
            std::vector<Tensor> &out) const override
    {
        out[0] = ops::add(in[0], in[1]);
    }

    std::vector<Val>
    buildGradient(GradContext &ctx) const override
    {
        const Val dy = ctx.out_grads[0];
        return {dy, dy};
    }

    std::vector<EwInstr> elementwiseLowering() const override
    {
        return {{EwOpcode::kAdd, 2, 0, 1}};
    }
};

class SubOp : public BinarySameShapeOp
{
  public:
    std::string name() const override { return "sub"; }

    void
    forward(const std::vector<Tensor> &in,
            std::vector<Tensor> &out) const override
    {
        out[0] = ops::sub(in[0], in[1]);
    }

    std::vector<Val>
    buildGradient(GradContext &ctx) const override
    {
        const Val dy = ctx.out_grads[0];
        if (!dy.defined())
            return {Val{}, Val{}};
        const Val db = ctx.graph->apply1(neg(), {dy});
        return {dy, db};
    }

    std::vector<EwInstr> elementwiseLowering() const override
    {
        return {{EwOpcode::kSub, 2, 0, 1}};
    }
};

class MulOp : public BinarySameShapeOp
{
  public:
    std::string name() const override { return "mul"; }

    void
    forward(const std::vector<Tensor> &in,
            std::vector<Tensor> &out) const override
    {
        out[0] = ops::mul(in[0], in[1]);
    }

    std::vector<Val>
    buildGradient(GradContext &ctx) const override
    {
        const Val dy = ctx.out_grads[0];
        if (!dy.defined())
            return {Val{}, Val{}};
        const Val da =
            ctx.graph->apply1(mul(), {dy, ctx.node->inputs[1]});
        const Val db =
            ctx.graph->apply1(mul(), {dy, ctx.node->inputs[0]});
        return {da, db};
    }

    std::vector<EwInstr> elementwiseLowering() const override
    {
        return {{EwOpcode::kMul, 2, 0, 1}};
    }
};

// ----------------------------------------------------------------------
// Unary element-wise ops
// ----------------------------------------------------------------------

class NegOp : public UnaryShapeOp
{
  public:
    std::string name() const override { return "neg"; }

    void
    forward(const std::vector<Tensor> &in,
            std::vector<Tensor> &out) const override
    {
        out[0] = ops::negate(in[0]);
    }

    std::vector<Val>
    buildGradient(GradContext &ctx) const override
    {
        const Val dy = ctx.out_grads[0];
        if (!dy.defined())
            return {Val{}};
        return {ctx.graph->apply1(neg(), {dy})};
    }

    std::vector<EwInstr> elementwiseLowering() const override
    {
        return {{EwOpcode::kNeg, 1, 0}};
    }
};

class ScaleOp : public UnaryShapeOp
{
  public:
    explicit ScaleOp(float s) : s_(s) {}

    std::string name() const override { return "scale"; }

    void
    forward(const std::vector<Tensor> &in,
            std::vector<Tensor> &out) const override
    {
        out[0] = ops::mulScalar(in[0], s_);
    }

    std::vector<Val>
    buildGradient(GradContext &ctx) const override
    {
        const Val dy = ctx.out_grads[0];
        if (!dy.defined())
            return {Val{}};
        return {ctx.graph->apply1(scale(s_), {dy})};
    }

    std::vector<EwInstr> elementwiseLowering() const override
    {
        return {{EwOpcode::kMulScalar, 1, 0, -1, s_}};
    }

  private:
    float s_;
};

class TanhOp : public UnaryShapeOp
{
  public:
    std::string name() const override { return "tanh"; }

    void
    forward(const std::vector<Tensor> &in,
            std::vector<Tensor> &out) const override
    {
        out[0] = ops::tanh(in[0]);
    }

    std::vector<Val>
    buildGradient(GradContext &ctx) const override
    {
        const Val dy = ctx.out_grads[0];
        if (!dy.defined())
            return {Val{}};
        // References the forward *output* (feature map), like real
        // frameworks: y' = 1 - tanh(x)^2 = 1 - y^2.
        return {ctx.graph->apply1(tanhGrad(), {dy, ctx.node->out(0)})};
    }

    std::vector<EwInstr> elementwiseLowering() const override
    {
        return {{EwOpcode::kTanh, 1, 0}};
    }
};

class SigmoidOp : public UnaryShapeOp
{
  public:
    std::string name() const override { return "sigmoid"; }

    void
    forward(const std::vector<Tensor> &in,
            std::vector<Tensor> &out) const override
    {
        out[0] = ops::sigmoid(in[0]);
    }

    std::vector<Val>
    buildGradient(GradContext &ctx) const override
    {
        const Val dy = ctx.out_grads[0];
        if (!dy.defined())
            return {Val{}};
        return {
            ctx.graph->apply1(sigmoidGrad(), {dy, ctx.node->out(0)})};
    }

    std::vector<EwInstr> elementwiseLowering() const override
    {
        return {{EwOpcode::kSigmoid, 1, 0}};
    }
};

class ReluOp : public UnaryShapeOp
{
  public:
    std::string name() const override { return "relu"; }

    void
    forward(const std::vector<Tensor> &in,
            std::vector<Tensor> &out) const override
    {
        out[0] = ops::relu(in[0]);
    }

    std::vector<Val>
    buildGradient(GradContext &ctx) const override
    {
        const Val dy = ctx.out_grads[0];
        if (!dy.defined())
            return {Val{}};
        return {ctx.graph->apply1(reluGrad(), {dy, ctx.node->out(0)})};
    }

    std::vector<EwInstr> elementwiseLowering() const override
    {
        return {{EwOpcode::kRelu, 1, 0}};
    }
};

/** Base for (dY, Y) -> dX activation-gradient kernels. */
class ActGradOp : public Op
{
  public:
    std::vector<Shape>
    inferShapes(const std::vector<Shape> &in) const override
    {
        ECHO_REQUIRE(in.size() == 2 && in[0] == in[1],
                     name(), ": wants matching (dY, Y)");
        return {in[0]};
    }

    std::vector<Val>
    buildGradient(GradContext &) const override
    {
        ECHO_PANIC(name(), ": second-order gradients are unsupported");
    }
};

class TanhGradOp : public ActGradOp
{
  public:
    std::string name() const override { return "tanh_grad"; }

    void
    forward(const std::vector<Tensor> &in,
            std::vector<Tensor> &out) const override
    {
        // One output-sized allocation (tape steady state); per-element
        // float ops in the lowering's exact order: square, neg, +1,
        // mul — bit-identical to both the op chain and the fused form.
        Tensor r(in[1].shape());
        const float *pd = in[0].data();
        const float *py = in[1].data();
        float *pr = r.data();
        ops::detail::parallelUnits(r.numel(), 1,
                                   [=](int64_t i0, int64_t i1) {
                                       for (int64_t i = i0; i < i1; ++i)
                                           pr[i] = pd[i] *
                                                   (-(py[i] * py[i]) +
                                                    1.0f);
                                   });
        out[0] = std::move(r);
    }

    // Same primitive steps as forward(): square, negate, +1, multiply.
    std::vector<EwInstr> elementwiseLowering() const override
    {
        return {{EwOpcode::kSquare, 2, 1},
                {EwOpcode::kNeg, 3, 2},
                {EwOpcode::kAddScalar, 4, 3, -1, 1.0f},
                {EwOpcode::kMul, 5, 0, 4}};
    }
};

class SigmoidGradOp : public ActGradOp
{
  public:
    std::string name() const override { return "sigmoid_grad"; }

    void
    forward(const std::vector<Tensor> &in,
            std::vector<Tensor> &out) const override
    {
        // Single allocation; float-op order matches the lowering:
        // neg, +1, mul by y, mul by dy.
        Tensor r(in[1].shape());
        const float *pd = in[0].data();
        const float *py = in[1].data();
        float *pr = r.data();
        ops::detail::parallelUnits(r.numel(), 1,
                                   [=](int64_t i0, int64_t i1) {
                                       for (int64_t i = i0; i < i1; ++i)
                                           pr[i] = pd[i] *
                                                   (py[i] *
                                                    (-py[i] + 1.0f));
                                   });
        out[0] = std::move(r);
    }

    std::vector<EwInstr> elementwiseLowering() const override
    {
        return {{EwOpcode::kNeg, 2, 1},
                {EwOpcode::kAddScalar, 3, 2, -1, 1.0f},
                {EwOpcode::kMul, 4, 1, 3},
                {EwOpcode::kMul, 5, 0, 4}};
    }
};

class ReluGradOp : public ActGradOp
{
  public:
    std::string name() const override { return "relu_grad"; }

    void
    forward(const std::vector<Tensor> &in,
            std::vector<Tensor> &out) const override
    {
        // Single allocation; mask-then-multiply per element, matching
        // the lowering's kGtZeroMask + kMul order.
        Tensor r(in[1].shape());
        const float *pd = in[0].data();
        const float *py = in[1].data();
        float *pr = r.data();
        ops::detail::parallelUnits(
            r.numel(), 1, [=](int64_t i0, int64_t i1) {
                for (int64_t i = i0; i < i1; ++i)
                    pr[i] = pd[i] * (py[i] > 0.0f ? 1.0f : 0.0f);
            });
        out[0] = std::move(r);
    }

    std::vector<EwInstr> elementwiseLowering() const override
    {
        return {{EwOpcode::kGtZeroMask, 2, 1},
                {EwOpcode::kMul, 3, 0, 2}};
    }
};

// ----------------------------------------------------------------------
// Constant
// ----------------------------------------------------------------------

class ConstantOp : public Op
{
  public:
    ConstantOp(Shape shape, float value)
        : shape_(std::move(shape)), value_(value)
    {
    }

    std::string name() const override { return "constant"; }

    std::vector<Shape>
    inferShapes(const std::vector<Shape> &in) const override
    {
        ECHO_REQUIRE(in.empty(), "constant takes no inputs");
        return {shape_};
    }

    void
    forward(const std::vector<Tensor> &,
            std::vector<Tensor> &out) const override
    {
        out[0] = Tensor::full(shape_, value_);
    }

    std::vector<Val>
    buildGradient(GradContext &) const override
    {
        return {};
    }

    std::vector<KernelDesc>
    kernels(const std::vector<Shape> &,
            const std::vector<Shape> &out) const override
    {
        KernelDesc k;
        k.category = "elementwise";
        k.bytes_written = totalElems(out) * 4;
        return {k};
    }

  private:
    Shape shape_;
    float value_;
};

// ----------------------------------------------------------------------
// Broadcast / reduce ops
// ----------------------------------------------------------------------

class AddBiasOp : public Op
{
  public:
    std::string name() const override { return "add_bias"; }

    std::vector<Shape>
    inferShapes(const std::vector<Shape> &in) const override
    {
        ECHO_REQUIRE(in.size() == 2 && in[1].ndim() == 1 &&
                         in[0].dim(-1) == in[1][0],
                     "add_bias wants ([...xN], [N])");
        return {in[0]};
    }

    void
    forward(const std::vector<Tensor> &in,
            std::vector<Tensor> &out) const override
    {
        out[0] = ops::addBias(in[0], in[1]);
    }

    std::vector<Val>
    buildGradient(GradContext &ctx) const override
    {
        const Val dy = ctx.out_grads[0];
        if (!dy.defined())
            return {Val{}, Val{}};
        const Val db = ctx.graph->apply1(sumToBias(), {dy});
        return {dy, db};
    }
};

class SumToBiasOp : public Op
{
  public:
    std::string name() const override { return "sum_to_bias"; }

    std::vector<Shape>
    inferShapes(const std::vector<Shape> &in) const override
    {
        ECHO_REQUIRE(in.size() == 1 && in[0].ndim() >= 1,
                     "sum_to_bias wants one input");
        return {Shape({in[0].dim(-1)})};
    }

    void
    forward(const std::vector<Tensor> &in,
            std::vector<Tensor> &out) const override
    {
        out[0] = ops::sumToBias(in[0], in[0].shape().dim(-1));
    }

    std::vector<Val>
    buildGradient(GradContext &) const override
    {
        ECHO_PANIC("sum_to_bias: second-order unsupported");
    }
};

class BroadcastAddBTOp : public Op
{
  public:
    std::string name() const override { return "broadcast_add_bt"; }

    std::vector<Shape>
    inferShapes(const std::vector<Shape> &in) const override
    {
        ECHO_REQUIRE(in.size() == 2 && in[0].ndim() == 3 &&
                         in[1].ndim() == 2 && in[0][0] == in[1][0] &&
                         in[0][2] == in[1][1],
                     "broadcast_add_bt wants ([BxTxH], [BxH])");
        return {in[0]};
    }

    void
    forward(const std::vector<Tensor> &in,
            std::vector<Tensor> &out) const override
    {
        out[0] = ops::broadcastAddBT(in[0], in[1]);
    }

    std::vector<Val>
    buildGradient(GradContext &ctx) const override
    {
        const Val dy = ctx.out_grads[0];
        if (!dy.defined())
            return {Val{}, Val{}};
        const Val dq = ctx.graph->apply1(sumAxis1(), {dy});
        return {dy, dq};
    }
};

class BroadcastToBTOp : public Op
{
  public:
    explicit BroadcastToBTOp(int64_t t) : t_(t) {}

    std::string name() const override { return "broadcast_to_bt"; }

    std::vector<Shape>
    inferShapes(const std::vector<Shape> &in) const override
    {
        ECHO_REQUIRE(in.size() == 1 && in[0].ndim() == 2,
                     "broadcast_to_bt wants [BxH]");
        return {Shape({in[0][0], t_, in[0][1]})};
    }

    void
    forward(const std::vector<Tensor> &in,
            std::vector<Tensor> &out) const override
    {
        const Tensor zeros =
            Tensor::zeros(Shape({in[0].shape()[0], t_,
                                 in[0].shape()[1]}));
        out[0] = ops::broadcastAddBT(zeros, in[0]);
    }

    std::vector<Val>
    buildGradient(GradContext &ctx) const override
    {
        const Val dy = ctx.out_grads[0];
        if (!dy.defined())
            return {Val{}};
        return {ctx.graph->apply1(sumAxis1(), {dy})};
    }

  private:
    int64_t t_;
};

class SumAxis1Op : public Op
{
  public:
    std::string name() const override { return "sum_axis1"; }

    std::vector<Shape>
    inferShapes(const std::vector<Shape> &in) const override
    {
        ECHO_REQUIRE(in.size() == 1 && in[0].ndim() == 3,
                     "sum_axis1 wants [BxTxH]");
        return {Shape({in[0][0], in[0][2]})};
    }

    void
    forward(const std::vector<Tensor> &in,
            std::vector<Tensor> &out) const override
    {
        out[0] = ops::sumAxis1(in[0]);
    }

    std::vector<Val>
    buildGradient(GradContext &ctx) const override
    {
        const Val dy = ctx.out_grads[0];
        if (!dy.defined())
            return {Val{}};
        const int64_t t = Graph::shapeOf(ctx.node->inputs[0])[1];
        return {ctx.graph->apply1(broadcastToBT(t), {dy})};
    }
};

class DotLastAxisOp : public Op
{
  public:
    std::string name() const override { return "dot_last_axis"; }

    std::vector<Shape>
    inferShapes(const std::vector<Shape> &in) const override
    {
        ECHO_REQUIRE(in.size() == 2 && in[1].ndim() == 1 &&
                         in[0].dim(-1) == in[1][0],
                     "dot_last_axis wants ([...xH], [H])");
        return {in[0].dropAxis(in[0].ndim() - 1)};
    }

    void
    forward(const std::vector<Tensor> &in,
            std::vector<Tensor> &out) const override
    {
        out[0] = ops::dotLastAxis(in[0], in[1]);
    }

    std::vector<Val>
    buildGradient(GradContext &ctx) const override
    {
        const Val dy = ctx.out_grads[0];
        if (!dy.defined())
            return {Val{}, Val{}};
        const Val dx = ctx.graph->apply1(outerLastAxis(),
                                         {dy, ctx.node->inputs[1]});
        const Val scaled = ctx.graph->apply1(
            scaleRowsBT(), {ctx.node->inputs[0], dy});
        const Val dv = ctx.graph->apply1(sumToBias(), {scaled});
        return {dx, dv};
    }
};

class OuterLastAxisOp : public Op
{
  public:
    std::string name() const override { return "outer_last_axis"; }

    std::vector<Shape>
    inferShapes(const std::vector<Shape> &in) const override
    {
        ECHO_REQUIRE(in.size() == 2 && in[1].ndim() == 1,
                     "outer_last_axis wants ([...], [H])");
        return {in[0].insertAxis(in[0].ndim(), in[1][0])};
    }

    void
    forward(const std::vector<Tensor> &in,
            std::vector<Tensor> &out) const override
    {
        out[0] = ops::outerLastAxis(in[0], in[1]);
    }

    std::vector<Val>
    buildGradient(GradContext &ctx) const override
    {
        const Val dy = ctx.out_grads[0];
        if (!dy.defined())
            return {Val{}, Val{}};
        const Val ds = ctx.graph->apply1(
            dotLastAxis(), {dy, ctx.node->inputs[1]});
        const Val scaled = ctx.graph->apply1(
            scaleRowsBT(), {dy, ctx.node->inputs[0]});
        const Val dv = ctx.graph->apply1(sumToBias(), {scaled});
        return {ds, dv};
    }
};

class ScaleRowsBTOp : public Op
{
  public:
    std::string name() const override { return "scale_rows_bt"; }

    std::vector<Shape>
    inferShapes(const std::vector<Shape> &in) const override
    {
        ECHO_REQUIRE(in.size() == 2 && in[0].ndim() == 3 &&
                         in[1].ndim() == 2 && in[0][0] == in[1][0] &&
                         in[0][1] == in[1][1],
                     "scale_rows_bt wants ([BxTxH], [BxT])");
        return {in[0]};
    }

    void
    forward(const std::vector<Tensor> &in,
            std::vector<Tensor> &out) const override
    {
        out[0] = ops::scaleRowsBT(in[0], in[1]);
    }

    std::vector<Val>
    buildGradient(GradContext &ctx) const override
    {
        const Val dy = ctx.out_grads[0];
        if (!dy.defined())
            return {Val{}, Val{}};
        const Val dx = ctx.graph->apply1(scaleRowsBT(),
                                         {dy, ctx.node->inputs[1]});
        const Val dw = ctx.graph->apply1(rowDotBT(),
                                         {dy, ctx.node->inputs[0]});
        return {dx, dw};
    }
};

class RowDotBTOp : public Op
{
  public:
    std::string name() const override { return "row_dot_bt"; }

    std::vector<Shape>
    inferShapes(const std::vector<Shape> &in) const override
    {
        ECHO_REQUIRE(in.size() == 2 && in[0].ndim() == 3 &&
                         in[0] == in[1],
                     "row_dot_bt wants matching [BxTxH]");
        return {Shape({in[0][0], in[0][1]})};
    }

    void
    forward(const std::vector<Tensor> &in,
            std::vector<Tensor> &out) const override
    {
        out[0] = ops::rowDotBT(in[0], in[1]);
    }

    std::vector<Val>
    buildGradient(GradContext &ctx) const override
    {
        const Val dy = ctx.out_grads[0];
        if (!dy.defined())
            return {Val{}, Val{}};
        const Val da = ctx.graph->apply1(scaleRowsBT(),
                                         {ctx.node->inputs[1], dy});
        const Val db = ctx.graph->apply1(scaleRowsBT(),
                                         {ctx.node->inputs[0], dy});
        return {da, db};
    }
};

} // namespace

OpPtr add() { return std::make_shared<AddOp>(); }
OpPtr sub() { return std::make_shared<SubOp>(); }
OpPtr mul() { return std::make_shared<MulOp>(); }
OpPtr neg() { return std::make_shared<NegOp>(); }
OpPtr scale(float s) { return std::make_shared<ScaleOp>(s); }
OpPtr tanhOp() { return std::make_shared<TanhOp>(); }
OpPtr sigmoidOp() { return std::make_shared<SigmoidOp>(); }
OpPtr reluOp() { return std::make_shared<ReluOp>(); }
OpPtr tanhGrad() { return std::make_shared<TanhGradOp>(); }
OpPtr sigmoidGrad() { return std::make_shared<SigmoidGradOp>(); }
OpPtr reluGrad() { return std::make_shared<ReluGradOp>(); }

OpPtr
constant(Shape shape, float value)
{
    return std::make_shared<ConstantOp>(std::move(shape), value);
}

OpPtr addBias() { return std::make_shared<AddBiasOp>(); }
OpPtr sumToBias() { return std::make_shared<SumToBiasOp>(); }
OpPtr broadcastAddBT() { return std::make_shared<BroadcastAddBTOp>(); }
OpPtr broadcastToBT(int64_t t)
{
    return std::make_shared<BroadcastToBTOp>(t);
}
OpPtr sumAxis1() { return std::make_shared<SumAxis1Op>(); }
OpPtr dotLastAxis() { return std::make_shared<DotLastAxisOp>(); }
OpPtr outerLastAxis() { return std::make_shared<OuterLastAxisOp>(); }
OpPtr scaleRowsBT() { return std::make_shared<ScaleRowsBTOp>(); }
OpPtr rowDotBT() { return std::make_shared<RowDotBTOp>(); }

} // namespace echo::graph::oplib
