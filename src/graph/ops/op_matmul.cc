/**
 * @file
 * GEMM-family graph operators — the paper's "fully-connected layers".
 *
 * These are the only ops with is_gemm kernel descriptors: the GPU model
 * costs them through the layout-sensitive tiled-GEMM model, and the Echo
 * pass refuses to recompute them (cheapToRecompute() == false).
 */
#include "graph/graph.h"
#include "graph/ops/oplib.h"
#include "tensor/ops.h"

#include "core/logging.h"

namespace echo::graph::oplib {

namespace {

class GemmOp : public Op
{
  public:
    GemmOp(bool trans_a, bool trans_b)
        : trans_a_(trans_a), trans_b_(trans_b)
    {
    }

    std::string name() const override { return "gemm"; }

    bool cheapToRecompute() const override { return false; }

    std::vector<Shape>
    inferShapes(const std::vector<Shape> &in) const override
    {
        ECHO_REQUIRE(in.size() == 2 && in[0].ndim() == 2 &&
                         in[1].ndim() == 2,
                     "gemm wants two matrices");
        const int64_t m = trans_a_ ? in[0][1] : in[0][0];
        const int64_t k = trans_a_ ? in[0][0] : in[0][1];
        const int64_t kb = trans_b_ ? in[1][1] : in[1][0];
        const int64_t n = trans_b_ ? in[1][0] : in[1][1];
        ECHO_REQUIRE(k == kb, "gemm inner dim mismatch: ",
                     in[0].toString(), (trans_a_ ? "^T" : ""), " * ",
                     in[1].toString(), (trans_b_ ? "^T" : ""));
        return {Shape({m, n})};
    }

    void
    forward(const std::vector<Tensor> &in,
            std::vector<Tensor> &out) const override
    {
        out[0] = ops::gemm(in[0], trans_a_, in[1], trans_b_);
    }

    std::vector<Val>
    buildGradient(GradContext &ctx) const override
    {
        const Val dc = ctx.out_grads[0];
        if (!dc.defined())
            return {Val{}, Val{}};
        Graph &g = *ctx.graph;
        const Val a = ctx.node->inputs[0];
        const Val b = ctx.node->inputs[1];

        Val da;
        if (!trans_a_) {
            // dA = dC * op(B)^T
            da = g.apply1(gemm(false, !trans_b_), {dc, b});
        } else {
            // dA = op(B) * dC^T
            da = g.apply1(gemm(trans_b_, true), {b, dc});
        }
        Val db;
        if (!trans_b_) {
            // dB = op(A)^T * dC
            db = g.apply1(gemm(!trans_a_, false), {a, dc});
        } else {
            // dB = dC^T * op(A)
            db = g.apply1(gemm(true, trans_a_), {dc, a});
        }
        return {da, db};
    }

    std::vector<KernelDesc>
    kernels(const std::vector<Shape> &in,
            const std::vector<Shape> &out) const override
    {
        KernelDesc k;
        k.category = "fully_connected";
        k.is_gemm = true;
        k.gemm_m = out[0][0];
        k.gemm_n = out[0][1];
        k.gemm_k = trans_a_ ? in[0][0] : in[0][1];
        k.gemm_trans_a = trans_a_;
        k.gemm_trans_b = trans_b_;
        k.flops = 2 * k.gemm_m * k.gemm_n * k.gemm_k;
        k.bytes_read = (in[0].numel() + in[1].numel()) * 4;
        k.bytes_written = out[0].numel() * 4;
        return {k};
    }

  private:
    bool trans_a_;
    bool trans_b_;
};

class BmmOp : public Op
{
  public:
    BmmOp(bool trans_a, bool trans_b)
        : trans_a_(trans_a), trans_b_(trans_b)
    {
    }

    std::string name() const override { return "bmm"; }

    bool cheapToRecompute() const override { return false; }

    std::vector<Shape>
    inferShapes(const std::vector<Shape> &in) const override
    {
        ECHO_REQUIRE(in.size() == 2 && in[0].ndim() == 3 &&
                         in[1].ndim() == 3 && in[0][0] == in[1][0],
                     "bmm wants two batched matrices");
        const int64_t m = trans_a_ ? in[0][2] : in[0][1];
        const int64_t k = trans_a_ ? in[0][1] : in[0][2];
        const int64_t kb = trans_b_ ? in[1][2] : in[1][1];
        const int64_t n = trans_b_ ? in[1][1] : in[1][2];
        ECHO_REQUIRE(k == kb, "bmm inner dim mismatch");
        return {Shape({in[0][0], m, n})};
    }

    void
    forward(const std::vector<Tensor> &in,
            std::vector<Tensor> &out) const override
    {
        out[0] = ops::bmm(in[0], trans_a_, in[1], trans_b_);
    }

    std::vector<Val>
    buildGradient(GradContext &ctx) const override
    {
        const Val dc = ctx.out_grads[0];
        if (!dc.defined())
            return {Val{}, Val{}};
        Graph &g = *ctx.graph;
        const Val a = ctx.node->inputs[0];
        const Val b = ctx.node->inputs[1];

        Val da;
        if (!trans_a_) {
            da = g.apply1(bmm(false, !trans_b_), {dc, b});
        } else {
            da = g.apply1(bmm(trans_b_, true), {b, dc});
        }
        Val db;
        if (!trans_b_) {
            db = g.apply1(bmm(!trans_a_, false), {a, dc});
        } else {
            db = g.apply1(bmm(true, trans_a_), {dc, a});
        }
        return {da, db};
    }

    std::vector<KernelDesc>
    kernels(const std::vector<Shape> &in,
            const std::vector<Shape> &out) const override
    {
        const int64_t batch = out[0][0];
        KernelDesc k;
        k.category = "fully_connected";
        k.is_gemm = true;
        k.gemm_m = out[0][1];
        k.gemm_n = out[0][2];
        k.gemm_k = trans_a_ ? in[0][1] : in[0][2];
        k.gemm_trans_a = trans_a_;
        k.gemm_trans_b = trans_b_;
        // One batched launch doing `batch` independent GEMMs.
        k.flops = 2 * batch * k.gemm_m * k.gemm_n * k.gemm_k;
        k.bytes_read = (in[0].numel() + in[1].numel()) * 4;
        k.bytes_written = out[0].numel() * 4;
        return {k};
    }

  private:
    bool trans_a_;
    bool trans_b_;
};

} // namespace

OpPtr
gemm(bool trans_a, bool trans_b)
{
    return std::make_shared<GemmOp>(trans_a, trans_b);
}

OpPtr
bmm(bool trans_a, bool trans_b)
{
    return std::make_shared<BmmOp>(trans_a, trans_b);
}

} // namespace echo::graph::oplib
