/**
 * @file
 * Factory functions for the primitive-operator library.
 *
 * Each factory returns a shared, stateless (or attribute-carrying) Op.
 * The op set mirrors what an MXNet-class framework lowers LSTM models
 * into: GEMMs, element-wise kernels, broadcast/reduce kernels, shape
 * plumbing, and the NN-specific heads — plus the fused RNN-layer ops that
 * model cuDNN (declared in op_fused_rnn.h).
 *
 * Implementations: op_basic.cc (element-wise, broadcast, reduce),
 * op_matmul.cc (gemm/bmm), op_shape.cc (reshape/slice/concat/...),
 * op_nn.cc (softmax, layernorm, cross-entropy, embedding, conv).
 */
#ifndef ECHO_GRAPH_OPS_OPLIB_H
#define ECHO_GRAPH_OPS_OPLIB_H

#include <vector>

#include "graph/op.h"

namespace echo::graph::oplib {

// --- element-wise (op_basic.cc) ---------------------------------------

OpPtr add();
OpPtr sub();
OpPtr mul();
OpPtr neg();
OpPtr scale(float s);
OpPtr tanhOp();
OpPtr sigmoidOp();
OpPtr reluOp();

/** dX = dY * (1 - Y^2); inputs (dY, Y). */
OpPtr tanhGrad();
/** dX = dY * Y * (1 - Y); inputs (dY, Y). */
OpPtr sigmoidGrad();
/** dX = dY * (Y > 0); inputs (dY, Y). */
OpPtr reluGrad();

/** No-input op producing a constant-filled tensor. */
OpPtr constant(Shape shape, float value);

// --- broadcast / reduce (op_basic.cc) ---------------------------------

/** X [... x N] + bias [N]. */
OpPtr addBias();
/** Sum all leading axes of [... x N] down to [N]. */
OpPtr sumToBias();
/** X [BxTxH] + q [BxH] broadcast over T. */
OpPtr broadcastAddBT();
/** Replicate q [BxH] across T time steps -> [BxTxH]. */
OpPtr broadcastToBT(int64_t t);
/** Sum [BxTxH] over T -> [BxH]. */
OpPtr sumAxis1();
/** [BxTxH] . v[H] -> [BxT]. */
OpPtr dotLastAxis();
/** s [BxT] (x) v [H] -> [BxTxH]. */
OpPtr outerLastAxis();
/** Scale each H-row of [BxTxH] by w [BxT]. */
OpPtr scaleRowsBT();
/** Per-(b,t) dot of two [BxTxH] -> [BxT]. */
OpPtr rowDotBT();

// --- matmul (op_matmul.cc) ---------------------------------------------

/** C = op(A) * op(B); the workhorse fully-connected kernel. */
OpPtr gemm(bool trans_a, bool trans_b);
/** Batched matmul over the leading axis. */
OpPtr bmm(bool trans_a, bool trans_b);

// --- shape plumbing (op_shape.cc) --------------------------------------

OpPtr reshape(Shape new_shape);
OpPtr transpose2d();
OpPtr permute3d(std::vector<int> perm);
OpPtr concat(int axis);
OpPtr sliceOp(int axis, int64_t begin, int64_t end);
/** Scatter dY back into a zero tensor of the pre-slice extent. */
OpPtr sliceGrad(int axis, int64_t begin, int64_t end, int64_t extent);
/**
 * Reverse along @p axis.  @p parallel selects between the paper's fixed
 * batch-parallel kernel and MXNet's original batch-sequential one, which
 * differ only in the performance model (coalesced flag).
 */
OpPtr reverseAxis(int axis, bool parallel);

// --- NN heads (op_nn.cc) ------------------------------------------------

OpPtr softmax();
/** dX = Y * (dY - sum(dY * Y)); inputs (dY, Y). */
OpPtr softmaxGrad();
/** Outputs (normalized, rstd). */
OpPtr layerNorm(float eps = 1e-5f);
/** Inputs (dY, Y, rstd) -> dX. */
OpPtr layerNormGrad();
/** Inputs (logits [NxV], labels [N]) -> mean NLL scalar. */
OpPtr crossEntropyLoss();
/** Inputs (dLoss, logits, labels) -> dLogits. */
OpPtr crossEntropyGrad();
/** Inputs (table [VxH], ids) -> [ids... x H]. */
OpPtr embedding();
/** Inputs (ids, dY) -> dTable (scatter-add). */
OpPtr embeddingGrad(Shape table_shape);

// --- CNN proxy (op_nn.cc) -----------------------------------------------

/** Same-padded 2-D convolution, inputs (X [NxCxHxW], W [KxCxRxS]). */
OpPtr conv2d(int stride);
/** Inputs (dY, W) -> dX. */
OpPtr conv2dGradInput(int stride, Shape x_shape);
/** Inputs (dY, X) -> dW. */
OpPtr conv2dGradWeight(int stride, Shape w_shape);
/** Global average pool [NxCxHxW] -> [NxC]. */
OpPtr globalAvgPool();
/** Inputs (dY, X) -> dX for globalAvgPool. */
OpPtr globalAvgPoolGrad();

} // namespace echo::graph::oplib

#endif // ECHO_GRAPH_OPS_OPLIB_H
