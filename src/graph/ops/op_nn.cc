/**
 * @file
 * Neural-network head operators: softmax, layer normalization (with the
 * stashed rstd statistic), cross-entropy, embedding lookup, and the CNN
 * proxy's convolution / pooling ops used by the Fig. 4(a) motivation
 * experiment.
 */
#include <cmath>

#include "graph/graph.h"
#include "graph/ops/oplib.h"
#include "tensor/ops.h"

#include "core/logging.h"

namespace echo::graph::oplib {

namespace {

class SoftmaxOp : public Op
{
  public:
    std::string name() const override { return "softmax"; }

    std::vector<Shape>
    inferShapes(const std::vector<Shape> &in) const override
    {
        ECHO_REQUIRE(in.size() == 1, "softmax wants one input");
        return {in[0]};
    }

    void
    forward(const std::vector<Tensor> &in,
            std::vector<Tensor> &out) const override
    {
        out[0] = ops::softmaxLastAxis(in[0]);
    }

    std::vector<Val>
    buildGradient(GradContext &ctx) const override
    {
        const Val dy = ctx.out_grads[0];
        if (!dy.defined())
            return {Val{}};
        return {
            ctx.graph->apply1(softmaxGrad(), {dy, ctx.node->out(0)})};
    }

    std::vector<KernelDesc>
    kernels(const std::vector<Shape> &in,
            const std::vector<Shape> &out) const override
    {
        KernelDesc k;
        k.category = "softmax";
        k.flops = 4 * totalElems(in);
        k.bytes_read = totalElems(in) * 4;
        k.bytes_written = totalElems(out) * 4;
        return {k};
    }
};

class SoftmaxGradOp : public Op
{
  public:
    std::string name() const override { return "softmax_grad"; }

    std::vector<Shape>
    inferShapes(const std::vector<Shape> &in) const override
    {
        ECHO_REQUIRE(in.size() == 2 && in[0] == in[1],
                     "softmax_grad wants matching (dY, Y)");
        return {in[0]};
    }

    void
    forward(const std::vector<Tensor> &in,
            std::vector<Tensor> &out) const override
    {
        const Tensor &dy = in[0];
        const Tensor &y = in[1];
        const int64_t n = y.shape().dim(-1);
        const int64_t rows = y.numel() / n;
        Tensor dx(y.shape());
        for (int64_t r = 0; r < rows; ++r) {
            double dot = 0.0;
            for (int64_t j = 0; j < n; ++j)
                dot += dy.data()[r * n + j] * y.data()[r * n + j];
            for (int64_t j = 0; j < n; ++j)
                dx.data()[r * n + j] =
                    y.data()[r * n + j] *
                    (dy.data()[r * n + j] - static_cast<float>(dot));
        }
        out[0] = std::move(dx);
    }

    std::vector<Val>
    buildGradient(GradContext &) const override
    {
        ECHO_PANIC("softmax_grad: second-order unsupported");
    }

    std::vector<KernelDesc>
    kernels(const std::vector<Shape> &in,
            const std::vector<Shape> &out) const override
    {
        KernelDesc k;
        k.category = "softmax";
        k.flops = 3 * totalElems(out);
        k.bytes_read = totalElems(in) * 4;
        k.bytes_written = totalElems(out) * 4;
        return {k};
    }
};

class LayerNormOp : public Op
{
  public:
    explicit LayerNormOp(float eps) : eps_(eps) {}

    std::string name() const override { return "layer_norm"; }

    std::vector<Shape>
    inferShapes(const std::vector<Shape> &in) const override
    {
        ECHO_REQUIRE(in.size() == 1 && in[0].ndim() >= 1,
                     "layer_norm wants one input");
        Shape stats = in[0].dropAxis(in[0].ndim() - 1);
        if (stats.ndim() == 0)
            stats = Shape({1});
        return {in[0], stats};
    }

    void
    forward(const std::vector<Tensor> &in,
            std::vector<Tensor> &out) const override
    {
        const Tensor &x = in[0];
        const int64_t n = x.shape().dim(-1);
        const int64_t rows = x.numel() / n;
        Shape stats_shape = x.shape().dropAxis(x.shape().ndim() - 1);
        if (stats_shape.ndim() == 0)
            stats_shape = Shape({1});
        Tensor y(x.shape());
        Tensor rstd(stats_shape);
        for (int64_t r = 0; r < rows; ++r) {
            const float *src = x.data() + r * n;
            double mean = 0.0;
            for (int64_t j = 0; j < n; ++j)
                mean += src[j];
            mean /= static_cast<double>(n);
            double var = 0.0;
            for (int64_t j = 0; j < n; ++j) {
                const double d = src[j] - mean;
                var += d * d;
            }
            var /= static_cast<double>(n);
            const float r_inv =
                static_cast<float>(1.0 / std::sqrt(var + eps_));
            rstd.data()[r] = r_inv;
            float *dst = y.data() + r * n;
            for (int64_t j = 0; j < n; ++j)
                dst[j] =
                    (src[j] - static_cast<float>(mean)) * r_inv;
        }
        out[0] = std::move(y);
        out[1] = std::move(rstd);
    }

    std::vector<Val>
    buildGradient(GradContext &ctx) const override
    {
        const Val dy = ctx.out_grads[0];
        if (!dy.defined())
            return {Val{}};
        // The gradient consumes the normalized output and the stashed
        // rstd statistic (both feature maps of this op).
        return {ctx.graph->apply1(
            layerNormGrad(), {dy, ctx.node->out(0), ctx.node->out(1)})};
    }

    std::vector<KernelDesc>
    kernels(const std::vector<Shape> &in,
            const std::vector<Shape> &out) const override
    {
        KernelDesc k;
        k.category = "layer_norm";
        k.flops = 6 * totalElems(in);
        k.bytes_read = totalElems(in) * 4;
        k.bytes_written = totalElems(out) * 4;
        return {k};
    }

  private:
    float eps_;
};

class LayerNormGradOp : public Op
{
  public:
    std::string name() const override { return "layer_norm_grad"; }

    std::vector<Shape>
    inferShapes(const std::vector<Shape> &in) const override
    {
        ECHO_REQUIRE(in.size() == 3 && in[0] == in[1],
                     "layer_norm_grad wants (dY, Y, rstd)");
        return {in[0]};
    }

    void
    forward(const std::vector<Tensor> &in,
            std::vector<Tensor> &out) const override
    {
        const Tensor &dy = in[0];
        const Tensor &y = in[1];
        const Tensor &rstd = in[2];
        const int64_t n = y.shape().dim(-1);
        const int64_t rows = y.numel() / n;
        Tensor dx(y.shape());
        for (int64_t r = 0; r < rows; ++r) {
            double mean_dy = 0.0;
            double mean_dyy = 0.0;
            for (int64_t j = 0; j < n; ++j) {
                mean_dy += dy.data()[r * n + j];
                mean_dyy +=
                    dy.data()[r * n + j] * y.data()[r * n + j];
            }
            mean_dy /= static_cast<double>(n);
            mean_dyy /= static_cast<double>(n);
            const float r_inv = rstd.data()[r];
            for (int64_t j = 0; j < n; ++j)
                dx.data()[r * n + j] =
                    r_inv *
                    static_cast<float>(dy.data()[r * n + j] - mean_dy -
                                       y.data()[r * n + j] * mean_dyy);
        }
        out[0] = std::move(dx);
    }

    std::vector<Val>
    buildGradient(GradContext &) const override
    {
        ECHO_PANIC("layer_norm_grad: second-order unsupported");
    }

    std::vector<KernelDesc>
    kernels(const std::vector<Shape> &in,
            const std::vector<Shape> &out) const override
    {
        KernelDesc k;
        k.category = "layer_norm";
        k.flops = 8 * totalElems(out);
        k.bytes_read = totalElems(in) * 4;
        k.bytes_written = totalElems(out) * 4;
        return {k};
    }
};

class CrossEntropyLossOp : public Op
{
  public:
    std::string name() const override { return "cross_entropy"; }

    std::vector<Shape>
    inferShapes(const std::vector<Shape> &in) const override
    {
        ECHO_REQUIRE(in.size() == 2 && in[0].ndim() == 2 &&
                         in[1].numel() == in[0][0],
                     "cross_entropy wants (logits [NxV], labels [N])");
        return {Shape({1})};
    }

    void
    forward(const std::vector<Tensor> &in,
            std::vector<Tensor> &out) const override
    {
        out[0] = ops::crossEntropy(in[0], in[1]);
    }

    std::vector<Val>
    buildGradient(GradContext &ctx) const override
    {
        const Val dl = ctx.out_grads[0];
        if (!dl.defined())
            return {Val{}, Val{}};
        const Val dlogits = ctx.graph->apply1(
            crossEntropyGrad(),
            {dl, ctx.node->inputs[0], ctx.node->inputs[1]});
        return {dlogits, Val{}};
    }

    std::vector<KernelDesc>
    kernels(const std::vector<Shape> &in,
            const std::vector<Shape> &out) const override
    {
        KernelDesc k;
        k.category = "softmax";
        k.flops = 5 * totalElems(in);
        k.bytes_read = totalElems(in) * 4;
        k.bytes_written = totalElems(out) * 4;
        return {k};
    }
};

class CrossEntropyGradOp : public Op
{
  public:
    std::string name() const override { return "cross_entropy_grad"; }

    std::vector<Shape>
    inferShapes(const std::vector<Shape> &in) const override
    {
        ECHO_REQUIRE(in.size() == 3 && in[1].ndim() == 2,
                     "cross_entropy_grad wants (dL, logits, labels)");
        return {in[1]};
    }

    void
    forward(const std::vector<Tensor> &in,
            std::vector<Tensor> &out) const override
    {
        // Fold the upstream dL into the masking pass: one output-sized
        // allocation, so the tape's arena slot always serves it.
        out[0] = ops::crossEntropyGrad(in[1], in[2], in[0].at(0));
    }

    std::vector<Val>
    buildGradient(GradContext &) const override
    {
        ECHO_PANIC("cross_entropy_grad: second-order unsupported");
    }

    std::vector<KernelDesc>
    kernels(const std::vector<Shape> &in,
            const std::vector<Shape> &out) const override
    {
        KernelDesc k;
        k.category = "softmax";
        k.flops = 4 * totalElems(out);
        k.bytes_read = totalElems(in) * 4;
        k.bytes_written = totalElems(out) * 4;
        return {k};
    }
};

class EmbeddingOp : public Op
{
  public:
    std::string name() const override { return "embedding"; }

    std::vector<Shape>
    inferShapes(const std::vector<Shape> &in) const override
    {
        ECHO_REQUIRE(in.size() == 2 && in[0].ndim() == 2,
                     "embedding wants (table [VxH], ids)");
        return {in[1].insertAxis(in[1].ndim(), in[0][1])};
    }

    void
    forward(const std::vector<Tensor> &in,
            std::vector<Tensor> &out) const override
    {
        out[0] = ops::embeddingLookup(in[0], in[1]);
    }

    std::vector<Val>
    buildGradient(GradContext &ctx) const override
    {
        const Val dy = ctx.out_grads[0];
        if (!dy.defined())
            return {Val{}, Val{}};
        const Shape &table_shape = Graph::shapeOf(ctx.node->inputs[0]);
        const Val dtable = ctx.graph->apply1(
            embeddingGrad(table_shape), {ctx.node->inputs[1], dy});
        return {dtable, Val{}};
    }

    std::vector<KernelDesc>
    kernels(const std::vector<Shape> &in,
            const std::vector<Shape> &out) const override
    {
        KernelDesc k;
        k.category = "embedding";
        // Gather: reads the looked-up rows plus the id vector.
        k.bytes_read = (totalElems(out) + totalElems({in[1]})) * 4;
        k.bytes_written = totalElems(out) * 4;
        return {k};
    }
};

class EmbeddingGradOp : public Op
{
  public:
    explicit EmbeddingGradOp(Shape table_shape)
        : table_shape_(std::move(table_shape))
    {
    }

    std::string name() const override { return "embedding_grad"; }

    std::vector<Shape>
    inferShapes(const std::vector<Shape> &in) const override
    {
        ECHO_REQUIRE(in.size() == 2, "embedding_grad wants (ids, dY)");
        return {table_shape_};
    }

    void
    forward(const std::vector<Tensor> &in,
            std::vector<Tensor> &out) const override
    {
        out[0] = ops::embeddingGrad(table_shape_, in[0], in[1]);
    }

    std::vector<Val>
    buildGradient(GradContext &) const override
    {
        ECHO_PANIC("embedding_grad: second-order unsupported");
    }

    std::vector<KernelDesc>
    kernels(const std::vector<Shape> &in,
            const std::vector<Shape> &out) const override
    {
        KernelDesc k;
        k.category = "embedding";
        k.bytes_read = totalElems(in) * 4;
        k.bytes_written = totalElems(out) * 4;
        return {k};
    }

  private:
    Shape table_shape_;
};

// ----------------------------------------------------------------------
// CNN proxy ops (Fig. 4(a) motivation experiment)
// ----------------------------------------------------------------------

/** Output spatial extent of a same-padded, strided convolution. */
int64_t
convOutExtent(int64_t in, int stride)
{
    return (in + stride - 1) / stride;
}

class Conv2dOp : public Op
{
  public:
    explicit Conv2dOp(int stride) : stride_(stride) {}

    std::string name() const override { return "conv2d"; }

    bool cheapToRecompute() const override { return false; }

    std::vector<Shape>
    inferShapes(const std::vector<Shape> &in) const override
    {
        ECHO_REQUIRE(in.size() == 2 && in[0].ndim() == 4 &&
                         in[1].ndim() == 4 && in[0][1] == in[1][1],
                     "conv2d wants (X [NxCxHxW], W [KxCxRxS])");
        return {Shape({in[0][0], in[1][0],
                       convOutExtent(in[0][2], stride_),
                       convOutExtent(in[0][3], stride_)})};
    }

    void
    forward(const std::vector<Tensor> &in,
            std::vector<Tensor> &out) const override
    {
        const Tensor &x = in[0];
        const Tensor &w = in[1];
        const int64_t n = x.shape()[0], c = x.shape()[1];
        const int64_t h = x.shape()[2], wd = x.shape()[3];
        const int64_t kf = w.shape()[0], r = w.shape()[2],
                      s = w.shape()[3];
        const int64_t ho = convOutExtent(h, stride_);
        const int64_t wo = convOutExtent(wd, stride_);
        const int64_t pad_h = ((ho - 1) * stride_ + r - h) / 2;
        const int64_t pad_w = ((wo - 1) * stride_ + s - wd) / 2;

        Tensor y = Tensor::zeros(Shape({n, kf, ho, wo}));
        for (int64_t i = 0; i < n; ++i)
            for (int64_t k = 0; k < kf; ++k)
                for (int64_t oy = 0; oy < ho; ++oy)
                    for (int64_t ox = 0; ox < wo; ++ox) {
                        double acc = 0.0;
                        for (int64_t ci = 0; ci < c; ++ci)
                            for (int64_t ry = 0; ry < r; ++ry)
                                for (int64_t rx = 0; rx < s; ++rx) {
                                    const int64_t iy =
                                        oy * stride_ + ry - pad_h;
                                    const int64_t ix =
                                        ox * stride_ + rx - pad_w;
                                    if (iy < 0 || iy >= h || ix < 0 ||
                                        ix >= wd)
                                        continue;
                                    acc += x.data()[((i * c + ci) * h +
                                                     iy) * wd + ix] *
                                           w.data()[((k * c + ci) * r +
                                                     ry) * s + rx];
                                }
                        y.data()[((i * kf + k) * ho + oy) * wo + ox] =
                            static_cast<float>(acc);
                    }
        out[0] = std::move(y);
    }

    std::vector<Val>
    buildGradient(GradContext &ctx) const override
    {
        const Val dy = ctx.out_grads[0];
        if (!dy.defined())
            return {Val{}, Val{}};
        const Shape &x_shape = Graph::shapeOf(ctx.node->inputs[0]);
        const Shape &w_shape = Graph::shapeOf(ctx.node->inputs[1]);
        const Val dx = ctx.graph->apply1(
            conv2dGradInput(stride_, x_shape),
            {dy, ctx.node->inputs[1]});
        const Val dw = ctx.graph->apply1(
            conv2dGradWeight(stride_, w_shape),
            {dy, ctx.node->inputs[0]});
        return {dx, dw};
    }

    std::vector<KernelDesc>
    kernels(const std::vector<Shape> &in,
            const std::vector<Shape> &out) const override
    {
        // Implicit-GEMM lowering: M = N*Ho*Wo (large), so convolutions
        // run near peak FLOPS in the model, giving CNNs their
        // compute-bound, batch-saturating behaviour.
        KernelDesc k;
        k.category = "convolution";
        k.is_gemm = true;
        k.gemm_m = out[0][0] * out[0][2] * out[0][3];
        k.gemm_n = in[1][0];
        k.gemm_k = in[1][1] * in[1][2] * in[1][3];
        k.flops = 2 * k.gemm_m * k.gemm_n * k.gemm_k;
        k.bytes_read = (totalElems(in)) * 4;
        k.bytes_written = totalElems(out) * 4;
        return {k};
    }

  private:
    int stride_;
};

class Conv2dGradInputOp : public Op
{
  public:
    Conv2dGradInputOp(int stride, Shape x_shape)
        : stride_(stride), x_shape_(std::move(x_shape))
    {
    }

    std::string name() const override { return "conv2d_grad_input"; }

    std::vector<Shape>
    inferShapes(const std::vector<Shape> &in) const override
    {
        ECHO_REQUIRE(in.size() == 2, "conv2d_grad_input wants (dY, W)");
        return {x_shape_};
    }

    void
    forward(const std::vector<Tensor> &in,
            std::vector<Tensor> &out) const override
    {
        const Tensor &dy = in[0];
        const Tensor &w = in[1];
        const int64_t n = x_shape_[0], c = x_shape_[1];
        const int64_t h = x_shape_[2], wd = x_shape_[3];
        const int64_t kf = w.shape()[0], r = w.shape()[2],
                      s = w.shape()[3];
        const int64_t ho = dy.shape()[2], wo = dy.shape()[3];
        const int64_t pad_h = ((ho - 1) * stride_ + r - h) / 2;
        const int64_t pad_w = ((wo - 1) * stride_ + s - wd) / 2;

        Tensor dx = Tensor::zeros(x_shape_);
        for (int64_t i = 0; i < n; ++i)
            for (int64_t k = 0; k < kf; ++k)
                for (int64_t oy = 0; oy < ho; ++oy)
                    for (int64_t ox = 0; ox < wo; ++ox) {
                        const float g =
                            dy.data()[((i * kf + k) * ho + oy) * wo +
                                      ox];
                        for (int64_t ci = 0; ci < c; ++ci)
                            for (int64_t ry = 0; ry < r; ++ry)
                                for (int64_t rx = 0; rx < s; ++rx) {
                                    const int64_t iy =
                                        oy * stride_ + ry - pad_h;
                                    const int64_t ix =
                                        ox * stride_ + rx - pad_w;
                                    if (iy < 0 || iy >= h || ix < 0 ||
                                        ix >= wd)
                                        continue;
                                    dx.data()[((i * c + ci) * h + iy) *
                                              wd + ix] +=
                                        g *
                                        w.data()[((k * c + ci) * r +
                                                  ry) * s + rx];
                                }
                    }
        out[0] = std::move(dx);
    }

    std::vector<Val>
    buildGradient(GradContext &) const override
    {
        ECHO_PANIC("conv2d_grad_input: second-order unsupported");
    }

    std::vector<KernelDesc>
    kernels(const std::vector<Shape> &in,
            const std::vector<Shape> &out) const override
    {
        KernelDesc k;
        k.category = "convolution";
        k.is_gemm = true;
        k.gemm_m = out[0][0] * out[0][2] * out[0][3];
        k.gemm_n = out[0][1];
        k.gemm_k = in[1][0] * in[1][2] * in[1][3];
        k.flops = 2 * k.gemm_m * k.gemm_n * k.gemm_k;
        k.bytes_read = totalElems(in) * 4;
        k.bytes_written = totalElems(out) * 4;
        return {k};
    }

  private:
    int stride_;
    Shape x_shape_;
};

class Conv2dGradWeightOp : public Op
{
  public:
    Conv2dGradWeightOp(int stride, Shape w_shape)
        : stride_(stride), w_shape_(std::move(w_shape))
    {
    }

    std::string name() const override { return "conv2d_grad_weight"; }

    std::vector<Shape>
    inferShapes(const std::vector<Shape> &in) const override
    {
        ECHO_REQUIRE(in.size() == 2, "conv2d_grad_weight wants (dY, X)");
        return {w_shape_};
    }

    void
    forward(const std::vector<Tensor> &in,
            std::vector<Tensor> &out) const override
    {
        const Tensor &dy = in[0];
        const Tensor &x = in[1];
        const int64_t n = x.shape()[0], c = x.shape()[1];
        const int64_t h = x.shape()[2], wd = x.shape()[3];
        const int64_t kf = w_shape_[0], r = w_shape_[2],
                      s = w_shape_[3];
        const int64_t ho = dy.shape()[2], wo = dy.shape()[3];
        const int64_t pad_h = ((ho - 1) * stride_ + r - h) / 2;
        const int64_t pad_w = ((wo - 1) * stride_ + s - wd) / 2;

        Tensor dw = Tensor::zeros(w_shape_);
        for (int64_t i = 0; i < n; ++i)
            for (int64_t k = 0; k < kf; ++k)
                for (int64_t oy = 0; oy < ho; ++oy)
                    for (int64_t ox = 0; ox < wo; ++ox) {
                        const float g =
                            dy.data()[((i * kf + k) * ho + oy) * wo +
                                      ox];
                        for (int64_t ci = 0; ci < c; ++ci)
                            for (int64_t ry = 0; ry < r; ++ry)
                                for (int64_t rx = 0; rx < s; ++rx) {
                                    const int64_t iy =
                                        oy * stride_ + ry - pad_h;
                                    const int64_t ix =
                                        ox * stride_ + rx - pad_w;
                                    if (iy < 0 || iy >= h || ix < 0 ||
                                        ix >= wd)
                                        continue;
                                    dw.data()[((k * c + ci) * r + ry) *
                                              s + rx] +=
                                        g * x.data()[((i * c + ci) * h +
                                                      iy) * wd + ix];
                                }
                    }
        out[0] = std::move(dw);
    }

    std::vector<Val>
    buildGradient(GradContext &) const override
    {
        ECHO_PANIC("conv2d_grad_weight: second-order unsupported");
    }

    std::vector<KernelDesc>
    kernels(const std::vector<Shape> &in,
            const std::vector<Shape> &out) const override
    {
        KernelDesc k;
        k.category = "convolution";
        k.is_gemm = true;
        k.gemm_m = out[0][0];
        k.gemm_n = out[0][1] * out[0][2] * out[0][3];
        k.gemm_k = in[0][0] * in[0][2] * in[0][3];
        k.flops = 2 * k.gemm_m * k.gemm_n * k.gemm_k;
        k.bytes_read = totalElems(in) * 4;
        k.bytes_written = totalElems(out) * 4;
        return {k};
    }

  private:
    int stride_;
    Shape w_shape_;
};

class GlobalAvgPoolOp : public Op
{
  public:
    std::string name() const override { return "global_avg_pool"; }

    std::vector<Shape>
    inferShapes(const std::vector<Shape> &in) const override
    {
        ECHO_REQUIRE(in.size() == 1 && in[0].ndim() == 4,
                     "global_avg_pool wants [NxCxHxW]");
        return {Shape({in[0][0], in[0][1]})};
    }

    void
    forward(const std::vector<Tensor> &in,
            std::vector<Tensor> &out) const override
    {
        const Tensor &x = in[0];
        const int64_t n = x.shape()[0], c = x.shape()[1];
        const int64_t hw = x.shape()[2] * x.shape()[3];
        Tensor y(Shape({n, c}));
        for (int64_t i = 0; i < n * c; ++i) {
            double acc = 0.0;
            for (int64_t j = 0; j < hw; ++j)
                acc += x.data()[i * hw + j];
            y.data()[i] =
                static_cast<float>(acc / static_cast<double>(hw));
        }
        out[0] = std::move(y);
    }

    std::vector<Val>
    buildGradient(GradContext &ctx) const override
    {
        const Val dy = ctx.out_grads[0];
        if (!dy.defined())
            return {Val{}};
        return {ctx.graph->apply1(globalAvgPoolGrad(),
                                  {dy, ctx.node->inputs[0]})};
    }
};

class GlobalAvgPoolGradOp : public Op
{
  public:
    std::string name() const override { return "global_avg_pool_grad"; }

    std::vector<Shape>
    inferShapes(const std::vector<Shape> &in) const override
    {
        ECHO_REQUIRE(in.size() == 2 && in[1].ndim() == 4,
                     "global_avg_pool_grad wants (dY, X)");
        return {in[1]};
    }

    void
    forward(const std::vector<Tensor> &in,
            std::vector<Tensor> &out) const override
    {
        const Tensor &dy = in[0];
        const Shape &xs = in[1].shape();
        const int64_t hw = xs[2] * xs[3];
        Tensor dx(xs);
        const float inv = 1.0f / static_cast<float>(hw);
        for (int64_t i = 0; i < xs[0] * xs[1]; ++i)
            for (int64_t j = 0; j < hw; ++j)
                dx.data()[i * hw + j] = dy.data()[i] * inv;
        out[0] = std::move(dx);
    }

    std::vector<Val>
    buildGradient(GradContext &) const override
    {
        ECHO_PANIC("global_avg_pool_grad: second-order unsupported");
    }
};

} // namespace

OpPtr softmax() { return std::make_shared<SoftmaxOp>(); }
OpPtr softmaxGrad() { return std::make_shared<SoftmaxGradOp>(); }
OpPtr layerNorm(float eps) { return std::make_shared<LayerNormOp>(eps); }
OpPtr layerNormGrad() { return std::make_shared<LayerNormGradOp>(); }
OpPtr crossEntropyLoss()
{
    return std::make_shared<CrossEntropyLossOp>();
}
OpPtr crossEntropyGrad()
{
    return std::make_shared<CrossEntropyGradOp>();
}
OpPtr embedding() { return std::make_shared<EmbeddingOp>(); }
OpPtr
embeddingGrad(Shape table_shape)
{
    return std::make_shared<EmbeddingGradOp>(std::move(table_shape));
}
OpPtr conv2d(int stride) { return std::make_shared<Conv2dOp>(stride); }
OpPtr
conv2dGradInput(int stride, Shape x_shape)
{
    return std::make_shared<Conv2dGradInputOp>(stride,
                                               std::move(x_shape));
}
OpPtr
conv2dGradWeight(int stride, Shape w_shape)
{
    return std::make_shared<Conv2dGradWeightOp>(stride,
                                                std::move(w_shape));
}
OpPtr globalAvgPool() { return std::make_shared<GlobalAvgPoolOp>(); }
OpPtr
globalAvgPoolGrad()
{
    return std::make_shared<GlobalAvgPoolGradOp>();
}

} // namespace echo::graph::oplib
