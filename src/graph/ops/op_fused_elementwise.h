/**
 * @file
 * FusedElementwiseOp: one graph node that evaluates a whole
 * single-consumer element-wise chain (compiled by graph/fusion.h into
 * an EwInstr register program) in a single parallel pass over the data.
 *
 * Interior values of the chain live in small per-block register
 * buffers, never in planned tensor allocations — that is the fusion
 * pass's whole memory and bandwidth win.  Execution is byte-identical
 * to running the original ops node-by-node: every element is produced
 * by the same primitive arithmetic steps in the same order, and the
 * block/chunk decomposition only decides which thread computes an
 * element, never what it is computed from.
 */
#ifndef ECHO_GRAPH_OPS_OP_FUSED_ELEMENTWISE_H
#define ECHO_GRAPH_OPS_OP_FUSED_ELEMENTWISE_H

#include <string>
#include <vector>

#include "graph/op.h"

namespace echo::graph::oplib {

/** Everything a fused node needs to execute and be audited. */
struct FusedElementwiseSpec
{
    /** Arity of the fused node (registers 0..num_inputs-1). */
    int num_inputs = 0;
    /** Total registers the program touches (inputs + one per instr). */
    int num_regs = 0;
    /** Register holding the result (== program.back().dst). */
    int out_reg = -1;
    /** Straight-line single-assignment instruction list. */
    std::vector<EwInstr> program;
    /** Original op names in execution order, e.g. "mul,mul,add". */
    std::string fused_ops;
};

/**
 * The fused op.  Exposed as a class (unlike the oplib factories) so
 * the fusion pass and analysis::auditFusion can read the spec back off
 * a rewritten node.
 */
class FusedElementwiseOp : public Op
{
  public:
    explicit FusedElementwiseOp(FusedElementwiseSpec spec);

    std::string name() const override { return "fused_ew"; }

    std::vector<Shape>
    inferShapes(const std::vector<Shape> &in) const override;

    void forward(const std::vector<Tensor> &in,
                 std::vector<Tensor> &out) const override;

    /** Fusion runs after autodiff; there is nothing to differentiate. */
    std::vector<Val> buildGradient(GradContext &ctx) const override;

    /** One fused launch: all the chain's flops, frontier-only traffic. */
    std::vector<KernelDesc>
    kernels(const std::vector<Shape> &in,
            const std::vector<Shape> &out) const override;

    /** A fused node is itself a valid (cheap) fused program. */
    std::vector<EwInstr> elementwiseLowering() const override
    {
        return program_lowering_;
    }

    const FusedElementwiseSpec &spec() const { return spec_; }

    /** Canonical program text (value-equality metadata for audits). */
    const std::string &signature() const { return signature_; }

  private:
    FusedElementwiseSpec spec_;
    std::string signature_;
    std::vector<EwInstr> program_lowering_;
};

/** Factory; validates the spec (single assignment, operand bounds). */
OpPtr fusedElementwise(FusedElementwiseSpec spec);

} // namespace echo::graph::oplib

#endif // ECHO_GRAPH_OPS_OP_FUSED_ELEMENTWISE_H
