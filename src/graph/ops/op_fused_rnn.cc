#include "graph/ops/op_fused_rnn.h"

#include <cmath>

#include "core/logging.h"
#include "graph/graph.h"
#include "graph/ops/oplib.h"
#include "tensor/ops.h"

namespace echo::graph::oplib {

namespace {

float
sigmoidf(float x)
{
    return 1.0f / (1.0f + std::exp(-x));
}

/**
 * Emit the GEMM kernel descriptors shared by both fused styles.
 * @p fast selects the transposed Y^T = W X^T form (M = rows of W).
 */
KernelDesc
rnnGemmDesc(int64_t m_batch, int64_t n_wide, int64_t k, bool fast,
            int launches)
{
    KernelDesc d;
    d.category = "fully_connected";
    d.is_gemm = true;
    if (fast) {
        d.gemm_m = n_wide; // rows of W (4H)
        d.gemm_n = m_batch;
    } else {
        d.gemm_m = m_batch; // batch rows
        d.gemm_n = n_wide;
    }
    d.gemm_k = k;
    d.flops = 2 * d.gemm_m * d.gemm_n * d.gemm_k;
    d.bytes_read = (d.gemm_m * d.gemm_k + d.gemm_k * d.gemm_n) * 4;
    d.bytes_written = d.gemm_m * d.gemm_n * 4;
    d.launches = launches;
    return d;
}

class FusedLstmLayerOp : public Op
{
  public:
    FusedLstmLayerOp(FusedRnnStyle style, bool overlap)
        : style_(style), overlap_(overlap)
    {
    }

    std::string name() const override
    {
        return style_ == FusedRnnStyle::kCudnn ? "fused_lstm_cudnn"
                                               : "fused_lstm_eco";
    }

    bool cheapToRecompute() const override { return false; }

    std::vector<Shape>
    inferShapes(const std::vector<Shape> &in) const override
    {
        ECHO_REQUIRE(in.size() == 6, "fused_lstm wants 6 inputs");
        const Shape &x = in[0];
        ECHO_REQUIRE(x.ndim() == 3, "X must be [TxBxI]");
        const int64_t t = x[0], b = x[1], i = x[2];
        const int64_t h4 = in[1][0];
        ECHO_REQUIRE(h4 % 4 == 0 && in[1][1] == i,
                     "Wx must be [4HxI], got ", in[1].toString());
        const int64_t h = h4 / 4;
        ECHO_REQUIRE(in[2] == Shape({4 * h, h}), "Wh must be [4HxH]");
        ECHO_REQUIRE(in[3] == Shape({4 * h}), "bias must be [4H]");
        ECHO_REQUIRE(in[4] == Shape({b, h}) && in[5] == Shape({b, h}),
                     "h0/c0 must be [BxH]");
        return {Shape({t, b, h}), Shape({b, h}), Shape({b, h}),
                Shape({t, b, 5 * h})};
    }

    void
    forward(const std::vector<Tensor> &in,
            std::vector<Tensor> &out) const override
    {
        const Tensor &x = in[0];
        const Tensor &wx = in[1];
        const Tensor &wh = in[2];
        const Tensor &bias = in[3];
        const int64_t t = x.shape()[0], b = x.shape()[1];
        const int64_t h = wh.shape()[1];

        Tensor hs(Shape({t, b, h}));
        Tensor reserve(Shape({t, b, 5 * h}));
        Tensor h_prev = in[4].clone();
        Tensor c_prev = in[5].clone();

        for (int64_t step = 0; step < t; ++step) {
            const Tensor x_t =
                ops::slice(x, 0, step, step + 1)
                    .reshape(Shape({b, x.shape()[2]}));
            Tensor gates = ops::addBias(
                ops::add(ops::gemm(x_t, false, wx, true),
                         ops::gemm(h_prev, false, wh, true)),
                bias);
            Tensor h_t(Shape({b, h}));
            Tensor c_t(Shape({b, h}));
            for (int64_t r = 0; r < b; ++r) {
                for (int64_t j = 0; j < h; ++j) {
                    const float gi =
                        sigmoidf(gates.at(r, 0 * h + j));
                    const float gf =
                        sigmoidf(gates.at(r, 1 * h + j));
                    const float gg =
                        std::tanh(gates.at(r, 2 * h + j));
                    const float go =
                        sigmoidf(gates.at(r, 3 * h + j));
                    const float c =
                        gf * c_prev.at(r, j) + gi * gg;
                    c_t.at(r, j) = c;
                    h_t.at(r, j) = go * std::tanh(c);
                    float *res =
                        reserve.data() + ((step * b + r) * 5 * h);
                    res[0 * h + j] = gi;
                    res[1 * h + j] = gf;
                    res[2 * h + j] = gg;
                    res[3 * h + j] = go;
                    res[4 * h + j] = c;
                }
            }
            for (int64_t r = 0; r < b; ++r)
                for (int64_t j = 0; j < h; ++j)
                    hs.at(step, r, j) = h_t.at(r, j);
            h_prev = std::move(h_t);
            c_prev = std::move(c_t);
        }
        out[0] = std::move(hs);
        out[1] = std::move(h_prev);
        out[2] = std::move(c_prev);
        out[3] = std::move(reserve);
    }

    std::vector<Val>
    buildGradient(GradContext &ctx) const override
    {
        Graph &g = *ctx.graph;
        Node *n = ctx.node;
        auto grad_or_zero = [&](int out_idx) {
            if (ctx.out_grads[static_cast<size_t>(out_idx)].defined())
                return ctx.out_grads[static_cast<size_t>(out_idx)];
            return g.apply1(
                constant(n->out_shapes[static_cast<size_t>(out_idx)],
                         0.0f),
                {});
        };
        const Val dhs = grad_or_zero(0);
        const Val dht = grad_or_zero(1);
        const Val dct = grad_or_zero(2);
        std::vector<Val> grads = g.apply(
            fusedLstmLayerGrad(style_, overlap_),
            {dhs, dht, dct, n->inputs[0], n->out(0), n->out(3),
             n->inputs[1], n->inputs[2], n->inputs[4], n->inputs[5]});
        // grads = dX, dWx, dWh, dbias, dh0, dc0 — matching input order
        // X, Wx, Wh, bias, h0, c0.
        return {grads[0], grads[1], grads[2],
                grads[3], grads[4], grads[5]};
    }

    std::vector<KernelDesc>
    kernels(const std::vector<Shape> &in,
            const std::vector<Shape> &out) const override
    {
        const int64_t t = in[0][0], b = in[0][1], i = in[0][2];
        const int64_t h = in[2][1];
        const bool fast = style_ == FusedRnnStyle::kEco;

        // Wavefront overlap across stacked layers hides part of the
        // serialized per-step work (cuDNN only).
        const double overlap_scale = overlap_ ? 0.8 : 1.0;

        std::vector<KernelDesc> ks;
        // Input projection, batched across all T steps.
        ks.push_back(rnnGemmDesc(t * b, 4 * h, i, fast, 1));
        // Recurrent projection, per step (cannot be batched).
        ks.push_back(rnnGemmDesc(b, 4 * h, h, fast,
                                 static_cast<int>(t)));
        ks.back().time_scale = overlap_scale;
        // One fused point-wise kernel per step (gates + cell update).
        KernelDesc pw;
        pw.category = "elementwise";
        pw.launches = static_cast<int>(t);
        pw.flops = b * h * 16;
        pw.bytes_read = b * 6 * h * 4;
        pw.bytes_written = b * 7 * h * 4;
        pw.time_scale = overlap_scale;
        ks.push_back(pw);
        if (fast) {
            // Boundary layout transforms [TxBxI] <-> [TxIxB].
            KernelDesc tr;
            tr.category = "transpose";
            tr.launches = 2;
            tr.bytes_read = (in[0].numel() + out[0].numel()) / 2 * 4;
            tr.bytes_written = tr.bytes_read;
            ks.push_back(tr);
        }
        return ks;
    }

  private:
    FusedRnnStyle style_;
    bool overlap_;
};

class FusedLstmLayerGradOp : public Op
{
  public:
    FusedLstmLayerGradOp(FusedRnnStyle style, bool overlap)
        : style_(style), overlap_(overlap)
    {
    }

    std::string name() const override
    {
        return style_ == FusedRnnStyle::kCudnn
                   ? "fused_lstm_cudnn_grad"
                   : "fused_lstm_eco_grad";
    }

    bool cheapToRecompute() const override { return false; }

    std::vector<Shape>
    inferShapes(const std::vector<Shape> &in) const override
    {
        ECHO_REQUIRE(in.size() == 10, "fused_lstm_grad wants 10 inputs");
        const Shape &x = in[3];
        const Shape &wx = in[6];
        const Shape &wh = in[7];
        const int64_t b = x[1];
        const int64_t h = wh[1];
        return {x, wx, wh, Shape({4 * h}), Shape({b, h}),
                Shape({b, h})};
    }

    void
    forward(const std::vector<Tensor> &in,
            std::vector<Tensor> &out) const override
    {
        const Tensor &dhs = in[0];
        const Tensor &dht = in[1];
        const Tensor &dct = in[2];
        const Tensor &x = in[3];
        const Tensor &hs = in[4];
        const Tensor &reserve = in[5];
        const Tensor &wx = in[6];
        const Tensor &wh = in[7];
        const Tensor &h0 = in[8];
        const Tensor &c0 = in[9];

        const int64_t t = x.shape()[0], b = x.shape()[1],
                      i = x.shape()[2];
        const int64_t h = wh.shape()[1];

        Tensor dx = Tensor::zeros(x.shape());
        Tensor dwx = Tensor::zeros(wx.shape());
        Tensor dwh = Tensor::zeros(wh.shape());
        Tensor dbias = Tensor::zeros(Shape({4 * h}));
        Tensor dh = dht.clone();
        Tensor dc = dct.clone();

        for (int64_t step = t - 1; step >= 0; --step) {
            // Fold in the per-step hidden-state gradient.
            for (int64_t r = 0; r < b; ++r)
                for (int64_t j = 0; j < h; ++j)
                    dh.at(r, j) += dhs.at(step, r, j);

            Tensor dgates(Shape({b, 4 * h}));
            for (int64_t r = 0; r < b; ++r) {
                const float *res =
                    reserve.data() + ((step * b + r) * 5 * h);
                for (int64_t j = 0; j < h; ++j) {
                    const float gi = res[0 * h + j];
                    const float gf = res[1 * h + j];
                    const float gg = res[2 * h + j];
                    const float go = res[3 * h + j];
                    const float c = res[4 * h + j];
                    const float c_prev =
                        step > 0 ? reserve.data()[(((step - 1) * b +
                                                    r) * 5 + 4) * h + j]
                                 : c0.at(r, j);
                    const float tc = std::tanh(c);
                    const float dht_ = dh.at(r, j);
                    const float do_ = dht_ * tc;
                    float dc_ = dc.at(r, j) +
                                dht_ * go * (1.0f - tc * tc);
                    const float di = dc_ * gg;
                    const float dg = dc_ * gi;
                    const float df = dc_ * c_prev;
                    // Save the gradient flowing into c_{t-1}.
                    dc.at(r, j) = dc_ * gf;
                    dgates.at(r, 0 * h + j) =
                        di * gi * (1.0f - gi);
                    dgates.at(r, 1 * h + j) =
                        df * gf * (1.0f - gf);
                    dgates.at(r, 2 * h + j) =
                        dg * (1.0f - gg * gg);
                    dgates.at(r, 3 * h + j) =
                        do_ * go * (1.0f - go);
                }
            }

            const Tensor x_t = ops::slice(x, 0, step, step + 1)
                                   .reshape(Shape({b, i}));
            const Tensor h_prev =
                step > 0 ? ops::slice(hs, 0, step - 1, step)
                               .reshape(Shape({b, h}))
                         : h0;

            // dX_t = dgates * Wx ; dh_prev = dgates * Wh
            const Tensor dx_t = ops::gemm(dgates, false, wx, false);
            dh = ops::gemm(dgates, false, wh, false);
            for (int64_t r = 0; r < b; ++r)
                for (int64_t j = 0; j < i; ++j)
                    dx.at(step, r, j) = dx_t.at(r, j);

            // Weight gradients accumulate across steps.
            ops::accumulateInto(
                dwx, ops::gemm(dgates, true, x_t, false));
            ops::accumulateInto(
                dwh, ops::gemm(dgates, true, h_prev, false));
            ops::accumulateInto(dbias,
                                ops::sumToBias(dgates, 4 * h));
        }

        out[0] = std::move(dx);
        out[1] = std::move(dwx);
        out[2] = std::move(dwh);
        out[3] = std::move(dbias);
        out[4] = std::move(dh);
        out[5] = std::move(dc);
    }

    std::vector<Val>
    buildGradient(GradContext &) const override
    {
        ECHO_PANIC("fused_lstm_grad: second-order unsupported");
    }

    std::vector<KernelDesc>
    kernels(const std::vector<Shape> &in,
            const std::vector<Shape> &out) const override
    {
        const Shape &x = in[3];
        const int64_t t = x[0], b = x[1], i = x[2];
        const int64_t h = in[7][1];
        const bool fast = style_ == FusedRnnStyle::kEco;

        const double overlap_scale = overlap_ ? 0.8 : 1.0;

        std::vector<KernelDesc> ks;
        // Per-step fused point-wise gradient kernel.
        KernelDesc pw;
        pw.category = "elementwise";
        pw.launches = static_cast<int>(t);
        pw.flops = b * h * 24;
        pw.bytes_read = b * 8 * h * 4;
        pw.bytes_written = b * 5 * h * 4;
        pw.time_scale = overlap_scale;
        ks.push_back(pw);
        // Per-step data-gradient GEMM (recurrent path).
        ks.push_back(rnnGemmDesc(b, h, 4 * h, fast,
                                 static_cast<int>(t)));
        ks.back().time_scale = overlap_scale;
        // Batched input-gradient GEMM across all steps.
        ks.push_back(rnnGemmDesc(t * b, i, 4 * h, fast, 1));
        // Weight-gradient GEMMs, batched across steps: M = 4H always
        // (these are never skewed-slow).
        for (int64_t n_dim : {i, h}) {
            KernelDesc wg;
            wg.category = "fully_connected";
            wg.is_gemm = true;
            wg.gemm_m = 4 * h;
            wg.gemm_n = n_dim;
            wg.gemm_k = t * b;
            wg.flops = 2 * wg.gemm_m * wg.gemm_n * wg.gemm_k;
            wg.bytes_read =
                (wg.gemm_m * wg.gemm_k + wg.gemm_k * wg.gemm_n) * 4;
            wg.bytes_written = wg.gemm_m * wg.gemm_n * 4;
            ks.push_back(wg);
        }
        (void)out;
        return ks;
    }

  private:
    FusedRnnStyle style_;
    bool overlap_;
};

} // namespace

OpPtr
fusedLstmLayer(FusedRnnStyle style, bool multilayer_overlap)
{
    return std::make_shared<FusedLstmLayerOp>(style, multilayer_overlap);
}

OpPtr
fusedLstmLayerGrad(FusedRnnStyle style, bool multilayer_overlap)
{
    return std::make_shared<FusedLstmLayerGradOp>(style,
                                                  multilayer_overlap);
}

} // namespace echo::graph::oplib
