#include "graph/autodiff.h"

#include <algorithm>

#include "core/logging.h"
#include "graph/ops/oplib.h"

namespace echo::graph {

GradientResult
backward(Graph &graph, const Val &loss, const std::vector<Val> &wrt)
{
    ECHO_REQUIRE(loss.defined() &&
                     Graph::shapeOf(loss).numel() == 1,
                 "backward needs a scalar loss");

    const std::vector<Node *> order = reachableNodes({loss});

    // Running gradient per value.  Accumulation is EAGER: the moment a
    // second contribution appears, an add node folds it into the running
    // gradient (MXNet's AddTo semantics).  Lazy accumulation would keep
    // every per-consumer contribution alive until the producer is
    // visited — O(T) simultaneously live gradient buffers on recurrent
    // graphs, which would dwarf the feature maps the Echo pass targets.
    std::unordered_map<Val, Val, ValHash> running_grad;

    const Phase saved_phase = graph.phase();
    graph.setPhase(Phase::kBackward);

    auto add_contribution = [&](const Val &v, const Val &g) {
        auto it = running_grad.find(v);
        if (it == running_grad.end()) {
            running_grad.emplace(v, g);
        } else {
            it->second = graph.apply1(oplib::add(), {it->second, g},
                                      "grad_acc");
        }
    };

    {
        TagScope tag(graph, loss.node->layer_tag);
        const Val seed = graph.apply1(
            oplib::constant(Graph::shapeOf(loss), 1.0f), {},
            "grad_seed");
        add_contribution(loss, seed);
    }

    GradientResult result;

    auto summed_grad = [&](const Val &v) -> Val {
        auto it = running_grad.find(v);
        if (it == running_grad.end())
            return Val{};
        result.all_grads[v] = it->second;
        return it->second;
    };

    for (auto it = order.rbegin(); it != order.rend(); ++it) {
        Node *node = *it;
        if (node->kind != NodeKind::kOp)
            continue;

        TagScope tag(graph, node->layer_tag);
        graph.setTimeStep(node->time_step);

        GradContext ctx;
        ctx.graph = &graph;
        ctx.node = node;
        bool any = false;
        for (int i = 0; i < node->numOutputs(); ++i) {
            const Val g = summed_grad(node->out(i));
            ctx.out_grads.push_back(g);
            any = any || g.defined();
        }
        if (!any)
            continue;

        const std::vector<Val> in_grads =
            node->op->buildGradient(ctx);
        ECHO_CHECK(in_grads.size() == node->inputs.size(), "op ",
                   node->op->name(), " returned ", in_grads.size(),
                   " input grads for ", node->inputs.size(),
                   " inputs");
        for (size_t i = 0; i < in_grads.size(); ++i)
            if (in_grads[i].defined())
                add_contribution(node->inputs[i], in_grads[i]);
    }
    graph.setTimeStep(-1);

    // Finalize weight gradients (zero constants for unused weights so
    // the optimizer sees a gradient for every parameter).
    for (const Val &w : wrt) {
        Val g = summed_grad(w);
        if (!g.defined()) {
            TagScope tag(graph, w.node->layer_tag);
            g = graph.apply1(
                oplib::constant(Graph::shapeOf(w), 0.0f), {},
                "zero_grad");
            result.all_grads[w] = g;
        }
        result.weight_grads.push_back(g);
    }

    graph.setPhase(saved_phase);
    return result;
}

} // namespace echo::graph
