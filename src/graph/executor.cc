#include "graph/executor.h"

#include <condition_variable>
#include <cstdlib>
#include <deque>
#include <exception>
#include <mutex>
#include <string_view>

#include "core/logging.h"
#include "core/thread_pool.h"
#include "graph/gemm_keys.h"
#include "graph/tape.h"
#include "obs/counters.h"
#include "obs/trace.h"
#include "tune/tuner.h"

namespace echo::graph {

namespace {

/**
 * kAuto refuses to parallelize schedules below this size: the ready
 * queue costs one pool hand-off per node, which only pays off once
 * there are enough nodes for independent work to overlap.
 */
constexpr size_t kMinParallelNodes = 16;

/** Per-op-execution counters shared by both execution strategies. */
void
countOp(const Node *node)
{
    static obs::Counter &c_ops = obs::counter("exec.ops");
    static obs::Counter &c_replays = obs::counter("exec.replays");
    c_ops.add(1);
    if (node->phase == Phase::kRecompute)
        c_replays.add(1);
}

/** ECHO_TAPE=on|1 routes Executor::run through the compiled tape. */
bool
tapeEnvEnabled()
{
    static const bool on = [] {
        const char *e = std::getenv("ECHO_TAPE");
        if (!e)
            return false;
        const std::string_view v(e);
        return v == "on" || v == "1";
    }();
    return on;
}

const char *
phaseName(Phase p)
{
    switch (p) {
      case Phase::kForward:
        return "forward";
      case Phase::kBackward:
        return "backward";
      case Phase::kRecompute:
        return "recompute";
    }
    return "?";
}

} // namespace

Executor::Executor(std::vector<Val> fetches, ExecMode mode)
    : fetches_(std::move(fetches)), schedule_(buildSchedule(fetches_)),
      mode_(mode)
{
    const size_t n = schedule_.size();
    std::unordered_map<const Node *, int> slot_of;
    slot_of.reserve(n);
    for (size_t s = 0; s < n; ++s)
        slot_of[schedule_[s]] = static_cast<int>(s);

    use_counts_.assign(n, 0);
    in_degree_.assign(n, 0);
    consumers_.assign(n, {});
    input_slots_.assign(n, {});
    for (size_t s = 0; s < n; ++s) {
        const Node *node = schedule_[s];
        input_slots_[s].reserve(node->inputs.size());
        for (const Val &v : node->inputs) {
            auto it = slot_of.find(v.node);
            ECHO_CHECK(it != slot_of.end(), "input of node #", node->id,
                       " missing from its own schedule");
            const int producer = it->second;
            input_slots_[s].push_back(producer);
            ++use_counts_[static_cast<size_t>(producer)];
            consumers_[static_cast<size_t>(producer)].push_back(
                static_cast<int>(s));
            ++in_degree_[s];
        }
    }
    fetch_slots_.reserve(fetches_.size());
    for (const Val &v : fetches_) {
        auto it = slot_of.find(v.node);
        ECHO_CHECK(it != slot_of.end(), "fetch missing from schedule");
        fetch_slots_.push_back(it->second);
        ++use_counts_[static_cast<size_t>(it->second)];
    }

    // Shape-specialized GEMM tuning: wire the cache-backed schedule
    // registry (and, under ECHO_TUNE=search, the search-on-miss
    // resolver), then resolve this schedule's GEMM shape set eagerly so
    // searches run at construction time, not mid-iteration.
    if (ops::tuneMode() != ops::TuneMode::kOff) {
        tune::ensureGlobalTuner();
        if (ops::tuneMode() == ops::TuneMode::kSearch)
            tune::globalTuner().warmKeys(collectGemmKeys(
                schedule_, ThreadPool::global().numThreads()));
    }
}

Executor::~Executor() = default;

Tape &
Executor::compile() const
{
    std::lock_guard<std::mutex> lk(tape_mu_);
    if (!tape_)
        tape_ = std::make_unique<Tape>(fetches_);
    return *tape_;
}

const Tensor &
Executor::feedValue(const FeedDict &feed, const Node *n) const
{
    // The tape's index-bound feed path skips this hash entirely; the
    // counter makes the difference auditable (bench/steady_state).
    static obs::Counter &c_lookups = obs::counter("exec.feed_lookups");
    c_lookups.add(1);
    auto it = feed.find(n);
    ECHO_REQUIRE(it != feed.end(), "no feed for ",
                 (n->kind == NodeKind::kWeight ? "weight "
                                               : "placeholder "),
                 n->name);
    ECHO_REQUIRE(it->second.shape() == n->out_shapes[0], "feed for ",
                 n->name, " has shape ", it->second.shape().toString(),
                 ", expected ", n->out_shapes[0].toString());
    return it->second;
}

bool
Executor::useParallel() const
{
    // A run on a pool worker (e.g. an executor inside a parallelFor
    // body) must never block that worker waiting on queue hand-offs
    // the remaining workers may not exist to pick up, so worker-thread
    // callers always fall back to serial — even under kParallel.
    switch (mode_) {
      case ExecMode::kSerial:
        return false;
      case ExecMode::kParallel:
        return !ThreadPool::onWorkerThread();
      case ExecMode::kAuto:
        break;
    }
    if (schedule_.size() < kMinParallelNodes)
        return false;
    if (ThreadPool::onWorkerThread())
        return false;
    return ThreadPool::global().numThreads() > 1;
}

std::vector<Tensor>
Executor::run(const FeedDict &feed) const
{
    const bool parallel = useParallel();
    static obs::Counter &c_runs = obs::counter("exec.runs");
    c_runs.add(1);
    if (tapeEnvEnabled()) {
        // Hold the lock across bind + run: the tape's arena and value
        // table are mutable per-run state shared by all callers.
        std::lock_guard<std::mutex> lk(tape_mu_);
        if (!tape_)
            tape_ = std::make_unique<Tape>(fetches_);
        tape_->bindFeeds(feed);
        return tape_->run(parallel);
    }
    obs::Span span;
    if (obs::traceEnabled())
        span.begin("exec", parallel ? "run.parallel" : "run.serial",
                   {{"nodes", static_cast<int64_t>(schedule_.size())}});
    return parallel ? runParallel(feed) : runSerial(feed);
}

std::vector<Tensor>
Executor::runSerial(const FeedDict &feed) const
{
    const size_t n = schedule_.size();
    // Per-slot output tensors, plus the number of uses still pending so
    // buffers can be dropped as soon as they are dead.
    std::vector<std::vector<Tensor>> values(n);
    std::vector<int> remaining = use_counts_;

    auto release_use = [&](int slot) {
        int &uses = remaining[static_cast<size_t>(slot)];
        ECHO_CHECK(uses > 0, "use-count underflow on node #",
                   schedule_[static_cast<size_t>(slot)]->id);
        if (--uses == 0)
            values[static_cast<size_t>(slot)].clear();
    };

    for (size_t s = 0; s < n; ++s) {
        Node *node = schedule_[s];
        switch (node->kind) {
          case NodeKind::kPlaceholder:
          case NodeKind::kWeight:
            values[s] = {feedValue(feed, node)};
            break;
          case NodeKind::kOp: {
            obs::Span span;
            if (obs::traceEnabled())
                span.begin("exec", node->op->name(),
                           {{"node", node->id},
                            {"slot", static_cast<int64_t>(s)},
                            {"phase", phaseName(node->phase)}});
            countOp(node);
            std::vector<Tensor> inputs;
            inputs.reserve(node->inputs.size());
            for (size_t i = 0; i < node->inputs.size(); ++i) {
                const auto &slot_vals = values[static_cast<size_t>(
                    input_slots_[s][i])];
                ECHO_CHECK(!slot_vals.empty(), "input of node #",
                           node->id, " freed too early");
                inputs.push_back(slot_vals[static_cast<size_t>(
                    node->inputs[i].index)]);
            }
            std::vector<Tensor> outputs(
                static_cast<size_t>(node->numOutputs()));
            node->op->forward(inputs, outputs);
            for (int i = 0; i < node->numOutputs(); ++i) {
                ECHO_CHECK(
                    outputs[static_cast<size_t>(i)].defined() &&
                        outputs[static_cast<size_t>(i)].shape() ==
                            node->out_shapes[static_cast<size_t>(i)],
                    "op ", node->op->name(), " produced output ", i,
                    " with wrong shape");
            }
            values[s] = std::move(outputs);
            for (int input_slot : input_slots_[s])
                release_use(input_slot);
            break;
          }
        }
        // Nodes nothing consumes (and nobody fetches) can be dropped
        // immediately.
        if (remaining[s] == 0)
            values[s].clear();
    }

    std::vector<Tensor> out;
    out.reserve(fetches_.size());
    for (size_t i = 0; i < fetches_.size(); ++i) {
        const auto &slot_vals =
            values[static_cast<size_t>(fetch_slots_[i])];
        ECHO_CHECK(!slot_vals.empty(), "fetch value missing");
        out.push_back(
            slot_vals[static_cast<size_t>(fetches_[i].index)]);
    }
    return out;
}

std::vector<Tensor>
Executor::runParallel(const FeedDict &feed) const
{
    const size_t n = schedule_.size();

    // All mutable per-run state lives behind one mutex.  Node bodies
    // (op->forward) run outside the lock; only the gather / store /
    // bookkeeping steps around them hold it, so the lock is never held
    // across numeric work.
    struct RunState
    {
        std::mutex mu;
        std::condition_variable cv;
        std::vector<std::vector<Tensor>> values;
        std::vector<int> remaining;
        std::vector<int> pending_inputs;
        std::deque<int> ready;
        size_t completed = 0;
        size_t inflight = 0;
        std::exception_ptr error;
    };
    RunState st;
    st.values.resize(n);
    st.remaining = use_counts_;
    st.pending_inputs = in_degree_;
    for (size_t s = 0; s < n; ++s)
        if (in_degree_[s] == 0)
            st.ready.push_back(static_cast<int>(s));

    // Runs one node.  Tensor handles are shared_ptr-backed, so copying
    // them out under the lock keeps the data alive even if the
    // producer slot is freed while forward() executes.
    auto run_node = [&](int slot) {
        const size_t s = static_cast<size_t>(slot);
        Node *node = schedule_[s];
        std::vector<Tensor> outputs(
            static_cast<size_t>(node->numOutputs()));
        if (node->kind == NodeKind::kOp) {
            obs::Span span;
            if (obs::traceEnabled())
                span.begin("exec", node->op->name(),
                           {{"node", node->id},
                            {"slot", slot},
                            {"phase", phaseName(node->phase)}});
            countOp(node);
            std::vector<Tensor> inputs;
            inputs.reserve(node->inputs.size());
            {
                std::lock_guard<std::mutex> lk(st.mu);
                for (size_t i = 0; i < node->inputs.size(); ++i) {
                    const auto &slot_vals = st.values[static_cast<size_t>(
                        input_slots_[s][i])];
                    ECHO_CHECK(!slot_vals.empty(), "input of node #",
                               node->id, " freed too early");
                    inputs.push_back(slot_vals[static_cast<size_t>(
                        node->inputs[i].index)]);
                }
            }
            node->op->forward(inputs, outputs);
            for (int i = 0; i < node->numOutputs(); ++i) {
                ECHO_CHECK(
                    outputs[static_cast<size_t>(i)].defined() &&
                        outputs[static_cast<size_t>(i)].shape() ==
                            node->out_shapes[static_cast<size_t>(i)],
                    "op ", node->op->name(), " produced output ", i,
                    " with wrong shape");
            }
        } else {
            outputs = {feedValue(feed, node)};
        }

        std::lock_guard<std::mutex> lk(st.mu);
        st.values[s] = std::move(outputs);
        for (int input_slot : input_slots_[s]) {
            int &uses = st.remaining[static_cast<size_t>(input_slot)];
            ECHO_CHECK(uses > 0, "use-count underflow on node #",
                       schedule_[static_cast<size_t>(input_slot)]->id);
            if (--uses == 0)
                st.values[static_cast<size_t>(input_slot)].clear();
        }
        if (st.remaining[s] == 0)
            st.values[s].clear();
        for (int consumer : consumers_[s]) {
            if (--st.pending_inputs[static_cast<size_t>(consumer)] == 0)
                st.ready.push_back(consumer);
        }
        ++st.completed;
    };

    ThreadPool &pool = ThreadPool::global();
    std::vector<int> batch;
    std::unique_lock<std::mutex> lk(st.mu);
    for (;;) {
        st.cv.wait(lk, [&] {
            return !st.ready.empty() || st.inflight == 0;
        });
        if (st.error) {
            // Stop dispatching; wait for in-flight tasks (they
            // reference st) before propagating.
            st.ready.clear();
            if (st.inflight > 0)
                continue;
            std::exception_ptr error = st.error;
            lk.unlock();
            std::rethrow_exception(error);
        }
        if (st.ready.empty()) {
            ECHO_CHECK(st.completed == n,
                       "executor stalled with ", n - st.completed,
                       " nodes blocked (dependency cycle?)");
            break;
        }
        batch.assign(st.ready.begin(), st.ready.end());
        st.ready.clear();
        st.inflight += batch.size();
        lk.unlock();
        for (int slot : batch) {
            pool.submit([&st, &run_node, slot] {
                try {
                    run_node(slot);
                } catch (...) {
                    std::lock_guard<std::mutex> lk(st.mu);
                    if (!st.error)
                        st.error = std::current_exception();
                    ++st.completed;
                }
                // Notify while holding the mutex: the dispatcher
                // destroys RunState as soon as it observes
                // inflight == 0, so an unlocked notify could touch the
                // condition variable after its lifetime ends.
                std::lock_guard<std::mutex> lk(st.mu);
                --st.inflight;
                st.cv.notify_all();
            });
        }
        lk.lock();
    }
    lk.unlock();

    std::vector<Tensor> out;
    out.reserve(fetches_.size());
    for (size_t i = 0; i < fetches_.size(); ++i) {
        const auto &slot_vals =
            st.values[static_cast<size_t>(fetch_slots_[i])];
        ECHO_CHECK(!slot_vals.empty(), "fetch value missing");
        out.push_back(
            slot_vals[static_cast<size_t>(fetches_[i].index)]);
    }
    return out;
}

} // namespace echo::graph
