#include "graph/executor.h"

#include "core/logging.h"

namespace echo::graph {

Executor::Executor(std::vector<Val> fetches)
    : fetches_(std::move(fetches)), schedule_(buildSchedule(fetches_))
{
    for (const Node *n : schedule_)
        use_counts_[n] = 0;
    for (const Node *n : schedule_)
        for (const Val &v : n->inputs)
            ++use_counts_[v.node];
    for (const Val &v : fetches_)
        ++use_counts_[v.node];
}

std::vector<Tensor>
Executor::run(const FeedDict &feed) const
{
    // Per-node output tensors, plus the number of uses still pending so
    // buffers can be dropped as soon as they are dead.
    std::unordered_map<const Node *, std::vector<Tensor>> values;
    std::unordered_map<const Node *, int> remaining = use_counts_;

    auto release_use = [&](const Node *n) {
        auto it = remaining.find(n);
        ECHO_CHECK(it != remaining.end() && it->second > 0,
                   "use-count underflow on node #", n->id);
        if (--it->second == 0)
            values.erase(n);
    };

    for (Node *n : schedule_) {
        switch (n->kind) {
          case NodeKind::kPlaceholder:
          case NodeKind::kWeight: {
            auto it = feed.find(n);
            ECHO_REQUIRE(it != feed.end(), "no feed for ",
                         (n->kind == NodeKind::kWeight ? "weight "
                                                       : "placeholder "),
                         n->name);
            ECHO_REQUIRE(it->second.shape() == n->out_shapes[0],
                         "feed for ", n->name, " has shape ",
                         it->second.shape().toString(), ", expected ",
                         n->out_shapes[0].toString());
            values[n] = {it->second};
            break;
          }
          case NodeKind::kOp: {
            std::vector<Tensor> inputs;
            inputs.reserve(n->inputs.size());
            for (const Val &v : n->inputs) {
                auto it = values.find(v.node);
                ECHO_CHECK(it != values.end(),
                           "input of node #", n->id,
                           " freed too early");
                inputs.push_back(
                    it->second[static_cast<size_t>(v.index)]);
            }
            std::vector<Tensor> outputs(
                static_cast<size_t>(n->numOutputs()));
            n->op->forward(inputs, outputs);
            for (int i = 0; i < n->numOutputs(); ++i) {
                ECHO_CHECK(
                    outputs[static_cast<size_t>(i)].defined() &&
                        outputs[static_cast<size_t>(i)].shape() ==
                            n->out_shapes[static_cast<size_t>(i)],
                    "op ", n->op->name(), " produced output ", i,
                    " with wrong shape");
            }
            values[n] = std::move(outputs);
            for (const Val &v : n->inputs)
                release_use(v.node);
            break;
          }
        }
        // Nodes nothing consumes (and nobody fetches) can be dropped
        // immediately.
        if (remaining.at(n) == 0)
            values.erase(n);
    }

    std::vector<Tensor> out;
    out.reserve(fetches_.size());
    for (const Val &v : fetches_) {
        auto it = values.find(v.node);
        ECHO_CHECK(it != values.end(), "fetch value missing");
        out.push_back(it->second[static_cast<size_t>(v.index)]);
    }
    return out;
}

} // namespace echo::graph
