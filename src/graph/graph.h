/**
 * @file
 * The training dataflow graph: nodes, construction API, and traversal.
 *
 * A Graph owns Nodes.  Placeholders and weights are input nodes; every
 * other node applies an Op to the outputs of earlier nodes, so graph
 * construction order is already a topological order.  Nodes carry two
 * pieces of provenance used throughout the system:
 *  - layer_tag: which model layer produced the node ("attention", "rnn",
 *    "embedding", "output", ...) — drives the paper's by-layer memory
 *    breakdowns,
 *  - phase: forward, backward, or recompute (recompute nodes are the
 *    forward replays spliced in by the Echo pass).
 */
#ifndef ECHO_GRAPH_GRAPH_H
#define ECHO_GRAPH_GRAPH_H

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "graph/op.h"

namespace echo::graph {

/** What a node is. */
enum class NodeKind { kPlaceholder, kWeight, kOp };

/** Which execution phase a node belongs to. */
enum class Phase { kForward, kBackward, kRecompute };

/** One vertex of the dataflow graph. */
struct Node
{
    int id = 0;
    NodeKind kind = NodeKind::kOp;
    Phase phase = Phase::kForward;
    OpPtr op;
    std::vector<Val> inputs;
    std::vector<Shape> out_shapes;
    std::string name;
    /** Model layer this node belongs to (for breakdown reporting). */
    std::string layer_tag;
    /** RNN time step, or -1 outside any step (workspace-sharing info). */
    int time_step = -1;

    /** Output value @p i of this node. */
    Val out(int i = 0) { return Val{this, i}; }

    int numOutputs() const
    {
        return static_cast<int>(out_shapes.size());
    }
};

/** The dataflow graph plus its construction API. */
class Graph
{
  public:
    Graph() = default;
    Graph(const Graph &) = delete;
    Graph &operator=(const Graph &) = delete;

    // ------------------------------------------------------------------
    // Construction
    // ------------------------------------------------------------------

    /** Add a placeholder (fed at run time). */
    Val placeholder(Shape shape, const std::string &name);

    /** Add a trainable weight. */
    Val weight(Shape shape, const std::string &name);

    /** Apply an op; returns all outputs. */
    std::vector<Val> apply(OpPtr op, std::vector<Val> inputs,
                           const std::string &name = "");

    /**
     * Drop every node appended after the graph had @p num_nodes nodes
     * (trial-rewrite rollback).  Node ids are assigned as the append
     * position, so a later re-append reproduces identical ids.  The
     * caller must first restore any inputs that reference the dropped
     * nodes — no surviving node may point at them afterwards.
     */
    void truncate(size_t num_nodes);

    /** Apply an op that has exactly one output. */
    Val apply1(OpPtr op, std::vector<Val> inputs,
               const std::string &name = "");

    /** Push/pop the layer tag applied to newly created nodes. */
    void pushTag(const std::string &tag);
    void popTag();

    /** Set the time step recorded on newly created nodes (-1 to clear). */
    void setTimeStep(int step) { time_step_ = step; }
    int timeStep() const { return time_step_; }

    /** Phase recorded on newly created nodes (autodiff/Echo pass use). */
    void setPhase(Phase phase) { phase_ = phase; }
    Phase phase() const { return phase_; }

    // ------------------------------------------------------------------
    // Inspection
    // ------------------------------------------------------------------

    /** All nodes in creation (= topological) order. */
    const std::vector<std::unique_ptr<Node>> &nodes() const
    {
        return nodes_;
    }

    size_t numNodes() const { return nodes_.size(); }

    /** All weight nodes, in creation order. */
    std::vector<Node *> weights() const;

    /** All placeholder nodes, in creation order. */
    std::vector<Node *> placeholders() const;

    /** Shape of a value. */
    static const Shape &shapeOf(const Val &v);

    /** Human-readable dump (one line per node). */
    std::string toString() const;

    /**
     * Graphviz dot rendering: nodes colored by phase (forward /
     * backward / recompute) and clustered by layer tag — the view the
     * inspect_graph example writes for exploring pass decisions.
     */
    std::string toDot() const;

  private:
    std::vector<std::unique_ptr<Node>> nodes_;
    std::vector<std::string> tag_stack_;
    int time_step_ = -1;
    Phase phase_ = Phase::kForward;

    Node *newNode(NodeKind kind, const std::string &name);
};

/** RAII helper for Graph::pushTag/popTag. */
class TagScope
{
  public:
    TagScope(Graph &g, const std::string &tag) : graph_(g)
    {
        graph_.pushTag(tag);
    }
    ~TagScope() { graph_.popTag(); }
    TagScope(const TagScope &) = delete;
    TagScope &operator=(const TagScope &) = delete;

  private:
    Graph &graph_;
};

/**
 * Nodes reachable from @p fetches (inputs included), in topological
 * (creation-id) order.
 */
std::vector<Node *> reachableNodes(const std::vector<Val> &fetches);

} // namespace echo::graph

#endif // ECHO_GRAPH_GRAPH_H
