/**
 * @file
 * The steady-state execution tape: the schedule lowered ONCE into a
 * flat array of dispatch records, with every intermediate buffer
 * placed at the memory planner's pool offset inside one arena.
 *
 * The interpreter loop in graph/executor.cc re-derives per run what
 * never changes between runs: it heap-allocates every intermediate,
 * hashes the feed map per placeholder, and rebuilds ready bookkeeping.
 * Training and serving run the same schedule thousands of times —
 * steady-state repetition is exactly what persistent-kernel and
 * prepacked-BLAS work exploits — so the tape precomputes all of it:
 *
 *  - dispatch records: node, flat input/output value ids, release
 *    list, and a ready-count template for parallel dispatch;
 *  - placements: transient values get their planner offset inside an
 *    arena of EXACTLY plan.pool_peak_bytes (the plan becomes the
 *    actual allocator — arenaBytes() == pool_peak_bytes is asserted
 *    and cross-checked against the obs timeline replay by the
 *    `tape-ready` pass checker); persistent op outputs (fetches,
 *    weight gradients) live in a separate double-buffered region;
 *  - feed binding by INDEX: bindFeed(feedIndex(node), t) writes the
 *    value slot directly, so a steady-state caller re-binds step
 *    inputs with zero hash lookups (bindFeeds(FeedDict) remains as
 *    the hashing convenience for compatibility paths).
 *
 * Steady-state runs perform zero heap allocations on the serial path:
 * op outputs are served from the arena via the thread-local allocation
 * hook (tensor/alloc_hook.h), fetch results are returned through a
 * caller-reused vector (runInto), and all run bookkeeping lives in
 * preallocated members.  The parallel path reuses the same records
 * with ready counts reset from the template (pool hand-off itself may
 * allocate; the zero-malloc claim is asserted for the serial path by
 * bench/steady_state).
 *
 * Placement is an optimization, never a correctness dependency:
 * downstream records read inputs through the stored Tensor handles,
 * so an output that could not be served from its slot (an op that
 * returns a view of its input, a temporary that claimed the slot
 * first) is either copied into place (when it aliases arena memory
 * whose block the planner will reuse — the reshape hazard) or left on
 * the heap (counted by `tape.arena_miss`).
 *
 * Fetch lifetime contract: tensors returned by run()/runInto() live
 * in the double-buffered persistent region and stay valid until the
 * END OF THE NEXT run (the parity flip) — long enough for the
 * standard pattern of feeding run N's fetched state back as run N+1's
 * inputs.  Callers that need longer must clone.
 */
#ifndef ECHO_GRAPH_TAPE_H
#define ECHO_GRAPH_TAPE_H

#include <condition_variable>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "graph/executor.h"
#include "graph/graph.h"
#include "memory/arena.h"
#include "memory/liveness.h"
#include "memory/planner.h"
#include "tensor/alloc_hook.h"

namespace echo::graph {

/** A compiled, arena-backed steady-state runner for one fetch set. */
class Tape
{
  public:
    struct Options
    {
        // Constructor init (not an NSDMI): GCC refuses a nested
        // class's default member initializers in default arguments of
        // the enclosing class's own members.
        Options() : alignment(256) {}

        /** Pool granularity; must match the plan's. */
        int64_t alignment;
    };

    /** Compile @p fetches (analyzes liveness and plans memory here). */
    explicit Tape(std::vector<Val> fetches, Options opts = {});

    /**
     * Compile against an existing analysis — the pass-manager path,
     * where `plan` already ran.  @p plan must be planMemory(@p live)
     * at @p opts.alignment; the arena is sized to its peak exactly.
     */
    Tape(std::vector<Val> fetches, const memory::LivenessResult &live,
         const memory::MemoryPlan &plan, Options opts = {});

    // ------------------------------------------------------------------
    // Feed binding (persistent across runs)
    // ------------------------------------------------------------------

    /** Placeholder/weight nodes, in schedule order. */
    const std::vector<const Node *> &feedNodes() const
    {
        return feed_nodes_;
    }

    /** Index of @p n in feedNodes(), or -1 (one-time hash lookup —
     *  resolve indices at setup, bind by index per run). */
    int feedIndex(const Node *n) const;

    /** Bind the feed at @p idx.  Shape-checked; no hashing. */
    void bindFeed(int idx, const Tensor &t);

    /** Bind every feed from @p feed (hashes once per feed node). */
    void bindFeeds(const FeedDict &feed);

    // ------------------------------------------------------------------
    // Running
    // ------------------------------------------------------------------

    /** Run and return the fetch tensors (allocates the result vector;
     *  see runInto for the zero-allocation variant). */
    std::vector<Tensor> run(bool parallel = false);

    /** Run, refilling @p out (cleared first; capacity is reused, so a
     *  caller-retained vector makes steady state allocation-free). */
    void runInto(std::vector<Tensor> &out, bool parallel = false);

    // ------------------------------------------------------------------
    // Introspection (tests, audits, bench)
    // ------------------------------------------------------------------

    /** One lowered dispatch record (an op node of the schedule). */
    struct Record
    {
        const Node *node = nullptr;
        /** Inputs: [in_begin, in_begin+in_count) in inputValues(). */
        int in_begin = 0, in_count = 0;
        /** Outputs: [out_begin, out_begin+out_count) in outSlots(). */
        int out_begin = 0, out_count = 0;
        /**
         * Ref-count decrement list (range into releaseValues()): one
         * entry per transient input edge, plus this record's own dead
         * outputs.  A value is dropped when its count hits zero — the
         * same use-count discipline as the interpreter, which stays
         * correct under out-of-order parallel completion (the
         * last-in-schedule consumer is not always the last to finish).
         */
        int release_begin = 0, release_count = 0;
        /** Ready-count template: input edges from op records. */
        int pending_template = 0;
        /** Consumer records: range into consumerRecords(). */
        int consumers_begin = 0, consumers_count = 0;
        /** Position of the node in the analyzed schedule. */
        int sched_pos = 0;
    };

    /** One output's placement. */
    struct OutSlot
    {
        /** Dense value id (index into the tape's value table). */
        int value = -1;
        int64_t offset = 0;
        int64_t bytes = 0;
        /** Lives in the double-buffered persistent region. */
        bool persistent = false;
    };

    const std::vector<Record> &records() const { return records_; }
    const std::vector<OutSlot> &outSlots() const { return out_slots_; }
    const std::vector<int> &inputValues() const { return input_values_; }
    const std::vector<int> &releaseValues() const
    {
        return release_values_;
    }
    const std::vector<int> &consumerRecords() const { return consumers_; }

    /** Dense value id of @p v, or -1. */
    int valueId(const Val &v) const;

    /** Transient arena size — equals plan().pool_peak_bytes exactly. */
    int64_t arenaBytes() const { return arena_.bytes(); }

    /** Both halves of the persistent (fetch/grad) region. */
    int64_t persistentBytes() const { return persist_.bytes(); }

    float *arenaBase() const { return arena_.base(); }

    /** Completed runs (also the parity source). */
    int64_t runCount() const { return run_count_; }

    const std::vector<Val> &fetches() const { return fetches_; }
    const memory::LivenessResult &liveness() const { return live_; }
    const memory::MemoryPlan &plan() const { return plan_; }

  private:
    void compile(const Options &opts);
    void checkFeedsBound() const;

    /** The address of @p slot for the given parity. */
    float *slotPtr(const OutSlot &slot, int64_t parity) const;

    /** Execute one record with @p in / @p out as scratch. */
    void executeRecord(const Record &r, int64_t parity,
                       std::vector<Tensor> &in,
                       std::vector<Tensor> &out);

    /** Copy misplaced outputs into their planned slots (see file
     *  comment); safe under output-permutation via the fixup scratch. */
    void fixupOutputs(const Record &r, int64_t parity,
                      std::vector<Tensor> &out);

    void releaseAfter(const Record &r);

    void runSerialImpl(int64_t parity);
    void runParallelImpl(int64_t parity);

    std::vector<Val> fetches_;
    memory::LivenessResult live_;
    memory::MemoryPlan plan_;

    memory::Arena arena_;   ///< transients, == pool_peak_bytes
    memory::Arena persist_; ///< persistent op outputs, 2x half size
    int64_t persist_half_ = 0;

    std::vector<Record> records_;
    std::vector<OutSlot> out_slots_;
    std::vector<int> input_values_;
    std::vector<int> release_values_;
    std::vector<int> consumers_;

    /** Per-record AllocSlot storage, aligned with out_slots_. */
    std::vector<AllocSlot> slot_scratch_;

    /** The value table: one Tensor handle per node output. */
    std::vector<Tensor> values_;
    std::unordered_map<Val, int, ValHash> value_id_;

    std::vector<const Node *> feed_nodes_;
    std::vector<int> feed_value_ids_;
    std::unordered_map<const Node *, int> feed_index_;

    std::vector<int> fetch_value_ids_;

    /** Use-count template per value id (0 for persistent values). */
    std::vector<int> value_uses_template_;
    /** Runtime use counts, reset from the template each run. */
    std::vector<int> value_uses_;

    /** Fixup staging (max total output bytes of any record); shared
     *  across records, so parallel fixups serialize on fixup_mu_. */
    std::vector<float> fixup_scratch_;
    std::mutex fixup_mu_;

    // Serial-run scratch (capacity retained across runs).
    std::vector<Tensor> in_scratch_, out_scratch_;

    // Parallel-run state (preallocated; reset from templates per run).
    std::vector<std::vector<Tensor>> rec_in_scratch_, rec_out_scratch_;
    std::vector<int> pending_;
    std::vector<int> ready_ring_;
    std::vector<int> batch_;

    int64_t run_count_ = 0;
};

} // namespace echo::graph

#endif // ECHO_GRAPH_TAPE_H
