/**
 * @file
 * GEMM shape-set extraction (see header).
 */
#include "graph/gemm_keys.h"

#include <unordered_set>

namespace echo::graph {

std::vector<ops::GemmKey>
collectGemmKeys(const std::vector<Node *> &schedule, int threads)
{
    std::vector<ops::GemmKey> keys;
    std::unordered_set<ops::GemmKey, ops::GemmKeyHash> seen;
    for (const Node *n : schedule) {
        if (n->kind != NodeKind::kOp)
            continue;
        std::vector<Shape> in_shapes;
        in_shapes.reserve(n->inputs.size());
        for (const Val &v : n->inputs)
            in_shapes.push_back(Graph::shapeOf(v));
        for (const KernelDesc &k :
             n->op->kernels(in_shapes, n->out_shapes)) {
            if (!k.is_gemm || k.gemm_m < 1 || k.gemm_n < 1 ||
                k.gemm_k < 1)
                continue;
            const ops::GemmKey key{k.gemm_m,       k.gemm_n,
                                   k.gemm_k,       k.gemm_trans_a,
                                   k.gemm_trans_b, threads};
            if (seen.insert(key).second)
                keys.push_back(key);
        }
    }
    return keys;
}

} // namespace echo::graph
