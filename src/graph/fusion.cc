#include "graph/fusion.h"

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <unordered_map>
#include <unordered_set>

#include "graph/ops/op_fused_elementwise.h"
#include "obs/counters.h"

namespace echo::fusion {

using graph::EwInstr;
using graph::Node;
using graph::Val;
using graph::ValHash;

namespace {

/** Deterministic fusion.* counters (golden-trace enforced). */
void
countFusion(const FusionResult &res)
{
    static obs::Counter &groups =
        obs::counter("fusion.groups", obs::CounterKind::kDeterministic);
    static obs::Counter &ops_fused = obs::counter(
        "fusion.ops_fused", obs::CounterKind::kDeterministic);
    static obs::Counter &values = obs::counter(
        "fusion.values_elided", obs::CounterKind::kDeterministic);
    static obs::Counter &bytes = obs::counter(
        "fusion.bytes_elided", obs::CounterKind::kDeterministic);
    groups.add(res.num_groups);
    ops_fused.add(res.num_ops_fused);
    values.add(res.num_values_elided);
    bytes.add(res.bytes_elided);
}

/** Every use of every value: consumer nodes plus fetch references. */
struct UseMap
{
    /** Consumers of each value, over the WHOLE graph (orphans and
     *  unreachable nodes included — a value someone references, even
     *  from outside the reachable set, must stay materialized). */
    std::unordered_map<Val, std::vector<Node *>, ValHash> consumers;
    std::unordered_set<const Node *> fetched;
};

UseMap
buildUseMap(const graph::Graph &g, const std::vector<Val> &fetches)
{
    UseMap uses;
    for (const auto &n : g.nodes())
        for (const Val &v : n->inputs)
            uses.consumers[v].push_back(n.get());
    for (const Val &v : fetches)
        uses.fetched.insert(v.node);
    return uses;
}

/** A node the pass may put into a group (sink or interior). */
bool
fusible(const Node *n,
        std::unordered_map<const Node *, std::vector<EwInstr>> &cache)
{
    if (n->kind != graph::NodeKind::kOp || n->numOutputs() != 1)
        return false;
    auto it = cache.find(n);
    if (it == cache.end())
        it = cache.emplace(n, n->op->elementwiseLowering()).first;
    return !it->second.empty();
}

/** Build the fused op's register program from the group members. */
graph::oplib::FusedElementwiseSpec
compileGroup(const std::vector<Node *> &members,
             const std::unordered_set<const Node *> &in_group,
             std::vector<Val> &frontier,
             const std::unordered_map<const Node *,
                                      std::vector<EwInstr>> &lowerings)
{
    graph::oplib::FusedElementwiseSpec spec;
    std::unordered_map<Val, int, ValHash> reg_of;

    // Frontier registers first, ordered by first use across members
    // (members are in id order, so this is deterministic).
    for (const Node *m : members)
        for (const Val &v : m->inputs)
            if (in_group.count(v.node) == 0 && reg_of.count(v) == 0) {
                reg_of[v] = static_cast<int>(frontier.size());
                frontier.push_back(v);
            }
    spec.num_inputs = static_cast<int>(frontier.size());

    int next_reg = spec.num_inputs;
    std::string fused_ops;
    for (Node *m : members) {
        const std::vector<EwInstr> &lower = lowerings.at(m);
        // Local register i < arity is input i; every dst gets a fresh
        // program-wide register (single assignment).
        std::unordered_map<int, int> local;
        for (size_t i = 0; i < m->inputs.size(); ++i)
            local[static_cast<int>(i)] = reg_of.at(m->inputs[i]);
        for (const EwInstr &instr : lower) {
            EwInstr out = instr;
            out.a = local.at(instr.a);
            if (graph::ewOpcodeIsBinary(instr.opcode))
                out.b = local.at(instr.b);
            local[instr.dst] = next_reg;
            out.dst = next_reg++;
            spec.program.push_back(out);
        }
        reg_of[Val{m, 0}] = spec.program.back().dst;
        if (!fused_ops.empty())
            fused_ops += ",";
        fused_ops += m->op->name();
    }
    spec.num_regs = next_reg;
    spec.out_reg = spec.program.back().dst;
    spec.fused_ops = std::move(fused_ops);
    return spec;
}

} // namespace

FusionResult
runFusionPass(graph::Graph &g, const std::vector<Val> &fetches,
              const FusionConfig &config)
{
    FusionResult res;
    if (!config.enabled)
        return res;

    const std::vector<Node *> alive = graph::reachableNodes(fetches);
    const UseMap uses = buildUseMap(g, fetches);
    std::unordered_map<const Node *, std::vector<EwInstr>> lowerings;
    std::unordered_set<const Node *> claimed;

    // Nodes some op replays through at execution time (the recompute
    // pass's fused regions read their template nodes' op live).
    // Retyping one in place would silently rewire that replay, so they
    // are claimed up front — never a sink, never absorbed.
    for (const Node *n : alive)
        if (n->op != nullptr)
            for (const Node *pinned : n->op->pinnedNodes())
                claimed.insert(pinned);

    // Sinks are visited in reverse topological order, so a node is
    // absorbed as an interior of the highest-id group that can legally
    // hold it before it ever gets to seed a group of its own.
    for (auto it = alive.rbegin(); it != alive.rend(); ++it) {
        Node *sink = *it;
        if (claimed.count(sink) != 0 || !fusible(sink, lowerings))
            continue;

        std::vector<Node *> members{sink};
        std::unordered_set<const Node *> in_group{sink};

        // Grow upward to a fixpoint.  A producer joins only when every
        // single use of its value lies inside the group, so no interior
        // value ever escapes.
        bool grew = true;
        while (grew) {
            grew = false;
            for (size_t mi = 0; mi < members.size(); ++mi) {
                for (const Val &v : members[mi]->inputs) {
                    Node *p = v.node;
                    if (in_group.count(p) != 0 || claimed.count(p) != 0)
                        continue;
                    if (!fusible(p, lowerings) ||
                        p->phase != sink->phase ||
                        p->time_step != sink->time_step)
                        continue;
                    if (uses.fetched.count(p) != 0)
                        continue;
                    const auto cit = uses.consumers.find(Val{p, 0});
                    const bool all_inside =
                        cit != uses.consumers.end() &&
                        std::all_of(cit->second.begin(),
                                    cit->second.end(),
                                    [&](const Node *c) {
                                        return in_group.count(c) != 0;
                                    });
                    if (!all_inside)
                        continue;
                    members.push_back(p);
                    in_group.insert(p);
                    grew = true;
                }
            }
        }
        if (static_cast<int>(members.size()) < config.min_group_size)
            continue;

        std::sort(members.begin(), members.end(),
                  [](const Node *a, const Node *b) {
                      return a->id < b->id;
                  });

        FusedGroup group;
        group.sink = sink;
        group.original_op = sink->op;
        group.original_sink_inputs = sink->inputs;
        group.members = members;
        graph::oplib::FusedElementwiseSpec spec = compileGroup(
            members, in_group, group.frontier, lowerings);

        res.num_groups += 1;
        res.num_ops_fused += static_cast<int>(members.size());
        for (const Node *m : members) {
            if (m == sink)
                continue;
            res.num_values_elided += 1;
            res.bytes_elided += m->out_shapes[0].numel() * 4;
        }

        // In-place rewrite: the sink becomes the fused node, interior
        // members become orphans (unreachable but intact for audits).
        sink->op = graph::oplib::fusedElementwise(std::move(spec));
        sink->inputs = group.frontier;
        for (const Node *m : members)
            claimed.insert(m);
        res.groups.push_back(std::move(group));
    }

    // Groups were discovered sink-high-to-low; report in graph order.
    std::reverse(res.groups.begin(), res.groups.end());
    countFusion(res);
    return res;
}

bool
fusionEnvEnabled()
{
    const char *env = std::getenv("ECHO_FUSION");
    return env == nullptr || std::strcmp(env, "0") != 0;
}

FusionResult
fuseIfEnabled(graph::Graph &g, const std::vector<Val> &fetches)
{
    FusionConfig config;
    config.enabled = fusionEnvEnabled();
    return runFusionPass(g, fetches, config);
}

} // namespace echo::fusion
