#include "graph/schedule.h"

#include <algorithm>
#include <unordered_map>

#include "core/logging.h"

namespace echo::graph {

namespace {

/** Sort key: (group, anchor, before-anchor flag, id). */
struct ScheduleKey
{
    int group;  // 0 = forward, 1 = backward region
    int anchor; // position within the group
    int sub;    // 0 = recompute (before its anchor), 1 = the anchor
    int id;

    bool
    operator<(const ScheduleKey &o) const
    {
        if (group != o.group)
            return group < o.group;
        if (anchor != o.anchor)
            return anchor < o.anchor;
        if (sub != o.sub)
            return sub < o.sub;
        return id < o.id;
    }
};

} // namespace

std::vector<Node *>
buildSchedule(const std::vector<Val> &fetches)
{
    std::vector<Node *> nodes = reachableNodes(fetches);

    // Consumers of each node, needed to anchor recompute nodes.
    std::unordered_map<const Node *, std::vector<Node *>> consumers;
    for (Node *n : nodes)
        for (const Val &v : n->inputs)
            consumers[v.node].push_back(n);

    // anchor(n) for a recompute node = the id of the earliest
    // non-recompute node that (transitively) consumes it.  Recompute
    // chains have increasing ids, so a reverse-id sweep sees consumers
    // before producers.
    std::unordered_map<const Node *, int> anchor;
    for (auto it = nodes.rbegin(); it != nodes.rend(); ++it) {
        Node *n = *it;
        if (n->phase != Phase::kRecompute)
            continue;
        int a = n->id; // fallback for dead recompute nodes
        bool first = true;
        for (Node *c : consumers[n]) {
            const int ca = c->phase == Phase::kRecompute
                               ? anchor.at(c)
                               : c->id;
            a = first ? ca : std::min(a, ca);
            first = false;
        }
        anchor[n] = a;
    }

    std::vector<std::pair<ScheduleKey, Node *>> keyed;
    keyed.reserve(nodes.size());
    for (Node *n : nodes) {
        ScheduleKey k;
        k.id = n->id;
        switch (n->phase) {
          case Phase::kForward:
            k.group = 0;
            k.anchor = n->id;
            k.sub = 1;
            break;
          case Phase::kBackward:
            k.group = 1;
            k.anchor = n->id;
            k.sub = 1;
            break;
          case Phase::kRecompute:
            k.group = 1;
            k.anchor = anchor.at(n);
            k.sub = 0;
            break;
        }
        keyed.emplace_back(k, n);
    }
    std::sort(keyed.begin(), keyed.end(),
              [](const auto &a, const auto &b) {
                  return a.first < b.first;
              });

    std::vector<Node *> order;
    order.reserve(keyed.size());
    for (auto &[k, n] : keyed)
        order.push_back(n);

    // Sanity: the result must still be topological.
    std::unordered_map<const Node *, size_t> pos;
    for (size_t i = 0; i < order.size(); ++i)
        pos[order[i]] = i;
    for (Node *n : order)
        for (const Val &v : n->inputs)
            ECHO_CHECK(pos.at(v.node) < pos.at(n),
                       "schedule broke topological order at node #",
                       n->id, " (", n->name, ")");
    return order;
}

} // namespace echo::graph
