#include "graph/tape.h"

#include <algorithm>
#include <cstring>
#include <exception>
#include <set>
#include <utility>

#include "core/logging.h"
#include "core/thread_pool.h"
#include "obs/counters.h"
#include "obs/trace.h"

namespace echo::graph {

namespace {

const char *
phaseName(Phase p)
{
    switch (p) {
      case Phase::kForward:
        return "forward";
      case Phase::kBackward:
        return "backward";
      case Phase::kRecompute:
        return "recompute";
    }
    return "?";
}

/** Same per-op counters the interpreter ticks, so mode comparisons in
 *  tooling line up record-for-record. */
void
countOp(const Node *node)
{
    static obs::Counter &c_ops = obs::counter("exec.ops");
    static obs::Counter &c_replays = obs::counter("exec.replays");
    c_ops.add(1);
    if (node->phase == Phase::kRecompute)
        c_replays.add(1);
}

int64_t
alignUp(int64_t x, int64_t alignment)
{
    return (x + alignment - 1) / alignment * alignment;
}

} // namespace

Tape::Tape(std::vector<Val> fetches, Options opts)
    : fetches_(std::move(fetches))
{
    live_ = memory::analyzeLiveness(fetches_);
    memory::PlannerOptions popts;
    popts.alignment = opts.alignment;
    plan_ = memory::planMemory(live_, popts);
    compile(opts);
}

Tape::Tape(std::vector<Val> fetches, const memory::LivenessResult &live,
           const memory::MemoryPlan &plan, Options opts)
    : fetches_(std::move(fetches)), live_(live), plan_(plan)
{
    compile(opts);
}

void
Tape::compile(const Options &opts)
{
    const std::vector<Node *> &schedule = live_.schedule;
    const size_t n = schedule.size();

    // Dense value ids, in schedule order.
    int next_id = 0;
    for (Node *node : schedule)
        for (int i = 0; i < node->numOutputs(); ++i)
            value_id_[Val{node, i}] = next_id++;
    values_.resize(static_cast<size_t>(next_id));

    auto id_of = [&](const Val &v) {
        auto it = value_id_.find(v);
        ECHO_CHECK(it != value_id_.end(),
                   "tape: value of node #", v.node->id,
                   " missing from its own schedule");
        return it->second;
    };
    auto info_of = [&](const Val &v) -> const memory::ValueInfo & {
        auto it = live_.index.find(v);
        ECHO_CHECK(it != live_.index.end(),
                   "tape: value of node #", v.node->id,
                   " missing from liveness");
        return live_.values[it->second];
    };

    // Feed nodes keep schedule order; their values are bound, not run.
    std::vector<int> record_of_pos(n, -1);
    for (size_t pos = 0; pos < n; ++pos) {
        Node *node = schedule[pos];
        if (node->kind == NodeKind::kOp) {
            record_of_pos[pos] = static_cast<int>(records_.size());
            Record r;
            r.node = node;
            r.sched_pos = static_cast<int>(pos);
            records_.push_back(r);
        } else {
            feed_index_[node] = static_cast<int>(feed_nodes_.size());
            feed_nodes_.push_back(node);
            feed_value_ids_.push_back(id_of(Val{node, 0}));
        }
    }

    // Inputs + ready-count templates, and per-value use counts (one
    // use per transient input edge).
    value_uses_template_.assign(static_cast<size_t>(next_id), 0);
    for (Record &r : records_) {
        const Node *node = r.node;
        r.in_begin = static_cast<int>(input_values_.size());
        r.in_count = static_cast<int>(node->inputs.size());
        for (const Val &v : node->inputs) {
            const int id = id_of(v);
            input_values_.push_back(id);
            if (v.node->kind == NodeKind::kOp)
                ++r.pending_template;
            if (!info_of(v).persistent)
                ++value_uses_template_[static_cast<size_t>(id)];
        }
    }

    // Output placements: transients at their planner offsets,
    // persistent op outputs bump-allocated in the double-buffered
    // region.
    int64_t persist_cursor = 0;
    std::vector<int64_t> planned_end(0); // per out slot; 0 = persistent
    for (Record &r : records_) {
        Node *node = const_cast<Node *>(r.node);
        r.out_begin = static_cast<int>(out_slots_.size());
        r.out_count = node->numOutputs();
        for (int i = 0; i < node->numOutputs(); ++i) {
            const Val v = node->out(i);
            const memory::ValueInfo &vi = info_of(v);
            OutSlot os;
            os.value = id_of(v);
            os.bytes = vi.bytes;
            int64_t end = 0;
            if (vi.persistent) {
                os.persistent = true;
                os.offset = persist_cursor;
                persist_cursor += alignUp(vi.bytes, opts.alignment);
            } else {
                auto it = plan_.offsets.find(v);
                ECHO_CHECK(it != plan_.offsets.end(),
                           "tape: transient value of node #", node->id,
                           " missing from the memory plan");
                os.offset = it->second.offset;
                end = it->second.offset + it->second.bytes;
                ECHO_CHECK(os.offset + vi.bytes <= plan_.pool_peak_bytes,
                           "tape: planned slot of node #", node->id,
                           " exceeds the pool peak");
            }
            out_slots_.push_back(os);
            planned_end.push_back(end);
        }
    }

    // Release (decrement) lists: transient input edges, then this
    // record's own dead outputs (self-released with one synthetic use
    // so the generic decrement path drops them).
    for (Record &r : records_) {
        const Node *node = r.node;
        r.release_begin = static_cast<int>(release_values_.size());
        for (const Val &v : node->inputs)
            if (!info_of(v).persistent)
                release_values_.push_back(id_of(v));
        for (int i = 0; i < r.out_count; ++i) {
            const OutSlot &os =
                out_slots_[static_cast<size_t>(r.out_begin + i)];
            if (!os.persistent &&
                value_uses_template_[static_cast<size_t>(os.value)] == 0) {
                value_uses_template_[static_cast<size_t>(os.value)] = 1;
                release_values_.push_back(os.value);
            }
        }
        r.release_count =
            static_cast<int>(release_values_.size()) - r.release_begin;
    }

    // Consumer records: data-flow edges (one per op->op input edge,
    // mirroring the interpreter's in-degree bookkeeping), PLUS memory
    // anti-dependency edges.  The planner proves offset reuse safe
    // against SCHEDULE order only; the parallel path dispatches by
    // dependency readiness, so a record whose output claims an arena
    // block must additionally wait for every record that releases the
    // block's previous occupant — otherwise an early-ready record
    // could clobber a value some independent record still reads.
    {
        std::vector<std::vector<int>> cons(records_.size());
        for (size_t ri = 0; ri < records_.size(); ++ri) {
            for (const Val &v : records_[ri].node->inputs) {
                if (v.node->kind != NodeKind::kOp)
                    continue;
                const int producer =
                    record_of_pos[static_cast<size_t>(info_of(v).def_pos)];
                ECHO_CHECK(producer >= 0,
                           "tape: op input produced by a non-op record");
                cons[static_cast<size_t>(producer)].push_back(
                    static_cast<int>(ri));
            }
        }

        // Records that decrement each transient value's use count; the
        // value is guaranteed dead once ALL of them completed.
        std::vector<std::vector<int>> releasers(values_.size());
        for (size_t ri = 0; ri < records_.size(); ++ri) {
            const Record &r = records_[ri];
            for (int i = 0; i < r.release_count; ++i)
                releasers[static_cast<size_t>(release_values_[static_cast<
                              size_t>(r.release_begin + i)])]
                    .push_back(static_cast<int>(ri));
        }

        // Sweep the planned address spans in offset order; spans that
        // share bytes have schedule-disjoint lifetimes by construction,
        // so the later-defined value's producer gets an edge from each
        // releaser of the earlier one.  Edges always point forward in
        // schedule order (releasers run no later than the occupant's
        // last use, which precedes the reuser's definition), so the
        // record graph stays acyclic.
        struct Span
        {
            int64_t begin, end;
            int producer; // record index (== schedule order of records)
            int value;
        };
        std::vector<Span> spans;
        spans.reserve(out_slots_.size());
        for (size_t ri = 0; ri < records_.size(); ++ri) {
            const Record &r = records_[ri];
            for (int j = 0; j < r.out_count; ++j) {
                const size_t si = static_cast<size_t>(r.out_begin + j);
                if (out_slots_[si].persistent)
                    continue;
                spans.push_back(Span{out_slots_[si].offset,
                                     planned_end[si],
                                     static_cast<int>(ri),
                                     out_slots_[si].value});
            }
        }
        std::sort(spans.begin(), spans.end(),
                  [](const Span &a, const Span &b) {
                      return a.begin != b.begin ? a.begin < b.begin
                                                : a.producer < b.producer;
                  });
        std::set<std::pair<int, int>> mem_edges;
        for (size_t i = 0; i < spans.size(); ++i) {
            for (size_t j = i + 1;
                 j < spans.size() && spans[j].begin < spans[i].end; ++j) {
                const Span &first = spans[i].producer <= spans[j].producer
                                        ? spans[i]
                                        : spans[j];
                const Span &second = spans[i].producer <= spans[j].producer
                                         ? spans[j]
                                         : spans[i];
                for (int rel :
                     releasers[static_cast<size_t>(first.value)]) {
                    if (rel == second.producer)
                        continue;
                    if (!mem_edges.emplace(rel, second.producer).second)
                        continue;
                    cons[static_cast<size_t>(rel)].push_back(
                        second.producer);
                    ++records_[static_cast<size_t>(second.producer)]
                          .pending_template;
                }
            }
        }

        for (size_t ri = 0; ri < records_.size(); ++ri) {
            records_[ri].consumers_begin =
                static_cast<int>(consumers_.size());
            records_[ri].consumers_count =
                static_cast<int>(cons[ri].size());
            consumers_.insert(consumers_.end(), cons[ri].begin(),
                              cons[ri].end());
        }
    }

    // Fetches (may be feed values as well as op outputs).
    fetch_value_ids_.reserve(fetches_.size());
    for (const Val &v : fetches_)
        fetch_value_ids_.push_back(id_of(v));

    // The arena IS the plan: exactly pool_peak_bytes, not a byte more.
    arena_ = memory::Arena(plan_.pool_peak_bytes, opts.alignment);
    persist_half_ = persist_cursor;
    persist_ = memory::Arena(2 * persist_half_, opts.alignment);

    // Preallocate every piece of run-time bookkeeping.
    slot_scratch_.resize(out_slots_.size());
    for (size_t i = 0; i < out_slots_.size(); ++i)
        slot_scratch_[i].bytes = out_slots_[i].bytes;

    size_t max_in = 0, max_out = 0;
    int64_t max_fixup_elems = 0;
    for (const Record &r : records_) {
        max_in = std::max(max_in, static_cast<size_t>(r.in_count));
        max_out = std::max(max_out, static_cast<size_t>(r.out_count));
        int64_t elems = 0;
        for (int i = 0; i < r.out_count; ++i)
            elems += (out_slots_[static_cast<size_t>(r.out_begin + i)]
                          .bytes +
                      static_cast<int64_t>(sizeof(float)) - 1) /
                     static_cast<int64_t>(sizeof(float));
        max_fixup_elems = std::max(max_fixup_elems, elems);
    }
    in_scratch_.reserve(max_in);
    out_scratch_.reserve(max_out);
    fixup_scratch_.resize(static_cast<size_t>(max_fixup_elems));

    rec_in_scratch_.resize(records_.size());
    rec_out_scratch_.resize(records_.size());
    for (size_t ri = 0; ri < records_.size(); ++ri) {
        rec_in_scratch_[ri].reserve(
            static_cast<size_t>(records_[ri].in_count));
        rec_out_scratch_[ri].reserve(
            static_cast<size_t>(records_[ri].out_count));
    }
    pending_.resize(records_.size());
    ready_ring_.resize(records_.size());
    batch_.reserve(records_.size());
    value_uses_.assign(static_cast<size_t>(next_id), 0);

    static obs::Counter &c_compiles = obs::counter("tape.compiles");
    c_compiles.add(1);
}

int
Tape::feedIndex(const Node *n) const
{
    auto it = feed_index_.find(n);
    return it == feed_index_.end() ? -1 : it->second;
}

void
Tape::bindFeed(int idx, const Tensor &t)
{
    ECHO_REQUIRE(idx >= 0 &&
                     idx < static_cast<int>(feed_nodes_.size()),
                 "tape feed index ", idx, " out of range");
    const Node *n = feed_nodes_[static_cast<size_t>(idx)];
    ECHO_REQUIRE(t.shape() == n->out_shapes[0], "feed for ", n->name,
                 " has shape ", t.shape().toString(), ", expected ",
                 n->out_shapes[0].toString());
    values_[static_cast<size_t>(
        feed_value_ids_[static_cast<size_t>(idx)])] = t;
}

void
Tape::bindFeeds(const FeedDict &feed)
{
    static obs::Counter &c_lookups =
        obs::counter("exec.feed_lookups");
    for (size_t i = 0; i < feed_nodes_.size(); ++i) {
        const Node *n = feed_nodes_[i];
        c_lookups.add(1);
        auto it = feed.find(n);
        ECHO_REQUIRE(it != feed.end(), "no feed for ",
                     (n->kind == NodeKind::kWeight ? "weight "
                                                   : "placeholder "),
                     n->name);
        bindFeed(static_cast<int>(i), it->second);
    }
}

void
Tape::checkFeedsBound() const
{
    for (size_t i = 0; i < feed_nodes_.size(); ++i)
        ECHO_REQUIRE(
            values_[static_cast<size_t>(feed_value_ids_[i])].defined(),
            "tape run with unbound ",
            (feed_nodes_[i]->kind == NodeKind::kWeight ? "weight "
                                                       : "placeholder "),
            feed_nodes_[i]->name);
}

float *
Tape::slotPtr(const OutSlot &slot, int64_t parity) const
{
    if (!slot.persistent)
        return arena_.at(slot.offset);
    return persist_.at(slot.offset + (parity ? persist_half_ : 0));
}

void
Tape::executeRecord(const Record &r, int64_t parity,
                    std::vector<Tensor> &in, std::vector<Tensor> &out)
{
    const Node *node = r.node;
    obs::Span span;
    if (obs::traceEnabled())
        span.begin("tape", node->op->name(),
                   {{"node", node->id},
                    {"slot", static_cast<int64_t>(r.sched_pos)},
                    {"phase", phaseName(node->phase)}});
    countOp(node);

    in.clear();
    for (int i = 0; i < r.in_count; ++i) {
        const Tensor &t = values_[static_cast<size_t>(
            input_values_[static_cast<size_t>(r.in_begin + i)])];
        ECHO_CHECK(t.defined(), "tape: input of node #", node->id,
                   " freed too early");
        in.push_back(t);
    }

    out.clear();
    out.resize(static_cast<size_t>(r.out_count));
    AllocSlot *slots = slot_scratch_.data() + r.out_begin;
    for (int j = 0; j < r.out_count; ++j) {
        const OutSlot &os =
            out_slots_[static_cast<size_t>(r.out_begin + j)];
        slots[j].ptr = slotPtr(os, parity);
        slots[j].owner =
            os.persistent ? &persist_.owner() : &arena_.owner();
        slots[j].claimed = false;
    }
    {
        AllocHookScope scope(slots, r.out_count);
        node->op->forward(in, out);
    }
    for (int j = 0; j < r.out_count; ++j) {
        ECHO_CHECK(out[static_cast<size_t>(j)].defined() &&
                       out[static_cast<size_t>(j)].shape() ==
                           node->out_shapes[static_cast<size_t>(j)],
                   "op ", node->op->name(), " produced output ", j,
                   " with wrong shape");
    }
    fixupOutputs(r, parity, out);
    for (int j = 0; j < r.out_count; ++j)
        values_[static_cast<size_t>(
            out_slots_[static_cast<size_t>(r.out_begin + j)].value)] =
            std::move(out[static_cast<size_t>(j)]);
}

void
Tape::fixupOutputs(const Record &r, int64_t parity,
                   std::vector<Tensor> &out)
{
    // An output landed somewhere other than its planned slot when the
    // op returned a view of an input (reshape), or a temporary claimed
    // the slot first.  Heap results are safe to leave (nothing reuses
    // them); results aliasing pooled memory MUST move — the planner
    // will hand that block to a later value (transients), or the next
    // run's parity flip will overwrite it (persistents).  Misplaced
    // outputs of one record can sit in each other's slots, so they are
    // staged through the fixup scratch before placement.
    AllocSlot *slots = slot_scratch_.data() + r.out_begin;
    int misplaced = 0;
    for (int j = 0; j < r.out_count; ++j) {
        const OutSlot &os =
            out_slots_[static_cast<size_t>(r.out_begin + j)];
        const float *p = out[static_cast<size_t>(j)].data();
        const bool needs_copy =
            p != slotPtr(os, parity) &&
            (arena_.contains(p) ||
             (os.persistent && persist_.contains(p)));
        // The hook no longer needs `claimed`; reuse it as the per-slot
        // misplacement mark (this record's range is exclusively ours).
        slots[j].claimed = needs_copy;
        misplaced += needs_copy;
    }
    if (misplaced == 0)
        return;

    static obs::Counter &c_fixups =
        obs::counter("tape.fixup_copies", obs::CounterKind::kScheduling);
    std::lock_guard<std::mutex> lk(fixup_mu_);
    int64_t cursor = 0;
    for (int j = 0; j < r.out_count; ++j) {
        if (!slots[j].claimed)
            continue;
        const Tensor &t = out[static_cast<size_t>(j)];
        std::memcpy(fixup_scratch_.data() + cursor, t.data(),
                    static_cast<size_t>(t.numel()) * sizeof(float));
        cursor += t.numel();
    }
    cursor = 0;
    for (int j = 0; j < r.out_count; ++j) {
        if (!slots[j].claimed)
            continue;
        const OutSlot &os =
            out_slots_[static_cast<size_t>(r.out_begin + j)];
        Tensor &t = out[static_cast<size_t>(j)];
        float *expected = slotPtr(os, parity);
        std::memcpy(expected, fixup_scratch_.data() + cursor,
                    static_cast<size_t>(t.numel()) * sizeof(float));
        cursor += t.numel();
        t = Tensor::fromExternal(t.shape(), expected,
                                 os.persistent ? persist_.owner()
                                               : arena_.owner());
        c_fixups.add(1);
    }
}

void
Tape::releaseAfter(const Record &r)
{
    for (int i = 0; i < r.release_count; ++i) {
        const int id =
            release_values_[static_cast<size_t>(r.release_begin + i)];
        int &uses = value_uses_[static_cast<size_t>(id)];
        ECHO_CHECK(uses > 0, "tape: use-count underflow after node #",
                   r.node->id);
        if (--uses == 0)
            values_[static_cast<size_t>(id)] = Tensor();
    }
}

void
Tape::runSerialImpl(int64_t parity)
{
    std::copy(value_uses_template_.begin(), value_uses_template_.end(),
              value_uses_.begin());
    for (const Record &r : records_) {
        executeRecord(r, parity, in_scratch_, out_scratch_);
        releaseAfter(r);
    }
}

void
Tape::runParallelImpl(int64_t parity)
{
    std::copy(value_uses_template_.begin(), value_uses_template_.end(),
              value_uses_.begin());

    const size_t n = records_.size();
    std::mutex mu;
    std::condition_variable cv;
    size_t completed = 0, inflight = 0;
    size_t head = 0, tail = 0; // FIFO over ready_ring_ (each record is
                               // pushed exactly once — no wraparound)
    std::exception_ptr error;

    for (size_t ri = 0; ri < n; ++ri) {
        pending_[ri] = records_[ri].pending_template;
        if (pending_[ri] == 0)
            ready_ring_[tail++] = static_cast<int>(ri);
    }

    auto run_record = [&](int rec) {
        const Record &r = records_[static_cast<size_t>(rec)];
        // values_ element access is race-free without the lock: a
        // record becomes ready only after every producer published its
        // outputs (happens-before via mu), and a value is cleared only
        // after all consuming records completed (use counts).
        executeRecord(r, parity,
                      rec_in_scratch_[static_cast<size_t>(rec)],
                      rec_out_scratch_[static_cast<size_t>(rec)]);
        std::lock_guard<std::mutex> lk(mu);
        releaseAfter(r);
        for (int ci = 0; ci < r.consumers_count; ++ci) {
            const int c = consumers_[static_cast<size_t>(
                r.consumers_begin + ci)];
            if (--pending_[static_cast<size_t>(c)] == 0)
                ready_ring_[tail++] = c;
        }
        ++completed;
    };

    ThreadPool &pool = ThreadPool::global();
    std::unique_lock<std::mutex> lk(mu);
    for (;;) {
        cv.wait(lk, [&] { return head != tail || inflight == 0; });
        if (error) {
            head = tail;
            if (inflight > 0)
                continue;
            std::exception_ptr err = error;
            lk.unlock();
            std::rethrow_exception(err);
        }
        if (head == tail) {
            ECHO_CHECK(completed == n, "tape stalled with ",
                       n - completed,
                       " records blocked (dependency cycle?)");
            break;
        }
        batch_.clear();
        while (head != tail)
            batch_.push_back(ready_ring_[head++]);
        inflight += batch_.size();
        lk.unlock();
        for (int rec : batch_) {
            pool.submit([&, rec] {
                try {
                    run_record(rec);
                } catch (...) {
                    std::lock_guard<std::mutex> lk2(mu);
                    if (!error)
                        error = std::current_exception();
                    ++completed;
                }
                // Notify under the mutex: the dispatcher tears the
                // run state down as soon as inflight hits zero.
                std::lock_guard<std::mutex> lk2(mu);
                --inflight;
                cv.notify_all();
            });
        }
        lk.lock();
    }
    lk.unlock();
}

std::vector<Tensor>
Tape::run(bool parallel)
{
    std::vector<Tensor> out;
    runInto(out, parallel);
    return out;
}

void
Tape::runInto(std::vector<Tensor> &out, bool parallel)
{
    checkFeedsBound();
    static obs::Counter &c_runs = obs::counter("tape.runs");
    c_runs.add(1);
    obs::Span span;
    if (obs::traceEnabled())
        span.begin("tape", parallel ? "run.parallel" : "run.serial",
                   {{"records", static_cast<int64_t>(records_.size())}});

    const int64_t parity = run_count_ & 1;
    if (parallel)
        runParallelImpl(parity);
    else
        runSerialImpl(parity);
    ++run_count_;

    out.clear();
    for (size_t i = 0; i < fetch_value_ids_.size(); ++i) {
        const Tensor &t =
            values_[static_cast<size_t>(fetch_value_ids_[i])];
        ECHO_CHECK(t.defined(), "tape: fetch value missing");
        out.push_back(t);
    }
}

int
Tape::valueId(const Val &v) const
{
    auto it = value_id_.find(v);
    return it == value_id_.end() ? -1 : it->second;
}

} // namespace echo::graph
