/**
 * @file
 * Automatic element-wise fusion pass.
 *
 * Scans the (already differentiated) training graph for maximal
 * single-consumer chains/DAGs of same-shape element-wise ops — every op
 * that provides Op::elementwiseLowering — and rewrites each group's
 * sink node in place into one FusedElementwiseOp that evaluates the
 * whole expression in a single parallel pass.  Interior intermediates
 * are never allocated: the group's former interior nodes become
 * unreachable (the schedule, liveness, planner, and feature maps all
 * work off reachableNodes(fetches)), but are left intact so
 * analysis::auditFusion can replay the original chain and byte-compare
 * it against the fused program.
 *
 * Legality rules (see DESIGN.md):
 *  - only ops with a lowering join a group; all values involved share
 *    one shape by construction (binary element-wise ops require equal
 *    input shapes, unary ops preserve shape);
 *  - an interior member's EVERY consumer (including fetches and nodes
 *    outside the reachable set) must lie inside the group — only the
 *    sink's output escapes, so no interior value is ever needed;
 *  - members share the sink's phase and time_step, keeping the Echo
 *    pass's feature-map and workspace-sharing reasoning intact;
 *  - groups are grown sink-first in reverse topological order, which
 *    makes cycles impossible: only the sink's output leaves the group,
 *    and every member's id is below the sink's.
 *
 * The pass is on by default (ECHO_FUSION=0 disables it) and runs after
 * autodiff, so gradients are fused exactly like forward chains.
 * Byte-identical outputs vs. the unfused graph at any thread count is
 * the hard contract, enforced by tests/test_fusion.cc and the fuzz
 * property suite.
 */
#ifndef ECHO_GRAPH_FUSION_H
#define ECHO_GRAPH_FUSION_H

#include <vector>

#include "graph/graph.h"

namespace echo::fusion {

/** Tuning knobs of the fusion pass. */
struct FusionConfig
{
    /** Master switch; runFusionPass is a no-op when false. */
    bool enabled = true;
    /** Minimum ops per group (a 1-op "fusion" only adds overhead). */
    int min_group_size = 2;
};

/** One rewritten group, journaled for audits and reporting. */
struct FusedGroup
{
    /** The rewritten node (now carries the FusedElementwiseOp). */
    graph::Node *sink = nullptr;
    /** The sink's pre-fusion op (for audit replay of the chain). */
    graph::OpPtr original_op;
    /** The sink's pre-fusion inputs (the rewrite replaces them). */
    std::vector<graph::Val> original_sink_inputs;
    /** All members in id (topological) order; sink last.  Non-sink
     *  members are left orphaned-but-intact in the graph. */
    std::vector<graph::Node *> members;
    /** The fused node's inputs (== sink->inputs after the rewrite). */
    std::vector<graph::Val> frontier;
};

/** What the pass did; counters mirror the fusion.* counter set. */
struct FusionResult
{
    int num_groups = 0;
    /** Total original ops folded into fused nodes. */
    int num_ops_fused = 0;
    /** Interior values that are no longer materialized. */
    int num_values_elided = 0;
    /** Bytes of transient allocations those values would have taken. */
    int64_t bytes_elided = 0;
    std::vector<FusedGroup> groups;
};

/**
 * Run the pass over the subgraph reaching @p fetches, rewriting
 * @p g in place.  Deterministic: group discovery and program layout
 * depend only on graph structure, never on scheduling.
 */
FusionResult runFusionPass(graph::Graph &g,
                           const std::vector<graph::Val> &fetches,
                           const FusionConfig &config = {});

/** ECHO_FUSION environment switch; unset or "1" = on, "0" = off. */
bool fusionEnvEnabled();

/**
 * Convenience used by the model builders: runFusionPass with the
 * default config when fusionEnvEnabled(), else an empty result.
 */
FusionResult fuseIfEnabled(graph::Graph &g,
                           const std::vector<graph::Val> &fetches);

} // namespace echo::fusion

#endif // ECHO_GRAPH_FUSION_H
