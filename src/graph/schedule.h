/**
 * @file
 * Deterministic execution schedule for a (possibly rewritten) graph.
 *
 * Node-creation order is topological, so a plain id sort would be a
 * valid schedule — but a naive order would run recompute nodes (the
 * forward replays spliced in by the Echo pass) as early as their inputs
 * allow, keeping their outputs alive across the whole backward pass and
 * destroying the footprint savings.  buildSchedule instead anchors every
 * recompute node just before its first backward consumer, which is what
 * lets the memory planner reuse one workspace arena across all time
 * steps (paper §4.1.2).
 */
#ifndef ECHO_GRAPH_SCHEDULE_H
#define ECHO_GRAPH_SCHEDULE_H

#include <vector>

#include "graph/graph.h"

namespace echo::graph {

/**
 * Build the execution order for everything @p fetches depends on.
 * Forward nodes run in id order, then backward nodes in id order, with
 * recompute nodes delayed until just before their earliest consumer.
 */
std::vector<Node *> buildSchedule(const std::vector<Val> &fetches);

} // namespace echo::graph

#endif // ECHO_GRAPH_SCHEDULE_H
