#include "serve/session.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "core/logging.h"
#include "data/vocab.h"
#include "models/serialize.h"
#include "obs/trace.h"
#include "serve/beam.h"
#include "tune/tuner.h"

namespace echo::serve {

namespace {

using models::NmtDecoder;
using models::ParamStore;

/** Deterministic log-softmax of one logits row (fixed index order). */
void
logSoftmaxRow(const Tensor &logits, int64_t r, std::vector<double> &out)
{
    const int64_t v = logits.shape()[1];
    out.resize(static_cast<size_t>(v));
    double mx = logits.at(r, 0);
    for (int64_t j = 1; j < v; ++j)
        mx = std::max(mx, static_cast<double>(logits.at(r, j)));
    double sum = 0.0;
    for (int64_t j = 0; j < v; ++j)
        sum += std::exp(static_cast<double>(logits.at(r, j)) - mx);
    const double log_z = mx + std::log(sum);
    for (int64_t j = 0; j < v; ++j)
        out[static_cast<size_t>(j)] =
            static_cast<double>(logits.at(r, j)) - log_z;
}

const Tensor &
storedTensor(const ParamStore &params, const std::string &name,
             const std::string &path)
{
    auto it = params.find(name);
    if (it == params.end())
        ECHO_FATAL(path, ": checkpoint is missing tensor '", name, "'");
    return it->second;
}

/** Count consecutive layers named "<prefix>.l<i>.wx" from i = 0. */
int64_t
countLayers(const ParamStore &params, const std::string &prefix)
{
    int64_t n = 0;
    while (params.count(prefix + ".l" + std::to_string(n) + ".wx"))
        ++n;
    return n;
}

models::WordLmConfig
inferWordLmConfig(const ParamStore &params, const std::string &path)
{
    models::WordLmConfig cfg;
    const Tensor &table = storedTensor(params, "embedding.table", path);
    ECHO_REQUIRE(table.shape().ndim() == 2,
                 path, ": embedding.table must be 2-D");
    cfg.vocab = table.shape()[0];
    cfg.hidden = table.shape()[1];
    cfg.layers = countLayers(params, "lstm");
    ECHO_REQUIRE(cfg.layers >= 1,
                 path, ": no lstm.l<i>.wx tensors found");
    return cfg;
}

models::NmtConfig
inferNmtConfig(const ParamStore &params, const std::string &path)
{
    models::NmtConfig cfg;
    const Tensor &src =
        storedTensor(params, "src_embedding.table", path);
    const Tensor &tgt =
        storedTensor(params, "tgt_embedding.table", path);
    ECHO_REQUIRE(src.shape().ndim() == 2 && tgt.shape().ndim() == 2,
                 path, ": embedding tables must be 2-D");
    cfg.src_vocab = src.shape()[0];
    cfg.hidden = src.shape()[1];
    cfg.tgt_vocab = tgt.shape()[0];
    cfg.bidirectional = params.count("enc.bwd.l0.wx") != 0;
    cfg.enc_layers = cfg.bidirectional ? countLayers(params, "enc.fwd")
                                       : countLayers(params, "enc");
    ECHO_REQUIRE(cfg.enc_layers >= 1,
                 path, ": no encoder layer tensors found");
    return cfg;
}

void
validateSessionConfig(const SessionConfig &cfg)
{
    ECHO_REQUIRE(cfg.slots >= 1, "session needs at least one slot");
    ECHO_REQUIRE(!cfg.buckets.empty() &&
                     std::is_sorted(cfg.buckets.begin(),
                                    cfg.buckets.end()) &&
                     cfg.buckets.front() >= 1,
                 "session buckets must be ascending and positive");
    ECHO_REQUIRE(cfg.beam_width >= 1, "beam width must be positive");
}

void
validateBatch(const MicroBatch &mb, const SessionConfig &cfg)
{
    ECHO_REQUIRE(!mb.requests.empty() &&
                     static_cast<int64_t>(mb.requests.size()) <=
                         cfg.slots,
                 "micro-batch holds ", mb.requests.size(),
                 " requests for ", cfg.slots, " slots");
    for (const Request &r : mb.requests)
        ECHO_REQUIRE(!r.tokens.empty() &&
                         static_cast<int64_t>(r.tokens.size()) <=
                             mb.bucket_len,
                     "request ", r.id, " does not fit bucket ",
                     mb.bucket_len);
}

} // namespace

InferenceSession::InferenceSession(SessionConfig config)
    : config_(std::move(config))
{
    validateSessionConfig(config_);
}

int64_t
InferenceSession::bucketIndex(int64_t bucket_len) const
{
    for (size_t i = 0; i < config_.buckets.size(); ++i)
        if (config_.buckets[i] == bucket_len)
            return static_cast<int64_t>(i);
    ECHO_FATAL("micro-batch bucket ", bucket_len,
               " is not a configured bucket");
}

void
InferenceSession::journalBatch(const MicroBatch &mb)
{
    const int64_t pool = bucketIndex(mb.bucket_len);
    for (size_t i = 0; i < mb.requests.size(); ++i) {
        analysis::SlotInterval iv;
        iv.request_id = mb.requests[i].id;
        iv.pool = pool;
        iv.slot = static_cast<int>(i);
        iv.acquired = batch_seq_;
        iv.released = batch_seq_ + 1;
        journal_.push_back(iv);
    }
    ++batch_seq_;
}

std::unique_ptr<InferenceSession>
InferenceSession::fromCheckpoint(const std::string &path,
                                 const SessionConfig &config)
{
    // Load the GEMM tuning cache (and install search-on-miss under
    // ECHO_TUNE=search) before any stepper builds its executors, so
    // the step graphs' per-token GEMMs run tuned from the first
    // request — serving is exactly the workload whose skewed shapes
    // (M = a few in-flight slots, N = vocab) the fixed schedule
    // handles worst.
    tune::ensureGlobalTuner();

    ParamStore params = models::loadParams(path);
    if (params.count("src_embedding.table")) {
        models::NmtConfig mcfg = inferNmtConfig(params, path);
        return std::make_unique<NmtSession>(mcfg, std::move(params),
                                            config);
    }
    if (params.count("embedding.table")) {
        models::WordLmConfig mcfg = inferWordLmConfig(params, path);
        return std::make_unique<WordLmSession>(mcfg, std::move(params),
                                               config);
    }
    ECHO_FATAL(path, ": checkpoint matches no known model family "
                     "(no embedding.table / src_embedding.table)");
}

// ---------------------------------------------------------------- LM --

WordLmSession::WordLmSession(models::WordLmConfig model_config,
                             models::ParamStore params,
                             SessionConfig config)
    : InferenceSession(std::move(config)), mcfg_(model_config),
      params_(std::move(params)),
      stepper_(mcfg_, config_.slots, config_.mode,
               config_.pipeline_spec)
{
}

std::string
WordLmSession::describe() const
{
    std::ostringstream oss;
    oss << "word_lm vocab=" << mcfg_.vocab << " hidden=" << mcfg_.hidden
        << " layers=" << mcfg_.layers << " slots=" << config_.slots;
    return oss.str();
}

void
WordLmSession::runBatch(const MicroBatch &mb, std::vector<Response> &out)
{
    validateBatch(mb, config_);
    journalBatch(mb);
    obs::Span span;
    if (obs::traceEnabled())
        span.begin("serve", "lm_batch",
                   {{"requests",
                     static_cast<int64_t>(mb.requests.size())},
                    {"bucket", mb.bucket_len}});

    const int64_t b = config_.slots;
    const int64_t n = static_cast<int64_t>(mb.requests.size());
    out.assign(mb.requests.size(), Response{});

    Tensor token(Shape({b}));
    models::WordLmStepper::State state = stepper_.initialState();
    std::vector<double> logp;

    // Fixed step count per bucket: rows whose prefix ends early keep
    // stepping on kPad so the batch shape — and hence every row's
    // arithmetic — is composition-independent.
    for (int64_t t = 0; t < mb.bucket_len; ++t) {
        for (int64_t r = 0; r < b; ++r) {
            const bool live =
                r < n &&
                t < static_cast<int64_t>(mb.requests[r].tokens.size());
            token.at(r) = static_cast<float>(
                live ? mb.requests[r].tokens[static_cast<size_t>(t)]
                     : data::Vocab::kPad);
        }
        const Tensor logits = stepper_.step(params_, token, state);

        // A row's next-token distribution is read at its own last
        // prefix position, wherever the bucket boundary is.
        for (int64_t r = 0; r < n; ++r) {
            const Request &req = mb.requests[static_cast<size_t>(r)];
            if (t != static_cast<int64_t>(req.tokens.size()) - 1)
                continue;
            logSoftmaxRow(logits, r, logp);
            const int64_t k = std::clamp<int64_t>(
                req.top_k, 1, static_cast<int64_t>(logp.size()));
            std::vector<int64_t> ids(logp.size());
            for (size_t j = 0; j < ids.size(); ++j)
                ids[j] = static_cast<int64_t>(j);
            std::partial_sort(
                ids.begin(), ids.begin() + k, ids.end(),
                [&](int64_t a, int64_t c) {
                    const double pa = logp[static_cast<size_t>(a)];
                    const double pc = logp[static_cast<size_t>(c)];
                    return pa != pc ? pa > pc : a < c;
                });
            Response &resp = out[static_cast<size_t>(r)];
            resp.id = req.id;
            resp.ok = true;
            resp.bucket_len = mb.bucket_len;
            resp.batch_requests = n;
            for (int64_t j = 0; j < k; ++j) {
                resp.tokens.push_back(ids[static_cast<size_t>(j)]);
                resp.scores.push_back(static_cast<float>(
                    logp[static_cast<size_t>(ids[static_cast<size_t>(j)])]));
            }
        }
    }
}

// --------------------------------------------------------------- NMT --

NmtSession::NmtSession(models::NmtConfig model_config,
                       models::ParamStore params, SessionConfig config)
    : InferenceSession(std::move(config)), mcfg_(model_config),
      params_(std::move(params)),
      greedy_(config_.buckets.size()), beam_(config_.buckets.size())
{
    mcfg_.batch = config_.slots;
    mcfg_.src_len = config_.buckets.back();
}

NmtSession::~NmtSession() = default;

std::string
NmtSession::describe() const
{
    std::ostringstream oss;
    oss << "nmt src_vocab=" << mcfg_.src_vocab
        << " tgt_vocab=" << mcfg_.tgt_vocab
        << " hidden=" << mcfg_.hidden
        << " enc_layers=" << mcfg_.enc_layers
        << (mcfg_.bidirectional ? " bidir" : " unidir")
        << " slots=" << config_.slots
        << " beam=" << config_.beam_width;
    return oss.str();
}

const models::NmtDecoder &
NmtSession::greedyDecoder(int64_t bucket_idx)
{
    auto &slot = greedy_[static_cast<size_t>(bucket_idx)];
    if (!slot)
        slot = std::make_unique<NmtDecoder>(
            mcfg_, config_.slots,
            config_.buckets[static_cast<size_t>(bucket_idx)],
            config_.mode, config_.pipeline_spec);
    return *slot;
}

const models::NmtDecoder &
NmtSession::beamDecoder(int64_t bucket_idx)
{
    auto &slot = beam_[static_cast<size_t>(bucket_idx)];
    if (!slot)
        slot = std::make_unique<NmtDecoder>(
            mcfg_, config_.beam_width,
            config_.buckets[static_cast<size_t>(bucket_idx)],
            config_.mode, config_.pipeline_spec);
    return *slot;
}

void
NmtSession::runBatch(const MicroBatch &mb, std::vector<Response> &out)
{
    validateBatch(mb, config_);
    journalBatch(mb);
    obs::Span span;
    if (obs::traceEnabled())
        span.begin("serve", "nmt_batch",
                   {{"requests",
                     static_cast<int64_t>(mb.requests.size())},
                    {"bucket", mb.bucket_len}});

    const int64_t b = config_.slots;
    const int64_t n = static_cast<int64_t>(mb.requests.size());
    const int64_t bucket_idx = bucketIndex(mb.bucket_len);
    out.assign(mb.requests.size(), Response{});

    // One padded source tensor and ONE encoder run cover the whole
    // micro-batch; beam requests reuse their encoder row via tiling.
    Tensor src = Tensor::zeros(Shape({b, mb.bucket_len}));
    for (int64_t r = 0; r < n; ++r) {
        const auto &toks = mb.requests[static_cast<size_t>(r)].tokens;
        for (size_t t = 0; t < toks.size(); ++t)
            src.at(r, static_cast<int64_t>(t)) =
                static_cast<float>(toks[t]);
    }
    const models::NmtDecoder &dec = greedyDecoder(bucket_idx);
    const NmtDecoder::Encoded enc = dec.encode(params_, src);

    for (int64_t r = 0; r < n; ++r) {
        Response &resp = out[static_cast<size_t>(r)];
        resp.id = mb.requests[static_cast<size_t>(r)].id;
        resp.ok = true;
        resp.bucket_len = mb.bucket_len;
        resp.batch_requests = n;
    }

    // Greedy rows decode together on the slot-wide step graph.
    std::vector<bool> greedy_row(static_cast<size_t>(b), false);
    int64_t max_steps = 0;
    for (int64_t r = 0; r < n; ++r) {
        const Request &req = mb.requests[static_cast<size_t>(r)];
        if (req.beam_width <= 1) {
            greedy_row[static_cast<size_t>(r)] = true;
            max_steps = std::max(max_steps, req.max_new_tokens);
        }
    }
    if (max_steps > 0) {
        NmtDecoder::State state = dec.initialState();
        std::vector<bool> done(static_cast<size_t>(b), true);
        for (int64_t r = 0; r < b; ++r)
            done[static_cast<size_t>(r)] = !greedy_row[static_cast<size_t>(r)];
        std::vector<double> logp;
        std::vector<double> raw(static_cast<size_t>(n), 0.0);
        for (int64_t t = 0; t < max_steps; ++t) {
            const Tensor logits = dec.step(params_, state, enc);
            bool all_done = true;
            for (int64_t r = 0; r < b; ++r) {
                // Deterministic argmax (first maximum) on every row,
                // live or not, so the fed-back token stream is a pure
                // function of the row.
                int64_t best = 0;
                float best_score = logits.at(r, 0);
                for (int64_t j = 1; j < mcfg_.tgt_vocab; ++j)
                    if (logits.at(r, j) > best_score) {
                        best_score = logits.at(r, j);
                        best = j;
                    }
                state.token.at(r) = static_cast<float>(best);
                if (done[static_cast<size_t>(r)])
                    continue;
                const Request &req =
                    mb.requests[static_cast<size_t>(r)];
                Response &resp = out[static_cast<size_t>(r)];
                if (best == data::Vocab::kEos) {
                    done[static_cast<size_t>(r)] = true;
                } else {
                    logSoftmaxRow(logits, r, logp);
                    resp.tokens.push_back(best);
                    raw[static_cast<size_t>(r)] +=
                        logp[static_cast<size_t>(best)];
                    if (static_cast<int64_t>(resp.tokens.size()) >=
                        req.max_new_tokens)
                        done[static_cast<size_t>(r)] = true;
                }
                all_done = all_done && done[static_cast<size_t>(r)];
            }
            if (all_done)
                break;
        }
        for (int64_t r = 0; r < n; ++r)
            if (greedy_row[static_cast<size_t>(r)])
                out[static_cast<size_t>(r)].scores = {
                    static_cast<float>(raw[static_cast<size_t>(r)])};
    }

    // Beam rows decode one request at a time on the beam-wide graph.
    for (int64_t r = 0; r < n; ++r) {
        const Request &req = mb.requests[static_cast<size_t>(r)];
        if (req.beam_width <= 1)
            continue;
        const models::NmtDecoder &bdec = beamDecoder(bucket_idx);
        const NmtDecoder::Encoded tiled =
            tileEncoderRow(enc, r, bdec.batch());
        const int width = std::clamp(req.beam_width, 1,
                                     config_.beam_width);
        const BeamHypothesis hyp =
            beamSearch(bdec, params_, tiled, width, req.max_new_tokens,
                       config_.beam_alpha);
        Response &resp = out[static_cast<size_t>(r)];
        resp.tokens = hyp.tokens;
        resp.scores = {hyp.score};
    }
}

} // namespace echo::serve
