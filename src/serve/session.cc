#include "serve/session.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "core/logging.h"
#include "data/vocab.h"
#include "models/serialize.h"
#include "obs/trace.h"
#include "serve/beam.h"
#include "tensor/pack_cache.h"
#include "tune/tuner.h"

namespace echo::serve {

namespace {

using models::NmtDecoder;
using models::ParamStore;

/** Deterministic log-softmax of one logits row (fixed index order). */
void
logSoftmaxRow(const Tensor &logits, int64_t r, std::vector<double> &out)
{
    const int64_t v = logits.shape()[1];
    out.resize(static_cast<size_t>(v));
    double mx = logits.at(r, 0);
    for (int64_t j = 1; j < v; ++j)
        mx = std::max(mx, static_cast<double>(logits.at(r, j)));
    double sum = 0.0;
    for (int64_t j = 0; j < v; ++j)
        sum += std::exp(static_cast<double>(logits.at(r, j)) - mx);
    const double log_z = mx + std::log(sum);
    for (int64_t j = 0; j < v; ++j)
        out[static_cast<size_t>(j)] =
            static_cast<double>(logits.at(r, j)) - log_z;
}

/**
 * The word-LM payload: top-k next-token ids and log-probabilities of
 * row @p r of @p logits.  One function serves the run-to-completion
 * and continuous paths so their payload bytes agree by construction.
 */
void
lmTopKPayload(const Tensor &logits, int64_t r, const Request &req,
              std::vector<double> &logp, Response &resp)
{
    logSoftmaxRow(logits, r, logp);
    const int64_t k = std::clamp<int64_t>(
        req.top_k, 1, static_cast<int64_t>(logp.size()));
    std::vector<int64_t> ids(logp.size());
    for (size_t j = 0; j < ids.size(); ++j)
        ids[j] = static_cast<int64_t>(j);
    std::partial_sort(ids.begin(), ids.begin() + k, ids.end(),
                      [&](int64_t a, int64_t c) {
                          const double pa = logp[static_cast<size_t>(a)];
                          const double pc = logp[static_cast<size_t>(c)];
                          return pa != pc ? pa > pc : a < c;
                      });
    for (int64_t j = 0; j < k; ++j) {
        resp.tokens.push_back(ids[static_cast<size_t>(j)]);
        resp.scores.push_back(static_cast<float>(
            logp[static_cast<size_t>(ids[static_cast<size_t>(j)])]));
    }
}

const Tensor &
storedTensor(const ParamStore &params, const std::string &name,
             const std::string &path)
{
    auto it = params.find(name);
    if (it == params.end())
        ECHO_FATAL(path, ": checkpoint is missing tensor '", name, "'");
    return it->second;
}

/** Count consecutive layers named "<prefix>.l<i>.wx" from i = 0. */
int64_t
countLayers(const ParamStore &params, const std::string &prefix)
{
    int64_t n = 0;
    while (params.count(prefix + ".l" + std::to_string(n) + ".wx"))
        ++n;
    return n;
}

models::WordLmConfig
inferWordLmConfig(const ParamStore &params, const std::string &path)
{
    models::WordLmConfig cfg;
    const Tensor &table = storedTensor(params, "embedding.table", path);
    ECHO_REQUIRE(table.shape().ndim() == 2,
                 path, ": embedding.table must be 2-D");
    cfg.vocab = table.shape()[0];
    cfg.hidden = table.shape()[1];
    cfg.layers = countLayers(params, "lstm");
    ECHO_REQUIRE(cfg.layers >= 1,
                 path, ": no lstm.l<i>.wx tensors found");
    return cfg;
}

models::NmtConfig
inferNmtConfig(const ParamStore &params, const std::string &path)
{
    models::NmtConfig cfg;
    const Tensor &src =
        storedTensor(params, "src_embedding.table", path);
    const Tensor &tgt =
        storedTensor(params, "tgt_embedding.table", path);
    ECHO_REQUIRE(src.shape().ndim() == 2 && tgt.shape().ndim() == 2,
                 path, ": embedding tables must be 2-D");
    cfg.src_vocab = src.shape()[0];
    cfg.hidden = src.shape()[1];
    cfg.tgt_vocab = tgt.shape()[0];
    cfg.bidirectional = params.count("enc.bwd.l0.wx") != 0;
    cfg.enc_layers = cfg.bidirectional ? countLayers(params, "enc.fwd")
                                       : countLayers(params, "enc");
    ECHO_REQUIRE(cfg.enc_layers >= 1,
                 path, ": no encoder layer tensors found");
    return cfg;
}

void
validateSessionConfig(const SessionConfig &cfg)
{
    ECHO_REQUIRE(cfg.slots >= 1, "session needs at least one slot");
    ECHO_REQUIRE(!cfg.buckets.empty() &&
                     std::is_sorted(cfg.buckets.begin(),
                                    cfg.buckets.end()) &&
                     cfg.buckets.front() >= 1,
                 "session buckets must be ascending and positive");
    ECHO_REQUIRE(cfg.beam_width >= 1, "beam width must be positive");
}

void
validateBatch(const MicroBatch &mb, const SessionConfig &cfg)
{
    ECHO_REQUIRE(!mb.requests.empty() &&
                     static_cast<int64_t>(mb.requests.size()) <=
                         cfg.slots,
                 "micro-batch holds ", mb.requests.size(),
                 " requests for ", cfg.slots, " slots");
    for (const Request &r : mb.requests)
        ECHO_REQUIRE(!r.tokens.empty() &&
                         static_cast<int64_t>(r.tokens.size()) <=
                             mb.bucket_len,
                     "request ", r.id, " does not fit bucket ",
                     mb.bucket_len);
}

} // namespace

InferenceSession::InferenceSession(SessionConfig config)
    : config_(std::move(config))
{
    validateSessionConfig(config_);
}

int64_t
InferenceSession::bucketIndex(int64_t bucket_len) const
{
    for (size_t i = 0; i < config_.buckets.size(); ++i)
        if (config_.buckets[i] == bucket_len)
            return static_cast<int64_t>(i);
    ECHO_FATAL("micro-batch bucket ", bucket_len,
               " is not a configured bucket");
}

Response
InferenceSession::runDirect(const Request &r)
{
    MicroBatch mb;
    mb.bucket_len = bucketForLength(config_.buckets,
                                    static_cast<int64_t>(r.tokens.size()));
    ECHO_CHECK(mb.bucket_len > 0, "direct request fits no bucket");
    mb.requests.push_back(r);
    std::vector<Response> out;
    runBatch(mb, out);
    return std::move(out.front());
}

void
InferenceSession::journalBatch(const MicroBatch &mb)
{
    const int64_t pool = bucketIndex(mb.bucket_len);
    for (size_t i = 0; i < mb.requests.size(); ++i) {
        analysis::SlotInterval iv;
        iv.request_id = mb.requests[i].id;
        iv.pool = pool;
        iv.slot = static_cast<int>(i);
        iv.acquired = batch_seq_;
        iv.released = batch_seq_ + 1;
        journal_.push_back(iv);
    }
    ++batch_seq_;
}

std::unique_ptr<InferenceSession>
InferenceSession::fromCheckpoint(const std::string &path,
                                 const SessionConfig &config)
{
    // Load the GEMM tuning cache (and install search-on-miss under
    // ECHO_TUNE=search) before any stepper builds its executors, so
    // the step graphs' per-token GEMMs run tuned from the first
    // request — serving is exactly the workload whose skewed shapes
    // (M = a few in-flight slots, N = vocab) the fixed schedule
    // handles worst.
    tune::ensureGlobalTuner();

    ParamStore params = models::loadParams(path);
    // Register every checkpoint tensor with the persistent pack cache
    // up front: serving weights never change version, so the panels
    // packed on the first decode serve every later request.
    for (const auto &[name, t] : params) {
        (void)name;
        ops::registerPackableTensor(t);
    }
    if (params.count("src_embedding.table")) {
        models::NmtConfig mcfg = inferNmtConfig(params, path);
        return std::make_unique<NmtSession>(mcfg, std::move(params),
                                            config);
    }
    if (params.count("embedding.table")) {
        models::WordLmConfig mcfg = inferWordLmConfig(params, path);
        return std::make_unique<WordLmSession>(mcfg, std::move(params),
                                               config);
    }
    ECHO_FATAL(path, ": checkpoint matches no known model family "
                     "(no embedding.table / src_embedding.table)");
}

// ---------------------------------------------------------------- LM --

WordLmSession::WordLmSession(models::WordLmConfig model_config,
                             models::ParamStore params,
                             SessionConfig config)
    : InferenceSession(std::move(config)), mcfg_(model_config),
      params_(std::move(params)),
      stepper_(mcfg_, config_.slots, config_.mode,
               pass::resolveSpec(pass::PipelineKind::kServeWordLm,
                                 config_.pipeline_spec)),
      lane_state_(stepper_.initialState()),
      lane_req_(static_cast<size_t>(config_.slots)),
      lane_pos_(static_cast<size_t>(config_.slots), 0)
{
}

std::string
WordLmSession::describe() const
{
    std::ostringstream oss;
    oss << "word_lm vocab=" << mcfg_.vocab << " hidden=" << mcfg_.hidden
        << " layers=" << mcfg_.layers << " slots=" << config_.slots;
    return oss.str();
}

void
WordLmSession::runBatch(const MicroBatch &mb, std::vector<Response> &out)
{
    validateBatch(mb, config_);
    journalBatch(mb);
    obs::Span span;
    if (obs::traceEnabled())
        span.begin("serve", "lm_batch",
                   {{"requests",
                     static_cast<int64_t>(mb.requests.size())},
                    {"bucket", mb.bucket_len}});

    const int64_t b = config_.slots;
    const int64_t n = static_cast<int64_t>(mb.requests.size());
    out.assign(mb.requests.size(), Response{});

    Tensor token(Shape({b}));
    models::WordLmStepper::State state = stepper_.initialState();
    std::vector<double> logp;

    // Fixed step count per bucket: rows whose prefix ends early keep
    // stepping on kPad so the batch shape — and hence every row's
    // arithmetic — is composition-independent.
    for (int64_t t = 0; t < mb.bucket_len; ++t) {
        for (int64_t r = 0; r < b; ++r) {
            const bool live =
                r < n &&
                t < static_cast<int64_t>(mb.requests[r].tokens.size());
            token.at(r) = static_cast<float>(
                live ? mb.requests[r].tokens[static_cast<size_t>(t)]
                     : data::Vocab::kPad);
        }
        const Tensor logits = stepper_.step(params_, token, state);

        // A row's next-token distribution is read at its own last
        // prefix position, wherever the bucket boundary is.
        for (int64_t r = 0; r < n; ++r) {
            const Request &req = mb.requests[static_cast<size_t>(r)];
            if (t != static_cast<int64_t>(req.tokens.size()) - 1)
                continue;
            Response &resp = out[static_cast<size_t>(r)];
            resp.id = req.id;
            resp.ok = true;
            resp.bucket_len = mb.bucket_len;
            resp.batch_requests = n;
            lmTopKPayload(logits, r, req, logp, resp);
        }
    }
}

int
WordLmSession::laneOf(const Request &) const
{
    return 0;
}

void
WordLmSession::splice(int lane, int slot, Request r)
{
    ECHO_CHECK(lane == 0 && slot >= 0 &&
                   slot < static_cast<int>(config_.slots) &&
                   lane_req_[static_cast<size_t>(slot)] == nullptr,
               "bad LM splice target lane ", lane, " slot ", slot);
    // Re-initialize the row's carried state: a fresh occupant must see
    // exactly the all-zero (h, c) a solo decode starts from.
    for (Tensor &h : lane_state_.h)
        for (int64_t j = 0; j < mcfg_.hidden; ++j)
            h.at(slot, j) = 0.0f;
    for (Tensor &c : lane_state_.c)
        for (int64_t j = 0; j < mcfg_.hidden; ++j)
            c.at(slot, j) = 0.0f;
    lane_pos_[static_cast<size_t>(slot)] = 0;
    lane_req_[static_cast<size_t>(slot)] =
        std::make_unique<Request>(std::move(r));
}

void
WordLmSession::stepLane(int lane, std::vector<LaneFinish> &out)
{
    ECHO_CHECK(lane == 0, "word_lm has a single lane");
    const int64_t b = config_.slots;
    int64_t live = 0;
    for (const auto &req : lane_req_)
        live += req != nullptr;
    if (live == 0)
        return;

    obs::Span span;
    if (obs::traceEnabled())
        span.begin("serve", "lm_step", {{"live", live}});

    // Occupied rows feed their own next prefix token, free rows pad —
    // the same composition-independence discipline as runBatch.
    Tensor token(Shape({b}));
    for (int64_t r = 0; r < b; ++r) {
        const auto &req = lane_req_[static_cast<size_t>(r)];
        token.at(r) = static_cast<float>(
            req != nullptr
                ? req->tokens[static_cast<size_t>(
                      lane_pos_[static_cast<size_t>(r)])]
                : data::Vocab::kPad);
    }
    const Tensor logits = stepper_.step(params_, token, lane_state_);

    std::vector<double> logp;
    for (int64_t r = 0; r < b; ++r) {
        auto &req = lane_req_[static_cast<size_t>(r)];
        if (req == nullptr)
            continue;
        const int64_t pos = lane_pos_[static_cast<size_t>(r)]++;
        if (pos != static_cast<int64_t>(req->tokens.size()) - 1)
            continue;
        LaneFinish fin;
        fin.slot = static_cast<int>(r);
        fin.resp.id = req->id;
        fin.resp.ok = true;
        fin.resp.batch_requests = live;
        fin.resp.bucket_len = bucketForLength(
            config_.buckets, static_cast<int64_t>(req->tokens.size()));
        lmTopKPayload(logits, r, *req, logp, fin.resp);
        out.push_back(std::move(fin));
        req.reset();
    }
}

void
WordLmSession::evict(int lane, int slot)
{
    ECHO_CHECK(lane == 0 && slot >= 0 &&
                   slot < static_cast<int>(config_.slots),
               "bad LM evict target lane ", lane, " slot ", slot);
    lane_req_[static_cast<size_t>(slot)].reset();
}

// --------------------------------------------------------------- NMT --

/** Carried decode state of one continuous greedy lane. */
struct NmtSession::GreedyLane
{
    models::NmtDecoder::State state;
    models::NmtDecoder::Encoded enc;
    Tensor src;
    /** Occupants (null = free row) and their accumulated payloads. */
    std::vector<std::unique_ptr<Request>> req;
    std::vector<Response> partial;
    std::vector<double> raw;
    /** src changed since enc was computed (a splice happened). */
    bool enc_dirty = true;
};

NmtSession::NmtSession(models::NmtConfig model_config,
                       models::ParamStore params, SessionConfig config)
    : InferenceSession(std::move(config)), mcfg_(model_config),
      params_(std::move(params)),
      greedy_(config_.buckets.size()), beam_(config_.buckets.size()),
      lanes_(config_.buckets.size())
{
    mcfg_.batch = config_.slots;
    mcfg_.src_len = config_.buckets.back();
}

NmtSession::~NmtSession() = default;

std::string
NmtSession::describe() const
{
    std::ostringstream oss;
    oss << "nmt src_vocab=" << mcfg_.src_vocab
        << " tgt_vocab=" << mcfg_.tgt_vocab
        << " hidden=" << mcfg_.hidden
        << " enc_layers=" << mcfg_.enc_layers
        << (mcfg_.bidirectional ? " bidir" : " unidir")
        << " slots=" << config_.slots
        << " beam=" << config_.beam_width;
    return oss.str();
}

const models::NmtDecoder &
NmtSession::greedyDecoder(int64_t bucket_idx)
{
    auto &slot = greedy_[static_cast<size_t>(bucket_idx)];
    if (!slot)
        slot = std::make_unique<NmtDecoder>(
            mcfg_, config_.slots,
            config_.buckets[static_cast<size_t>(bucket_idx)],
            config_.mode,
            pass::resolveSpec(pass::PipelineKind::kServeNmt,
                              config_.pipeline_spec));
    return *slot;
}

const models::NmtDecoder &
NmtSession::beamDecoder(int64_t bucket_idx)
{
    auto &slot = beam_[static_cast<size_t>(bucket_idx)];
    if (!slot)
        slot = std::make_unique<NmtDecoder>(
            mcfg_, config_.beam_width,
            config_.buckets[static_cast<size_t>(bucket_idx)],
            config_.mode,
            pass::resolveSpec(pass::PipelineKind::kServeNmt,
                              config_.pipeline_spec));
    return *slot;
}

NmtSession::GreedyLane &
NmtSession::lane(int lane_idx)
{
    auto &slot = lanes_[static_cast<size_t>(lane_idx)];
    if (!slot) {
        const models::NmtDecoder &dec = greedyDecoder(lane_idx);
        slot = std::make_unique<GreedyLane>();
        slot->state = dec.initialState();
        slot->src = Tensor::zeros(
            Shape({config_.slots,
                   config_.buckets[static_cast<size_t>(lane_idx)]}));
        slot->req.resize(static_cast<size_t>(config_.slots));
        slot->partial.resize(static_cast<size_t>(config_.slots));
        slot->raw.assign(static_cast<size_t>(config_.slots), 0.0);
    }
    return *slot;
}

int
NmtSession::laneOf(const Request &r) const
{
    // Beam search runs on its own beam-width graph, atomically; a
    // zero-budget greedy decode has no steps to interleave.  Both go
    // direct.  Everything else decodes on its bucket's lane.
    if (r.beam_width > 1 || r.max_new_tokens <= 0)
        return kDirectLane;
    const int64_t bucket = bucketForLength(
        config_.buckets, static_cast<int64_t>(r.tokens.size()));
    ECHO_CHECK(bucket > 0, "admitted request fits no bucket");
    return static_cast<int>(bucketIndex(bucket));
}

void
NmtSession::splice(int lane_idx, int slot, Request r)
{
    ECHO_CHECK(lane_idx >= 0 && lane_idx < numLanes() && slot >= 0 &&
                   slot < static_cast<int>(config_.slots),
               "bad NMT splice target lane ", lane_idx, " slot ", slot);
    GreedyLane &ln = lane(lane_idx);
    ECHO_CHECK(ln.req[static_cast<size_t>(slot)] == nullptr,
               "NMT splice into occupied slot ", slot);

    // The new occupant's source row replaces whatever the previous
    // occupant left; the re-encode below is row-wise, so continuing
    // neighbours' encoder rows keep their exact bytes.
    const int64_t bucket_len =
        config_.buckets[static_cast<size_t>(lane_idx)];
    for (int64_t t = 0; t < bucket_len; ++t)
        ln.src.at(slot, t) = 0.0f;
    for (size_t t = 0; t < r.tokens.size(); ++t)
        ln.src.at(slot, static_cast<int64_t>(t)) =
            static_cast<float>(r.tokens[t]);
    ln.enc_dirty = true;

    // Re-initialize the row's carried state to the solo starting
    // point: BOS token, zero h/c/attn.
    ln.state.token.at(slot) = static_cast<float>(data::Vocab::kBos);
    for (int64_t j = 0; j < mcfg_.hidden; ++j) {
        ln.state.h.at(slot, j) = 0.0f;
        ln.state.c.at(slot, j) = 0.0f;
        ln.state.attn.at(slot, j) = 0.0f;
    }

    Response &resp = ln.partial[static_cast<size_t>(slot)];
    resp = Response{};
    resp.id = r.id;
    resp.ok = true;
    resp.bucket_len = bucket_len;
    ln.raw[static_cast<size_t>(slot)] = 0.0;
    ln.req[static_cast<size_t>(slot)] =
        std::make_unique<Request>(std::move(r));
}

void
NmtSession::stepLane(int lane_idx, std::vector<LaneFinish> &out)
{
    ECHO_CHECK(lane_idx >= 0 && lane_idx < numLanes(),
               "bad NMT lane ", lane_idx);
    GreedyLane &ln = lane(lane_idx);
    const int64_t b = config_.slots;
    int64_t live = 0;
    for (const auto &req : ln.req)
        live += req != nullptr;
    if (live == 0)
        return;

    obs::Span span;
    if (obs::traceEnabled())
        span.begin("serve", "nmt_step",
                   {{"live", live}, {"lane", int64_t(lane_idx)}});

    const models::NmtDecoder &dec = greedyDecoder(lane_idx);
    if (ln.enc_dirty) {
        ln.enc = dec.encode(params_, ln.src);
        ln.enc_dirty = false;
    }

    const Tensor logits = dec.step(params_, ln.state, ln.enc);
    std::vector<double> logp;
    for (int64_t r = 0; r < b; ++r) {
        // Deterministic argmax (first maximum) on every row, live or
        // not, so the fed-back token stream is a pure function of the
        // row — identical to the run-to-completion loop.
        int64_t best = 0;
        float best_score = logits.at(r, 0);
        for (int64_t j = 1; j < mcfg_.tgt_vocab; ++j)
            if (logits.at(r, j) > best_score) {
                best_score = logits.at(r, j);
                best = j;
            }
        ln.state.token.at(r) = static_cast<float>(best);
        auto &req = ln.req[static_cast<size_t>(r)];
        if (req == nullptr)
            continue;
        Response &resp = ln.partial[static_cast<size_t>(r)];
        bool finished = false;
        if (best == data::Vocab::kEos) {
            finished = true;
        } else {
            logSoftmaxRow(logits, r, logp);
            resp.tokens.push_back(best);
            ln.raw[static_cast<size_t>(r)] +=
                logp[static_cast<size_t>(best)];
            finished = static_cast<int64_t>(resp.tokens.size()) >=
                       req->max_new_tokens;
        }
        if (finished) {
            resp.scores = {
                static_cast<float>(ln.raw[static_cast<size_t>(r)])};
            resp.batch_requests = live;
            LaneFinish fin;
            fin.slot = static_cast<int>(r);
            fin.resp = std::move(resp);
            out.push_back(std::move(fin));
            req.reset();
        }
    }
}

void
NmtSession::evict(int lane_idx, int slot)
{
    ECHO_CHECK(lane_idx >= 0 && lane_idx < numLanes() && slot >= 0 &&
                   slot < static_cast<int>(config_.slots),
               "bad NMT evict target lane ", lane_idx, " slot ", slot);
    GreedyLane &ln = lane(lane_idx);
    ln.req[static_cast<size_t>(slot)].reset();
}

void
NmtSession::runBatch(const MicroBatch &mb, std::vector<Response> &out)
{
    validateBatch(mb, config_);
    journalBatch(mb);
    obs::Span span;
    if (obs::traceEnabled())
        span.begin("serve", "nmt_batch",
                   {{"requests",
                     static_cast<int64_t>(mb.requests.size())},
                    {"bucket", mb.bucket_len}});

    const int64_t b = config_.slots;
    const int64_t n = static_cast<int64_t>(mb.requests.size());
    const int64_t bucket_idx = bucketIndex(mb.bucket_len);
    out.assign(mb.requests.size(), Response{});

    // One padded source tensor and ONE encoder run cover the whole
    // micro-batch; beam requests reuse their encoder row via tiling.
    Tensor src = Tensor::zeros(Shape({b, mb.bucket_len}));
    for (int64_t r = 0; r < n; ++r) {
        const auto &toks = mb.requests[static_cast<size_t>(r)].tokens;
        for (size_t t = 0; t < toks.size(); ++t)
            src.at(r, static_cast<int64_t>(t)) =
                static_cast<float>(toks[t]);
    }
    const models::NmtDecoder &dec = greedyDecoder(bucket_idx);
    const NmtDecoder::Encoded enc = dec.encode(params_, src);

    for (int64_t r = 0; r < n; ++r) {
        Response &resp = out[static_cast<size_t>(r)];
        resp.id = mb.requests[static_cast<size_t>(r)].id;
        resp.ok = true;
        resp.bucket_len = mb.bucket_len;
        resp.batch_requests = n;
    }

    // Greedy rows decode together on the slot-wide step graph.  A
    // zero-budget request never participates: left live it would
    // append one token before its cap check whenever a longer
    // neighbour keeps the loop running, diverging from its solo
    // decode (empty tokens, empty scores).
    std::vector<bool> greedy_row(static_cast<size_t>(b), false);
    int64_t max_steps = 0;
    for (int64_t r = 0; r < n; ++r) {
        const Request &req = mb.requests[static_cast<size_t>(r)];
        if (req.beam_width <= 1 && req.max_new_tokens > 0) {
            greedy_row[static_cast<size_t>(r)] = true;
            max_steps = std::max(max_steps, req.max_new_tokens);
        }
    }
    if (max_steps > 0) {
        NmtDecoder::State state = dec.initialState();
        std::vector<bool> done(static_cast<size_t>(b), true);
        for (int64_t r = 0; r < b; ++r)
            done[static_cast<size_t>(r)] = !greedy_row[static_cast<size_t>(r)];
        std::vector<double> logp;
        std::vector<double> raw(static_cast<size_t>(n), 0.0);
        for (int64_t t = 0; t < max_steps; ++t) {
            const Tensor logits = dec.step(params_, state, enc);
            bool all_done = true;
            for (int64_t r = 0; r < b; ++r) {
                // Deterministic argmax (first maximum) on every row,
                // live or not, so the fed-back token stream is a pure
                // function of the row.
                int64_t best = 0;
                float best_score = logits.at(r, 0);
                for (int64_t j = 1; j < mcfg_.tgt_vocab; ++j)
                    if (logits.at(r, j) > best_score) {
                        best_score = logits.at(r, j);
                        best = j;
                    }
                state.token.at(r) = static_cast<float>(best);
                if (done[static_cast<size_t>(r)])
                    continue;
                const Request &req =
                    mb.requests[static_cast<size_t>(r)];
                Response &resp = out[static_cast<size_t>(r)];
                if (best == data::Vocab::kEos) {
                    done[static_cast<size_t>(r)] = true;
                } else {
                    logSoftmaxRow(logits, r, logp);
                    resp.tokens.push_back(best);
                    raw[static_cast<size_t>(r)] +=
                        logp[static_cast<size_t>(best)];
                    if (static_cast<int64_t>(resp.tokens.size()) >=
                        req.max_new_tokens)
                        done[static_cast<size_t>(r)] = true;
                }
                all_done = all_done && done[static_cast<size_t>(r)];
            }
            if (all_done)
                break;
        }
        for (int64_t r = 0; r < n; ++r)
            if (greedy_row[static_cast<size_t>(r)])
                out[static_cast<size_t>(r)].scores = {
                    static_cast<float>(raw[static_cast<size_t>(r)])};
    }

    // Beam rows decode one request at a time on the beam-wide graph.
    for (int64_t r = 0; r < n; ++r) {
        const Request &req = mb.requests[static_cast<size_t>(r)];
        if (req.beam_width <= 1)
            continue;
        const models::NmtDecoder &bdec = beamDecoder(bucket_idx);
        const NmtDecoder::Encoded tiled =
            tileEncoderRow(enc, r, bdec.batch());
        const int width = std::clamp(req.beam_width, 1,
                                     config_.beam_width);
        const BeamHypothesis hyp =
            beamSearch(bdec, params_, tiled, width, req.max_new_tokens,
                       config_.beam_alpha);
        Response &resp = out[static_cast<size_t>(r)];
        resp.tokens = hyp.tokens;
        resp.scores = {hyp.score};
    }
}

} // namespace echo::serve
