#include "serve/server.h"

#include "core/logging.h"
#include "obs/counters.h"
#include "obs/trace.h"

namespace echo::serve {

Server::Server(std::unique_ptr<InferenceSession> session,
               ServerConfig config)
    : session_(std::move(session)), config_(config),
      queue_(config_.queue_capacity)
{
    ECHO_REQUIRE(session_ != nullptr, "server needs a session");
    worker_ = std::thread([this] { workerLoop(); });
}

Server::~Server()
{
    stop();
}

Response
Server::rejected(const Request &r, RejectReason reason) const
{
    Response resp;
    resp.id = r.id;
    resp.ok = false;
    resp.reject = reason;
    return resp;
}

std::future<Response>
Server::submit(Request r)
{
    static obs::Counter &accepted = obs::counter(
        "serve.requests.accepted", obs::CounterKind::kScheduling);
    static obs::Counter &rejects = obs::counter(
        "serve.requests.rejected", obs::CounterKind::kScheduling);

    r.id = next_id_.fetch_add(1, std::memory_order_relaxed);
    r.enqueued_at = std::chrono::steady_clock::now();

    std::promise<Response> promise;
    std::future<Response> future = promise.get_future();

    RejectReason reason = RejectReason::kNone;
    if (r.tokens.empty())
        reason = RejectReason::kEmpty;
    else if (static_cast<int64_t>(r.tokens.size()) >
             session_->maxLength())
        reason = RejectReason::kTooLong;

    if (reason == RejectReason::kNone) {
        // Register BEFORE pushing: the worker may complete the request
        // before tryPush returns.
        {
            std::lock_guard<std::mutex> lock(inflight_mu_);
            inflight_.emplace(r.id, std::move(promise));
        }
        const int64_t id = r.id;
        reason = queue_.tryPush(std::move(r));
        if (reason == RejectReason::kNone) {
            accepted.add(1);
            std::lock_guard<std::mutex> lock(stats_mu_);
            ++accepted_;
            return future;
        }
        std::lock_guard<std::mutex> lock(inflight_mu_);
        promise = std::move(inflight_.at(id));
        inflight_.erase(id);
    }

    rejects.add(1);
    {
        std::lock_guard<std::mutex> lock(stats_mu_);
        ++rejected_;
    }
    Request stub;
    stub.id = r.id;
    promise.set_value(rejected(stub, reason));
    return future;
}

void
Server::workerLoop()
{
    static obs::Counter &completed_ctr = obs::counter(
        "serve.requests.completed", obs::CounterKind::kScheduling);
    static obs::Counter &batch_ctr = obs::counter(
        "serve.batches", obs::CounterKind::kScheduling);

    BatcherConfig bcfg;
    bcfg.max_batch = session_->config().slots;
    bcfg.max_wait = config_.max_wait;
    bcfg.buckets = session_->config().buckets;
    DynamicBatcher batcher(bcfg, queue_);

    MicroBatch mb;
    std::vector<Response> responses;
    while (batcher.next(mb)) {
        obs::Span span;
        if (obs::traceEnabled())
            span.begin("serve", "micro_batch",
                       {{"requests",
                         static_cast<int64_t>(mb.requests.size())},
                        {"bucket", mb.bucket_len}});
        session_->runBatch(mb, responses);
        const auto now = std::chrono::steady_clock::now();

        batch_ctr.add(1);
        completed_ctr.add(static_cast<int64_t>(responses.size()));
        {
            std::lock_guard<std::mutex> lock(stats_mu_);
            ++batches_;
            batched_requests_ +=
                static_cast<int64_t>(mb.requests.size());
            completed_ += static_cast<int64_t>(responses.size());
            for (size_t i = 0; i < responses.size(); ++i) {
                const double us =
                    std::chrono::duration_cast<
                        std::chrono::nanoseconds>(
                        now - mb.requests[i].enqueued_at)
                        .count() /
                    1000.0;
                responses[i].latency_us = us;
                latency_us_.add(us);
            }
        }
        std::lock_guard<std::mutex> lock(inflight_mu_);
        for (Response &resp : responses) {
            auto it = inflight_.find(resp.id);
            ECHO_CHECK(it != inflight_.end(),
                       "response for unknown request ", resp.id);
            it->second.set_value(std::move(resp));
            inflight_.erase(it);
        }
    }
}

void
Server::stop()
{
    queue_.close();
    if (worker_.joinable())
        worker_.join();
}

ServerStats
Server::stats() const
{
    std::lock_guard<std::mutex> lock(stats_mu_);
    ServerStats s;
    s.accepted = accepted_;
    s.rejected = rejected_;
    s.completed = completed_;
    s.batches = batches_;
    s.mean_batch_requests =
        batches_ == 0 ? 0.0
                      : static_cast<double>(batched_requests_) /
                            static_cast<double>(batches_);
    s.latency_mean_us = latency_us_.mean();
    s.latency_p50_us = latency_us_.p50();
    s.latency_p95_us = latency_us_.p95();
    s.latency_p99_us = latency_us_.p99();
    return s;
}

} // namespace echo::serve
