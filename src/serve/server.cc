#include "serve/server.h"

#include <algorithm>

#include "core/logging.h"
#include "obs/counters.h"
#include "obs/trace.h"

namespace echo::serve {

namespace {

size_t
shedLine(const ServerConfig &config)
{
    if (config.batch_admit_fraction >= 1.0)
        return 0; // no tiering
    const double line = config.batch_admit_fraction *
                        static_cast<double>(config.queue_capacity);
    return std::max<size_t>(1, static_cast<size_t>(line));
}

std::vector<std::unique_ptr<InferenceSession>>
singleton(std::unique_ptr<InferenceSession> session)
{
    std::vector<std::unique_ptr<InferenceSession>> sessions;
    sessions.push_back(std::move(session));
    return sessions;
}

} // namespace

Server::Server(std::unique_ptr<InferenceSession> session,
               ServerConfig config)
    : Server(singleton(std::move(session)), config)
{
}

Server::Server(std::vector<std::unique_ptr<InferenceSession>> sessions,
               ServerConfig config)
    : sessions_(std::move(sessions)), config_(config),
      queue_(config_.queue_capacity, shedLine(config_))
{
    ECHO_REQUIRE(!sessions_.empty(), "server needs a session");
    for (const auto &session : sessions_)
        ECHO_REQUIRE(session != nullptr, "server got a null session");
    if (config_.scheduler == SchedulerKind::kContinuous) {
        std::vector<InferenceSession *> borrowed;
        for (const auto &session : sessions_)
            borrowed.push_back(session.get());
        scheduler_ = std::make_unique<ContinuousScheduler>(
            std::move(borrowed), queue_,
            [this](Response resp) { resolveResponse(std::move(resp)); });
        worker_ = std::thread([this] { scheduler_->run(); });
    } else {
        ECHO_REQUIRE(sessions_.size() == 1,
                     "the run-to-completion batcher drives a single "
                     "session; use SchedulerKind::kContinuous for "
                     "mixed traffic");
        worker_ = std::thread([this] { batchWorkerLoop(); });
    }
}

Server::~Server()
{
    stop();
}

Response
Server::rejected(const Request &r, RejectReason reason) const
{
    Response resp;
    resp.id = r.id;
    resp.ok = false;
    resp.reject = reason;
    return resp;
}

std::future<Response>
Server::submit(Request r)
{
    static obs::Counter &accepted = obs::counter(
        "serve.requests.accepted", obs::CounterKind::kScheduling);
    static obs::Counter &rejects = obs::counter(
        "serve.requests.rejected", obs::CounterKind::kScheduling);

    r.id = next_id_.fetch_add(1, std::memory_order_relaxed);
    r.enqueued_at = std::chrono::steady_clock::now();

    std::promise<Response> promise;
    std::future<Response> future = promise.get_future();

    // Route before admission: length limits are per model family.
    const InferenceSession *target = nullptr;
    if (r.model.empty()) {
        target = sessions_.front().get();
    } else {
        for (const auto &session : sessions_)
            if (r.model == session->kind()) {
                target = session.get();
                break;
            }
    }

    RejectReason reason = RejectReason::kNone;
    if (target == nullptr)
        reason = RejectReason::kBadModel;
    else if (r.tokens.empty())
        reason = RejectReason::kEmpty;
    else if (static_cast<int64_t>(r.tokens.size()) > target->maxLength())
        reason = RejectReason::kTooLong;

    if (reason == RejectReason::kNone) {
        // Register BEFORE pushing: the worker may complete the request
        // before tryPush returns.
        {
            std::lock_guard<std::mutex> lock(inflight_mu_);
            inflight_.emplace(r.id, std::move(promise));
        }
        const int64_t id = r.id;
        reason = queue_.tryPush(std::move(r));
        if (reason == RejectReason::kNone) {
            accepted.add(1);
            std::lock_guard<std::mutex> lock(stats_mu_);
            ++accepted_;
            return future;
        }
        std::lock_guard<std::mutex> lock(inflight_mu_);
        promise = std::move(inflight_.at(id));
        inflight_.erase(id);
    }

    rejects.add(1);
    {
        std::lock_guard<std::mutex> lock(stats_mu_);
        ++rejected_;
    }
    Request stub;
    stub.id = r.id;
    promise.set_value(rejected(stub, reason));
    return future;
}

bool
Server::cancel(int64_t id)
{
    if (scheduler_ == nullptr)
        return false;
    // Forward only ids still inflight: the scheduler retains a cancel
    // until the id terminates, so a cancel for an already-resolved (or
    // never-admitted) request must not enter its set.
    {
        std::lock_guard<std::mutex> lock(inflight_mu_);
        if (inflight_.find(id) == inflight_.end())
            return false;
    }
    scheduler_->cancel(id);
    return true;
}

void
Server::resolveResponse(Response resp)
{
    {
        std::lock_guard<std::mutex> lock(stats_mu_);
        if (resp.ok) {
            ++completed_;
            latency_us_.add(resp.latency_us);
            wait_us_.add(resp.wait_us);
        } else if (resp.reject == RejectReason::kCancelled) {
            ++cancelled_;
        } else if (resp.reject == RejectReason::kExpired) {
            ++expired_;
        }
    }
    std::lock_guard<std::mutex> lock(inflight_mu_);
    auto it = inflight_.find(resp.id);
    ECHO_CHECK(it != inflight_.end(), "response for unknown request ",
               resp.id);
    it->second.set_value(std::move(resp));
    inflight_.erase(it);
}

void
Server::batchWorkerLoop()
{
    static obs::Counter &completed_ctr = obs::counter(
        "serve.requests.completed", obs::CounterKind::kScheduling);
    static obs::Counter &batch_ctr = obs::counter(
        "serve.batches", obs::CounterKind::kScheduling);

    InferenceSession &session = *sessions_.front();
    BatcherConfig bcfg;
    bcfg.max_batch = session.config().slots;
    bcfg.max_wait = config_.max_wait;
    bcfg.buckets = session.config().buckets;
    DynamicBatcher batcher(bcfg, queue_);

    MicroBatch mb;
    std::vector<Response> responses;
    while (batcher.next(mb)) {
        obs::Span span;
        if (obs::traceEnabled())
            span.begin("serve", "micro_batch",
                       {{"requests",
                         static_cast<int64_t>(mb.requests.size())},
                        {"bucket", mb.bucket_len}});
        // Queue-wait ends at emission, exactly once per request: a
        // request is in exactly one emitted batch, however long it sat
        // in pending_ across earlier flushes of other buckets.
        const auto emitted_at = std::chrono::steady_clock::now();
        session.runBatch(mb, responses);
        const auto now = std::chrono::steady_clock::now();

        batch_ctr.add(1);
        completed_ctr.add(static_cast<int64_t>(responses.size()));
        {
            std::lock_guard<std::mutex> lock(stats_mu_);
            ++batches_;
            batched_requests_ +=
                static_cast<int64_t>(mb.requests.size());
            completed_ += static_cast<int64_t>(responses.size());
            for (size_t i = 0; i < responses.size(); ++i) {
                const double us =
                    std::chrono::duration_cast<
                        std::chrono::nanoseconds>(
                        now - mb.requests[i].enqueued_at)
                        .count() /
                    1000.0;
                const double wait =
                    std::chrono::duration_cast<
                        std::chrono::nanoseconds>(
                        emitted_at - mb.requests[i].enqueued_at)
                        .count() /
                    1000.0;
                responses[i].latency_us = us;
                responses[i].wait_us = wait;
                latency_us_.add(us);
                wait_us_.add(wait);
            }
        }
        std::lock_guard<std::mutex> lock(inflight_mu_);
        for (Response &resp : responses) {
            auto it = inflight_.find(resp.id);
            ECHO_CHECK(it != inflight_.end(),
                       "response for unknown request ", resp.id);
            it->second.set_value(std::move(resp));
            inflight_.erase(it);
        }
    }
}

void
Server::stop()
{
    queue_.close();
    if (worker_.joinable())
        worker_.join();
}

ServerStats
Server::stats() const
{
    std::lock_guard<std::mutex> lock(stats_mu_);
    ServerStats s;
    s.accepted = accepted_;
    s.rejected = rejected_;
    s.completed = completed_;
    s.cancelled = cancelled_;
    s.expired = expired_;
    if (scheduler_ != nullptr) {
        const SchedulerStats sched = scheduler_->stats();
        s.batches = sched.steps + sched.direct;
        s.mean_batch_requests =
            sched.steps == 0
                ? 0.0
                : static_cast<double>(sched.stepped_rows) /
                      static_cast<double>(sched.steps);
        s.splices = sched.splices;
        s.recycled_slots = sched.recycled;
    } else {
        s.batches = batches_;
        s.mean_batch_requests =
            batches_ == 0 ? 0.0
                          : static_cast<double>(batched_requests_) /
                                static_cast<double>(batches_);
    }
    s.latency_mean_us = latency_us_.mean();
    s.latency_p50_us = latency_us_.p50();
    s.latency_p95_us = latency_us_.p95();
    s.latency_p99_us = latency_us_.p99();
    s.wait_count = static_cast<int64_t>(wait_us_.count());
    s.wait_mean_us = wait_us_.mean();
    s.wait_p50_us = wait_us_.p50();
    s.wait_p95_us = wait_us_.p95();
    s.wait_p99_us = wait_us_.p99();
    return s;
}

std::vector<analysis::SlotLease>
Server::leaseJournal() const
{
    ECHO_REQUIRE(scheduler_ != nullptr,
                 "the slot-recycling journal exists only under "
                 "SchedulerKind::kContinuous");
    return scheduler_->leaseJournal();
}

int64_t
Server::journalSlots() const
{
    int64_t slots = 1;
    for (const auto &session : sessions_)
        slots = std::max(slots, session->config().slots);
    return slots;
}

} // namespace echo::serve
