#include "serve/batcher.h"

#include <algorithm>

#include "core/logging.h"
#include "obs/counters.h"

namespace echo::serve {

int64_t
bucketForLength(const std::vector<int64_t> &buckets, int64_t len)
{
    for (int64_t b : buckets)
        if (len <= b)
            return b;
    return -1;
}

DynamicBatcher::DynamicBatcher(BatcherConfig config, RequestQueue &queue)
    : config_(std::move(config)), queue_(queue)
{
    ECHO_REQUIRE(config_.max_batch >= 1,
                 "batcher needs at least one slot");
    ECHO_REQUIRE(!config_.buckets.empty(), "batcher needs length buckets");
    ECHO_REQUIRE(
        std::is_sorted(config_.buckets.begin(), config_.buckets.end()),
        "length buckets must be ascending");
}

void
DynamicBatcher::drainQueue()
{
    Request r;
    while (queue_.tryPop(r))
        pending_.push_back(std::move(r));
}

bool
DynamicBatcher::next(MicroBatch &out)
{
    static obs::Counter &batches = obs::counter(
        "serve.batcher.batches", obs::CounterKind::kScheduling);
    static obs::Counter &deadline_hits = obs::counter(
        "serve.batcher.deadline_batches", obs::CounterKind::kScheduling);

    out.requests.clear();
    out.bucket_len = 0;

    // Need at least one request; the oldest pending one anchors the
    // batch and owns the wait deadline.
    if (pending_.empty()) {
        Request r;
        if (!queue_.pop(r))
            return false; // closed and drained
        pending_.push_back(std::move(r));
    }

    const Request &anchor = pending_.front();
    const int64_t bucket = bucketForLength(
        config_.buckets, static_cast<int64_t>(anchor.tokens.size()));
    ECHO_CHECK(bucket > 0, "admitted request fits no bucket");
    const auto deadline = anchor.enqueued_at + config_.max_wait;

    bool deadline_expired = false;
    for (;;) {
        drainQueue();
        int64_t in_bucket = 0;
        for (const Request &r : pending_)
            if (bucketForLength(config_.buckets,
                                static_cast<int64_t>(r.tokens.size())) ==
                bucket)
                ++in_bucket;
        if (in_bucket >= config_.max_batch)
            break; // full batch
        const auto now = std::chrono::steady_clock::now();
        if (now >= deadline || queue_.closed()) {
            deadline_expired = now >= deadline;
            break;
        }
        queue_.waitNonEmpty(
            std::chrono::duration_cast<std::chrono::microseconds>(
                deadline - now));
    }
    // A request can land in the queue during the final waitNonEmpty
    // sleep — i.e. exactly at the deadline.  Without this drain it
    // would miss the flushing batch, anchor the NEXT batch, and sit
    // out a second full max_wait (its wait latency counted against
    // both batches).  Drain once more so boundary arrivals ride along.
    drainQueue();

    // Take up to max_batch same-bucket requests in FIFO order.
    out.bucket_len = bucket;
    for (auto it = pending_.begin();
         it != pending_.end() &&
         static_cast<int64_t>(out.requests.size()) < config_.max_batch;) {
        if (bucketForLength(config_.buckets,
                            static_cast<int64_t>(it->tokens.size())) ==
            bucket) {
            out.requests.push_back(std::move(*it));
            it = pending_.erase(it);
        } else {
            ++it;
        }
    }
    batches.add(1);
    if (deadline_expired &&
        static_cast<int64_t>(out.requests.size()) < config_.max_batch)
        deadline_hits.add(1);
    return true;
}

} // namespace echo::serve
