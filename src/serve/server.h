/**
 * @file
 * The serving front end: admission, a worker thread driving either the
 * continuous (iteration-level) scheduler or the legacy run-to-completion
 * dynamic batcher, and latency/wait accounting.
 *
 * submit() is thread-safe and non-blocking: invalid or over-capacity
 * requests resolve their future immediately with a RejectReason;
 * admitted requests resolve when they complete (payload), are
 * cancelled, or their deadline budget expires.  One worker thread owns
 * the sessions (sessions are single-consumer); the parallelism that
 * matters is INSIDE the step graphs, which run on the shared thread
 * pool via the parallel executor.
 *
 * A server may load several sessions (one word-LM, one NMT) and serve
 * mixed traffic: Request::model routes each request to the session
 * whose kind() matches.
 *
 * Latency and queue-wait are tracked in core Histograms (log-spaced
 * buckets), so stats() reports p50/p95/p99 without per-request state.
 */
#ifndef ECHO_SERVE_SERVER_H
#define ECHO_SERVE_SERVER_H

#include <atomic>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>

#include "core/stats.h"
#include "serve/batcher.h"
#include "serve/queue.h"
#include "serve/scheduler.h"
#include "serve/session.h"

namespace echo::serve {

/** Which scheduling loop the worker runs. */
enum class SchedulerKind
{
    /** Iteration-level: slots recycle on EOS, waiting requests splice
     *  into running step graphs mid-flight.  The default. */
    kContinuous,
    /** Legacy run-to-completion micro-batches (the differential
     *  reference, and the baseline the open-loop bench compares). */
    kDynamicBatch,
};

/** Server-level knobs (batching policy rides along). */
struct ServerConfig
{
    /** Admission-queue capacity; pushes beyond it reject. */
    size_t queue_capacity = 64;

    /** kDynamicBatch only: how long the oldest pending request may
     *  wait for same-bucket companions. */
    std::chrono::microseconds max_wait{2000};

    SchedulerKind scheduler = SchedulerKind::kContinuous;

    /** SLO shed line as a fraction of queue_capacity: batch-tier
     *  requests reject kOverloaded once the queue is this full.
     *  >= 1.0 disables tiered admission. */
    double batch_admit_fraction = 0.75;
};

/** Aggregate counters and latency percentiles. */
struct ServerStats
{
    int64_t accepted = 0;
    int64_t rejected = 0;
    int64_t completed = 0; ///< payloads delivered (ok responses)
    int64_t cancelled = 0; ///< admitted, then cancelled by the client
    int64_t expired = 0;   ///< admitted, then deadline budget ran out
    /** kDynamicBatch: micro-batches run.  kContinuous: scheduler step
     *  passes plus atomic direct decodes. */
    int64_t batches = 0;
    double mean_batch_requests = 0.0;
    /** kContinuous only: splices, and splices into recycled slots. */
    int64_t splices = 0;
    int64_t recycled_slots = 0;
    double latency_mean_us = 0.0;
    double latency_p50_us = 0.0;
    double latency_p95_us = 0.0;
    double latency_p99_us = 0.0;
    /** Admission -> emission/splice, recorded exactly once per
     *  completed request (wait_count == completed). */
    int64_t wait_count = 0;
    double wait_mean_us = 0.0;
    double wait_p50_us = 0.0;
    double wait_p95_us = 0.0;
    double wait_p99_us = 0.0;
};

/** Owns the queue, the worker, and the sessions. */
class Server
{
  public:
    Server(std::unique_ptr<InferenceSession> session,
           ServerConfig config);
    /** Mixed-traffic server: one session per model family. */
    Server(std::vector<std::unique_ptr<InferenceSession>> sessions,
           ServerConfig config);
    ~Server();

    Server(const Server &) = delete;
    Server &operator=(const Server &) = delete;

    /**
     * Submit one request (any thread).  The returned future always
     * resolves: immediately on rejection, after decoding otherwise.
     * @p r.id and r.enqueued_at are assigned here.
     */
    std::future<Response> submit(Request r);

    /**
     * Best-effort cancellation (kContinuous only): an admitted request
     * resolves kCancelled — whether it is still queued, waiting, or
     * mid-decode (evicted, its slot recycled).  False when the
     * scheduler cannot cancel (legacy mode) or the id is no longer
     * inflight (already resolved, or never admitted) — a harmless
     * no-op; the request's outcome is unchanged.
     */
    bool cancel(int64_t id);

    /**
     * Stop admitting, decode everything already accepted, join the
     * worker.  Idempotent; the destructor calls it.
     */
    void stop();

    ServerStats stats() const;

    size_t numSessions() const { return sessions_.size(); }
    const InferenceSession &session(size_t i = 0) const
    {
        return *sessions_.at(i);
    }

    /** kContinuous: the slot-recycling journal (pools offset per
     *  session) for echo-lint --serve-journal.  Complete after
     *  stop(). */
    std::vector<analysis::SlotLease> leaseJournal() const;

    /** The --serve-slots value matching leaseJournal(). */
    int64_t journalSlots() const;

  private:
    void batchWorkerLoop();
    void resolveResponse(Response resp);
    Response rejected(const Request &r, RejectReason reason) const;

    std::vector<std::unique_ptr<InferenceSession>> sessions_;
    ServerConfig config_;
    RequestQueue queue_;
    std::unique_ptr<ContinuousScheduler> scheduler_;

    std::mutex inflight_mu_;
    std::unordered_map<int64_t, std::promise<Response>> inflight_;
    std::atomic<int64_t> next_id_{0};

    mutable std::mutex stats_mu_;
    Histogram latency_us_{1.0, 1e9, 16};
    Histogram wait_us_{1.0, 1e9, 16};
    int64_t accepted_ = 0;
    int64_t rejected_ = 0;
    int64_t completed_ = 0;
    int64_t cancelled_ = 0;
    int64_t expired_ = 0;
    int64_t batches_ = 0;
    int64_t batched_requests_ = 0;

    std::thread worker_;
};

} // namespace echo::serve

#endif // ECHO_SERVE_SERVER_H
