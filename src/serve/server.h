/**
 * @file
 * The serving front end: admission, a worker loop driving the dynamic
 * batcher into an InferenceSession, and latency accounting.
 *
 * submit() is thread-safe and non-blocking: invalid or over-capacity
 * requests resolve their future immediately with a RejectReason;
 * admitted requests resolve when their micro-batch completes.  One
 * worker thread owns the session (sessions are single-consumer); the
 * parallelism that matters is INSIDE the batch — the step graphs run
 * on the shared thread pool via the parallel executor.
 *
 * Latency is tracked in a core Histogram (log-spaced buckets), so
 * stats() reports p50/p95/p99 without retaining per-request state.
 */
#ifndef ECHO_SERVE_SERVER_H
#define ECHO_SERVE_SERVER_H

#include <atomic>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>

#include "core/stats.h"
#include "serve/batcher.h"
#include "serve/queue.h"
#include "serve/session.h"

namespace echo::serve {

/** Server-level knobs (batching policy rides along). */
struct ServerConfig
{
    /** Admission-queue capacity; pushes beyond it reject. */
    size_t queue_capacity = 64;

    std::chrono::microseconds max_wait{2000};
};

/** Aggregate counters and latency percentiles. */
struct ServerStats
{
    int64_t accepted = 0;
    int64_t rejected = 0;
    int64_t completed = 0;
    int64_t batches = 0;
    double mean_batch_requests = 0.0;
    double latency_mean_us = 0.0;
    double latency_p50_us = 0.0;
    double latency_p95_us = 0.0;
    double latency_p99_us = 0.0;
};

/** Owns the queue, the worker, and the session. */
class Server
{
  public:
    Server(std::unique_ptr<InferenceSession> session,
           ServerConfig config);
    ~Server();

    Server(const Server &) = delete;
    Server &operator=(const Server &) = delete;

    /**
     * Submit one request (any thread).  The returned future always
     * resolves: immediately on rejection, after decoding otherwise.
     * @p r.id and r.enqueued_at are assigned here.
     */
    std::future<Response> submit(Request r);

    /**
     * Stop admitting, decode everything already accepted, join the
     * worker.  Idempotent; the destructor calls it.
     */
    void stop();

    ServerStats stats() const;
    const InferenceSession &session() const { return *session_; }

  private:
    void workerLoop();
    Response rejected(const Request &r, RejectReason reason) const;

    std::unique_ptr<InferenceSession> session_;
    ServerConfig config_;
    RequestQueue queue_;

    std::mutex inflight_mu_;
    std::unordered_map<int64_t, std::promise<Response>> inflight_;
    std::atomic<int64_t> next_id_{0};

    mutable std::mutex stats_mu_;
    Histogram latency_us_{1.0, 1e9, 16};
    int64_t accepted_ = 0;
    int64_t rejected_ = 0;
    int64_t completed_ = 0;
    int64_t batches_ = 0;
    int64_t batched_requests_ = 0;

    std::thread worker_;
};

} // namespace echo::serve

#endif // ECHO_SERVE_SERVER_H
