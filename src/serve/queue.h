/**
 * @file
 * Bounded MPMC request queue with admission control.
 *
 * Producers (client threads calling Server::submit) tryPush and are
 * told synchronously when the queue is full — backpressure is a
 * reject-with-reason, never a blocking producer.  The consumer (the
 * batcher) pops blockingly and can wait with a deadline so batch
 * deadlines do not turn into busy polling.
 *
 * close() makes every subsequent tryPush fail with kShutdown and wakes
 * all waiting consumers; pop() keeps draining what was admitted before
 * the close, so no accepted request is ever dropped.
 */
#ifndef ECHO_SERVE_QUEUE_H
#define ECHO_SERVE_QUEUE_H

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>

#include "serve/request.h"

namespace echo::serve {

/** Bounded FIFO of admitted requests; see the file comment. */
class RequestQueue
{
  public:
    /**
     * @p batch_capacity is the SLO shed line: batch-tier requests are
     * refused (kOverloaded) once the queue holds that many items, so
     * the headroom up to @p capacity stays reserved for interactive
     * traffic.  0 means no tiering (shed line == capacity).
     */
    explicit RequestQueue(size_t capacity, size_t batch_capacity = 0);

    size_t capacity() const { return capacity_; }
    size_t batchCapacity() const { return batch_capacity_; }

    /** Current depth (racy snapshot; for tests and counters). */
    size_t size() const;

    /**
     * Admit @p r or refuse immediately: kQueueFull at capacity,
     * kOverloaded for batch-tier pushes past the shed line, kShutdown
     * after close().  Never blocks.
     */
    RejectReason tryPush(Request r);

    /**
     * Pop the oldest request, blocking while the queue is open and
     * empty.  Returns false only when the queue is closed AND fully
     * drained.
     */
    bool pop(Request &out);

    /** Pop without blocking; false when empty. */
    bool tryPop(Request &out);

    /**
     * Block until the queue is non-empty, closed, or @p timeout
     * elapsed.  True when an item is available.
     */
    bool waitNonEmpty(std::chrono::microseconds timeout);

    /** Stop admitting; wake every waiter.  Idempotent. */
    void close();

    bool closed() const;

  private:
    const size_t capacity_;
    const size_t batch_capacity_;
    mutable std::mutex mu_;
    std::condition_variable cv_;
    std::deque<Request> items_;
    bool closed_ = false;
};

} // namespace echo::serve

#endif // ECHO_SERVE_QUEUE_H
