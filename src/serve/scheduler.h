/**
 * @file
 * The continuous (iteration-level) scheduler: the run-to-completion
 * micro-batch loop's replacement.
 *
 * One pass of the loop: drain the queue, apply cancellations and
 * deadline expiries (waiting AND running), splice waiting requests
 * into free step-graph rows (interactive tier first, then admission
 * order), run any atomic direct items (NMT beam, zero-budget decodes),
 * then advance every lane that has occupants by exactly one step.  A
 * row whose payload completes during the step frees its slot the same
 * instant — the next pass can splice a waiting request into it, which
 * is what lets short requests overtake long neighbours instead of
 * waiting out a whole micro-batch.
 *
 * Determinism: sessions re-initialize a row's carried state at splice
 * time and every step-graph op is row-wise, so a request's payload is
 * a pure function of (parameters, request) — independent of arrival
 * order, splice timing, slot churn, and thread count.  The scheduler
 * never has to think about payloads, only about occupancy.
 *
 * Every occupancy is journalled as an analysis::SlotLease over
 * scheduler-pass numbers (half-open [acquired, released)); pools are
 * numbered per session with disjoint base offsets so one journal
 * covers mixed word-LM + NMT traffic.  analysis::auditSlotRecycling
 * (echo-lint --serve-journal) proves slot exclusivity, per-splice
 * state re-initialization, and exactly-once termination offline.
 */
#ifndef ECHO_SERVE_SCHEDULER_H
#define ECHO_SERVE_SCHEDULER_H

#include <atomic>
#include <functional>
#include <mutex>
#include <unordered_set>
#include <vector>

#include "serve/queue.h"
#include "serve/session.h"

namespace echo::serve {

/** Aggregate counters of one scheduler run (all monotone). */
struct SchedulerStats
{
    int64_t steps = 0;        ///< lane step passes executed
    int64_t stepped_rows = 0; ///< sum of live rows over those passes
    int64_t splices = 0;      ///< requests spliced into lane rows
    int64_t recycled = 0;     ///< splices into a previously-used slot
    int64_t direct = 0;       ///< atomic direct decodes
    int64_t served = 0;
    int64_t cancelled = 0;
    int64_t expired = 0;
};

/**
 * Drives one or more sessions from a RequestQueue on the caller's
 * thread (sessions are single-consumer).  Responses — payloads and
 * terminal rejections alike — are delivered through the resolve
 * callback with latency/wait diagnostics filled in.
 */
class ContinuousScheduler
{
  public:
    using Resolve = std::function<void(Response)>;

    /** @p sessions borrowed, non-empty; requests route to the first
     *  session whose kind() matches Request::model ("" = first). */
    ContinuousScheduler(std::vector<InferenceSession *> sessions,
                        RequestQueue &queue, Resolve resolve);

    /** The scheduling loop; returns when the queue is closed, drained,
     *  and every admitted request has terminated. */
    void run();

    /** Request cancellation of @p id (any thread).  The cancel is
     *  retained until the id terminates — it applies even when the
     *  request is still in the admission queue — so callers should
     *  only pass ids that are inflight (the Server checks).  Waiting
     *  requests resolve kCancelled; running ones are evicted. */
    void cancel(int64_t id);

    SchedulerStats stats() const;

    /** The slot-recycling journal (pools offset per session).  Safe to
     *  read concurrently; complete once run() returned. */
    std::vector<analysis::SlotLease> leaseJournal() const;

    /** Pool-id base of @p session_index within the journal. */
    int64_t poolBase(size_t session_index) const;

    /** Rows per lane (the --serve-slots value for echo-lint). */
    int64_t numSlots() const;

  private:
    struct Running
    {
        Request req;
        size_t session = 0;
        int lane = 0;
        int slot = 0;
        size_t lease = 0; ///< index into journal_
        double wait_us = 0.0;
    };

    size_t sessionFor(const Request &r) const;
    size_t openLease(int64_t request_id, int64_t pool, int slot);
    void closeLease(size_t lease, int64_t released,
                    analysis::LeaseStatus status);
    void resolveTerminal(Request req, RejectReason reason,
                         double wait_us);

    std::vector<InferenceSession *> sessions_;
    RequestQueue &queue_;
    Resolve resolve_;

    /** occupant request id per (session, lane, slot); -1 = free. */
    std::vector<std::vector<std::vector<int64_t>>> occupant_;
    /** slots that have hosted a request before (recycle counter). */
    std::vector<std::vector<std::vector<bool>>> used_;
    std::vector<int64_t> pool_base_;

    std::vector<Request> waiting_;
    std::vector<Running> running_;
    int64_t pass_ = 0;

    mutable std::mutex journal_mu_;
    std::vector<analysis::SlotLease> journal_;

    std::mutex cancel_mu_;
    std::unordered_set<int64_t> cancel_requests_;

    std::atomic<int64_t> steps_{0}, stepped_rows_{0}, splices_{0},
        recycled_{0}, direct_{0}, served_{0}, cancelled_{0}, expired_{0};
};

} // namespace echo::serve

#endif // ECHO_SERVE_SCHEDULER_H
