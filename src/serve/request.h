/**
 * @file
 * Request/response vocabulary of the inference-serving subsystem.
 *
 * A Request is one user-visible unit of work: an NMT source sentence
 * to translate (greedy or beam), or a word-LM prefix to score.  The
 * server assigns ids and timestamps at admission; everything after
 * that — batching, decoding, response delivery — is keyed on the id.
 *
 * The determinism contract: a request's Response payload (tokens and
 * scores) is a pure function of the request and the model parameters —
 * byte-identical regardless of which other requests shared its
 * micro-batch, which length bucket padding it rode in, and how many
 * threads executed the graph.  Latency fields are diagnostics and are
 * exempt.
 */
#ifndef ECHO_SERVE_REQUEST_H
#define ECHO_SERVE_REQUEST_H

#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

namespace echo::serve {

/** Why the server refused (or failed) a request. */
enum class RejectReason
{
    kNone,       ///< not rejected
    kQueueFull,  ///< admission control: the bounded queue was full
    kOverloaded, ///< SLO shed: batch-tier admission above the shed line
    kTooLong,    ///< longer than the largest configured length bucket
    kEmpty,      ///< no tokens
    kBadModel,   ///< names a model no loaded session serves
    kShutdown,   ///< submitted after stop()
    kCancelled,  ///< cancelled by the client before completion
    kExpired,    ///< deadline budget ran out before completion
};

/** Stable name for logs and CLI output. */
const char *rejectReasonName(RejectReason reason);

/** SLO class of a request (admission and splice priority). */
enum class Tier
{
    kInteractive, ///< admitted up to full queue capacity, spliced first
    kBatch,       ///< shed early under load (kOverloaded)
};

/** Stable name for logs and CLI output. */
const char *tierName(Tier tier);

/** One unit of serving work. */
struct Request
{
    /** Assigned by the server at admission. */
    int64_t id = -1;

    /** NMT: source-token ids.  Word LM: prefix-token ids. */
    std::vector<int64_t> tokens;

    /** NMT: generation cap per request. */
    int64_t max_new_tokens = 32;

    /** NMT: beam width; 1 decodes greedily. */
    int beam_width = 1;

    /** Word LM: how many next-token candidates to return. */
    int top_k = 5;

    /** SLO class; batch-tier requests are shed first under load. */
    Tier tier = Tier::kBatch;

    /**
     * Deadline budget in microseconds from admission; 0 disables.  A
     * request whose budget runs out before it completes resolves with
     * RejectReason::kExpired.
     */
    int64_t deadline_us = 0;

    /**
     * Which session kind should serve this ("word_lm" / "nmt"); ""
     * routes to the first loaded session.  Mixed-traffic servers load
     * one session per model family.
     */
    std::string model;

    /** Set by the server at admission (latency accounting). */
    std::chrono::steady_clock::time_point enqueued_at{};
};

/** The answer to one Request. */
struct Response
{
    int64_t id = -1;
    bool ok = false;
    RejectReason reject = RejectReason::kNone;

    /** NMT: decoded target tokens.  LM: top-k next-token ids. */
    std::vector<int64_t> tokens;

    /**
     * NMT greedy/beam: one cumulative log-probability score (length-
     * normalized for beam).  LM: per-candidate log-probabilities,
     * aligned with tokens.
     */
    std::vector<float> scores;

    // Diagnostics (not covered by the determinism contract).
    double latency_us = 0.0;     ///< admission -> response
    double wait_us = 0.0;        ///< admission -> batch emission / splice
    int64_t batch_requests = 0;  ///< live requests in its micro-batch
    int64_t bucket_len = 0;      ///< length bucket it was padded to
};

} // namespace echo::serve

#endif // ECHO_SERVE_REQUEST_H
