/**
 * @file
 * Request/response vocabulary of the inference-serving subsystem.
 *
 * A Request is one user-visible unit of work: an NMT source sentence
 * to translate (greedy or beam), or a word-LM prefix to score.  The
 * server assigns ids and timestamps at admission; everything after
 * that — batching, decoding, response delivery — is keyed on the id.
 *
 * The determinism contract: a request's Response payload (tokens and
 * scores) is a pure function of the request and the model parameters —
 * byte-identical regardless of which other requests shared its
 * micro-batch, which length bucket padding it rode in, and how many
 * threads executed the graph.  Latency fields are diagnostics and are
 * exempt.
 */
#ifndef ECHO_SERVE_REQUEST_H
#define ECHO_SERVE_REQUEST_H

#include <chrono>
#include <cstdint>
#include <vector>

namespace echo::serve {

/** Why the server refused (or failed) a request. */
enum class RejectReason
{
    kNone,      ///< not rejected
    kQueueFull, ///< admission control: the bounded queue was full
    kTooLong,   ///< longer than the largest configured length bucket
    kEmpty,     ///< no tokens
    kShutdown,  ///< submitted after stop()
};

/** Stable name for logs and CLI output. */
const char *rejectReasonName(RejectReason reason);

/** One unit of serving work. */
struct Request
{
    /** Assigned by the server at admission. */
    int64_t id = -1;

    /** NMT: source-token ids.  Word LM: prefix-token ids. */
    std::vector<int64_t> tokens;

    /** NMT: generation cap per request. */
    int64_t max_new_tokens = 32;

    /** NMT: beam width; 1 decodes greedily. */
    int beam_width = 1;

    /** Word LM: how many next-token candidates to return. */
    int top_k = 5;

    /** Set by the server at admission (latency accounting). */
    std::chrono::steady_clock::time_point enqueued_at{};
};

/** The answer to one Request. */
struct Response
{
    int64_t id = -1;
    bool ok = false;
    RejectReason reject = RejectReason::kNone;

    /** NMT: decoded target tokens.  LM: top-k next-token ids. */
    std::vector<int64_t> tokens;

    /**
     * NMT greedy/beam: one cumulative log-probability score (length-
     * normalized for beam).  LM: per-candidate log-probabilities,
     * aligned with tokens.
     */
    std::vector<float> scores;

    // Diagnostics (not covered by the determinism contract).
    double latency_us = 0.0;     ///< admission -> response
    int64_t batch_requests = 0;  ///< live requests in its micro-batch
    int64_t bucket_len = 0;      ///< length bucket it was padded to
};

} // namespace echo::serve

#endif // ECHO_SERVE_REQUEST_H
