/**
 * @file
 * Beam-search decoding over the NMT step decoder.
 *
 * One beam search decodes ONE source sentence: the caller tiles that
 * sentence's encoder outputs across the decoder's batch rows, and the
 * rows carry the live hypotheses.  Scoring follows GNMT: hypotheses
 * accumulate token log-probabilities and are ranked by
 * score / lp(n) with lp(n) = ((5 + n) / 6)^alpha, n the number of
 * emitted tokens.
 *
 * Every choice is deterministic: log-softmax reduces in fixed index
 * order, and candidate ties break by (higher score, lower parent row,
 * lower token id).  Dead decoder rows are refilled with fixed values,
 * so the whole search is a pure function of (params, enc, width,
 * max_len, alpha).
 */
#ifndef ECHO_SERVE_BEAM_H
#define ECHO_SERVE_BEAM_H

#include <cstdint>
#include <vector>

#include "models/nmt.h"

namespace echo::serve {

/** One finished hypothesis. */
struct BeamHypothesis
{
    /** Emitted target tokens, BOS and EOS excluded. */
    std::vector<int64_t> tokens;
    /** Length-normalized log-probability (the ranking key). */
    float score = 0.0f;
    /** Un-normalized sum of token log-probabilities. */
    float raw_score = 0.0f;
};

/**
 * Decode one sentence with beam width @p width (1 <= width <=
 * dec.batch()).  @p enc must hold the sentence's encoder outputs tiled
 * to all dec.batch() rows.  Emits at most @p max_len tokens.
 */
BeamHypothesis beamSearch(const models::NmtDecoder &dec,
                          const models::ParamStore &params,
                          const models::NmtDecoder::Encoded &enc,
                          int width, int64_t max_len,
                          float alpha = 0.6f);

/**
 * Tile row @p row of a batched encoder output across all of
 * @p rows rows (the enc argument beamSearch expects).
 */
models::NmtDecoder::Encoded
tileEncoderRow(const models::NmtDecoder::Encoded &enc, int64_t row,
               int64_t rows);

} // namespace echo::serve

#endif // ECHO_SERVE_BEAM_H
