/**
 * @file
 * Dynamic batching: group queued requests into fixed-shape micro-batches.
 *
 * Step-decoder graphs are built once per (slot count, length bucket)
 * and reused, so a micro-batch must have a FIXED shape: every request
 * in it is padded to the same bucket length, and unused slots stay
 * padded.  The batcher's job is to trade latency for occupancy under
 * that constraint: it holds the oldest pending request at most
 * max_wait past its admission, collecting later arrivals that fall in
 * the same length bucket, and emits early the moment the batch fills.
 *
 * Determinism note: a request's bucket is a pure function of its own
 * length, and decoding is row-wise, so WHICH requests share a
 * micro-batch affects only latency, never payloads.  The batcher is
 * therefore free to group opportunistically.
 */
#ifndef ECHO_SERVE_BATCHER_H
#define ECHO_SERVE_BATCHER_H

#include <chrono>
#include <deque>
#include <vector>

#include "serve/queue.h"
#include "serve/request.h"

namespace echo::serve {

/** Batching policy. */
struct BatcherConfig
{
    /** Slots per micro-batch (the step graphs' batch dimension). */
    int64_t max_batch = 8;

    /** How long the oldest pending request may wait for companions. */
    std::chrono::microseconds max_wait{2000};

    /** Ascending padded lengths; requests longer than the largest
     *  bucket are rejected at admission. */
    std::vector<int64_t> buckets = {8, 16, 32};
};

/**
 * Smallest bucket holding @p len, or -1 when none does.
 * @pre buckets ascending, len >= 1
 */
int64_t bucketForLength(const std::vector<int64_t> &buckets, int64_t len);

/** One fixed-shape unit of decoding work. */
struct MicroBatch
{
    int64_t bucket_len = 0;
    std::vector<Request> requests; ///< <= max_batch, same bucket
};

/**
 * Pulls requests off a RequestQueue and forms micro-batches.  Single
 * consumer: exactly one thread (the server worker) calls next().
 */
class DynamicBatcher
{
  public:
    DynamicBatcher(BatcherConfig config, RequestQueue &queue);

    /**
     * Block until a micro-batch is ready (full batch, or the oldest
     * pending request's deadline expired, or the queue closed with
     * work pending).  False only at shutdown with nothing left.
     */
    bool next(MicroBatch &out);

    /** Requests popped from the queue but not yet batched. */
    size_t pendingCount() const { return pending_.size(); }

  private:
    void drainQueue();

    BatcherConfig config_;
    RequestQueue &queue_;
    std::deque<Request> pending_;
};

} // namespace echo::serve

#endif // ECHO_SERVE_BATCHER_H
