#include "serve/beam.h"

#include <algorithm>
#include <cmath>
#include <cstddef>

#include "core/logging.h"
#include "data/vocab.h"

namespace echo::serve {

namespace {

using models::NmtDecoder;

/** GNMT length penalty. */
double
lengthPenalty(size_t len, float alpha)
{
    const double n = static_cast<double>(std::max<size_t>(len, 1));
    return std::pow((5.0 + n) / 6.0, static_cast<double>(alpha));
}

/** In-flight hypothesis living on one decoder row. */
struct LiveBeam
{
    std::vector<int64_t> tokens;
    double raw = 0.0;
};

/** One (parent row, token) expansion. */
struct Candidate
{
    double score = 0.0;
    int parent = 0;
    int64_t token = 0;
};

/** score desc, then parent asc, then token asc — total and stable. */
bool
candidateLess(const Candidate &a, const Candidate &b)
{
    if (a.score != b.score)
        return a.score > b.score;
    if (a.parent != b.parent)
        return a.parent < b.parent;
    return a.token < b.token;
}

/**
 * Log-softmax of logits row @p r into @p out, reducing in fixed index
 * order (determinism).
 */
void
logSoftmaxRow(const Tensor &logits, int64_t r, std::vector<double> &out)
{
    const int64_t v = logits.shape()[1];
    out.resize(static_cast<size_t>(v));
    double mx = logits.at(r, 0);
    for (int64_t j = 1; j < v; ++j)
        mx = std::max(mx, static_cast<double>(logits.at(r, j)));
    double sum = 0.0;
    for (int64_t j = 0; j < v; ++j)
        sum += std::exp(static_cast<double>(logits.at(r, j)) - mx);
    const double log_z = mx + std::log(sum);
    for (int64_t j = 0; j < v; ++j)
        out[static_cast<size_t>(j)] =
            static_cast<double>(logits.at(r, j)) - log_z;
}

BeamHypothesis
finishHypothesis(const LiveBeam &beam, float alpha)
{
    BeamHypothesis hyp;
    hyp.tokens = beam.tokens;
    hyp.raw_score = static_cast<float>(beam.raw);
    hyp.score = static_cast<float>(
        beam.raw / lengthPenalty(beam.tokens.size(), alpha));
    return hyp;
}

/** norm score desc, then shorter, then lexicographically smaller. */
bool
hypothesisLess(const BeamHypothesis &a, const BeamHypothesis &b)
{
    if (a.score != b.score)
        return a.score > b.score;
    if (a.tokens.size() != b.tokens.size())
        return a.tokens.size() < b.tokens.size();
    return a.tokens < b.tokens;
}

} // namespace

models::NmtDecoder::Encoded
tileEncoderRow(const models::NmtDecoder::Encoded &enc, int64_t row,
               int64_t rows)
{
    const Shape &s = enc.hs.shape();
    ECHO_REQUIRE(s.ndim() == 3 && row >= 0 && row < s[0],
                 "tileEncoderRow: bad row");
    const int64_t ts = s[1], h = s[2];
    NmtDecoder::Encoded out;
    out.hs = Tensor(Shape({rows, ts, h}));
    out.keys = Tensor(Shape({rows, ts, h}));
    const int64_t stride = ts * h;
    const float *hs_src = enc.hs.data() + row * stride;
    const float *keys_src = enc.keys.data() + row * stride;
    for (int64_t k = 0; k < rows; ++k) {
        std::copy(hs_src, hs_src + stride, out.hs.data() + k * stride);
        std::copy(keys_src, keys_src + stride,
                  out.keys.data() + k * stride);
    }
    return out;
}

BeamHypothesis
beamSearch(const models::NmtDecoder &dec,
           const models::ParamStore &params,
           const models::NmtDecoder::Encoded &enc, int width,
           int64_t max_len, float alpha)
{
    const int64_t rows = dec.batch();
    const int64_t hidden = dec.config().hidden;
    ECHO_REQUIRE(width >= 1 && width <= rows,
                 "beam width must be in [1, decoder batch]");
    ECHO_REQUIRE(enc.hs.shape()[0] == rows,
                 "encoder outputs must be tiled to the decoder batch");

    NmtDecoder::State state = dec.initialState();
    std::vector<LiveBeam> active(1); // row 0 carries the single BOS hyp
    std::vector<BeamHypothesis> finished;
    std::vector<double> logp;

    for (int64_t t = 0; t < max_len && !active.empty(); ++t) {
        const Tensor logits = dec.step(params, state, enc);

        // Expand every live row over the vocabulary and keep the top
        // `width` candidates overall.
        std::vector<Candidate> cands;
        cands.reserve(active.size() *
                      static_cast<size_t>(logits.shape()[1]));
        for (size_t i = 0; i < active.size(); ++i) {
            logSoftmaxRow(logits, static_cast<int64_t>(i), logp);
            for (size_t v = 0; v < logp.size(); ++v)
                cands.push_back({active[i].raw + logp[v],
                                 static_cast<int>(i),
                                 static_cast<int64_t>(v)});
        }
        const size_t keep =
            std::min(static_cast<size_t>(width), cands.size());
        std::partial_sort(cands.begin(),
                          cands.begin() + static_cast<ptrdiff_t>(keep),
                          cands.end(), candidateLess);
        cands.resize(keep);

        // Split survivors into finished (EOS) and next-step beams,
        // gathering each survivor's decoder state from its parent row.
        NmtDecoder::State next;
        next.token = Tensor::zeros(Shape({rows}));
        next.h = Tensor::zeros(Shape({rows, hidden}));
        next.c = Tensor::zeros(Shape({rows, hidden}));
        next.attn = Tensor::zeros(Shape({rows, hidden}));
        std::vector<LiveBeam> next_active;
        for (const Candidate &c : cands) {
            LiveBeam child;
            child.tokens = active[static_cast<size_t>(c.parent)].tokens;
            child.raw = c.score;
            if (c.token == data::Vocab::kEos) {
                finished.push_back(finishHypothesis(child, alpha));
                continue;
            }
            child.tokens.push_back(c.token);
            const int64_t row =
                static_cast<int64_t>(next_active.size());
            next.token.at(row) = static_cast<float>(c.token);
            for (int64_t j = 0; j < hidden; ++j) {
                next.h.at(row, j) = state.h.at(c.parent, j);
                next.c.at(row, j) = state.c.at(c.parent, j);
                next.attn.at(row, j) = state.attn.at(c.parent, j);
            }
            next_active.push_back(std::move(child));
        }
        // Dead rows keep deterministic filler (kPad token, zero state),
        // so the step outputs — and hence the whole search — stay a
        // pure function of the inputs.
        state = std::move(next);
        active = std::move(next_active);
    }

    // Out of steps: surviving beams finish without EOS.
    for (const LiveBeam &beam : active)
        finished.push_back(finishHypothesis(beam, alpha));

    ECHO_CHECK(!finished.empty(), "beam search produced no hypothesis");
    return *std::min_element(finished.begin(), finished.end(),
                             hypothesisLess);
}

} // namespace echo::serve
