/**
 * @file
 * Inference sessions: checkpoint-backed, state-cached micro-batch
 * decoding for the two paper models.
 *
 * A session owns the loaded parameters and the step-decoder graphs —
 * built ONCE per (slot count, length bucket) and reused for every
 * micro-batch, which is the serving-side counterpart of the paper's
 * "build the step graph once, run it T times" training structure.
 *
 * Determinism contract (test-enforced): every graph in a session has a
 * fixed batch dimension (the slot count), unused slots are padded with
 * fixed values, and all ops are row-wise along the batch axis — so a
 * request's response payload is byte-identical whether it ran alone or
 * alongside seven neighbours, at any thread count.
 *
 * Each runBatch() appends per-request workspace-slot occupancy
 * intervals to a journal; analysis::detectWorkspaceAliasing() verifies
 * no two live requests ever shared a slot (echo-lint --serve-journal).
 *
 * Config inference: fromCheckpoint() reconstructs the model
 * hyperparameters from tensor names and shapes (vocab/hidden/layers,
 * encoder directionality).  Structure flags that leave no trace in the
 * weights (e.g. normalized vs. plain attention scoring) are assumed to
 * be the training defaults.
 */
#ifndef ECHO_SERVE_SESSION_H
#define ECHO_SERVE_SESSION_H

#include <memory>
#include <string>
#include <vector>

#include "analysis/hazards.h"
#include "models/nmt.h"
#include "models/word_lm.h"
#include "serve/batcher.h"
#include "serve/request.h"

namespace echo::serve {

/** Session-wide serving parameters. */
struct SessionConfig
{
    /** Rows per micro-batch graph (= batcher max_batch). */
    int64_t slots = 8;

    /** Ascending padded source/prefix lengths (= batcher buckets). */
    std::vector<int64_t> buckets = {8, 16, 32};

    /** Decoder rows reserved for beam requests; request widths are
     *  clamped to this. */
    int beam_width = 4;

    /** GNMT length-normalization exponent for beam scoring. */
    float beam_alpha = 0.6f;

    graph::ExecMode mode = graph::ExecMode::kAuto;

    /** Pass-pipeline spec for the step/encoder graphs; "" resolves via
     *  ECHO_PASSES / the inference default (see pass::resolveSpec). */
    std::string pipeline_spec;
};

/** One request finishing (payload complete) during a stepLane call. */
struct LaneFinish
{
    int slot = -1;
    Response resp;
};

/** A loaded model ready to decode micro-batches. */
class InferenceSession
{
  public:
    virtual ~InferenceSession() = default;

    InferenceSession(const InferenceSession &) = delete;
    InferenceSession &operator=(const InferenceSession &) = delete;

    const SessionConfig &config() const { return config_; }

    /** Largest admissible request length. */
    int64_t maxLength() const { return config_.buckets.back(); }

    /** "word_lm" or "nmt". */
    virtual const char *kind() const = 0;

    /** One-line model summary for CLI banners. */
    virtual std::string describe() const = 0;

    /**
     * Decode one micro-batch.  @p out receives one Response per
     * request, in order, with payload fields (tokens/scores) and
     * bucket/batch diagnostics filled in; latency is the caller's.
     * Not thread-safe: one worker drives a session.
     */
    virtual void runBatch(const MicroBatch &mb,
                          std::vector<Response> &out) = 0;

    // ------------------------------------------------------------------
    // Continuous (iteration-level) scheduling API.
    //
    // A lane is one persistent step-graph instance with config().slots
    // rows of carried state.  The scheduler owns slot assignment: it
    // splices a request into a free row (state rows re-initialized
    // there and then), steps the lane once per scheduler pass, and the
    // lane reports rows whose payload completed so their slots can be
    // recycled the same instant.  Because every op is row-wise along
    // the batch axis, a spliced row replays exactly the byte sequence
    // it would produce alone — splice timing and neighbour churn are
    // invisible to payloads (the PR 4 contract, extended).
    // ------------------------------------------------------------------

    /** laneOf() result for requests that must run atomically between
     *  steps (NMT beam, zero-budget decodes). */
    static constexpr int kDirectLane = -1;

    /** Step-graph lanes (word LM: 1; NMT: one per length bucket). */
    virtual int numLanes() const = 0;

    /** Journal pools: every lane, plus a trailing pool for direct
     *  requests when the session has any. */
    virtual int poolCount() const { return numLanes(); }

    /** Lane that should decode @p r, or kDirectLane. */
    virtual int laneOf(const Request &r) const = 0;

    /** Install @p r into row @p slot of @p lane, re-initializing that
     *  row's carried state.  @pre the slot is free. */
    virtual void splice(int lane, int slot, Request r) = 0;

    /** Advance @p lane one step; append a LaneFinish (and free the
     *  row) for every request whose payload completed.  No-op when the
     *  lane has no occupants. */
    virtual void stepLane(int lane, std::vector<LaneFinish> &out) = 0;

    /** Free row @p slot of @p lane without a payload (cancel/expire). */
    virtual void evict(int lane, int slot) = 0;

    /** Decode @p r alone, synchronously (the kDirectLane path and the
     *  differential reference).  Byte-identical to a solo runBatch. */
    Response runDirect(const Request &r);

    /** Workspace occupancy of every batch run so far. */
    const std::vector<analysis::SlotInterval> &slotJournal() const
    {
        return journal_;
    }

    /**
     * Load @p path and build the right session for the checkpoint's
     * model family (word LM / NMT), inferring hyperparameters from the
     * stored tensors.
     */
    static std::unique_ptr<InferenceSession>
    fromCheckpoint(const std::string &path, const SessionConfig &config);

  protected:
    explicit InferenceSession(SessionConfig config);

    /** Record the (pool=bucket index, slot=row) occupancy of @p mb. */
    void journalBatch(const MicroBatch &mb);

    /** Index of @p bucket_len in config().buckets (fatal if absent). */
    int64_t bucketIndex(int64_t bucket_len) const;

    SessionConfig config_;
    std::vector<analysis::SlotInterval> journal_;
    int64_t batch_seq_ = 0;
};

/** Word-LM serving: next-token top-k scoring for a prefix. */
class WordLmSession final : public InferenceSession
{
  public:
    WordLmSession(models::WordLmConfig model_config,
                  models::ParamStore params, SessionConfig config);

    const char *kind() const override { return "word_lm"; }
    std::string describe() const override;
    void runBatch(const MicroBatch &mb,
                  std::vector<Response> &out) override;

    /** The stepper has no length dimension, so ONE lane serves every
     *  prefix length — rows at different positions coexist. */
    int numLanes() const override { return 1; }
    int laneOf(const Request &r) const override;
    void splice(int lane, int slot, Request r) override;
    void stepLane(int lane, std::vector<LaneFinish> &out) override;
    void evict(int lane, int slot) override;

    const models::WordLmConfig &modelConfig() const { return mcfg_; }

  private:
    models::WordLmConfig mcfg_;
    models::ParamStore params_;
    /** One stepper serves every bucket: the step graph has no length
     *  dimension, only the bucket's step COUNT differs. */
    models::WordLmStepper stepper_;

    // Continuous-lane state: one persistent State whose rows belong to
    // whatever request is spliced there; pos_ is the next prefix index
    // each occupied row feeds.
    models::WordLmStepper::State lane_state_;
    std::vector<std::unique_ptr<Request>> lane_req_;
    std::vector<int64_t> lane_pos_;
};

/** NMT serving: batched greedy and per-request beam decoding. */
class NmtSession final : public InferenceSession
{
  public:
    NmtSession(models::NmtConfig model_config, models::ParamStore params,
               SessionConfig config);
    ~NmtSession() override;

    const char *kind() const override { return "nmt"; }
    std::string describe() const override;
    void runBatch(const MicroBatch &mb,
                  std::vector<Response> &out) override;

    /** One greedy lane per length bucket; beam and zero-budget
     *  requests run direct (the trailing journal pool). */
    int numLanes() const override
    {
        return static_cast<int>(config_.buckets.size());
    }
    int poolCount() const override { return numLanes() + 1; }
    int laneOf(const Request &r) const override;
    void splice(int lane, int slot, Request r) override;
    void stepLane(int lane, std::vector<LaneFinish> &out) override;
    void evict(int lane, int slot) override;

    const models::NmtConfig &modelConfig() const { return mcfg_; }

  private:
    /** Per-bucket decoders, built on first use. */
    const models::NmtDecoder &greedyDecoder(int64_t bucket_idx);
    const models::NmtDecoder &beamDecoder(int64_t bucket_idx);

    /** Carried decode state of one continuous greedy lane. */
    struct GreedyLane;
    GreedyLane &lane(int lane_idx);

    models::NmtConfig mcfg_;
    models::ParamStore params_;
    std::vector<std::unique_ptr<models::NmtDecoder>> greedy_;
    std::vector<std::unique_ptr<models::NmtDecoder>> beam_;
    std::vector<std::unique_ptr<GreedyLane>> lanes_;
};

} // namespace echo::serve

#endif // ECHO_SERVE_SESSION_H
