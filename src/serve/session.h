/**
 * @file
 * Inference sessions: checkpoint-backed, state-cached micro-batch
 * decoding for the two paper models.
 *
 * A session owns the loaded parameters and the step-decoder graphs —
 * built ONCE per (slot count, length bucket) and reused for every
 * micro-batch, which is the serving-side counterpart of the paper's
 * "build the step graph once, run it T times" training structure.
 *
 * Determinism contract (test-enforced): every graph in a session has a
 * fixed batch dimension (the slot count), unused slots are padded with
 * fixed values, and all ops are row-wise along the batch axis — so a
 * request's response payload is byte-identical whether it ran alone or
 * alongside seven neighbours, at any thread count.
 *
 * Each runBatch() appends per-request workspace-slot occupancy
 * intervals to a journal; analysis::detectWorkspaceAliasing() verifies
 * no two live requests ever shared a slot (echo-lint --serve-journal).
 *
 * Config inference: fromCheckpoint() reconstructs the model
 * hyperparameters from tensor names and shapes (vocab/hidden/layers,
 * encoder directionality).  Structure flags that leave no trace in the
 * weights (e.g. normalized vs. plain attention scoring) are assumed to
 * be the training defaults.
 */
#ifndef ECHO_SERVE_SESSION_H
#define ECHO_SERVE_SESSION_H

#include <memory>
#include <string>
#include <vector>

#include "analysis/hazards.h"
#include "models/nmt.h"
#include "models/word_lm.h"
#include "serve/batcher.h"
#include "serve/request.h"

namespace echo::serve {

/** Session-wide serving parameters. */
struct SessionConfig
{
    /** Rows per micro-batch graph (= batcher max_batch). */
    int64_t slots = 8;

    /** Ascending padded source/prefix lengths (= batcher buckets). */
    std::vector<int64_t> buckets = {8, 16, 32};

    /** Decoder rows reserved for beam requests; request widths are
     *  clamped to this. */
    int beam_width = 4;

    /** GNMT length-normalization exponent for beam scoring. */
    float beam_alpha = 0.6f;

    graph::ExecMode mode = graph::ExecMode::kAuto;

    /** Pass-pipeline spec for the step/encoder graphs; "" resolves via
     *  ECHO_PASSES / the inference default (see pass::resolveSpec). */
    std::string pipeline_spec;
};

/** A loaded model ready to decode micro-batches. */
class InferenceSession
{
  public:
    virtual ~InferenceSession() = default;

    InferenceSession(const InferenceSession &) = delete;
    InferenceSession &operator=(const InferenceSession &) = delete;

    const SessionConfig &config() const { return config_; }

    /** Largest admissible request length. */
    int64_t maxLength() const { return config_.buckets.back(); }

    /** "word_lm" or "nmt". */
    virtual const char *kind() const = 0;

    /** One-line model summary for CLI banners. */
    virtual std::string describe() const = 0;

    /**
     * Decode one micro-batch.  @p out receives one Response per
     * request, in order, with payload fields (tokens/scores) and
     * bucket/batch diagnostics filled in; latency is the caller's.
     * Not thread-safe: one worker drives a session.
     */
    virtual void runBatch(const MicroBatch &mb,
                          std::vector<Response> &out) = 0;

    /** Workspace occupancy of every batch run so far. */
    const std::vector<analysis::SlotInterval> &slotJournal() const
    {
        return journal_;
    }

    /**
     * Load @p path and build the right session for the checkpoint's
     * model family (word LM / NMT), inferring hyperparameters from the
     * stored tensors.
     */
    static std::unique_ptr<InferenceSession>
    fromCheckpoint(const std::string &path, const SessionConfig &config);

  protected:
    explicit InferenceSession(SessionConfig config);

    /** Record the (pool=bucket index, slot=row) occupancy of @p mb. */
    void journalBatch(const MicroBatch &mb);

    /** Index of @p bucket_len in config().buckets (fatal if absent). */
    int64_t bucketIndex(int64_t bucket_len) const;

    SessionConfig config_;
    std::vector<analysis::SlotInterval> journal_;
    int64_t batch_seq_ = 0;
};

/** Word-LM serving: next-token top-k scoring for a prefix. */
class WordLmSession final : public InferenceSession
{
  public:
    WordLmSession(models::WordLmConfig model_config,
                  models::ParamStore params, SessionConfig config);

    const char *kind() const override { return "word_lm"; }
    std::string describe() const override;
    void runBatch(const MicroBatch &mb,
                  std::vector<Response> &out) override;

    const models::WordLmConfig &modelConfig() const { return mcfg_; }

  private:
    models::WordLmConfig mcfg_;
    models::ParamStore params_;
    /** One stepper serves every bucket: the step graph has no length
     *  dimension, only the bucket's step COUNT differs. */
    models::WordLmStepper stepper_;
};

/** NMT serving: batched greedy and per-request beam decoding. */
class NmtSession final : public InferenceSession
{
  public:
    NmtSession(models::NmtConfig model_config, models::ParamStore params,
               SessionConfig config);
    ~NmtSession() override;

    const char *kind() const override { return "nmt"; }
    std::string describe() const override;
    void runBatch(const MicroBatch &mb,
                  std::vector<Response> &out) override;

    const models::NmtConfig &modelConfig() const { return mcfg_; }

  private:
    /** Per-bucket decoders, built on first use. */
    const models::NmtDecoder &greedyDecoder(int64_t bucket_idx);
    const models::NmtDecoder &beamDecoder(int64_t bucket_idx);

    models::NmtConfig mcfg_;
    models::ParamStore params_;
    std::vector<std::unique_ptr<models::NmtDecoder>> greedy_;
    std::vector<std::unique_ptr<models::NmtDecoder>> beam_;
};

} // namespace echo::serve

#endif // ECHO_SERVE_SESSION_H
