#include "serve/queue.h"

#include "obs/counters.h"
#include "obs/trace.h"

namespace echo::serve {

const char *
rejectReasonName(RejectReason reason)
{
    switch (reason) {
      case RejectReason::kNone:
        return "none";
      case RejectReason::kQueueFull:
        return "queue-full";
      case RejectReason::kOverloaded:
        return "overloaded";
      case RejectReason::kTooLong:
        return "too-long";
      case RejectReason::kEmpty:
        return "empty";
      case RejectReason::kBadModel:
        return "bad-model";
      case RejectReason::kShutdown:
        return "shutdown";
      case RejectReason::kCancelled:
        return "cancelled";
      case RejectReason::kExpired:
        return "deadline-expired";
    }
    return "?";
}

const char *
tierName(Tier tier)
{
    switch (tier) {
      case Tier::kInteractive:
        return "interactive";
      case Tier::kBatch:
        return "batch";
    }
    return "?";
}

RequestQueue::RequestQueue(size_t capacity, size_t batch_capacity)
    : capacity_(capacity),
      batch_capacity_(batch_capacity == 0 ? capacity : batch_capacity)
{
}

size_t
RequestQueue::size() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return items_.size();
}

RejectReason
RequestQueue::tryPush(Request r)
{
    // Admission outcome depends on queue timing, so the counters are
    // scheduling-class.
    static obs::Counter &pushed =
        obs::counter("serve.queue.pushed", obs::CounterKind::kScheduling);
    static obs::Counter &full = obs::counter(
        "serve.queue.reject_full", obs::CounterKind::kScheduling);
    static obs::Counter &shut = obs::counter(
        "serve.queue.reject_shutdown", obs::CounterKind::kScheduling);
    static obs::Counter &shed = obs::counter(
        "serve.queue.reject_overloaded", obs::CounterKind::kScheduling);

    {
        std::lock_guard<std::mutex> lock(mu_);
        if (closed_) {
            shut.add(1);
            return RejectReason::kShutdown;
        }
        if (items_.size() >= capacity_) {
            full.add(1);
            return RejectReason::kQueueFull;
        }
        // SLO-tiered admission: batch-tier traffic sheds at its own
        // lower line so a burst cannot starve interactive requests of
        // the remaining queue headroom.
        if (r.tier == Tier::kBatch && items_.size() >= batch_capacity_) {
            shed.add(1);
            return RejectReason::kOverloaded;
        }
        items_.push_back(std::move(r));
        if (obs::traceEnabled())
            obs::counterSample("serve", "serve.queue.depth",
                               static_cast<int64_t>(items_.size()));
    }
    pushed.add(1);
    cv_.notify_one();
    return RejectReason::kNone;
}

bool
RequestQueue::pop(Request &out)
{
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [&] { return closed_ || !items_.empty(); });
    if (items_.empty())
        return false; // closed and drained
    out = std::move(items_.front());
    items_.pop_front();
    return true;
}

bool
RequestQueue::tryPop(Request &out)
{
    std::lock_guard<std::mutex> lock(mu_);
    if (items_.empty())
        return false;
    out = std::move(items_.front());
    items_.pop_front();
    return true;
}

bool
RequestQueue::waitNonEmpty(std::chrono::microseconds timeout)
{
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait_for(lock, timeout,
                 [&] { return closed_ || !items_.empty(); });
    return !items_.empty();
}

void
RequestQueue::close()
{
    {
        std::lock_guard<std::mutex> lock(mu_);
        closed_ = true;
    }
    cv_.notify_all();
}

bool
RequestQueue::closed() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return closed_;
}

} // namespace echo::serve
