#include "serve/scheduler.h"

#include <algorithm>
#include <chrono>

#include "core/logging.h"
#include "obs/counters.h"
#include "obs/trace.h"

namespace echo::serve {

namespace {

using Clock = std::chrono::steady_clock;

double
elapsedUs(Clock::time_point from, Clock::time_point to)
{
    return std::chrono::duration_cast<std::chrono::nanoseconds>(to - from)
               .count() /
           1000.0;
}

bool
deadlinePassed(const Request &r, Clock::time_point now)
{
    return r.deadline_us > 0 &&
           now >= r.enqueued_at + std::chrono::microseconds(r.deadline_us);
}

} // namespace

ContinuousScheduler::ContinuousScheduler(
    std::vector<InferenceSession *> sessions, RequestQueue &queue,
    Resolve resolve)
    : sessions_(std::move(sessions)), queue_(queue),
      resolve_(std::move(resolve))
{
    ECHO_REQUIRE(!sessions_.empty(), "scheduler needs a session");
    ECHO_REQUIRE(resolve_ != nullptr, "scheduler needs a resolve sink");
    int64_t base = 0;
    for (InferenceSession *session : sessions_) {
        ECHO_REQUIRE(session != nullptr, "null session");
        pool_base_.push_back(base);
        base += session->poolCount();
        const size_t lanes = static_cast<size_t>(session->numLanes());
        const size_t slots =
            static_cast<size_t>(session->config().slots);
        occupant_.emplace_back(lanes, std::vector<int64_t>(slots, -1));
        used_.emplace_back(lanes, std::vector<bool>(slots, false));
    }
}

size_t
ContinuousScheduler::sessionFor(const Request &r) const
{
    if (r.model.empty())
        return 0;
    for (size_t s = 0; s < sessions_.size(); ++s)
        if (r.model == sessions_[s]->kind())
            return s;
    ECHO_FATAL("request ", r.id, " names model '", r.model,
               "' but no loaded session serves it");
}

size_t
ContinuousScheduler::openLease(int64_t request_id, int64_t pool, int slot)
{
    std::lock_guard<std::mutex> lock(journal_mu_);
    analysis::SlotLease lease;
    lease.request_id = request_id;
    lease.pool = pool;
    lease.slot = slot;
    lease.acquired = pass_;
    lease.released = pass_; // patched by closeLease
    lease.reinit = 1;       // sessions re-init state rows at splice
    journal_.push_back(lease);
    return journal_.size() - 1;
}

void
ContinuousScheduler::closeLease(size_t lease, int64_t released,
                                analysis::LeaseStatus status)
{
    std::lock_guard<std::mutex> lock(journal_mu_);
    journal_[lease].released = released;
    journal_[lease].status = status;
}

void
ContinuousScheduler::resolveTerminal(Request req, RejectReason reason,
                                     double wait_us)
{
    Response resp;
    resp.id = req.id;
    resp.ok = false;
    resp.reject = reason;
    resp.wait_us = wait_us;
    resp.latency_us = elapsedUs(req.enqueued_at, Clock::now());
    resolve_(std::move(resp));
}

void
ContinuousScheduler::cancel(int64_t id)
{
    std::lock_guard<std::mutex> lock(cancel_mu_);
    cancel_requests_.insert(id);
}

void
ContinuousScheduler::run()
{
    static obs::Counter &step_ctr = obs::counter(
        "serve.scheduler.steps", obs::CounterKind::kScheduling);
    static obs::Counter &splice_ctr = obs::counter(
        "serve.scheduler.splices", obs::CounterKind::kScheduling);
    static obs::Counter &recycle_ctr = obs::counter(
        "serve.scheduler.recycled_slots", obs::CounterKind::kScheduling);
    static obs::Counter &evict_ctr = obs::counter(
        "serve.scheduler.evictions", obs::CounterKind::kScheduling);

    std::vector<LaneFinish> finishes;
    for (;;) {
        // Admit everything that has arrived; block only when idle.
        Request incoming;
        while (queue_.tryPop(incoming))
            waiting_.push_back(std::move(incoming));
        if (waiting_.empty() && running_.empty()) {
            if (!queue_.pop(incoming))
                return; // closed and fully drained
            waiting_.push_back(std::move(incoming));
        }

        // Snapshot (don't consume) the cancel set: a cancel may name a
        // request still sitting in the queue — it must survive passes
        // until the id shows up in waiting_/running_.  Ids are erased
        // when their request terminates (terminated_ids below).
        std::unordered_set<int64_t> cancels;
        {
            std::lock_guard<std::mutex> lock(cancel_mu_);
            cancels = cancel_requests_;
        }
        std::vector<int64_t> terminated_ids;
        const Clock::time_point now = Clock::now();

        // Terminal decisions for waiting requests: cancellation beats
        // expiry (the client already gave up).
        for (size_t i = 0; i < waiting_.size();) {
            Request &w = waiting_[i];
            RejectReason reason = RejectReason::kNone;
            if (cancels.count(w.id) != 0)
                reason = RejectReason::kCancelled;
            else if (deadlinePassed(w, now))
                reason = RejectReason::kExpired;
            if (reason == RejectReason::kNone) {
                ++i;
                continue;
            }
            (reason == RejectReason::kCancelled ? cancelled_ : expired_)
                .fetch_add(1, std::memory_order_relaxed);
            const double wait_us = elapsedUs(w.enqueued_at, now);
            terminated_ids.push_back(w.id);
            resolveTerminal(std::move(w), reason, wait_us);
            waiting_.erase(waiting_.begin() + static_cast<long>(i));
        }

        // Evict running occupants that were cancelled or expired.
        // Payloads of every other row are untouched: rows are
        // independent, and the freed slot re-initializes on reuse.
        for (size_t i = 0; i < running_.size();) {
            Running &rr = running_[i];
            RejectReason reason = RejectReason::kNone;
            if (cancels.count(rr.req.id) != 0)
                reason = RejectReason::kCancelled;
            else if (deadlinePassed(rr.req, now))
                reason = RejectReason::kExpired;
            if (reason == RejectReason::kNone) {
                ++i;
                continue;
            }
            sessions_[rr.session]->evict(rr.lane, rr.slot);
            occupant_[rr.session][static_cast<size_t>(rr.lane)]
                     [static_cast<size_t>(rr.slot)] = -1;
            closeLease(rr.lease, pass_,
                       reason == RejectReason::kCancelled
                           ? analysis::LeaseStatus::kCancelled
                           : analysis::LeaseStatus::kExpired);
            (reason == RejectReason::kCancelled ? cancelled_ : expired_)
                .fetch_add(1, std::memory_order_relaxed);
            evict_ctr.add(1);
            terminated_ids.push_back(rr.req.id);
            resolveTerminal(std::move(rr.req), reason, rr.wait_us);
            running_.erase(running_.begin() + static_cast<long>(i));
        }

        // Splice waiting work into free rows: interactive tier first,
        // admission order within a tier (deterministic given arrival).
        std::stable_sort(waiting_.begin(), waiting_.end(),
                         [](const Request &a, const Request &b) {
                             if (a.tier != b.tier)
                                 return a.tier < b.tier;
                             return a.id < b.id;
                         });
        std::vector<Request> direct_items;
        std::vector<Request> still_waiting;
        for (Request &w : waiting_) {
            const size_t s = sessionFor(w);
            const int lane = sessions_[s]->laneOf(w);
            if (lane == InferenceSession::kDirectLane) {
                direct_items.push_back(std::move(w));
                continue;
            }
            auto &rows = occupant_[s][static_cast<size_t>(lane)];
            const auto free_it =
                std::find(rows.begin(), rows.end(), int64_t{-1});
            if (free_it == rows.end()) {
                still_waiting.push_back(std::move(w));
                continue;
            }
            const int slot =
                static_cast<int>(free_it - rows.begin());
            *free_it = w.id;
            const bool used =
                used_[s][static_cast<size_t>(lane)]
                     [static_cast<size_t>(slot)];
            if (used) {
                recycled_.fetch_add(1, std::memory_order_relaxed);
                recycle_ctr.add(1);
            }
            used_[s][static_cast<size_t>(lane)]
                 [static_cast<size_t>(slot)] = true;
            splices_.fetch_add(1, std::memory_order_relaxed);
            splice_ctr.add(1);

            Running rr;
            rr.session = s;
            rr.lane = lane;
            rr.slot = slot;
            rr.wait_us = elapsedUs(w.enqueued_at, now);
            rr.lease = openLease(
                w.id, pool_base_[s] + lane, slot);
            rr.req = w;
            sessions_[s]->splice(lane, slot, std::move(w));
            running_.push_back(std::move(rr));
        }
        waiting_ = std::move(still_waiting);

        // Atomic direct decodes (beam, zero-budget).  Each consumes
        // its own pass number so sequential runs journal as disjoint
        // leases on the session's direct pool.
        for (Request &w : direct_items) {
            const size_t s = sessionFor(w);
            const size_t lease = openLease(
                w.id, pool_base_[s] + sessions_[s]->poolCount() - 1, 0);
            const double wait_us = elapsedUs(w.enqueued_at, now);
            Response resp = sessions_[s]->runDirect(w);
            closeLease(lease, pass_ + 1, analysis::LeaseStatus::kServed);
            ++pass_;
            resp.wait_us = wait_us;
            resp.latency_us = elapsedUs(w.enqueued_at, Clock::now());
            direct_.fetch_add(1, std::memory_order_relaxed);
            served_.fetch_add(1, std::memory_order_relaxed);
            terminated_ids.push_back(resp.id);
            resolve_(std::move(resp));
        }

        // Advance every lane with occupants by one step; recycle the
        // rows whose payload completed.
        bool stepped = false;
        for (size_t s = 0; s < sessions_.size(); ++s) {
            for (int lane = 0; lane < sessions_[s]->numLanes(); ++lane) {
                auto &rows = occupant_[s][static_cast<size_t>(lane)];
                const int64_t live = static_cast<int64_t>(
                    rows.size() -
                    static_cast<size_t>(std::count(rows.begin(),
                                                   rows.end(),
                                                   int64_t{-1})));
                if (live == 0)
                    continue;
                stepped = true;
                stepped_rows_.fetch_add(live,
                                        std::memory_order_relaxed);
                finishes.clear();
                sessions_[s]->stepLane(lane, finishes);
                for (LaneFinish &fin : finishes) {
                    rows[static_cast<size_t>(fin.slot)] = -1;
                    const auto it = std::find_if(
                        running_.begin(), running_.end(),
                        [&](const Running &rr) {
                            return rr.req.id == fin.resp.id;
                        });
                    ECHO_CHECK(it != running_.end(),
                               "lane finished unknown request ",
                               fin.resp.id);
                    closeLease(it->lease, pass_ + 1,
                               analysis::LeaseStatus::kServed);
                    fin.resp.wait_us = it->wait_us;
                    fin.resp.latency_us =
                        elapsedUs(it->req.enqueued_at, Clock::now());
                    served_.fetch_add(1, std::memory_order_relaxed);
                    terminated_ids.push_back(fin.resp.id);
                    resolve_(std::move(fin.resp));
                    running_.erase(it);
                }
            }
        }
        if (stepped) {
            steps_.fetch_add(1, std::memory_order_relaxed);
            step_ctr.add(1);
        }
        if (!terminated_ids.empty()) {
            std::lock_guard<std::mutex> lock(cancel_mu_);
            for (const int64_t id : terminated_ids)
                cancel_requests_.erase(id);
        }
        ++pass_;
    }
}

SchedulerStats
ContinuousScheduler::stats() const
{
    SchedulerStats s;
    s.steps = steps_.load(std::memory_order_relaxed);
    s.stepped_rows = stepped_rows_.load(std::memory_order_relaxed);
    s.splices = splices_.load(std::memory_order_relaxed);
    s.recycled = recycled_.load(std::memory_order_relaxed);
    s.direct = direct_.load(std::memory_order_relaxed);
    s.served = served_.load(std::memory_order_relaxed);
    s.cancelled = cancelled_.load(std::memory_order_relaxed);
    s.expired = expired_.load(std::memory_order_relaxed);
    return s;
}

std::vector<analysis::SlotLease>
ContinuousScheduler::leaseJournal() const
{
    std::lock_guard<std::mutex> lock(journal_mu_);
    return journal_;
}

int64_t
ContinuousScheduler::poolBase(size_t session_index) const
{
    ECHO_REQUIRE(session_index < pool_base_.size(),
                 "bad session index");
    return pool_base_[session_index];
}

int64_t
ContinuousScheduler::numSlots() const
{
    int64_t slots = 1;
    for (const InferenceSession *session : sessions_)
        slots = std::max(slots, session->config().slots);
    return slots;
}

} // namespace echo::serve
