#include "memory/liveness.h"

#include <unordered_set>

#include "core/logging.h"
#include "graph/schedule.h"

namespace echo::memory {

const char *
dataStructureName(DataStructure ds)
{
    switch (ds) {
      case DataStructure::kPlaceholders:
        return "placeholders";
      case DataStructure::kWeights:
        return "weights";
      case DataStructure::kFeatureMaps:
        return "feature_maps";
      case DataStructure::kWorkspace:
        return "workspace";
    }
    return "?";
}

LivenessResult
analyzeLiveness(const std::vector<Val> &fetches,
                const std::vector<Val> &weight_grads)
{
    LivenessResult res;
    res.schedule = graph::buildSchedule(fetches);

    std::unordered_map<const Node *, int> pos;
    for (size_t i = 0; i < res.schedule.size(); ++i)
        pos[res.schedule[i]] = static_cast<int>(i);

    std::unordered_set<Val, ValHash> grad_set(weight_grads.begin(),
                                              weight_grads.end());
    std::unordered_set<Val, ValHash> fetch_set(fetches.begin(),
                                               fetches.end());

    // Create a record per output value.
    for (Node *n : res.schedule) {
        for (int i = 0; i < n->numOutputs(); ++i) {
            ValueInfo info;
            info.val = n->out(i);
            info.bytes =
                n->out_shapes[static_cast<size_t>(i)].bytes();
            info.def_pos = pos.at(n);
            info.last_use_pos = info.def_pos;
            info.layer_tag =
                n->layer_tag.empty() ? "other" : n->layer_tag;
            res.index[info.val] = res.values.size();
            res.values.push_back(info);
        }
    }

    // Extend intervals to the last consumer.
    for (Node *n : res.schedule) {
        const int p = pos.at(n);
        for (const Val &v : n->inputs) {
            ValueInfo &info = res.values[res.index.at(v)];
            info.last_use_pos = std::max(info.last_use_pos, p);
        }
    }

    // Categorize.  A forward value consumed by a backward node is a
    // feature map; recompute consumers do NOT make a value a feature map
    // (the whole point of the Echo rewrite is that only the cheap
    // frontier stays stashed — and that frontier is what recompute nodes
    // read).
    std::unordered_set<Val, ValHash> fwd_consumed_by_bwd;
    for (Node *n : res.schedule) {
        if (n->phase != graph::Phase::kBackward)
            continue;
        for (const Val &v : n->inputs)
            if (v.node->phase == graph::Phase::kForward &&
                v.node->kind == graph::NodeKind::kOp)
                fwd_consumed_by_bwd.insert(v);
    }
    // Values read by recompute nodes are stashed inputs: they stay alive
    // into the backward region exactly like feature maps, so they count
    // as feature maps too (they are just much smaller).
    for (Node *n : res.schedule) {
        if (n->phase != graph::Phase::kRecompute)
            continue;
        for (const Val &v : n->inputs)
            if (v.node->phase == graph::Phase::kForward &&
                v.node->kind == graph::NodeKind::kOp)
                fwd_consumed_by_bwd.insert(v);
    }

    for (ValueInfo &info : res.values) {
        const Node *n = info.val.node;
        if (n->kind == graph::NodeKind::kPlaceholder) {
            info.category = DataStructure::kPlaceholders;
            info.persistent = true;
        } else if (n->kind == graph::NodeKind::kWeight) {
            info.category = DataStructure::kWeights;
            info.persistent = true;
        } else if (grad_set.count(info.val)) {
            info.category = DataStructure::kWeights;
            info.persistent = true;
        } else if (fwd_consumed_by_bwd.count(info.val)) {
            info.category = DataStructure::kFeatureMaps;
        } else {
            info.category = DataStructure::kWorkspace;
        }
        if (fetch_set.count(info.val))
            info.persistent = true;
    }

    return res;
}

} // namespace echo::memory
