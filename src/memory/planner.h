/**
 * @file
 * Memory-pool planner: assigns every transient value a byte offset in a
 * simulated GPU memory pool (best-fit with coalescing free list, like
 * MXNet's storage manager) and reports the peak footprint.
 *
 * The planner is where the paper's workspace-sharing argument (§4.1.2)
 * becomes measurable: because the Echo pass's recompute buffers for time
 * step t die before step t-1's are born, the best-fit pool reuses one
 * O(B·T·H) arena for all steps instead of O(B·T²·H).  The
 * reuse_transients=false mode disables pooling (every transient gets a
 * fresh offset) for the ablation bench.
 */
#ifndef ECHO_MEMORY_PLANNER_H
#define ECHO_MEMORY_PLANNER_H

#include <unordered_map>

#include "memory/liveness.h"
#include "obs/memory_timeline.h"

namespace echo::memory {

/** Planner configuration. */
struct PlannerOptions
{
    /** Allocation granularity (bytes). */
    int64_t alignment = 256;
    /** When false, transients never share memory (ablation mode). */
    bool reuse_transients = true;
    /**
     * When set, every transient allocation/free is recorded here with
     * its schedule position, so the plan's footprint curve can be
     * replayed and audited (obs::replayTimeline).  Cleared first.
     */
    obs::MemoryTimeline *timeline = nullptr;
};

/** A planned allocation. */
struct Allocation
{
    int64_t offset = 0;
    int64_t bytes = 0;
};

/** The plan for one schedule. */
struct MemoryPlan
{
    /** Peak size of the transient pool (feature maps + workspace). */
    int64_t pool_peak_bytes = 0;
    /** Bytes held for the whole run (weights, placeholders, fetches). */
    int64_t persistent_bytes = 0;
    /** Offsets of transient values within the pool. */
    std::unordered_map<Val, Allocation, ValHash> offsets;
    /** Schedule position where the pool peak occurs. */
    int peak_pos = 0;

    int64_t total() const { return pool_peak_bytes + persistent_bytes; }
};

/** Plan memory for an analyzed schedule. */
MemoryPlan planMemory(const LivenessResult &live,
                      const PlannerOptions &opts = {});

} // namespace echo::memory

#endif // ECHO_MEMORY_PLANNER_H
