/**
 * @file
 * Liveness analysis over an execution schedule.
 *
 * Every value (node output) gets a live interval [def, last_use] in
 * schedule positions, the size it occupies, and its data-structure
 * category in the paper's taxonomy (§3.2):
 *
 *  - Placeholders: outputs of placeholder nodes (model inputs/labels),
 *  - Weights: parameters, their gradients, and (modelled) optimizer
 *    state,
 *  - Feature maps: forward-phase outputs consumed by backward-phase
 *    nodes — the "reserved space" that dominates LSTM training memory,
 *  - Workspace: everything else (forward temporaries, backward
 *    temporaries, and the recompute outputs introduced by the Echo
 *    pass).
 */
#ifndef ECHO_MEMORY_LIVENESS_H
#define ECHO_MEMORY_LIVENESS_H

#include <unordered_map>
#include <vector>

#include "graph/graph.h"

namespace echo::memory {

using graph::Node;
using graph::Val;
using graph::ValHash;

/** Paper §3.2 data-structure categories. */
enum class DataStructure {
    kPlaceholders,
    kWeights,
    kFeatureMaps,
    kWorkspace,
};

/** Printable category name. */
const char *dataStructureName(DataStructure ds);

/** One value's liveness record. */
struct ValueInfo
{
    Val val;
    int64_t bytes = 0;
    /** Schedule position of the producing node. */
    int def_pos = 0;
    /** Schedule position of the last consumer (== def_pos if unused). */
    int last_use_pos = 0;
    /** Lives for the whole run (weights, placeholders, fetches). */
    bool persistent = false;
    DataStructure category = DataStructure::kWorkspace;
    /** Layer tag of the producing node ("" -> "other"). */
    std::string layer_tag;
};

/** Result of analyzing one schedule. */
struct LivenessResult
{
    std::vector<Node *> schedule;
    std::vector<ValueInfo> values;
    /** Index into values for each val. */
    std::unordered_map<Val, size_t, ValHash> index;
};

/**
 * Analyze liveness of everything @p fetches needs.
 *
 * @param weight_grads values that are gradients of weights; they are
 *        categorized as Weights (the paper counts gradients and
 *        optimizer state under "Weights").
 */
LivenessResult
analyzeLiveness(const std::vector<Val> &fetches,
                const std::vector<Val> &weight_grads = {});

} // namespace echo::memory

#endif // ECHO_MEMORY_LIVENESS_H
