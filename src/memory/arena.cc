#include "memory/arena.h"

#include <cstdlib>
#include <new>

#include "core/logging.h"

namespace echo::memory {

Arena::Arena(int64_t bytes, int64_t alignment)
{
    ECHO_REQUIRE(bytes >= 0, "negative arena size");
    ECHO_REQUIRE(alignment > 0 && (alignment & (alignment - 1)) == 0,
                 "arena alignment must be a power of two");
    bytes_ = bytes;
    if (bytes == 0)
        return;
    const auto av =
        static_cast<std::align_val_t>(static_cast<size_t>(alignment));
    void *raw = ::operator new(static_cast<size_t>(bytes), av);
    block_ = std::shared_ptr<void>(
        raw, [av](void *p) { ::operator delete(p, av); });
    base_ = static_cast<float *>(raw);
}

} // namespace echo::memory
