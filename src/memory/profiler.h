/**
 * @file
 * Memory profiler: the analogue of the MXNet memory profiler + the
 * nvidia-smi query used by the paper.  Produces the total footprint and
 * the two breakdowns of Fig. 5 / Fig. 14 — by data structure and by
 * layer type — attributed at the pool-peak moment of one training
 * iteration.
 */
#ifndef ECHO_MEMORY_PROFILER_H
#define ECHO_MEMORY_PROFILER_H

#include <map>
#include <string>

#include "memory/planner.h"

namespace echo::memory {

/** Profiler configuration. */
struct ProfilerOptions
{
    PlannerOptions planner;
    /**
     * Bytes of optimizer state per weight byte (1.0 for SGD+momentum,
     * 2.0 for Adam); counted under Weights like the paper does.
     */
    double optimizer_state_per_weight_byte = 1.0;
    /**
     * Model of the profiler-vs-nvidia-smi gap of Fig. 5: allocator
     * fragmentation (fraction of the planned pool) plus a constant for
     * the CUDA context and libraries.
     */
    double fragmentation_fraction = 0.06;
    int64_t cuda_context_bytes = 600ll << 20;
};

/** One iteration's memory profile. */
struct MemoryProfile
{
    /** Bytes the planner assigned (the "profiler" number). */
    int64_t planned_bytes = 0;
    /** Modelled device usage (the "nvidia-smi" number). */
    int64_t device_bytes = 0;
    /** The gap between the two (striped bar in Fig. 5). */
    int64_t undisclosed_bytes = 0;
    /** Breakdown of planned_bytes by data structure at the peak. */
    std::map<DataStructure, int64_t> by_data_structure;
    /** Breakdown of planned_bytes by layer tag at the peak. */
    std::map<std::string, int64_t> by_layer;

    /** Fraction of planned bytes in @p ds. */
    double fractionOf(DataStructure ds) const;
    /** Fraction of planned bytes in layer @p tag. */
    double fractionOfLayer(const std::string &tag) const;
};

/**
 * Profile the memory of one training iteration.
 *
 * @param fetches the iteration's outputs (loss + weight gradients).
 * @param weight_grads gradient values (classified under Weights).
 */
MemoryProfile profileMemory(const std::vector<Val> &fetches,
                            const std::vector<Val> &weight_grads,
                            const ProfilerOptions &opts = {});

} // namespace echo::memory

#endif // ECHO_MEMORY_PROFILER_H
