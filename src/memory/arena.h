/**
 * @file
 * A single aligned block of float storage that makes a MemoryPlan's
 * pool offsets real addresses.
 *
 * The planner (memory/planner.h) assigns every transient value a byte
 * offset in a simulated pool; an Arena of exactly pool_peak_bytes
 * turns those offsets into pointers, closing the loop — the plan IS
 * the allocator.  Arenas are shared-ownership value types: the block
 * stays alive as long as any Arena copy or any tensor served from it
 * (via the owner() handle) does.
 */
#ifndef ECHO_MEMORY_ARENA_H
#define ECHO_MEMORY_ARENA_H

#include <cstdint>
#include <memory>

namespace echo::memory {

/** One aligned block of bytes addressed by plan offsets. */
class Arena
{
  public:
    /** An empty arena (no storage). */
    Arena() = default;

    /** Allocate @p bytes with @p alignment (the planner's granularity,
     *  so every planned offset is itself aligned within the block). */
    explicit Arena(int64_t bytes, int64_t alignment = 256);

    /** Base address (nullptr when empty). */
    float *base() const { return base_; }

    /** Block size in bytes. */
    int64_t bytes() const { return bytes_; }

    /** Address at @p byte_offset into the block. */
    float *
    at(int64_t byte_offset) const
    {
        return reinterpret_cast<float *>(
            reinterpret_cast<char *>(base_) + byte_offset);
    }

    /** True when @p p points inside the block. */
    bool
    contains(const void *p) const
    {
        const char *c = static_cast<const char *>(p);
        const char *b = reinterpret_cast<const char *>(base_);
        return base_ && c >= b && c < b + bytes_;
    }

    /** Keep-alive handle for tensors served from this block. */
    const std::shared_ptr<void> &owner() const { return block_; }

  private:
    std::shared_ptr<void> block_;
    float *base_ = nullptr;
    int64_t bytes_ = 0;
};

} // namespace echo::memory

#endif // ECHO_MEMORY_ARENA_H
