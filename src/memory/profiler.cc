#include "memory/profiler.h"

#include "core/logging.h"

namespace echo::memory {

double
MemoryProfile::fractionOf(DataStructure ds) const
{
    auto it = by_data_structure.find(ds);
    if (it == by_data_structure.end() || planned_bytes == 0)
        return 0.0;
    return static_cast<double>(it->second) /
           static_cast<double>(planned_bytes);
}

double
MemoryProfile::fractionOfLayer(const std::string &tag) const
{
    auto it = by_layer.find(tag);
    if (it == by_layer.end() || planned_bytes == 0)
        return 0.0;
    return static_cast<double>(it->second) /
           static_cast<double>(planned_bytes);
}

MemoryProfile
profileMemory(const std::vector<Val> &fetches,
              const std::vector<Val> &weight_grads,
              const ProfilerOptions &opts)
{
    const LivenessResult live = analyzeLiveness(fetches, weight_grads);
    const MemoryPlan plan = planMemory(live, opts.planner);

    MemoryProfile prof;

    // Attribute at the pool-peak moment: persistent values always count;
    // transients count when live at peak_pos.
    for (const ValueInfo &info : live.values) {
        const bool counted =
            info.persistent || (info.def_pos <= plan.peak_pos &&
                                plan.peak_pos <= info.last_use_pos);
        if (!counted)
            continue;
        int64_t bytes = info.bytes;
        if (info.val.node->kind == graph::NodeKind::kWeight) {
            // Optimizer state (momentum / Adam moments) lives next to
            // the parameter and is counted under Weights (§3.2).
            bytes += static_cast<int64_t>(
                static_cast<double>(info.bytes) *
                opts.optimizer_state_per_weight_byte);
        }
        prof.by_data_structure[info.category] += bytes;
        prof.by_layer[info.layer_tag] += bytes;
        prof.planned_bytes += bytes;
    }

    prof.undisclosed_bytes =
        static_cast<int64_t>(static_cast<double>(plan.pool_peak_bytes) *
                             opts.fragmentation_fraction) +
        opts.cuda_context_bytes;
    prof.device_bytes = prof.planned_bytes + prof.undisclosed_bytes;
    return prof;
}

} // namespace echo::memory
