#include "memory/planner.h"

#include <map>

#include "core/logging.h"
#include "obs/counters.h"
#include "obs/trace.h"

namespace echo::memory {

namespace {

/** Best-fit free-list allocator over a growable address range. */
class Pool
{
  public:
    /** Allocate @p bytes; extends the high-water mark when no block
     *  fits. */
    int64_t
    allocate(int64_t bytes)
    {
        // Best fit: smallest free block that is large enough.
        auto best = free_.end();
        for (auto it = free_.begin(); it != free_.end(); ++it)
            if (it->second >= bytes &&
                (best == free_.end() || it->second < best->second))
                best = it;
        if (best != free_.end()) {
            const int64_t offset = best->first;
            const int64_t remaining = best->second - bytes;
            free_.erase(best);
            if (remaining > 0)
                free_[offset + bytes] = remaining;
            return offset;
        }
        const int64_t offset = top_;
        top_ += bytes;
        return offset;
    }

    /** Return a block, merging with adjacent free blocks. */
    void
    release(int64_t offset, int64_t bytes)
    {
        auto [it, inserted] = free_.emplace(offset, bytes);
        ECHO_CHECK(inserted, "double free at offset ", offset);
        // Merge with successor.
        auto next = std::next(it);
        if (next != free_.end() &&
            it->first + it->second == next->first) {
            it->second += next->second;
            free_.erase(next);
        }
        // Merge with predecessor.
        if (it != free_.begin()) {
            auto prev = std::prev(it);
            if (prev->first + prev->second == it->first) {
                prev->second += it->second;
                free_.erase(it);
            }
        }
    }

    int64_t top() const { return top_; }

  private:
    std::map<int64_t, int64_t> free_;
    int64_t top_ = 0;
};

int64_t
alignUp(int64_t v, int64_t a)
{
    return (v + a - 1) / a * a;
}

} // namespace

MemoryPlan
planMemory(const LivenessResult &live, const PlannerOptions &opts)
{
    MemoryPlan plan;
    obs::Span plan_span;
    if (obs::traceEnabled())
        plan_span.begin("mem", "planMemory",
                        {{"values",
                          static_cast<int64_t>(live.values.size())},
                         {"reuse", opts.reuse_transients ? 1 : 0}});
    if (opts.timeline != nullptr)
        opts.timeline->clear();

    static obs::Counter &c_allocs = obs::counter("mem.allocs");
    static obs::Counter &c_frees = obs::counter("mem.frees");
    static obs::Counter &c_bytes_alloc =
        obs::counter("mem.bytes_allocated");
    static obs::Counter &c_bytes_freed = obs::counter("mem.bytes_freed");

    /** Record one timeline event (and mirror it into a live trace). */
    const auto record = [&opts](int pos, bool is_alloc,
                                const Allocation &a,
                                const ValueInfo &info) {
        if (opts.timeline != nullptr) {
            obs::MemoryEvent e;
            e.pos = pos;
            e.is_alloc = is_alloc;
            e.offset = a.offset;
            e.bytes = a.bytes;
            e.node_id = info.val.node->id;
            e.out_index = info.val.index;
            e.name = info.val.node->name;
            opts.timeline->events.push_back(std::move(e));
        }
        if (obs::traceEnabled()) {
            obs::emitEvent('i', "mem", is_alloc ? "alloc" : "free",
                           {{"pos", pos},
                            {"offset", a.offset},
                            {"bytes", a.bytes},
                            {"node", info.val.node->id}});
        }
    };

    // Group transient values by def / free position.
    const size_t steps = live.schedule.size();
    std::vector<std::vector<const ValueInfo *>> defs(steps);
    std::vector<std::vector<const ValueInfo *>> frees(steps);
    for (const ValueInfo &info : live.values) {
        if (info.persistent) {
            plan.persistent_bytes +=
                alignUp(info.bytes, opts.alignment);
            continue;
        }
        defs[static_cast<size_t>(info.def_pos)].push_back(&info);
        frees[static_cast<size_t>(info.last_use_pos)].push_back(&info);
    }

    Pool pool;
    int64_t no_reuse_top = 0;
    int64_t live_bytes = 0;
    int64_t max_live_bytes = -1;

    for (size_t p = 0; p < steps; ++p) {
        for (const ValueInfo *info : defs[p]) {
            const int64_t sz = alignUp(info->bytes, opts.alignment);
            Allocation a;
            a.bytes = sz;
            if (opts.reuse_transients) {
                a.offset = pool.allocate(sz);
            } else {
                a.offset = no_reuse_top;
                no_reuse_top += sz;
            }
            plan.offsets[info->val] = a;
            live_bytes += sz;
            c_allocs.add(1);
            c_bytes_alloc.add(sz);
            record(static_cast<int>(p), true, a, *info);
        }
        if (live_bytes > max_live_bytes) {
            max_live_bytes = live_bytes;
            plan.peak_pos = static_cast<int>(p);
        }
        for (const ValueInfo *info : frees[p]) {
            const Allocation &a = plan.offsets.at(info->val);
            if (opts.reuse_transients)
                pool.release(a.offset, a.bytes);
            live_bytes -= a.bytes;
            c_frees.add(1);
            c_bytes_freed.add(a.bytes);
            record(static_cast<int>(p), false, a, *info);
        }
    }

    plan.pool_peak_bytes =
        opts.reuse_transients ? pool.top() : no_reuse_top;
    return plan;
}

} // namespace echo::memory
