/**
 * @file
 * The shape-specialized GEMM autotuner.
 *
 * Ties the pieces together: candidate enumeration (search_space),
 * wall-clock measurement (measure), the persistent cache (cache), and
 * the in-process schedule registry (tensor/gemm_schedule).  One
 * Autotuner owns one cache file; ensureGlobalTuner() wires a
 * process-wide instance into ops::gemm via the resolver hook so a
 * registry miss in ECHO_TUNE=search mode triggers tune-on-first-miss.
 *
 * Search contract: the winner is the candidate with the smallest
 * median measured time whose output is BYTE-IDENTICAL to
 * gemmReference() on the measurement operands.  The bitwise design of
 * the blocked kernel makes that validation a tautology (see
 * gemm_schedule.h), but the tuner still checks — it is the last line
 * of defense if a future micro-kernel breaks the contract, and a
 * validation failure (tune.validate_reject) fails loudly in tests.
 */
#ifndef ECHO_TUNE_TUNER_H
#define ECHO_TUNE_TUNER_H

#include <mutex>
#include <string>
#include <vector>

#include "tune/cache.h"
#include "tune/search_space.h"

namespace echo::tune {

/** Tuner configuration (defaults follow the environment). */
struct TuneOptions
{
    /** Cache file; empty means defaultCachePath(). */
    std::string cache_path;
    /** Candidates measured per key after cost-model pruning. */
    int max_candidates = 16;
    int warmup = 1;
    int reps = 3;
    /** Persist the cache after every successful search. */
    bool persist = true;
};

/** One tuned decision with its evidence (echo-tune --dump rows). */
struct TuneOutcome
{
    ops::GemmKey key;
    ops::GemmSchedule best;
    double best_seconds = 0.0;
    double fixed_seconds = 0.0;
    int candidates_measured = 0;
    /** True when the decision came from a search in this process (vs
     *  loaded from the cache file). */
    bool searched = false;

    double speedup() const
    {
        return best_seconds > 0.0 ? fixed_seconds / best_seconds : 1.0;
    }
};

/**
 * Shape-specialized GEMM autotuner over one cache file.  Thread-safe;
 * concurrent resolve() calls serialize searches.
 */
class Autotuner
{
  public:
    explicit Autotuner(TuneOptions options = {});

    /**
     * The schedule to use for @p key: registry hit -> that; cache-file
     * hit (matching ISA/width) -> registered and returned; otherwise a
     * measured search (tune-on-first-miss).  Every decision ends up in
     * the registry, so subsequent ops::gemm calls hit without the
     * tuner.
     */
    ops::GemmSchedule resolve(const ops::GemmKey &key);

    /**
     * Force a measured search for @p key (ignores registry and cache),
     * register and persist the winner.  @p key.threads should match
     * the current global pool.
     */
    TuneOutcome tuneKey(const ops::GemmKey &key);

    /**
     * resolve() every key, searching only the ones with no usable
     * registry/cache entry.  Returns the number of searches run.
     */
    int warmKeys(const std::vector<ops::GemmKey> &keys);

    /** Decisions this tuner has made or loaded, for inspection. */
    std::vector<TuneOutcome> outcomes() const;

    /** Write the cache file now (also done after each search). */
    bool persist();

    const TuneOptions &options() const { return options_; }
    const std::string &cachePath() const { return cache_path_; }

  private:
    /** Load the cache file once; registry-inserts matching entries. */
    void ensureLoadedLocked();
    TuneOutcome searchLocked(const ops::GemmKey &key);
    void upsertEntryLocked(const CacheEntry &entry);

    TuneOptions options_;
    std::string cache_path_;
    mutable std::mutex mu_;
    bool loaded_ = false;
    /** Every entry from the cache file (all ISAs) plus new decisions —
     *  what persist() writes back, so foreign-ISA entries survive. */
    std::vector<CacheEntry> entries_;
    std::vector<TuneOutcome> outcomes_;
};

/**
 * The process-wide tuner (created on first use with default options).
 * ensureGlobalTuner() additionally applies the ECHO_TUNE policy: in
 * kCache and kSearch modes the cache file is loaded into the registry;
 * in kSearch mode the resolver hook is installed so misses tune on
 * first use.  Idempotent and cheap; executors and serving sessions
 * call it at graph-construction time.
 */
Autotuner &globalTuner();
void ensureGlobalTuner();

/** Test hook: replace the global tuner (pass nullptr to reset to the
 *  default-constructed one) and reinstall resolver per tuneMode(). */
void setGlobalTunerForTest(Autotuner *tuner);

} // namespace echo::tune

#endif // ECHO_TUNE_TUNER_H
