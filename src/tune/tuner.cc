/**
 * @file
 * Search orchestration, cache wiring, and the global resolver hook
 * (see header).
 */
#include "tune/tuner.h"

#include <algorithm>
#include <cstring>

#include "core/logging.h"
#include "core/thread_pool.h"
#include "obs/counters.h"
#include "obs/trace.h"
#include "tensor/ops.h"
#include "tune/measure.h"

namespace echo::tune {

namespace {

obs::Counter &
searchRunsCounter()
{
    static obs::Counter &c =
        obs::counter("tune.search_runs", obs::CounterKind::kScheduling);
    return c;
}

obs::Counter &
validateRejectCounter()
{
    static obs::Counter &c = obs::counter(
        "tune.validate_reject", obs::CounterKind::kScheduling);
    return c;
}

/** Bitwise comparison of two equal-shape tensors. */
bool
bytesEqual(const Tensor &a, const Tensor &b)
{
    return a.shape() == b.shape() &&
           std::memcmp(a.data(), b.data(),
                       static_cast<size_t>(a.shape().bytes())) == 0;
}

} // namespace

Autotuner::Autotuner(TuneOptions options) : options_(std::move(options))
{
    cache_path_ = options_.cache_path.empty() ? defaultCachePath()
                                              : options_.cache_path;
}

void
Autotuner::ensureLoadedLocked()
{
    if (loaded_)
        return;
    loaded_ = true;

    static obs::Counter &loaded_counter = obs::counter(
        "tune.cache_entries_loaded", obs::CounterKind::kScheduling);
    static obs::Counter &rejected_counter = obs::counter(
        "tune.cache_entries_rejected", obs::CounterKind::kScheduling);

    CacheLoadResult result = loadTuneCache(cache_path_);
    entries_ = std::move(result.entries);
    rejected_counter.add(result.rejected);

    const char *isa = ops::gemmIsaName();
    const int vecw = ops::gemmVectorWidthBytes();
    int applied = 0;
    for (const CacheEntry &e : entries_) {
        if (e.isa != isa || e.vector_width_bytes != vecw)
            continue; // foreign-ISA entry: kept on disk, not applied
        ops::setTunedSchedule(e.key, e.schedule);
        outcomes_.push_back(TuneOutcome{e.key, e.schedule, 0.0, 0.0, 0,
                                        /*searched=*/false});
        ++applied;
    }
    loaded_counter.add(applied);
}

void
Autotuner::upsertEntryLocked(const CacheEntry &entry)
{
    auto it = std::find_if(
        entries_.begin(), entries_.end(), [&entry](const CacheEntry &e) {
            return e.key == entry.key && e.isa == entry.isa &&
                   e.vector_width_bytes == entry.vector_width_bytes;
        });
    if (it != entries_.end())
        *it = entry;
    else
        entries_.push_back(entry);
}

TuneOutcome
Autotuner::searchLocked(const ops::GemmKey &key)
{
    obs::Span span;
    if (obs::traceEnabled())
        span.begin("tune", "tune.search " + key.toString(),
                   {{"m", key.m},
                    {"n", key.n},
                    {"k", key.k},
                    {"threads", key.threads}});
    searchRunsCounter().add(1);

    std::vector<ScoredSchedule> candidates =
        enumerateCandidates(key, options_.max_candidates);

    struct Timed
    {
        ops::GemmSchedule schedule;
        double seconds = 0.0;
    };
    std::vector<Timed> timed;
    timed.reserve(candidates.size());
    double fixed_seconds = 0.0;
    const ops::GemmSchedule fixed = ops::GemmSchedule::fixedDefault();
    for (const ScoredSchedule &c : candidates) {
        const Measurement m = measureSchedule(
            key, c.schedule, options_.warmup, options_.reps);
        timed.push_back({c.schedule, m.seconds});
        if (c.schedule == fixed)
            fixed_seconds = m.seconds;
    }
    std::stable_sort(timed.begin(), timed.end(),
                     [](const Timed &a, const Timed &b) {
                         return a.seconds < b.seconds;
                     });

    // Validate best-first against the reference; the first candidate
    // whose output is byte-identical wins.  The reference product is
    // computed once per key, on the same fixed-seed operands the
    // measurements used.
    Rng rng(0x7u);
    const Tensor a = Tensor::uniform(
        key.trans_a ? Shape({key.k, key.m}) : Shape({key.m, key.k}),
        rng);
    const Tensor b = Tensor::uniform(
        key.trans_b ? Shape({key.n, key.k}) : Shape({key.k, key.n}),
        rng);
    const Tensor ref =
        ops::gemmReference(a, key.trans_a, b, key.trans_b);

    TuneOutcome outcome;
    outcome.key = key;
    outcome.fixed_seconds = fixed_seconds;
    outcome.candidates_measured = static_cast<int>(timed.size());
    outcome.searched = true;
    bool found = false;
    for (const Timed &t : timed) {
        const Tensor got = ops::gemmWithSchedule(
            a, key.trans_a, b, key.trans_b, 1.0f, t.schedule);
        if (bytesEqual(got, ref)) {
            outcome.best = t.schedule;
            outcome.best_seconds = t.seconds;
            found = true;
            break;
        }
        validateRejectCounter().add(1);
        ECHO_WARN("tune: schedule ", t.schedule.toString(), " for ",
                  key.toString(),
                  " is NOT byte-identical to gemmReference; rejected");
    }
    if (!found) {
        // Cannot happen while the kernel honors the bitwise contract;
        // degrade to the fixed default and do not poison the cache.
        outcome.best = fixed;
        outcome.best_seconds = fixed_seconds;
        ECHO_WARN("tune: no candidate validated for ", key.toString(),
                  "; keeping the fixed default unpersisted");
        ops::setTunedSchedule(key, outcome.best);
        outcomes_.push_back(outcome);
        return outcome;
    }

    // Champion guard: the ranking above used each candidate's own
    // (possibly noisy) search-time median, so re-measure the winner
    // head-to-head against the fixed default and keep the default
    // unless the winner is strictly faster.  This caps the worst case
    // of a noisy search at "exactly the pre-tuner kernel" — a tuned
    // process can never regress a shape past the fixed schedule by
    // more than back-to-back measurement noise.
    if (!(outcome.best == fixed)) {
        const double best2 =
            measureSchedule(key, outcome.best, options_.warmup,
                            options_.reps)
                .seconds;
        const double fixed2 =
            measureSchedule(key, fixed, options_.warmup, options_.reps)
                .seconds;
        outcome.best_seconds = best2;
        outcome.fixed_seconds = fixed2;
        if (fixed2 <= best2) {
            outcome.best = fixed;
            outcome.best_seconds = fixed2;
        }
    }

    ops::setTunedSchedule(key, outcome.best);
    upsertEntryLocked(CacheEntry{key, ops::gemmIsaName(),
                                 ops::gemmVectorWidthBytes(),
                                 outcome.best});
    outcomes_.push_back(outcome);
    if (options_.persist)
        saveTuneCache(cache_path_, entries_);
    return outcome;
}

ops::GemmSchedule
Autotuner::resolve(const ops::GemmKey &key)
{
    std::lock_guard lock(mu_);
    ensureLoadedLocked();
    if (auto tuned = ops::findTunedSchedule(key))
        return *tuned;
    return searchLocked(key).best;
}

TuneOutcome
Autotuner::tuneKey(const ops::GemmKey &key)
{
    std::lock_guard lock(mu_);
    ensureLoadedLocked();
    return searchLocked(key);
}

int
Autotuner::warmKeys(const std::vector<ops::GemmKey> &keys)
{
    std::lock_guard lock(mu_);
    ensureLoadedLocked();
    int searched = 0;
    for (const ops::GemmKey &key : keys) {
        if (ops::findTunedSchedule(key))
            continue;
        searchLocked(key);
        ++searched;
    }
    return searched;
}

std::vector<TuneOutcome>
Autotuner::outcomes() const
{
    std::lock_guard lock(mu_);
    return outcomes_;
}

bool
Autotuner::persist()
{
    std::lock_guard lock(mu_);
    ensureLoadedLocked();
    return saveTuneCache(cache_path_, entries_);
}

// ------------------------------------------------- global wiring --

namespace {

struct GlobalTuner
{
    std::mutex mu;
    Autotuner *tuner = nullptr;   // test override
    Autotuner *owned = nullptr;   // lazily created default
    bool resolver_installed = false;
};

GlobalTuner &
globalState()
{
    static GlobalTuner g;
    return g;
}

Autotuner &
currentTuner(GlobalTuner &g)
{
    if (g.tuner != nullptr)
        return *g.tuner;
    if (g.owned == nullptr)
        g.owned = new Autotuner(); // intentionally leaked (process-wide)
    return *g.owned;
}

void
installPolicy(GlobalTuner &g)
{
    const ops::TuneMode mode = ops::tuneMode();
    if (mode == ops::TuneMode::kOff)
        return;
    // Both cache and search mode want the cache file in the registry;
    // resolve-on-miss (which measures) is search-mode only.
    Autotuner &tuner = currentTuner(g);
    if (mode == ops::TuneMode::kSearch) {
        ops::setScheduleResolver(
            [&tuner](const ops::GemmKey &key)
                -> std::optional<ops::GemmSchedule> {
                return tuner.resolve(key);
            });
        g.resolver_installed = true;
    } else {
        // kCache: pull the file into the registry once, no resolver.
        (void)tuner.warmKeys({});
        if (g.resolver_installed) {
            ops::setScheduleResolver(nullptr);
            g.resolver_installed = false;
        }
    }
}

} // namespace

Autotuner &
globalTuner()
{
    GlobalTuner &g = globalState();
    std::lock_guard lock(g.mu);
    return currentTuner(g);
}

void
ensureGlobalTuner()
{
    GlobalTuner &g = globalState();
    std::lock_guard lock(g.mu);
    installPolicy(g);
}

void
setGlobalTunerForTest(Autotuner *tuner)
{
    GlobalTuner &g = globalState();
    std::lock_guard lock(g.mu);
    g.tuner = tuner;
    if (g.resolver_installed) {
        ops::setScheduleResolver(nullptr);
        g.resolver_installed = false;
    }
    if (tuner != nullptr)
        installPolicy(g);
}

} // namespace echo::tune
