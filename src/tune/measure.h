/**
 * @file
 * The tuner's measurement harness: wall-clock timing of one candidate
 * schedule on one GEMM geometry.
 *
 * Follows the bench-harness idiom: fixed-seed operands (so every
 * candidate multiplies the same data), warmup runs to fault in pack
 * buffers and warm the caches, then median-of-N timed runs — the
 * median is robust against one-off scheduling noise without needing
 * many repetitions.
 */
#ifndef ECHO_TUNE_MEASURE_H
#define ECHO_TUNE_MEASURE_H

#include "tensor/gemm_schedule.h"

namespace echo::tune {

/** Timing of one (geometry, schedule) measurement. */
struct Measurement
{
    /** Median of the timed runs, seconds. */
    double seconds = 0.0;
    int warmup_runs = 0;
    int timed_runs = 0;
};

/**
 * Time @p schedule on @p key's geometry under the current global
 * thread pool.  Ticks the tune.measure_runs counter once per timed
 * run.  @pre scheduleLegal(schedule, key.trans_b)
 */
Measurement measureSchedule(const ops::GemmKey &key,
                            const ops::GemmSchedule &schedule,
                            int warmup = 1, int reps = 3);

} // namespace echo::tune

#endif // ECHO_TUNE_MEASURE_H
