/**
 * @file
 * The GEMM schedule search space: enumeration with cost-model-guided
 * pruning, and random legal draws for the property tests.
 *
 * The full cross product (blocking x micro-tile x loop order x packing
 * x parallel axis x serial threshold) is tens of thousands of points —
 * far too many to measure per shape.  enumerateCandidates() scores
 * every legal point with a closed-form cost proxy (padded madds, pack
 * traffic, cache residency, register-tile efficiency, usable
 * parallelism) and returns only the top few plus the fixed default, so
 * the measurement harness times ~16 schedules instead of ~30k.  The
 * cost model only needs to rank well enough that the true optimum
 * survives pruning; the measurement pass makes the final call.
 */
#ifndef ECHO_TUNE_SEARCH_SPACE_H
#define ECHO_TUNE_SEARCH_SPACE_H

#include <vector>

#include "core/rng.h"
#include "tensor/gemm_schedule.h"

namespace echo::tune {

/** One scored point of the pruned search space. */
struct ScoredSchedule
{
    ops::GemmSchedule schedule;
    /** Modelled cost, arbitrary units (lower is better). */
    double cost = 0.0;
};

/**
 * The pruned candidate list for @p key: the @p max_candidates
 * best-scoring legal schedules, always including the fixed default
 * (so measurement can never regress past the pre-tuner kernel).
 * Ordered best-first by modelled cost.
 */
std::vector<ScoredSchedule> enumerateCandidates(const ops::GemmKey &key,
                                                int max_candidates = 16);

/**
 * Closed-form cost proxy for running @p s on @p key (lower is
 * better).  Exposed for the correlation bench and tests.
 */
double modelScheduleCost(const ops::GemmKey &key,
                         const ops::GemmSchedule &s);

/**
 * A uniformly random LEGAL schedule for an operand with @p trans_b
 * and @p threads workers — the fuzz test draws these and asserts
 * bitwise equality with gemmReference.  Occasionally sets
 * parallel_min_madds to zero so tiny shapes exercise the parallel
 * paths too.
 */
ops::GemmSchedule randomLegalSchedule(Rng &rng, bool trans_b,
                                      int threads);

} // namespace echo::tune

#endif // ECHO_TUNE_SEARCH_SPACE_H
