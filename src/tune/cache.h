/**
 * @file
 * The persistent on-disk tuning cache.
 *
 * A plain-text file, one tuned decision per line, so a cache diff in a
 * results directory is reviewable.  Layout:
 *
 *   echo-tune-cache 1                   <- versioned magic, line 1
 *   <entry>\n ...                       <- one decision per line
 *
 * where an entry is
 *
 *   m n k ta tb threads isa vecw  mc kc nc mr nr order pack par bpar
 *   minmadds  crc
 *
 * and crc is the FNV-1a hash (hex) of everything before it on the
 * line.  Entries carry the ISA name and vector width the schedule was
 * measured under: a cache file copied between machines loses nothing,
 * but only entries matching the running kernel's ISA are applied.
 *
 * Robustness rules:
 *  - a wrong magic/version fails the whole load (ok = false) — the
 *    format owns no forward-compatibility promises;
 *  - a corrupt LINE (bad crc, short fields, illegal schedule) is
 *    rejected individually and counted, and the rest of the file
 *    still loads — one flipped bit must not discard a night of
 *    tuning;
 *  - saves write to <path>.tmp.<pid> and rename into place, so a
 *    crashed writer can never leave a half-written cache behind.
 */
#ifndef ECHO_TUNE_CACHE_H
#define ECHO_TUNE_CACHE_H

#include <string>
#include <vector>

#include "tensor/gemm_schedule.h"

namespace echo::tune {

/** One tuned decision as stored on disk. */
struct CacheEntry
{
    ops::GemmKey key;
    /** Kernel ISA the measurement ran under (gemmIsaName()). */
    std::string isa = "scalar";
    int vector_width_bytes = 0;
    ops::GemmSchedule schedule;

    friend bool operator==(const CacheEntry &, const CacheEntry &) =
        default;
};

/** Outcome of loading a cache file. */
struct CacheLoadResult
{
    std::vector<CacheEntry> entries;
    /** Corrupt lines skipped (checksum/parse/legality failures). */
    int rejected = 0;
    /** False when the file exists but the header is wrong/unreadable. */
    bool ok = true;
    /** False when there was no file at all (ok stays true). */
    bool existed = false;
};

/** The cache format version this build reads and writes. */
constexpr int kTuneCacheVersion = 1;

/** Parse the cache at @p path (see robustness rules above). */
CacheLoadResult loadTuneCache(const std::string &path);

/** Atomically replace the cache at @p path.  Returns false on I/O
 *  failure (and warns); tuning proceeds without persistence. */
bool saveTuneCache(const std::string &path,
                   const std::vector<CacheEntry> &entries);

/** Serialize one entry to its cache line (without newline). */
std::string cacheLine(const CacheEntry &entry);

/** Parse one cache line; returns false (and leaves @p out alone) on
 *  any corruption. */
bool parseCacheLine(const std::string &line, CacheEntry *out);

/** $ECHO_TUNE_CACHE, defaulting to ".echo-tune-cache" in the CWD. */
std::string defaultCachePath();

} // namespace echo::tune

#endif // ECHO_TUNE_CACHE_H
