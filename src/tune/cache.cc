/**
 * @file
 * Cache file parsing and atomic persistence (see header).
 */
#include "tune/cache.h"

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <unistd.h>

#include "core/logging.h"

namespace echo::tune {

namespace {

constexpr char kMagic[] = "echo-tune-cache";

/** FNV-1a over the line prefix; printed as the trailing hex field. */
uint64_t
lineChecksum(const std::string &prefix)
{
    uint64_t h = 1469598103934665603ull;
    for (unsigned char c : prefix) {
        h ^= c;
        h *= 1099511628211ull;
    }
    return h;
}

std::string
hex(uint64_t v)
{
    char buf[17];
    std::snprintf(buf, sizeof buf, "%016llx",
                  static_cast<unsigned long long>(v));
    return buf;
}

} // namespace

std::string
cacheLine(const CacheEntry &e)
{
    std::ostringstream os;
    os << e.key.m << ' ' << e.key.n << ' ' << e.key.k << ' '
       << (e.key.trans_a ? 1 : 0) << ' ' << (e.key.trans_b ? 1 : 0)
       << ' ' << e.key.threads << ' ' << e.isa << ' '
       << e.vector_width_bytes << ' ' << e.schedule.mc << ' '
       << e.schedule.kc << ' ' << e.schedule.nc << ' ' << e.schedule.mr
       << ' ' << e.schedule.nr << ' '
       << static_cast<int>(e.schedule.loop_order) << ' '
       << static_cast<int>(e.schedule.pack_b) << ' '
       << static_cast<int>(e.schedule.parallel) << ' '
       << static_cast<int>(e.schedule.batch_parallel) << ' '
       << e.schedule.parallel_min_madds << ' ';
    const std::string prefix = os.str();
    return prefix + hex(lineChecksum(prefix));
}

bool
parseCacheLine(const std::string &line, CacheEntry *out)
{
    // Split off the trailing checksum field first and verify it over
    // the untouched prefix (including its trailing space).
    const auto crc_at = line.find_last_of(' ');
    if (crc_at == std::string::npos || crc_at + 1 >= line.size())
        return false;
    const std::string prefix = line.substr(0, crc_at + 1);
    const std::string crc_text = line.substr(crc_at + 1);
    char *end = nullptr;
    const uint64_t crc = std::strtoull(crc_text.c_str(), &end, 16);
    if (end == nullptr || *end != '\0' || crc != lineChecksum(prefix))
        return false;

    CacheEntry e;
    int ta = 0, tb = 0, order = 0, pack = 0, par = 0, bpar = 0;
    std::istringstream is(prefix);
    if (!(is >> e.key.m >> e.key.n >> e.key.k >> ta >> tb >>
          e.key.threads >> e.isa >> e.vector_width_bytes >>
          e.schedule.mc >> e.schedule.kc >> e.schedule.nc >>
          e.schedule.mr >> e.schedule.nr >> order >> pack >> par >>
          bpar >> e.schedule.parallel_min_madds))
        return false;
    if (e.key.m < 1 || e.key.n < 1 || e.key.k < 1 || e.key.threads < 1)
        return false;
    if ((ta | tb) > 1 || order > 1 || pack > 1 || par > 2 || bpar > 1 ||
        ta < 0 || tb < 0 || order < 0 || pack < 0 || par < 0 || bpar < 0)
        return false;
    e.key.trans_a = ta != 0;
    e.key.trans_b = tb != 0;
    e.schedule.loop_order = static_cast<ops::GemmLoopOrder>(order);
    e.schedule.pack_b = static_cast<ops::GemmPackB>(pack);
    e.schedule.parallel = static_cast<ops::GemmParallel>(par);
    e.schedule.batch_parallel = static_cast<uint8_t>(bpar);
    if (!ops::scheduleLegal(e.schedule, e.key.trans_b))
        return false;
    *out = e;
    return true;
}

CacheLoadResult
loadTuneCache(const std::string &path)
{
    CacheLoadResult result;
    std::ifstream in(path);
    if (!in) {
        // Absent is the normal first-run state, not an error.
        return result;
    }
    result.existed = true;

    std::string header;
    if (!std::getline(in, header)) {
        result.ok = false;
        return result;
    }
    std::istringstream hs(header);
    std::string magic;
    int version = -1;
    if (!(hs >> magic >> version) || magic != kMagic ||
        version != kTuneCacheVersion) {
        ECHO_WARN(path, ": not a version-", kTuneCacheVersion,
                  " tune cache (header \"", header, "\"); ignoring it");
        result.ok = false;
        return result;
    }

    std::string line;
    while (std::getline(in, line)) {
        if (line.empty())
            continue;
        CacheEntry e;
        if (parseCacheLine(line, &e)) {
            result.entries.push_back(std::move(e));
        } else {
            ++result.rejected;
        }
    }
    if (result.rejected > 0)
        ECHO_WARN(path, ": rejected ", result.rejected,
                  " corrupt cache entr",
                  result.rejected == 1 ? "y" : "ies");
    return result;
}

bool
saveTuneCache(const std::string &path,
              const std::vector<CacheEntry> &entries)
{
    namespace fs = std::filesystem;
    const std::string tmp =
        path + ".tmp." + std::to_string(::getpid());
    {
        std::ofstream out(tmp, std::ios::trunc);
        if (!out) {
            ECHO_WARN(tmp, ": cannot write tune cache");
            return false;
        }
        out << kMagic << ' ' << kTuneCacheVersion << '\n';
        for (const CacheEntry &e : entries)
            out << cacheLine(e) << '\n';
        out.flush();
        if (!out) {
            ECHO_WARN(tmp, ": short write persisting tune cache");
            std::error_code ec;
            fs::remove(tmp, ec);
            return false;
        }
    }
    std::error_code ec;
    fs::rename(tmp, path, ec);
    if (ec) {
        ECHO_WARN(path, ": rename failed persisting tune cache: ",
                  ec.message());
        fs::remove(tmp, ec);
        return false;
    }
    return true;
}

std::string
defaultCachePath()
{
    const char *env = std::getenv("ECHO_TUNE_CACHE");
    if (env != nullptr && *env != '\0')
        return env;
    return ".echo-tune-cache";
}

} // namespace echo::tune
