/**
 * @file
 * Candidate timing (see header).
 */
#include "tune/measure.h"

#include <algorithm>
#include <chrono>
#include <vector>

#include "core/logging.h"
#include "core/rng.h"
#include "obs/counters.h"
#include "tensor/ops.h"

namespace echo::tune {

namespace {

/** Fixed operand seed: every candidate for a key times the same data. */
constexpr uint64_t kOperandSeed = 0x7u;

} // namespace

Measurement
measureSchedule(const ops::GemmKey &key, const ops::GemmSchedule &schedule,
                int warmup, int reps)
{
    ECHO_REQUIRE(ops::scheduleLegal(schedule, key.trans_b),
                 "measureSchedule: illegal schedule ",
                 schedule.toString(), " for ", key.toString());
    ECHO_REQUIRE(reps >= 1, "measureSchedule: reps must be >= 1");

    static obs::Counter &measure_runs = obs::counter(
        "tune.measure_runs", obs::CounterKind::kScheduling);

    Rng rng(kOperandSeed);
    const Tensor a = Tensor::uniform(
        key.trans_a ? Shape({key.k, key.m}) : Shape({key.m, key.k}),
        rng);
    const Tensor b = Tensor::uniform(
        key.trans_b ? Shape({key.n, key.k}) : Shape({key.k, key.n}),
        rng);

    for (int i = 0; i < warmup; ++i)
        (void)ops::gemmWithSchedule(a, key.trans_a, b, key.trans_b, 1.0f,
                                    schedule);

    std::vector<double> times;
    times.reserve(static_cast<size_t>(reps));
    for (int i = 0; i < reps; ++i) {
        const auto t0 = std::chrono::steady_clock::now();
        (void)ops::gemmWithSchedule(a, key.trans_a, b, key.trans_b, 1.0f,
                                    schedule);
        const auto t1 = std::chrono::steady_clock::now();
        times.push_back(std::chrono::duration<double>(t1 - t0).count());
        measure_runs.add(1);
    }
    std::nth_element(times.begin(), times.begin() + times.size() / 2,
                     times.end());
    return Measurement{times[times.size() / 2], warmup, reps};
}

} // namespace echo::tune
