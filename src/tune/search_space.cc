/**
 * @file
 * Candidate enumeration and the closed-form cost proxy (see header).
 */
#include "tune/search_space.h"

#include <algorithm>
#include <cmath>

namespace echo::tune {

namespace {

/** Cache capacities the residency terms are scored against.  These are
 *  deliberately conservative round numbers, not probed: the cost model
 *  only ranks candidates, and measurement decides among the survivors. */
constexpr double kL1Bytes = 32.0 * 1024;
constexpr double kL2Bytes = 512.0 * 1024;

int64_t
roundUp(int64_t v, int64_t to)
{
    return (v + to - 1) / to * to;
}

/** Blocking values tried per dimension (filtered for legality). */
constexpr int32_t kMcChoices[] = {8, 16, 32, 64, 128, 256};
constexpr int32_t kKcChoices[] = {64, 128, 256, 512, 1024};
constexpr int32_t kNcChoices[] = {128, 256, 512, 1024, 2048};
constexpr int64_t kMinMaddsChoices[] = {0, int64_t(1) << 14,
                                        int64_t(1) << 17,
                                        int64_t(1) << 20};

/**
 * The block sizes worth trying for one dimension: every preset choice
 * that is a legal multiple of @p tile and does NOT already cover the
 * padded extent, plus exactly one covering block (the padded extent
 * itself, clamped to @p max) — blocks past the covering one change
 * nothing, so enumerating them would only duplicate schedules.
 */
std::vector<int32_t>
blockChoices(const int32_t *choices, size_t n, int32_t tile,
             int64_t extent, int32_t max)
{
    const int64_t needed =
        std::min<int64_t>(roundUp(extent, tile), max / tile * tile);
    std::vector<int32_t> out;
    for (size_t i = 0; i < n; ++i) {
        const int32_t c = choices[i];
        if (c < tile || c % tile != 0 || c > max)
            continue;
        if (c < needed)
            out.push_back(c);
    }
    out.push_back(static_cast<int32_t>(needed));
    return out;
}

} // namespace

double
modelScheduleCost(const ops::GemmKey &key, const ops::GemmSchedule &s)
{
    const double m = static_cast<double>(key.m);
    const double n = static_cast<double>(key.n);
    const double k = static_cast<double>(key.k);

    // Padded madds: the micro-kernel always computes full mr x nr
    // tiles, so tail rows/columns burn FMAs on zero lanes.
    const double m_pad = static_cast<double>(roundUp(key.m, s.mr));
    const double n_pad = static_cast<double>(roundUp(key.n, s.nr));
    const double madds = m_pad * n_pad * k;

    // Per-madd throughput of the micro-tile: wider tiles amortize the
    // per-panel loads better, but a tile whose accumulator exceeds the
    // register file spills.  The shape of this term comes from the
    // micro-kernel shootout (mr*nr in [64, 256] floats is the sweet
    // spot for the compiled kernels; 1-wide rows are load-bound).
    const double tile = static_cast<double>(s.mr) * s.nr;
    double per_madd = 1.0;
    if (tile < 64.0)
        per_madd += (64.0 - tile) / 64.0; // under-unrolled: load-bound
    if (tile > 256.0)
        per_madd += (tile - 256.0) / 256.0; // spills accumulators
    if (s.mr == 1)
        per_madd += 0.5; // single-row FMAs cannot dual-issue

    // Packing traffic, in touched floats.  A is repacked once per jc
    // column panel (N-outer) or once per pc panel pass (K-outer); B is
    // packed once per (pc, jc) panel, or not at all when read direct.
    const double jc_passes = std::ceil(n / s.nc);
    const double a_pack = m_pad * k * jc_passes;
    const double b_pack =
        (s.pack_b == ops::GemmPackB::kPacked) ? n_pad * k : 0.0;
    // Direct B rereads unpacked rows; charge a mild locality penalty
    // that grows when the streamed row set falls out of L2.
    const double b_direct_penalty =
        (s.pack_b == ops::GemmPackB::kDirect)
            ? 0.1 * n * k *
                  std::max(1.0, (n * 4.0) / kL2Bytes)
            : 0.0;

    // Cache residency: the packed A block (mc x kc) should sit in L2,
    // a B micro-panel (kc x nr) in L1.
    double residency = 1.0;
    const double a_block_bytes = double(s.mc) * s.kc * 4.0;
    if (a_block_bytes > kL2Bytes)
        residency += a_block_bytes / kL2Bytes - 1.0;
    const double b_panel_bytes = double(s.kc) * s.nr * 4.0;
    if (b_panel_bytes > kL1Bytes)
        residency += 0.25 * (b_panel_bytes / kL1Bytes - 1.0);
    // K-outer revisits every C tile once per pc panel: charge the
    // extra C traffic (each revisit reloads and restores the tile).
    const double k_passes = std::ceil(k / s.kc);
    const double c_traffic =
        m_pad * n_pad * (s.loop_order == ops::GemmLoopOrder::kKOuter
                             ? k_passes
                             : jc_passes);

    // Parallel efficiency: a split only helps if it yields at least
    // one block per worker on the axis it cuts, and only applies when
    // the product clears the serial threshold.
    double workers = 1.0;
    if (s.parallel != ops::GemmParallel::kNone && key.threads > 1 &&
        m * n * k >= static_cast<double>(s.parallel_min_madds)) {
        const double blocks =
            (s.parallel == ops::GemmParallel::kRows)
                ? std::ceil(m / s.mc)
                : std::ceil(n / s.nc);
        workers = std::min(static_cast<double>(key.threads),
                           std::max(1.0, blocks));
    }

    const double compute = madds * per_madd * residency / workers;
    const double traffic =
        2.0 * (a_pack + b_pack + b_direct_penalty + c_traffic);
    return compute + traffic;
}

std::vector<ScoredSchedule>
enumerateCandidates(const ops::GemmKey &key, int max_candidates)
{
    std::vector<ScoredSchedule> scored;
    for (int32_t mr : ops::kGemmLegalMr)
        for (int32_t nr : ops::kGemmLegalNr)
            for (int32_t mc :
                 blockChoices(kMcChoices, std::size(kMcChoices), mr,
                              key.m, ops::kGemmMaxMc)) {
                for (int32_t kc :
                     blockChoices(kKcChoices, std::size(kKcChoices), 1,
                                  key.k, ops::kGemmMaxKc)) {
                    for (int32_t nc : blockChoices(
                             kNcChoices, std::size(kNcChoices), nr,
                             key.n, ops::kGemmMaxNc)) {
                        ops::GemmSchedule s;
                        s.mc = mc;
                        s.kc = kc;
                        s.nc = nc;
                        s.mr = mr;
                        s.nr = nr;
                        for (int order = 0; order < 2; ++order) {
                            s.loop_order =
                                static_cast<ops::GemmLoopOrder>(order);
                            for (int pack = 0; pack < 2; ++pack) {
                                s.pack_b =
                                    static_cast<ops::GemmPackB>(pack);
                                if (s.pack_b == ops::GemmPackB::kDirect &&
                                    key.trans_b)
                                    continue;
                                const int max_par =
                                    key.threads > 1 ? 2 : 0;
                                for (int par = 0; par <= max_par;
                                     ++par) {
                                    s.parallel = static_cast<
                                        ops::GemmParallel>(par);
                                    s.parallel_min_madds =
                                        s.parallel ==
                                                ops::GemmParallel::kNone
                                            ? 0
                                            : kMinMaddsChoices[2];
                                    if (!ops::scheduleLegal(
                                            s, key.trans_b))
                                        continue;
                                    scored.push_back(
                                        {s, modelScheduleCost(key, s)});
                                }
                            }
                        }
                    }
                }
            }

    std::stable_sort(scored.begin(), scored.end(),
                     [](const ScoredSchedule &a, const ScoredSchedule &b) {
                         return a.cost < b.cost;
                     });
    if (static_cast<int>(scored.size()) > max_candidates)
        scored.resize(static_cast<size_t>(max_candidates));

    // The fixed default is always measured: the tuner must never pick
    // something worse than the pre-tuner kernel because the cost model
    // pruned the baseline away.
    const ops::GemmSchedule fixed = ops::GemmSchedule::fixedDefault();
    const bool have_fixed =
        std::any_of(scored.begin(), scored.end(),
                    [&fixed](const ScoredSchedule &c) {
                        return c.schedule == fixed;
                    });
    if (!have_fixed)
        scored.push_back({fixed, modelScheduleCost(key, fixed)});
    return scored;
}

ops::GemmSchedule
randomLegalSchedule(Rng &rng, bool trans_b, int threads)
{
    ops::GemmSchedule s;
    s.mr = ops::kGemmLegalMr[rng.uniformInt(std::size(ops::kGemmLegalMr))];
    s.nr = ops::kGemmLegalNr[rng.uniformInt(std::size(ops::kGemmLegalNr))];
    // mc: random multiple of mr in [mr, kGemmMaxMc].
    s.mc = s.mr * static_cast<int32_t>(
                      1 + rng.uniformInt(
                              static_cast<uint64_t>(ops::kGemmMaxMc / s.mr)));
    s.nc = s.nr * static_cast<int32_t>(
                      1 + rng.uniformInt(
                              static_cast<uint64_t>(ops::kGemmMaxNc / s.nr)));
    s.kc = static_cast<int32_t>(1 + rng.uniformInt(ops::kGemmMaxKc));
    s.loop_order = static_cast<ops::GemmLoopOrder>(rng.uniformInt(2));
    s.pack_b = trans_b ? ops::GemmPackB::kPacked
                       : static_cast<ops::GemmPackB>(rng.uniformInt(2));
    s.parallel = static_cast<ops::GemmParallel>(rng.uniformInt(3));
    s.batch_parallel = static_cast<uint8_t>(rng.uniformInt(2));
    // Half the draws zero the serial threshold so small fuzz shapes
    // actually take the parallel paths.
    s.parallel_min_madds =
        rng.uniformInt(2) == 0 ? 0 : (int64_t(1) << 17);
    (void)threads;
    return s;
}

} // namespace echo::tune
