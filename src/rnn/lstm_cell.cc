#include "rnn/lstm_cell.h"

#include "core/logging.h"
#include "graph/ops/oplib.h"

namespace echo::rnn {

namespace ol = graph::oplib;

LstmWeights
makeLstmWeights(Graph &g, int64_t input_size, int64_t hidden,
                const std::string &prefix)
{
    LstmWeights w;
    w.wx = g.weight(Shape({4 * hidden, input_size}), prefix + ".wx");
    w.wh = g.weight(Shape({4 * hidden, hidden}), prefix + ".wh");
    w.bias = g.weight(Shape({4 * hidden}), prefix + ".bias");
    return w;
}

CellState
buildLstmCell(Graph &g, Val x_t, const CellState &prev,
              const LstmWeights &w)
{
    const int64_t hidden = graph::Graph::shapeOf(w.wh)[1];

    // The two fully-connected projections (Equation 1 of the paper).
    const Val gx = g.apply1(ol::gemm(false, true), {x_t, w.wx});
    const Val gh = g.apply1(ol::gemm(false, true), {prev.h, w.wh});
    const Val gates =
        g.apply1(ol::addBias(), {g.apply1(ol::add(), {gx, gh}), w.bias});

    // Per-gate slicing + activations — the "f" block of Fig. 1, left
    // unfused exactly like MXNet's LSTMCell.
    const Val i_gate = g.apply1(
        ol::sigmoidOp(),
        {g.apply1(ol::sliceOp(1, 0 * hidden, 1 * hidden), {gates})});
    const Val f_gate = g.apply1(
        ol::sigmoidOp(),
        {g.apply1(ol::sliceOp(1, 1 * hidden, 2 * hidden), {gates})});
    const Val g_gate = g.apply1(
        ol::tanhOp(),
        {g.apply1(ol::sliceOp(1, 2 * hidden, 3 * hidden), {gates})});
    const Val o_gate = g.apply1(
        ol::sigmoidOp(),
        {g.apply1(ol::sliceOp(1, 3 * hidden, 4 * hidden), {gates})});

    CellState next;
    next.c = g.apply1(ol::add(),
                      {g.apply1(ol::mul(), {f_gate, prev.c}),
                       g.apply1(ol::mul(), {i_gate, g_gate})});
    next.h = g.apply1(ol::mul(),
                      {o_gate, g.apply1(ol::tanhOp(), {next.c})});
    return next;
}

PeepholeWeights
makePeepholeWeights(Graph &g, int64_t hidden, const std::string &prefix)
{
    PeepholeWeights p;
    p.p_i = g.weight(Shape({hidden}), prefix + ".p_i");
    p.p_f = g.weight(Shape({hidden}), prefix + ".p_f");
    p.p_o = g.weight(Shape({hidden}), prefix + ".p_o");
    return p;
}

namespace {

/** Broadcast-multiply a [BxH] state by a diagonal [H] peephole. */
Val
peep(Graph &g, Val state, Val diag)
{
    const Shape &s = graph::Graph::shapeOf(state);
    const Val state3 =
        g.apply1(ol::reshape(Shape({s[0], 1, s[1]})), {state});
    // diag replicated per batch row: outer(ones [Bx1], diag).
    const Val ones =
        g.apply1(ol::constant(Shape({s[0], 1}), 1.0f), {});
    const Val diag3 = g.apply1(ol::outerLastAxis(), {ones, diag});
    const Val prod = g.apply1(ol::mul(), {state3, diag3});
    return g.apply1(ol::reshape(Shape({s[0], s[1]})), {prod});
}

} // namespace

CellState
buildPeepholeLstmCell(Graph &g, Val x_t, const CellState &prev,
                      const LstmWeights &w, const PeepholeWeights &p)
{
    const int64_t hidden = graph::Graph::shapeOf(w.wh)[1];

    // Identical fully-connected projections to the vanilla cell — the
    // layout-sensitive GEMMs are untouched by the peephole variant.
    const Val gx = g.apply1(ol::gemm(false, true), {x_t, w.wx});
    const Val gh = g.apply1(ol::gemm(false, true), {prev.h, w.wh});
    const Val gates =
        g.apply1(ol::addBias(), {g.apply1(ol::add(), {gx, gh}), w.bias});

    auto slice_gate = [&](int64_t idx) {
        return g.apply1(
            ol::sliceOp(1, idx * hidden, (idx + 1) * hidden), {gates});
    };

    // Input and forget gates peek at c_{t-1}.
    const Val i_gate = g.apply1(
        ol::sigmoidOp(),
        {g.apply1(ol::add(), {slice_gate(0), peep(g, prev.c, p.p_i)})});
    const Val f_gate = g.apply1(
        ol::sigmoidOp(),
        {g.apply1(ol::add(), {slice_gate(1), peep(g, prev.c, p.p_f)})});
    const Val g_gate = g.apply1(ol::tanhOp(), {slice_gate(2)});

    CellState next;
    next.c = g.apply1(ol::add(),
                      {g.apply1(ol::mul(), {f_gate, prev.c}),
                       g.apply1(ol::mul(), {i_gate, g_gate})});
    // Output gate peeks at the NEW cell state c_t.
    const Val o_gate = g.apply1(
        ol::sigmoidOp(),
        {g.apply1(ol::add(), {slice_gate(3), peep(g, next.c, p.p_o)})});
    next.h = g.apply1(ol::mul(),
                      {o_gate, g.apply1(ol::tanhOp(), {next.c})});
    return next;
}

GruWeights
makeGruWeights(Graph &g, int64_t input_size, int64_t hidden,
               const std::string &prefix)
{
    GruWeights w;
    w.wx = g.weight(Shape({3 * hidden, input_size}), prefix + ".wx");
    w.wh = g.weight(Shape({3 * hidden, hidden}), prefix + ".wh");
    w.bias = g.weight(Shape({3 * hidden}), prefix + ".bias");
    return w;
}

Val
buildGruCell(Graph &g, Val x_t, Val h_prev, const GruWeights &w)
{
    const int64_t hidden = graph::Graph::shapeOf(w.wh)[1];

    const Val gx = g.apply1(
        ol::addBias(),
        {g.apply1(ol::gemm(false, true), {x_t, w.wx}), w.bias});
    const Val gh = g.apply1(ol::gemm(false, true), {h_prev, w.wh});

    auto part = [&](const Val &v, int64_t idx) {
        return g.apply1(
            ol::sliceOp(1, idx * hidden, (idx + 1) * hidden), {v});
    };

    const Val r = g.apply1(ol::sigmoidOp(),
                           {g.apply1(ol::add(),
                                     {part(gx, 0), part(gh, 0)})});
    const Val z = g.apply1(ol::sigmoidOp(),
                           {g.apply1(ol::add(),
                                     {part(gx, 1), part(gh, 1)})});
    const Val n = g.apply1(
        ol::tanhOp(),
        {g.apply1(ol::add(),
                  {part(gx, 2),
                   g.apply1(ol::mul(), {r, part(gh, 2)})})});

    // h' = (1 - z) * n + z * h_prev, written with primitive ops as
    // n - z*n + z*h_prev.
    const Val zn = g.apply1(ol::mul(), {z, n});
    const Val zh = g.apply1(ol::mul(), {z, h_prev});
    return g.apply1(ol::add(), {g.apply1(ol::sub(), {n, zn}), zh});
}

} // namespace echo::rnn
