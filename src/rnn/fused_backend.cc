/**
 * @file
 * Fused LSTM stacks: one FusedLstmLayer node per layer.
 *
 * kCudnn lowers to cuDNN's kernel plan (batched input GEMM + per-step
 * batch-major recurrent GEMM + fused point-wise kernels); kEco uses the
 * paper's [T x H x B] layout, turning every projection into the fast
 * transposed GEMM form.  Numerics are identical across all backends —
 * tests/test_rnn.cc asserts Default ≡ CuDNN ≡ Eco.
 */
#include "core/logging.h"
#include "graph/ops/op_fused_rnn.h"
#include "graph/ops/oplib.h"
#include "rnn/stack.h"

namespace echo::rnn {

namespace ol = graph::oplib;

LstmStack
buildLstmStackFused(Graph &g, Val x, const LstmSpec &spec,
                    RnnBackend backend, const std::string &prefix)
{
    const Shape &xs = graph::Graph::shapeOf(x);
    ECHO_REQUIRE(xs.ndim() == 3, "LSTM stack input must be [TxBxI]");
    const int64_t b = xs[1];
    const ol::FusedRnnStyle style = backend == RnnBackend::kEco
                                        ? ol::FusedRnnStyle::kEco
                                        : ol::FusedRnnStyle::kCudnn;

    LstmStack stack;
    Val layer_in = x;
    for (int64_t layer = 0; layer < spec.layers; ++layer) {
        const int64_t in_size =
            layer == 0 ? spec.input_size : spec.hidden;
        const LstmWeights w = makeLstmWeights(
            g, in_size, spec.hidden,
            prefix + ".l" + std::to_string(layer));
        stack.weights.push_back(w);

        const Val h0 = g.apply1(
            ol::constant(Shape({b, spec.hidden}), 0.0f), {},
            prefix + ".h0");
        const Val c0 = g.apply1(
            ol::constant(Shape({b, spec.hidden}), 0.0f), {},
            prefix + ".c0");

        const bool overlap =
            backend == RnnBackend::kCudnn && spec.layers > 1;
        const std::vector<Val> outs =
            g.apply(ol::fusedLstmLayer(style, overlap),
                    {layer_in, w.wx, w.wh, w.bias, h0, c0},
                    prefix + ".fused.l" + std::to_string(layer));
        layer_in = outs[0];
        CellState last;
        last.h = outs[1];
        last.c = outs[2];
        stack.last_states.push_back(last);
    }
    stack.hs = layer_in;
    return stack;
}

} // namespace echo::rnn
