#include "rnn/sequence_reverse.h"

#include "graph/ops/oplib.h"

namespace echo::rnn {

graph::Val
sequenceReverse(graph::Graph &g, graph::Val x, bool parallel)
{
    return g.apply1(graph::oplib::reverseAxis(0, parallel), {x},
                    "sequence_reverse");
}

} // namespace echo::rnn
