#include "rnn/rnn_config.h"

namespace echo::rnn {

const char *
backendName(RnnBackend backend)
{
    switch (backend) {
      case RnnBackend::kDefault:
        return "Default";
      case RnnBackend::kCudnn:
        return "CuDNN";
      case RnnBackend::kEco:
        return "EcoRNN";
    }
    return "?";
}

} // namespace echo::rnn
