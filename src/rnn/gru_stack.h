/**
 * @file
 * Multi-layer GRU stack (unfused), used by the GRU layout experiments
 * and tests.
 */
#ifndef ECHO_RNN_GRU_STACK_H
#define ECHO_RNN_GRU_STACK_H

#include <vector>

#include "rnn/lstm_cell.h"
#include "rnn/rnn_config.h"

namespace echo::rnn {

/** A built GRU stack. */
struct GruStack
{
    /** All hidden states of the top layer, [T x B x H]. */
    Val hs;
    /** Final hidden state of each layer. */
    std::vector<Val> last_h;
    /** The stack's weights (per layer). */
    std::vector<GruWeights> weights;
};

/** Build a GRU stack over @p x ([T x B x I]) with zero initial state. */
GruStack buildGruStack(Graph &g, Val x, const LstmSpec &spec,
                       const std::string &prefix);

} // namespace echo::rnn

#endif // ECHO_RNN_GRU_STACK_H
