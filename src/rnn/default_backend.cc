/**
 * @file
 * The "Default" LSTM stack: MXNet-style unfused per-step cells.  Every
 * step of every layer emits ~14 primitive nodes, so a 1-layer T=50 run
 * launches hundreds of tiny kernels — the launch-bound profile of the
 * paper's Fig. 7(a).
 */
#include "core/logging.h"
#include "graph/ops/oplib.h"
#include "rnn/stack.h"

namespace echo::rnn {

namespace ol = graph::oplib;

LstmStack
buildLstmStackDefault(Graph &g, Val x, const LstmSpec &spec,
                      const std::string &prefix)
{
    const Shape &xs = graph::Graph::shapeOf(x);
    ECHO_REQUIRE(xs.ndim() == 3, "LSTM stack input must be [TxBxI]");
    const int64_t t = xs[0], b = xs[1];

    LstmStack stack;
    Val layer_in = x;
    for (int64_t layer = 0; layer < spec.layers; ++layer) {
        const int64_t in_size =
            layer == 0 ? spec.input_size : spec.hidden;
        const LstmWeights w = makeLstmWeights(
            g, in_size, spec.hidden,
            prefix + ".l" + std::to_string(layer));
        stack.weights.push_back(w);

        CellState state;
        state.h = g.apply1(
            ol::constant(Shape({b, spec.hidden}), 0.0f), {},
            prefix + ".h0");
        state.c = g.apply1(
            ol::constant(Shape({b, spec.hidden}), 0.0f), {},
            prefix + ".c0");

        std::vector<Val> step_outputs;
        step_outputs.reserve(static_cast<size_t>(t));
        for (int64_t step = 0; step < t; ++step) {
            g.setTimeStep(static_cast<int>(step));
            const Val x_t = g.apply1(
                ol::reshape(Shape({b, in_size})),
                {g.apply1(ol::sliceOp(0, step, step + 1),
                          {layer_in})});
            state = buildLstmCell(g, x_t, state, w);
            step_outputs.push_back(g.apply1(
                ol::reshape(Shape({1, b, spec.hidden})), {state.h}));
        }
        g.setTimeStep(-1);

        layer_in = g.apply1(ol::concat(0), step_outputs,
                            prefix + ".hs.l" + std::to_string(layer));
        stack.last_states.push_back(state);
    }
    stack.hs = layer_in;
    return stack;
}

LstmStack
buildLstmStack(Graph &g, Val x, const LstmSpec &spec, RnnBackend backend,
               const std::string &prefix)
{
    switch (backend) {
      case RnnBackend::kDefault:
        return buildLstmStackDefault(g, x, spec, prefix);
      case RnnBackend::kCudnn:
      case RnnBackend::kEco:
        return buildLstmStackFused(g, x, spec, backend, prefix);
    }
    ECHO_PANIC("unknown RNN backend");
}

} // namespace echo::rnn
