/**
 * @file
 * Unfused LSTM / GRU cell builders — one time step as a subgraph of
 * primitive ops, mirroring MXNet's LSTMCell (the paper's "Default"
 * implementation).  Each gate slice, activation, and element-wise update
 * is its own graph node and therefore its own GPU kernel launch, which
 * is exactly why Default is launch-overhead-bound (Fig. 7a).
 */
#ifndef ECHO_RNN_LSTM_CELL_H
#define ECHO_RNN_LSTM_CELL_H

#include "graph/graph.h"

namespace echo::rnn {

using graph::Graph;
using graph::Val;

/** Weights of one LSTM layer (shared across time steps). */
struct LstmWeights
{
    Val wx;   ///< [4H x I]
    Val wh;   ///< [4H x H]
    Val bias; ///< [4H]
};

/** Create the weights for one LSTM layer. */
LstmWeights makeLstmWeights(Graph &g, int64_t input_size, int64_t hidden,
                            const std::string &prefix);

/** Hidden and cell state after one step. */
struct CellState
{
    Val h;
    Val c;
};

/**
 * Build one unfused LSTM cell step:
 * gates = x Wx^T + h_prev Wh^T + b; i,f,g,o = slices; c = f*c + i*g;
 * h = o * tanh(c).  ~14 primitive nodes (kernels) per step.
 */
CellState buildLstmCell(Graph &g, Val x_t, const CellState &prev,
                        const LstmWeights &w);

/** Extra diagonal weights of a peephole LSTM (Gers & Schmidhuber). */
struct PeepholeWeights
{
    Val p_i; ///< [H] peephole into the input gate
    Val p_f; ///< [H] peephole into the forget gate
    Val p_o; ///< [H] peephole into the output gate
};

/** Create the peephole weights for one layer. */
PeepholeWeights makePeepholeWeights(Graph &g, int64_t hidden,
                                    const std::string &prefix);

/**
 * Build one unfused peephole-LSTM cell step (paper §4.2: the layout
 * optimization "applies equally well to LSTM variants as long as the 4
 * nonlinear gates are preserved", e.g.\ LSTM with peephole
 * connections): gates additionally see the cell state through diagonal
 * peephole weights.  The fully-connected projections — the layout-
 * sensitive part — are identical to the vanilla cell's.
 */
CellState buildPeepholeLstmCell(Graph &g, Val x_t, const CellState &prev,
                                const LstmWeights &w,
                                const PeepholeWeights &p);

/** Weights of one GRU layer. */
struct GruWeights
{
    Val wx;   ///< [3H x I]
    Val wh;   ///< [3H x H]
    Val bias; ///< [3H]
};

/** Create the weights for one GRU layer. */
GruWeights makeGruWeights(Graph &g, int64_t input_size, int64_t hidden,
                          const std::string &prefix);

/**
 * Build one unfused GRU cell step (update/reset gates + candidate):
 * h = (1 - z) * n + z * h_prev.
 */
Val buildGruCell(Graph &g, Val x_t, Val h_prev, const GruWeights &w);

} // namespace echo::rnn

#endif // ECHO_RNN_LSTM_CELL_H
