/**
 * @file
 * SequenceReverse (paper §5.1): reverses [T x B x H] data along time.
 *
 * Two implementations exist that are numerically identical but model
 * different GPU kernels: MXNet's original batch-sequential kernel
 * (uncoalesced, ~1 GB/s effective bandwidth — the runtime bottleneck of
 * Fig. 6) and the paper's batch-parallel fix.
 */
#ifndef ECHO_RNN_SEQUENCE_REVERSE_H
#define ECHO_RNN_SEQUENCE_REVERSE_H

#include "graph/graph.h"

namespace echo::rnn {

/** Reverse @p x along the leading (time) axis. */
graph::Val sequenceReverse(graph::Graph &g, graph::Val x, bool parallel);

} // namespace echo::rnn

#endif // ECHO_RNN_SEQUENCE_REVERSE_H
