/**
 * @file
 * Multi-layer LSTM stack builder: the single entry point the models use,
 * dispatching to the unfused Default backend (default_backend.cc) or the
 * fused cuDNN / Eco backends (fused_backend.cc).
 */
#ifndef ECHO_RNN_STACK_H
#define ECHO_RNN_STACK_H

#include <vector>

#include "rnn/lstm_cell.h"
#include "rnn/rnn_config.h"

namespace echo::rnn {

/** A built LSTM stack. */
struct LstmStack
{
    /** All hidden states of the top layer, [T x B x H]. */
    Val hs;
    /** Final hidden / cell state of each layer. */
    std::vector<CellState> last_states;
    /** The stack's weights (per layer). */
    std::vector<LstmWeights> weights;
};

/**
 * Build an LSTM stack over @p x ([T x B x I]) with zero initial state.
 * Weight nodes are created inside with names "<prefix>.l<i>.*".
 */
LstmStack buildLstmStack(Graph &g, Val x, const LstmSpec &spec,
                         RnnBackend backend, const std::string &prefix);

/** Internal: the unfused per-step implementation (Default). */
LstmStack buildLstmStackDefault(Graph &g, Val x, const LstmSpec &spec,
                                const std::string &prefix);

/** Internal: the fused implementation (CuDNN or Eco kernel styles). */
LstmStack buildLstmStackFused(Graph &g, Val x, const LstmSpec &spec,
                              RnnBackend backend,
                              const std::string &prefix);

} // namespace echo::rnn

#endif // ECHO_RNN_STACK_H
