/**
 * @file
 * Common configuration types for the RNN library: the three backend
 * implementations the paper compares and the hyperparameter bundle of
 * its LSTM microbenchmarks (§6.3).
 */
#ifndef ECHO_RNN_RNN_CONFIG_H
#define ECHO_RNN_RNN_CONFIG_H

#include <cstdint>
#include <string>

namespace echo::rnn {

/**
 * LSTM backend implementations:
 *  - kDefault: MXNet's unfused per-step graph of primitive ops (many
 *    tiny kernels, launch-bound — Fig. 7a left),
 *  - kCudnn: the fused cuDNN-style layer op (batched input GEMM, fused
 *    point-wise kernels, batch-major recurrent GEMM),
 *  - kEco: the fused op with the paper's [T x H x B] data-layout
 *    optimization (transposed-form GEMMs).
 */
enum class RnnBackend { kDefault, kCudnn, kEco };

/** Printable backend name matching the paper's terminology. */
const char *backendName(RnnBackend backend);

/** Hyperparameters of one LSTM stack instantiation. */
struct LstmSpec
{
    int64_t input_size = 0;
    int64_t hidden = 0;
    int64_t layers = 1;
    int64_t batch = 0;
    int64_t seq_len = 0;
};

} // namespace echo::rnn

#endif // ECHO_RNN_RNN_CONFIG_H
