/**
 * @file
 * GRU stack builder (unfused).  The paper extends its data-layout
 * argument to GRU (§4.2, Fig. 9b: 3 gates, W [3H x H]); this builder
 * exists so tests and the layout benches can exercise GRU-shaped
 * fully-connected layers end to end.
 */
#include "core/logging.h"
#include "graph/ops/oplib.h"
#include "rnn/gru_stack.h"

namespace echo::rnn {

namespace ol = graph::oplib;

GruStack
buildGruStack(Graph &g, Val x, const LstmSpec &spec,
              const std::string &prefix)
{
    const Shape &xs = graph::Graph::shapeOf(x);
    ECHO_REQUIRE(xs.ndim() == 3, "GRU stack input must be [TxBxI]");
    const int64_t t = xs[0], b = xs[1];

    GruStack stack;
    Val layer_in = x;
    for (int64_t layer = 0; layer < spec.layers; ++layer) {
        const int64_t in_size =
            layer == 0 ? spec.input_size : spec.hidden;
        const GruWeights w = makeGruWeights(
            g, in_size, spec.hidden,
            prefix + ".l" + std::to_string(layer));
        stack.weights.push_back(w);

        Val h = g.apply1(
            ol::constant(Shape({b, spec.hidden}), 0.0f), {},
            prefix + ".h0");
        std::vector<Val> step_outputs;
        step_outputs.reserve(static_cast<size_t>(t));
        for (int64_t step = 0; step < t; ++step) {
            g.setTimeStep(static_cast<int>(step));
            const Val x_t = g.apply1(
                ol::reshape(Shape({b, in_size})),
                {g.apply1(ol::sliceOp(0, step, step + 1),
                          {layer_in})});
            h = buildGruCell(g, x_t, h, w);
            step_outputs.push_back(g.apply1(
                ol::reshape(Shape({1, b, spec.hidden})), {h}));
        }
        g.setTimeStep(-1);
        layer_in = g.apply1(ol::concat(0), step_outputs);
        stack.last_h.push_back(h);
    }
    stack.hs = layer_in;
    return stack;
}

} // namespace echo::rnn
