#include "obs/trace.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <mutex>
#include <thread>

namespace echo::obs {

namespace detail {
std::atomic<bool> g_trace_enabled{false};
} // namespace detail

namespace {

/**
 * Internal invariant check.  obs sits below core (core/thread_pool is
 * itself instrumented), so it cannot use core/logging without a
 * dependency cycle; a local abort-with-message is enough.
 */
void
obsCheck(bool cond, const char *what)
{
    if (!cond) {
        std::fprintf(stderr, "echo/obs: invariant violated: %s\n", what);
        std::abort();
    }
}

using Clock = std::chrono::steady_clock;

/** Per-thread event buffer; owned by the registry, written by one
 *  thread, drained by whoever flushes.  The mutex is uncontended except
 *  during a flush. */
struct EventBuffer
{
    std::mutex mu;
    uint32_t tid = 0;
    std::vector<TraceEvent> events;
    /** 'B' events minus 'E' events; stopTrace waits for 0 so exported
     *  traces have balanced span pairs. */
    int64_t open_spans = 0;
};

/** All trace state behind one mutex (buffer list, output path).  The
 *  hot path touches it only once per thread per trace, to acquire a
 *  buffer; the epoch and generation are atomics so the append path
 *  never takes the registry lock. */
struct Registry
{
    std::mutex mu;
    std::vector<std::unique_ptr<EventBuffer>> buffers;
    /** Buffers of earlier traces: kept alive (never freed) so a thread
     *  holding a stale pointer across startTrace() can never write to
     *  freed memory; its events are simply dropped from snapshots. */
    std::vector<std::unique_ptr<EventBuffer>> retired;
    /** Trace epoch as steady-clock nanoseconds. */
    std::atomic<int64_t> epoch_ns{0};
    std::string path;
    /** Bumped by startTrace so stale thread-local buffer pointers from
     *  a previous trace are re-acquired, not written into. */
    std::atomic<uint64_t> generation{0};
};

Registry &
registry()
{
    static Registry *r = new Registry; // never destroyed: threads may
    return *r;                         // outlive static teardown
}

thread_local EventBuffer *tl_buffer = nullptr;
thread_local uint64_t tl_generation = 0;

EventBuffer &
myBuffer()
{
    Registry &r = registry();
    const uint64_t gen = r.generation.load(std::memory_order_acquire);
    if (tl_buffer == nullptr || tl_generation != gen) {
        std::lock_guard<std::mutex> lk(r.mu);
        r.buffers.push_back(std::make_unique<EventBuffer>());
        r.buffers.back()->tid =
            static_cast<uint32_t>(r.buffers.size() - 1);
        tl_buffer = r.buffers.back().get();
        tl_generation = gen;
    }
    return *tl_buffer;
}

int64_t
steadyNs()
{
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               Clock::now().time_since_epoch())
        .count();
}

int64_t
nowNs()
{
    return steadyNs() -
           registry().epoch_ns.load(std::memory_order_acquire);
}

void
appendJsonString(std::string &out, const std::string &s)
{
    out += '"';
    for (char c : s) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\t':
            out += "\\t";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    out += '"';
}

void
appendEventJson(std::string &out, const TraceEvent &e)
{
    char buf[64];
    out += "{\"ph\":\"";
    out += e.ph;
    out += "\",\"ts\":";
    // Microseconds with nanosecond decimals, the TEF convention.
    std::snprintf(buf, sizeof(buf), "%.3f",
                  static_cast<double>(e.ts_ns) / 1000.0);
    out += buf;
    out += ",\"pid\":1,\"tid\":";
    std::snprintf(buf, sizeof(buf), "%u", e.tid);
    out += buf;
    out += ",\"cat\":";
    appendJsonString(out, e.cat);
    out += ",\"name\":";
    appendJsonString(out, e.name);
    if (!e.args.empty()) {
        out += ",\"args\":{";
        for (size_t i = 0; i < e.args.size(); ++i) {
            const Arg &a = e.args[i];
            if (i > 0)
                out += ',';
            appendJsonString(out, a.key);
            out += ':';
            switch (a.kind) {
              case Arg::Kind::kInt:
                std::snprintf(buf, sizeof(buf), "%lld",
                              static_cast<long long>(a.i));
                out += buf;
                break;
              case Arg::Kind::kDouble:
                std::snprintf(buf, sizeof(buf), "%.6g", a.d);
                out += buf;
                break;
              case Arg::Kind::kString:
                appendJsonString(out, a.s);
                break;
            }
        }
        out += '}';
    }
    out += '}';
}

/** ECHO_TRACE=<path>: enable at startup, flush at process exit. */
struct EnvActivation
{
    EnvActivation()
    {
        const char *path = std::getenv("ECHO_TRACE");
        if (path == nullptr || path[0] == '\0')
            return;
        startTrace(path);
        std::atexit([] {
            if (traceEnabled())
                stopTrace();
        });
    }
};
EnvActivation g_env_activation;

} // namespace

void
startTrace(const std::string &path)
{
    Registry &r = registry();
    std::lock_guard<std::mutex> lk(r.mu);
    for (auto &b : r.buffers)
        r.retired.push_back(std::move(b));
    r.buffers.clear();
    r.generation.fetch_add(1, std::memory_order_release);
    r.epoch_ns.store(steadyNs(), std::memory_order_release);
    r.path = path;
    detail::g_trace_enabled.store(true, std::memory_order_release);
}

namespace {

/** Sum of open span depths over the live trace's buffers. */
int64_t
openSpanCount()
{
    Registry &r = registry();
    std::vector<EventBuffer *> bufs;
    {
        std::lock_guard<std::mutex> lk(r.mu);
        for (auto &b : r.buffers)
            bufs.push_back(b.get());
    }
    int64_t open = 0;
    for (EventBuffer *b : bufs) {
        std::lock_guard<std::mutex> lk(b->mu);
        open += b->open_spans;
    }
    return open;
}

} // namespace

std::string
stopTrace()
{
    detail::g_trace_enabled.store(false, std::memory_order_release);
    // Spans that began before the disable still close (endSpan is not
    // gated on the enabled flag); give in-flight ones a bounded window
    // to drain so the exported trace has balanced B/E pairs even when
    // another thread's completion was signalled just before its 'E'
    // landed.
    for (int i = 0; i < 100 && openSpanCount() > 0; ++i)
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
    const std::string json = traceJson();
    Registry &r = registry();
    std::string path;
    {
        std::lock_guard<std::mutex> lk(r.mu);
        path.swap(r.path);
    }
    if (!path.empty()) {
        std::ofstream out(path);
        obsCheck(out.good(), "cannot open ECHO_TRACE output file");
        out << json;
    }
    return json;
}

std::vector<TraceEvent>
snapshotEvents()
{
    Registry &r = registry();
    // Snapshot the buffer list, then each buffer under its own lock:
    // buffers are never removed while a trace's events are readable.
    std::vector<EventBuffer *> bufs;
    {
        std::lock_guard<std::mutex> lk(r.mu);
        for (auto &b : r.buffers)
            bufs.push_back(b.get());
    }
    std::vector<TraceEvent> out;
    for (EventBuffer *b : bufs) {
        std::lock_guard<std::mutex> lk(b->mu);
        out.insert(out.end(), b->events.begin(), b->events.end());
    }
    return out;
}

std::string
traceJson()
{
    const std::vector<TraceEvent> events = snapshotEvents();
    std::string out = "{\"traceEvents\":[";
    for (size_t i = 0; i < events.size(); ++i) {
        if (i > 0)
            out += ",\n";
        appendEventJson(out, events[i]);
    }
    out += "],\"displayTimeUnit\":\"ms\"}\n";
    return out;
}

namespace {

/** Append one event to the calling thread's buffer, unconditionally. */
void
appendEvent(char ph, const char *cat, std::string name,
            std::vector<Arg> args)
{
    TraceEvent e;
    e.ph = ph;
    e.ts_ns = nowNs();
    e.cat = cat;
    e.name = std::move(name);
    e.args = std::move(args);
    EventBuffer &buf = myBuffer();
    e.tid = buf.tid;
    std::lock_guard<std::mutex> lk(buf.mu);
    buf.open_spans += ph == 'B' ? 1 : ph == 'E' ? -1 : 0;
    buf.events.push_back(std::move(e));
}

} // namespace

void
emitEvent(char ph, const char *cat, std::string name,
          std::vector<Arg> args)
{
    // Acquire pairs with startTrace's release stores, so the epoch and
    // generation this event reads are the live trace's.
    if (!detail::g_trace_enabled.load(std::memory_order_acquire))
        return;
    appendEvent(ph, cat, std::move(name), std::move(args));
}

namespace detail {

uint64_t
beginSpan(const char *cat, std::string name, std::vector<Arg> args)
{
    if (!g_trace_enabled.load(std::memory_order_acquire))
        return kNoSpanGeneration;
    const uint64_t gen =
        registry().generation.load(std::memory_order_acquire);
    appendEvent('B', cat, std::move(name), std::move(args));
    return gen;
}

void
endSpan(const char *cat, uint64_t generation)
{
    // Deliberately NOT gated on g_trace_enabled: a span whose 'B' was
    // recorded closes even if the trace was stopped meanwhile, so
    // stopTrace()'s drain observes balanced buffers.  Only a trace
    // *restart* (new generation) drops the orphaned 'E'.
    if (registry().generation.load(std::memory_order_acquire) !=
        generation)
        return;
    appendEvent('E', cat, "", {});
}

} // namespace detail

void
counterSample(const char *cat, const char *name, int64_t value)
{
    if (!traceEnabled())
        return;
    emitEvent('C', cat, name, {{"value", value}});
}

size_t
debugBufferCount()
{
    Registry &r = registry();
    std::lock_guard<std::mutex> lk(r.mu);
    return r.buffers.size();
}

} // namespace echo::obs
