/**
 * @file
 * Structured tracing: scoped, thread-aware spans collected into
 * per-thread event buffers and exported in the Chrome Trace Event
 * Format (chrome://tracing / Perfetto "traceEvents" JSON).
 *
 * Design rules:
 *  - Disabled is the common case and costs one relaxed atomic load per
 *    instrumentation site: no event is built, no buffer is allocated,
 *    no string is copied.  Enable with ECHO_TRACE=<path> (flushed to
 *    <path> at process exit) or programmatically with startTrace().
 *  - Each thread appends to its own buffer, acquired once per thread
 *    per trace; the append path takes only that buffer's (uncontended)
 *    mutex, never a global lock.  Buffers are owned by a central
 *    registry so they survive thread exit and can be flushed from any
 *    thread.
 *  - Spans are B/E event pairs on the emitting thread, so per-thread
 *    timestamps are monotone and B/E pairs balance per tid by
 *    construction — the schema the tests enforce.
 *
 * The event model is deliberately small: 'B'/'E' span pairs, 'i'
 * instants (one-off decisions, e.g. the Echo pass accepting a region),
 * and 'C' counter samples (e.g. thread-pool queue depth).
 */
#ifndef ECHO_OBS_TRACE_H
#define ECHO_OBS_TRACE_H

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

namespace echo::obs {

/** One key/value annotation on an event ("args" in the JSON). */
struct Arg
{
    enum class Kind { kInt, kDouble, kString };

    const char *key = "";
    Kind kind = Kind::kInt;
    int64_t i = 0;
    double d = 0.0;
    std::string s;

    Arg(const char *k, int64_t v) : key(k), kind(Kind::kInt), i(v) {}
    Arg(const char *k, int v) : Arg(k, static_cast<int64_t>(v)) {}
    Arg(const char *k, double v) : key(k), kind(Kind::kDouble), d(v) {}
    Arg(const char *k, std::string v)
        : key(k), kind(Kind::kString), s(std::move(v))
    {
    }
    Arg(const char *k, const char *v) : Arg(k, std::string(v)) {}
};

/** One trace event, in the Trace Event Format vocabulary. */
struct TraceEvent
{
    /** 'B' span begin, 'E' span end, 'i' instant, 'C' counter. */
    char ph = 'i';
    /** Nanoseconds since the trace epoch (exported as µs). */
    int64_t ts_ns = 0;
    /** Small sequential thread id (registration order, not OS tid). */
    uint32_t tid = 0;
    std::string name;
    /** Category; instrumentation sites pass string literals. */
    const char *cat = "";
    std::vector<Arg> args;
};

namespace detail {
extern std::atomic<bool> g_trace_enabled;

/** Returned by beginSpan when the 'B' was not emitted (disabled). */
inline constexpr uint64_t kNoSpanGeneration = ~0ull;

/** Emit a 'B' event; returns the trace generation it was recorded
 *  under, or kNoSpanGeneration when tracing is disabled. */
uint64_t beginSpan(const char *cat, std::string name,
                   std::vector<Arg> args);

/**
 * Emit the matching 'E' event.  Runs even if tracing was disabled
 * meanwhile — stopTrace() waits for open spans so exported traces
 * balance — but drops the event if @p generation is not the live
 * trace's (startTrace() was called while the span was open).
 */
void endSpan(const char *cat, uint64_t generation);
} // namespace detail

/** True while a trace is being collected (relaxed load; hot path). */
inline bool
traceEnabled()
{
    return detail::g_trace_enabled.load(std::memory_order_relaxed);
}

/**
 * Begin collecting.  Clears previously collected events.  @p path is
 * where stopTrace() writes the JSON; empty collects in memory only
 * (tests).
 */
void startTrace(const std::string &path = "");

/**
 * Stop collecting and flush: writes the JSON to the startTrace() path
 * (if any) and returns it.  Collected events stay readable via
 * snapshotEvents() until the next startTrace().
 */
std::string stopTrace();

/** Copy of every event collected so far (any thread; trace may be live). */
std::vector<TraceEvent> snapshotEvents();

/** Serialize the collected events as Trace Event Format JSON. */
std::string traceJson();

/** Emit one event on the calling thread's buffer (no-op when disabled). */
void emitEvent(char ph, const char *cat, std::string name,
               std::vector<Arg> args = {});

/** Emit a 'C' counter sample (no-op when disabled). */
void counterSample(const char *cat, const char *name, int64_t value);

/** Number of per-thread buffers the registry owns (tests: disabled-mode
 *  instrumentation must not create any). */
size_t debugBufferCount();

/**
 * Scoped span: begin() (or the arg-taking constructor) emits 'B', the
 * destructor emits the matching 'E' on the same thread.  The default
 * constructor plus an explicitly guarded begin() keeps disabled-mode
 * cost at one branch with no argument construction:
 *
 *   obs::Span span;
 *   if (obs::traceEnabled())
 *       span.begin("exec", node->op->name(), {{"slot", s}});
 */
class Span
{
  public:
    Span() = default;

    Span(const char *cat, std::string name, std::vector<Arg> args = {})
    {
        if (traceEnabled())
            begin(cat, std::move(name), std::move(args));
    }

    /** Emit the 'B' event now; the destructor will emit 'E'. */
    void
    begin(const char *cat, std::string name, std::vector<Arg> args = {})
    {
        cat_ = cat;
        generation_ =
            detail::beginSpan(cat, std::move(name), std::move(args));
    }

    ~Span()
    {
        if (generation_ != detail::kNoSpanGeneration)
            detail::endSpan(cat_, generation_);
    }

    Span(const Span &) = delete;
    Span &operator=(const Span &) = delete;

  private:
    const char *cat_ = "";
    uint64_t generation_ = detail::kNoSpanGeneration;
};

} // namespace echo::obs

#endif // ECHO_OBS_TRACE_H
