#include "obs/memory_timeline.h"

#include <map>
#include <ostream>
#include <sstream>

namespace echo::obs {

TimelineReplay
replayTimeline(const MemoryTimeline &timeline)
{
    TimelineReplay out;

    // Live allocations keyed by offset -> size.  std::map gives the
    // neighbors in address order, so an overlap check is one
    // lower_bound plus a look at the predecessor.
    std::map<int64_t, int64_t> live;
    int64_t live_bytes = 0;
    int64_t pos_high_water = 0;
    int cur_pos = -1;
    bool have_cur = false;

    auto flushPos = [&]() {
        if (!have_cur)
            return;
        out.curve.push_back({cur_pos, live_bytes, pos_high_water});
        pos_high_water = live_bytes;
    };

    for (const MemoryEvent &e : timeline.events) {
        if (!have_cur || e.pos != cur_pos) {
            flushPos();
            cur_pos = e.pos;
            have_cur = true;
            pos_high_water = live_bytes;
        }
        if (e.is_alloc) {
            // Overlap: the first block at or after e.offset must start
            // at or beyond our end, and the block before must end at
            // or before our start.
            auto next = live.lower_bound(e.offset);
            if (next != live.end() &&
                next->first < e.offset + e.bytes) {
                std::ostringstream msg;
                msg << "overlap: [" << e.offset << ", "
                    << e.offset + e.bytes << ") of node #" << e.node_id
                    << " (" << e.name << ") vs live block at "
                    << next->first;
                out.violations.push_back(msg.str());
            }
            if (next != live.begin()) {
                auto prev = std::prev(next);
                if (prev->first + prev->second > e.offset) {
                    std::ostringstream msg;
                    msg << "overlap: [" << e.offset << ", "
                        << e.offset + e.bytes << ") of node #"
                        << e.node_id << " (" << e.name
                        << ") vs live block at " << prev->first;
                    out.violations.push_back(msg.str());
                }
            }
            live[e.offset] = e.bytes;
            live_bytes += e.bytes;
            if (live_bytes > pos_high_water)
                pos_high_water = live_bytes;
            if (live_bytes > out.live_peak_bytes) {
                out.live_peak_bytes = live_bytes;
                out.peak_pos = e.pos;
            }
            if (e.offset + e.bytes > out.address_peak_bytes)
                out.address_peak_bytes = e.offset + e.bytes;
        } else {
            auto it = live.find(e.offset);
            if (it == live.end() || it->second != e.bytes) {
                std::ostringstream msg;
                msg << "free of "
                    << (it == live.end() ? "unknown" : "mis-sized")
                    << " block at offset " << e.offset << " (node #"
                    << e.node_id << ", " << e.name << ")";
                out.violations.push_back(msg.str());
            } else {
                live_bytes -= it->second;
                live.erase(it);
            }
        }
    }
    flushPos();
    out.outstanding_bytes = live_bytes;
    return out;
}

void
writeFootprintCsv(const TimelineReplay &replay, std::ostream &out)
{
    out << "pos,live_bytes,high_water_bytes\n";
    for (const FootprintPoint &p : replay.curve)
        out << p.pos << ',' << p.live_bytes << ','
            << p.high_water_bytes << '\n';
}

} // namespace echo::obs
