/**
 * @file
 * Umbrella header of the observability layer: spans + trace export
 * (obs/trace.h), monotonic counters (obs/counters.h), and the memory
 * timeline recorder/replay (obs/memory_timeline.h).
 *
 * Everything is gated behind ECHO_TRACE=<path> (or a programmatic
 * startTrace()); with tracing disabled, instrumentation costs one
 * relaxed atomic load per span site and one relaxed atomic add per
 * counter tick.
 */
#ifndef ECHO_OBS_OBS_H
#define ECHO_OBS_OBS_H

#include "obs/counters.h"
#include "obs/memory_timeline.h"
#include "obs/trace.h"

#endif // ECHO_OBS_OBS_H
