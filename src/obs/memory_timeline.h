/**
 * @file
 * Memory-timeline recorder and replay.
 *
 * The memory planner (src/memory/planner) emits one event per transient
 * allocation and free, in plan order (all allocations at a schedule
 * position precede that position's frees, matching how the planner
 * computes its peak).  Replaying the timeline independently reproduces
 * the live-footprint curve the plan implies and cross-checks the
 * planner's own accounting:
 *
 *  - no two simultaneously live allocations may overlap in [offset,
 *    offset+bytes),
 *  - the replayed address-space peak (max over allocations of
 *    offset+bytes) must equal MemoryPlan::pool_peak_bytes exactly,
 *  - the replayed live-byte peak is the liveness lower bound no pool
 *    can beat, so address peak >= live peak always.
 *
 * The footprint curve (live bytes per schedule position) is the
 * Fig. 5-style per-iteration view; tools/echo-trace writes it as CSV.
 */
#ifndef ECHO_OBS_MEMORY_TIMELINE_H
#define ECHO_OBS_MEMORY_TIMELINE_H

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace echo::obs {

/** One planner decision: a transient buffer born or dying. */
struct MemoryEvent
{
    /** Schedule position the event takes effect at. */
    int pos = 0;
    bool is_alloc = true;
    /** Byte offset within the transient pool. */
    int64_t offset = 0;
    /** Aligned size of the buffer. */
    int64_t bytes = 0;
    /** Producing node id and output index (provenance). */
    int node_id = 0;
    int out_index = 0;
    /** Producing node name. */
    std::string name;
};

/** The recorded plan, in planner emission order. */
struct MemoryTimeline
{
    std::vector<MemoryEvent> events;

    void clear() { events.clear(); }
    bool empty() const { return events.empty(); }
};

/** One point of the footprint curve (state after position @p pos). */
struct FootprintPoint
{
    int pos = 0;
    /** Live transient bytes after all events at pos. */
    int64_t live_bytes = 0;
    /** Peak live bytes observed within pos (allocs precede frees). */
    int64_t high_water_bytes = 0;
};

/** Result of independently replaying a timeline. */
struct TimelineReplay
{
    /** Max simultaneous live bytes (the liveness lower bound). */
    int64_t live_peak_bytes = 0;
    /** Schedule position where the live peak occurs. */
    int peak_pos = 0;
    /** Max over allocations of offset+bytes == the pool high-water
     *  mark the planner reports as pool_peak_bytes. */
    int64_t address_peak_bytes = 0;
    /** Live bytes left after the last event (0 for a balanced plan). */
    int64_t outstanding_bytes = 0;
    /** One point per schedule position with activity, ascending. */
    std::vector<FootprintPoint> curve;
    /** Overlap / double-free / unknown-free diagnostics (empty = ok). */
    std::vector<std::string> violations;

    bool
    ok() const
    {
        return violations.empty() && outstanding_bytes == 0;
    }
};

/** Replay @p timeline, checking the invariants in the file comment. */
TimelineReplay replayTimeline(const MemoryTimeline &timeline);

/** Write the footprint curve as CSV (pos,live_bytes,high_water_bytes). */
void writeFootprintCsv(const TimelineReplay &replay, std::ostream &out);

} // namespace echo::obs

#endif // ECHO_OBS_MEMORY_TIMELINE_H
