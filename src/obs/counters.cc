#include "obs/counters.h"

#include <algorithm>
#include <map>
#include <memory>
#include <mutex>

namespace echo::obs {

namespace {

struct CounterRegistry
{
    std::mutex mu;
    std::map<std::string, std::unique_ptr<Counter>> by_name;
};

CounterRegistry &
counterRegistry()
{
    static CounterRegistry *r = new CounterRegistry; // never destroyed
    return *r;
}

} // namespace

Counter &
counter(const char *name, CounterKind kind)
{
    CounterRegistry &r = counterRegistry();
    std::lock_guard<std::mutex> lk(r.mu);
    auto it = r.by_name.find(name);
    if (it == r.by_name.end()) {
        it = r.by_name
                 .emplace(name, std::make_unique<Counter>(name, kind))
                 .first;
    }
    return *it->second;
}

std::vector<CounterSample>
snapshotCounters()
{
    CounterRegistry &r = counterRegistry();
    std::lock_guard<std::mutex> lk(r.mu);
    std::vector<CounterSample> out;
    out.reserve(r.by_name.size());
    for (const auto &[name, c] : r.by_name)
        out.push_back({name, c->value(), c->kind()});
    return out; // std::map iteration is already name-sorted
}

void
resetCountersForTest()
{
    CounterRegistry &r = counterRegistry();
    std::lock_guard<std::mutex> lk(r.mu);
    for (auto &[name, c] : r.by_name)
        c->value_.store(0, std::memory_order_relaxed);
}

} // namespace echo::obs
