/**
 * @file
 * Named monotonic counters: process-wide totals of discrete events (op
 * executions, recompute replays, planner bytes allocated/freed,
 * thread-pool tasks).  Counters are always live — one relaxed atomic
 * add per tick — independent of whether a trace is being collected, so
 * tests can assert exact totals without a trace file.
 *
 * Every counter is tagged with a determinism class:
 *  - kDeterministic: the total is a pure function of the work
 *    performed, so it must be identical across thread counts and
 *    execution modes (op executions, bytes planned, pass decisions).
 *    The golden-trace test enforces this.
 *  - kScheduling: the total depends on how work was dispatched
 *    (thread-pool tasks, parallelFor chunks) and legitimately varies
 *    with ECHO_NUM_THREADS.
 *
 * Registration is by name via counter(); instrumentation sites cache
 * the reference in a function-local static so the registry lock is
 * paid once per site, not per tick.
 */
#ifndef ECHO_OBS_COUNTERS_H
#define ECHO_OBS_COUNTERS_H

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

namespace echo::obs {

/** How a counter's total relates to scheduling (see file comment). */
enum class CounterKind { kDeterministic, kScheduling };

/** One monotonic counter; obtain via counter(). */
class Counter
{
  public:
    Counter(std::string name, CounterKind kind)
        : name_(std::move(name)), kind_(kind)
    {
    }

    /** Monotone tick. @pre delta >= 0 */
    void
    add(int64_t delta)
    {
        value_.fetch_add(delta, std::memory_order_relaxed);
    }

    int64_t
    value() const
    {
        return value_.load(std::memory_order_relaxed);
    }

    const std::string &name() const { return name_; }
    CounterKind kind() const { return kind_; }

  private:
    friend void resetCountersForTest();
    std::string name_;
    CounterKind kind_;
    std::atomic<int64_t> value_{0};
};

/**
 * The counter registered under @p name, created on first use.  The
 * reference stays valid for the process lifetime.  The kind is fixed
 * by the first registration.
 */
Counter &counter(const char *name,
                 CounterKind kind = CounterKind::kDeterministic);

/** One row of a counter snapshot. */
struct CounterSample
{
    std::string name;
    int64_t value = 0;
    CounterKind kind = CounterKind::kDeterministic;
};

/** All counters, sorted by name. */
std::vector<CounterSample> snapshotCounters();

/** Zero every counter (references stay valid).  Test-only. */
void resetCountersForTest();

} // namespace echo::obs

#endif // ECHO_OBS_COUNTERS_H
