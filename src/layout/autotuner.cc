#include "layout/autotuner.h"

#include "graph/autodiff.h"
#include "graph/ops/oplib.h"
#include "rnn/stack.h"

namespace echo::layout {

namespace ol = graph::oplib;

double
pureLstmIterationTimeUs(const rnn::LstmSpec &spec,
                        rnn::RnnBackend backend,
                        const gpusim::GpuSpec &gpu)
{
    graph::Graph g;
    const graph::Val x = g.placeholder(
        Shape({spec.seq_len, spec.batch, spec.input_size}), "x");
    const rnn::LstmStack stack =
        rnn::buildLstmStack(g, x, spec, backend, "lstm");

    // Reduce the hidden states to a scalar so a backward pass exists;
    // the reduction itself is one cheap kernel.
    const int64_t numel =
        spec.seq_len * spec.batch * spec.hidden;
    const graph::Val flat =
        g.apply1(ol::reshape(Shape({1, 1, numel})), {stack.hs});
    const graph::Val ones =
        g.apply1(ol::constant(Shape({numel}), 1.0f), {});
    const graph::Val score =
        g.apply1(ol::dotLastAxis(), {flat, ones});
    const graph::Val loss =
        g.apply1(ol::reshape(Shape({1})), {score});

    std::vector<graph::Val> wrt;
    for (const rnn::LstmWeights &w : stack.weights) {
        wrt.push_back(w.wx);
        wrt.push_back(w.wh);
        wrt.push_back(w.bias);
    }
    const graph::GradientResult gr = graph::backward(g, loss, wrt);

    std::vector<graph::Val> fetches = {loss};
    fetches.insert(fetches.end(), gr.weight_grads.begin(),
                   gr.weight_grads.end());
    return gpusim::simulateRun(fetches, gpu).wall_time_us;
}

AutotuneResult
autotune(const rnn::LstmSpec &spec, const gpusim::GpuSpec &gpu)
{
    AutotuneResult res;
    double best = 0.0;
    bool first = true;
    for (const rnn::RnnBackend backend :
         {rnn::RnnBackend::kDefault, rnn::RnnBackend::kCudnn,
          rnn::RnnBackend::kEco}) {
        const double t = pureLstmIterationTimeUs(spec, backend, gpu);
        res.iteration_time_us[backend] = t;
        if (first || t < best) {
            best = t;
            res.best = backend;
            first = false;
        }
    }
    return res;
}

} // namespace echo::layout
