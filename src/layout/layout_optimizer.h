/**
 * @file
 * Data-layout optimization (paper §4.2 / §5.3).
 *
 * General data-layout assignment is NP-hard, but in an LSTM every time
 * step runs the *same* fully-connected layer, so the decision collapses
 * to one binary choice per stack: keep the input batch-major
 * ([T x B x H], GEMM form Y = X W^T with M = B) or transpose it to
 * [T x H x B] (GEMM form Y^T = W X^T with M = 4H).  The optimizer makes
 * that choice by comparing the two forms under the analytical GEMM
 * model — exactly one representative layer, as the paper argues.
 */
#ifndef ECHO_LAYOUT_LAYOUT_OPTIMIZER_H
#define ECHO_LAYOUT_LAYOUT_OPTIMIZER_H

#include "gpusim/gemm_model.h"
#include "rnn/rnn_config.h"
#include "tune/tuner.h"

namespace echo::layout {

/** The two candidate layouts for the per-step LSTM input. */
enum class RnnLayout { kTBH, kTHB };

/** Printable layout name. */
const char *layoutName(RnnLayout layout);

/** Decision plus the evidence it was made on. */
struct LayoutDecision
{
    RnnLayout layout = RnnLayout::kTBH;
    /** Modelled time of one recurrent projection in each layout, us. */
    double tbh_time_us = 0.0;
    double thb_time_us = 0.0;

    double speedup() const { return tbh_time_us / thb_time_us; }
};

/**
 * Choose the layout for one LSTM stack by costing a single
 * representative recurrent projection in both forms (the paper's
 * one-binary-decision reduction of the NP-hard general problem).
 */
LayoutDecision chooseLayout(const rnn::LstmSpec &spec,
                            const gpusim::GpuSpec &gpu);

/**
 * The same binary decision folded into the GEMM autotuner: each form's
 * representative projection is first tuned (so both layouts compete at
 * their best schedule, not at the fixed default) and then the layouts
 * are compared on their tuned MEASURED times rather than the
 * analytical model.  The tuned schedules land in the registry and the
 * tuner's cache like any other search, so the chosen layout's
 * projection runs tuned from its first real call.  Times are the
 * medians in microseconds, mirroring LayoutDecision's units.
 */
LayoutDecision chooseLayoutTuned(const rnn::LstmSpec &spec,
                                 tune::Autotuner &tuner,
                                 int threads = 0);

} // namespace echo::layout

#endif // ECHO_LAYOUT_LAYOUT_OPTIMIZER_H
