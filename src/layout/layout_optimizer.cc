#include "layout/layout_optimizer.h"

namespace echo::layout {

const char *
layoutName(RnnLayout layout)
{
    return layout == RnnLayout::kTBH ? "[TxBxH]" : "[TxHxB]";
}

LayoutDecision
chooseLayout(const rnn::LstmSpec &spec, const gpusim::GpuSpec &gpu)
{
    LayoutDecision d;
    // Batch-major form: Y = X W^T, output rows = B.
    d.tbh_time_us =
        gpusim::estimateGemm(
            {spec.batch, 4 * spec.hidden, spec.hidden}, gpu)
            .time_us;
    // Transposed form: Y^T = W X^T, output rows = 4H.
    d.thb_time_us =
        gpusim::estimateGemm(
            {4 * spec.hidden, spec.batch, spec.hidden}, gpu)
            .time_us;
    d.layout = d.thb_time_us < d.tbh_time_us ? RnnLayout::kTHB
                                             : RnnLayout::kTBH;
    return d;
}

} // namespace echo::layout
