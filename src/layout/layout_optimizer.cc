#include "layout/layout_optimizer.h"

#include "core/thread_pool.h"

namespace echo::layout {

const char *
layoutName(RnnLayout layout)
{
    return layout == RnnLayout::kTBH ? "[TxBxH]" : "[TxHxB]";
}

LayoutDecision
chooseLayout(const rnn::LstmSpec &spec, const gpusim::GpuSpec &gpu)
{
    LayoutDecision d;
    // Batch-major form: Y = X W^T, output rows = B.
    d.tbh_time_us =
        gpusim::estimateGemm(
            {spec.batch, 4 * spec.hidden, spec.hidden}, gpu)
            .time_us;
    // Transposed form: Y^T = W X^T, output rows = 4H.
    d.thb_time_us =
        gpusim::estimateGemm(
            {4 * spec.hidden, spec.batch, spec.hidden}, gpu)
            .time_us;
    d.layout = d.thb_time_us < d.tbh_time_us ? RnnLayout::kTHB
                                             : RnnLayout::kTBH;
    return d;
}

LayoutDecision
chooseLayoutTuned(const rnn::LstmSpec &spec, tune::Autotuner &tuner,
                  int threads)
{
    if (threads <= 0)
        threads = ThreadPool::global().numThreads();
    // The two forms of the recurrent projection, as in chooseLayout():
    // batch-major multiplies [B x H] by W^T (N-transposed weights);
    // the transposed form multiplies [4H x H] W by X^T.
    const ops::GemmKey tbh{spec.batch, 4 * spec.hidden, spec.hidden,
                           /*trans_a=*/false, /*trans_b=*/true,
                           threads};
    const ops::GemmKey thb{4 * spec.hidden, spec.batch, spec.hidden,
                           /*trans_a=*/false, /*trans_b=*/true,
                           threads};
    const tune::TuneOutcome tbh_tuned = tuner.tuneKey(tbh);
    const tune::TuneOutcome thb_tuned = tuner.tuneKey(thb);

    LayoutDecision d;
    d.tbh_time_us = tbh_tuned.best_seconds * 1e6;
    d.thb_time_us = thb_tuned.best_seconds * 1e6;
    d.layout = d.thb_time_us < d.tbh_time_us ? RnnLayout::kTHB
                                             : RnnLayout::kTBH;
    return d;
}

} // namespace echo::layout
