/**
 * @file
 * The autotuning microbenchmark (paper §5.4, Fig. 11, Table 2).
 *
 * Before training starts, the tuner builds a pure-LSTM training
 * iteration (forward + backward, no embedding/attention/output layers)
 * for each backend at the user's hyperparameters, measures one
 * iteration per backend on the GPU model (milliseconds of modelled
 * time, run once), and selects the fastest.  Backend selection is thus
 * transparent: models ask the tuner instead of exposing a -fused flag.
 */
#ifndef ECHO_LAYOUT_AUTOTUNER_H
#define ECHO_LAYOUT_AUTOTUNER_H

#include <map>

#include "gpusim/timeline.h"
#include "rnn/rnn_config.h"

namespace echo::layout {

/** Result of one microbenchmark run. */
struct AutotuneResult
{
    rnn::RnnBackend best = rnn::RnnBackend::kDefault;
    /** One-iteration modelled time per backend, microseconds. */
    std::map<rnn::RnnBackend, double> iteration_time_us;

    double bestTime() const { return iteration_time_us.at(best); }
};

/**
 * Run the microbenchmark: simulate one fwd+bwd iteration of a pure
 * LSTM stack per backend and pick the fastest.
 */
AutotuneResult autotune(const rnn::LstmSpec &spec,
                        const gpusim::GpuSpec &gpu);

/**
 * Modelled time of one pure-LSTM training iteration for @p backend —
 * the Fig. 20 measurement, also reused by autotune().
 */
double pureLstmIterationTimeUs(const rnn::LstmSpec &spec,
                               rnn::RnnBackend backend,
                               const gpusim::GpuSpec &gpu);

} // namespace echo::layout

#endif // ECHO_LAYOUT_AUTOTUNER_H
