/**
 * @file
 * The attention layer of the NMT model (paper §2.2, Fig. 3): the
 * scoring function the paper identifies as O-shaped (§4.1.1).
 *
 * The scoring composite — broadcast compare + layer normalization +
 * tanh + v-dot (Bahdanau-style MLP attention with normalization, as in
 * Sockeye's rnn_attention) — has per-step inputs of O(B·H) and outputs
 * of O(B·T) but interior tensors of O(B·T·H); summed over decoder
 * steps, that is the O(B·T²·H) feature-map bottleneck of Fig. 5.
 * Nodes are tagged "attention" so both the Manual policy of the Echo
 * pass and the breakdown reports can find them.
 */
#ifndef ECHO_MODELS_ATTENTION_H
#define ECHO_MODELS_ATTENTION_H

#include "models/params.h"

namespace echo::models {

/** Weights of the attention layer (shared across decoder steps). */
struct AttentionWeights
{
    graph::Val wq; ///< query projection [H x H]
    graph::Val wk; ///< key projection [H x H]
    graph::Val v;  ///< scoring vector [H]
    graph::Val wc; ///< attention-hidden projection [H x 2H]
};

/** Create the attention weights and register their names. */
AttentionWeights makeAttentionWeights(graph::Graph &g, int64_t hidden,
                                      NamedWeights &registry,
                                      const std::string &prefix);

/**
 * Project the encoder states into attention keys once per sentence:
 * hs [B x T x H] -> keys [B x T x H].  (GEMM output: stays stashed —
 * it is the frontier of the recomputation region.)
 */
graph::Val projectKeys(graph::Graph &g, graph::Val hs,
                       const AttentionWeights &w);

/**
 * One decoder step of attention.
 *
 * @param query decoder hidden state h_t [B x H]
 * @param keys projected encoder states [B x T x H]
 * @param values raw encoder states [B x T x H]
 * @param normalize apply layer normalization inside the scoring
 *        composite (Sockeye's rnn_attention).  false reproduces
 *        TensorFlow-NMT's plain Bahdanau scoring — the §6.2.2
 *        cross-framework generality variant.
 * @return attention hidden state a_t [B x H]
 */
graph::Val attentionStep(graph::Graph &g, graph::Val query,
                         graph::Val keys, graph::Val values,
                         const AttentionWeights &w,
                         bool normalize = true);

} // namespace echo::models

#endif // ECHO_MODELS_ATTENTION_H
