/**
 * @file
 * Parameter-store checkpointing.
 *
 * A minimal, dependency-free binary format ("ECHO0001") holding named
 * FP32 tensors: checkpoint/resume for the training examples and a
 * stable interchange point for users embedding the library.
 *
 * Layout: magic, u64 count, then per tensor: u64 name length, name
 * bytes, u64 ndim, i64 dims..., f32 data... — all little-endian.
 */
#ifndef ECHO_MODELS_SERIALIZE_H
#define ECHO_MODELS_SERIALIZE_H

#include <string>

#include "models/params.h"

namespace echo::models {

/** Write @p params to @p path (overwrites).  fatal() on I/O errors. */
void saveParams(const ParamStore &params, const std::string &path);

/** Read a checkpoint written by saveParams. fatal() on bad files. */
ParamStore loadParams(const std::string &path);

} // namespace echo::models

#endif // ECHO_MODELS_SERIALIZE_H
