/**
 * @file
 * Parameter-store checkpointing.
 *
 * A minimal, dependency-free binary format holding named FP32 tensors:
 * checkpoint/resume for the training examples, the serving layer's
 * model-loading path, and a stable interchange point for users
 * embedding the library.
 *
 * Current format ("ECHOCKPT"): 8-byte magic, u32 version, u32 reserved
 * (zero), u64 count, then per tensor: u64 name length, name bytes,
 * u64 ndim, i64 dims..., f32 data... — all little-endian.  The
 * versioned header exists so future layout changes can be detected
 * instead of misread.
 *
 * Legacy format ("ECHO0001"): same body with no version word after the
 * magic.  loadParams still reads it; saveParams always writes the
 * current format.
 */
#ifndef ECHO_MODELS_SERIALIZE_H
#define ECHO_MODELS_SERIALIZE_H

#include <cstdint>
#include <string>

#include "models/params.h"

namespace echo::models {

/** Version written by saveParams and accepted by loadParams. */
inline constexpr uint32_t kCheckpointVersion = 2;

/** Write @p params to @p path (overwrites).  fatal() on I/O errors. */
void saveParams(const ParamStore &params, const std::string &path);

/** Read a checkpoint written by saveParams (either format version).
 *  fatal() on bad files. */
ParamStore loadParams(const std::string &path);

} // namespace echo::models

#endif // ECHO_MODELS_SERIALIZE_H
