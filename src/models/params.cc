#include "models/params.h"

#include <cmath>

#include "core/logging.h"
#include "tensor/pack_cache.h"

namespace echo::models {

ParamStore
initParams(const NamedWeights &weights, Rng &rng, float scale)
{
    ParamStore store;
    for (const auto &[name, val] : weights) {
        const Shape &shape = graph::Graph::shapeOf(val);
        float s = scale;
        if (s <= 0.0f) {
            const int64_t fan_in =
                shape.ndim() >= 2 ? shape.dim(-1) : shape.dim(0);
            s = 1.0f / std::sqrt(static_cast<float>(
                           std::max<int64_t>(1, fan_in)));
        }
        store[name] = Tensor::uniform(shape, rng, -s, s);
    }
    return store;
}

void
feedParams(graph::FeedDict &feed, const NamedWeights &weights,
           const ParamStore &params)
{
    for (const auto &[name, val] : weights) {
        auto it = params.find(name);
        ECHO_REQUIRE(it != params.end(), "no parameter named ", name);
        // Weight operands are the persistent-pack-cache population:
        // registration is what lets GEMM reuse packed panels across
        // iterations (re-registering the same storage is a no-op).
        ops::registerPackableTensor(it->second);
        feed[val.node] = it->second;
    }
}

} // namespace echo::models
