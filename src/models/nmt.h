/**
 * @file
 * The NMT model (paper §2.2, Fig. 3): bi-directional LSTM encoder,
 * LSTM decoder with input feeding, and the Luong/Bahdanau-style
 * attention layer whose scoring function is the O-shape memory
 * bottleneck.
 *
 * Three graphs share one set of named parameters:
 *  - the training graph (teacher-forced, loss + weight gradients),
 *  - an encoder graph (source -> encoder states + attention keys),
 *  - a step-decoder graph (one decoding step),
 * the latter two packaged as NmtDecoder, which powers free-running
 * greedy decoding for BLEU evaluation (Fig. 12b) and the serving
 * layer's batched greedy / beam-search decoding (src/serve).
 */
#ifndef ECHO_MODELS_NMT_H
#define ECHO_MODELS_NMT_H

#include <memory>

#include "data/batcher.h"
#include "graph/fusion.h"
#include "models/attention.h"
#include "models/params.h"
#include "pass/builtin_passes.h"
#include "rnn/stack.h"

namespace echo::models {

/** NMT hyperparameters. */
struct NmtConfig
{
    int64_t src_vocab = 17191; ///< IWSLT15 English side
    int64_t tgt_vocab = 7709;  ///< IWSLT15 Vietnamese side
    int64_t hidden = 512;
    int64_t enc_layers = 1;
    int64_t batch = 64;
    int64_t src_len = 50;
    int64_t tgt_len = 50;
    rnn::RnnBackend encoder_backend = rnn::RnnBackend::kDefault;
    /** Bi-directional first encoder layer (uses SequenceReverse). */
    bool bidirectional = true;
    /** Use the paper's batch-parallel SequenceReverse (par_rev). */
    bool parallel_reverse = true;
    /** Normalized (Sockeye-style) attention scoring; false gives the
     *  TensorFlow-NMT-style plain Bahdanau composite (§6.2.2). */
    bool normalized_attention = true;
};

/**
 * Encoder + one-step-decoder graphs over the NMT weights, built once
 * at an arbitrary (batch, src_len) and run repeatedly.
 *
 * This is the state-cached step-decoding engine: encode() runs the
 * encoder once per source batch; step() advances every batch row by
 * one target token, consuming and producing explicit decoder state.
 * All ops are row-wise along the batch axis, so a row's outputs are a
 * pure function of that row's inputs — the serving layer's
 * batch-composition determinism contract rests on this.
 *
 * The (batch, src_len) of the graphs is independent of the training
 * configuration's: the serving layer builds one decoder per length
 * bucket with its own slot count.
 */
class NmtDecoder
{
  public:
    NmtDecoder(const NmtConfig &config, int64_t batch, int64_t src_len,
               graph::ExecMode mode = graph::ExecMode::kAuto,
               const std::string &pipeline_spec = "");
    ~NmtDecoder();

    NmtDecoder(const NmtDecoder &) = delete;
    NmtDecoder &operator=(const NmtDecoder &) = delete;

    int64_t batch() const { return batch_; }
    int64_t srcLen() const { return src_len_; }
    const NmtConfig &config() const { return config_; }

    /** Encoder outputs for one source batch. */
    struct Encoded
    {
        Tensor hs;   ///< [B x Ts x H]
        Tensor keys; ///< [B x Ts x H]
    };

    /** Run the encoder over @p src ([B x Ts], kPad padded). */
    Encoded encode(const ParamStore &params, const Tensor &src) const;

    /** Decoder state carried across steps (one row per batch slot). */
    struct State
    {
        Tensor token; ///< [B] previous target token
        Tensor h;     ///< [B x H]
        Tensor c;     ///< [B x H]
        Tensor attn;  ///< [B x H] previous attention hidden
    };

    /** Fresh state: BOS tokens, zero h/c/attn. */
    State initialState() const;

    /**
     * One decode step: consumes @p state (including state.token, the
     * previously emitted token per row) and replaces it with the new
     * state.  Returns the target-vocab logits [B x V].
     */
    Tensor step(const ParamStore &params, State &state,
                const Encoded &enc) const;

  private:
    struct Graphs;
    NmtConfig config_;
    int64_t batch_;
    int64_t src_len_;
    std::unique_ptr<Graphs> graphs_;
};

/** The NMT training graph plus its decoding graphs. */
class NmtModel
{
  public:
    explicit NmtModel(const NmtConfig &config,
                      const std::string &pipeline_spec = "");
    ~NmtModel();

    const NmtConfig &config() const { return config_; }
    graph::Graph &graph() { return *graph_; }

    const std::vector<graph::Val> &fetches() const { return fetches_; }
    const std::vector<graph::Val> &weightGrads() const
    {
        return weight_grads_;
    }
    const graph::Val &loss() const { return loss_; }
    const NamedWeights &weights() const { return weights_; }

    /** What the element-wise fusion pass did to this graph (empty when
     *  ECHO_FUSION=0); echo-lint feeds this to analysis::auditFusion. */
    const fusion::FusionResult &fusionResult() const
    {
        return fusion_;
    }

    /** The pipeline spec the constructor ran and its per-stage report
     *  (IR snapshot diffs + postcondition checker findings). */
    const std::string &pipelineSpec() const { return pipeline_spec_; }
    const pass::PipelineReport &pipelineReport() const
    {
        return pipeline_report_;
    }

    ParamStore initialParams(Rng &rng) const;

    graph::FeedDict makeFeed(const ParamStore &params,
                             const data::NmtBatch &batch) const;

    /**
     * Greedy decoding of a source batch ([B x Ts] token tensor) up to
     * @p max_len target tokens; sequences stop at EOS.
     */
    std::vector<std::vector<int64_t>>
    greedyDecode(const ParamStore &params, const Tensor &src,
                 int64_t max_len) const;

  private:
    NmtConfig config_;
    std::unique_ptr<graph::Graph> graph_;
    graph::Val src_, tgt_in_, tgt_labels_, loss_;
    NamedWeights weights_;
    std::vector<graph::Val> weight_grads_;
    std::vector<graph::Val> fetches_;
    fusion::FusionResult fusion_;
    std::string pipeline_spec_;
    pass::PipelineReport pipeline_report_;
    mutable std::unique_ptr<NmtDecoder> decode_; // built lazily
};

} // namespace echo::models

#endif // ECHO_MODELS_NMT_H
