/**
 * @file
 * The NMT model (paper §2.2, Fig. 3): bi-directional LSTM encoder,
 * LSTM decoder with input feeding, and the Luong/Bahdanau-style
 * attention layer whose scoring function is the O-shape memory
 * bottleneck.
 *
 * Three graphs share one set of named parameters:
 *  - the training graph (teacher-forced, loss + weight gradients),
 *  - an encoder graph (source -> encoder states + attention keys),
 *  - a step-decoder graph (one greedy decoding step),
 * the latter two powering free-running greedy decoding for BLEU
 * evaluation (Fig. 12b).
 */
#ifndef ECHO_MODELS_NMT_H
#define ECHO_MODELS_NMT_H

#include <memory>

#include "data/batcher.h"
#include "models/attention.h"
#include "models/params.h"
#include "rnn/stack.h"

namespace echo::models {

/** NMT hyperparameters. */
struct NmtConfig
{
    int64_t src_vocab = 17191; ///< IWSLT15 English side
    int64_t tgt_vocab = 7709;  ///< IWSLT15 Vietnamese side
    int64_t hidden = 512;
    int64_t enc_layers = 1;
    int64_t batch = 64;
    int64_t src_len = 50;
    int64_t tgt_len = 50;
    rnn::RnnBackend encoder_backend = rnn::RnnBackend::kDefault;
    /** Bi-directional first encoder layer (uses SequenceReverse). */
    bool bidirectional = true;
    /** Use the paper's batch-parallel SequenceReverse (par_rev). */
    bool parallel_reverse = true;
    /** Normalized (Sockeye-style) attention scoring; false gives the
     *  TensorFlow-NMT-style plain Bahdanau composite (§6.2.2). */
    bool normalized_attention = true;
};

/** The NMT training graph plus its decoding graphs. */
class NmtModel
{
  public:
    explicit NmtModel(const NmtConfig &config);
    ~NmtModel();

    const NmtConfig &config() const { return config_; }
    graph::Graph &graph() { return *graph_; }

    const std::vector<graph::Val> &fetches() const { return fetches_; }
    const std::vector<graph::Val> &weightGrads() const
    {
        return weight_grads_;
    }
    const graph::Val &loss() const { return loss_; }
    const NamedWeights &weights() const { return weights_; }

    ParamStore initialParams(Rng &rng) const;

    graph::FeedDict makeFeed(const ParamStore &params,
                             const data::NmtBatch &batch) const;

    /**
     * Greedy decoding of a source batch ([B x Ts] token tensor) up to
     * @p max_len target tokens; sequences stop at EOS.
     */
    std::vector<std::vector<int64_t>>
    greedyDecode(const ParamStore &params, const Tensor &src,
                 int64_t max_len) const;

  private:
    struct DecodeGraphs; // encoder + step graphs (built lazily)

    NmtConfig config_;
    std::unique_ptr<graph::Graph> graph_;
    graph::Val src_, tgt_in_, tgt_labels_, loss_;
    NamedWeights weights_;
    std::vector<graph::Val> weight_grads_;
    std::vector<graph::Val> fetches_;
    mutable std::unique_ptr<DecodeGraphs> decode_;

    DecodeGraphs &decodeGraphs() const;
};

} // namespace echo::models

#endif // ECHO_MODELS_NMT_H
