/**
 * @file
 * A ResNet-style CNN proxy for the paper's Fig. 4(a) motivation
 * experiment (ResNet-50 throughput saturating with batch size).
 *
 * The proxy is a strided residual-free conv stack with ResNet-50-like
 * stage geometry (it matches ResNet-50's FLOP and feature-map scale to
 * first order, which is all the cost model consumes).  Convolutions are
 * costed as implicit GEMMs with large M = N·Ho·Wo, so they run near
 * peak FLOPS and the model is compute-bound — the opposite regime from
 * LSTM RNNs, which is exactly the contrast Fig. 4 draws.
 */
#ifndef ECHO_MODELS_CNN_PROXY_H
#define ECHO_MODELS_CNN_PROXY_H

#include "models/params.h"

namespace echo::models {

/** CNN proxy hyperparameters. */
struct CnnConfig
{
    int64_t batch = 32;
    int64_t image = 224;
    int64_t base_channels = 64;
    int64_t classes = 1000;
    /** Conv layers per stage (channels double, size halves). */
    int64_t blocks_per_stage = 3;
    int64_t stages = 4;
};

/** The built CNN training graph. */
class CnnModel
{
  public:
    explicit CnnModel(const CnnConfig &config);

    const CnnConfig &config() const { return config_; }
    graph::Graph &graph() { return *graph_; }
    const std::vector<graph::Val> &fetches() const { return fetches_; }
    const std::vector<graph::Val> &weightGrads() const
    {
        return weight_grads_;
    }
    const graph::Val &loss() const { return loss_; }
    const NamedWeights &weights() const { return weights_; }

    ParamStore initialParams(Rng &rng) const;

    /** Feed for one batch of images and labels. */
    graph::FeedDict makeFeed(const ParamStore &params,
                             const Tensor &images,
                             const Tensor &labels) const;

  private:
    CnnConfig config_;
    std::unique_ptr<graph::Graph> graph_;
    graph::Val images_, labels_, loss_;
    NamedWeights weights_;
    std::vector<graph::Val> weight_grads_;
    std::vector<graph::Val> fetches_;
};

} // namespace echo::models

#endif // ECHO_MODELS_CNN_PROXY_H
