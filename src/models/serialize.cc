#include "models/serialize.h"

#include <cstdint>
#include <fstream>

#include "core/logging.h"

namespace echo::models {

namespace {

constexpr char kMagic[8] = {'E', 'C', 'H', 'O', '0', '0', '0', '1'};

void
writeU64(std::ostream &os, uint64_t v)
{
    os.write(reinterpret_cast<const char *>(&v), sizeof(v));
}

uint64_t
readU64(std::istream &is)
{
    uint64_t v = 0;
    is.read(reinterpret_cast<char *>(&v), sizeof(v));
    return v;
}

} // namespace

void
saveParams(const ParamStore &params, const std::string &path)
{
    std::ofstream os(path, std::ios::binary | std::ios::trunc);
    ECHO_REQUIRE(os.good(), "cannot open ", path, " for writing");

    os.write(kMagic, sizeof(kMagic));
    writeU64(os, params.size());
    for (const auto &[name, tensor] : params) {
        writeU64(os, name.size());
        os.write(name.data(), static_cast<std::streamsize>(name.size()));
        const Shape &shape = tensor.shape();
        writeU64(os, static_cast<uint64_t>(shape.ndim()));
        for (int d = 0; d < shape.ndim(); ++d) {
            const int64_t extent = shape[d];
            os.write(reinterpret_cast<const char *>(&extent),
                     sizeof(extent));
        }
        os.write(reinterpret_cast<const char *>(tensor.data()),
                 static_cast<std::streamsize>(tensor.numel() *
                                              sizeof(float)));
    }
    ECHO_REQUIRE(os.good(), "write error on ", path);
}

ParamStore
loadParams(const std::string &path)
{
    std::ifstream is(path, std::ios::binary);
    ECHO_REQUIRE(is.good(), "cannot open ", path, " for reading");

    char magic[8];
    is.read(magic, sizeof(magic));
    ECHO_REQUIRE(is.good() &&
                     std::equal(std::begin(magic), std::end(magic),
                                std::begin(kMagic)),
                 path, " is not an ECHO checkpoint");

    ParamStore params;
    const uint64_t count = readU64(is);
    for (uint64_t i = 0; i < count; ++i) {
        const uint64_t name_len = readU64(is);
        ECHO_REQUIRE(is.good() && name_len < (1u << 20),
                     "corrupt checkpoint: bad name length");
        std::string name(name_len, '\0');
        is.read(name.data(), static_cast<std::streamsize>(name_len));

        const uint64_t ndim = readU64(is);
        ECHO_REQUIRE(is.good() && ndim <= 8,
                     "corrupt checkpoint: bad rank");
        std::vector<int64_t> dims(ndim);
        for (uint64_t d = 0; d < ndim; ++d) {
            is.read(reinterpret_cast<char *>(&dims[d]),
                    sizeof(int64_t));
            ECHO_REQUIRE(is.good() && dims[d] >= 0 &&
                             dims[d] < (1ll << 32),
                         "corrupt checkpoint: bad extent");
        }
        Tensor t{Shape(dims)};
        is.read(reinterpret_cast<char *>(t.data()),
                static_cast<std::streamsize>(t.numel() *
                                             sizeof(float)));
        ECHO_REQUIRE(is.good(), "corrupt checkpoint: truncated data");
        params.emplace(std::move(name), std::move(t));
    }
    return params;
}

} // namespace echo::models
