#include "models/serialize.h"

#include <algorithm>
#include <cstdint>
#include <fstream>

#include "core/logging.h"

namespace echo::models {

namespace {

/** Legacy magic: headerless body follows immediately. */
constexpr char kLegacyMagic[8] = {'E', 'C', 'H', 'O', '0', '0', '0', '1'};
/** Current magic: u32 version + u32 reserved follow, then the body. */
constexpr char kMagic[8] = {'E', 'C', 'H', 'O', 'C', 'K', 'P', 'T'};

void
writeU64(std::ostream &os, uint64_t v)
{
    os.write(reinterpret_cast<const char *>(&v), sizeof(v));
}

uint64_t
readU64(std::istream &is)
{
    uint64_t v = 0;
    is.read(reinterpret_cast<char *>(&v), sizeof(v));
    return v;
}

void
writeU32(std::ostream &os, uint32_t v)
{
    os.write(reinterpret_cast<const char *>(&v), sizeof(v));
}

uint32_t
readU32(std::istream &is)
{
    uint32_t v = 0;
    is.read(reinterpret_cast<char *>(&v), sizeof(v));
    return v;
}

/** Read the tensor entries shared by both format versions. */
ParamStore
readBody(std::istream &is, const std::string &path)
{
    ParamStore params;
    const uint64_t count = readU64(is);
    ECHO_REQUIRE(is.good(), path,
                 ": corrupt checkpoint: truncated header");
    for (uint64_t i = 0; i < count; ++i) {
        const uint64_t name_len = readU64(is);
        ECHO_REQUIRE(is.good() && name_len < (1u << 20),
                     path, ": corrupt checkpoint: bad name length");
        std::string name(name_len, '\0');
        is.read(name.data(), static_cast<std::streamsize>(name_len));

        const uint64_t ndim = readU64(is);
        ECHO_REQUIRE(is.good() && ndim <= 8,
                     path, ": corrupt checkpoint: bad rank");
        std::vector<int64_t> dims(ndim);
        for (uint64_t d = 0; d < ndim; ++d) {
            is.read(reinterpret_cast<char *>(&dims[d]),
                    sizeof(int64_t));
            ECHO_REQUIRE(is.good() && dims[d] >= 0 &&
                             dims[d] < (1ll << 32),
                         path, ": corrupt checkpoint: bad extent");
        }
        Tensor t{Shape(dims)};
        is.read(reinterpret_cast<char *>(t.data()),
                static_cast<std::streamsize>(t.numel() *
                                             sizeof(float)));
        ECHO_REQUIRE(is.good(),
                     path, ": corrupt checkpoint: truncated data");
        params.emplace(std::move(name), std::move(t));
    }
    return params;
}

} // namespace

void
saveParams(const ParamStore &params, const std::string &path)
{
    std::ofstream os(path, std::ios::binary | std::ios::trunc);
    ECHO_REQUIRE(os.good(), "cannot open ", path, " for writing");

    os.write(kMagic, sizeof(kMagic));
    writeU32(os, kCheckpointVersion);
    writeU32(os, 0); // reserved
    writeU64(os, params.size());
    for (const auto &[name, tensor] : params) {
        writeU64(os, name.size());
        os.write(name.data(), static_cast<std::streamsize>(name.size()));
        const Shape &shape = tensor.shape();
        writeU64(os, static_cast<uint64_t>(shape.ndim()));
        for (int d = 0; d < shape.ndim(); ++d) {
            const int64_t extent = shape[d];
            os.write(reinterpret_cast<const char *>(&extent),
                     sizeof(extent));
        }
        os.write(reinterpret_cast<const char *>(tensor.data()),
                 static_cast<std::streamsize>(tensor.numel() *
                                              sizeof(float)));
    }
    ECHO_REQUIRE(os.good(), "write error on ", path);
}

ParamStore
loadParams(const std::string &path)
{
    std::ifstream is(path, std::ios::binary);
    ECHO_REQUIRE(is.good(), "cannot open ", path, " for reading");

    char magic[8];
    is.read(magic, sizeof(magic));
    ECHO_REQUIRE(is.good(), path, " is not an ECHO checkpoint");

    if (std::equal(std::begin(magic), std::end(magic),
                   std::begin(kLegacyMagic)))
        return readBody(is, path); // headerless v1

    ECHO_REQUIRE(std::equal(std::begin(magic), std::end(magic),
                            std::begin(kMagic)),
                 path, " is not an ECHO checkpoint");
    const uint32_t version = readU32(is);
    const uint32_t reserved = readU32(is);
    ECHO_REQUIRE(is.good() && version == kCheckpointVersion &&
                     reserved == 0,
                 path, ": unsupported checkpoint version ", version);
    return readBody(is, path);
}

} // namespace echo::models
