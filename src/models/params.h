/**
 * @file
 * Parameter storage shared across a model's graphs.
 *
 * Models can build several graphs over the same weights (the NMT model
 * has a training graph, an encoder graph, and a step-decoder graph for
 * greedy decoding).  Weights are therefore identified by NAME; a
 * ParamStore maps names to tensors, and each graph binds its own weight
 * nodes to the store when a FeedDict is assembled.
 */
#ifndef ECHO_MODELS_PARAMS_H
#define ECHO_MODELS_PARAMS_H

#include <map>
#include <string>
#include <vector>

#include "core/rng.h"
#include "graph/executor.h"

namespace echo::models {

/** Named parameter tensors. */
using ParamStore = std::map<std::string, Tensor>;

/** A graph's weight bindings: name -> weight node value. */
using NamedWeights = std::vector<std::pair<std::string, graph::Val>>;

/**
 * Initialize a store with uniform(-scale, scale) tensors for every
 * named weight (scale defaults to the usual 1/sqrt(fan-in) heuristic
 * per tensor when @p scale <= 0).
 */
ParamStore initParams(const NamedWeights &weights, Rng &rng,
                      float scale = 0.0f);

/** Copy every named weight's tensor from @p params into @p feed. */
void feedParams(graph::FeedDict &feed, const NamedWeights &weights,
                const ParamStore &params);

} // namespace echo::models

#endif // ECHO_MODELS_PARAMS_H
