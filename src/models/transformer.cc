#include "models/transformer.h"

#include <cmath>

#include "core/logging.h"
#include "graph/autodiff.h"
#include "graph/ops/oplib.h"

namespace echo::models {

namespace ol = graph::oplib;
using graph::Graph;
using graph::TagScope;
using graph::Val;

namespace {

/** [B*T x D] GEMM against a [O x D] weight, with bias. */
Val
linear(Graph &g, Val x, Val w, Val b)
{
    return g.apply1(ol::addBias(),
                    {g.apply1(ol::gemm(false, true), {x, w}), b});
}

} // namespace

TransformerModel::TransformerModel(const TransformerConfig &config)
    : config_(config), graph_(std::make_unique<Graph>())
{
    Graph &g = *graph_;
    const int64_t b = config.batch, t = config.seq_len,
                  d = config.d_model, ff = config.d_ff;

    tokens_ = g.placeholder(Shape({b, t}), "tokens");
    labels_ = g.placeholder(Shape({b * t}), "labels");

    auto make_weight = [&](Shape shape, const std::string &name) {
        const Val w = g.weight(std::move(shape), name);
        weights_.emplace_back(name, w);
        return w;
    };

    Val x; // [B*T x D] activations
    {
        TagScope tag(g, "embedding");
        const Val table =
            make_weight(Shape({config.vocab, d}), "embedding.table");
        const Val embedded =
            g.apply1(ol::embedding(), {table, tokens_});
        x = g.apply1(ol::reshape(Shape({b * t, d})), {embedded});
    }

    for (int64_t layer = 0; layer < config.layers; ++layer) {
        const std::string p = "block" + std::to_string(layer);
        TagScope tag(g, "attention");

        // Single-head self-attention.
        const Val wq = make_weight(Shape({d, d}), p + ".wq");
        const Val wk = make_weight(Shape({d, d}), p + ".wk");
        const Val wv = make_weight(Shape({d, d}), p + ".wv");
        const Val wo = make_weight(Shape({d, d}), p + ".wo");
        const Val bq = make_weight(Shape({d}), p + ".bq");
        const Val bk = make_weight(Shape({d}), p + ".bk");
        const Val bv = make_weight(Shape({d}), p + ".bv");
        const Val bo = make_weight(Shape({d}), p + ".bo");

        const Val q3 = g.apply1(ol::reshape(Shape({b, t, d})),
                                {linear(g, x, wq, bq)});
        const Val k3 = g.apply1(ol::reshape(Shape({b, t, d})),
                                {linear(g, x, wk, bk)});
        const Val v3 = g.apply1(ol::reshape(Shape({b, t, d})),
                                {linear(g, x, wv, bv)});

        // scores = Q K^T / sqrt(d): a [B x T x T] interior produced by
        // a BMM — behind the GEMM boundary, unlike LSTM attention.
        const Val scores = g.apply1(
            ol::scale(1.0f /
                      std::sqrt(static_cast<float>(d))),
            {g.apply1(ol::bmm(false, true), {q3, k3})},
            p + ".scores");
        const Val alpha =
            g.apply1(ol::softmax(), {scores}, p + ".alpha");
        const Val ctx3 =
            g.apply1(ol::bmm(false, false), {alpha, v3});
        const Val ctx =
            g.apply1(ol::reshape(Shape({b * t, d})), {ctx3});
        const Val attn_out = linear(g, ctx, wo, bo);

        // Residual + layer norm (a cheap recomputable composite).
        const Val res1 = g.apply1(ol::add(), {x, attn_out});
        const Val ln1 =
            g.apply(ol::layerNorm(), {res1}, p + ".ln1")[0];

        // Feed-forward network.
        TagScope ffn_tag(g, "ffn");
        const Val w1 = make_weight(Shape({ff, d}), p + ".ffn.w1");
        const Val b1 = make_weight(Shape({ff}), p + ".ffn.b1");
        const Val w2 = make_weight(Shape({d, ff}), p + ".ffn.w2");
        const Val b2 = make_weight(Shape({d}), p + ".ffn.b2");
        const Val hidden =
            g.apply1(ol::reluOp(), {linear(g, ln1, w1, b1)});
        const Val ffn_out = linear(g, hidden, w2, b2);
        const Val res2 = g.apply1(ol::add(), {ln1, ffn_out});
        x = g.apply(ol::layerNorm(), {res2}, p + ".ln2")[0];
    }

    {
        TagScope tag(g, "output");
        const Val w_out =
            make_weight(Shape({config.vocab, d}), "output.weight");
        const Val b_out =
            make_weight(Shape({config.vocab}), "output.bias");
        const Val logits = linear(g, x, w_out, b_out);
        loss_ = g.apply1(ol::crossEntropyLoss(), {logits, labels_},
                         "transformer_loss");
    }

    std::vector<Val> wrt;
    for (const auto &[name, val] : weights_)
        wrt.push_back(val);
    const graph::GradientResult gr = graph::backward(g, loss_, wrt);
    weight_grads_ = gr.weight_grads;
    fetches_ = {loss_};
    fetches_.insert(fetches_.end(), weight_grads_.begin(),
                    weight_grads_.end());
}

ParamStore
TransformerModel::initialParams(Rng &rng) const
{
    return initParams(weights_, rng);
}

graph::FeedDict
TransformerModel::makeFeed(const ParamStore &params,
                           const Tensor &tokens,
                           const Tensor &labels) const
{
    graph::FeedDict feed;
    feedParams(feed, weights_, params);
    feed[tokens_.node] = tokens;
    feed[labels_.node] = labels;
    return feed;
}

} // namespace echo::models
