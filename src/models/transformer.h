/**
 * @file
 * A Transformer encoder block — the "beyond LSTM" generality probe for
 * the Echo pass (the ISCA paper positions the pass as model-agnostic:
 * it operates on the training graph, not on LSTM structure).
 *
 * The block exposes an instructive contrast with LSTM attention: a
 * Transformer's large interiors (the [B x T x T] score/weight tensors
 * and the FFN activations) sit **directly behind GEMM/BMM producers**,
 * so under Echo's never-recompute-GEMMs rule only the cheap composites
 * (layer norms, residual sums, softmax chains whose frontier is
 * shared) are recomputable — the pass wins much less than on the
 * O-shaped MLP attention of LSTM NMT, and recovering the rest requires
 * the Chen-et-al mode (respect_gemm_boundary = false) at a large
 * replay cost.  bench/echo_transformer_generality quantifies this.
 */
#ifndef ECHO_MODELS_TRANSFORMER_H
#define ECHO_MODELS_TRANSFORMER_H

#include "models/params.h"

namespace echo::models {

/** Transformer-block LM hyperparameters (single-head attention). */
struct TransformerConfig
{
    int64_t vocab = 1000;
    int64_t d_model = 64;
    int64_t d_ff = 256;
    int64_t layers = 2;
    int64_t batch = 8;
    int64_t seq_len = 16;
};

/** A Transformer-block language model (training graph). */
class TransformerModel
{
  public:
    explicit TransformerModel(const TransformerConfig &config);

    const TransformerConfig &config() const { return config_; }
    graph::Graph &graph() { return *graph_; }
    const std::vector<graph::Val> &fetches() const { return fetches_; }
    const std::vector<graph::Val> &weightGrads() const
    {
        return weight_grads_;
    }
    const graph::Val &loss() const { return loss_; }
    const NamedWeights &weights() const { return weights_; }

    ParamStore initialParams(Rng &rng) const;

    graph::FeedDict makeFeed(const ParamStore &params,
                             const Tensor &tokens,
                             const Tensor &labels) const;

  private:
    TransformerConfig config_;
    std::unique_ptr<graph::Graph> graph_;
    graph::Val tokens_, labels_, loss_;
    NamedWeights weights_;
    std::vector<graph::Val> weight_grads_;
    std::vector<graph::Val> fetches_;
};

} // namespace echo::models

#endif // ECHO_MODELS_TRANSFORMER_H
