#include "models/attention.h"

#include "core/logging.h"
#include "graph/ops/oplib.h"

namespace echo::models {

namespace ol = graph::oplib;
using graph::Graph;
using graph::Val;

AttentionWeights
makeAttentionWeights(Graph &g, int64_t hidden, NamedWeights &registry,
                     const std::string &prefix)
{
    graph::TagScope tag(g, "attention");
    AttentionWeights w;
    w.wq = g.weight(Shape({hidden, hidden}), prefix + ".wq");
    w.wk = g.weight(Shape({hidden, hidden}), prefix + ".wk");
    w.v = g.weight(Shape({hidden}), prefix + ".v");
    w.wc = g.weight(Shape({hidden, 2 * hidden}), prefix + ".wc");
    registry.emplace_back(prefix + ".wq", w.wq);
    registry.emplace_back(prefix + ".wk", w.wk);
    registry.emplace_back(prefix + ".v", w.v);
    registry.emplace_back(prefix + ".wc", w.wc);
    return w;
}

Val
projectKeys(Graph &g, Val hs, const AttentionWeights &w)
{
    graph::TagScope tag(g, "attention");
    const Shape &s = graph::Graph::shapeOf(hs);
    ECHO_REQUIRE(s.ndim() == 3, "encoder states must be [BxTxH]");
    const int64_t b = s[0], t = s[1], h = s[2];
    const Val flat = g.apply1(ol::reshape(Shape({b * t, h})), {hs});
    const Val projected =
        g.apply1(ol::gemm(false, true), {flat, w.wk}, "attn_keys");
    return g.apply1(ol::reshape(Shape({b, t, h})), {projected});
}

Val
attentionStep(Graph &g, Val query, Val keys, Val values,
              const AttentionWeights &w, bool normalize)
{
    graph::TagScope tag(g, "attention");
    const Shape &ks = graph::Graph::shapeOf(keys);
    const int64_t b = ks[0], t = ks[1], h = ks[2];

    // Query projection (GEMM: stays outside the O-shape interior).
    const Val q = g.apply1(ol::gemm(false, true), {query, w.wq},
                           "attn_query");

    // --- The O-shape scoring interior (recomputable, GEMM-free) ---
    const Val e =
        g.apply1(ol::broadcastAddBT(), {keys, q}, "attn_compare");
    const Val pre = normalize
                        ? g.apply(ol::layerNorm(), {e}, "attn_norm")[0]
                        : e;
    const Val th = g.apply1(ol::tanhOp(), {pre}, "attn_tanh");
    const Val scores =
        g.apply1(ol::dotLastAxis(), {th, w.v}, "attn_scores");
    // ---------------------------------------------------------------

    const Val alpha = g.apply1(ol::softmax(), {scores}, "attn_weights");
    const Val alpha3 =
        g.apply1(ol::reshape(Shape({b, 1, t})), {alpha});
    const Val ctx3 = g.apply1(ol::bmm(false, false), {alpha3, values},
                              "attn_context");
    const Val ctx = g.apply1(ol::reshape(Shape({b, h})), {ctx3});

    // a_t = tanh(Wc [ctx; h_t])
    const Val cat = g.apply1(ol::concat(1), {ctx, query});
    return g.apply1(
        ol::tanhOp(),
        {g.apply1(ol::gemm(false, true), {cat, w.wc})},
        "attn_hidden");
}

} // namespace echo::models
