/**
 * @file
 * Word-level language model (paper §2.1, Fig. 2): Embedding -> LSTM
 * stack -> Output layer -> perplexity loss.  The LSTM backend is
 * selectable (Default / CuDNN / Eco) or can be chosen automatically by
 * the layout autotuner, exactly as §5.4 describes.
 */
#ifndef ECHO_MODELS_WORD_LM_H
#define ECHO_MODELS_WORD_LM_H

#include "data/batcher.h"
#include "graph/fusion.h"
#include "models/params.h"
#include "pass/builtin_passes.h"
#include "rnn/stack.h"

namespace echo::models {

/** Hyperparameters of the word-level LM. */
struct WordLmConfig
{
    int64_t vocab = 10000;
    int64_t hidden = 512; ///< embedding size == hidden size
    int64_t layers = 2;
    int64_t batch = 32;
    int64_t seq_len = 35;
    rnn::RnnBackend backend = rnn::RnnBackend::kDefault;
};

/** The built training graph of the word-level LM.
 *
 *  The constructor builds the forward graph, then runs the training
 *  pass pipeline over it (default "autodiff,fusion"; override with
 *  @p pipeline_spec or ECHO_PASSES — "none" keeps the forward graph
 *  untouched, e.g.\ for echo-lint --pipeline replays). */
class WordLmModel
{
  public:
    explicit WordLmModel(const WordLmConfig &config,
                         const std::string &pipeline_spec = "");

    const WordLmConfig &config() const { return config_; }
    graph::Graph &graph() { return *graph_; }

    /** Training-iteration outputs: loss followed by weight grads. */
    const std::vector<graph::Val> &fetches() const { return fetches_; }
    const std::vector<graph::Val> &weightGrads() const
    {
        return weight_grads_;
    }
    const graph::Val &loss() const { return loss_; }
    const NamedWeights &weights() const { return weights_; }

    /** What the element-wise fusion pass did to this graph (empty when
     *  ECHO_FUSION=0); echo-lint feeds this to analysis::auditFusion. */
    const fusion::FusionResult &fusionResult() const
    {
        return fusion_;
    }

    /** The pipeline spec the constructor ran and its per-stage report
     *  (IR snapshot diffs + postcondition checker findings). */
    const std::string &pipelineSpec() const { return pipeline_spec_; }
    const pass::PipelineReport &pipelineReport() const
    {
        return pipeline_report_;
    }

    /** The stack's representative projection, for the layout pass. */
    const rnn::LstmSpec &layoutSpec() const { return layout_spec_; }

    /** Initialize a fresh parameter store. */
    ParamStore initialParams(Rng &rng) const;

    /** Assemble the feed for one batch. */
    graph::FeedDict makeFeed(const ParamStore &params,
                             const data::LmBatch &batch) const;

  private:
    WordLmConfig config_;
    std::unique_ptr<graph::Graph> graph_;
    graph::Val tokens_, labels_, loss_;
    NamedWeights weights_;
    std::vector<graph::Val> weight_grads_;
    std::vector<graph::Val> fetches_;
    fusion::FusionResult fusion_;
    rnn::LstmSpec layout_spec_;
    std::string pipeline_spec_;
    pass::PipelineReport pipeline_report_;
};

/**
 * One-token step decoder over the word LM's weights: embedding -> one
 * LSTM cell per layer -> logits, with the per-layer (h, c) state
 * carried explicitly by the caller.
 *
 * The step graph is built once per (config, batch) and reuses the
 * training model's weight names, so a checkpoint saved from training
 * feeds it directly.  Every op is row-wise along the batch axis, so a
 * row's logits and state depend only on that row's token history —
 * the serving layer's batch-composition determinism contract.
 */
class WordLmStepper
{
  public:
    WordLmStepper(const WordLmConfig &config, int64_t batch,
                  graph::ExecMode mode = graph::ExecMode::kAuto,
                  const std::string &pipeline_spec = "");
    ~WordLmStepper();

    WordLmStepper(const WordLmStepper &) = delete;
    WordLmStepper &operator=(const WordLmStepper &) = delete;

    int64_t batch() const { return batch_; }
    const WordLmConfig &config() const { return config_; }

    /** Per-layer hidden and cell states, each [B x H]. */
    struct State
    {
        std::vector<Tensor> h;
        std::vector<Tensor> c;
    };

    /** All-zero initial state. */
    State initialState() const;

    /**
     * Advance every row by one token ([B], float-encoded ids) and
     * return the next-token logits [B x V].  @p state is replaced
     * with the post-step state.
     */
    Tensor step(const ParamStore &params, const Tensor &token,
                State &state) const;

  private:
    struct Graphs;
    WordLmConfig config_;
    int64_t batch_;
    std::unique_ptr<Graphs> graphs_;
};

} // namespace echo::models

#endif // ECHO_MODELS_WORD_LM_H
