#include "models/cnn_proxy.h"

#include "core/logging.h"
#include "graph/autodiff.h"
#include "graph/ops/oplib.h"

namespace echo::models {

namespace ol = graph::oplib;
using graph::Graph;
using graph::TagScope;
using graph::Val;

CnnModel::CnnModel(const CnnConfig &config)
    : config_(config), graph_(std::make_unique<Graph>())
{
    Graph &g = *graph_;
    const int64_t b = config.batch;

    images_ = g.placeholder(Shape({b, 3, config.image, config.image}),
                            "images");
    labels_ = g.placeholder(Shape({b}), "labels");

    auto conv = [&](Val x, int64_t out_ch, int stride,
                    const std::string &name) {
        const Shape &xs = graph::Graph::shapeOf(x);
        const Val w = g.weight(Shape({out_ch, xs[1], 3, 3}), name);
        weights_.emplace_back(name, w);
        return g.apply1(ol::reluOp(),
                        {g.apply1(ol::conv2d(stride), {x, w})});
    };

    Val x;
    {
        TagScope tag(g, "stem");
        x = conv(images_, config.base_channels, 2, "stem.conv");
    }

    int64_t channels = config.base_channels;
    for (int64_t stage = 0; stage < config.stages; ++stage) {
        TagScope tag(g, "stage" + std::to_string(stage));
        for (int64_t block = 0; block < config.blocks_per_stage;
             ++block) {
            const int stride = block == 0 ? 2 : 1;
            const int64_t out_ch =
                block == 0 ? channels * 2 : channels;
            x = conv(x, out_ch, stride,
                     "s" + std::to_string(stage) + ".b" +
                         std::to_string(block) + ".conv");
            channels = out_ch;
        }
    }

    {
        TagScope tag(g, "output");
        const Val pooled = g.apply1(ol::globalAvgPool(), {x});
        const Val w_fc =
            g.weight(Shape({config.classes, channels}), "fc.weight");
        const Val b_fc = g.weight(Shape({config.classes}), "fc.bias");
        weights_.emplace_back("fc.weight", w_fc);
        weights_.emplace_back("fc.bias", b_fc);
        const Val logits = g.apply1(
            ol::addBias(),
            {g.apply1(ol::gemm(false, true), {pooled, w_fc}), b_fc});
        loss_ = g.apply1(ol::crossEntropyLoss(), {logits, labels_},
                         "cnn_loss");
    }

    std::vector<Val> wrt;
    for (const auto &[name, val] : weights_)
        wrt.push_back(val);
    const graph::GradientResult gr = graph::backward(g, loss_, wrt);
    weight_grads_ = gr.weight_grads;
    fetches_ = {loss_};
    fetches_.insert(fetches_.end(), weight_grads_.begin(),
                    weight_grads_.end());
}

ParamStore
CnnModel::initialParams(Rng &rng) const
{
    return initParams(weights_, rng);
}

graph::FeedDict
CnnModel::makeFeed(const ParamStore &params, const Tensor &images,
                   const Tensor &labels) const
{
    graph::FeedDict feed;
    feedParams(feed, weights_, params);
    feed[images_.node] = images;
    feed[labels_.node] = labels;
    return feed;
}

} // namespace echo::models
