#include "models/nmt.h"

#include "core/logging.h"
#include "graph/autodiff.h"
#include "graph/ops/oplib.h"
#include "rnn/sequence_reverse.h"

namespace echo::models {

namespace ol = graph::oplib;
using graph::Graph;
using graph::TagScope;
using graph::Val;

namespace {

/** Encoder outputs. */
struct EncoderOut
{
    Val hs;   ///< [B x Ts x H]
    Val keys; ///< [B x Ts x H]
};

/**
 * Build the source embedding + (optionally bi-directional) encoder +
 * attention-key projection.  @p attn provides wk for the projection.
 */
EncoderOut
buildEncoder(Graph &g, Val src_tokens, const NmtConfig &cfg,
             NamedWeights &registry, const AttentionWeights &attn)
{
    const int64_t b = cfg.batch, ts = cfg.src_len, h = cfg.hidden;

    Val enc_in;
    {
        TagScope tag(g, "embedding");
        const Val table =
            g.weight(Shape({cfg.src_vocab, h}), "src_embedding.table");
        registry.emplace_back("src_embedding.table", table);
        const Val embedded =
            g.apply1(ol::embedding(), {table, src_tokens});
        enc_in = g.apply1(ol::permute3d({1, 0, 2}), {embedded});
    }

    Val hs_tbh;
    {
        TagScope tag(g, "rnn");
        if (cfg.bidirectional) {
            ECHO_REQUIRE(h % 2 == 0,
                         "bidirectional encoder needs even hidden");
            rnn::LstmSpec spec;
            spec.input_size = h;
            spec.hidden = h / 2;
            spec.layers = cfg.enc_layers;
            spec.batch = b;
            spec.seq_len = ts;
            const rnn::LstmStack fwd = rnn::buildLstmStack(
                g, enc_in, spec, cfg.encoder_backend, "enc.fwd");
            const Val reversed_in = rnn::sequenceReverse(
                g, enc_in, cfg.parallel_reverse);
            const rnn::LstmStack bwd = rnn::buildLstmStack(
                g, reversed_in, spec, cfg.encoder_backend, "enc.bwd");
            const Val bwd_hs = rnn::sequenceReverse(
                g, bwd.hs, cfg.parallel_reverse);
            hs_tbh = g.apply1(ol::concat(2), {fwd.hs, bwd_hs});
            for (const rnn::LstmStack *stack : {&fwd, &bwd}) {
                const char *dir = stack == &fwd ? "fwd" : "bwd";
                for (size_t l = 0; l < stack->weights.size(); ++l) {
                    const std::string p = std::string("enc.") + dir +
                                          ".l" + std::to_string(l);
                    registry.emplace_back(p + ".wx",
                                          stack->weights[l].wx);
                    registry.emplace_back(p + ".wh",
                                          stack->weights[l].wh);
                    registry.emplace_back(p + ".bias",
                                          stack->weights[l].bias);
                }
            }
        } else {
            rnn::LstmSpec spec;
            spec.input_size = h;
            spec.hidden = h;
            spec.layers = cfg.enc_layers;
            spec.batch = b;
            spec.seq_len = ts;
            const rnn::LstmStack stack = rnn::buildLstmStack(
                g, enc_in, spec, cfg.encoder_backend, "enc");
            hs_tbh = stack.hs;
            for (size_t l = 0; l < stack.weights.size(); ++l) {
                const std::string p = "enc.l" + std::to_string(l);
                registry.emplace_back(p + ".wx", stack.weights[l].wx);
                registry.emplace_back(p + ".wh", stack.weights[l].wh);
                registry.emplace_back(p + ".bias",
                                      stack.weights[l].bias);
            }
        }
    }

    EncoderOut out;
    {
        TagScope tag(g, "rnn");
        out.hs = g.apply1(ol::permute3d({1, 0, 2}), {hs_tbh},
                          "encoder_states");
    }
    out.keys = projectKeys(g, out.hs, attn);
    return out;
}

/** Decoder-side weights (cell + output head + target embedding). */
struct DecoderWeights
{
    Val tgt_table;
    rnn::LstmWeights cell;
    Val out_w;
    Val out_b;
};

DecoderWeights
makeDecoderWeights(Graph &g, const NmtConfig &cfg,
                   NamedWeights &registry)
{
    const int64_t h = cfg.hidden;
    DecoderWeights w;
    {
        TagScope tag(g, "embedding");
        w.tgt_table =
            g.weight(Shape({cfg.tgt_vocab, h}), "tgt_embedding.table");
        registry.emplace_back("tgt_embedding.table", w.tgt_table);
    }
    {
        TagScope tag(g, "decoder");
        // Input feeding: the cell consumes [embedding; attention].
        w.cell = rnn::makeLstmWeights(g, 2 * h, h, "dec");
        registry.emplace_back("dec.wx", w.cell.wx);
        registry.emplace_back("dec.wh", w.cell.wh);
        registry.emplace_back("dec.bias", w.cell.bias);
    }
    {
        TagScope tag(g, "output");
        w.out_w = g.weight(Shape({cfg.tgt_vocab, h}), "output.weight");
        w.out_b = g.weight(Shape({cfg.tgt_vocab}), "output.bias");
        registry.emplace_back("output.weight", w.out_w);
        registry.emplace_back("output.bias", w.out_b);
    }
    return w;
}

/** One decoder step (cell + attention); returns new state. */
struct StepOut
{
    rnn::CellState state;
    Val attn_hidden;
};

StepOut
decoderStep(Graph &g, const NmtConfig &cfg, const DecoderWeights &dw,
            const AttentionWeights &aw, Val emb_t,
            const rnn::CellState &prev, Val attn_prev, Val keys,
            Val values)
{
    StepOut out;
    {
        TagScope tag(g, "decoder");
        const Val x_t = g.apply1(ol::concat(1), {emb_t, attn_prev});
        out.state = rnn::buildLstmCell(g, x_t, prev, dw.cell);
    }
    out.attn_hidden = attentionStep(g, out.state.h, keys, values, aw,
                                    cfg.normalized_attention);
    return out;
}

} // namespace

/** Encoder + step graphs for step decoding. */
struct NmtDecoder::Graphs
{
    // Encoder graph.
    std::unique_ptr<Graph> enc_g = std::make_unique<Graph>();
    Val enc_src, enc_hs, enc_keys;
    NamedWeights enc_weights;
    std::unique_ptr<graph::Executor> enc_exec;

    // One-step decoder graph.
    std::unique_ptr<Graph> step_g = std::make_unique<Graph>();
    Val st_token, st_h, st_c, st_attn, st_hs, st_keys;
    Val st_logits, st_h_out, st_c_out, st_attn_out;
    NamedWeights step_weights;
    std::unique_ptr<graph::Executor> step_exec;
};

NmtDecoder::NmtDecoder(const NmtConfig &config, int64_t batch,
                       int64_t src_len, graph::ExecMode mode,
                       const std::string &pipeline_spec)
    : config_(config), batch_(batch), src_len_(src_len),
      graphs_(std::make_unique<Graphs>())
{
    const std::string spec =
        pass::resolveSpec(pass::PipelineKind::kInference, pipeline_spec);
    ECHO_REQUIRE(batch >= 1 && src_len >= 1,
                 "NmtDecoder needs batch >= 1 and src_len >= 1");
    // The decode graphs are built at this decoder's own batch and
    // source length; only the weight shapes come from the config.
    NmtConfig cfg = config_;
    cfg.batch = batch_;
    cfg.src_len = src_len_;
    Graphs &d = *graphs_;
    const int64_t b = batch_, h = cfg.hidden;

    // Encoder graph.
    {
        Graph &g = *d.enc_g;
        d.enc_src = g.placeholder(Shape({b, src_len_}), "src_tokens");
        const AttentionWeights attn =
            makeAttentionWeights(g, h, d.enc_weights, "attn");
        const EncoderOut enc =
            buildEncoder(g, d.enc_src, cfg, d.enc_weights, attn);
        d.enc_hs = enc.hs;
        d.enc_keys = enc.keys;
        pass::PipelineContext ctx(g);
        ctx.fetches = {enc.hs, enc.keys};
        pass::buildPipeline(spec).runOrDie(ctx,
                                           "NmtDecoder encoder pipeline");
        d.enc_exec = std::make_unique<graph::Executor>(
            std::vector<Val>{enc.hs, enc.keys}, mode);
    }

    // Step graph.
    {
        Graph &g = *d.step_g;
        d.st_token = g.placeholder(Shape({b}), "prev_token");
        d.st_h = g.placeholder(Shape({b, h}), "h_prev");
        d.st_c = g.placeholder(Shape({b, h}), "c_prev");
        d.st_attn = g.placeholder(Shape({b, h}), "attn_prev");
        d.st_hs = g.placeholder(Shape({b, src_len_, h}),
                                "encoder_states");
        d.st_keys = g.placeholder(Shape({b, src_len_, h}),
                                  "attn_keys");

        const AttentionWeights attn =
            makeAttentionWeights(g, h, d.step_weights, "attn");
        const DecoderWeights dec =
            makeDecoderWeights(g, cfg, d.step_weights);

        Val emb_t;
        {
            TagScope tag(g, "embedding");
            emb_t = g.apply1(ol::embedding(),
                             {dec.tgt_table, d.st_token});
        }
        rnn::CellState prev{d.st_h, d.st_c};
        const StepOut so = decoderStep(g, cfg, dec, attn, emb_t, prev,
                                       d.st_attn, d.st_keys, d.st_hs);
        {
            TagScope tag(g, "output");
            d.st_logits = g.apply1(
                ol::addBias(),
                {g.apply1(ol::gemm(false, true),
                          {so.attn_hidden, dec.out_w}),
                 dec.out_b});
        }
        d.st_h_out = so.state.h;
        d.st_c_out = so.state.c;
        d.st_attn_out = so.attn_hidden;
        pass::PipelineContext ctx(g);
        ctx.fetches = {d.st_logits, d.st_h_out, d.st_c_out,
                       d.st_attn_out};
        pass::buildPipeline(spec).runOrDie(ctx,
                                           "NmtDecoder step pipeline");
        d.step_exec = std::make_unique<graph::Executor>(
            std::vector<Val>{d.st_logits, d.st_h_out, d.st_c_out,
                             d.st_attn_out},
            mode);
    }
}

NmtDecoder::~NmtDecoder() = default;

NmtDecoder::Encoded
NmtDecoder::encode(const ParamStore &params, const Tensor &src) const
{
    ECHO_REQUIRE(src.shape() == Shape({batch_, src_len_}),
                 "NmtDecoder::encode source batch has wrong shape");
    graph::FeedDict feed;
    feedParams(feed, graphs_->enc_weights, params);
    feed[graphs_->enc_src.node] = src;
    std::vector<Tensor> out = graphs_->enc_exec->run(feed);
    return Encoded{std::move(out[0]), std::move(out[1])};
}

NmtDecoder::State
NmtDecoder::initialState() const
{
    State s;
    s.token = Tensor(Shape({batch_}),
                     static_cast<float>(data::Vocab::kBos));
    s.h = Tensor::zeros(Shape({batch_, config_.hidden}));
    s.c = Tensor::zeros(Shape({batch_, config_.hidden}));
    s.attn = Tensor::zeros(Shape({batch_, config_.hidden}));
    return s;
}

Tensor
NmtDecoder::step(const ParamStore &params, State &state,
                 const Encoded &enc) const
{
    const Graphs &d = *graphs_;
    graph::FeedDict feed;
    feedParams(feed, d.step_weights, params);
    feed[d.st_token.node] = state.token;
    feed[d.st_h.node] = state.h;
    feed[d.st_c.node] = state.c;
    feed[d.st_attn.node] = state.attn;
    feed[d.st_hs.node] = enc.hs;
    feed[d.st_keys.node] = enc.keys;
    std::vector<Tensor> out = d.step_exec->run(feed);
    state.h = std::move(out[1]);
    state.c = std::move(out[2]);
    state.attn = std::move(out[3]);
    return std::move(out[0]);
}

NmtModel::NmtModel(const NmtConfig &config,
                   const std::string &pipeline_spec)
    : config_(config), graph_(std::make_unique<Graph>())
{
    Graph &g = *graph_;
    const int64_t b = config.batch, tt = config.tgt_len,
                  h = config.hidden;

    src_ = g.placeholder(Shape({b, config.src_len}), "src_tokens");
    tgt_in_ = g.placeholder(Shape({b, tt}), "tgt_in");
    tgt_labels_ = g.placeholder(Shape({b * tt}), "tgt_labels");

    const AttentionWeights attn =
        makeAttentionWeights(g, h, weights_, "attn");
    const EncoderOut enc =
        buildEncoder(g, src_, config, weights_, attn);
    const DecoderWeights dec = makeDecoderWeights(g, config, weights_);

    // Embed all teacher-forced decoder inputs at once.
    Val tgt_emb;
    {
        TagScope tag(g, "embedding");
        tgt_emb = g.apply1(ol::embedding(), {dec.tgt_table, tgt_in_});
    }

    rnn::CellState state;
    Val attn_prev;
    {
        TagScope tag(g, "decoder");
        state.h = g.apply1(ol::constant(Shape({b, h}), 0.0f), {},
                           "dec.h0");
        state.c = g.apply1(ol::constant(Shape({b, h}), 0.0f), {},
                           "dec.c0");
        attn_prev = g.apply1(ol::constant(Shape({b, h}), 0.0f), {},
                             "dec.attn0");
    }

    std::vector<Val> attn_hiddens;
    attn_hiddens.reserve(static_cast<size_t>(tt));
    for (int64_t step = 0; step < tt; ++step) {
        g.setTimeStep(static_cast<int>(step));
        Val emb_t;
        {
            TagScope tag(g, "embedding");
            emb_t = g.apply1(
                ol::reshape(Shape({b, h})),
                {g.apply1(ol::sliceOp(1, step, step + 1),
                          {tgt_emb})});
        }
        const StepOut so = decoderStep(g, config, dec, attn, emb_t,
                                       state, attn_prev, enc.keys,
                                       enc.hs);
        state = so.state;
        attn_prev = so.attn_hidden;
        {
            TagScope tag(g, "decoder");
            attn_hiddens.push_back(g.apply1(
                ol::reshape(Shape({b, 1, h})), {so.attn_hidden}));
        }
    }
    g.setTimeStep(-1);

    {
        TagScope tag(g, "output");
        const Val cat = g.apply1(ol::concat(1), attn_hiddens);
        const Val flat =
            g.apply1(ol::reshape(Shape({b * tt, h})), {cat});
        const Val logits = g.apply1(
            ol::addBias(),
            {g.apply1(ol::gemm(false, true), {flat, dec.out_w}),
             dec.out_b});
        loss_ = g.apply1(ol::crossEntropyLoss(), {logits, tgt_labels_},
                         "nmt_loss");
    }

    // Everything past the forward build is the contract-checked
    // training pipeline (default "autodiff,fusion").
    pass::PipelineContext ctx(g);
    ctx.loss = loss_;
    ctx.wrt.reserve(weights_.size());
    for (const auto &[name, val] : weights_)
        ctx.wrt.push_back(val);
    ctx.has_layout_spec = true;
    ctx.layout_spec.input_size = config.hidden;
    ctx.layout_spec.hidden = config.hidden;
    ctx.layout_spec.layers = config.enc_layers;
    ctx.layout_spec.batch = config.batch;
    ctx.layout_spec.seq_len = config.src_len;
    pipeline_spec_ =
        pass::resolveSpec(pass::PipelineKind::kTraining, pipeline_spec);
    const pass::PassManager pm = pass::buildPipeline(pipeline_spec_);
    pass::PassManager::RunOptions opts;
    opts.die_on_error = true;
    opts.what = "NmtModel pipeline";
    pipeline_report_ = pm.run(ctx, opts);
    weight_grads_ = ctx.weight_grads;
    fetches_ = ctx.effectiveFetches();
    fusion_ = ctx.fusion;
}

NmtModel::~NmtModel() = default;

ParamStore
NmtModel::initialParams(Rng &rng) const
{
    return initParams(weights_, rng);
}

graph::FeedDict
NmtModel::makeFeed(const ParamStore &params,
                   const data::NmtBatch &batch) const
{
    graph::FeedDict feed;
    feedParams(feed, weights_, params);
    feed[src_.node] = batch.src;
    feed[tgt_in_.node] = batch.tgt_in;
    feed[tgt_labels_.node] = batch.tgt_labels;
    return feed;
}

std::vector<std::vector<int64_t>>
NmtModel::greedyDecode(const ParamStore &params, const Tensor &src,
                       int64_t max_len) const
{
    if (!decode_)
        decode_ = std::make_unique<NmtDecoder>(config_, config_.batch,
                                               config_.src_len);
    const NmtDecoder &dec = *decode_;
    const int64_t b = config_.batch;
    ECHO_REQUIRE(src.shape() == Shape({b, config_.src_len}),
                 "greedyDecode source batch has wrong shape");

    const NmtDecoder::Encoded enc = dec.encode(params, src);

    // Free-running greedy loop over the cached decoder state.
    NmtDecoder::State state = dec.initialState();
    std::vector<std::vector<int64_t>> decoded(
        static_cast<size_t>(b));
    std::vector<bool> done(static_cast<size_t>(b), false);

    for (int64_t step = 0; step < max_len; ++step) {
        const Tensor logits = dec.step(params, state, enc);
        bool all_done = true;
        for (int64_t r = 0; r < b; ++r) {
            int64_t best = 0;
            float best_score = logits.at(r, 0);
            for (int64_t j = 1; j < config_.tgt_vocab; ++j) {
                if (logits.at(r, j) > best_score) {
                    best_score = logits.at(r, j);
                    best = j;
                }
            }
            state.token.at(r) = static_cast<float>(best);
            if (!done[static_cast<size_t>(r)]) {
                if (best == data::Vocab::kEos) {
                    done[static_cast<size_t>(r)] = true;
                } else {
                    decoded[static_cast<size_t>(r)].push_back(best);
                }
            }
            all_done = all_done && done[static_cast<size_t>(r)];
        }
        if (all_done)
            break;
    }
    return decoded;
}

} // namespace echo::models
