#include "models/word_lm.h"

#include "core/logging.h"
#include "graph/autodiff.h"
#include "graph/ops/oplib.h"
#include "rnn/lstm_cell.h"

namespace echo::models {

namespace ol = graph::oplib;
using graph::Graph;
using graph::TagScope;
using graph::Val;

WordLmModel::WordLmModel(const WordLmConfig &config,
                         const std::string &pipeline_spec)
    : config_(config), graph_(std::make_unique<Graph>())
{
    Graph &g = *graph_;
    const int64_t b = config.batch, t = config.seq_len,
                  h = config.hidden, v = config.vocab;

    tokens_ = g.placeholder(Shape({b, t}), "tokens");
    labels_ = g.placeholder(Shape({b * t}), "labels");

    Val rnn_in;
    Val emb_table;
    {
        TagScope tag(g, "embedding");
        emb_table = g.weight(Shape({v, h}), "embedding.table");
        weights_.emplace_back("embedding.table", emb_table);
        const Val embedded =
            g.apply1(ol::embedding(), {emb_table, tokens_});
        // Time-major for the LSTM stack: [B x T x H] -> [T x B x H].
        rnn_in = g.apply1(ol::permute3d({1, 0, 2}), {embedded});
    }

    rnn::LstmStack stack;
    {
        TagScope tag(g, "rnn");
        rnn::LstmSpec spec;
        spec.input_size = h;
        spec.hidden = h;
        spec.layers = config.layers;
        spec.batch = b;
        spec.seq_len = t;
        stack = rnn::buildLstmStack(g, rnn_in, spec, config.backend,
                                    "lstm");
        layout_spec_ = spec;
        for (size_t layer = 0; layer < stack.weights.size(); ++layer) {
            const std::string prefix =
                "lstm.l" + std::to_string(layer);
            weights_.emplace_back(prefix + ".wx",
                                  stack.weights[layer].wx);
            weights_.emplace_back(prefix + ".wh",
                                  stack.weights[layer].wh);
            weights_.emplace_back(prefix + ".bias",
                                  stack.weights[layer].bias);
        }
    }

    {
        TagScope tag(g, "output");
        const Val w_out = g.weight(Shape({v, h}), "output.weight");
        const Val b_out = g.weight(Shape({v}), "output.bias");
        weights_.emplace_back("output.weight", w_out);
        weights_.emplace_back("output.bias", b_out);

        // Batch-major flattening so rows align with the label layout.
        const Val hs_bth =
            g.apply1(ol::permute3d({1, 0, 2}), {stack.hs});
        const Val flat =
            g.apply1(ol::reshape(Shape({b * t, h})), {hs_bth});
        const Val logits = g.apply1(
            ol::addBias(),
            {g.apply1(ol::gemm(false, true), {flat, w_out}), b_out});
        loss_ = g.apply1(ol::crossEntropyLoss(), {logits, labels_},
                         "lm_loss");
    }

    // Everything past the forward build is the contract-checked
    // training pipeline (default "autodiff,fusion"): autodiff sets
    // ctx.fetches = {loss, grads...}, fusion journals into ctx.fusion,
    // and every pass's postconditions are machine-checked.
    pass::PipelineContext ctx(g);
    ctx.loss = loss_;
    ctx.wrt.reserve(weights_.size());
    for (const auto &[name, val] : weights_)
        ctx.wrt.push_back(val);
    ctx.has_layout_spec = true;
    ctx.layout_spec = layout_spec_;
    pipeline_spec_ =
        pass::resolveSpec(pass::PipelineKind::kTraining, pipeline_spec);
    const pass::PassManager pm = pass::buildPipeline(pipeline_spec_);
    pass::PassManager::RunOptions opts;
    opts.die_on_error = true;
    opts.what = "WordLmModel pipeline";
    pipeline_report_ = pm.run(ctx, opts);
    weight_grads_ = ctx.weight_grads;
    fetches_ = ctx.effectiveFetches();
    fusion_ = ctx.fusion;
}

ParamStore
WordLmModel::initialParams(Rng &rng) const
{
    return initParams(weights_, rng);
}

graph::FeedDict
WordLmModel::makeFeed(const ParamStore &params,
                      const data::LmBatch &batch) const
{
    graph::FeedDict feed;
    feedParams(feed, weights_, params);
    feed[tokens_.node] = batch.tokens;
    feed[labels_.node] = batch.labels;
    return feed;
}

/** The one-step graph: token + per-layer (h, c) -> logits + states. */
struct WordLmStepper::Graphs
{
    std::unique_ptr<Graph> g = std::make_unique<Graph>();
    Val token;
    std::vector<Val> h_in, c_in;   // per layer
    std::vector<Val> h_out, c_out; // per layer
    Val logits;
    NamedWeights weights;
    std::unique_ptr<graph::Executor> exec;
};

WordLmStepper::WordLmStepper(const WordLmConfig &config, int64_t batch,
                             graph::ExecMode mode,
                             const std::string &pipeline_spec)
    : config_(config), batch_(batch),
      graphs_(std::make_unique<Graphs>())
{
    ECHO_REQUIRE(batch >= 1, "WordLmStepper needs batch >= 1");
    Graphs &d = *graphs_;
    Graph &g = *d.g;
    const int64_t b = batch_, h = config.hidden, v = config.vocab;

    d.token = g.placeholder(Shape({b}), "token");
    for (int64_t l = 0; l < config.layers; ++l) {
        d.h_in.push_back(g.placeholder(
            Shape({b, h}), "h_prev.l" + std::to_string(l)));
        d.c_in.push_back(g.placeholder(
            Shape({b, h}), "c_prev.l" + std::to_string(l)));
    }

    Val x;
    {
        TagScope tag(g, "embedding");
        const Val table = g.weight(Shape({v, h}), "embedding.table");
        d.weights.emplace_back("embedding.table", table);
        x = g.apply1(ol::embedding(), {table, d.token});
    }
    {
        TagScope tag(g, "rnn");
        for (int64_t l = 0; l < config.layers; ++l) {
            // Same weight names the training stack registers, so the
            // training checkpoint feeds the step graph unchanged.
            const std::string prefix = "lstm.l" + std::to_string(l);
            const rnn::LstmWeights w =
                rnn::makeLstmWeights(g, h, h, prefix);
            d.weights.emplace_back(prefix + ".wx", w.wx);
            d.weights.emplace_back(prefix + ".wh", w.wh);
            d.weights.emplace_back(prefix + ".bias", w.bias);
            const rnn::CellState prev{d.h_in[static_cast<size_t>(l)],
                                      d.c_in[static_cast<size_t>(l)]};
            const rnn::CellState next =
                rnn::buildLstmCell(g, x, prev, w);
            d.h_out.push_back(next.h);
            d.c_out.push_back(next.c);
            x = next.h;
        }
    }
    {
        TagScope tag(g, "output");
        const Val w_out = g.weight(Shape({v, h}), "output.weight");
        const Val b_out = g.weight(Shape({v}), "output.bias");
        d.weights.emplace_back("output.weight", w_out);
        d.weights.emplace_back("output.bias", b_out);
        d.logits = g.apply1(
            ol::addBias(),
            {g.apply1(ol::gemm(false, true), {x, w_out}), b_out});
    }

    std::vector<Val> fetches{d.logits};
    fetches.insert(fetches.end(), d.h_out.begin(), d.h_out.end());
    fetches.insert(fetches.end(), d.c_out.begin(), d.c_out.end());
    pass::PipelineContext ctx(g);
    ctx.fetches = fetches;
    pass::buildPipeline(
        pass::resolveSpec(pass::PipelineKind::kInference, pipeline_spec))
        .runOrDie(ctx, "WordLmStepper pipeline");
    d.exec = std::make_unique<graph::Executor>(std::move(fetches),
                                               mode);
}

WordLmStepper::~WordLmStepper() = default;

WordLmStepper::State
WordLmStepper::initialState() const
{
    State s;
    for (int64_t l = 0; l < config_.layers; ++l) {
        s.h.push_back(
            Tensor::zeros(Shape({batch_, config_.hidden})));
        s.c.push_back(
            Tensor::zeros(Shape({batch_, config_.hidden})));
    }
    return s;
}

Tensor
WordLmStepper::step(const ParamStore &params, const Tensor &token,
                    State &state) const
{
    const Graphs &d = *graphs_;
    const auto layers = static_cast<size_t>(config_.layers);
    ECHO_REQUIRE(token.shape() == Shape({batch_}) &&
                     state.h.size() == layers &&
                     state.c.size() == layers,
                 "WordLmStepper::step got mismatched token/state");
    graph::FeedDict feed;
    feedParams(feed, d.weights, params);
    feed[d.token.node] = token;
    for (size_t l = 0; l < layers; ++l) {
        feed[d.h_in[l].node] = state.h[l];
        feed[d.c_in[l].node] = state.c[l];
    }
    std::vector<Tensor> out = d.exec->run(feed);
    for (size_t l = 0; l < layers; ++l) {
        state.h[l] = std::move(out[1 + l]);
        state.c[l] = std::move(out[1 + layers + l]);
    }
    return std::move(out[0]);
}

} // namespace echo::models
