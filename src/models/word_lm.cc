#include "models/word_lm.h"

#include "core/logging.h"
#include "graph/autodiff.h"
#include "graph/ops/oplib.h"

namespace echo::models {

namespace ol = graph::oplib;
using graph::Graph;
using graph::TagScope;
using graph::Val;

WordLmModel::WordLmModel(const WordLmConfig &config)
    : config_(config), graph_(std::make_unique<Graph>())
{
    Graph &g = *graph_;
    const int64_t b = config.batch, t = config.seq_len,
                  h = config.hidden, v = config.vocab;

    tokens_ = g.placeholder(Shape({b, t}), "tokens");
    labels_ = g.placeholder(Shape({b * t}), "labels");

    Val rnn_in;
    Val emb_table;
    {
        TagScope tag(g, "embedding");
        emb_table = g.weight(Shape({v, h}), "embedding.table");
        weights_.emplace_back("embedding.table", emb_table);
        const Val embedded =
            g.apply1(ol::embedding(), {emb_table, tokens_});
        // Time-major for the LSTM stack: [B x T x H] -> [T x B x H].
        rnn_in = g.apply1(ol::permute3d({1, 0, 2}), {embedded});
    }

    rnn::LstmStack stack;
    {
        TagScope tag(g, "rnn");
        rnn::LstmSpec spec;
        spec.input_size = h;
        spec.hidden = h;
        spec.layers = config.layers;
        spec.batch = b;
        spec.seq_len = t;
        stack = rnn::buildLstmStack(g, rnn_in, spec, config.backend,
                                    "lstm");
        for (size_t layer = 0; layer < stack.weights.size(); ++layer) {
            const std::string prefix =
                "lstm.l" + std::to_string(layer);
            weights_.emplace_back(prefix + ".wx",
                                  stack.weights[layer].wx);
            weights_.emplace_back(prefix + ".wh",
                                  stack.weights[layer].wh);
            weights_.emplace_back(prefix + ".bias",
                                  stack.weights[layer].bias);
        }
    }

    {
        TagScope tag(g, "output");
        const Val w_out = g.weight(Shape({v, h}), "output.weight");
        const Val b_out = g.weight(Shape({v}), "output.bias");
        weights_.emplace_back("output.weight", w_out);
        weights_.emplace_back("output.bias", b_out);

        // Batch-major flattening so rows align with the label layout.
        const Val hs_bth =
            g.apply1(ol::permute3d({1, 0, 2}), {stack.hs});
        const Val flat =
            g.apply1(ol::reshape(Shape({b * t, h})), {hs_bth});
        const Val logits = g.apply1(
            ol::addBias(),
            {g.apply1(ol::gemm(false, true), {flat, w_out}), b_out});
        loss_ = g.apply1(ol::crossEntropyLoss(), {logits, labels_},
                         "lm_loss");
    }

    std::vector<Val> wrt;
    wrt.reserve(weights_.size());
    for (const auto &[name, val] : weights_)
        wrt.push_back(val);
    const graph::GradientResult gr = graph::backward(g, loss_, wrt);
    weight_grads_ = gr.weight_grads;
    fetches_ = {loss_};
    fetches_.insert(fetches_.end(), weight_grads_.begin(),
                    weight_grads_.end());
}

ParamStore
WordLmModel::initialParams(Rng &rng) const
{
    return initParams(weights_, rng);
}

graph::FeedDict
WordLmModel::makeFeed(const ParamStore &params,
                      const data::LmBatch &batch) const
{
    graph::FeedDict feed;
    feedParams(feed, weights_, params);
    feed[tokens_.node] = batch.tokens;
    feed[labels_.node] = batch.labels;
    return feed;
}

} // namespace echo::models
