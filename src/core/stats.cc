#include "core/stats.h"

#include <algorithm>
#include <cmath>

namespace echo {

void
Summary::add(double v)
{
    if (count_ == 0) {
        min_ = max_ = v;
    } else {
        min_ = std::min(min_, v);
        max_ = std::max(max_, v);
    }
    ++count_;
    sum_ += v;
    sum_sq_ += v * v;
}

double
Summary::mean() const
{
    return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_);
}

double
Summary::stddev() const
{
    if (count_ < 2)
        return 0.0;
    const double m = mean();
    const double var = sum_sq_ / static_cast<double>(count_) - m * m;
    return var > 0.0 ? std::sqrt(var) : 0.0;
}

double
pearsonCorrelation(const std::vector<double> &xs,
                   const std::vector<double> &ys)
{
    if (xs.size() != ys.size() || xs.size() < 2)
        return 0.0;
    const double n = static_cast<double>(xs.size());
    double sx = 0, sy = 0, sxx = 0, syy = 0, sxy = 0;
    for (size_t i = 0; i < xs.size(); ++i) {
        sx += xs[i];
        sy += ys[i];
        sxx += xs[i] * xs[i];
        syy += ys[i] * ys[i];
        sxy += xs[i] * ys[i];
    }
    const double cov = sxy / n - (sx / n) * (sy / n);
    const double vx = sxx / n - (sx / n) * (sx / n);
    const double vy = syy / n - (sy / n) * (sy / n);
    if (vx <= 0.0 || vy <= 0.0)
        return 0.0;
    return cov / std::sqrt(vx * vy);
}

double
Ema::add(double v)
{
    if (empty_) {
        value_ = v;
        empty_ = false;
    } else {
        value_ = alpha_ * v + (1.0 - alpha_) * value_;
    }
    return value_;
}

} // namespace echo
