#include "core/stats.h"

#include <algorithm>
#include <cmath>

#include "core/logging.h"

namespace echo {

void
Summary::add(double v)
{
    if (count_ == 0) {
        min_ = max_ = v;
    } else {
        min_ = std::min(min_, v);
        max_ = std::max(max_, v);
    }
    ++count_;
    sum_ += v;
    sum_sq_ += v * v;
}

double
Summary::mean() const
{
    return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_);
}

double
Summary::stddev() const
{
    if (count_ < 2)
        return 0.0;
    const double m = mean();
    const double var = sum_sq_ / static_cast<double>(count_) - m * m;
    return var > 0.0 ? std::sqrt(var) : 0.0;
}

double
pearsonCorrelation(const std::vector<double> &xs,
                   const std::vector<double> &ys)
{
    if (xs.size() != ys.size() || xs.size() < 2)
        return 0.0;
    const double n = static_cast<double>(xs.size());
    double sx = 0, sy = 0, sxx = 0, syy = 0, sxy = 0;
    for (size_t i = 0; i < xs.size(); ++i) {
        sx += xs[i];
        sy += ys[i];
        sxx += xs[i] * xs[i];
        syy += ys[i] * ys[i];
        sxy += xs[i] * ys[i];
    }
    const double cov = sxy / n - (sx / n) * (sy / n);
    const double vx = sxx / n - (sx / n) * (sx / n);
    const double vy = syy / n - (sy / n) * (sy / n);
    if (vx <= 0.0 || vy <= 0.0)
        return 0.0;
    return cov / std::sqrt(vx * vy);
}

Histogram::Histogram(double lo, double hi, int buckets_per_decade)
    : lo_(lo), per_decade_(buckets_per_decade)
{
    ECHO_REQUIRE(lo > 0.0 && hi > lo && buckets_per_decade > 0,
                 "histogram needs 0 < lo < hi and buckets_per_decade "
                 ">= 1");
    const double decades = std::log10(hi / lo);
    num_log_buckets_ = static_cast<size_t>(
        std::ceil(decades * static_cast<double>(buckets_per_decade)));
    // underflow + log buckets + overflow
    counts_.assign(num_log_buckets_ + 2, 0);
}

size_t
Histogram::bucketIndex(double v) const
{
    if (!(v >= lo_)) // handles v < lo, v <= 0, NaN
        return 0;
    const double pos =
        std::log10(v / lo_) * static_cast<double>(per_decade_);
    const auto i = static_cast<size_t>(pos);
    if (i >= num_log_buckets_)
        return num_log_buckets_ + 1; // overflow
    return i + 1;
}

double
Histogram::bucketLowerBound(size_t i) const
{
    if (i == 0)
        return 0.0;
    const double exponent = static_cast<double>(i - 1) /
                            static_cast<double>(per_decade_);
    return lo_ * std::pow(10.0, exponent);
}

void
Histogram::add(double v)
{
    summary_.add(v);
    ++counts_[bucketIndex(v)];
    if (exact_.size() < kExactCapacity)
        exact_.push_back(v);
}

double
Histogram::percentile(double p) const
{
    const size_t n = count();
    if (n == 0)
        return 0.0;
    p = std::min(std::max(p, 0.0), 100.0);
    // Nearest rank: the k-th smallest with k = ceil(p/100 * n), >= 1.
    const auto rank = static_cast<size_t>(
        std::max(1.0, std::ceil(p / 100.0 * static_cast<double>(n))));

    if (n <= exact_.size()) {
        std::vector<double> sorted(exact_.begin(), exact_.end());
        std::sort(sorted.begin(), sorted.end());
        return sorted[rank - 1];
    }

    // Walk the buckets to the one holding the rank, then interpolate
    // linearly inside it.
    size_t seen = 0;
    for (size_t i = 0; i < counts_.size(); ++i) {
        const auto c = static_cast<size_t>(counts_[i]);
        if (seen + c < rank) {
            seen += c;
            continue;
        }
        const double frac =
            c == 0 ? 0.0
                   : (static_cast<double>(rank - seen) - 0.5) /
                         static_cast<double>(c);
        const double lo = i == 0 ? summary_.min() : bucketLowerBound(i);
        const double hi = i + 1 < counts_.size()
                              ? bucketLowerBound(i + 1)
                              : summary_.max();
        const double lo_clamped = std::max(lo, summary_.min());
        const double hi_clamped = std::min(hi, summary_.max());
        if (hi_clamped <= lo_clamped)
            return lo_clamped;
        return lo_clamped + frac * (hi_clamped - lo_clamped);
    }
    return summary_.max();
}

double
Ema::add(double v)
{
    if (empty_) {
        value_ = v;
        empty_ = false;
    } else {
        value_ = alpha_ * v + (1.0 - alpha_) * value_;
    }
    return value_;
}

} // namespace echo
