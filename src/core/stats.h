/**
 * @file
 * Small statistics helpers shared by the evaluation harnesses: running
 * summaries (mean/min/max), Pearson correlation (Table 2 of the paper),
 * and an exponential moving average used by training-curve smoothing.
 */
#ifndef ECHO_CORE_STATS_H
#define ECHO_CORE_STATS_H

#include <cstddef>
#include <vector>

namespace echo {

/** Running summary of a scalar stream. */
class Summary
{
  public:
    /** Add one observation. */
    void add(double v);

    /** Number of observations so far. */
    size_t count() const { return count_; }

    /** Arithmetic mean (0 when empty). */
    double mean() const;

    /** Population standard deviation (0 when fewer than 2 samples). */
    double stddev() const;

    double min() const { return min_; }
    double max() const { return max_; }
    double sum() const { return sum_; }

  private:
    size_t count_ = 0;
    double sum_ = 0.0;
    double sum_sq_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
};

/**
 * Pearson correlation coefficient between two equally sized samples.
 * Returns 0 when either sample is constant or sizes mismatch.
 */
double pearsonCorrelation(const std::vector<double> &xs,
                          const std::vector<double> &ys);

/** Exponential moving average with smoothing factor alpha in (0, 1]. */
class Ema
{
  public:
    explicit Ema(double alpha) : alpha_(alpha) {}

    /** Fold in one observation and return the updated average. */
    double add(double v);

    /** Current value (0 before the first observation). */
    double value() const { return value_; }

    bool empty() const { return empty_; }

  private:
    double alpha_;
    double value_ = 0.0;
    bool empty_ = true;
};

} // namespace echo

#endif // ECHO_CORE_STATS_H
