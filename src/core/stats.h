/**
 * @file
 * Small statistics helpers shared by the evaluation harnesses: running
 * summaries (mean/min/max), Pearson correlation (Table 2 of the paper),
 * and an exponential moving average used by training-curve smoothing.
 */
#ifndef ECHO_CORE_STATS_H
#define ECHO_CORE_STATS_H

#include <cstddef>
#include <cstdint>
#include <vector>

namespace echo {

/** Running summary of a scalar stream. */
class Summary
{
  public:
    /** Add one observation. */
    void add(double v);

    /** Number of observations so far. */
    size_t count() const { return count_; }

    /** Arithmetic mean (0 when empty). */
    double mean() const;

    /** Population standard deviation (0 when fewer than 2 samples). */
    double stddev() const;

    double min() const { return min_; }
    double max() const { return max_; }
    double sum() const { return sum_; }

  private:
    size_t count_ = 0;
    double sum_ = 0.0;
    double sum_sq_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
};

/**
 * Pearson correlation coefficient between two equally sized samples.
 * Returns 0 when either sample is constant or sizes mismatch.
 */
double pearsonCorrelation(const std::vector<double> &xs,
                          const std::vector<double> &ys);

/**
 * Streaming histogram with fixed log-spaced buckets, built for latency
 * percentiles (p50/p95/p99) in the serving layer and the benches.
 *
 * Buckets: an underflow bucket for values below @p lo, then
 * buckets_per_decade buckets per power of ten covering [lo, hi), then
 * an overflow bucket.  Bucket i >= 1 covers
 * [lo * r^(i-1), lo * r^i) with r = 10^(1/buckets_per_decade).
 *
 * Percentiles use the nearest-rank definition.  Up to kExactCapacity
 * samples are additionally kept verbatim, so small-sample percentiles
 * are exact; past that the value is interpolated inside the bucket
 * (relative error bounded by the bucket width, ~15% at the default 16
 * buckets per decade).
 */
class Histogram
{
  public:
    /** Raw samples kept for exact small-sample percentiles. */
    static constexpr size_t kExactCapacity = 1024;

    explicit Histogram(double lo = 1.0, double hi = 1e9,
                       int buckets_per_decade = 16);

    /** Record one observation (values <= 0 land in the underflow
     *  bucket). */
    void add(double v);

    size_t count() const { return summary_.count(); }
    double min() const { return summary_.min(); }
    double max() const { return summary_.max(); }
    double mean() const { return summary_.mean(); }

    /**
     * Nearest-rank percentile, @p p in [0, 100].  Exact while count()
     * <= kExactCapacity, bucket-interpolated beyond.  0 when empty.
     */
    double percentile(double p) const;

    double p50() const { return percentile(50.0); }
    double p95() const { return percentile(95.0); }
    double p99() const { return percentile(99.0); }

    // Bucket geometry, exposed so tests can pin the boundaries.
    size_t numBuckets() const { return counts_.size(); }
    size_t bucketIndex(double v) const;
    /** Lower bound of bucket @p i (0 for the underflow bucket). */
    double bucketLowerBound(size_t i) const;
    int64_t bucketCount(size_t i) const
    {
        return counts_[i];
    }

  private:
    double lo_;
    int per_decade_;
    size_t num_log_buckets_; ///< excluding underflow/overflow
    std::vector<int64_t> counts_;
    std::vector<double> exact_; ///< first kExactCapacity samples
    Summary summary_;
};

/** Exponential moving average with smoothing factor alpha in (0, 1]. */
class Ema
{
  public:
    explicit Ema(double alpha) : alpha_(alpha) {}

    /** Fold in one observation and return the updated average. */
    double add(double v);

    /** Current value (0 before the first observation). */
    double value() const { return value_; }

    bool empty() const { return empty_; }

  private:
    double alpha_;
    double value_ = 0.0;
    bool empty_ = true;
};

} // namespace echo

#endif // ECHO_CORE_STATS_H
