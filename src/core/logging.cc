#include "core/logging.h"

#include <cstdio>
#include <cstdlib>

namespace echo {

namespace {
bool quiet_mode = false;
} // namespace

void
setQuiet(bool quiet)
{
    quiet_mode = quiet;
}

void
panicImpl(const char *file, int line, const std::string &msg)
{
    std::fprintf(stderr, "panic: %s\n  at %s:%d\n", msg.c_str(), file, line);
    std::abort();
}

void
fatalImpl(const char *file, int line, const std::string &msg)
{
    std::fprintf(stderr, "fatal: %s\n  at %s:%d\n", msg.c_str(), file, line);
    std::exit(1);
}

void
warnImpl(const std::string &msg)
{
    if (!quiet_mode)
        std::fprintf(stderr, "warn: %s\n", msg.c_str());
}

void
informImpl(const std::string &msg)
{
    if (!quiet_mode)
        std::fprintf(stderr, "info: %s\n", msg.c_str());
}

} // namespace echo
