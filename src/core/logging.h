/**
 * @file
 * Error-handling and status-message primitives, in the gem5 style.
 *
 * Two classes of errors are distinguished:
 *  - panic(): an internal invariant was violated — a bug in this library.
 *    Aborts so the failure can be debugged.
 *  - fatal(): the caller asked for something impossible (bad shapes, bad
 *    configuration).  Exits with an error code.
 *
 * warn()/inform() report conditions that do not stop execution.
 */
#ifndef ECHO_CORE_LOGGING_H
#define ECHO_CORE_LOGGING_H

#include <sstream>
#include <string>

namespace echo {

/** Terminate with an internal-bug diagnostic (calls std::abort). */
[[noreturn]] void panicImpl(const char *file, int line, const std::string &msg);

/** Terminate with a user-error diagnostic (calls std::exit(1)). */
[[noreturn]] void fatalImpl(const char *file, int line, const std::string &msg);

/** Print a warning to stderr; execution continues. */
void warnImpl(const std::string &msg);

/** Print an informational message to stderr; execution continues. */
void informImpl(const std::string &msg);

/** Globally silence warn()/inform() (used by benches to keep tables clean). */
void setQuiet(bool quiet);

namespace detail {

/** Builds a message from stream-style arguments. */
template <typename... Args>
std::string
formatMessage(Args &&...args)
{
    std::ostringstream oss;
    (oss << ... << args);
    return oss.str();
}

} // namespace detail
} // namespace echo

#define ECHO_PANIC(...) \
    ::echo::panicImpl(__FILE__, __LINE__, \
                      ::echo::detail::formatMessage(__VA_ARGS__))

#define ECHO_FATAL(...) \
    ::echo::fatalImpl(__FILE__, __LINE__, \
                      ::echo::detail::formatMessage(__VA_ARGS__))

#define ECHO_WARN(...) \
    ::echo::warnImpl(::echo::detail::formatMessage(__VA_ARGS__))

#define ECHO_INFORM(...) \
    ::echo::informImpl(::echo::detail::formatMessage(__VA_ARGS__))

/** Internal invariant check: always on, independent of NDEBUG. */
#define ECHO_CHECK(cond, ...) \
    do { \
        if (!(cond)) { \
            ECHO_PANIC("check failed: " #cond " — ", \
                       ::echo::detail::formatMessage(__VA_ARGS__)); \
        } \
    } while (0)

/** User-facing argument validation. */
#define ECHO_REQUIRE(cond, ...) \
    do { \
        if (!(cond)) { \
            ECHO_FATAL("requirement failed: " #cond " — ", \
                       ::echo::detail::formatMessage(__VA_ARGS__)); \
        } \
    } while (0)

#endif // ECHO_CORE_LOGGING_H
