/**
 * @file
 * Fixed-size worker thread pool with a parallelFor primitive.
 *
 * This is the substrate of the CPU execution performance layer: the
 * tensor kernels split large loops over it (src/tensor) and the graph
 * executor dispatches ready nodes onto it (src/graph/executor).
 *
 * Design rules, chosen so parallel execution stays debuggable and
 * bit-identical to serial execution:
 *  - Thread count comes from ECHO_NUM_THREADS (default: the hardware
 *    concurrency).  At 1 thread every primitive degenerates to a plain
 *    serial loop on the calling thread — no worker hand-off at all.
 *  - parallelFor chunking never changes *what* each output element is
 *    computed from, only *which thread* computes it; all kernels built
 *    on it assign disjoint output ranges per chunk, so results are
 *    byte-identical for every thread count.
 *  - A parallelFor issued from inside a pool worker (nested
 *    parallelism, e.g. a tensor kernel running inside a parallel graph
 *    node) runs serially on that worker: inter-node parallelism
 *    replaces intra-node parallelism instead of oversubscribing.
 *  - Exceptions thrown by tasks or chunks are captured and rethrown on
 *    the waiting thread (first one wins).
 */
#ifndef ECHO_CORE_THREAD_POOL_H
#define ECHO_CORE_THREAD_POOL_H

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

namespace echo {

/** Fixed-size worker pool; see the file comment for the contract. */
class ThreadPool
{
  public:
    /**
     * Start @p num_threads workers (clamped to >= 1).  With 1 thread
     * the pool still owns one worker (so submit() works), but
     * parallelFor never leaves the calling thread.
     */
    explicit ThreadPool(int num_threads);

    /** Drains every queued task, then joins the workers. */
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Configured concurrency (>= 1). */
    int numThreads() const { return num_threads_; }

    /**
     * Handle to one submitted task; wait() blocks until it finished
     * and rethrows any exception the task threw.  Handles are cheap,
     * copyable, and outlive the pool-side execution (DAG-style callers
     * keep them to order dependent work).
     */
    class Task
    {
      public:
        Task() = default;

        /** True when the handle refers to a submitted task. */
        bool valid() const { return state_ != nullptr; }

        /** True once the task ran (or threw). */
        bool done() const;

        /** Block until done; rethrows the task's exception, if any. */
        void wait() const;

      private:
        friend class ThreadPool;
        struct State;
        std::shared_ptr<State> state_;
    };

    /** Enqueue @p fn for execution on a worker. */
    Task submit(std::function<void()> fn);

    /**
     * Run fn(chunk_begin, chunk_end) over [begin, end) split into
     * chunks of at least @p grain iterations.  The calling thread
     * participates; the call returns when the whole range is done.
     * Serial fallback (fn(begin, end) inline) when the range is small,
     * the pool has 1 thread, or the caller is already inside a pool
     * worker or another parallelFor.
     */
    template <typename Fn>
    void
    parallelFor(int64_t begin, int64_t end, int64_t grain, Fn &&fn)
    {
        if (end <= begin)
            return;
        if (!shouldSplit(end - begin, grain)) {
            fn(begin, end);
            return;
        }
        parallelForImpl(begin, end, grain,
                        std::function<void(int64_t, int64_t)>(
                            std::forward<Fn>(fn)));
    }

    /**
     * The process-wide pool, created on first use with
     * defaultNumThreads() workers.  All tensor kernels and the graph
     * executor share this pool.
     */
    static ThreadPool &global();

    /**
     * ECHO_NUM_THREADS if set (clamped to [1, 512]; invalid values
     * warn and are ignored), else std::thread::hardware_concurrency().
     */
    static int defaultNumThreads();

    /**
     * Replace the global pool with one of @p num_threads workers.
     * Intended for tests and benchmarks comparing thread counts; the
     * caller must ensure no parallel work is in flight.
     */
    static void setGlobalNumThreads(int num_threads);

    /** True on a thread owned by any ThreadPool. */
    static bool onWorkerThread();

  private:
    /** Decide between the serial fallback and a real split. */
    bool shouldSplit(int64_t range, int64_t grain) const;

    void parallelForImpl(int64_t begin, int64_t end, int64_t grain,
                         const std::function<void(int64_t, int64_t)> &fn);

    void workerLoop();

    const int num_threads_;
    std::vector<std::thread> workers_;

    std::mutex mu_;
    std::condition_variable cv_;
    std::deque<std::function<void()>> queue_;
    bool stopping_ = false;
};

} // namespace echo

#endif // ECHO_CORE_THREAD_POOL_H
