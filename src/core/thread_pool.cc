#include "core/thread_pool.h"

#include <atomic>
#include <cstdlib>
#include <string>

#include "core/logging.h"
#include "obs/counters.h"
#include "obs/trace.h"

namespace echo {

namespace {

/** Set for the lifetime of a pool worker thread. */
thread_local bool tl_on_worker = false;

/** Set while a thread executes a parallelFor chunk (nesting guard). */
thread_local bool tl_in_parallel_for = false;

/** The lazily created process-wide pool (atomic for a lock-free read). */
std::atomic<ThreadPool *> g_global_pool{nullptr};
std::mutex g_global_mu;

} // namespace

// ----------------------------------------------------------------------
// Task handle
// ----------------------------------------------------------------------

struct ThreadPool::Task::State
{
    std::mutex mu;
    std::condition_variable cv;
    bool done = false;
    std::exception_ptr error;
};

bool
ThreadPool::Task::done() const
{
    ECHO_CHECK(state_ != nullptr, "done() on an empty Task handle");
    std::lock_guard<std::mutex> lk(state_->mu);
    return state_->done;
}

void
ThreadPool::Task::wait() const
{
    ECHO_CHECK(state_ != nullptr, "wait() on an empty Task handle");
    std::unique_lock<std::mutex> lk(state_->mu);
    state_->cv.wait(lk, [this] { return state_->done; });
    if (state_->error)
        std::rethrow_exception(state_->error);
}

// ----------------------------------------------------------------------
// Pool lifecycle
// ----------------------------------------------------------------------

ThreadPool::ThreadPool(int num_threads)
    : num_threads_(num_threads < 1 ? 1 : num_threads)
{
    workers_.reserve(static_cast<size_t>(num_threads_));
    for (int i = 0; i < num_threads_; ++i)
        workers_.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lk(mu_);
        stopping_ = true;
    }
    cv_.notify_all();
    for (std::thread &t : workers_)
        t.join();
}

void
ThreadPool::workerLoop()
{
    tl_on_worker = true;
    static obs::Counter &c_executed = obs::counter(
        "pool.tasks_executed", obs::CounterKind::kScheduling);
    for (;;) {
        std::function<void()> job;
        {
            std::unique_lock<std::mutex> lk(mu_);
            cv_.wait(lk, [this] { return stopping_ || !queue_.empty(); });
            if (queue_.empty())
                return; // stopping and drained
            job = std::move(queue_.front());
            queue_.pop_front();
            obs::counterSample(
                "pool", "pool.queue_depth",
                static_cast<int64_t>(queue_.size()));
        }
        c_executed.add(1);
        job();
    }
}

ThreadPool::Task
ThreadPool::submit(std::function<void()> fn)
{
    Task task;
    task.state_ = std::make_shared<Task::State>();
    std::shared_ptr<Task::State> state = task.state_;
    static obs::Counter &c_submitted = obs::counter(
        "pool.tasks_submitted", obs::CounterKind::kScheduling);
    c_submitted.add(1);
    {
        std::lock_guard<std::mutex> lk(mu_);
        ECHO_CHECK(!stopping_, "submit() on a stopping ThreadPool");
        queue_.emplace_back([state, fn = std::move(fn)] {
            // The span must close before done is signalled, so a trace
            // stopped after wait() returns has balanced B/E pairs.
            {
                obs::Span span;
                if (obs::traceEnabled())
                    span.begin("pool", "worker.task");
                try {
                    fn();
                } catch (...) {
                    std::lock_guard<std::mutex> lk(state->mu);
                    state->error = std::current_exception();
                }
            }
            {
                std::lock_guard<std::mutex> lk(state->mu);
                state->done = true;
            }
            state->cv.notify_all();
        });
        obs::counterSample("pool", "pool.queue_depth",
                           static_cast<int64_t>(queue_.size()));
    }
    cv_.notify_one();
    return task;
}

// ----------------------------------------------------------------------
// parallelFor
// ----------------------------------------------------------------------

bool
ThreadPool::shouldSplit(int64_t range, int64_t grain) const
{
    if (num_threads_ <= 1)
        return false;
    if (range <= (grain < 1 ? 1 : grain))
        return false;
    // Nested parallelism runs serially: a kernel inside a parallel
    // graph node (or inside another parallelFor chunk) must not
    // recursively feed the queue its own waiters.
    return !tl_on_worker && !tl_in_parallel_for;
}

void
ThreadPool::parallelForImpl(int64_t begin, int64_t end, int64_t grain,
                            const std::function<void(int64_t, int64_t)> &fn)
{
    const int64_t range = end - begin;
    const int64_t g = grain < 1 ? 1 : grain;

    // Chunk size: at least the grain; small enough for ~4 chunks per
    // thread of load-balancing slack.  Chunk *boundaries* only affect
    // which thread computes a range, never the values computed.
    const int64_t max_chunks = static_cast<int64_t>(num_threads_) * 4;
    const int64_t chunk =
        std::max(g, (range + max_chunks - 1) / max_chunks);
    const int64_t nchunks = (range + chunk - 1) / chunk;

    struct Shared
    {
        std::atomic<int64_t> next{0};
        int64_t nchunks = 0, begin = 0, end = 0, chunk = 0;
        const std::function<void(int64_t, int64_t)> *fn = nullptr;
        std::mutex mu;
        std::condition_variable cv;
        int64_t completed = 0;
        std::exception_ptr error;
    };
    auto shared = std::make_shared<Shared>();
    shared->nchunks = nchunks;
    shared->begin = begin;
    shared->end = end;
    shared->chunk = chunk;
    shared->fn = &fn;

    // Claim-and-run until the chunk counter is exhausted.  `fn` is only
    // dereferenced for successfully claimed chunks, and the caller
    // blocks until all claimed chunks completed, so a straggler task
    // that starts after this call returned finds no chunk and never
    // touches the (by then dead) closure.
    auto drain = [](const std::shared_ptr<Shared> &s) {
        static obs::Counter &c_chunks = obs::counter(
            "pool.parfor_chunks", obs::CounterKind::kScheduling);
        for (;;) {
            const int64_t idx =
                s->next.fetch_add(1, std::memory_order_relaxed);
            if (idx >= s->nchunks)
                return;
            const int64_t b = s->begin + idx * s->chunk;
            const int64_t e = std::min(s->end, b + s->chunk);
            c_chunks.add(1);
            // Span closes before the chunk is counted completed, so
            // the caller never returns with a chunk span still open.
            {
                obs::Span span;
                if (obs::traceEnabled())
                    span.begin("pool", "parfor.chunk",
                               {{"begin", b}, {"end", e}});
                tl_in_parallel_for = true;
                try {
                    (*s->fn)(b, e);
                } catch (...) {
                    std::lock_guard<std::mutex> lk(s->mu);
                    if (!s->error)
                        s->error = std::current_exception();
                }
                tl_in_parallel_for = false;
            }
            {
                std::lock_guard<std::mutex> lk(s->mu);
                ++s->completed;
            }
            s->cv.notify_all();
        }
    };

    const int64_t helpers =
        std::min<int64_t>(num_threads_, nchunks - 1);
    {
        std::lock_guard<std::mutex> lk(mu_);
        ECHO_CHECK(!stopping_, "parallelFor on a stopping ThreadPool");
        for (int64_t i = 0; i < helpers; ++i)
            queue_.emplace_back([shared, drain] { drain(shared); });
    }
    cv_.notify_all();

    drain(shared);

    std::unique_lock<std::mutex> lk(shared->mu);
    shared->cv.wait(lk, [&] { return shared->completed == nchunks; });
    if (shared->error)
        std::rethrow_exception(shared->error);
}

// ----------------------------------------------------------------------
// Global pool
// ----------------------------------------------------------------------

int
ThreadPool::defaultNumThreads()
{
    if (const char *env = std::getenv("ECHO_NUM_THREADS")) {
        char *tail = nullptr;
        const long v = std::strtol(env, &tail, 10);
        if (tail != env && *tail == '\0' && v >= 1 && v <= 512)
            return static_cast<int>(v);
        ECHO_WARN("ignoring invalid ECHO_NUM_THREADS=\"", env,
                  "\" (expected an integer in [1, 512])");
    }
    const unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : static_cast<int>(hw);
}

ThreadPool &
ThreadPool::global()
{
    ThreadPool *pool = g_global_pool.load(std::memory_order_acquire);
    if (pool)
        return *pool;
    std::lock_guard<std::mutex> lk(g_global_mu);
    pool = g_global_pool.load(std::memory_order_relaxed);
    if (!pool) {
        pool = new ThreadPool(defaultNumThreads());
        g_global_pool.store(pool, std::memory_order_release);
    }
    return *pool;
}

void
ThreadPool::setGlobalNumThreads(int num_threads)
{
    std::lock_guard<std::mutex> lk(g_global_mu);
    ThreadPool *old = g_global_pool.load(std::memory_order_relaxed);
    ThreadPool *fresh = new ThreadPool(num_threads);
    g_global_pool.store(fresh, std::memory_order_release);
    delete old;
}

bool
ThreadPool::onWorkerThread()
{
    return tl_on_worker;
}

} // namespace echo
