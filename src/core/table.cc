#include "core/table.h"

#include <cstdio>
#include <fstream>
#include <iomanip>
#include <sstream>

#include "core/logging.h"

namespace echo {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers))
{
    ECHO_REQUIRE(!headers_.empty(), "a table needs at least one column");
}

void
Table::addRow(std::vector<std::string> cells)
{
    ECHO_REQUIRE(cells.size() == headers_.size(),
                 "row has ", cells.size(), " cells, table has ",
                 headers_.size(), " columns");
    rows_.push_back(std::move(cells));
}

std::string
Table::toString() const
{
    std::vector<size_t> widths(headers_.size());
    for (size_t c = 0; c < headers_.size(); ++c)
        widths[c] = headers_[c].size();
    for (const auto &row : rows_)
        for (size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());

    std::ostringstream oss;
    auto emit_row = [&](const std::vector<std::string> &row) {
        for (size_t c = 0; c < row.size(); ++c) {
            oss << std::left << std::setw(static_cast<int>(widths[c]))
                << row[c];
            oss << (c + 1 == row.size() ? "\n" : "  ");
        }
    };
    emit_row(headers_);
    for (size_t c = 0; c < headers_.size(); ++c) {
        oss << std::string(widths[c], '-')
            << (c + 1 == headers_.size() ? "\n" : "  ");
    }
    for (const auto &row : rows_)
        emit_row(row);
    return oss.str();
}

std::string
Table::toCsv() const
{
    auto quote = [](const std::string &cell) {
        if (cell.find_first_of(",\"\n") == std::string::npos)
            return cell;
        std::string out = "\"";
        for (char ch : cell) {
            if (ch == '"')
                out += '"';
            out += ch;
        }
        out += '"';
        return out;
    };
    std::ostringstream oss;
    for (size_t c = 0; c < headers_.size(); ++c)
        oss << quote(headers_[c]) << (c + 1 == headers_.size() ? "\n" : ",");
    for (const auto &row : rows_)
        for (size_t c = 0; c < row.size(); ++c)
            oss << quote(row[c]) << (c + 1 == row.size() ? "\n" : ",");
    return oss.str();
}

void
Table::print() const
{
    std::fputs(toString().c_str(), stdout);
}

void
Table::writeCsv(const std::string &path) const
{
    std::ofstream ofs(path);
    ECHO_REQUIRE(ofs.good(), "cannot open ", path, " for writing");
    ofs << toCsv();
}

std::string
Table::fmt(double v, int digits)
{
    std::ostringstream oss;
    oss << std::fixed << std::setprecision(digits) << v;
    return oss.str();
}

std::string
Table::fmtBytes(uint64_t bytes)
{
    const char *units[] = {"B", "KB", "MB", "GB", "TB"};
    double v = static_cast<double>(bytes);
    int unit = 0;
    while (v >= 1024.0 && unit < 4) {
        v /= 1024.0;
        ++unit;
    }
    std::ostringstream oss;
    const int digits = unit == 0 ? 0 : (v < 10 ? 2 : 1);
    oss << std::fixed << std::setprecision(digits) << v << " "
        << units[unit];
    return oss.str();
}

std::string
Table::fmtPercent(double fraction, int digits)
{
    return fmt(fraction * 100.0, digits) + "%";
}

} // namespace echo
