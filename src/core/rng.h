/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * Every stochastic component of the library (weight init, synthetic
 * datasets, dropout) draws from an explicitly seeded Rng so that runs are
 * bit-reproducible.  The generator is xoshiro256** seeded via splitmix64,
 * which is fast, high quality, and has a trivially copyable state.
 */
#ifndef ECHO_CORE_RNG_H
#define ECHO_CORE_RNG_H

#include <cstdint>
#include <vector>

namespace echo {

/** Deterministic random number generator (xoshiro256**). */
class Rng
{
  public:
    /** Construct from a 64-bit seed; equal seeds give equal streams. */
    explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ull);

    /** Next raw 64-bit value. */
    uint64_t next();

    /** Uniform double in [0, 1). */
    double uniform();

    /** Uniform double in [lo, hi). */
    double uniform(double lo, double hi);

    /** Uniform integer in [0, n). @pre n > 0 */
    uint64_t uniformInt(uint64_t n);

    /** Standard normal variate (Box-Muller). */
    double gaussian();

    /** Gaussian with the given mean and standard deviation. */
    double gaussian(double mean, double stddev);

    /**
     * Zipf-distributed rank in [0, n): rank r drawn with probability
     * proportional to 1 / (r + 1)^s.  Used by the synthetic corpora to
     * mimic natural-language token frequency.
     */
    uint64_t zipf(uint64_t n, double s = 1.0);

    /** Split off an independent child stream (for parallel components). */
    Rng split();

  private:
    uint64_t s_[4];
    bool have_cached_gaussian_ = false;
    double cached_gaussian_ = 0.0;

    // Cached Zipf normalization (recomputed when n or s changes).
    uint64_t zipf_n_ = 0;
    double zipf_s_ = 0.0;
    std::vector<double> zipf_cdf_;
};

} // namespace echo

#endif // ECHO_CORE_RNG_H
