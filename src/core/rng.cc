#include "core/rng.h"

#include <algorithm>
#include <cmath>

#include "core/logging.h"

namespace echo {

namespace {

/** splitmix64 step, used to expand the user seed into generator state. */
uint64_t
splitmix64(uint64_t &x)
{
    x += 0x9E3779B97F4A7C15ull;
    uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return z ^ (z >> 31);
}

uint64_t
rotl(uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(uint64_t seed)
{
    uint64_t sm = seed;
    for (auto &word : s_)
        word = splitmix64(sm);
}

uint64_t
Rng::next()
{
    const uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
}

double
Rng::uniform()
{
    // 53 random mantissa bits.
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double
Rng::uniform(double lo, double hi)
{
    return lo + (hi - lo) * uniform();
}

uint64_t
Rng::uniformInt(uint64_t n)
{
    ECHO_CHECK(n > 0, "uniformInt needs a positive bound");
    // Rejection sampling to avoid modulo bias.
    const uint64_t limit = UINT64_MAX - UINT64_MAX % n;
    uint64_t v = next();
    while (v >= limit)
        v = next();
    return v % n;
}

double
Rng::gaussian()
{
    if (have_cached_gaussian_) {
        have_cached_gaussian_ = false;
        return cached_gaussian_;
    }
    double u1 = 0.0;
    while (u1 <= 1e-300)
        u1 = uniform();
    const double u2 = uniform();
    const double r = std::sqrt(-2.0 * std::log(u1));
    const double theta = 2.0 * M_PI * u2;
    cached_gaussian_ = r * std::sin(theta);
    have_cached_gaussian_ = true;
    return r * std::cos(theta);
}

double
Rng::gaussian(double mean, double stddev)
{
    return mean + stddev * gaussian();
}

uint64_t
Rng::zipf(uint64_t n, double s)
{
    ECHO_CHECK(n > 0, "zipf needs a positive support size");
    if (zipf_n_ != n || zipf_s_ != s) {
        zipf_cdf_.resize(n);
        double acc = 0.0;
        for (uint64_t r = 0; r < n; ++r) {
            acc += 1.0 / std::pow(static_cast<double>(r + 1), s);
            zipf_cdf_[r] = acc;
        }
        for (auto &v : zipf_cdf_)
            v /= acc;
        zipf_n_ = n;
        zipf_s_ = s;
    }
    const double u = uniform();
    const auto it =
        std::lower_bound(zipf_cdf_.begin(), zipf_cdf_.end(), u);
    return static_cast<uint64_t>(it - zipf_cdf_.begin());
}

Rng
Rng::split()
{
    return Rng(next());
}

} // namespace echo
