/**
 * @file
 * Plain-text table and CSV output used by the benchmark harnesses.
 *
 * Every bench binary reproduces one of the paper's tables or figures by
 * printing rows; Table gives them a consistent, aligned format and an
 * optional CSV mirror for plotting.
 */
#ifndef ECHO_CORE_TABLE_H
#define ECHO_CORE_TABLE_H

#include <cstdint>
#include <string>
#include <vector>

namespace echo {

/** A simple column-aligned text table with optional CSV export. */
class Table
{
  public:
    /** Create a table with the given column headers. */
    explicit Table(std::vector<std::string> headers);

    /** Append a row; must have exactly as many cells as there are headers. */
    void addRow(std::vector<std::string> cells);

    /** Render the table, column-aligned, with a header separator. */
    std::string toString() const;

    /** Render as CSV (RFC-4180-ish; cells with commas are quoted). */
    std::string toCsv() const;

    /** Print toString() to stdout. */
    void print() const;

    /** Write the CSV rendering to @p path (overwrites). */
    void writeCsv(const std::string &path) const;

    /** Number of data rows added so far. */
    size_t numRows() const { return rows_.size(); }

    /** Format a double with @p digits decimal places. */
    static std::string fmt(double v, int digits = 2);

    /** Format a byte count as a human-readable string (e.g.\ "4.3 GB"). */
    static std::string fmtBytes(uint64_t bytes);

    /** Format a fraction as a percentage string (e.g.\ "59.2%"). */
    static std::string fmtPercent(double fraction, int digits = 1);

  private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

} // namespace echo

#endif // ECHO_CORE_TABLE_H
