#include "gpusim/gemm_model.h"

#include <algorithm>
#include <cmath>

#include "core/logging.h"

namespace echo::gpusim {

namespace {

// Tile geometry of the modelled sgemm kernel family.
constexpr double kTileM = 128.0;
constexpr double kTileN = 64.0;
// Fraction of peak a well-shaped sgemm achieves.
constexpr double kBaseEff = 0.85;
// Row-underutilization decay: alpha(k) = kAlpha0 * (kAlphaK / k)^kAlphaP,
// calibrated against the paper's Fig. 9 (LSTM ~2x, GRU ~1.3x).
constexpr double kAlpha0 = 1.45;
constexpr double kAlphaK = 512.0;
constexpr double kAlphaP = 1.4;
constexpr double kAlphaMin = 0.25;
constexpr double kAlphaMax = 1.6;
// Occupancy model: even small grids keep part of the machine busy.
constexpr double kOccFloor = 0.7;
// Efficiency floor (even pathological shapes stream some useful work).
constexpr double kEffFloor = 0.08;

double
clamp(double v, double lo, double hi)
{
    return std::min(hi, std::max(lo, v));
}

} // namespace

GemmCost
estimateGemm(const GemmGeometry &g, const GpuSpec &gpu)
{
    ECHO_REQUIRE(g.m > 0 && g.n > 0 && g.k > 0,
                 "GEMM geometry must be positive");

    const double m = static_cast<double>(g.m);
    const double n = static_cast<double>(g.n);
    const double k = static_cast<double>(g.k);

    // Partial-tile utilization.  The +16 softens the penalty for tiny
    // extents (the hardware still fills quads/warps partially).
    const double m_frac = std::min(1.0, (m + 16.0) / (kTileM + 16.0));
    const double n_frac = std::min(1.0, (n + 16.0) / (kTileN + 16.0));
    const double alpha =
        clamp(kAlpha0 * std::pow(kAlphaK / k, kAlphaP), kAlphaMin,
              kAlphaMax);
    const double eff_m = std::pow(m_frac, alpha);
    const double eff_n = std::pow(n_frac, 0.5 * alpha);

    // Grid occupancy with wave quantization: the grid executes in
    // waves of sm_count blocks; a partially filled last wave leaves
    // SMs idle, which is why growing the batch keeps improving GEMM
    // efficiency even past one full wave (the Fig. 4(b) batch-scaling
    // behaviour).
    const double blocks =
        std::ceil(m / kTileM) * std::ceil(n / kTileN);
    const double waves =
        std::ceil(blocks / static_cast<double>(gpu.sm_count));
    const double occ =
        blocks / (waves * static_cast<double>(gpu.sm_count));
    const double eff_occ = kOccFloor + (1.0 - kOccFloor) * occ;

    GemmCost cost;
    cost.efficiency =
        std::max(kEffFloor, kBaseEff * eff_m * eff_n * eff_occ);

    const double flops = 2.0 * m * n * k;
    const double compute_time_us =
        flops / (gpu.fp32_tflops * 1e12 * cost.efficiency) * 1e6;

    // DRAM traffic: compulsory operand/result traffic, inflated by
    // panel reloads when the kernel runs inefficiently (poor reuse and
    // poor cache behaviour go together on these skewed shapes).
    const double compulsory =
        (m * k + k * n + 2.0 * m * n) * 4.0;
    const double reload = 1.0 + 0.5 * (1.0 - cost.efficiency);
    cost.dram_bytes = static_cast<int64_t>(compulsory * reload);
    const double mem_time_us =
        static_cast<double>(cost.dram_bytes) /
        (gpu.dram_gbps * 1e9) * 1e6;

    cost.time_us = std::max(compute_time_us, mem_time_us) +
                   gpu.kernel_overhead_us;
    // Empirical mapping from achieved efficiency to L2 hit rate,
    // matching the Cache bars of Fig. 9 (better-shaped call -> better
    // cache utilization).
    cost.l2_hit_rate = clamp(0.35 + 0.55 * cost.efficiency, 0.0, 0.95);
    return cost;
}

} // namespace echo::gpusim
