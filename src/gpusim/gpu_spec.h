/**
 * @file
 * GPU hardware descriptions for the analytical performance model.
 *
 * Presets match the paper's three evaluation GPUs (Titan Xp / Titan V /
 * RTX 2080 Ti).  The numbers are public datasheet values; behavioural
 * constants (launch overhead, achievable-fraction) are the usual
 * rule-of-thumb values for CUDA devices of those generations and are
 * calibrated so that the paper's result *shapes* reproduce (see
 * DESIGN.md "Numbers we calibrate to").
 */
#ifndef ECHO_GPUSIM_GPU_SPEC_H
#define ECHO_GPUSIM_GPU_SPEC_H

#include <cstdint>
#include <string>

namespace echo::gpusim {

/** Static description of one GPU model. */
struct GpuSpec
{
    std::string name;
    /** Peak FP32 throughput in TFLOP/s. */
    double fp32_tflops = 0.0;
    /** Peak DRAM bandwidth in GB/s. */
    double dram_gbps = 0.0;
    /** L2 cache capacity in bytes. */
    int64_t l2_bytes = 0;
    /** Number of streaming multiprocessors. */
    int sm_count = 0;
    /** Device memory capacity in bytes. */
    int64_t mem_capacity_bytes = 0;
    /** CPU-side cost of one kernel launch (cudaLaunch), microseconds. */
    double launch_overhead_us = 0.0;
    /** Fixed GPU-side kernel startup latency, microseconds. */
    double kernel_overhead_us = 0.0;
    /** Cost of one synchronization call, microseconds. */
    double sync_overhead_us = 0.0;
    /** Idle and maximum board power, watts. */
    double idle_power_w = 0.0;
    double max_power_w = 0.0;

    /** Paper's evaluation GPUs. */
    static GpuSpec titanXp();
    static GpuSpec titanV();
    static GpuSpec rtx2080Ti();
};

} // namespace echo::gpusim

#endif // ECHO_GPUSIM_GPU_SPEC_H
