#include "gpusim/gpu_spec.h"

namespace echo::gpusim {

GpuSpec
GpuSpec::titanXp()
{
    GpuSpec s;
    s.name = "Titan Xp";
    s.fp32_tflops = 12.15;
    s.dram_gbps = 547.0;
    s.l2_bytes = 3ll << 20;
    s.sm_count = 30;
    s.mem_capacity_bytes = 12ll << 30;
    s.launch_overhead_us = 2.5;
    s.kernel_overhead_us = 1.8;
    s.sync_overhead_us = 8.0;
    s.idle_power_w = 60.0;
    s.max_power_w = 250.0;
    return s;
}

GpuSpec
GpuSpec::titanV()
{
    GpuSpec s;
    s.name = "Titan V";
    s.fp32_tflops = 14.9;
    s.dram_gbps = 653.0;
    s.l2_bytes = 4608ll << 10;
    s.sm_count = 80;
    s.mem_capacity_bytes = 12ll << 30;
    s.launch_overhead_us = 2.5;
    s.kernel_overhead_us = 1.5;
    s.sync_overhead_us = 8.0;
    s.idle_power_w = 60.0;
    s.max_power_w = 250.0;
    return s;
}

GpuSpec
GpuSpec::rtx2080Ti()
{
    GpuSpec s;
    s.name = "RTX 2080 Ti";
    s.fp32_tflops = 13.45;
    s.dram_gbps = 616.0;
    s.l2_bytes = 5632ll << 10;
    s.sm_count = 68;
    s.mem_capacity_bytes = 11ll << 30;
    s.launch_overhead_us = 2.5;
    s.kernel_overhead_us = 1.6;
    s.sync_overhead_us = 8.0;
    s.idle_power_w = 55.0;
    s.max_power_w = 250.0;
    return s;
}

} // namespace echo::gpusim
