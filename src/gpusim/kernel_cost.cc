#include "gpusim/kernel_cost.h"

#include <algorithm>

#include "core/logging.h"

namespace echo::gpusim {

KernelCost
estimateKernel(const graph::KernelDesc &desc, const GpuSpec &gpu,
               double input_cache_fraction)
{
    KernelCost cost;
    cost.launches = desc.launches;
    if (desc.launches == 0)
        return cost;

    if (desc.is_gemm) {
        GemmGeometry geo{desc.gemm_m, desc.gemm_n, desc.gemm_k};
        // A descriptor may stand for several identical launches (e.g.
        // per-time-step recurrent GEMMs); each costs the same.
        // Batched flops beyond one launch's geometry (bmm) are folded
        // into an effective repeat count.
        // desc.flops is per launch; a bmm launch folds `batch`
        // identical GEMMs into one kernel.
        const int64_t flops_one = 2 * geo.m * geo.n * geo.k;
        const double batch_factor =
            flops_one > 0 ? std::max(1.0, static_cast<double>(desc.flops) /
                                              static_cast<double>(flops_one))
                          : 1.0;
        const GemmCost g = estimateGemm(geo, gpu);
        cost.time_us =
            g.time_us * desc.launches * batch_factor * desc.time_scale;
        cost.dram_bytes = static_cast<int64_t>(
            static_cast<double>(g.dram_bytes) * desc.launches *
            batch_factor);
        cost.l2_hit_rate = g.l2_hit_rate;
        cost.utilization = g.efficiency;
        return cost;
    }

    // Bandwidth-bound kernel; desc byte counts are per launch.  Reads
    // served from L2 (fresh producer-consumer pairs) are discounted.
    const double cached =
        std::clamp(input_cache_fraction, 0.0, 1.0);
    const double read_bytes =
        static_cast<double>(desc.bytes_read) * desc.launches;
    const double effective_read =
        read_bytes * (1.0 - cached) +
        read_bytes * cached * kL2HitCostFraction;
    const int64_t bytes = static_cast<int64_t>(
        effective_read +
        static_cast<double>(desc.bytes_written) * desc.launches);
    const double bw_frac =
        desc.coalesced ? kCoalescedBwFraction : kUncoalescedBwFraction;
    // Latency-bandwidth ramp: a launch must move enough bytes to cover
    // the DRAM latency before it can saturate the bus, so small kernels
    // achieve a fraction of peak — the reason bigger batches use the
    // GPU better (Fig. 4) and tiny per-gate kernels hurt Default.
    const double bytes_per_launch =
        static_cast<double>(bytes) / std::max(1, desc.launches);
    const double ramp =
        bytes_per_launch / (bytes_per_launch + kLatencyRampBytes);
    const double bw = gpu.dram_gbps * 1e9 * bw_frac * ramp;
    const double mem_us =
        static_cast<double>(bytes) / bw * 1e6;
    // Cheap flops can also bound tiny kernels; include for robustness.
    const double compute_us =
        static_cast<double>(desc.flops * desc.launches) /
        (gpu.fp32_tflops * 1e12 * 0.5) * 1e6;
    cost.time_us = (std::max(mem_us, compute_us) +
                    gpu.kernel_overhead_us * desc.launches) *
                   desc.time_scale;
    cost.dram_bytes = bytes;
    cost.l2_hit_rate = 0.3;
    cost.utilization =
        desc.coalesced ? 0.35 : 0.02; // memory-bound kernels burn less
    return cost;
}

} // namespace echo::gpusim
