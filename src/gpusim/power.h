/**
 * @file
 * GPU power/energy model (the analogue of the paper's nvidia-smi power
 * sampling, §6.2.3).
 *
 * Board power is modelled as idle power plus a dynamic component that
 * scales with the time-averaged hardware utilization of the running
 * kernels.  Energy is power integrated over training time — so, as in
 * the paper, configurations with similar power draw but shorter training
 * time win proportionally on energy.
 */
#ifndef ECHO_GPUSIM_POWER_H
#define ECHO_GPUSIM_POWER_H

#include "gpusim/timeline.h"

namespace echo::gpusim {

/** Power/energy estimate for a training run. */
struct PowerEstimate
{
    /** Average board power, watts. */
    double avg_power_w = 0.0;
    /** Energy for the given training duration, joules. */
    double energy_j = 0.0;
};

/**
 * Estimate power from an iteration profile, and energy for
 * @p training_seconds of steady-state training at that profile.
 */
PowerEstimate estimatePower(const ProfileReport &rep, const GpuSpec &gpu,
                            double training_seconds);

} // namespace echo::gpusim

#endif // ECHO_GPUSIM_POWER_H
