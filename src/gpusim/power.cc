#include "gpusim/power.h"

#include <algorithm>

namespace echo::gpusim {

PowerEstimate
estimatePower(const ProfileReport &rep, const GpuSpec &gpu,
              double training_seconds)
{
    // Fraction of wall time the GPU is busy at all, and how hard the
    // busy kernels drive the machine.
    const double busy_frac =
        rep.wall_time_us > 0.0
            ? std::min(1.0, rep.gpu_kernel_time_us / rep.wall_time_us)
            : 0.0;
    // Dynamic power rises steeply with any activity, then with
    // utilization; 0.55 floor reflects clocks/fans ramping as soon as a
    // training loop runs (nvidia-smi shows NMT training near 200 W on a
    // 250 W part regardless of implementation, Fig. 19a).
    const double drive =
        busy_frac * (0.55 + 0.45 * rep.avg_utilization);

    PowerEstimate pe;
    pe.avg_power_w =
        gpu.idle_power_w + (gpu.max_power_w - gpu.idle_power_w) * drive;
    pe.energy_j = pe.avg_power_w * training_seconds;
    return pe;
}

} // namespace echo::gpusim
