#include "gpusim/timeline.h"

#include <algorithm>
#include <unordered_map>

#include "core/logging.h"
#include "graph/schedule.h"

namespace echo::gpusim {

double
ProfileReport::throughput(int64_t batch) const
{
    if (wall_time_us <= 0.0)
        return 0.0;
    return static_cast<double>(batch) / (wall_time_us * 1e-6);
}

namespace {

const char *
phaseName(graph::Phase p)
{
    switch (p) {
      case graph::Phase::kForward:
        return "forward";
      case graph::Phase::kBackward:
        return "backward";
      case graph::Phase::kRecompute:
        return "recompute";
    }
    return "?";
}

} // namespace

ProfileReport
simulateRun(const std::vector<graph::Val> &fetches, const GpuSpec &gpu)
{
    ProfileReport rep;
    const std::vector<graph::Node *> schedule =
        graph::buildSchedule(fetches);

    // Producer positions, for the L2 producer-consumer freshness model:
    // an input produced within the last few kernels (and small enough
    // to still be resident) is read from L2, not DRAM.
    std::unordered_map<const graph::Node *, int> position;
    for (size_t i = 0; i < schedule.size(); ++i)
        position[schedule[i]] = static_cast<int>(i);
    constexpr int kFreshWindow = 12;

    double utilization_weighted = 0.0;

    for (graph::Node *n : schedule) {
        if (n->kind != graph::NodeKind::kOp)
            continue;
        std::vector<Shape> in_shapes;
        in_shapes.reserve(n->inputs.size());
        for (const graph::Val &v : n->inputs)
            in_shapes.push_back(graph::Graph::shapeOf(v));
        const std::vector<graph::KernelDesc> descs =
            n->op->kernels(in_shapes, n->out_shapes);

        // Fraction of input bytes with a fresh, L2-sized producer.
        int64_t fresh_bytes = 0;
        int64_t total_bytes = 0;
        for (const graph::Val &v : n->inputs) {
            const int64_t bytes = graph::Graph::shapeOf(v).bytes();
            total_bytes += bytes;
            const bool fresh =
                v.node->kind == graph::NodeKind::kOp &&
                position.at(n) - position.at(v.node) <= kFreshWindow &&
                bytes * 2 <= gpu.l2_bytes;
            if (fresh)
                fresh_bytes += bytes;
        }
        const double cache_fraction =
            total_bytes > 0 ? static_cast<double>(fresh_bytes) /
                                  static_cast<double>(total_bytes)
                            : 0.0;

        for (const graph::KernelDesc &d : descs) {
            const KernelCost c =
                estimateKernel(d, gpu, cache_fraction);
            rep.gpu_kernel_time_us += c.time_us;
            rep.kernel_launches += c.launches;
            rep.dram_bytes += c.dram_bytes;
            rep.kernel_time_by_category[d.category] += c.time_us;
            rep.kernel_time_by_layer[n->layer_tag.empty()
                                         ? "other"
                                         : n->layer_tag] += c.time_us;
            rep.kernel_time_by_phase[phaseName(n->phase)] += c.time_us;
            utilization_weighted += c.time_us * c.utilization;

            // Wall clock: launches serialize on the CPU; a kernel
            // shorter than its launch gap leaves the GPU idle.
            const double per_launch_kernel_us =
                c.time_us / std::max(1, c.launches);
            const double wall_contrib =
                std::max(per_launch_kernel_us,
                         gpu.launch_overhead_us) *
                c.launches;
            rep.wall_time_us += wall_contrib;
            rep.wall_time_by_phase[phaseName(n->phase)] +=
                wall_contrib;
            rep.cuda_launch_time_us +=
                gpu.launch_overhead_us * c.launches;
        }
    }

    // One synchronization at the end of the iteration; the CPU blocks
    // until the GPU drains, so sync time is the wall time not already
    // spent issuing launches (this is what nvprof attributes to
    // cudaSynchronize in Fig. 6).
    rep.cuda_sync_time_us =
        std::max(0.0, rep.wall_time_us - rep.cuda_launch_time_us) +
        gpu.sync_overhead_us;
    rep.wall_time_us += gpu.sync_overhead_us;
    rep.dram_transactions = rep.dram_bytes / 32;
    rep.avg_utilization = rep.gpu_kernel_time_us > 0.0
                              ? utilization_weighted /
                                    rep.gpu_kernel_time_us
                              : 0.0;
    return rep;
}

} // namespace echo::gpusim
