/**
 * @file
 * Per-kernel GPU cost model: maps an op's KernelDesc to execution time,
 * DRAM traffic, and L2 behaviour on a given GpuSpec.
 *
 * GEMM-class kernels go through the layout-sensitive GEMM model;
 * everything else is bandwidth-bound with the usual achievable-fraction,
 * except uncoalesced kernels (the paper's original SequenceReverse),
 * which see a tiny fraction of peak bandwidth.
 */
#ifndef ECHO_GPUSIM_KERNEL_COST_H
#define ECHO_GPUSIM_KERNEL_COST_H

#include "gpusim/gemm_model.h"
#include "graph/op.h"

namespace echo::gpusim {

/** Modelled cost of one KernelDesc (all launches it stands for). */
struct KernelCost
{
    /** Total GPU time across the descriptor's launches, microseconds. */
    double time_us = 0.0;
    /** Number of kernel launches. */
    int launches = 0;
    /** Total DRAM traffic, bytes. */
    int64_t dram_bytes = 0;
    /** L2 hit rate (informational; GEMM model output). */
    double l2_hit_rate = 0.0;
    /** Achieved fraction of the bound resource (for the power model). */
    double utilization = 0.0;
};

/** Fraction of peak DRAM bandwidth a coalesced kernel achieves. */
inline constexpr double kCoalescedBwFraction = 0.75;

/**
 * Fraction of peak bandwidth for the batch-sequential SequenceReverse:
 * the paper measures ~1 GB/s read on a 547 GB/s part (§5.1).
 */
inline constexpr double kUncoalescedBwFraction = 0.002;

/**
 * Cost one kernel descriptor on @p gpu.
 *
 * @param input_cache_fraction fraction of the kernel's input bytes that
 *        are L2-resident because their producer ran only a few kernels
 *        earlier (the producer-consumer locality the Echo pass's
 *        recompute regions create: replayed values are consumed
 *        immediately, while legacy feature maps return from DRAM after
 *        the whole forward pass).  Cached reads cost ~15% of a DRAM
 *        read and do not count as DRAM transactions.  Applies to
 *        bandwidth-bound kernels only; GEMMs stream their operands.
 */
KernelCost estimateKernel(const graph::KernelDesc &desc,
                          const GpuSpec &gpu,
                          double input_cache_fraction = 0.0);

/** Relative cost of an L2 hit versus a DRAM access. */
inline constexpr double kL2HitCostFraction = 0.15;

/** Bytes a launch must move to reach half of peak DRAM bandwidth. */
inline constexpr double kLatencyRampBytes = 1.0 * 1024 * 1024;

} // namespace echo::gpusim

#endif // ECHO_GPUSIM_KERNEL_COST_H
