/**
 * @file
 * Whole-iteration GPU simulation: walks a schedule, costs every kernel,
 * and models the CPU-side CUDA API activity (cudaLaunch / cudaSync) that
 * the paper's Fig. 6/7 profile with nvprof.
 *
 * Wall-clock model: kernel launches are serialized on the CPU at
 * launch_overhead_us apiece, and the GPU can only run kernels as fast as
 * they are launched — so each kernel contributes
 * max(kernel_time, launch_overhead) to the iteration, which is exactly
 * the "tiny kernels are launch-bound" behaviour the paper identifies in
 * MXNet's Default LSTM implementation.
 */
#ifndef ECHO_GPUSIM_TIMELINE_H
#define ECHO_GPUSIM_TIMELINE_H

#include <map>
#include <string>
#include <vector>

#include "gpusim/kernel_cost.h"
#include "graph/graph.h"

namespace echo::gpusim {

/** Profile of one simulated training iteration. */
struct ProfileReport
{
    /** Sum of GPU kernel execution time, microseconds. */
    double gpu_kernel_time_us = 0.0;
    /** CPU time spent in cudaLaunch calls. */
    double cuda_launch_time_us = 0.0;
    /** CPU time spent waiting in synchronization calls. */
    double cuda_sync_time_us = 0.0;
    /** Modelled wall-clock time of the iteration. */
    double wall_time_us = 0.0;
    /** Total kernel launches. */
    int64_t kernel_launches = 0;
    /** Total DRAM traffic (bytes) and 32-byte transactions. */
    int64_t dram_bytes = 0;
    int64_t dram_transactions = 0;
    /** Kernel time split by kernel category ("fully_connected", ...). */
    std::map<std::string, double> kernel_time_by_category;
    /** Kernel time split by producing layer tag. */
    std::map<std::string, double> kernel_time_by_layer;
    /** Kernel time split by node phase (fwd / bwd / recompute). */
    std::map<std::string, double> kernel_time_by_phase;
    /** Wall time (launch-gated) split by node phase. */
    std::map<std::string, double> wall_time_by_phase;
    /** Time-weighted average hardware utilization (power model input). */
    double avg_utilization = 0.0;

    /** Throughput for @p batch samples per iteration (samples/s). */
    double throughput(int64_t batch) const;
};

/**
 * Simulate one iteration executing everything @p fetches needs.
 * Does not touch tensor data — shapes and kernel descriptors only.
 */
ProfileReport simulateRun(const std::vector<graph::Val> &fetches,
                          const GpuSpec &gpu);

} // namespace echo::gpusim

#endif // ECHO_GPUSIM_TIMELINE_H
