/**
 * @file
 * Layout-sensitive analytical GEMM cost model.
 *
 * The model reproduces the first-order behaviour the paper's Fig. 9
 * measures on cuBLAS: for the skewed matrices of LSTM fully-connected
 * layers, computing Y = X W^T (output rows M = batch, small) is much
 * slower and has worse L2 utilization than the transposed form
 * Y^T = W X^T (output rows M = 4H, large), even though the math is
 * identical.
 *
 * Mechanism modelled: sgemm kernels are register/shared-memory tiled
 * with an output tile of kTileM x kTileN.  When M < kTileM the tile's
 * rows are partially idle, and the deeper the K-loop the more the
 * pipeline hides that under-utilization — so the penalty decays with K.
 * The efficiency formula and its two constants are calibrated against
 * the paper's two data points (LSTM shapes: ~2x; GRU shapes: ~1.3x) and
 * validated by tests/test_gpusim.cc.
 */
#ifndef ECHO_GPUSIM_GEMM_MODEL_H
#define ECHO_GPUSIM_GEMM_MODEL_H

#include "gpusim/gpu_spec.h"

namespace echo::gpusim {

/** Geometry of one GEMM call (after transposes are resolved). */
struct GemmGeometry
{
    int64_t m = 0;
    int64_t n = 0;
    int64_t k = 0;
};

/** Modelled cost of one GEMM kernel. */
struct GemmCost
{
    /** GPU execution time, microseconds. */
    double time_us = 0.0;
    /** Fraction of L2 accesses that hit. */
    double l2_hit_rate = 0.0;
    /** DRAM traffic, bytes. */
    int64_t dram_bytes = 0;
    /** Achieved fraction of peak FP32 throughput. */
    double efficiency = 0.0;
};

/** Cost one GEMM on @p gpu. */
GemmCost estimateGemm(const GemmGeometry &g, const GpuSpec &gpu);

} // namespace echo::gpusim

#endif // ECHO_GPUSIM_GEMM_MODEL_H
