/**
 * @file
 * Batch construction.
 *
 * Language modeling uses the standard continuous-batching scheme
 * (Zaremba et al.): the token stream is split into B parallel streams
 * and sliced into [B x T] windows whose labels are the inputs shifted
 * by one.  NMT batches pad sentence pairs to fixed lengths; padded
 * label positions carry -1 so the loss ignores them.
 */
#ifndef ECHO_DATA_BATCHER_H
#define ECHO_DATA_BATCHER_H

#include <vector>

#include "data/corpus.h"
#include "data/parallel_corpus.h"
#include "tensor/tensor.h"

namespace echo::data {

/** One language-modeling batch: inputs and shifted labels. */
struct LmBatch
{
    Tensor tokens; ///< [B x T]
    Tensor labels; ///< [B*T] (flattened, -1 = ignore)
};

/** Iterates [B x T] windows over a corpus, wrapping at the end. */
class LmBatcher
{
  public:
    LmBatcher(const Corpus &corpus, int64_t batch, int64_t seq_len);

    /** Next batch (deterministic sequence; wraps around). */
    LmBatch next();

    /** Batches per full pass over the data. */
    int64_t batchesPerEpoch() const;

  private:
    const Corpus &corpus_;
    int64_t batch_;
    int64_t seq_len_;
    int64_t stream_len_;
    int64_t cursor_ = 0;
};

/** One NMT batch. */
struct NmtBatch
{
    Tensor src;        ///< [B x Ts] source ids (kPad padded)
    Tensor tgt_in;     ///< [B x Tt] decoder inputs (BOS-shifted)
    Tensor tgt_labels; ///< [B*Tt] labels (-1 on padding)
};

/** Batches sentence pairs with padding to fixed lengths. */
class NmtBatcher
{
  public:
    NmtBatcher(const ParallelCorpus &corpus, int64_t batch,
               int64_t src_len, int64_t tgt_len);

    NmtBatch next();

    int64_t batchesPerEpoch() const;

  private:
    const ParallelCorpus &corpus_;
    int64_t batch_;
    int64_t src_len_;
    int64_t tgt_len_;
    size_t cursor_ = 0;
};

} // namespace echo::data

#endif // ECHO_DATA_BATCHER_H
