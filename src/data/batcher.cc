#include "data/batcher.h"

#include <algorithm>

#include "core/logging.h"

namespace echo::data {

LmBatcher::LmBatcher(const Corpus &corpus, int64_t batch,
                     int64_t seq_len)
    : corpus_(corpus), batch_(batch), seq_len_(seq_len),
      stream_len_(corpus.size() / batch)
{
    ECHO_REQUIRE(stream_len_ > seq_len_,
                 "corpus too small for batch geometry: ",
                 corpus.size(), " tokens, B=", batch,
                 ", T=", seq_len);
}

LmBatch
LmBatcher::next()
{
    LmBatch out;
    out.tokens = Tensor(Shape({batch_, seq_len_}));
    out.labels = Tensor(Shape({batch_ * seq_len_}));
    const auto &toks = corpus_.tokens();
    for (int64_t b = 0; b < batch_; ++b) {
        const int64_t base = b * stream_len_ + cursor_;
        for (int64_t t = 0; t < seq_len_; ++t) {
            out.tokens.at(b, t) =
                static_cast<float>(toks[static_cast<size_t>(
                    base + t)]);
            const int64_t next_pos = base + t + 1;
            const bool has_next =
                next_pos < (b + 1) * stream_len_;
            out.labels.at(b * seq_len_ + t) =
                has_next ? static_cast<float>(
                               toks[static_cast<size_t>(next_pos)])
                         : -1.0f;
        }
    }
    cursor_ += seq_len_;
    if (cursor_ + seq_len_ + 1 > stream_len_)
        cursor_ = 0;
    return out;
}

int64_t
LmBatcher::batchesPerEpoch() const
{
    return std::max<int64_t>(1, (stream_len_ - 1) / seq_len_);
}

NmtBatcher::NmtBatcher(const ParallelCorpus &corpus, int64_t batch,
                       int64_t src_len, int64_t tgt_len)
    : corpus_(corpus), batch_(batch), src_len_(src_len),
      tgt_len_(tgt_len)
{
    ECHO_REQUIRE(!corpus.pairs().empty(), "empty parallel corpus");
}

NmtBatch
NmtBatcher::next()
{
    NmtBatch out;
    out.src = Tensor(Shape({batch_, src_len_}),
                     static_cast<float>(Vocab::kPad));
    out.tgt_in = Tensor(Shape({batch_, tgt_len_}),
                        static_cast<float>(Vocab::kPad));
    out.tgt_labels = Tensor(Shape({batch_ * tgt_len_}), -1.0f);

    const auto &pairs = corpus_.pairs();
    for (int64_t b = 0; b < batch_; ++b) {
        const SentencePair &pair = pairs[cursor_];
        cursor_ = (cursor_ + 1) % pairs.size();

        const int64_t slen = std::min<int64_t>(
            src_len_, static_cast<int64_t>(pair.source.size()));
        for (int64_t i = 0; i < slen; ++i)
            out.src.at(b, i) =
                static_cast<float>(pair.source[static_cast<size_t>(i)]);

        // Decoder input: BOS then the target; labels: target then EOS.
        out.tgt_in.at(b, 0) = static_cast<float>(Vocab::kBos);
        const int64_t tlen = std::min<int64_t>(
            tgt_len_ - 1, static_cast<int64_t>(pair.target.size()));
        for (int64_t i = 0; i < tlen; ++i) {
            out.tgt_in.at(b, i + 1) = static_cast<float>(
                pair.target[static_cast<size_t>(i)]);
            out.tgt_labels.at(b * tgt_len_ + i) = static_cast<float>(
                pair.target[static_cast<size_t>(i)]);
        }
        out.tgt_labels.at(b * tgt_len_ + tlen) =
            static_cast<float>(Vocab::kEos);
    }
    return out;
}

int64_t
NmtBatcher::batchesPerEpoch() const
{
    return std::max<int64_t>(
        1, static_cast<int64_t>(corpus_.pairs().size()) / batch_);
}

} // namespace echo::data
