/**
 * @file
 * Synthetic parallel corpus (IWSLT15 English-Vietnamese substitute) for
 * the NMT experiments.
 *
 * Source sentences come from the Zipf+structure generator; the target
 * is a deterministic "translation": each source word maps through a
 * fixed bijection into the target vocabulary, and adjacent word pairs
 * are swapped (local reordering).  The mapping is exactly what an
 * attention model is built to learn — word-to-word correspondence with
 * small alignment shifts — so toy training runs converge, perplexity
 * falls, and BLEU on a held-out set rises, reproducing the *dynamics*
 * of the paper's Fig. 12 even though the language is synthetic.
 */
#ifndef ECHO_DATA_PARALLEL_CORPUS_H
#define ECHO_DATA_PARALLEL_CORPUS_H

#include <vector>

#include "core/rng.h"
#include "data/vocab.h"

namespace echo::data {

/** One sentence pair. */
struct SentencePair
{
    std::vector<int64_t> source;
    std::vector<int64_t> target;
};

/** Configuration of a synthetic parallel corpus. */
struct ParallelCorpusConfig
{
    Vocab src_vocab;
    Vocab tgt_vocab;
    int64_t num_pairs = 0;
    int64_t min_len = 4;
    int64_t max_len = 16;
    double zipf_s = 1.05;
    uint64_t seed = 7;
};

/** A generated set of sentence pairs. */
class ParallelCorpus
{
  public:
    static ParallelCorpus generate(const ParallelCorpusConfig &config);

    const std::vector<SentencePair> &pairs() const { return pairs_; }
    const Vocab &srcVocab() const { return src_vocab_; }
    const Vocab &tgtVocab() const { return tgt_vocab_; }

    /** The reference translation of @p source under the corpus rule
     *  (used to score BLEU against fresh sentences). */
    std::vector<int64_t>
    referenceTranslation(const std::vector<int64_t> &source) const;

  private:
    Vocab src_vocab_;
    Vocab tgt_vocab_;
    std::vector<SentencePair> pairs_;
};

} // namespace echo::data

#endif // ECHO_DATA_PARALLEL_CORPUS_H
