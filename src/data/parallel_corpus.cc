#include "data/parallel_corpus.h"

#include <algorithm>

#include "core/logging.h"

namespace echo::data {

namespace {

/** Fixed word-to-word "translation" bijection into the target vocab. */
int64_t
translateWord(int64_t src_word_id, const Vocab &src, const Vocab &tgt)
{
    const int64_t w = src_word_id - Vocab::kFirstWord;
    ECHO_CHECK(w >= 0 && w < src.numWords(), "bad source word id");
    return Vocab::kFirstWord + (w * 13 + 5) % tgt.numWords();
}

} // namespace

ParallelCorpus
ParallelCorpus::generate(const ParallelCorpusConfig &config)
{
    ECHO_REQUIRE(config.num_pairs > 0 && config.min_len >= 2 &&
                     config.max_len >= config.min_len,
                 "bad parallel corpus config");

    ParallelCorpus corpus;
    corpus.src_vocab_ = config.src_vocab;
    corpus.tgt_vocab_ = config.tgt_vocab;
    corpus.pairs_.reserve(static_cast<size_t>(config.num_pairs));

    Rng rng(config.seed);
    const int64_t words = config.src_vocab.numWords();

    for (int64_t p = 0; p < config.num_pairs; ++p) {
        const int64_t len =
            config.min_len +
            static_cast<int64_t>(rng.uniformInt(static_cast<uint64_t>(
                config.max_len - config.min_len + 1)));
        SentencePair pair;
        pair.source.reserve(static_cast<size_t>(len));
        for (int64_t i = 0; i < len; ++i)
            pair.source.push_back(
                Vocab::kFirstWord +
                static_cast<int64_t>(rng.zipf(
                    static_cast<uint64_t>(words), config.zipf_s)));
        pair.target = corpus.referenceTranslation(pair.source);
        corpus.pairs_.push_back(std::move(pair));
    }
    return corpus;
}

std::vector<int64_t>
ParallelCorpus::referenceTranslation(
    const std::vector<int64_t> &source) const
{
    // Word-by-word mapping with adjacent-pair swaps (local reordering).
    std::vector<int64_t> target;
    target.reserve(source.size());
    for (const int64_t w : source)
        target.push_back(translateWord(w, src_vocab_, tgt_vocab_));
    for (size_t i = 0; i + 1 < target.size(); i += 2)
        std::swap(target[i], target[i + 1]);
    return target;
}

} // namespace echo::data
