#include "data/corpus.h"

#include "core/logging.h"

namespace echo::data {

Corpus
Corpus::generate(const CorpusConfig &config)
{
    ECHO_REQUIRE(config.num_tokens > 0, "corpus needs tokens");
    ECHO_REQUIRE(config.vocab.numWords() > 1, "vocab too small");

    Corpus corpus;
    corpus.vocab_ = config.vocab;
    corpus.tokens_.reserve(static_cast<size_t>(config.num_tokens));

    Rng rng(config.seed);
    const int64_t words = config.vocab.numWords();

    // Deterministic successor function: an affine map over word ids.
    // Multiplier and offset are odd constants so the map permutes ids.
    auto successor = [words](int64_t w) {
        return (w * 31 + 17) % words;
    };

    int64_t prev = static_cast<int64_t>(
        rng.zipf(static_cast<uint64_t>(words), config.zipf_s));
    for (int64_t i = 0; i < config.num_tokens; ++i) {
        int64_t word;
        if (i > 0 && rng.uniform() < config.structure) {
            word = successor(prev);
        } else {
            word = static_cast<int64_t>(rng.zipf(
                static_cast<uint64_t>(words), config.zipf_s));
        }
        corpus.tokens_.push_back(Vocab::kFirstWord + word);
        prev = word;
    }
    return corpus;
}

} // namespace echo::data
