/**
 * @file
 * Synthetic monolingual corpus generator (PTB / Wikitext-2 substitute).
 *
 * The generator draws tokens from a Zipfian unigram distribution (the
 * frequency profile of natural language) mixed with a deterministic
 * first-order structure: with probability `structure`, the next token
 * is a fixed function of the previous one.  The structured fraction is
 * what a language model can learn, so training perplexity decreases
 * from ~vocab-size toward the entropy floor, giving the training-curve
 * experiments their usual shape.
 */
#ifndef ECHO_DATA_CORPUS_H
#define ECHO_DATA_CORPUS_H

#include <vector>

#include "core/rng.h"
#include "data/vocab.h"

namespace echo::data {

/** Configuration of a synthetic corpus. */
struct CorpusConfig
{
    Vocab vocab;
    /** Number of tokens to generate. */
    int64_t num_tokens = 0;
    /** Zipf exponent of the unigram distribution. */
    double zipf_s = 1.05;
    /** Fraction of transitions that are deterministic (learnable). */
    double structure = 0.75;
    uint64_t seed = 1;
};

/** A generated token stream. */
class Corpus
{
  public:
    /** Generate a corpus from @p config (deterministic in the seed). */
    static Corpus generate(const CorpusConfig &config);

    const std::vector<int64_t> &tokens() const { return tokens_; }
    const Vocab &vocab() const { return vocab_; }
    int64_t size() const { return static_cast<int64_t>(tokens_.size()); }

  private:
    Vocab vocab_;
    std::vector<int64_t> tokens_;
};

} // namespace echo::data

#endif // ECHO_DATA_CORPUS_H
