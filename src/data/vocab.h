/**
 * @file
 * Vocabulary conventions shared by the synthetic datasets.
 *
 * Token ids are dense integers; the first few are reserved specials.
 * Real corpora (PTB, Wikitext-2, IWSLT15 en-vi) are unavailable
 * offline, so the data module generates synthetic corpora whose token
 * statistics (vocabulary size, Zipfian frequencies) match the originals
 * — throughput experiments depend only on these shapes, and the
 * learnable structure (see corpus.h) gives training curves their usual
 * behaviour.
 */
#ifndef ECHO_DATA_VOCAB_H
#define ECHO_DATA_VOCAB_H

#include <cstdint>
#include <string>

namespace echo::data {

/** A vocabulary: a size and the reserved special tokens. */
struct Vocab
{
    /** Total size including specials. */
    int64_t size = 0;

    static constexpr int64_t kPad = 0;
    static constexpr int64_t kBos = 1;
    static constexpr int64_t kEos = 2;
    static constexpr int64_t kFirstWord = 3;

    /** Number of non-special word ids. */
    int64_t numWords() const { return size - kFirstWord; }

    /** PTB-scale vocabulary (10k types, Zaremba et al.). */
    static Vocab ptb() { return Vocab{10000}; }
    /** Wikitext-2-scale vocabulary (33k types, Merity et al.). */
    static Vocab wikitext2() { return Vocab{33278}; }
    /** IWSLT15 English-Vietnamese-scale vocabularies. */
    static Vocab iwslt15En() { return Vocab{17191}; }
    static Vocab iwslt15Vi() { return Vocab{7709}; }
};

} // namespace echo::data

#endif // ECHO_DATA_VOCAB_H
