#include "data/vocab.h"

// Vocab is a value type fully defined in the header; this translation
// unit anchors the module in the build.
