#include "echo/cost_model.h"

#include <unordered_map>

#include "core/logging.h"

namespace echo::pass {

CandidateCost
evaluateCandidate(const Candidate &cand,
                  const std::vector<FeatureMap> &all_feature_maps,
                  const SelectionState &state,
                  const gpusim::GpuSpec &gpu)
{
    CandidateCost cost;
    if (!cand.admissible)
        return cost;

    std::unordered_map<Val, const FeatureMap *, graph::ValHash> fm_index;
    for (const FeatureMap &fm : all_feature_maps)
        fm_index[fm.val] = &fm;

    // Bytes saved: every feature map produced inside the subgraph stops
    // being stashed across the forward/backward boundary — after the
    // rewrite it dies at its last *forward* consumer, so it no longer
    // occupies the pool during the backward pass (where the footprint
    // peaks).  Values an earlier accepted candidate already recomputes
    // are not counted again.
    for (const Node *n : cand.subgraph) {
        for (int i = 0; i < const_cast<Node *>(n)->numOutputs(); ++i) {
            const Val v = const_cast<Node *>(n)->out(i);
            auto it = fm_index.find(v);
            if (it == fm_index.end())
                continue;
            if (state.recomputed.count(v))
                continue;
            cost.bytes_saved += it->second->bytes;
        }
    }

    // Bytes added: frontier values that are not already kept alive into
    // the backward pass for some other reason.  Shared frontiers are
    // amortized across the candidates that use them.
    for (const Val &v : cand.frontier) {
        if (v.node->kind != graph::NodeKind::kOp)
            continue; // weights/placeholders are resident anyway
        if (state.stashed.count(v))
            continue; // another candidate already stashes it
        auto it = fm_index.find(v);
        if (it != fm_index.end() && !state.recomputed.count(v))
            continue; // still a live feature map on its own
        int sharers = 1;
        auto mit = state.frontier_multiplicity.find(v);
        if (mit != state.frontier_multiplicity.end())
            sharers = std::max(1, mit->second);
        cost.bytes_added +=
            graph::Graph::shapeOf(v).bytes() / sharers;
    }

    // Replay time: the subgraph's kernels, costed on the GPU model.
    for (const Node *n : cand.subgraph) {
        std::vector<Shape> in_shapes;
        for (const Val &v : n->inputs)
            in_shapes.push_back(graph::Graph::shapeOf(v));
        for (const graph::KernelDesc &d :
             n->op->kernels(in_shapes, n->out_shapes)) {
            cost.replay_time_us += gpusim::estimateKernel(d, gpu).time_us;
        }
    }
    return cost;
}

} // namespace echo::pass
