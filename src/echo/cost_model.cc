#include "echo/cost_model.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "core/logging.h"

namespace echo::pass {

CandidateCost
evaluateCandidate(const Candidate &cand,
                  const std::vector<FeatureMap> &all_feature_maps,
                  const SelectionState &state,
                  const gpusim::GpuSpec &gpu,
                  bool per_step_fusion)
{
    CandidateCost cost;
    if (!cand.admissible)
        return cost;

    std::unordered_map<Val, const FeatureMap *, graph::ValHash> fm_index;
    for (const FeatureMap &fm : all_feature_maps)
        fm_index[fm.val] = &fm;

    // With per-step fusion, cross-step interior values survive the
    // rewrite as the consuming step's kernel frontier (see
    // Candidate::pinned_interior); the unfused ablation chains clones
    // instead, so there the set is empty and they really die.
    std::unordered_set<Val, graph::ValHash> pinned;
    if (per_step_fusion)
        pinned.insert(cand.pinned_interior.begin(),
                      cand.pinned_interior.end());

    // Bytes saved: every feature map produced inside the subgraph stops
    // being stashed across the forward/backward boundary — after the
    // rewrite it dies at its last *forward* consumer, so it no longer
    // occupies the pool during the backward pass (where the footprint
    // peaks).  Not counted: values an earlier accepted candidate
    // already recomputes, values pinned by another step's replay kernel
    // (the liveness interaction that makes chained LSTM cell-state
    // regions unprofitable — each step's c_t is pinned by step t+1's
    // replay), and values an accepted candidate keeps stashed as its
    // frontier.
    for (const Node *n : cand.subgraph) {
        for (int i = 0; i < const_cast<Node *>(n)->numOutputs(); ++i) {
            const Val v = const_cast<Node *>(n)->out(i);
            auto it = fm_index.find(v);
            if (it == fm_index.end())
                continue;
            if (state.recomputed.count(v))
                continue;
            if (pinned.count(v))
                continue;
            if (state.stashed.count(v))
                continue;
            cost.bytes_saved += it->second->bytes;
        }
    }

    // Bytes added: values the replay reads from the stash — the
    // frontier, plus (under per-step fusion) the cross-step interior
    // values — that are not already kept alive into the backward pass
    // for some other reason.  Shared values are amortized across the
    // candidates that could share them (frontier_multiplicity): that
    // keeps jointly-profitable families alive in the ranking (no
    // attention step breaks even against the full projected-keys
    // tensor alone), while the caller is expected to re-check accepted
    // candidates and report totals at full charge (empty multiplicity
    // map == full charge).
    auto chargeStash = [&](const Val &v) {
        if (v.node->kind != graph::NodeKind::kOp)
            return; // weights/placeholders are resident anyway
        if (state.stashed.count(v))
            return; // another accepted candidate already stashes it
        auto it = fm_index.find(v);
        if (it != fm_index.end() && !state.recomputed.count(v))
            return; // still a live feature map on its own
        int sharers = 1;
        auto mit = state.frontier_multiplicity.find(v);
        if (mit != state.frontier_multiplicity.end())
            sharers = std::max(1, mit->second);
        cost.bytes_added += graph::Graph::shapeOf(v).bytes() / sharers;
    };
    for (const Val &v : cand.frontier)
        chargeStash(v);
    for (const Val &v : pinned)
        chargeStash(v);

    // Replay time: the subgraph's kernels, costed on the GPU model.
    for (const Node *n : cand.subgraph) {
        std::vector<Shape> in_shapes;
        for (const Val &v : n->inputs)
            in_shapes.push_back(graph::Graph::shapeOf(v));
        for (const graph::KernelDesc &d :
             n->op->kernels(in_shapes, n->out_shapes)) {
            cost.replay_time_us += gpusim::estimateKernel(d, gpu).time_us;
        }
    }
    return cost;
}

void
noteAccepted(SelectionState &state, const Candidate &cand,
             bool per_step_fusion)
{
    for (const Val &v : cand.frontier)
        if (v.node->kind == graph::NodeKind::kOp)
            state.stashed.insert(v);
    if (per_step_fusion)
        for (const Val &v : cand.pinned_interior)
            state.stashed.insert(v);
    for (Node *n : cand.subgraph)
        for (int i = 0; i < n->numOutputs(); ++i)
            state.recomputed.insert(n->out(i));
}

SetCost
evaluateAcceptedSet(const std::vector<const Candidate *> &accepted,
                    const std::vector<FeatureMap> &all_feature_maps,
                    const gpusim::GpuSpec &gpu, bool per_step_fusion)
{
    SetCost cost;
    SelectionState joint;
    for (const Candidate *cand : accepted)
        noteAccepted(joint, *cand, per_step_fusion);

    // Saved: feature maps the set recomputes and no member keeps
    // stashed (as a frontier or a cross-step pinned interior value).
    std::unordered_set<Val, graph::ValHash> fm_set;
    for (const FeatureMap &fm : all_feature_maps)
        fm_set.insert(fm.val);
    for (const FeatureMap &fm : all_feature_maps)
        if (joint.recomputed.count(fm.val) &&
            !joint.stashed.count(fm.val))
            cost.bytes_saved += fm.bytes;

    // Added: replay-read values that were not stashed anyway, each
    // charged once regardless of how many members share them.
    for (const Val &v : joint.stashed)
        if (!fm_set.count(v))
            cost.bytes_added += graph::Graph::shapeOf(v).bytes();

    // Replay: the union of subgraph nodes, each node's kernels once.
    std::unordered_set<const Node *> replayed;
    for (const Candidate *cand : accepted) {
        for (const Node *n : cand->subgraph) {
            if (!replayed.insert(n).second)
                continue;
            std::vector<Shape> in_shapes;
            for (const Val &v : n->inputs)
                in_shapes.push_back(graph::Graph::shapeOf(v));
            for (const graph::KernelDesc &d :
                 n->op->kernels(in_shapes, n->out_shapes))
                cost.replay_time_us +=
                    gpusim::estimateKernel(d, gpu).time_us;
        }
    }
    return cost;
}

} // namespace echo::pass
