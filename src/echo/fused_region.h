/**
 * @file
 * Fused recomputation regions.
 *
 * Echo is compiler-based: the recompute subgraph it splices into the
 * backward pass is generated code, so the element-wise replay chain
 * (broadcast + layer norm + tanh ...) can be emitted as ONE fused
 * kernel instead of one kernel per op.  Fusion changes no numerics —
 * the same ops run in the same order — but the fused kernel only reads
 * the region's frontier and only writes its exits (the values backward
 * kernels consume); interior temporaries live in registers.  This is
 * what keeps the replay overhead at the low single-digit percentages
 * the paper reports.
 */
#ifndef ECHO_ECHO_FUSED_REGION_H
#define ECHO_ECHO_FUSED_REGION_H

#include <unordered_map>
#include <vector>

#include "graph/graph.h"

namespace echo::pass {

/**
 * Specification of a fused region: a topologically ordered list of
 * template nodes (from the forward graph), the frontier values feeding
 * them, and the exit values the fused node must materialize.
 */
struct FusedRegionSpec
{
    /** Template nodes, ascending id (topological) order. */
    std::vector<graph::Node *> nodes;
    /** Values read from outside the region (op inputs, in order). */
    std::vector<graph::Val> frontier;
    /** Region-internal values to materialize (op outputs, in order). */
    std::vector<graph::Val> exits;
};

/**
 * Create the fused-replay op for @p spec.  Applying it to the frontier
 * values yields the exit values, computed by running the template
 * nodes' ops internally.
 */
graph::OpPtr makeFusedRegionOp(FusedRegionSpec spec);

} // namespace echo::pass

#endif // ECHO_ECHO_FUSED_REGION_H
