#include "echo/fused_region.h"

#include <unordered_map>

#include "core/logging.h"

namespace echo::pass {

namespace {

using graph::KernelDesc;
using graph::Node;
using graph::Op;
using graph::Val;
using graph::ValHash;

class FusedRegionOp : public Op
{
  public:
    explicit FusedRegionOp(FusedRegionSpec spec)
        : spec_(std::move(spec))
    {
        ECHO_REQUIRE(!spec_.nodes.empty() && !spec_.exits.empty(),
                     "fused region needs nodes and exits");
        // Pre-resolve every template input to a frontier index or an
        // internal (node, output) pair, and cache kernel statistics.
        std::unordered_map<Val, int, ValHash> frontier_index;
        for (size_t i = 0; i < spec_.frontier.size(); ++i)
            frontier_index[spec_.frontier[i]] =
                static_cast<int>(i);
        std::unordered_map<const Node *, int> node_index;
        for (size_t i = 0; i < spec_.nodes.size(); ++i)
            node_index[spec_.nodes[i]] = static_cast<int>(i);

        for (const Node *n : spec_.nodes) {
            for (const Val &v : n->inputs) {
                InputRef ref;
                auto fit = frontier_index.find(v);
                if (fit != frontier_index.end()) {
                    ref.frontier_slot = fit->second;
                } else {
                    auto nit = node_index.find(v.node);
                    ECHO_CHECK(nit != node_index.end(),
                               "fused-region input neither frontier "
                               "nor internal");
                    ref.internal_node = nit->second;
                    ref.output_index = v.index;
                }
                input_refs_.push_back(ref);
            }
            input_ref_offsets_.push_back(
                static_cast<int>(input_refs_.size()));
        }

        for (const Val &v : spec_.exits) {
            auto nit = node_index.find(v.node);
            ECHO_CHECK(nit != node_index.end(),
                       "fused-region exit not internal");
            exit_refs_.push_back({nit->second, v.index});
            out_shapes_.push_back(graph::Graph::shapeOf(v));
        }

        // Aggregate flops across the template nodes' kernels.
        for (Node *n : spec_.nodes) {
            std::vector<Shape> in_shapes;
            for (const Val &v : n->inputs)
                in_shapes.push_back(graph::Graph::shapeOf(v));
            for (const KernelDesc &d :
                 n->op->kernels(in_shapes, n->out_shapes))
                total_flops_ += d.flops * d.launches;
        }
        for (const Val &v : spec_.frontier)
            frontier_bytes_ += graph::Graph::shapeOf(v).bytes();
        for (const Shape &s : out_shapes_)
            exit_bytes_ += s.bytes();
    }

    std::string name() const override { return "fused_recompute"; }

    bool cheapToRecompute() const override { return false; }

    std::vector<Shape>
    inferShapes(const std::vector<Shape> &in) const override
    {
        ECHO_REQUIRE(in.size() == spec_.frontier.size(),
                     "fused region input arity mismatch");
        return out_shapes_;
    }

    void
    forward(const std::vector<Tensor> &in,
            std::vector<Tensor> &out) const override
    {
        // Run each template op, resolving inputs from the frontier or
        // from earlier internal results; identical math in identical
        // order to the unfused replay.
        std::vector<std::vector<Tensor>> internal(spec_.nodes.size());
        int ref_cursor = 0;
        for (size_t i = 0; i < spec_.nodes.size(); ++i) {
            const Node *n = spec_.nodes[i];
            std::vector<Tensor> inputs;
            inputs.reserve(n->inputs.size());
            const int end = input_ref_offsets_[i];
            for (; ref_cursor < end; ++ref_cursor) {
                const InputRef &ref = input_refs_[static_cast<size_t>(
                    ref_cursor)];
                if (ref.frontier_slot >= 0) {
                    inputs.push_back(
                        in[static_cast<size_t>(ref.frontier_slot)]);
                } else {
                    inputs.push_back(
                        internal[static_cast<size_t>(
                            ref.internal_node)]
                                [static_cast<size_t>(
                                    ref.output_index)]);
                }
            }
            std::vector<Tensor> outputs(
                static_cast<size_t>(n->numOutputs()));
            n->op->forward(inputs, outputs);
            internal[i] = std::move(outputs);
        }
        for (size_t e = 0; e < exit_refs_.size(); ++e) {
            const auto &[node_idx, out_idx] = exit_refs_[e];
            out[e] = internal[static_cast<size_t>(node_idx)]
                             [static_cast<size_t>(out_idx)];
        }
    }

    std::vector<Val>
    buildGradient(graph::GradContext &) const override
    {
        ECHO_PANIC("fused_recompute is never differentiated");
    }

    std::vector<const Node *>
    pinnedNodes() const override
    {
        // forward() replays each template node's op live, with input
        // wiring pre-resolved at construction: a pass that retypes any
        // of them in place would feed stale inputs to the new op.
        return {spec_.nodes.begin(), spec_.nodes.end()};
    }

    std::vector<KernelDesc>
    kernels(const std::vector<Shape> &,
            const std::vector<Shape> &) const override
    {
        // One generated kernel: reads the frontier, writes the exits;
        // interior temporaries stay in registers/shared memory.
        KernelDesc k;
        k.category = "recompute_fused";
        k.flops = total_flops_;
        k.bytes_read = frontier_bytes_;
        k.bytes_written = exit_bytes_;
        return {k};
    }

  private:
    struct InputRef
    {
        int frontier_slot = -1;
        int internal_node = -1;
        int output_index = 0;
    };

    FusedRegionSpec spec_;
    std::vector<InputRef> input_refs_;
    /** input_refs_ range end per template node. */
    std::vector<int> input_ref_offsets_;
    std::vector<std::pair<int, int>> exit_refs_;
    std::vector<Shape> out_shapes_;
    int64_t total_flops_ = 0;
    int64_t frontier_bytes_ = 0;
    int64_t exit_bytes_ = 0;
};

} // namespace

graph::OpPtr
makeFusedRegionOp(FusedRegionSpec spec)
{
    return std::make_shared<FusedRegionOp>(std::move(spec));
}

} // namespace echo::pass
