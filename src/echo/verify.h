/**
 * @file
 * Gradient-equivalence verification for the Echo pass.
 *
 * The rewrite replays the exact same ops on the exact same inputs, so
 * gradients must match bit-for-bit on identical input data.  The
 * verifier runs a training iteration on two graphs (typically one with
 * the pass applied and one without) built from the same model with the
 * same seeds, and reports the maximum absolute difference across all
 * fetched values.
 */
#ifndef ECHO_ECHO_VERIFY_H
#define ECHO_ECHO_VERIFY_H

#include <vector>

#include "tensor/tensor.h"

namespace echo::pass {

/** Outcome of comparing two fetch sets. */
struct VerifyResult
{
    double max_abs_diff = 0.0;
    bool shapes_match = true;

    bool identical() const { return shapes_match && max_abs_diff == 0.0; }
    bool withinTolerance(double tol) const
    {
        return shapes_match && max_abs_diff <= tol;
    }
};

/** Element-wise comparison of two equally long fetch lists. */
VerifyResult compareFetches(const std::vector<Tensor> &a,
                            const std::vector<Tensor> &b);

} // namespace echo::pass

#endif // ECHO_ECHO_VERIFY_H
