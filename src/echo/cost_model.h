/**
 * @file
 * The Echo pass's two cost models (the ISCA paper's core machinery):
 *
 *  1. Footprint model — how many stashed bytes a candidate actually
 *     saves.  Naive per-tensor accounting is wrong in ways the model
 *     handles: savings already claimed by an overlapping accepted
 *     candidate are not double-counted, and the candidate's
 *     frontier must itself be stashed, unless it already is (weights,
 *     placeholders, values other accepted candidates stash, or feature
 *     maps other backward consumers keep anyway).
 *
 *  2. Runtime model — the GPU time of replaying the candidate's
 *     subgraph, summed over the analytical kernel model.  The pass
 *     accepts candidates best-ratio-first until a budget (default 2 % of
 *     the baseline iteration) is exhausted; the paper measures the
 *     chosen attention regions at ~1.5 % with a 0.7 % theoretical lower
 *     bound.
 */
#ifndef ECHO_ECHO_COST_MODEL_H
#define ECHO_ECHO_COST_MODEL_H

#include <unordered_map>
#include <unordered_set>

#include "echo/candidate.h"
#include "gpusim/kernel_cost.h"

namespace echo::pass {

/** Evaluation of one candidate against the current acceptance state. */
struct CandidateCost
{
    /** Stash bytes freed (lifetime no longer spans the backward pass). */
    int64_t bytes_saved = 0;
    /** Frontier bytes that become newly stashed. */
    int64_t bytes_added = 0;
    /** GPU time to replay the subgraph once, microseconds. */
    double replay_time_us = 0.0;

    int64_t netSavings() const { return bytes_saved - bytes_added; }
};

/** Mutable selection state shared across candidate evaluations. */
struct SelectionState
{
    /** Values already stashed by accepted candidates' frontiers. */
    std::unordered_set<Val, graph::ValHash> stashed;
    /** Feature-map values already scheduled for recomputation. */
    std::unordered_set<Val, graph::ValHash> recomputed;
    /**
     * How many candidates share each chargeable value (frontier or
     * pinned interior).  A frontier tensor shared by N regions (e.g.\
     * the projected encoder keys feeding all T attention steps) costs
     * each region only 1/N of its stash bytes: without this joint
     * amortization, none of the N candidates breaks even individually
     * and the pass would miss the whole family.  Amortized costs are
     * for *ranking and provisional acceptance* only — the greedy loop
     * prunes provisionally accepted candidates that are net-negative
     * against the other accepted members at full charge, and reports
     * totals recomputed at full charge over the final accepted set.
     */
    std::unordered_map<Val, int, graph::ValHash> frontier_multiplicity;
};

/**
 * Evaluate @p cand given what has been accepted so far.
 *
 * @param all_feature_maps every feature map of the graph, used to tell
 *        whether a frontier value is stashed anyway.
 * @param per_step_fusion when true (fuse_replay), cross-step interior
 *        values stay stashed and are charged like frontier values; the
 *        unfused ablation chains clones instead, so they really die.
 */
CandidateCost
evaluateCandidate(const Candidate &cand,
                  const std::vector<FeatureMap> &all_feature_maps,
                  const SelectionState &state,
                  const gpusim::GpuSpec &gpu,
                  bool per_step_fusion = true);

/** Record what accepting @p cand contributes to @p state: its frontier
 *  (and, under per-step fusion, its cross-step pinned interior) becomes
 *  stashed, its subgraph outputs become recomputed. */
void noteAccepted(SelectionState &state, const Candidate &cand,
                  bool per_step_fusion);

/** Full-charge joint cost of an accepted set (order-independent). */
struct SetCost
{
    /** Stash bytes freed by the whole set jointly. */
    int64_t bytes_saved = 0;
    /** Replay-read bytes newly stashed, each charged exactly once. */
    int64_t bytes_added = 0;
    /** Modelled time to replay the union of the set's subgraphs once
     *  (shared nodes charged once), microseconds. */
    double replay_time_us = 0.0;

    int64_t netSavings() const { return bytes_saved - bytes_added; }
};

/**
 * Jointly evaluate @p accepted at full charge — the objective the
 * budget planner's solvers optimize.  Decomposes per element: a feature
 * map is saved iff recomputed by some member and stashed by none, a
 * stash charge is paid once per distinct value, a subgraph node's
 * kernels are priced once no matter how many members replay it.  This
 * mirrors the totals runRecomputePass reports for its final set.
 */
SetCost
evaluateAcceptedSet(const std::vector<const Candidate *> &accepted,
                    const std::vector<FeatureMap> &all_feature_maps,
                    const gpusim::GpuSpec &gpu,
                    bool per_step_fusion = true);

} // namespace echo::pass

#endif // ECHO_ECHO_COST_MODEL_H
