#include "echo/feature_maps.h"

#include <algorithm>

#include <unordered_map>

#include "core/logging.h"

namespace echo::pass {

std::vector<FeatureMap>
findFeatureMaps(const std::vector<Val> &fetches)
{
    const std::vector<Node *> nodes = graph::reachableNodes(fetches);

    std::unordered_map<Val, FeatureMap, graph::ValHash> found;
    for (Node *n : nodes) {
        for (const Val &v : n->inputs) {
            if (v.node->kind != graph::NodeKind::kOp ||
                v.node->phase != graph::Phase::kForward)
                continue;
            if (n->phase == graph::Phase::kBackward) {
                FeatureMap &fm = found[v];
                if (!fm.val.defined()) {
                    fm.val = v;
                    fm.bytes = graph::Graph::shapeOf(v).bytes();
                }
                fm.bwd_consumers.push_back(n);
            }
        }
    }

    // Flag feature maps that later forward nodes also consume.
    for (Node *n : nodes) {
        if (n->phase != graph::Phase::kForward)
            continue;
        for (const Val &v : n->inputs) {
            auto it = found.find(v);
            if (it != found.end())
                it->second.has_fwd_consumer_after = true;
        }
    }

    std::vector<FeatureMap> result;
    result.reserve(found.size());
    for (auto &[v, fm] : found)
        result.push_back(std::move(fm));
    // Deterministic order: by producing node id, then output index.
    std::sort(result.begin(), result.end(),
              [](const FeatureMap &a, const FeatureMap &b) {
                  if (a.val.node->id != b.val.node->id)
                      return a.val.node->id < b.val.node->id;
                  return a.val.index < b.val.index;
              });
    return result;
}

} // namespace echo::pass
