#include "echo/candidate.h"

#include <algorithm>
#include <unordered_set>

#include "core/logging.h"

namespace echo::pass {

int64_t
Candidate::interiorBytes() const
{
    int64_t bytes = 0;
    for (const Node *n : subgraph)
        for (const Shape &s : n->out_shapes)
            bytes += s.bytes();
    return bytes;
}

int64_t
Candidate::frontierBytes() const
{
    int64_t bytes = 0;
    for (const Val &v : frontier)
        bytes += graph::Graph::shapeOf(v).bytes();
    return bytes;
}

Candidate
buildCandidate(const FeatureMap &target, bool respect_gemm_boundary)
{
    Candidate cand;
    cand.target = target;

    Node *root = target.val.node;
    if (root->kind != graph::NodeKind::kOp ||
        (respect_gemm_boundary && !root->op->cheapToRecompute())) {
        // The producing op itself cannot be replayed.
        cand.admissible = false;
        return cand;
    }

    // Grow the cheap region backwards from the root.  A forward op node
    // joins the region when it is cheap; anything else (weights,
    // placeholders, GEMM outputs) becomes frontier.
    std::unordered_set<Node *> in_region;
    std::unordered_set<Val, graph::ValHash> frontier_set;
    std::vector<Node *> stack{root};
    in_region.insert(root);
    while (!stack.empty()) {
        Node *n = stack.back();
        stack.pop_back();
        for (const Val &v : n->inputs) {
            Node *p = v.node;
            const bool expandable =
                p->kind == graph::NodeKind::kOp &&
                p->phase == graph::Phase::kForward &&
                (!respect_gemm_boundary ||
                 p->op->cheapToRecompute());
            if (expandable) {
                if (in_region.insert(p).second)
                    stack.push_back(p);
            } else {
                frontier_set.insert(v);
            }
        }
    }

    cand.subgraph.assign(in_region.begin(), in_region.end());
    std::sort(cand.subgraph.begin(), cand.subgraph.end(),
              [](const Node *a, const Node *b) { return a->id < b->id; });

    // Interior values read across time-step boundaries stay stashed
    // after the per-step fused rewrite (see the field's doc comment).
    std::unordered_set<Val, graph::ValHash> pinned_set;
    for (const Node *n : cand.subgraph)
        for (const Val &v : n->inputs)
            if (in_region.count(v.node) &&
                v.node->time_step != n->time_step)
                pinned_set.insert(v);
    cand.pinned_interior.assign(pinned_set.begin(), pinned_set.end());
    std::sort(cand.pinned_interior.begin(), cand.pinned_interior.end(),
              [](const Val &a, const Val &b) {
                  if (a.node->id != b.node->id)
                      return a.node->id < b.node->id;
                  return a.index < b.index;
              });
    cand.frontier.assign(frontier_set.begin(), frontier_set.end());
    std::sort(cand.frontier.begin(), cand.frontier.end(),
              [](const Val &a, const Val &b) {
                  if (a.node->id != b.node->id)
                      return a.node->id < b.node->id;
                  return a.index < b.index;
              });
    cand.admissible = true;
    return cand;
}

} // namespace echo::pass
