/**
 * @file
 * Recomputation candidates.
 *
 * For a feature map t, the candidate is the maximal subgraph of
 * cheap-to-recompute forward ops that ends at t, together with its
 * frontier — the values crossing into the subgraph, which must stay
 * stashed.  A candidate is admissible only when the subgraph contains no
 * compute-heavy op (GEMM class): Echo's central rule, which is what
 * keeps the recomputation overhead at the sub-percent level the paper
 * measures (§6.2), unlike generic sublinear checkpointing.
 *
 * For the paper's attention scoring function the candidate is exactly
 * the O-shape interior (broadcast + layer norm + tanh), and the frontier
 * is the projected query / encoder state — the small inputs §4.1 stashes.
 */
#ifndef ECHO_ECHO_CANDIDATE_H
#define ECHO_ECHO_CANDIDATE_H

#include <vector>

#include "echo/feature_maps.h"

namespace echo::pass {

/** A recomputation candidate for one feature map. */
struct Candidate
{
    /** The feature map this candidate eliminates from the stash. */
    FeatureMap target;
    /** Forward nodes to replay, in ascending id (topological) order. */
    std::vector<Node *> subgraph;
    /** Values crossing into the subgraph (stay stashed). */
    std::vector<Val> frontier;
    /**
     * Interior values consumed by a subgraph node of a different time
     * step.  The rewrite emits one fused kernel per time step (to keep
     * the cross-step workspace shared), so these values are read from
     * the stash by the consuming step's kernel and survive the rewrite
     * exactly like frontier values — recomputing them saves nothing.
     * This is the liveness interaction that makes chained LSTM
     * cell-state regions unprofitable.
     */
    std::vector<Val> pinned_interior;
    /** False when the region would contain a non-recomputable op. */
    bool admissible = false;

    /** Sum of interior bytes replayed (workspace while recomputing). */
    int64_t interiorBytes() const;
    /** Sum of frontier bytes (potential new stash cost). */
    int64_t frontierBytes() const;
};

/**
 * Build the candidate for @p target.
 *
 * @param respect_gemm_boundary when false, GEMM-class ops may be
 *        recomputed too (the Chen-et-al ablation); candidates are then
 *        bounded at graph inputs only.
 */
Candidate buildCandidate(const FeatureMap &target,
                         bool respect_gemm_boundary = true);

} // namespace echo::pass

#endif // ECHO_ECHO_CANDIDATE_H
