#include "echo/recompute_pass.h"

#include <algorithm>
#include <functional>
#include <limits>
#include <unordered_map>
#include <unordered_set>

#include "core/logging.h"
#include "echo/fused_region.h"
#include "gpusim/timeline.h"
#include "obs/counters.h"
#include "obs/trace.h"

namespace echo::pass {

namespace {

/** A candidate with its at-selection-time evaluation. */
struct Scored
{
    Candidate cand;
    CandidateCost cost;

    double
    ratio() const
    {
        // Savings per microsecond of replay; replay below the kernel
        // overhead floor is effectively free.
        return static_cast<double>(cost.netSavings()) /
               std::max(0.5, cost.replay_time_us);
    }
};

} // namespace

std::vector<Candidate>
enumerateCandidates(const std::vector<FeatureMap> &fms,
                    const std::vector<Val> &fetches,
                    const PassConfig &config, SelectionState *state,
                    PassResult *res)
{
    static obs::Counter &c_candidates = obs::counter("echo.candidates");
    static obs::Counter &c_admissible = obs::counter("echo.admissible");

    const std::unordered_set<Val, graph::ValHash> fetch_set(
        fetches.begin(), fetches.end());

    std::vector<Candidate> candidates;
    for (const FeatureMap &fm : fms) {
        if (fetch_set.count(fm.val))
            continue; // fetched values must survive
        if (config.policy == PassConfig::Policy::kManual &&
            fm.val.node->layer_tag != config.manual_tag)
            continue;
        if (res != nullptr)
            ++res->num_candidates;
        c_candidates.add(1);
        Candidate cand =
            buildCandidate(fm, config.respect_gemm_boundary);
        if (!cand.admissible) {
            if (obs::traceEnabled())
                obs::emitEvent('i', "echo", "candidate.inadmissible",
                               {{"target", fm.val.node->id},
                                {"name", fm.val.node->name},
                                {"bytes", fm.bytes}});
            continue;
        }
        if (res != nullptr)
            ++res->num_admissible;
        c_admissible.add(1);
        if (state != nullptr) {
            for (const Val &v : cand.frontier)
                ++state->frontier_multiplicity[v];
            if (config.fuse_replay)
                for (const Val &v : cand.pinned_interior)
                    ++state->frontier_multiplicity[v];
        }
        candidates.push_back(std::move(cand));
    }
    return candidates;
}

void
applyRecomputation(graph::Graph &g,
                   const std::vector<const Candidate *> &accepted,
                   const std::vector<FeatureMap> &fms,
                   const PassConfig &config, PassResult &res)
{
    static obs::Counter &c_accepted = obs::counter("echo.regions_accepted");
    static obs::Counter &c_nodes = obs::counter("echo.recompute_nodes");
    static obs::Counter &c_saved = obs::counter("echo.bytes_saved");
    static obs::Counter &c_added = obs::counter("echo.bytes_added");

    res.num_regions = static_cast<int>(accepted.size());
    if (accepted.empty())
        return;

    // Report totals recomputed at full charge over the final accepted
    // set, so PassResult matches what liveness will actually measure:
    // saved = feature maps recomputed and not pinned by any replay,
    // added = replay-read values that were not stashed before.
    const SetCost joint =
        evaluateAcceptedSet(accepted, fms, config.gpu, config.fuse_replay);
    res.bytes_saved = joint.bytes_saved;
    res.bytes_added = joint.bytes_added;

    // Union of accepted region nodes.
    std::unordered_set<Node *> region_nodes;
    for (const Candidate *cand : accepted)
        for (Node *n : cand->subgraph)
            region_nodes.insert(n);

    // Values produced in the union that backward nodes consume (the
    // exits the replay must materialize).  Collected before rewriting.
    std::unordered_set<Val, graph::ValHash> bwd_consumed;
    for (const auto &node_ptr : g.nodes()) {
        Node *n = node_ptr.get();
        if (n->phase != graph::Phase::kBackward)
            continue;
        for (const Val &v : n->inputs)
            if (region_nodes.count(v.node))
                bwd_consumed.insert(v);
    }

    // Mapping from original value to its replayed value.
    std::unordered_map<Val, Val, graph::ValHash> replayed;

    const graph::Phase saved_phase = g.phase();
    g.setPhase(graph::Phase::kRecompute);

    if (config.fuse_replay) {
        // Connected components of the region (by dataflow edges):
        // each becomes one generated fused kernel.
        std::unordered_map<Node *, Node *> parent;
        std::function<Node *(Node *)> find =
            [&](Node *n) -> Node * {
            Node *&p = parent[n];
            if (p == nullptr || p == n)
                return p = n;
            return p = find(p);
        };
        // Only nodes of the same time step fuse together: a shared
        // producer (e.g. the once-per-sentence key projection reshape,
        // time_step == -1) must not weld every step's region into one
        // giant kernel — that would materialize all steps' exits
        // simultaneously and destroy the cross-step workspace sharing
        // of paper §4.1.2.  Cross-component edges become frontier
        // values instead.
        for (Node *n : region_nodes)
            for (const Val &v : n->inputs)
                if (region_nodes.count(v.node) &&
                    v.node->time_step == n->time_step)
                    parent[find(n)] = find(v.node);

        std::unordered_map<Node *, std::vector<Node *>> components;
        for (Node *n : region_nodes)
            components[find(n)].push_back(n);

        // Deterministic component order (by smallest node id).
        std::vector<std::vector<Node *>> ordered;
        for (auto &[root, nodes] : components) {
            std::sort(nodes.begin(), nodes.end(),
                      [](Node *a, Node *b) { return a->id < b->id; });
            ordered.push_back(std::move(nodes));
        }
        std::sort(ordered.begin(), ordered.end(),
                  [](const auto &a, const auto &b) {
                      return a.front()->id < b.front()->id;
                  });

        for (std::vector<Node *> &nodes : ordered) {
            FusedRegionSpec spec;
            spec.nodes = nodes;
            std::unordered_set<Node *> members(nodes.begin(),
                                               nodes.end());
            std::unordered_set<Val, graph::ValHash> seen_frontier;
            for (Node *n : nodes) {
                for (const Val &v : n->inputs)
                    if (!members.count(v.node) &&
                        seen_frontier.insert(v).second)
                        spec.frontier.push_back(v);
                for (int i = 0; i < n->numOutputs(); ++i)
                    if (bwd_consumed.count(n->out(i)))
                        spec.exits.push_back(n->out(i));
            }
            if (spec.exits.empty())
                continue; // nothing to materialize

            Node *deepest = nodes.back();
            graph::TagScope tag(g, deepest->layer_tag);
            g.setTimeStep(deepest->time_step);
            const std::vector<Val> outs =
                g.apply(makeFusedRegionOp(spec), spec.frontier,
                        deepest->name + ".fused_recompute");
            for (size_t e = 0; e < spec.exits.size(); ++e)
                replayed[spec.exits[e]] =
                    outs[e];
            ++res.num_recompute_nodes;
        }
    } else {
        // Unfused ablation: clone each node, one kernel per op.
        std::unordered_map<Node *, Node *> clone_of;
        std::vector<Node *> order(region_nodes.begin(),
                                  region_nodes.end());
        std::sort(order.begin(), order.end(),
                  [](Node *a, Node *b) { return a->id < b->id; });
        for (Node *n : order) {
            std::vector<Val> mapped_inputs;
            mapped_inputs.reserve(n->inputs.size());
            for (const Val &v : n->inputs) {
                auto it = clone_of.find(v.node);
                mapped_inputs.push_back(
                    it == clone_of.end() ? v
                                         : Val{it->second, v.index});
            }
            graph::TagScope tag(g, n->layer_tag);
            g.setTimeStep(n->time_step);
            const std::vector<Val> outs = g.apply(
                n->op, std::move(mapped_inputs),
                n->name + ".recompute");
            clone_of[n] = outs[0].node;
            ++res.num_recompute_nodes;
            for (int i = 0; i < n->numOutputs(); ++i)
                replayed[n->out(i)] = outs[0].node->out(i);
        }
    }
    g.setTimeStep(-1);
    g.setPhase(saved_phase);

    // Redirect backward references into the replayed values.
    for (const auto &node_ptr : g.nodes()) {
        Node *n = node_ptr.get();
        if (n->phase != graph::Phase::kBackward)
            continue;
        for (Val &v : n->inputs) {
            auto it = replayed.find(v);
            if (it != replayed.end())
                v = it->second;
        }
    }

    // Report the replay time of what was actually emitted.
    res.replay_time_us = 0.0;
    for (const auto &node_ptr : g.nodes()) {
        Node *n = node_ptr.get();
        if (n->phase != graph::Phase::kRecompute ||
            n->kind != graph::NodeKind::kOp)
            continue;
        std::vector<Shape> in_shapes;
        for (const Val &v : n->inputs)
            in_shapes.push_back(graph::Graph::shapeOf(v));
        for (const graph::KernelDesc &d :
             n->op->kernels(in_shapes, n->out_shapes))
            res.replay_time_us +=
                gpusim::estimateKernel(d, config.gpu).time_us;
    }

    c_accepted.add(res.num_regions);
    c_nodes.add(res.num_recompute_nodes);
    c_saved.add(res.bytes_saved);
    c_added.add(res.bytes_added);
}

PassResult
runRecomputePass(graph::Graph &g, const std::vector<Val> &fetches,
                 const PassConfig &config)
{
    PassResult res;
    if (config.policy == PassConfig::Policy::kOff)
        return res;

    obs::Span pass_span;
    if (obs::traceEnabled())
        pass_span.begin("echo", "recompute_pass");

    const std::vector<FeatureMap> fms = findFeatureMaps(fetches);
    const gpusim::ProfileReport baseline =
        gpusim::simulateRun(fetches, config.gpu);
    res.baseline_gpu_time_us = baseline.gpu_kernel_time_us;
    const double budget =
        config.overhead_budget_fraction < 0.0
            ? std::numeric_limits<double>::infinity()
            : config.overhead_budget_fraction *
                  baseline.gpu_kernel_time_us;

    // Build candidates; enumeration collects the sharing multiplicity
    // of each chargeable value — frontier and, under per-step fusion,
    // cross-step pinned interior — so stash costs are amortized jointly
    // across a family of regions.
    SelectionState state;
    std::vector<Candidate> candidates =
        enumerateCandidates(fms, fetches, config, &state, &res);

    std::vector<Scored> scored;
    for (Candidate &cand : candidates) {
        Scored s;
        s.cost = evaluateCandidate(cand, fms, state, config.gpu,
                                   config.fuse_replay);
        s.cand = std::move(cand);
        if (s.cost.netSavings() > 0)
            scored.push_back(std::move(s));
    }

    // Best savings-per-overhead first.
    std::sort(scored.begin(), scored.end(),
              [](const Scored &a, const Scored &b) {
                  if (a.ratio() != b.ratio())
                      return a.ratio() > b.ratio();
                  return a.cand.target.val.node->id <
                         b.cand.target.val.node->id;
              });

    // Greedy provisional acceptance with re-evaluation against the
    // evolving state.  Charges stay amortized here so a family of
    // regions sharing a large frontier can get in together.
    double replay_used_us = 0.0;
    std::vector<const Scored *> accepted_scored;
    for (Scored &s : scored) {
        const CandidateCost cost = evaluateCandidate(
            s.cand, fms, state, config.gpu, config.fuse_replay);
        // One decision event per candidate region: the modeled savings
        // and replay cost the selection acted on (paper Fig. 5/6 are
        // assembled from exactly these numbers).
        const bool net_positive = cost.netSavings() > 0;
        const bool in_budget =
            replay_used_us + cost.replay_time_us <= budget;
        if (obs::traceEnabled()) {
            obs::emitEvent(
                'i', "echo",
                net_positive && in_budget ? "region.accept"
                                          : "region.reject",
                {{"target", s.cand.target.val.node->id},
                 {"name", s.cand.target.val.node->name},
                 {"bytes_saved", cost.netSavings()},
                 {"replay_us", cost.replay_time_us},
                 {"reason", !net_positive ? "net_negative"
                            : in_budget   ? "accepted"
                                          : "over_budget"}});
        }
        if (!net_positive || !in_budget)
            continue;
        replay_used_us += cost.replay_time_us;
        noteAccepted(state, s.cand, config.fuse_replay);
        accepted_scored.push_back(&s);
    }

    // Amortization divides a shared value's cost among every admissible
    // sharer, including ones that end up rejected — which can let a
    // net-negative candidate in on a subsidy nobody pays.  Re-check
    // each accepted candidate at full charge (empty multiplicity map)
    // against the *other* accepted members: a genuine family member's
    // shared values are stashed by its siblings and cost it nothing,
    // while a phantom-subsidized region goes net-negative and is
    // dropped.  Iterate to a fixpoint since a drop can orphan another.
    for (bool changed = true; changed;) {
        changed = false;
        for (size_t i = 0; i < accepted_scored.size(); ++i) {
            SelectionState others;
            for (size_t j = 0; j < accepted_scored.size(); ++j)
                if (j != i)
                    noteAccepted(others, accepted_scored[j]->cand,
                                 config.fuse_replay);
            const CandidateCost marginal = evaluateCandidate(
                accepted_scored[i]->cand, fms, others, config.gpu,
                config.fuse_replay);
            if (marginal.netSavings() <= 0) {
                if (obs::traceEnabled()) {
                    obs::emitEvent(
                        'i', "echo", "region.pruned",
                        {{"target",
                          accepted_scored[i]->cand.target.val.node->id},
                         {"net_savings", marginal.netSavings()}});
                }
                accepted_scored.erase(accepted_scored.begin() +
                                      static_cast<ptrdiff_t>(i));
                changed = true;
                break;
            }
        }
    }

    std::vector<const Candidate *> accepted;
    for (const Scored *s : accepted_scored)
        accepted.push_back(&s->cand);
    applyRecomputation(g, accepted, fms, config, res);
    return res;
}

} // namespace echo::pass
