/**
 * @file
 * Feature-map analysis: finds every forward value the backward pass
 * keeps alive (the paper's "reserved space").  These are the
 * candidates the Echo recomputation pass considers dropping.
 */
#ifndef ECHO_ECHO_FEATURE_MAPS_H
#define ECHO_ECHO_FEATURE_MAPS_H

#include <vector>

#include "graph/graph.h"

namespace echo::pass {

using graph::Node;
using graph::Val;

/** One stashed forward value and who needs it in the backward pass. */
struct FeatureMap
{
    Val val;
    int64_t bytes = 0;
    /** Backward nodes reading this value. */
    std::vector<Node *> bwd_consumers;
    /** True when some later forward node also reads it (its lifetime
     *  extends into the forward pass regardless of stashing). */
    bool has_fwd_consumer_after = false;
};

/** Find all feature maps of the training graph reached by @p fetches. */
std::vector<FeatureMap>
findFeatureMaps(const std::vector<Val> &fetches);

} // namespace echo::pass

#endif // ECHO_ECHO_FEATURE_MAPS_H
