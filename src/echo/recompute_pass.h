/**
 * @file
 * The Echo recomputation pass — the compiler transformation at the heart
 * of "Echo: Compiler-based GPU Memory Footprint Reduction for LSTM RNN
 * Training" (ISCA 2020), generalizing the EcoRNN draft's manual
 * "partial forward propagation" (§4.1/§5.2) into an automatic
 * whole-graph rewrite:
 *
 *  1. find every feature map (forward value stashed for the backward
 *     pass),
 *  2. build the maximal GEMM-free recompute region per feature map,
 *  3. select regions best-savings-per-overhead first under the two cost
 *     models (never recomputing GEMMs, accounting for liveness
 *     interactions and shared frontiers),
 *  4. rewrite the graph: clone each accepted region into recompute-phase
 *     nodes and redirect all backward references into the clones.
 *
 * The scheduler then anchors each clone just before its first backward
 * consumer, so the pool planner shares one workspace arena across all
 * time steps (paper §4.1.2: O(B·T·H) extra instead of O(B·T²·H)).
 *
 * Policies: kOff (baseline), kManual (regions whose layer tag matches
 * `manual_tag` only — EcoRNN's hand-annotated attention), kAuto (whole
 * graph — Echo).
 */
#ifndef ECHO_ECHO_RECOMPUTE_PASS_H
#define ECHO_ECHO_RECOMPUTE_PASS_H

#include <string>
#include <vector>

#include "echo/cost_model.h"

namespace echo::pass {

/** Pass configuration. */
struct PassConfig
{
    enum class Policy { kOff, kManual, kAuto };

    Policy policy = Policy::kAuto;
    /** Layer tag the kManual policy restricts itself to. */
    std::string manual_tag = "attention";
    /** Maximum added replay time, as a fraction of the baseline
     *  iteration's GPU time (the paper measures ~1.5 % for the
     *  attention regions; the default budget is 2 %).  Negative means
     *  unlimited — the EcoRNN-paper behaviour of recomputing every
     *  admissible attention region regardless of replay time. */
    double overhead_budget_fraction = 0.02;
    /** Ablation: when false, GEMMs may be recomputed (Chen et al.). */
    bool respect_gemm_boundary = true;
    /** Emit each replay region as one generated fused kernel (reads
     *  the frontier, writes the exits, interior stays in registers) —
     *  what the TVM-based Echo compiler does.  false replays with one
     *  kernel per op (ablation). */
    bool fuse_replay = true;
    /** GPU the runtime cost model targets. */
    gpusim::GpuSpec gpu = gpusim::GpuSpec::titanXp();
};

/** What the pass did. */
struct PassResult
{
    /** Number of accepted recomputation regions. */
    int num_regions = 0;
    /** Recompute-phase nodes added. */
    int num_recompute_nodes = 0;
    /** Modelled stash bytes eliminated / newly added. */
    int64_t bytes_saved = 0;
    int64_t bytes_added = 0;
    /** Modelled replay time added per iteration, microseconds,
     *  measured on the rewritten graph (fused kernels when
     *  fuse_replay). */
    double replay_time_us = 0.0;
    /** Baseline iteration GPU time the budget was computed from. */
    double baseline_gpu_time_us = 0.0;
    /** Candidates examined / admissible (for reporting). */
    int num_candidates = 0;
    int num_admissible = 0;
};

/**
 * Run the pass on @p graph, rewriting backward references in place.
 * @p fetches must be the training iteration's outputs (loss and weight
 * gradients); fetched values themselves are never dropped.
 */
PassResult runRecomputePass(graph::Graph &graph,
                            const std::vector<Val> &fetches,
                            const PassConfig &config = {});

/**
 * Enumerate the admissible recomputation candidates of @p fms under
 * @p config (fetched targets skipped, kManual restricted to its layer
 * tag).  When @p state is given, every admissible candidate's
 * chargeable values (frontier and, under fuse_replay, cross-step
 * pinned interior) accumulate into state->frontier_multiplicity so
 * shared stash costs amortize across the family during ranking.  When
 * @p res is given, num_candidates / num_admissible are filled in.
 *
 * This is the shared front half of runRecomputePass; the budget
 * planner (src/budget) prices the same candidates under its solvers.
 */
std::vector<Candidate>
enumerateCandidates(const std::vector<FeatureMap> &fms,
                    const std::vector<Val> &fetches,
                    const PassConfig &config,
                    SelectionState *state = nullptr,
                    PassResult *res = nullptr);

/**
 * Rewrite @p graph for the accepted candidate set: emit the replay
 * nodes (one generated fused kernel per time-step component under
 * fuse_replay, per-op clones otherwise), redirect backward references
 * into them, and fill @p res's rewrite fields (num_regions,
 * num_recompute_nodes, bytes_saved / bytes_added at full charge over
 * the set, and replay_time_us measured on the emitted kernels).
 *
 * The rewrite only appends nodes and only mutates backward-phase
 * inputs, so a trial application can be rolled back by restoring the
 * backward inputs and Graph::truncate()-ing to the prior node count —
 * which is how the budget planner validates a plan against the real
 * memory planner before committing to it.
 */
void applyRecomputation(graph::Graph &graph,
                        const std::vector<const Candidate *> &accepted,
                        const std::vector<FeatureMap> &fms,
                        const PassConfig &config, PassResult &res);

} // namespace echo::pass

#endif // ECHO_ECHO_RECOMPUTE_PASS_H
